// Tests for dsx::net (src/net): the framing protocol codec (round trips,
// header/payload rejection), wire robustness against a live IngressServer
// (garbage magic, oversized length prefixes, truncated frames, slow-loris
// partial writes, disconnect-mid-reply, write-queue backpressure - never a
// crash, a leaked future, or a stalled event loop; every accepted frame
// answered exactly once), tenant auth/quota/QoS admission, and the
// ResidencyManager (LRU eviction + pinning, single-flight fault-in,
// bit-identical faulted-in replies, journaled transitions, mixed-tenant
// wire traffic under eviction churn and hot-swap with zero request errors).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/socket_io.hpp"
#include "deploy/deploy.hpp"
#include "net/net.hpp"
#include "obs/http_exporter.hpp"
#include "obs/journal.hpp"
#include "serve/server.hpp"
#include "tensor/random.hpp"
#include "testing_utils.hpp"

namespace fs = std::filesystem;

namespace dsx::net {
namespace {

using testing::bit_identical;

constexpr int64_t kImage = 16;
constexpr int64_t kClasses = 10;

deploy::ArchSpec tiny_spec(uint64_t seed) {
  deploy::ArchSpec spec;
  spec.family = "mobilenet";
  spec.num_classes = kClasses;
  spec.image = kImage;
  spec.scheme.scheme = models::ConvScheme::kDWSCC;
  spec.scheme.cg = 2;
  spec.scheme.co = 0.5;
  spec.scheme.width_mult = 0.25;
  spec.init_seed = seed;
  return spec;
}

std::unique_ptr<serve::CompiledModel> compile_spec(const deploy::ArchSpec& spec,
                                                   int64_t max_batch = 4) {
  return std::make_unique<serve::CompiledModel>(
      deploy::build_architecture(spec), spec.image_shape(),
      serve::CompileOptions{.max_batch = max_batch});
}

Tensor make_image(uint64_t seed) {
  Rng rng(seed);
  return random_uniform(make_nchw(1, 3, kImage, kImage), rng, -1.0f, 1.0f);
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

/// Client-side frame read over a raw fd (the tests that talk malformed
/// bytes cannot use net::Client's well-formed sender).
bool read_reply_raw(int fd, ReplyFrame* out) {
  uint8_t header[kHeaderBytes];
  if (!sockio::recv_all(fd, header, sizeof(header))) return false;
  FrameType type;
  uint32_t len = 0;
  if (parse_header(header, kDefaultMaxFrameBytes, &type, &len) !=
          HeaderVerdict::kOk ||
      type != FrameType::kReply) {
    return false;
  }
  std::vector<uint8_t> payload(len);
  if (len > 0 && !sockio::recv_all(fd, payload.data(), len)) return false;
  return parse_reply_payload(payload.data(), payload.size(), out);
}

// ---- protocol codec --------------------------------------------------------

TEST(NetProtocol, RequestRoundTrip) {
  RequestFrame req;
  req.request_id = 0xDEADBEEFCAFEull;
  req.model = "mnet";
  req.token = "tenant-a";
  req.priority = serve::Priority::kInteractive;
  req.deadline_us = 250000;
  req.image = make_image(3);
  const std::string wire = encode_request(req);
  ASSERT_GE(wire.size(), kHeaderBytes);

  FrameType type;
  uint32_t len = 0;
  ASSERT_EQ(parse_header(reinterpret_cast<const uint8_t*>(wire.data()),
                         kDefaultMaxFrameBytes, &type, &len),
            HeaderVerdict::kOk);
  EXPECT_EQ(type, FrameType::kRequest);
  ASSERT_EQ(wire.size(), kHeaderBytes + len);

  RequestFrame back;
  std::string err;
  ASSERT_EQ(parse_request_payload(
                reinterpret_cast<const uint8_t*>(wire.data()) + kHeaderBytes,
                len, &back, &err),
            Status::kOk)
      << err;
  EXPECT_EQ(back.request_id, req.request_id);
  EXPECT_EQ(back.model, req.model);
  EXPECT_EQ(back.token, req.token);
  EXPECT_EQ(back.priority, req.priority);
  EXPECT_EQ(back.deadline_us, req.deadline_us);
  EXPECT_TRUE(bit_identical(back.image, req.image));
}

TEST(NetProtocol, ReplyRoundTripOkAndError) {
  ReplyFrame ok;
  ok.request_id = 7;
  ok.status = Status::kOk;
  ok.output = make_image(5);
  const std::string ok_wire = encode_reply(ok);
  ReplyFrame ok_back;
  ASSERT_TRUE(parse_reply_payload(
      reinterpret_cast<const uint8_t*>(ok_wire.data()) + kHeaderBytes,
      ok_wire.size() - kHeaderBytes, &ok_back));
  EXPECT_EQ(ok_back.request_id, 7u);
  EXPECT_EQ(ok_back.status, Status::kOk);
  EXPECT_TRUE(bit_identical(ok_back.output, ok.output));

  ReplyFrame err;
  err.request_id = 9;
  err.status = Status::kQueueFull;
  err.message = "queue full";
  const std::string err_wire = encode_reply(err);
  ReplyFrame err_back;
  ASSERT_TRUE(parse_reply_payload(
      reinterpret_cast<const uint8_t*>(err_wire.data()) + kHeaderBytes,
      err_wire.size() - kHeaderBytes, &err_back));
  EXPECT_EQ(err_back.status, Status::kQueueFull);
  EXPECT_EQ(err_back.message, "queue full");
  EXPECT_FALSE(err_back.output.defined());
}

TEST(NetProtocol, HeaderRejectsGarbage) {
  RequestFrame req;
  req.model = "m";
  req.image = make_image(1);
  std::string wire = encode_request(req);
  FrameType type;
  uint32_t len = 0;
  auto header = [&] { return reinterpret_cast<uint8_t*>(wire.data()); };

  wire[0] = 'X';  // magic
  EXPECT_EQ(parse_header(header(), kDefaultMaxFrameBytes, &type, &len),
            HeaderVerdict::kBadMagic);
  wire = encode_request(req);
  wire[4] = 9;  // version
  EXPECT_EQ(parse_header(header(), kDefaultMaxFrameBytes, &type, &len),
            HeaderVerdict::kBadVersion);
  wire = encode_request(req);
  wire[6] = 77;  // type
  EXPECT_EQ(parse_header(header(), kDefaultMaxFrameBytes, &type, &len),
            HeaderVerdict::kBadType);
  wire = encode_request(req);
  const uint32_t huge = kDefaultMaxFrameBytes + 1;
  std::memcpy(wire.data() + 8, &huge, 4);  // oversized length prefix
  EXPECT_EQ(parse_header(header(), kDefaultMaxFrameBytes, &type, &len),
            HeaderVerdict::kTooLarge);
}

TEST(NetProtocol, PayloadRejectsEveryTruncation) {
  RequestFrame req;
  req.request_id = 42;
  req.model = "mnet";
  req.token = "t";
  req.image = make_image(2);
  const std::string wire = encode_request(req);
  const uint8_t* payload =
      reinterpret_cast<const uint8_t*>(wire.data()) + kHeaderBytes;
  const size_t full = wire.size() - kHeaderBytes;
  // Every proper prefix must parse to a clean kBadRequest - never a crash,
  // never a bogus kOk.
  for (size_t len = 0; len < full; ++len) {
    RequestFrame out;
    std::string err;
    EXPECT_EQ(parse_request_payload(payload, len, &out, &err),
              Status::kBadRequest)
        << "prefix " << len << " parsed";
  }
}

TEST(NetProtocol, PayloadRejectsHostileShapes) {
  RequestFrame req;
  req.request_id = 1;
  req.model = "m";
  req.image = make_image(4);
  std::string wire = encode_request(req);
  // The rank byte sits right after id + name + token + priority + deadline.
  const size_t rank_at = kHeaderBytes + 8 + (2 + 1) + (2 + 0) + 1 + 8;
  RequestFrame out;
  std::string err;

  std::string bad = wire;
  bad[rank_at] = 0;  // rank 0
  EXPECT_EQ(parse_request_payload(
                reinterpret_cast<const uint8_t*>(bad.data()) + kHeaderBytes,
                bad.size() - kHeaderBytes, &out, &err),
            Status::kBadRequest);

  bad = wire;
  bad[rank_at] = 9;  // rank > kMaxRank
  EXPECT_EQ(parse_request_payload(
                reinterpret_cast<const uint8_t*>(bad.data()) + kHeaderBytes,
                bad.size() - kHeaderBytes, &out, &err),
            Status::kBadRequest);

  bad = wire;
  const int64_t evil = int64_t{1} << 40;  // numel-overflow attempt
  std::memcpy(bad.data() + rank_at + 1, &evil, 8);
  EXPECT_EQ(parse_request_payload(
                reinterpret_cast<const uint8_t*>(bad.data()) + kHeaderBytes,
                bad.size() - kHeaderBytes, &out, &err),
            Status::kBadRequest);

  bad = wire;
  bad.resize(bad.size() - 4);  // shape/bytes mismatch
  EXPECT_EQ(parse_request_payload(
                reinterpret_cast<const uint8_t*>(bad.data()) + kHeaderBytes,
                bad.size() - kHeaderBytes, &out, &err),
            Status::kBadRequest);
}

// ---- wire robustness -------------------------------------------------------

/// One server + one registered model + one running ingress.
struct WireRig {
  serve::InferenceServer server;
  std::unique_ptr<IngressServer> ingress;

  explicit WireRig(IngressOptions opts = {}, int64_t max_batch = 4,
                   serve::BatcherOptions bopts = {}) {
    server.register_model("mnet", compile_spec(tiny_spec(11), max_batch),
                          bopts);
    ingress = std::make_unique<IngressServer>(server, std::move(opts));
    ingress->start();
  }
  ~WireRig() {
    ingress->stop();
    server.stop();
  }
  int port() const { return ingress->port(); }
  Client client(const std::string& token = "") {
    return Client({.host = "127.0.0.1", .port = port(), .token = token});
  }
};

TEST(NetWire, RoundTripMatchesInProcess) {
  WireRig rig;
  const Tensor image = make_image(21);
  const Tensor expect = rig.server.infer("mnet", image);
  Client client = rig.client();
  const ReplyFrame reply = client.infer("mnet", image);
  ASSERT_EQ(reply.status, Status::kOk) << reply.message;
  EXPECT_TRUE(bit_identical(reply.output, expect));
}

TEST(NetWire, PipelinedRepliesMatchedById) {
  WireRig rig;
  Client client = rig.client();
  std::vector<Tensor> images;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    images.push_back(make_image(100 + static_cast<uint64_t>(i)));
    ids.push_back(client.send("mnet", images.back()));
  }
  // Consume newest-first: the stash matches replies to ids regardless of
  // arrival order.
  for (int i = 5; i >= 0; --i) {
    const ReplyFrame reply = client.recv(ids[static_cast<size_t>(i)]);
    ASSERT_EQ(reply.status, Status::kOk) << reply.message;
    EXPECT_TRUE(bit_identical(
        reply.output, rig.server.infer("mnet", images[static_cast<size_t>(i)])));
  }
}

TEST(NetWire, UnknownModelAnsweredTypedAndConnectionSurvives) {
  WireRig rig;
  Client client = rig.client();
  const ReplyFrame miss = client.infer("nope", make_image(1));
  EXPECT_EQ(miss.status, Status::kNoSuchModel);
  const ReplyFrame hit = client.infer("mnet", make_image(2));
  EXPECT_EQ(hit.status, Status::kOk) << hit.message;
}

TEST(NetWire, GarbageMagicAnsweredThenClosed) {
  WireRig rig;
  const int fd = sockio::connect_tcp("127.0.0.1", rig.port(),
                                     std::chrono::milliseconds(5000));
  ASSERT_TRUE(sockio::send_all(fd, std::string(32, 'X')));
  ReplyFrame reply;
  ASSERT_TRUE(read_reply_raw(fd, &reply));
  EXPECT_EQ(reply.status, Status::kBadRequest);
  // Framing is unrecoverable: the server closes after the error reply.
  char byte;
  EXPECT_FALSE(sockio::recv_all(fd, &byte, 1));
  ::close(fd);
  // The event loop kept running: a fresh connection still serves.
  Client client = rig.client();
  EXPECT_EQ(client.infer("mnet", make_image(3)).status, Status::kOk);
}

TEST(NetWire, OversizedLengthPrefixKillsOnlyThatConnection) {
  WireRig rig;
  const int fd = sockio::connect_tcp("127.0.0.1", rig.port(),
                                     std::chrono::milliseconds(5000));
  std::string frame = encode_request(
      {.request_id = 1, .model = "mnet", .image = make_image(1)});
  const uint32_t huge = kDefaultMaxFrameBytes + 1;
  std::memcpy(frame.data() + 8, &huge, 4);
  ASSERT_TRUE(sockio::send_all(fd, frame));
  ReplyFrame reply;
  ASSERT_TRUE(read_reply_raw(fd, &reply));
  EXPECT_EQ(reply.status, Status::kBadRequest);
  char byte;
  EXPECT_FALSE(sockio::recv_all(fd, &byte, 1));
  ::close(fd);
  Client client = rig.client();
  EXPECT_EQ(client.infer("mnet", make_image(4)).status, Status::kOk);
}

TEST(NetWire, TruncatedFrameAtDisconnectOwesNoReply) {
  WireRig rig;
  const IngressServer::Stats before = rig.ingress->stats();
  const int fd = sockio::connect_tcp("127.0.0.1", rig.port(),
                                     std::chrono::milliseconds(5000));
  const std::string frame =
      encode_request({.request_id = 1, .model = "mnet",
                      .image = make_image(1)});
  // Header promises a payload that never fully arrives.
  ASSERT_TRUE(sockio::send_all(fd, frame.substr(0, kHeaderBytes + 10)));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ::close(fd);
  // Server keeps serving; the half-frame was never a request.
  Client client = rig.client();
  EXPECT_EQ(client.infer("mnet", make_image(5)).status, Status::kOk);
  EXPECT_EQ(rig.ingress->stats().frames, before.frames + 1);  // the real one
}

TEST(NetWire, BadPayloadInWellFramedFrameKeepsConnection) {
  WireRig rig;
  const int fd = sockio::connect_tcp("127.0.0.1", rig.port(),
                                     std::chrono::milliseconds(5000));
  // A perfectly framed 20-byte payload of zeros: parses an id, then dies at
  // the truncated priority/deadline - recoverable, kBadRequest.
  std::string frame = encode_request(
      {.request_id = 1, .model = "m", .image = make_image(1)});
  frame.resize(kHeaderBytes);
  const uint32_t len = 20;
  std::memcpy(frame.data() + 8, &len, 4);
  frame.append(20, '\0');
  ASSERT_TRUE(sockio::send_all(fd, frame));
  ReplyFrame reply;
  ASSERT_TRUE(read_reply_raw(fd, &reply));
  EXPECT_EQ(reply.status, Status::kBadRequest);
  // Same connection, valid frame: still served.
  ASSERT_TRUE(sockio::send_all(
      fd, encode_request(
              {.request_id = 2, .model = "mnet", .image = make_image(6)})));
  ASSERT_TRUE(read_reply_raw(fd, &reply));
  EXPECT_EQ(reply.request_id, 2u);
  EXPECT_EQ(reply.status, Status::kOk) << reply.message;
  ::close(fd);
}

TEST(NetWire, SlowLorisDoesNotStallTheEventLoop) {
  WireRig rig;
  const int slow = sockio::connect_tcp("127.0.0.1", rig.port(),
                                       std::chrono::milliseconds(5000));
  const Tensor image = make_image(31);
  const std::string frame =
      encode_request({.request_id = 5, .model = "mnet", .image = image});
  // Drip the frame in 8 slices; between slices, other clients must be
  // served promptly.
  const size_t slice = frame.size() / 8 + 1;
  Client fast = rig.client();
  for (size_t off = 0; off < frame.size(); off += slice) {
    ASSERT_TRUE(sockio::send_all(slow, frame.substr(off, slice)));
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(fast.infer("mnet", make_image(32)).status, Status::kOk);
    EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(2));
  }
  ReplyFrame reply;
  ASSERT_TRUE(read_reply_raw(slow, &reply));
  EXPECT_EQ(reply.request_id, 5u);
  EXPECT_EQ(reply.status, Status::kOk) << reply.message;
  EXPECT_TRUE(bit_identical(reply.output, rig.server.infer("mnet", image)));
  ::close(slow);
}

TEST(NetWire, DisconnectMidReplyNeverLeaksOrCrashes) {
  WireRig rig;
  const IngressServer::Stats before = rig.ingress->stats();
  {
    // Stall execution so the reply is guaranteed to complete only after the
    // peer is gone.
    std::unique_lock<std::mutex> stall(serve::execution_mutex());
    const int fd = sockio::connect_tcp("127.0.0.1", rig.port(),
                                       std::chrono::milliseconds(5000));
    ASSERT_TRUE(sockio::send_all(
        fd, encode_request(
                {.request_id = 9, .model = "mnet", .image = make_image(7)})));
    // Wait for the frame to be parsed and dispatched, then vanish.
    for (int i = 0; i < 200 && rig.ingress->stats().frames == before.frames;
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(rig.ingress->stats().frames, before.frames + 1);
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // The future is consumed either way: the reply is delivered into a write
  // queue (kernel buffers absorb it) or dropped at delivery.
  for (int i = 0; i < 400; ++i) {
    const IngressServer::Stats s = rig.ingress->stats();
    if (s.replies + s.dropped_replies == before.replies +
                                            before.dropped_replies + 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const IngressServer::Stats after = rig.ingress->stats();
  EXPECT_EQ(after.replies + after.dropped_replies,
            before.replies + before.dropped_replies + 1);
  // And the rig still serves.
  Client client = rig.client();
  EXPECT_EQ(client.infer("mnet", make_image(8)).status, Status::kOk);
}

TEST(NetWire, BackpressureNeverDropsAReply) {
  // Tiny server-side send buffer + tiny client receive buffer + a 64-byte
  // write-queue cap: with the reader idle, reply bytes overwhelm the kernel
  // in a few dozen frames and the connection's reads must pause - and every
  // reply must still arrive, exactly once, when the reader wakes up.
  WireRig rig({.max_conn_out_bytes = 64, .so_sndbuf = 4096,
               .dispatch_capacity = 512});
  obs::Counter pauses = obs::Registry::global().counter(
      "dsx_net_backpressure_pauses_total", {});
  const int64_t pauses_before = pauses.value();

  // Raw socket so SO_RCVBUF is clamped BEFORE connect (window negotiation).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int rcvbuf = 1024;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockio::set_io_timeout(fd, std::chrono::milliseconds(20000));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(rig.port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  constexpr int kRequests = 256;
  const Tensor image = make_image(300);
  std::atomic<bool> send_failed{false};
  std::thread writer([&] {
    for (int i = 0; i < kRequests; ++i) {
      RequestFrame req;
      req.request_id = static_cast<uint64_t>(i) + 1;
      req.model = "mnet";
      req.image = image;
      if (!sockio::send_all(fd, encode_request(req))) {
        send_failed.store(true);
        return;
      }
    }
  });
  // The pause must engage while we are not reading.
  bool paused = false;
  for (int i = 0; i < 2000 && !paused; ++i) {
    paused = pauses.value() > pauses_before;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(paused) << "write queue never exceeded the cap";
  // Now drain: unpausing must deliver every reply, each id exactly once.
  std::vector<int> seen(kRequests, 0);
  for (int i = 0; i < kRequests; ++i) {
    ReplyFrame reply;
    ASSERT_TRUE(read_reply_raw(fd, &reply)) << "reply stream ended early";
    ASSERT_EQ(reply.status, Status::kOk) << reply.message;
    ASSERT_GE(reply.request_id, 1u);
    ASSERT_LE(reply.request_id, static_cast<uint64_t>(kRequests));
    seen[static_cast<size_t>(reply.request_id - 1)]++;
  }
  writer.join();
  EXPECT_FALSE(send_failed.load());
  for (int i = 0; i < kRequests; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], 1);
  ::close(fd);
}

TEST(NetWire, AdmissionErrorsArriveAsFramedReplies) {
  // queue_capacity 1 + max_batch 1: with execution stalled, the batcher can
  // absorb at most its executing request plus one queued - the rest must
  // come back as framed kQueueFull, not dropped connections.
  WireRig rig({}, /*max_batch=*/1,
              serve::BatcherOptions{.max_batch = 1, .queue_capacity = 1});
  Client client = rig.client();
  std::vector<uint64_t> ids;
  {
    std::unique_lock<std::mutex> stall(serve::execution_mutex());
    for (int i = 0; i < 4; ++i) {
      ids.push_back(client.send("mnet", make_image(40 + i)));
    }
    // Let every frame reach a dispatch worker and hit the batcher while
    // execution is pinned.
    for (int i = 0; i < 400 && rig.ingress->stats().frames < 4; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  int ok = 0, queue_full = 0;
  for (uint64_t id : ids) {
    const ReplyFrame reply = client.recv(id);
    if (reply.status == Status::kOk) ++ok;
    if (reply.status == Status::kQueueFull) ++queue_full;
  }
  EXPECT_EQ(ok + queue_full, 4) << "every frame answered with a typed reply";
  EXPECT_GE(ok, 1);
  EXPECT_GE(queue_full, 2);
}

TEST(NetWire, ExpiredDeadlineComesBackTyped) {
  WireRig rig;
  Client client = rig.client();
  uint64_t blocked_id = 0;
  uint64_t doomed_id = 0;
  {
    std::unique_lock<std::mutex> stall(serve::execution_mutex());
    blocked_id = client.send("mnet", make_image(50));
    // Give the first request time to enter execution (and block).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    doomed_id = client.send("mnet", make_image(51),
                            serve::Priority::kInteractive,
                            /*deadline_us=*/30000);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  }
  EXPECT_EQ(client.recv(blocked_id).status, Status::kOk);
  EXPECT_EQ(client.recv(doomed_id).status, Status::kDeadlineExceeded);
}

// ---- tenant auth / quota / QoS ---------------------------------------------

IngressOptions tenant_opts() {
  IngressOptions opts;
  opts.allow_anonymous = false;
  opts.tenants = {
      TenantSpec{.token = "tok-a", .name = "alpha",
                 .priority = serve::Priority::kNormal, .max_inflight = 1},
      TenantSpec{.token = "tok-b", .name = "beta",
                 .priority = serve::Priority::kBulk},
  };
  return opts;
}

TEST(NetTenant, UnknownAndMissingTokensDenied) {
  WireRig rig(tenant_opts());
  Client anon = rig.client();
  EXPECT_EQ(anon.infer("mnet", make_image(1)).status, Status::kAuthDenied);
  Client bogus = rig.client("who-dis");
  EXPECT_EQ(bogus.infer("mnet", make_image(2)).status, Status::kAuthDenied);
  Client good = rig.client("tok-a");
  EXPECT_EQ(good.infer("mnet", make_image(3)).status, Status::kOk);
}

TEST(NetTenant, QuotaRejectsTypedWithoutDroppingConnection) {
  WireRig rig(tenant_opts());
  Client client = rig.client("tok-a");  // max_inflight = 1
  uint64_t first = 0, second = 0;
  {
    std::unique_lock<std::mutex> stall(serve::execution_mutex());
    first = client.send("mnet", make_image(4));
    second = client.send("mnet", make_image(5));
    // The second frame is parsed while the first is still in flight; the
    // quota answers it immediately.
    const ReplyFrame rejected = client.recv(second);
    EXPECT_EQ(rejected.status, Status::kQueueFull);
    EXPECT_NE(rejected.message.find("alpha"), std::string::npos);
  }
  EXPECT_EQ(client.recv(first).status, Status::kOk);
  // Quota slot freed: the tenant serves again.
  EXPECT_EQ(client.infer("mnet", make_image(6)).status, Status::kOk);
}

// ---- residency -------------------------------------------------------------

/// A store with `count` versions of the tiny arch (distinct seeds), plus
/// the per-model residency cost measured from one real compile.
struct StoreRig {
  deploy::ModelStore store;
  int64_t cost_floats = 0;

  explicit StoreRig(const std::string& dir, int count)
      : store(fresh_dir(dir)) {
    for (int i = 0; i < count; ++i) {
      const deploy::ArchSpec spec = tiny_spec(100 + static_cast<uint64_t>(i));
      auto net = deploy::build_architecture(spec);
      store.save_version("m" + std::to_string(i), "v1", *net, spec);
    }
    auto probe = store.compile("m0", "v1",
                               serve::CompileOptions{.max_batch = 4});
    cost_floats = probe->report().param_floats +
                  probe->report().workspace_floats;
  }

  ResidencyOptions budget_for(int resident_models) const {
    ResidencyOptions opts;
    opts.budget_floats = cost_floats * resident_models + cost_floats / 2;
    opts.compile.max_batch = 4;
    return opts;
  }
};

TEST(NetResidency, EvictsLruAndFaultsBackInBitIdentical) {
  StoreRig rig("residency_lru", 3);
  serve::InferenceServer server;
  ResidencyManager mgr(server, rig.store, rig.budget_for(2));
  for (int i = 0; i < 3; ++i) mgr.add_model("m" + std::to_string(i), "v1");

  const Tensor image = make_image(60);
  const Tensor first = mgr.infer("m0", image);
  EXPECT_TRUE(mgr.resident("m0"));
  // Two more models under a budget of two: m0 (LRU) must be demoted.
  mgr.infer("m1", image);
  mgr.infer("m2", image);
  EXPECT_FALSE(mgr.resident("m0"));
  EXPECT_TRUE(mgr.resident("m1"));
  EXPECT_TRUE(mgr.resident("m2"));
  const ResidencyStats mid = mgr.stats();
  EXPECT_EQ(mid.faults, 3);
  EXPECT_EQ(mid.evictions, 1);
  EXPECT_LE(mid.used_floats, rig.budget_for(2).budget_floats);

  // Fault back in: same stored weights, same compile - bit-identical logits,
  // and the caller never saw an error.
  const Tensor again = mgr.infer("m0", image);
  EXPECT_TRUE(bit_identical(again, first));
  EXPECT_TRUE(mgr.resident("m0"));
  EXPECT_EQ(mgr.stats().faults, 4);

  const std::string journal = obs::Journal::global().to_text();
  EXPECT_NE(journal.find("residency"), std::string::npos);
  EXPECT_NE(journal.find("evicted m0"), std::string::npos);
  EXPECT_NE(journal.find("faulted in m0/v1"), std::string::npos);
  server.stop();
}

TEST(NetResidency, PinnedModelsAreNeverEvicted) {
  StoreRig rig("residency_pin", 3);
  serve::InferenceServer server;
  ResidencyManager mgr(server, rig.store, rig.budget_for(2));
  mgr.add_model("m0", "v1", {.pinned = true});
  mgr.add_model("m1", "v1");
  mgr.add_model("m2", "v1");
  const Tensor image = make_image(61);
  mgr.infer("m0", image);
  // Cycle the other two repeatedly; only they may trade places.
  for (int round = 0; round < 3; ++round) {
    mgr.infer("m1", image);
    mgr.infer("m2", image);
    EXPECT_TRUE(mgr.resident("m0"));
  }
  server.stop();
}

TEST(NetResidency, SingleFlightFaultInCompilesOnce) {
  StoreRig rig("residency_herd", 3);
  serve::InferenceServer server;
  ResidencyManager mgr(server, rig.store, rig.budget_for(2));
  for (int i = 0; i < 3; ++i) mgr.add_model("m" + std::to_string(i), "v1");
  const Tensor image = make_image(62);
  mgr.infer("m0", image);
  mgr.infer("m1", image);
  mgr.infer("m2", image);  // evicts m0
  ASSERT_FALSE(mgr.resident("m0"));
  const int64_t faults_before = mgr.stats().faults;

  // Thundering herd for the cold model: one compile, everyone answered.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Tensor> answers(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { answers[static_cast<size_t>(t)] = mgr.infer("m0", image); });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mgr.stats().faults, faults_before + 1) << "herd compiled once";
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_TRUE(bit_identical(answers[static_cast<size_t>(t)], answers[0]));
  }
  server.stop();
}

TEST(NetResidency, MixedTenantWireTrafficUnderChurnZeroErrors) {
  StoreRig rig("residency_wire", 3);
  serve::InferenceServer server;
  const int metrics_port = server.start_exporter({.port = 0});
  ResidencyManager mgr(server, rig.store, rig.budget_for(2));
  for (int i = 0; i < 3; ++i) mgr.add_model("m" + std::to_string(i), "v1");
  // A direct (non-managed) model that hot-swaps underneath the traffic.
  server.register_model("direct", compile_spec(tiny_spec(500)));

  IngressOptions iopts;
  iopts.tenants = {
      TenantSpec{.token = "tok-a", .priority = serve::Priority::kNormal},
      TenantSpec{.token = "tok-b", .priority = serve::Priority::kBulk},
  };
  IngressServer ingress(server, iopts, &mgr);
  ingress.start();

  // Per-model references, compiled straight from the store.
  const Tensor image = make_image(70);
  std::vector<Tensor> refs;
  for (int i = 0; i < 3; ++i) {
    auto compiled = rig.store.compile("m" + std::to_string(i), "v1",
                                      serve::CompileOptions{.max_batch = 4});
    refs.push_back(compiled->run(image));
  }

  std::atomic<bool> stop_swaps{false};
  std::thread swapper([&] {
    // Hot-swap the direct model with a same-seed recompile: outputs stay
    // bit-identical while fleets churn underneath the wire traffic.
    while (!stop_swaps.load()) {
      server.swap_model("direct", compile_spec(tiny_spec(500)));
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  constexpr int kPerClient = 12;
  std::atomic<int> errors{0};
  std::atomic<int> answered{0};
  auto run_client = [&](const std::string& token) {
    Client client({.host = "127.0.0.1", .port = ingress.port(),
                   .token = token});
    for (int i = 0; i < kPerClient; ++i) {
      const int model = i % 4;
      const std::string name =
          model == 3 ? "direct" : "m" + std::to_string(model);
      const ReplyFrame reply = client.infer(name, image);
      answered.fetch_add(1);
      if (reply.status != Status::kOk) {
        errors.fetch_add(1);
        continue;
      }
      if (model != 3 &&
          !bit_identical(reply.output, refs[static_cast<size_t>(model)])) {
        errors.fetch_add(1);
      }
    }
  };
  std::thread a([&] { run_client("tok-a"); });
  std::thread b([&] { run_client("tok-b"); });
  std::thread anon([&] { run_client(""); });
  a.join();
  b.join();
  anon.join();
  stop_swaps.store(true);
  swapper.join();

  EXPECT_EQ(answered.load(), 3 * kPerClient) << "exactly-once over the wire";
  EXPECT_EQ(errors.load(), 0);
  const ResidencyStats rs = mgr.stats();
  EXPECT_GT(rs.evictions, 0) << "budget churned under traffic";
  EXPECT_GT(rs.faults, 3);

  // The /residency endpoint serves the table through the shared exporter.
  const obs::HttpResponse http =
      obs::http_get("127.0.0.1", metrics_port, "/residency");
  EXPECT_EQ(http.status, 200);
  EXPECT_NE(http.body.find("\"budget_floats\""), std::string::npos);
  EXPECT_NE(http.body.find("\"m0\""), std::string::npos);
  EXPECT_NE(http.body.find("\"evictions\""), std::string::npos);

  ingress.stop();
  server.stop();
}

}  // namespace
}  // namespace dsx::net
