// Unit + property tests for src/ops: GEMM against a naive reference,
// im2col/col2im adjointness, convolution forward against direct references,
// backward passes against central-difference numerical gradients, pooling,
// batch-norm, activations, linear and softmax/cross-entropy.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/check.hpp"
#include "ops/activations.hpp"
#include "ops/batchnorm.hpp"
#include "ops/conv2d.hpp"
#include "ops/depthwise.hpp"
#include "ops/gemm.hpp"
#include "ops/im2col.hpp"
#include "ops/linear.hpp"
#include "ops/pooling.hpp"
#include "ops/softmax_xent.hpp"
#include "testing_utils.hpp"

namespace dsx {
namespace {

using testing::ProbeLoss;
using testing::max_numeric_grad_error;
using testing::naive_conv2d;

// ---- GEMM -----------------------------------------------------------------

Tensor naive_matmul(const Tensor& a, const Tensor& b, bool ta, bool tb) {
  const int64_t M = ta ? a.shape().dim(1) : a.shape().dim(0);
  const int64_t K = ta ? a.shape().dim(0) : a.shape().dim(1);
  const int64_t N = tb ? b.shape().dim(0) : b.shape().dim(1);
  Tensor c(Shape{M, N});
  for (int64_t i = 0; i < M; ++i) {
    for (int64_t j = 0; j < N; ++j) {
      double acc = 0.0;
      for (int64_t k = 0; k < K; ++k) {
        const float av = ta ? a.at(k, i) : a.at(i, k);
        const float bv = tb ? b.at(j, k) : b.at(k, j);
        acc += static_cast<double>(av) * bv;
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

class GemmTransposes : public ::testing::TestWithParam<std::tuple<bool, bool>> {
};

TEST_P(GemmTransposes, MatchesNaive) {
  const auto [ta, tb] = GetParam();
  Rng rng(11);
  const int64_t M = 7, N = 9, K = 5;
  Tensor a = random_uniform(ta ? Shape{K, M} : Shape{M, K}, rng);
  Tensor b = random_uniform(tb ? Shape{N, K} : Shape{K, N}, rng);
  Tensor got = matmul(a, b, ta, tb);
  Tensor want = naive_matmul(a, b, ta, tb);
  EXPECT_LT(max_abs_diff(got, want), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, GemmTransposes,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(Gemm, AlphaBetaAccumulate) {
  const int64_t M = 3, N = 4, K = 2;
  Rng rng(2);
  Tensor a = random_uniform(Shape{M, K}, rng);
  Tensor b = random_uniform(Shape{K, N}, rng);
  Tensor c(Shape{M, N}, 1.0f);
  gemm(false, false, M, N, K, 2.0f, a.data(), K, b.data(), N, 0.5f, c.data(),
       N);
  Tensor want = naive_matmul(a, b, false, false);
  for (int64_t i = 0; i < M; ++i) {
    for (int64_t j = 0; j < N; ++j) {
      EXPECT_NEAR(c.at(i, j), 2.0f * want.at(i, j) + 0.5f, 1e-4f);
    }
  }
}

TEST(Gemm, DegenerateDims) {
  Tensor a(Shape{0, 3}), b(Shape{3, 4});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{0, 4}));
  EXPECT_THROW(matmul(Tensor(Shape{2, 3}), Tensor(Shape{4, 5})), Error);
}

TEST(Gemm, LargerParallelPathMatchesNaive) {
  Rng rng(13);
  Tensor a = random_uniform(Shape{64, 48}, rng);
  Tensor b = random_uniform(Shape{48, 33}, rng);
  EXPECT_LT(max_abs_diff(matmul(a, b), naive_matmul(a, b, false, false)),
            5e-4f);
}

// ---- im2col ------------------------------------------------------------------

TEST(Im2col, IdentityFor1x1) {
  Rng rng(3);
  Tensor in = random_uniform(make_nchw(1, 3, 4, 4), rng);
  Tensor col(Shape{3, 16});
  im2col(in.data(), 3, 4, 4, 1, 1, 0, col.data());
  for (int64_t i = 0; i < in.numel(); ++i) EXPECT_EQ(col[i], in[i]);
}

TEST(Im2col, KnownPatchExtraction) {
  Tensor in(make_nchw(1, 1, 3, 3));
  for (int64_t i = 0; i < 9; ++i) in[i] = static_cast<float>(i);
  // K=2, stride=1, pad=0 -> col is [4, 4].
  Tensor col(Shape{4, 4});
  im2col(in.data(), 1, 3, 3, 2, 1, 0, col.data());
  // Row 0 = top-left of every window: 0,1,3,4.
  EXPECT_EQ(col.at(0, 0), 0.0f);
  EXPECT_EQ(col.at(0, 1), 1.0f);
  EXPECT_EQ(col.at(0, 2), 3.0f);
  EXPECT_EQ(col.at(0, 3), 4.0f);
  // Row 3 = bottom-right of every window: 4,5,7,8.
  EXPECT_EQ(col.at(3, 0), 4.0f);
  EXPECT_EQ(col.at(3, 3), 8.0f);
}

TEST(Im2col, PaddingProducesZeros) {
  Tensor in(make_nchw(1, 1, 2, 2), 1.0f);
  const int64_t Ho = conv_out_size(2, 3, 1, 1);
  Tensor col(Shape{9, Ho * Ho});
  im2col(in.data(), 1, 2, 2, 3, 1, 1, col.data());
  // Corner tap (0,0) of output (0,0) reads padded zero.
  EXPECT_EQ(col.at(0, 0), 0.0f);
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)>.
  Rng rng(5);
  const int64_t C = 2, H = 5, W = 4, K = 3, stride = 2, pad = 1;
  const int64_t Ho = conv_out_size(H, K, stride, pad);
  const int64_t Wo = conv_out_size(W, K, stride, pad);
  Tensor x = random_uniform(make_nchw(1, C, H, W), rng);
  Tensor y = random_uniform(Shape{C * K * K, Ho * Wo}, rng);
  Tensor colx(Shape{C * K * K, Ho * Wo});
  im2col(x.data(), C, H, W, K, stride, pad, colx.data());
  Tensor liftedy(make_nchw(1, C, H, W));
  col2im_add(y.data(), C, H, W, K, stride, pad, liftedy.data());
  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < colx.numel(); ++i) lhs += colx[i] * y[i];
  for (int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * liftedy[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

// ---- conv2d forward (parameterized) -------------------------------------------

struct ConvCase {
  int64_t N, Cin, Cout, H, W, K, stride, pad, groups;
};

class ConvForward : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvForward, MatchesNaiveReference) {
  const ConvCase p = GetParam();
  Rng rng(17);
  Tensor in = random_uniform(make_nchw(p.N, p.Cin, p.H, p.W), rng);
  Tensor w = random_uniform(Shape{p.Cout, p.Cin / p.groups, p.K, p.K}, rng);
  Tensor b = random_uniform(Shape{p.Cout}, rng);
  Conv2dArgs args{p.stride, p.pad, p.groups};
  Tensor got = conv2d_forward(in, w, &b, args);
  Tensor want = naive_conv2d(in, w, &b, p.stride, p.pad, p.groups);
  EXPECT_EQ(got.shape(), want.shape());
  EXPECT_LT(max_abs_diff(got, want), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvForward,
    ::testing::Values(
        ConvCase{1, 3, 4, 6, 6, 3, 1, 1, 1},   // standard 3x3
        ConvCase{2, 4, 6, 5, 5, 3, 1, 1, 1},   // batch > 1
        ConvCase{1, 4, 8, 8, 8, 3, 2, 1, 1},   // strided
        ConvCase{1, 4, 4, 5, 7, 3, 1, 0, 1},   // no pad, rectangular
        ConvCase{1, 4, 8, 6, 6, 1, 1, 0, 1},   // pointwise (1x1 fast path)
        ConvCase{1, 8, 8, 6, 6, 1, 1, 0, 2},   // GPW cg=2
        ConvCase{1, 8, 16, 4, 4, 1, 1, 0, 4},  // GPW cg=4
        ConvCase{2, 6, 6, 5, 5, 3, 1, 1, 3},   // grouped 3x3
        ConvCase{1, 8, 8, 7, 7, 1, 2, 0, 2},   // strided pointwise
        ConvCase{1, 2, 2, 4, 4, 5, 1, 2, 1})); // kernel > input w/ pad

TEST(Conv2d, ShapeValidation) {
  Tensor in(make_nchw(1, 4, 4, 4));
  Tensor w(Shape{8, 2, 3, 3});
  Conv2dArgs args{1, 1, 1};
  EXPECT_THROW(conv2d_forward(in, w, nullptr, args), Error);  // Cin/g mismatch
  args.groups = 3;
  EXPECT_THROW(conv2d_forward(in, w, nullptr, args), Error);  // 4 % 3 != 0
}

TEST(Conv2d, BiasShapeValidation) {
  Tensor in(make_nchw(1, 2, 4, 4));
  Tensor w(Shape{4, 2, 1, 1});
  Tensor bad_bias(Shape{3});
  Conv2dArgs args;
  EXPECT_THROW(conv2d_forward(in, w, &bad_bias, args), Error);
}

// ---- conv2d backward -----------------------------------------------------------

class ConvBackward : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvBackward, GradientsMatchNumerics) {
  const ConvCase p = GetParam();
  Rng rng(23);
  Tensor in = random_uniform(make_nchw(p.N, p.Cin, p.H, p.W), rng);
  Tensor w = random_uniform(Shape{p.Cout, p.Cin / p.groups, p.K, p.K}, rng,
                            -0.5f, 0.5f);
  Tensor b = random_uniform(Shape{p.Cout}, rng);
  Conv2dArgs args{p.stride, p.pad, p.groups};

  const Shape out_shape = conv2d_output_shape(in.shape(), w.shape(), args);
  ProbeLoss probe(out_shape);
  const auto loss = [&] {
    return probe.value(conv2d_forward(in, w, &b, args));
  };

  Tensor dout = probe.mask;
  Conv2dGrads grads = conv2d_backward(in, w, dout, args, true, true);

  EXPECT_LT(max_numeric_grad_error(w, loss, grads.dweight), 2e-2f);
  EXPECT_LT(max_numeric_grad_error(b, loss, grads.dbias), 2e-2f);
  EXPECT_LT(max_numeric_grad_error(in, loss, grads.dinput), 2e-2f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvBackward,
    ::testing::Values(ConvCase{1, 2, 3, 4, 4, 3, 1, 1, 1},
                      ConvCase{2, 2, 2, 3, 3, 1, 1, 0, 1},
                      ConvCase{1, 4, 4, 4, 4, 1, 1, 0, 2},
                      ConvCase{1, 2, 2, 5, 5, 3, 2, 1, 1},
                      ConvCase{1, 4, 4, 4, 4, 3, 1, 1, 2}));

TEST(Conv2dBackward, SkipsDinputWhenNotNeeded) {
  Rng rng(29);
  Tensor in = random_uniform(make_nchw(1, 2, 3, 3), rng);
  Tensor w = random_uniform(Shape{2, 2, 1, 1}, rng);
  Conv2dArgs args;
  Tensor dout(make_nchw(1, 2, 3, 3), 1.0f);
  Conv2dGrads g = conv2d_backward(in, w, dout, args, false, false);
  EXPECT_FALSE(g.dinput.defined());
  EXPECT_FALSE(g.dbias.defined());
  EXPECT_TRUE(g.dweight.defined());
}

// ---- depthwise -----------------------------------------------------------------

struct DwCase {
  int64_t N, C, H, W, K, stride, pad;
};

class DepthwiseSweep : public ::testing::TestWithParam<DwCase> {};

TEST_P(DepthwiseSweep, ForwardMatchesGroupedConv) {
  // Depthwise == grouped conv with groups == C and one filter per group.
  const DwCase p = GetParam();
  Rng rng(31);
  Tensor in = random_uniform(make_nchw(p.N, p.C, p.H, p.W), rng);
  Tensor w = random_uniform(Shape{p.C, 1, p.K, p.K}, rng);
  Tensor b = random_uniform(Shape{p.C}, rng);
  DepthwiseArgs args{p.stride, p.pad};
  Tensor got = depthwise_forward(in, w, &b, args);
  Tensor want = naive_conv2d(in, w, &b, p.stride, p.pad, p.C);
  EXPECT_LT(max_abs_diff(got, want), 1e-4f);
}

TEST_P(DepthwiseSweep, BackwardMatchesNumerics) {
  const DwCase p = GetParam();
  Rng rng(37);
  Tensor in = random_uniform(make_nchw(p.N, p.C, p.H, p.W), rng);
  Tensor w = random_uniform(Shape{p.C, 1, p.K, p.K}, rng, -0.5f, 0.5f);
  Tensor b = random_uniform(Shape{p.C}, rng);
  DepthwiseArgs args{p.stride, p.pad};

  ProbeLoss probe(depthwise_output_shape(in.shape(), w.shape(), args));
  const auto loss = [&] {
    return probe.value(depthwise_forward(in, w, &b, args));
  };
  DepthwiseGrads g =
      depthwise_backward(in, w, probe.mask, args, true, true);
  EXPECT_LT(max_numeric_grad_error(w, loss, g.dweight), 2e-2f);
  EXPECT_LT(max_numeric_grad_error(b, loss, g.dbias), 2e-2f);
  EXPECT_LT(max_numeric_grad_error(in, loss, g.dinput), 2e-2f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DepthwiseSweep,
                         ::testing::Values(DwCase{1, 3, 5, 5, 3, 1, 1},
                                           DwCase{2, 2, 6, 6, 3, 2, 1},
                                           DwCase{1, 4, 4, 4, 3, 1, 0},
                                           DwCase{1, 2, 7, 5, 5, 2, 2}));

TEST(Depthwise, RejectsBadWeightShape) {
  Tensor in(make_nchw(1, 3, 4, 4));
  Tensor w(Shape{3, 2, 3, 3});
  EXPECT_THROW(depthwise_forward(in, w, nullptr, {}), Error);
  Tensor w2(Shape{4, 1, 3, 3});
  EXPECT_THROW(depthwise_forward(in, w2, nullptr, {}), Error);
}

// ---- pooling -------------------------------------------------------------------

TEST(MaxPool, ForwardPicksMaxAndArgmax) {
  Tensor in(make_nchw(1, 1, 2, 2));
  in[0] = 1.0f; in[1] = 5.0f; in[2] = 3.0f; in[3] = 2.0f;
  MaxPoolResult res = maxpool2d_forward(in, {2, 2});
  EXPECT_EQ(res.output.shape(), make_nchw(1, 1, 1, 1));
  EXPECT_FLOAT_EQ(res.output[0], 5.0f);
  EXPECT_EQ(res.argmax[0], 1);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  Rng rng(41);
  Tensor in = random_uniform(make_nchw(2, 3, 4, 4), rng);
  MaxPoolResult res = maxpool2d_forward(in, {2, 2});
  Tensor dout(res.output.shape(), 1.0f);
  Tensor din = maxpool2d_backward(dout, res, in.shape(), {2, 2});
  // Each window routes exactly one unit of gradient.
  EXPECT_DOUBLE_EQ(sum(din), static_cast<double>(dout.numel()));
  // Gradient lands only on window maxima.
  for (int64_t i = 0; i < din.numel(); ++i) {
    EXPECT_TRUE(din[i] == 0.0f || din[i] == 1.0f);
  }
}

TEST(MaxPool, NumericGradient) {
  Rng rng(43);
  Tensor in = random_uniform(make_nchw(1, 2, 4, 4), rng);
  PoolArgs args{2, 2};
  MaxPoolResult res = maxpool2d_forward(in, args);
  ProbeLoss probe(res.output.shape());
  const auto loss = [&] {
    return probe.value(maxpool2d_forward(in, args).output);
  };
  Tensor din = maxpool2d_backward(probe.mask, res, in.shape(), args);
  EXPECT_LT(max_numeric_grad_error(in, loss, din, 1e-3f), 2e-2f);
}

TEST(AvgPool, ForwardAverages) {
  Tensor in(make_nchw(1, 1, 2, 2));
  in[0] = 1.0f; in[1] = 2.0f; in[2] = 3.0f; in[3] = 6.0f;
  Tensor out = avgpool2d_forward(in, {2, 2});
  EXPECT_FLOAT_EQ(out[0], 3.0f);
}

TEST(AvgPool, BackwardSpreadsUniformly) {
  Tensor dout(make_nchw(1, 1, 1, 1), 4.0f);
  Tensor din = avgpool2d_backward(dout, make_nchw(1, 1, 2, 2), {2, 2});
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(din[i], 1.0f);
}

TEST(GlobalAvgPool, ForwardBackward) {
  Rng rng(47);
  Tensor in = random_uniform(make_nchw(2, 3, 4, 4), rng);
  Tensor out = global_avgpool_forward(in);
  EXPECT_EQ(out.shape(), make_nchw(2, 3, 1, 1));
  double manual = 0.0;
  for (int64_t y = 0; y < 4; ++y) {
    for (int64_t x = 0; x < 4; ++x) manual += in.at(1, 2, y, x);
  }
  EXPECT_NEAR(out.at(1, 2, 0, 0), manual / 16.0, 1e-5);

  Tensor dout(out.shape(), 16.0f);
  Tensor din = global_avgpool_backward(dout, in.shape());
  EXPECT_FLOAT_EQ(din.at(0, 0, 3, 3), 1.0f);
}

// ---- batchnorm -----------------------------------------------------------------

TEST(BatchNorm, TrainingNormalizesBatch) {
  Rng rng(53);
  Tensor in = random_uniform(make_nchw(4, 3, 5, 5), rng, -3.0f, 7.0f);
  BatchNormState state = BatchNormState::create(3);
  BatchNormCache cache;
  Tensor out = batchnorm_forward(in, state, &cache, /*training=*/true);
  // Per-channel mean ~0, var ~1.
  const int64_t plane = 25;
  for (int64_t c = 0; c < 3; ++c) {
    double m = 0.0, v = 0.0;
    for (int64_t n = 0; n < 4; ++n) {
      for (int64_t j = 0; j < plane; ++j) {
        const float x = out.data()[(n * 3 + c) * plane + j];
        m += x;
        v += static_cast<double>(x) * x;
      }
    }
    m /= 100.0;
    v = v / 100.0 - m * m;
    EXPECT_NEAR(m, 0.0, 1e-4);
    EXPECT_NEAR(v, 1.0, 1e-2);
  }
}

TEST(BatchNorm, RunningStatsConvergeToBatchStats) {
  Rng rng(59);
  Tensor in = random_normal(make_nchw(8, 2, 4, 4), rng, 2.0f, 3.0f);
  BatchNormState state = BatchNormState::create(2);
  BatchNormCache cache;
  for (int i = 0; i < 60; ++i) {
    batchnorm_forward(in, state, &cache, true);
  }
  EXPECT_NEAR(state.running_mean[0], 2.0f, 0.5f);
  EXPECT_NEAR(state.running_var[0], 9.0f, 2.5f);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  Tensor in(make_nchw(1, 1, 2, 2), 4.0f);
  BatchNormState state = BatchNormState::create(1);
  state.running_mean[0] = 2.0f;
  state.running_var[0] = 4.0f;
  Tensor out = batchnorm_forward(in, state, nullptr, /*training=*/false);
  EXPECT_NEAR(out[0], (4.0f - 2.0f) / 2.0f, 1e-3f);
}

TEST(BatchNorm, AffineParamsApply) {
  Tensor in(make_nchw(1, 1, 1, 2));
  in[0] = -1.0f;
  in[1] = 1.0f;
  BatchNormState state = BatchNormState::create(1);
  state.gamma[0] = 3.0f;
  state.beta[0] = 0.5f;
  BatchNormCache cache;
  Tensor out = batchnorm_forward(in, state, &cache, true);
  EXPECT_NEAR(out[0], -3.0f + 0.5f, 1e-2f);
  EXPECT_NEAR(out[1], 3.0f + 0.5f, 1e-2f);
}

TEST(BatchNorm, BackwardMatchesNumerics) {
  Rng rng(61);
  Tensor in = random_uniform(make_nchw(2, 2, 3, 3), rng);
  BatchNormState state = BatchNormState::create(2);
  state.gamma[0] = 1.3f;
  state.gamma[1] = 0.7f;
  state.beta[0] = 0.2f;

  BatchNormCache cache;
  ProbeLoss probe(in.shape());
  const auto loss = [&] {
    BatchNormState s2 = state;  // forward mutates running stats; copy
    BatchNormCache c2;
    return probe.value(batchnorm_forward(in, s2, &c2, true));
  };
  batchnorm_forward(in, state, &cache, true);
  BatchNormGrads g = batchnorm_backward(probe.mask, state, cache);
  EXPECT_LT(max_numeric_grad_error(in, loss, g.dinput, 1e-2f), 3e-2f);
  EXPECT_LT(max_numeric_grad_error(state.gamma, loss, g.dgamma, 1e-2f), 3e-2f);
  EXPECT_LT(max_numeric_grad_error(state.beta, loss, g.dbeta, 1e-2f), 3e-2f);
}

TEST(BatchNorm, TrainingRequiresCache) {
  Tensor in(make_nchw(1, 1, 2, 2));
  BatchNormState state = BatchNormState::create(1);
  EXPECT_THROW(batchnorm_forward(in, state, nullptr, true), Error);
}

// ---- activations ----------------------------------------------------------------

TEST(ReLU, ForwardClampsNegatives) {
  Tensor in(Shape{4});
  in[0] = -1.0f; in[1] = 0.0f; in[2] = 2.0f; in[3] = -0.5f;
  Tensor out = relu_forward(in);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
}

TEST(ReLU, BackwardMasksBySign) {
  Tensor in(Shape{3});
  in[0] = -1.0f; in[1] = 1.0f; in[2] = 0.0f;
  Tensor dout(Shape{3}, 5.0f);
  Tensor din = relu_backward(dout, in);
  EXPECT_FLOAT_EQ(din[0], 0.0f);
  EXPECT_FLOAT_EQ(din[1], 5.0f);
  EXPECT_FLOAT_EQ(din[2], 0.0f);  // subgradient at 0 -> 0
}

// ---- linear --------------------------------------------------------------------

TEST(Linear, ForwardMatchesManual) {
  Tensor in(Shape{1, 2});
  in[0] = 1.0f; in[1] = 2.0f;
  Tensor w(Shape{3, 2});
  for (int64_t i = 0; i < 6; ++i) w[i] = static_cast<float>(i);
  Tensor b(Shape{3});
  b[0] = 0.5f;
  Tensor out = linear_forward(in, w, &b);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0 * 1 + 1 * 2 + 0.5f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 2 * 1 + 3 * 2);
  EXPECT_FLOAT_EQ(out.at(0, 2), 4 * 1 + 5 * 2);
}

TEST(Linear, BackwardMatchesNumerics) {
  Rng rng(67);
  Tensor in = random_uniform(Shape{3, 4}, rng);
  Tensor w = random_uniform(Shape{5, 4}, rng, -0.5f, 0.5f);
  Tensor b = random_uniform(Shape{5}, rng);
  ProbeLoss probe(Shape{3, 5});
  const auto loss = [&] { return probe.value(linear_forward(in, w, &b)); };
  LinearGrads g = linear_backward(in, w, probe.mask, true, true);
  EXPECT_LT(max_numeric_grad_error(w, loss, g.dweight), 2e-2f);
  EXPECT_LT(max_numeric_grad_error(b, loss, g.dbias), 2e-2f);
  EXPECT_LT(max_numeric_grad_error(in, loss, g.dinput), 2e-2f);
}

// ---- softmax / cross-entropy ----------------------------------------------------

TEST(Softmax, RowsSumToOne) {
  Rng rng(71);
  Tensor logits = random_uniform(Shape{4, 7}, rng, -10.0f, 10.0f);
  Tensor p = softmax(logits);
  for (int64_t n = 0; n < 4; ++n) {
    double row = 0.0;
    for (int64_t k = 0; k < 7; ++k) {
      EXPECT_GE(p.at(n, k), 0.0f);
      row += p.at(n, k);
    }
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor logits(Shape{1, 3});
  logits[0] = 1000.0f; logits[1] = 1000.0f; logits[2] = -1000.0f;
  Tensor p = softmax(logits);
  EXPECT_NEAR(p[0], 0.5f, 1e-5f);
  EXPECT_NEAR(p[2], 0.0f, 1e-6f);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(Xent, UniformLogitsGiveLogK) {
  Tensor logits(Shape{2, 4}, 0.0f);
  const std::vector<int32_t> labels = {1, 3};
  XentResult res = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(res.loss, std::log(4.0), 1e-5);
}

TEST(Xent, GradientIsSoftmaxMinusOneHotOverN) {
  Rng rng(73);
  Tensor logits = random_uniform(Shape{2, 3}, rng);
  const std::vector<int32_t> labels = {2, 0};
  Tensor p = softmax(logits);
  XentResult res = softmax_cross_entropy(logits, labels);
  for (int64_t n = 0; n < 2; ++n) {
    for (int64_t k = 0; k < 3; ++k) {
      const float onehot = labels[static_cast<size_t>(n)] == k ? 1.0f : 0.0f;
      EXPECT_NEAR(res.dlogits.at(n, k), (p.at(n, k) - onehot) / 2.0f, 1e-5f);
    }
  }
}

TEST(Xent, GradientMatchesNumerics) {
  Rng rng(79);
  Tensor logits = random_uniform(Shape{3, 4}, rng);
  const std::vector<int32_t> labels = {0, 2, 3};
  XentResult res = softmax_cross_entropy(logits, labels);
  const auto loss = [&] {
    return softmax_cross_entropy(logits, labels).loss;
  };
  EXPECT_LT(max_numeric_grad_error(logits, loss, res.dlogits, 1e-2f), 1e-3f);
}

TEST(Xent, ValidatesLabels) {
  Tensor logits(Shape{2, 3});
  const std::vector<int32_t> bad = {0, 3};
  EXPECT_THROW(softmax_cross_entropy(logits, bad), Error);
  const std::vector<int32_t> neg = {-1, 0};
  EXPECT_THROW(softmax_cross_entropy(logits, neg), Error);
  const std::vector<int32_t> short_labels = {0};
  EXPECT_THROW(softmax_cross_entropy(logits, short_labels), Error);
}

}  // namespace
}  // namespace dsx
