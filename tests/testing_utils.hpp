// Shared test helpers: naive reference kernels, ULP comparisons and
// numerical gradient checks.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"

namespace dsx::testing {

/// True when the tensors have the same shape and byte-identical contents -
/// the enforcement form of the library's bit-identity contracts.
inline bool bit_identical(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

/// Distance between two floats in units in the last place: the number of
/// representable floats between them (0 = bit-identical, and +0.0 == -0.0).
/// NaNs and differing signs map to a huge distance so they always fail a
/// bounded comparison.
inline int64_t ulp_distance(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) return INT64_MAX;
  if (a == b) return 0;  // covers +0.0 vs -0.0
  int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  if ((ia < 0) != (ib < 0)) return INT64_MAX;  // opposite nonzero signs
  const int64_t da = ia < 0 ? -static_cast<int64_t>(ia ^ INT32_MIN)
                            : static_cast<int64_t>(ia);
  const int64_t db = ib < 0 ? -static_cast<int64_t>(ib ^ INT32_MIN)
                            : static_cast<int64_t>(ib);
  return da > db ? da - db : db - da;
}

/// Asserts every element of `a` is within `max_ulp` ULP of `b` (gtest
/// EXPECT semantics: failures are reported with index and values, execution
/// continues). This is the enforcement form of the tune::Fidelity::
/// kUlpBounded contract (simd::kMaxUlp).
inline void expect_allclose_ulp(const Tensor& a, const Tensor& b,
                                int64_t max_ulp) {
  ASSERT_EQ(a.shape(), b.shape()) << "ulp compare: shape mismatch";
  int64_t worst = 0, worst_i = -1;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const int64_t d = ulp_distance(a[i], b[i]);
    if (d > worst) {
      worst = d;
      worst_i = i;
    }
  }
  EXPECT_LE(worst, max_ulp) << "worst at i=" << worst_i << ": " << a[worst_i]
                            << " vs " << b[worst_i];
}

/// Naive NCHW convolution reference: groups/stride/pad supported, O(everything).
inline Tensor naive_conv2d(const Tensor& in, const Tensor& w, const Tensor* b,
                           int64_t stride, int64_t pad, int64_t groups) {
  const int64_t N = in.shape().n(), Cin = in.shape().c();
  const int64_t H = in.shape().h(), W = in.shape().w();
  const int64_t Cout = w.shape().dim(0), K = w.shape().dim(2);
  const int64_t cin_g = Cin / groups, cout_g = Cout / groups;
  const int64_t Ho = (H + 2 * pad - K) / stride + 1;
  const int64_t Wo = (W + 2 * pad - K) / stride + 1;
  Tensor out(make_nchw(N, Cout, Ho, Wo));
  for (int64_t n = 0; n < N; ++n) {
    for (int64_t oc = 0; oc < Cout; ++oc) {
      const int64_t g = oc / cout_g;
      for (int64_t y = 0; y < Ho; ++y) {
        for (int64_t x = 0; x < Wo; ++x) {
          double acc = b != nullptr ? b->data()[oc] : 0.0;
          for (int64_t ic = 0; ic < cin_g; ++ic) {
            for (int64_t ky = 0; ky < K; ++ky) {
              for (int64_t kx = 0; kx < K; ++kx) {
                const int64_t iy = y * stride + ky - pad;
                const int64_t ix = x * stride + kx - pad;
                if (iy < 0 || iy >= H || ix < 0 || ix >= W) continue;
                acc += w.at(oc, ic, ky, kx) *
                       in.at(n, g * cin_g + ic, iy, ix);
              }
            }
          }
          out.at(n, oc, y, x) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

/// Naive SCC reference straight from the paper's Eq. for SCC (window +
/// cyclic channel indexing).
inline Tensor naive_scc(const Tensor& in, const Tensor& w, const Tensor* b,
                        int64_t gw, const std::vector<int64_t>& starts,
                        int64_t stride) {
  const int64_t N = in.shape().n(), Cin = in.shape().c();
  const int64_t H = in.shape().h(), W = in.shape().w();
  const int64_t Cout = w.shape().dim(0);
  const int64_t Ho = (H - 1) / stride + 1;
  const int64_t Wo = (W - 1) / stride + 1;
  Tensor out(make_nchw(N, Cout, Ho, Wo));
  for (int64_t n = 0; n < N; ++n) {
    for (int64_t f = 0; f < Cout; ++f) {
      const int64_t start = starts[static_cast<size_t>(f)];
      for (int64_t y = 0; y < Ho; ++y) {
        for (int64_t x = 0; x < Wo; ++x) {
          double acc = b != nullptr ? b->data()[f] : 0.0;
          for (int64_t k = 0; k < gw; ++k) {
            acc += w.at(f, k) * in.at(n, (start + k) % Cin, y * stride,
                                      x * stride);
          }
          out.at(n, f, y, x) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

/// Scalar probe loss: sum(output .* mask) with a fixed pseudo-random mask,
/// so dLoss/dOutput == mask.
struct ProbeLoss {
  Tensor mask;
  explicit ProbeLoss(const Shape& out_shape, uint64_t seed = 99) {
    Rng rng(seed);
    mask = random_uniform(out_shape, rng, -1.0f, 1.0f);
  }
  double value(const Tensor& out) const {
    double acc = 0.0;
    for (int64_t i = 0; i < out.numel(); ++i) acc += out[i] * mask[i];
    return acc;
  }
};

/// Central-difference numerical gradient of `loss_fn` wrt `param`, compared
/// against `analytic`. Returns the max absolute error.
inline float max_numeric_grad_error(
    Tensor& param, const std::function<double()>& loss_fn,
    const Tensor& analytic, float eps = 1e-2f) {
  DSX_REQUIRE(param.shape() == analytic.shape(),
              "grad check: analytic shape mismatch");
  float max_err = 0.0f;
  for (int64_t i = 0; i < param.numel(); ++i) {
    const float saved = param[i];
    param[i] = saved + eps;
    const double up = loss_fn();
    param[i] = saved - eps;
    const double down = loss_fn();
    param[i] = saved;
    const float numeric = static_cast<float>((up - down) / (2.0 * eps));
    max_err = std::max(max_err, std::abs(numeric - analytic[i]));
  }
  return max_err;
}

}  // namespace dsx::testing
