// Integration tests: end-to-end training on the synthetic tasks, the
// SCC-vs-GPW accuracy mechanism (Table I / Table IV ordering), data-parallel
// gradient equivalence, and checkpoint round-trips.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "data/dataloader.hpp"
#include "data/synth.hpp"
#include "device/device_group.hpp"
#include "models/mobilenet.hpp"
#include "models/schemes.hpp"
#include "nn/containers.hpp"
#include "nn/layers_basic.hpp"
#include "nn/layers_conv.hpp"
#include "nn/metrics.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor_ops.hpp"

namespace dsx {
namespace {

/// Tiny probe model for the cross-channel task: one channel-fusion layer
/// (the scheme under test) + BN + ReLU + GAP + linear head. The only way to
/// beat chance is to fuse information across the right channel pair.
std::unique_ptr<nn::Sequential> make_probe_model(
    const data::CrossChannelOptions& opts, models::ConvScheme scheme,
    int64_t cg, double co, Rng& rng) {
  auto model = std::make_unique<nn::Sequential>();
  const int64_t C = opts.channels;
  const int64_t F = 32;  // fusion width
  switch (scheme) {
    case models::ConvScheme::kDWPW:
      model->emplace<nn::Conv2d>(C, F, 1, 1, 0, 1, rng, true);
      break;
    case models::ConvScheme::kDWGPW:
      model->emplace<nn::Conv2d>(C, F, 1, 1, 0, cg, rng, true);
      break;
    case models::ConvScheme::kDWSCC: {
      scc::SCCConfig cfg;
      cfg.in_channels = C;
      cfg.out_channels = F;
      cfg.groups = cg;
      cfg.overlap = co;
      model->emplace<nn::SCCConv>(cfg, rng, true);
      break;
    }
    default:
      DSX_REQUIRE(false, "probe model: unsupported scheme");
  }
  model->emplace<nn::ReLU>();
  model->emplace<nn::GlobalAvgPool>();
  model->emplace<nn::Flatten>();
  model->emplace<nn::Linear>(F, opts.num_classes, rng, true);
  return model;
}

double train_probe(nn::Sequential& model, const data::Dataset& train,
                   const data::Dataset& test, int epochs, float lr) {
  nn::SGD opt({.lr = lr, .momentum = 0.9f, .weight_decay = 0.0f});
  nn::Trainer trainer(model, opt);
  data::DataLoader loader(train, {.batch_size = 32, .shuffle = true,
                                  .seed = 5});
  for (int e = 0; e < epochs; ++e) {
    loader.reset();
    while (loader.has_next()) {
      const data::Batch b = loader.next();
      trainer.train_batch(b.images, b.labels);
    }
  }
  const data::Batch tb = data::full_batch(test);
  return trainer.evaluate(tb.images, tb.labels).accuracy;
}

TEST(Integration, PwSolvesCrossChannelTask) {
  data::CrossChannelOptions opts;
  const data::Dataset train = make_cross_channel_task(512, 31, opts);
  const data::Dataset test = make_cross_channel_task(256, 32, opts);
  Rng rng(33);
  auto model = make_probe_model(opts, models::ConvScheme::kDWPW, 1, 1.0, rng);
  const double acc = train_probe(*model, train, test, 15, 0.05f);
  EXPECT_GT(acc, 0.9) << "PW should solve the cross-channel task";
}

TEST(Integration, SccBeatsGpwAtCg4) {
  // The headline mechanism of Tables I/IV: at cg=4, GPW's windows {01}{23}
  // {45}{67} cover none of the planted pairs (1,2),(3,4),(5,6),(7,0), while
  // SCC-cg4-co50% covers all of them.
  data::CrossChannelOptions opts;
  const data::Dataset train = make_cross_channel_task(512, 41, opts);
  const data::Dataset test = make_cross_channel_task(256, 42, opts);

  Rng rng_g(43);
  auto gpw = make_probe_model(opts, models::ConvScheme::kDWGPW, 4, 0.0, rng_g);
  const double acc_gpw = train_probe(*gpw, train, test, 15, 0.05f);

  Rng rng_s(43);
  auto scc = make_probe_model(opts, models::ConvScheme::kDWSCC, 4, 0.5, rng_s);
  const double acc_scc = train_probe(*scc, train, test, 15, 0.05f);

  EXPECT_GT(acc_scc, acc_gpw + 0.2)
      << "SCC-cg4-co50% should decisively beat GPW-cg4 (got scc=" << acc_scc
      << " gpw=" << acc_gpw << ")";
  EXPECT_GT(acc_scc, 0.8);
  EXPECT_LT(acc_gpw, 0.6);  // GPW-cg4 cannot see any planted pair
}

TEST(Integration, TinyMobileNetSccLearnsSynthCifar) {
  const data::Dataset train = data::make_synth_cifar(256, 51, 16, 3, 4);
  const data::Dataset test = data::make_synth_cifar(128, 52, 16, 3, 4);
  Rng rng(53);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWSCC;
  cfg.cg = 2;
  cfg.co = 0.5;
  cfg.width_mult = 0.125;
  auto model = models::build_mobilenet(4, cfg, rng);

  nn::SGD opt({.lr = 0.02f, .momentum = 0.9f, .weight_decay = 1e-4f});
  nn::Trainer trainer(*model, opt);
  data::DataLoader loader(train,
                          {.batch_size = 32, .shuffle = true, .seed = 7});
  double first_loss = 0.0, last_loss = 0.0;
  for (int e = 0; e < 10; ++e) {
    loader.reset();
    while (loader.has_next()) {
      const data::Batch b = loader.next();
      const nn::StepResult r = trainer.train_batch(b.images, b.labels);
      if (e == 0 && first_loss == 0.0) first_loss = r.loss;
      last_loss = r.loss;
    }
  }
  EXPECT_LT(last_loss, first_loss);
  const data::Batch tb = data::full_batch(test);
  const double acc = trainer.evaluate(tb.images, tb.labels).accuracy;
  EXPECT_GT(acc, 0.30) << "well above 25% chance after 10 epochs";
}

TEST(Integration, DataParallelGradientsMatchSingleDevice) {
  // Two replicas, each on half the batch, all-reduced gradients == gradients
  // of the full batch on one device (model has no batch statistics).
  Rng rng(61);
  auto make_model = [](uint64_t seed) {
    Rng r(seed);
    auto m = std::make_unique<nn::Sequential>();
    m->emplace<nn::Conv2d>(3, 8, 3, 1, 1, 1, r, true);
    m->emplace<nn::ReLU>();
    m->emplace<nn::GlobalAvgPool>();
    m->emplace<nn::Flatten>();
    m->emplace<nn::Linear>(8, 4, r, true);
    return m;
  };
  auto reference = make_model(7);
  auto replica0 = make_model(7);
  auto replica1 = make_model(7);

  const data::Dataset ds = data::make_synth_cifar(8, 63, 8, 3, 4);
  Tensor full = ds.images.clone();
  const std::vector<int32_t>& labels = ds.labels;

  nn::SGD opt({});
  nn::Trainer t_ref(*reference, opt);
  t_ref.forward_backward(full, labels);

  // Shard: first 4 / last 4 samples.
  const int64_t sample = 3 * 8 * 8;
  Tensor half0(make_nchw(4, 3, 8, 8)), half1(make_nchw(4, 3, 8, 8));
  std::copy_n(full.data(), 4 * sample, half0.data());
  std::copy_n(full.data() + 4 * sample, 4 * sample, half1.data());
  const std::vector<int32_t> l0(labels.begin(), labels.begin() + 4);
  const std::vector<int32_t> l1(labels.begin() + 4, labels.end());

  nn::Trainer t0(*replica0, opt), t1(*replica1, opt);
  t0.forward_backward(half0, l0);
  t1.forward_backward(half1, l1);

  // All-reduce (mean) the replica gradients.
  device::DeviceGroup group(2);
  std::vector<std::vector<Tensor*>> replica_grads(2);
  for (nn::Param* p : replica0->params()) replica_grads[0].push_back(&p->grad);
  for (nn::Param* p : replica1->params()) replica_grads[1].push_back(&p->grad);
  group.all_reduce_mean(replica_grads);

  // Loss is a batch mean, so mean-of-half-batch-grads == full-batch grads.
  const auto ref_params = reference->params();
  const auto rep_params = replica0->params();
  ASSERT_EQ(ref_params.size(), rep_params.size());
  for (size_t i = 0; i < ref_params.size(); ++i) {
    EXPECT_LT(max_abs_diff(ref_params[i]->grad, rep_params[i]->grad), 1e-4f)
        << ref_params[i]->name;
  }
}

TEST(Integration, CheckpointRoundTripPreservesPredictions) {
  Rng rng(71);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWSCC;
  cfg.cg = 2;
  cfg.co = 0.5;
  cfg.width_mult = 0.125;
  auto model = models::build_mobilenet(4, cfg, rng);

  Rng drng(72);
  Tensor x = random_uniform(make_nchw(2, 3, 16, 16), drng);
  const Tensor before = model->forward(x, false);

  // Save and reload every parameter through the binary format.
  std::stringstream blob;
  for (nn::Param* p : model->params()) save_tensor(blob, p->value);
  for (nn::Param* p : model->params()) p->value.fill(0.0f);
  for (nn::Param* p : model->params()) {
    Tensor loaded = load_tensor(blob);
    std::copy_n(loaded.data(), loaded.numel(), p->value.data());
  }
  const Tensor after = model->forward(x, false);
  EXPECT_LT(max_abs_diff(before, after), 1e-6f);
}

TEST(Integration, SccDropInDoesNotChangeModelInterface) {
  // Swapping implementations inside a trained model must not change its
  // predictions (the "drop-in replacement" claim).
  Rng rng(81);
  data::CrossChannelOptions opts;
  auto model =
      make_probe_model(opts, models::ConvScheme::kDWSCC, 2, 0.5, rng);
  Rng drng(82);
  Tensor x = random_uniform(make_nchw(2, opts.channels, 8, 8), drng);
  const Tensor ref = model->forward(x, false);
  model->for_each_layer([](nn::Layer& l) {
    if (auto* scc = dynamic_cast<nn::SCCConv*>(&l)) {
      scc->set_impl(nn::SCCImpl::kConvStack);
    }
  });
  EXPECT_LT(max_abs_diff(model->forward(x, false), ref), 1e-4f);
}

}  // namespace
}  // namespace dsx
