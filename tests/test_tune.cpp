// dsx::tune - the empirical autotuner.
//
// The load-bearing guarantees:
//   * every registered candidate of an op family is BIT-identical to the
//     default implementation on randomized shapes (this is what makes
//     swapping variants safe without re-validating numerics);
//   * tuning `off` is bit-identical to calling the default kernels directly
//     (pre-tuning behavior is pinned);
//   * a CompiledModel compiled in `tune` mode produces exactly the same
//     outputs as one compiled in `off` mode;
//   * the TuningCache round-trips through disk, rejects foreign/stale
//     files, and lets a second compile warm-start without re-measuring.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/binary_io.hpp"
#include "core/scc_kernels.hpp"
#include "device/parallel_for.hpp"
#include "models/mobilenet.hpp"
#include "nn/layers_basic.hpp"
#include "nn/layers_conv.hpp"
#include "serve/compiled_model.hpp"
#include "tensor/random.hpp"
#include "tune/dispatch.hpp"
#include "tune/tune.hpp"
#include "testing_utils.hpp"

namespace dsx {
namespace {

using testing::bit_identical;

/// Every test leaves the global session as it found it: off, empty cache,
/// no autosave path.
struct SessionGuard {
  SessionGuard() { reset(); }
  ~SessionGuard() { reset(); }
  static void reset() {
    tune::Session::global().set_mode(tune::Mode::kOff);
    tune::Session::global().set_cache_path("");
    tune::Session::global().cache().clear();
    tune::Session::global().set_tuner_options({});
  }
};

tune::TuningRecord make_test_record(int64_t n) {
  tune::TuningRecord rec;
  rec.key.op = tune::OpFamily::kSCCForward;
  rec.key.n = n;
  rec.key.c = 64;
  rec.key.h = 8;
  rec.key.w = 8;
  rec.key.cout = 128;
  rec.key.gw = 16;
  rec.key.step = 8;
  rec.key.threads = 2;
  rec.variant = "fused";
  rec.grain = device::kSerialGrain;
  rec.median_ns = 123.0;
  rec.default_ns = 456.0;
  rec.iters = 5;
  return rec;
}

// ---- ProblemKey ---------------------------------------------------------------

TEST(TuneProblemKey, OrderingEqualityAndNames) {
  tune::TuningRecord a = make_test_record(1);
  tune::TuningRecord b = make_test_record(2);
  EXPECT_TRUE(a.key == a.key);
  EXPECT_FALSE(a.key == b.key);
  EXPECT_TRUE(a.key < b.key || b.key < a.key);
  EXPECT_NE(a.key.to_string().find("scc_forward"), std::string::npos);

  Rng rng(3);
  const Tensor in = random_uniform(make_nchw(2, 8, 5, 5), rng);
  const Tensor w = random_uniform(Shape{16, 4, 3, 3}, rng);
  const tune::ProblemKey ck =
      tune::make_conv2d_forward_key(in.shape(), w.shape(), {1, 1, 2});
  EXPECT_EQ(ck.op, tune::OpFamily::kConv2dForward);
  EXPECT_EQ(ck.cout, 16);
  EXPECT_EQ(ck.kernel, 3);
  EXPECT_EQ(ck.groups, 2);
  EXPECT_NE(ck.to_string().find("conv2d_forward"), std::string::npos);
}

// ---- GrainOverride ------------------------------------------------------------

TEST(TuneGrainOverride, AppliesToDefaultOnlyAndRestores) {
  EXPECT_EQ(device::effective_grain(device::kDefaultGrain),
            device::kDefaultGrain);
  {
    device::GrainOverride scope(64);
    EXPECT_EQ(device::effective_grain(device::kDefaultGrain), 64);
    // Call sites that chose an explicit grain keep it.
    EXPECT_EQ(device::effective_grain(16), 16);
    {
      device::GrainOverride inner(device::kSerialGrain);
      EXPECT_EQ(device::effective_grain(device::kDefaultGrain),
                device::kSerialGrain);
    }
    EXPECT_EQ(device::effective_grain(device::kDefaultGrain), 64);
  }
  EXPECT_EQ(device::effective_grain(device::kDefaultGrain),
            device::kDefaultGrain);

  // A zero/negative grain installs nothing (tuning's "library default").
  {
    device::GrainOverride noop(0);
    EXPECT_EQ(device::effective_grain(device::kDefaultGrain),
              device::kDefaultGrain);
  }

  // Results are schedule-independent: a forced-serial loop matches.
  std::vector<int64_t> out(4096, 0);
  {
    device::GrainOverride scope(device::kSerialGrain);
    device::parallel_for(4096, [&](int64_t i) { out[i] = i * i; });
  }
  for (int64_t i = 0; i < 4096; ++i) ASSERT_EQ(out[i], i * i);
}

// ---- registry candidates are bit-identical ------------------------------------

TEST(TuneRegistry, SccCandidatesBitIdenticalPropertyStyle) {
  SessionGuard guard;
  Rng rng(11);
  const struct {
    int64_t batch, cin, cout, spatial, cg, stride;
    double co;
    bool bias;
  } cases[] = {
      {1, 8, 12, 5, 2, 1, 0.5, false},
      {2, 16, 24, 7, 4, 1, 0.25, true},
      {2, 12, 8, 6, 3, 2, 0.33, true},
      {3, 32, 32, 4, 8, 1, 0.75, false},
  };
  for (const auto& c : cases) {
    const scc::SCCConfig cfg{c.cin, c.cout, c.cg, c.co, c.stride};
    const scc::ChannelWindowMap map(cfg);
    const Tensor in =
        random_uniform(make_nchw(c.batch, c.cin, c.spatial, c.spatial), rng);
    const Tensor w = random_uniform(Shape{c.cout, map.group_width()}, rng);
    const Tensor b = random_uniform(Shape{c.cout}, rng);
    const Tensor* bias = c.bias ? &b : nullptr;

    const Tensor expect = scc::scc_forward(in, w, bias, map);
    const tune::ProblemKey key = tune::make_scc_forward_key(in.shape(), map);
    const auto candidates = tune::KernelRegistry::global().scc_forward(key);
    ASSERT_GE(candidates.size(), 3u);  // fused, fused_nocc, gemm at least
    EXPECT_EQ(candidates.front().variant, "fused");  // default first
    for (const auto& cand : candidates) {
      Workspace ws;
      Tensor out(scc::scc_output_shape(in.shape(), map));
      cand.run({&in, &w, bias, &map, &ws, &out});
      EXPECT_TRUE(bit_identical(expect, out))
          << cand.label() << " diverges on " << key.to_string();
    }
  }
}

TEST(TuneRegistry, ConvCandidatesBitIdenticalPropertyStyle) {
  SessionGuard guard;
  Rng rng(13);
  const struct {
    int64_t batch, cin, cout, spatial, k, stride, pad, groups;
    bool bias;
  } cases[] = {
      {2, 8, 16, 6, 3, 1, 1, 1, true},
      {1, 12, 12, 7, 3, 2, 0, 2, false},
      {2, 16, 32, 5, 1, 1, 0, 1, true},
      {1, 16, 16, 5, 1, 1, 0, 4, false},  // grouped 1x1 (GPW)
      {2, 6, 9, 9, 5, 2, 2, 3, true},
  };
  for (const auto& c : cases) {
    const Conv2dArgs args{c.stride, c.pad, c.groups};
    const Tensor in =
        random_uniform(make_nchw(c.batch, c.cin, c.spatial, c.spatial), rng);
    const Tensor w =
        random_uniform(Shape{c.cout, c.cin / c.groups, c.k, c.k}, rng);
    const Tensor b = random_uniform(Shape{c.cout}, rng);
    const Tensor* bias = c.bias ? &b : nullptr;

    const Tensor expect = conv2d_forward(in, w, bias, args);
    // Independent semantic reference (double accumulator - tolerance, not
    // bit, equality): candidates must agree with the math, and then be
    // bit-identical to each other.
    const Tensor naive =
        testing::naive_conv2d(in, w, bias, c.stride, c.pad, c.groups);
    ASSERT_EQ(expect.shape(), naive.shape());
    for (int64_t i = 0; i < expect.numel(); ++i) {
      ASSERT_NEAR(expect[i], naive[i], 1e-3f) << "semantic reference, i=" << i;
    }
    const tune::ProblemKey key =
        tune::make_conv2d_forward_key(in.shape(), w.shape(), args);
    const auto candidates = tune::KernelRegistry::global().conv2d_forward(key);
    ASSERT_GE(candidates.size(), 2u);  // im2col + direct at least
    EXPECT_EQ(candidates.front().variant, "im2col");
    for (const auto& cand : candidates) {
      Workspace ws;
      Tensor out(conv2d_output_shape(in.shape(), w.shape(), args));
      cand.run({&in, &w, bias, &args, &ws, &out});
      EXPECT_TRUE(bit_identical(expect, out))
          << cand.label() << " diverges on " << key.to_string();
    }
  }
}

// ---- TuningCache --------------------------------------------------------------

TEST(TuneCache, RoundTripsThroughDisk) {
  tune::TuningCache cache;
  cache.put(make_test_record(1));
  cache.put(make_test_record(2));
  ASSERT_EQ(cache.size(), 2);

  const std::string path = ::testing::TempDir() + "dsx_tune_roundtrip.bin";
  cache.save_file(path);

  tune::TuningCache loaded;
  loaded.load_file(path);
  EXPECT_EQ(loaded.size(), 2);
  const auto rec = loaded.find(make_test_record(2).key);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->variant, "fused");
  EXPECT_EQ(rec->grain, device::kSerialGrain);
  EXPECT_DOUBLE_EQ(rec->median_ns, 123.0);
  EXPECT_DOUBLE_EQ(rec->default_ns, 456.0);
  EXPECT_EQ(rec->iters, 5);
  EXPECT_FALSE(loaded.find(make_test_record(3).key).has_value());
}

TEST(TuneCache, PutOverwritesSameKey) {
  tune::TuningCache cache;
  cache.put(make_test_record(1));
  tune::TuningRecord updated = make_test_record(1);
  updated.variant = "gemm";
  cache.put(updated);
  EXPECT_EQ(cache.size(), 1);
  EXPECT_EQ(cache.find(updated.key)->variant, "gemm");
}

TEST(TuneCache, RejectsVersionMismatchAndBadMagic) {
  tune::TuningCache cache;
  cache.put(make_test_record(1));
  std::ostringstream os(std::ios::binary);
  cache.save(os);
  std::string bytes = os.str();

  // Bump the version field (8 bytes little-endian right after the magic).
  std::string stale = bytes;
  stale[4] = static_cast<char>(tune::TuningCache::kVersion + 1);
  {
    std::istringstream is(stale, std::ios::binary);
    tune::TuningCache fresh;
    EXPECT_THROW(fresh.load(is), Error);
  }
  // Corrupt the magic.
  std::string foreign = bytes;
  foreign[0] = 'X';
  {
    std::istringstream is(foreign, std::ios::binary);
    tune::TuningCache fresh;
    EXPECT_THROW(fresh.load(is), Error);
  }
  // Truncate mid-record.
  {
    std::istringstream is(bytes.substr(0, bytes.size() / 2),
                          std::ios::binary);
    tune::TuningCache fresh;
    EXPECT_THROW(fresh.load(is), Error);
  }
  // The original still loads.
  {
    std::istringstream is(bytes, std::ios::binary);
    tune::TuningCache fresh;
    fresh.load(is);
    EXPECT_EQ(fresh.size(), 1);
  }
}

TEST(TuneCache, RejectsV1FormatFileWithoutFidelity) {
  // A faithful v1 file: same record layout as today's minus the fidelity
  // field (v1 predates tune::Fidelity). The version check must reject it
  // up front - a fidelity-less record silently parsed under the v2 layout
  // would misread median_ns bytes as the fidelity and corrupt dispatch.
  std::ostringstream os(std::ios::binary);
  const char magic[4] = {'D', 'S', 'X', 'U'};
  os.write(magic, 4);
  io::write_i64(os, 1);  // kVersion was 1 before fidelity existed
  io::write_i64(os, 1);  // one record
  const tune::TuningRecord rec = make_test_record(1);
  io::write_i64(os, static_cast<int64_t>(rec.key.op));
  for (const int64_t v : {rec.key.n, rec.key.c, rec.key.h, rec.key.w,
                          rec.key.cout, rec.key.kernel, rec.key.stride,
                          rec.key.pad, rec.key.groups, rec.key.gw,
                          rec.key.step, rec.key.threads}) {
    io::write_i64(os, v);
  }
  io::write_i64(os, static_cast<int64_t>(rec.key.dtype));
  io::write_str(os, rec.variant);
  io::write_i64(os, rec.grain);
  io::write_f64(os, rec.median_ns);
  io::write_f64(os, rec.default_ns);
  io::write_i64(os, rec.iters);

  std::istringstream is(os.str(), std::ios::binary);
  tune::TuningCache fresh;
  EXPECT_THROW(
      {
        try {
          fresh.load(is);
        } catch (const Error& e) {
          // The error must say what to do, not just fail.
          EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
          throw;
        }
      },
      Error);
  // Nothing was applied: a stale record never half-loads.
  EXPECT_EQ(fresh.size(), 0);
}

// ---- dispatch -----------------------------------------------------------------

TEST(TuneDispatch, OffModeIsDefaultKernelBitExact) {
  SessionGuard guard;
  Rng rng(17);
  const scc::SCCConfig cfg{16, 24, 4, 0.5, 1};
  const scc::ChannelWindowMap map(cfg);
  const Tensor in = random_uniform(make_nchw(2, 16, 6, 6), rng);
  const Tensor w = random_uniform(Shape{24, map.group_width()}, rng);

  const Tensor expect = scc::scc_forward(in, w, nullptr, map);
  Workspace ws;
  Tensor out(scc::scc_output_shape(in.shape(), map));
  tune::SccSite site;
  tune::scc_forward_dispatch(in, w, nullptr, map, ws, out, &site);
  EXPECT_TRUE(bit_identical(expect, out));
  // Off mode resolves nothing and performs no measurements.
  EXPECT_FALSE(site.resolved());
  EXPECT_EQ(tune::Session::global().tunes_performed(), 0);
}

TEST(TuneDispatch, CachedModeBakesRecordWithoutMeasuring) {
  SessionGuard guard;
  Rng rng(19);
  const scc::SCCConfig cfg{16, 24, 4, 0.5, 1};
  const scc::ChannelWindowMap map(cfg);
  const Tensor in = random_uniform(make_nchw(2, 16, 6, 6), rng);
  const Tensor w = random_uniform(Shape{24, map.group_width()}, rng);
  const Tensor expect = scc::scc_forward(in, w, nullptr, map);

  // Seed a record steering this problem to the no-cycle-table variant.
  tune::TuningRecord rec;
  rec.key = tune::make_scc_forward_key(in.shape(), map);
  rec.variant = "fused_nocc";
  rec.grain = tune::kGrainDefault;
  rec.median_ns = 1.0;
  rec.default_ns = 2.0;
  rec.iters = 1;
  tune::Session::global().cache().put(rec);

  const int64_t tunes_before = tune::Session::global().tunes_performed();
  tune::Session::ScopedMode scope(tune::Mode::kCached);
  Workspace ws;
  Tensor out(scc::scc_output_shape(in.shape(), map));
  tune::SccSite site;
  tune::scc_forward_dispatch(in, w, nullptr, map, ws, out, &site);

  EXPECT_TRUE(bit_identical(expect, out));
  ASSERT_TRUE(site.resolved());
  EXPECT_EQ(site.baked->variant, "fused_nocc");
  ASSERT_TRUE(site.record.has_value());
  EXPECT_EQ(site.record->variant, "fused_nocc");
  // kCached never measures.
  EXPECT_EQ(tune::Session::global().tunes_performed(), tunes_before);

  // Baked sites skip the session entirely on later calls.
  tune::Session::global().set_mode(tune::Mode::kOff);
  Tensor out2(scc::scc_output_shape(in.shape(), map));
  tune::scc_forward_dispatch(in, w, nullptr, map, ws, out2, &site);
  EXPECT_TRUE(bit_identical(expect, out2));
}

TEST(TuneDispatch, CachedMissRunsDefaultAndStaleRecordFallsBack) {
  SessionGuard guard;
  Rng rng(23);
  const Conv2dArgs args{1, 1, 1};
  const Tensor in = random_uniform(make_nchw(1, 8, 6, 6), rng);
  const Tensor w = random_uniform(Shape{12, 8, 3, 3}, rng);
  const Tensor expect = conv2d_forward(in, w, nullptr, args);

  tune::Session::ScopedMode scope(tune::Mode::kCached);
  {
    // Miss: default runs, the site bakes the default candidate, no record.
    Workspace ws;
    Tensor out(expect.shape());
    tune::ConvSite site;
    tune::conv2d_forward_dispatch(in, w, nullptr, args, ws, out, &site);
    EXPECT_TRUE(bit_identical(expect, out));
    ASSERT_TRUE(site.resolved());
    EXPECT_EQ(site.baked->variant, "im2col");
    EXPECT_FALSE(site.record.has_value());
  }
  {
    // A record naming a variant this registry does not offer must not
    // break dispatch - it falls back to the default implementation.
    tune::TuningRecord stale;
    stale.key = tune::make_conv2d_forward_key(in.shape(), w.shape(), args);
    stale.variant = "simd_magic_v2";
    tune::Session::global().cache().put(stale);
    Workspace ws;
    Tensor out(expect.shape());
    tune::ConvSite site;
    tune::conv2d_forward_dispatch(in, w, nullptr, args, ws, out, &site);
    EXPECT_TRUE(bit_identical(expect, out));
    ASSERT_TRUE(site.resolved());
    EXPECT_EQ(site.baked->variant, "im2col");
    EXPECT_FALSE(site.record.has_value());
  }
}

TEST(TuneDispatch, TuneModeMeasuresOncePersistsAndWarmStarts) {
  SessionGuard guard;
  Rng rng(29);
  const scc::SCCConfig cfg{16, 24, 4, 0.5, 1};
  const scc::ChannelWindowMap map(cfg);
  const Tensor in = random_uniform(make_nchw(1, 16, 5, 5), rng);
  const Tensor w = random_uniform(Shape{24, map.group_width()}, rng);
  const Tensor expect = scc::scc_forward(in, w, nullptr, map);

  const std::string path = ::testing::TempDir() + "dsx_tune_warmstart.bin";
  std::remove(path.c_str());
  tune::Session::global().set_cache_path(path);
  tune::Session::global().set_tuner_options({.warmup = 0, .iters = 1});
  tune::Session::ScopedMode scope(tune::Mode::kTune);

  const int64_t before = tune::Session::global().tunes_performed();
  Workspace ws;
  Tensor out(scc::scc_output_shape(in.shape(), map));
  tune::SccSite site;
  tune::scc_forward_dispatch(in, w, nullptr, map, ws, out, &site);
  EXPECT_TRUE(bit_identical(expect, out));
  EXPECT_EQ(tune::Session::global().tunes_performed(), before + 1);
  ASSERT_TRUE(site.resolved());
  ASSERT_TRUE(site.record.has_value());
  EXPECT_GT(site.record->median_ns, 0.0);

  // Same problem, new site: the record is reused, nothing re-measured.
  Tensor out2(scc::scc_output_shape(in.shape(), map));
  tune::SccSite site2;
  tune::scc_forward_dispatch(in, w, nullptr, map, ws, out2, &site2);
  EXPECT_TRUE(bit_identical(expect, out2));
  EXPECT_EQ(tune::Session::global().tunes_performed(), before + 1);

  // "Second process": a fresh cache loads the autosaved file and the same
  // problem warm-starts without re-measuring.
  tune::Session::global().cache().clear();
  tune::Session::global().set_cache_path(path);  // reloads the file
  Tensor out3(scc::scc_output_shape(in.shape(), map));
  tune::SccSite site3;
  tune::scc_forward_dispatch(in, w, nullptr, map, ws, out3, &site3);
  EXPECT_TRUE(bit_identical(expect, out3));
  EXPECT_EQ(tune::Session::global().tunes_performed(), before + 1);
  ASSERT_TRUE(site3.record.has_value());
  EXPECT_EQ(site3.record->variant, site.record->variant);
  std::remove(path.c_str());
}

TEST(TuneSession, TornCacheFileDegradesToColdStart) {
  SessionGuard guard;
  const std::string path = ::testing::TempDir() + "dsx_tune_torn.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "DSXU\x01garbage-that-is-not-a-valid-cache";
  }
  // Auto-load paths must warn and continue, not throw: a torn write would
  // otherwise permanently brick every startup that names this file.
  tune::Session::global().set_cache_path(path);
  EXPECT_EQ(tune::Session::global().cache().size(), 0);
  // The strict API still rejects it for callers who asked explicitly.
  tune::TuningCache strict;
  EXPECT_THROW(strict.load_file(path), Error);
  std::remove(path.c_str());
}

// ---- Tuner --------------------------------------------------------------------

TEST(TuneTuner, RecordsDefaultTimeAndPicksARegisteredCandidate) {
  SessionGuard guard;
  Rng rng(31);
  const scc::SCCConfig cfg{16, 24, 4, 0.5, 1};
  const scc::ChannelWindowMap map(cfg);
  const Tensor in = random_uniform(make_nchw(1, 16, 5, 5), rng);
  const Tensor w = random_uniform(Shape{24, map.group_width()}, rng);
  const tune::ProblemKey key = tune::make_scc_forward_key(in.shape(), map);

  const tune::Tuner tuner({.warmup = 0, .iters = 1});
  const tune::TuneResult result = tuner.tune_scc(key, in, w, nullptr, map);
  EXPECT_EQ(result.timings.size(),
            tune::KernelRegistry::global().scc_forward(key).size());
  EXPECT_GT(result.record.median_ns, 0.0);
  EXPECT_GT(result.record.default_ns, 0.0);
  EXPECT_TRUE(tune::KernelRegistry::global()
                  .find_scc(key, result.record.variant, result.record.grain)
                  .has_value());
  // The winner is never slower than the measured default.
  EXPECT_LE(result.record.median_ns, result.record.default_ns * 1.0001);
}

// ---- CompiledModel integration ------------------------------------------------

std::unique_ptr<nn::Sequential> tiny_model(uint64_t seed) {
  Rng rng(seed);
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 16, 3, 1, 1, 1, rng, /*bias=*/true);
  net->emplace<nn::ReLU>();
  net->emplace<nn::SCCConv>(scc::SCCConfig{16, 32, 4, 0.5, 1}, rng,
                            /*bias=*/true);
  net->emplace<nn::ReLU>();
  net->emplace<nn::SCCConv>(scc::SCCConfig{32, 16, 4, 0.5, 2}, rng,
                            /*bias=*/true);
  return net;
}

TEST(TuneCompiledModel, TuneModeMatchesOffModeBitExact) {
  SessionGuard guard;
  const Shape image{3, 8, 8};
  serve::CompiledModel off(tiny_model(41), image, {.max_batch = 4});
  serve::CompiledModel tuned(tiny_model(41), image,
                             {.max_batch = 4,
                              .tuning = tune::Mode::kTune,
                              .tuner = {.warmup = 0, .iters = 1}});

  EXPECT_EQ(off.report().layers_tuned, 0);
  EXPECT_TRUE(off.report().tuned.empty());
  EXPECT_EQ(tuned.report().layers_tuned, 3);  // conv + 2 scc sites
  EXPECT_EQ(tuned.report().tuned.size(), 3u);
  for (const serve::TunedLayerChoice& c : tuned.report().tuned) {
    EXPECT_FALSE(c.variant.empty());
    EXPECT_GT(c.median_ns, 0.0);
    EXPECT_GT(c.default_ns, 0.0);
  }
  // The compile pass restores the session (mode off, options default).
  EXPECT_EQ(tune::Session::global().mode(), tune::Mode::kOff);

  Rng rng(43);
  for (int64_t batch : {1, 3, 4}) {
    const Tensor x = random_uniform(make_nchw(batch, 3, 8, 8), rng);
    EXPECT_TRUE(bit_identical(off.run(x), tuned.run(x)))
        << "batch " << batch;
  }
}

TEST(TuneCompiledModel, SecondCompileWarmStartsFromPersistedCache) {
  SessionGuard guard;
  const Shape image{3, 8, 8};
  const std::string path = ::testing::TempDir() + "dsx_tune_compile.bin";
  std::remove(path.c_str());

  const int64_t before = tune::Session::global().tunes_performed();
  serve::CompiledModel first(tiny_model(47), image,
                             {.max_batch = 4,
                              .tuning = tune::Mode::kTune,
                              .tuning_cache = path,
                              .tuner = {.warmup = 0, .iters = 1}});
  const int64_t cold = tune::Session::global().tunes_performed() - before;
  EXPECT_GT(cold, 0);
  EXPECT_EQ(first.report().layers_tuned, 3);

  // "Second process": wipe the in-memory cache, compile the same
  // architecture again against the persisted file - zero re-measurements.
  tune::Session::global().cache().clear();
  serve::CompiledModel second(tiny_model(47), image,
                              {.max_batch = 4,
                               .tuning = tune::Mode::kTune,
                               .tuning_cache = path,
                               .tuner = {.warmup = 0, .iters = 1}});
  EXPECT_EQ(tune::Session::global().tunes_performed(), before + cold);
  EXPECT_EQ(second.report().layers_tuned, 3);
  EXPECT_EQ(second.report().tuned.size(), first.report().tuned.size());

  Rng rng(53);
  const Tensor x = random_uniform(make_nchw(2, 3, 8, 8), rng);
  EXPECT_TRUE(bit_identical(first.run(x), second.run(x)));
  std::remove(path.c_str());
}

TEST(TuneCompiledModel, EmptyCachePathStaysInMemoryAndSessionIsRestored) {
  SessionGuard guard;
  const std::string stray = ::testing::TempDir() + "dsx_tune_stray.bin";
  std::remove(stray.c_str());
  // A previous compile (or operator) armed a session cache path; a compile
  // that asks for in-memory-only tuning must not write into it.
  tune::Session::global().set_cache_path(stray);
  serve::CompiledModel tuned(tiny_model(67), Shape{3, 8, 8},
                             {.max_batch = 2,
                              .tuning = tune::Mode::kTune,
                              .tuning_cache = "",
                              .tuner = {.warmup = 0, .iters = 1}});
  EXPECT_EQ(tuned.report().layers_tuned, 3);
  EXPECT_FALSE(std::ifstream(stray).is_open()) << "in-memory-only compile "
                                                  "wrote a cache file";
  // ...and the pass restores the session's own path afterwards.
  EXPECT_EQ(tune::Session::global().cache_path(), stray);
  std::remove(stray.c_str());
}

TEST(TuneCompiledModel, CachedModeAppliesRecordsWithoutMeasuring) {
  SessionGuard guard;
  const Shape image{3, 8, 8};
  const int64_t before = tune::Session::global().tunes_performed();
  serve::CompiledModel off(tiny_model(59), image, {.max_batch = 2});
  serve::CompiledModel cached(tiny_model(59), image,
                              {.max_batch = 2,
                               .tuning = tune::Mode::kCached});
  // Empty cache: everything resolves to the default, nothing measured.
  EXPECT_EQ(tune::Session::global().tunes_performed(), before);
  EXPECT_EQ(cached.report().layers_tuned, 3);
  EXPECT_TRUE(cached.report().tuned.empty());

  Rng rng(61);
  const Tensor x = random_uniform(make_nchw(2, 3, 8, 8), rng);
  EXPECT_TRUE(bit_identical(off.run(x), cached.run(x)));
}

}  // namespace
}  // namespace dsx
