// Compiles the umbrella header and exercises a cross-module happy path -
// the "quickstart" contract of the public API.
#include <gtest/gtest.h>

#include "dsxplore.hpp"

namespace {

TEST(PublicApi, UmbrellaHeaderQuickstart) {
  using namespace dsx;

  // Configure SCC, build the map.
  scc::SCCConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 16;
  cfg.groups = 2;
  cfg.overlap = 0.5;
  const scc::ChannelWindowMap map(cfg);
  EXPECT_EQ(map.cyclic_dist(), 4);

  // Fused forward/backward round trip.
  Rng rng(1);
  const Tensor x = random_uniform(make_nchw(2, 8, 8, 8), rng);
  const Tensor w = random_uniform(Shape{16, 4}, rng);
  const Tensor y = scc::scc_forward(x, w, nullptr, map);
  EXPECT_EQ(y.shape(), make_nchw(2, 16, 8, 8));
  const scc::SCCGrads g = scc::scc_backward_input_centric(
      x, w, Tensor(y.shape(), 1.0f), map, true, false);
  EXPECT_TRUE(g.dinput.defined());

  // Model zoo + cost model.
  models::SchemeConfig scheme;
  scheme.scheme = models::ConvScheme::kDWSCC;
  scheme.cg = 2;
  scheme.co = 0.5;
  scheme.width_mult = 0.125;
  auto model = models::build_mobilenet(10, scheme, rng);
  EXPECT_GT(model->cost(make_nchw(1, 3, 32, 32)).macs, 0.0);

  // One training step end to end.
  nn::SGD opt({});
  nn::Trainer trainer(*model, opt);
  const data::Dataset ds = data::make_synth_cifar(8, 2, 16, 3, 10);
  const data::Batch b = data::full_batch(ds);
  const nn::StepResult r = trainer.train_batch(b.images, b.labels);
  EXPECT_GT(r.loss, 0.0);

  // GPU-model path.
  const gpusim::DeviceSpec v100 = gpusim::DeviceSpec::v100();
  device::KernelProfileScope profile;
  model->forward(b.images, false);
  EXPECT_GT(gpusim::estimate_log_time(v100, profile.records()), 0.0);
}

TEST(PublicApi, ErrorsAreCatchableAsDsxError) {
  try {
    dsx::Shape s{2, 3};
    (void)s.dim(7);
    FAIL() << "expected dsx::Error";
  } catch (const dsx::Error& e) {
    EXPECT_NE(std::string(e.what()).find("precondition"), std::string::npos);
  }
}

}  // namespace
