// Tests for the pruning module (prune/prune): mask construction invariants
// (exact counts, keep-the-largest), global vs per-tensor budgets, structured
// whole-filter masks, mask application semantics, and the prune -> finetune
// loop on real SCC models (the "factorized kernel + pruning" composition of
// the paper's §II-C).
#include <gtest/gtest.h>

#include <cmath>

#include "core/scc_kernels.hpp"
#include "data/synth.hpp"
#include "models/mobilenet.hpp"
#include "nn/layers_conv.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"
#include "prune/prune.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor_ops.hpp"

namespace dsx::prune {
namespace {

// ---- magnitude_mask ----------------------------------------------------------

class MagnitudeSparsity : public ::testing::TestWithParam<double> {};

TEST_P(MagnitudeSparsity, ZeroesExactCount) {
  const double s = GetParam();
  Rng rng(91);
  const Tensor v = random_uniform(Shape{8, 25}, rng);
  const Mask m = magnitude_mask(v, s);
  const auto expect_zero =
      static_cast<int64_t>(std::floor(s * static_cast<double>(v.numel())));
  EXPECT_EQ(m.total() - m.kept(), expect_zero);
  EXPECT_NEAR(m.sparsity(), s, 1.0 / static_cast<double>(v.numel()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MagnitudeSparsity,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           0.99));

TEST(MagnitudeMask, KeepsTheLargestMagnitudes) {
  Rng rng(93);
  const Tensor v = random_uniform(Shape{4, 16}, rng, -2.0f, 2.0f);
  const Mask m = magnitude_mask(v, 0.5);
  float min_kept = 1e30f, max_pruned = 0.0f;
  for (int64_t i = 0; i < v.numel(); ++i) {
    const float mag = std::abs(v[i]);
    if (m.keep[i] != 0.0f) {
      min_kept = std::min(min_kept, mag);
    } else {
      max_pruned = std::max(max_pruned, mag);
    }
  }
  EXPECT_GE(min_kept, max_pruned);
}

TEST(MagnitudeMask, ExactCountWithTies) {
  // All-equal weights: ties must not change the zeroed count.
  const Tensor v(Shape{10}, 0.5f);
  const Mask m = magnitude_mask(v, 0.5);
  EXPECT_EQ(m.kept(), 5);
}

TEST(MagnitudeMask, RejectsInvalidSparsity) {
  const Tensor v(Shape{4}, 1.0f);
  EXPECT_THROW(magnitude_mask(v, -0.1), std::runtime_error);
  EXPECT_THROW(magnitude_mask(v, 1.0), std::runtime_error);
}

// ---- filter_mask ---------------------------------------------------------------

TEST(FilterMask, ZeroesWholeRows) {
  Rng rng(95);
  Tensor v = random_uniform(Shape{8, 6}, rng, 0.5f, 1.0f);
  // Make rows 2 and 5 clearly the smallest.
  for (int64_t j = 0; j < 6; ++j) {
    v.at(2, j) = 0.01f;
    v.at(5, j) = 0.02f;
  }
  const Mask m = filter_mask(v, 0.25);  // floor(0.25*8) = 2 rows
  for (int64_t f = 0; f < 8; ++f) {
    const bool should_be_zero = f == 2 || f == 5;
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_EQ(m.keep.at(f, j) == 0.0f, should_be_zero)
          << "row " << f << " col " << j;
    }
  }
}

TEST(FilterMask, FractionBelowOneFilterIsNoop) {
  Rng rng(97);
  const Tensor v = random_uniform(Shape{4, 4}, rng);
  const Mask m = filter_mask(v, 0.2);  // floor(0.8) = 0 rows
  EXPECT_EQ(m.kept(), m.total());
}

TEST(FilterMask, RejectsRank1) {
  const Tensor v(Shape{8}, 1.0f);
  EXPECT_THROW(filter_mask(v, 0.5), std::runtime_error);
}

// ---- global masks ---------------------------------------------------------------

TEST(GlobalMagnitude, SingleThresholdAcrossParams) {
  // One tensor of tiny weights, one of large: a 50% global budget must fall
  // almost entirely on the tiny tensor.
  nn::Param small = nn::Param::create("small", Tensor(Shape{100}, 0.01f));
  nn::Param large = nn::Param::create("large", Tensor(Shape{100}, 10.0f));
  const auto masks = global_magnitude_masks({&small, &large}, 0.5);
  ASSERT_EQ(masks.size(), 2u);
  EXPECT_EQ(masks[0].kept(), 0);    // all tiny weights pruned
  EXPECT_EQ(masks[1].kept(), 100);  // all large weights kept
}

TEST(GlobalMagnitude, TotalCountIsExact) {
  Rng rng(99);
  nn::Param a = nn::Param::create("a", random_uniform(Shape{37}, rng));
  nn::Param b = nn::Param::create("b", random_uniform(Shape{63}, rng));
  const auto masks = global_magnitude_masks({&a, &b}, 0.3);
  const int64_t zeroed = (masks[0].total() - masks[0].kept()) +
                         (masks[1].total() - masks[1].kept());
  EXPECT_EQ(zeroed, 30);  // floor(0.3 * 100)
}

// ---- apply_mask -----------------------------------------------------------------

TEST(ApplyMask, ZeroesAndIsIdempotent) {
  Rng rng(101);
  nn::Param p = nn::Param::create("w", random_uniform(Shape{4, 8}, rng));
  const Mask m = magnitude_mask(p.value, 0.5);
  apply_mask(p, m);
  const double after_once = measured_sparsity(p.value);
  EXPECT_GE(after_once, 0.5);  // random floats are nonzero, so ~exactly 0.5
  apply_mask(p, m);
  EXPECT_EQ(measured_sparsity(p.value), after_once);
}

TEST(ApplyMask, RejectsShapeMismatch) {
  nn::Param p = nn::Param::create("w", Tensor(Shape{4, 4}, 1.0f));
  const Mask m{Tensor(Shape{4, 5}, 1.0f)};
  EXPECT_THROW(apply_mask(p, m), std::runtime_error);
}

TEST(MeasuredSparsity, CountsExactZeros) {
  Tensor t(Shape{8}, 1.0f);
  t[1] = 0.0f;
  t[5] = 0.0f;
  EXPECT_DOUBLE_EQ(measured_sparsity(t), 0.25);
}

// ---- Pruner on real models --------------------------------------------------------

TEST(Pruner, MasksOnlyDecayableParams) {
  // An SCC layer with bias: the weight is masked, the bias is not.
  scc::SCCConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 16;
  cfg.groups = 2;
  cfg.overlap = 0.5;
  Rng rng(103);
  nn::SCCConv layer(cfg, rng, /*bias=*/true);
  auto params = layer.params();
  ASSERT_EQ(params.size(), 2u);

  Pruner pruner = Pruner::magnitude(params, 0.5);
  EXPECT_EQ(pruner.masked_params(), 1u);
  EXPECT_NEAR(pruner.overall_sparsity(), 0.5, 0.02);
  EXPECT_NEAR(measured_sparsity(layer.weight_param().value), 0.5, 0.02);
}

TEST(Pruner, PrunedWeightsStayZeroThroughFinetuning) {
  Rng rng(107);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWSCC;
  cfg.cg = 2;
  cfg.co = 0.5;
  cfg.width_mult = 0.125;
  auto model = models::build_mobilenet(4, cfg, rng);
  auto params = model->params();

  Pruner pruner = Pruner::magnitude(params, 0.6);
  const double target = pruner.overall_sparsity();

  data::Dataset ds = data::make_synth_cifar(8, 109, 32, 3, 4);
  nn::SGD opt({.lr = 0.05f});
  nn::Trainer trainer(*model, opt);
  for (int step = 0; step < 3; ++step) {
    trainer.train_batch(ds.images, ds.labels);
    pruner.reapply();  // momentum would otherwise resurrect pruned weights
  }
  // Every masked weight tensor still carries at least the target sparsity.
  double total = 0.0, zeros = 0.0;
  for (nn::Param* p : params) {
    if (!p->decay) continue;
    total += static_cast<double>(p->value.numel());
    zeros += measured_sparsity(p->value) *
             static_cast<double>(p->value.numel());
  }
  EXPECT_GE(zeros / total, target - 1e-9);
}

TEST(Pruner, WithoutReapplySGDResurrectsWeights) {
  // Negative control: the same loop *without* reapply leaves fewer zeros -
  // the reason Pruner exists.
  Rng rng(113);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWSCC;
  cfg.width_mult = 0.125;
  auto model = models::build_mobilenet(4, cfg, rng);
  auto params = model->params();
  Pruner pruner = Pruner::magnitude(params, 0.6);
  const double target = pruner.overall_sparsity();

  data::Dataset ds = data::make_synth_cifar(8, 115, 32, 3, 4);
  nn::SGD opt({.lr = 0.05f});
  nn::Trainer trainer(*model, opt);
  trainer.train_batch(ds.images, ds.labels);

  double total = 0.0, zeros = 0.0;
  for (nn::Param* p : params) {
    if (!p->decay) continue;
    total += static_cast<double>(p->value.numel());
    zeros += measured_sparsity(p->value) *
             static_cast<double>(p->value.numel());
  }
  EXPECT_LT(zeros / total, target * 0.5);
}

TEST(Pruner, StructuredZeroesFilterOutputs) {
  // A structurally pruned SCC filter must produce an all-zero output plane
  // (bias-free): the model stays runnable, channels just go dark.
  scc::SCCConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 8;
  cfg.groups = 2;
  cfg.overlap = 0.5;
  Rng rng(117);
  nn::SCCConv layer(cfg, rng, /*bias=*/false);
  auto params = layer.params();
  Pruner pruner = Pruner::structured(params, 0.5);
  EXPECT_NEAR(pruner.overall_sparsity(), 0.5, 1e-9);

  Rng data(118);
  const Tensor in = random_uniform(make_nchw(1, 8, 4, 4), data);
  const Tensor out = layer.forward(in, false);
  int64_t dark = 0;
  for (int64_t f = 0; f < 8; ++f) {
    bool all_zero = true;
    for (int64_t y = 0; y < 4 && all_zero; ++y) {
      for (int64_t x = 0; x < 4 && all_zero; ++x) {
        all_zero = out.at(0, f, y, x) == 0.0f;
      }
    }
    dark += all_zero;
  }
  EXPECT_EQ(dark, 4);  // exactly half the filters pruned
}

TEST(Pruner, GlobalBudgetSkewsTowardSmallLayers) {
  // Same construction as the unit test, but through the Pruner facade.
  nn::Param small = nn::Param::create("small", Tensor(Shape{50}, 0.01f));
  nn::Param large = nn::Param::create("large", Tensor(Shape{50}, 10.0f));
  Pruner pruner = Pruner::global_magnitude({&small, &large}, 0.5);
  EXPECT_EQ(measured_sparsity(small.value), 1.0);
  EXPECT_EQ(measured_sparsity(large.value), 0.0);
}

}  // namespace
}  // namespace dsx::prune
