// Tests for the fused SCC kernels and the operator-composition
// implementations: forward equivalence against a literal reference, corner
// cases (PW / GPW), backward-design equivalence (input-centric ==
// output-centric), numerical gradients, and the atomic-operation claims of
// the paper's Fig. 9.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "core/compositions.hpp"
#include "core/scc_kernels.hpp"
#include "device/atomic_stats.hpp"
#include "ops/conv2d.hpp"
#include "tensor/alloc_tracker.hpp"
#include "testing_utils.hpp"

namespace dsx::scc {
namespace {

using testing::ProbeLoss;
using testing::max_numeric_grad_error;
using testing::naive_scc;

SCCConfig make_cfg(int64_t cin, int64_t cout, int64_t cg, double co,
                   int64_t stride = 1) {
  SCCConfig cfg;
  cfg.in_channels = cin;
  cfg.out_channels = cout;
  cfg.groups = cg;
  cfg.overlap = co;
  cfg.stride = stride;
  return cfg;
}

std::vector<int64_t> window_starts(const ChannelWindowMap& map) {
  std::vector<int64_t> starts(
      static_cast<size_t>(map.config().out_channels));
  for (int64_t f = 0; f < map.config().out_channels; ++f) {
    starts[static_cast<size_t>(f)] = map.window(f).start;
  }
  return starts;
}

struct SccCase {
  int64_t N, Cin, Cout, H, W, cg;
  double co;
  int64_t stride;
};

class SccForwardSweep : public ::testing::TestWithParam<SccCase> {};

TEST_P(SccForwardSweep, MatchesNaiveReference) {
  const SccCase p = GetParam();
  const SCCConfig cfg = make_cfg(p.Cin, p.Cout, p.cg, p.co, p.stride);
  ChannelWindowMap map(cfg);
  Rng rng(101);
  Tensor in = random_uniform(make_nchw(p.N, p.Cin, p.H, p.W), rng);
  Tensor w = random_uniform(Shape{p.Cout, map.group_width()}, rng);
  Tensor b = random_uniform(Shape{p.Cout}, rng);

  Tensor got = scc_forward(in, w, &b, map);
  Tensor want = naive_scc(in, w, &b, map.group_width(), window_starts(map),
                          p.stride);
  EXPECT_EQ(got.shape(), want.shape());
  EXPECT_LT(max_abs_diff(got, want), 1e-4f);
}

TEST_P(SccForwardSweep, CompositionsMatchFusedKernel) {
  const SccCase p = GetParam();
  const SCCConfig cfg = make_cfg(p.Cin, p.Cout, p.cg, p.co, p.stride);
  ChannelWindowMap map(cfg);
  Rng rng(103);
  Tensor in = random_uniform(make_nchw(p.N, p.Cin, p.H, p.W), rng);
  Tensor w = random_uniform(Shape{p.Cout, map.group_width()}, rng);
  Tensor b = random_uniform(Shape{p.Cout}, rng);

  const Tensor fused = scc_forward(in, w, &b, map);

  const ChannelStackSCC chs(cfg);
  EXPECT_LT(max_abs_diff(chs.forward(in, w, &b), fused), 1e-4f)
      << "channel-stack diverges for " << cfg.to_string();

  const ChannelStackSCC chs_cc(cfg, /*cyclic_opt=*/true);
  EXPECT_LT(max_abs_diff(chs_cc.forward(in, w, &b), fused), 1e-4f)
      << "channel-stack+CC diverges for " << cfg.to_string();

  const ConvStackSCC cos_cc(cfg, /*cyclic_opt=*/true);
  EXPECT_LT(max_abs_diff(cos_cc.forward(in, w, &b), fused), 1e-4f)
      << "conv-stack+CC diverges for " << cfg.to_string();

  const ConvStackSCC cos(cfg, /*cyclic_opt=*/false);
  EXPECT_LT(max_abs_diff(cos.forward(in, w, &b), fused), 1e-4f)
      << "conv-stack diverges for " << cfg.to_string();
}

TEST_P(SccForwardSweep, BackwardDesignsAgree) {
  // Input-centric (DSXplore) and output-centric (DSXplore-Var) must produce
  // identical gradients - they differ only in thread mapping.
  const SccCase p = GetParam();
  const SCCConfig cfg = make_cfg(p.Cin, p.Cout, p.cg, p.co, p.stride);
  ChannelWindowMap map(cfg);
  Rng rng(107);
  Tensor in = random_uniform(make_nchw(p.N, p.Cin, p.H, p.W), rng);
  Tensor w = random_uniform(Shape{p.Cout, map.group_width()}, rng);
  Tensor dout = random_uniform(scc_output_shape(in.shape(), map), rng);

  const SCCGrads a = scc_backward_input_centric(in, w, dout, map, true, true);
  const SCCGrads b = scc_backward_output_centric(in, w, dout, map, true, true);
  EXPECT_LT(max_abs_diff(a.dinput, b.dinput), 1e-4f);
  EXPECT_LT(max_abs_diff(a.dweight, b.dweight), 1e-4f);
  EXPECT_LT(max_abs_diff(a.dbias, b.dbias), 1e-4f);
}

TEST_P(SccForwardSweep, CompositionBackwardsMatchFused) {
  const SccCase p = GetParam();
  const SCCConfig cfg = make_cfg(p.Cin, p.Cout, p.cg, p.co, p.stride);
  ChannelWindowMap map(cfg);
  Rng rng(109);
  Tensor in = random_uniform(make_nchw(p.N, p.Cin, p.H, p.W), rng);
  Tensor w = random_uniform(Shape{p.Cout, map.group_width()}, rng);
  Tensor dout = random_uniform(scc_output_shape(in.shape(), map), rng);

  const SCCGrads fused =
      scc_backward_input_centric(in, w, dout, map, true, true);

  const ChannelStackSCC chs(cfg);
  const SCCGrads g1 = chs.backward(in, w, dout, true, true);
  EXPECT_LT(max_abs_diff(g1.dinput, fused.dinput), 1e-3f);
  EXPECT_LT(max_abs_diff(g1.dweight, fused.dweight), 1e-3f);
  EXPECT_LT(max_abs_diff(g1.dbias, fused.dbias), 1e-3f);

  const ConvStackSCC cos(cfg);
  const SCCGrads g2 = cos.backward(in, w, dout, true, true);
  EXPECT_LT(max_abs_diff(g2.dinput, fused.dinput), 1e-3f);
  EXPECT_LT(max_abs_diff(g2.dweight, fused.dweight), 1e-3f);
  EXPECT_LT(max_abs_diff(g2.dbias, fused.dbias), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SccForwardSweep,
    ::testing::Values(
        SccCase{1, 4, 8, 4, 4, 2, 0.5, 1},       // paper Fig. 5(a)
        SccCase{2, 6, 6, 3, 5, 2, 1.0 / 3.0, 1}, // paper Fig. 5(b)
        SccCase{1, 8, 16, 5, 5, 4, 0.5, 1},
        SccCase{2, 8, 8, 4, 4, 2, 0.25, 1},
        SccCase{1, 8, 12, 4, 4, 2, 0.75, 1},
        SccCase{1, 8, 16, 4, 4, 1, 1.0, 1},      // PW corner
        SccCase{1, 8, 16, 4, 4, 4, 0.0, 1},      // GPW corner
        SccCase{2, 8, 8, 6, 6, 2, 0.5, 2},       // strided
        SccCase{1, 16, 8, 3, 3, 8, 0.5, 1},      // Cout < Cin
        SccCase{1, 12, 24, 4, 4, 3, 0.5, 1},     // non-power-of-two
        SccCase{1, 4, 3, 2, 2, 2, 0.5, 1}));     // Cout not multiple of dist

// ---- corner-case equivalences ---------------------------------------------------

TEST(SccEquivalence, Cg1Co100EqualsPointwiseConv) {
  // SCC(cg=1, co=100%) must equal a dense 1x1 convolution bit-for-bit in
  // weight-to-channel mapping (paper Table I, dagger note).
  const SCCConfig cfg = make_cfg(6, 10, 1, 1.0);
  ChannelWindowMap map(cfg);
  Rng rng(113);
  Tensor in = random_uniform(make_nchw(2, 6, 4, 4), rng);
  Tensor w = random_uniform(Shape{10, 6}, rng);
  Tensor b = random_uniform(Shape{10}, rng);

  const Tensor scc_out = scc_forward(in, w, &b, map);
  const Tensor w4 = w.reshape(Shape{10, 6, 1, 1});
  const Tensor pw_out = conv2d_forward(in, w4, &b, Conv2dArgs{1, 0, 1});
  EXPECT_LT(max_abs_diff(scc_out, pw_out), 1e-4f);
}

TEST(SccEquivalence, Co0IsGpwUpToOutputPermutation) {
  // SCC(cg=m, co=0) covers the same m windows as GPW but assigns filters
  // round-robin instead of block-wise (paper Table I, star note). Verify by
  // permuting output channels.
  const int64_t Cin = 8, Cout = 8, m = 4;
  const SCCConfig cfg = make_cfg(Cin, Cout, m, 0.0);
  ChannelWindowMap map(cfg);
  const int64_t gw = map.group_width();
  Rng rng(127);
  Tensor in = random_uniform(make_nchw(1, Cin, 3, 3), rng);
  Tensor w = random_uniform(Shape{Cout, gw}, rng);

  const Tensor scc_out = scc_forward(in, w, nullptr, map);

  // Build the GPW weight with filters permuted so block g holds the SCC
  // filters whose window is group g.
  Tensor gpw_w(Shape{Cout, gw, 1, 1});
  std::vector<int64_t> perm(static_cast<size_t>(Cout));
  std::vector<int64_t> next_slot(static_cast<size_t>(m), 0);
  const int64_t per_group = Cout / m;
  for (int64_t f = 0; f < Cout; ++f) {
    const int64_t g = map.window(f).start / gw;
    const int64_t slot = g * per_group + next_slot[static_cast<size_t>(g)]++;
    perm[static_cast<size_t>(f)] = slot;
    for (int64_t k = 0; k < gw; ++k) {
      gpw_w[slot * gw + k] = w.at(f, k);
    }
  }
  const Tensor gpw_out =
      conv2d_forward(in, gpw_w, nullptr, Conv2dArgs{1, 0, m});
  for (int64_t f = 0; f < Cout; ++f) {
    const int64_t slot = perm[static_cast<size_t>(f)];
    for (int64_t j = 0; j < 9; ++j) {
      EXPECT_NEAR(scc_out[f * 9 + j], gpw_out[slot * 9 + j], 1e-4f);
    }
  }
}

// ---- numerical gradients ---------------------------------------------------------

class SccGradCheck : public ::testing::TestWithParam<SccCase> {};

TEST_P(SccGradCheck, AllGradientsMatchNumerics) {
  const SccCase p = GetParam();
  const SCCConfig cfg = make_cfg(p.Cin, p.Cout, p.cg, p.co, p.stride);
  ChannelWindowMap map(cfg);
  Rng rng(131);
  Tensor in = random_uniform(make_nchw(p.N, p.Cin, p.H, p.W), rng);
  Tensor w = random_uniform(Shape{p.Cout, map.group_width()}, rng, -0.5f,
                            0.5f);
  Tensor b = random_uniform(Shape{p.Cout}, rng);

  ProbeLoss probe(scc_output_shape(in.shape(), map));
  const auto loss = [&] { return probe.value(scc_forward(in, w, &b, map)); };
  const SCCGrads g =
      scc_backward_input_centric(in, w, probe.mask, map, true, true);
  EXPECT_LT(max_numeric_grad_error(w, loss, g.dweight), 2e-2f);
  EXPECT_LT(max_numeric_grad_error(b, loss, g.dbias), 2e-2f);
  EXPECT_LT(max_numeric_grad_error(in, loss, g.dinput), 2e-2f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SccGradCheck,
    ::testing::Values(SccCase{1, 4, 8, 3, 3, 2, 0.5, 1},
                      SccCase{2, 6, 6, 2, 2, 2, 1.0 / 3.0, 1},
                      SccCase{1, 8, 4, 3, 3, 4, 0.5, 1},
                      SccCase{1, 4, 4, 5, 5, 2, 0.5, 2},
                      SccCase{1, 4, 6, 3, 3, 1, 1.0, 1}));

// ---- atomic-operation claims (paper Fig. 9) --------------------------------------

TEST(SccAtomics, InputCentricBackwardUsesZeroAtomics) {
  const SCCConfig cfg = make_cfg(16, 32, 2, 0.5);
  ChannelWindowMap map(cfg);
  Rng rng(137);
  Tensor in = random_uniform(make_nchw(2, 16, 8, 8), rng);
  Tensor w = random_uniform(Shape{32, 8}, rng);
  Tensor dout = random_uniform(scc_output_shape(in.shape(), map), rng);

  device::AtomicCountScope scope;
  scc_backward_input_centric(in, w, dout, map, true, false);
  EXPECT_EQ(scope.adds(), 0);
}

TEST(SccAtomics, OutputCentricBackwardAtomicCountIsExact) {
  // The push design needs one atomic add per (n, filter, tap, output pixel).
  const SCCConfig cfg = make_cfg(16, 32, 2, 0.5);
  ChannelWindowMap map(cfg);
  Rng rng(139);
  const int64_t N = 2, H = 8, W = 8;
  Tensor in = random_uniform(make_nchw(N, 16, H, W), rng);
  Tensor w = random_uniform(Shape{32, 8}, rng);
  Tensor dout = random_uniform(scc_output_shape(in.shape(), map), rng);

  device::AtomicCountScope scope;
  scc_backward_output_centric(in, w, dout, map, true, false);
  EXPECT_EQ(scope.adds(), N * 32 * map.group_width() * H * W);
}

TEST(SccAtomics, InputCentricRemovesOver90PercentOfAtomics) {
  // The paper reports >90% atomic reduction on average; here the gather
  // design eliminates them entirely.
  const SCCConfig cfg = make_cfg(8, 16, 2, 0.5);
  ChannelWindowMap map(cfg);
  Rng rng(149);
  Tensor in = random_uniform(make_nchw(1, 8, 6, 6), rng);
  Tensor w = random_uniform(Shape{16, 4}, rng);
  Tensor dout = random_uniform(scc_output_shape(in.shape(), map), rng);

  int64_t output_centric_atomics = 0;
  {
    device::AtomicCountScope scope;
    scc_backward_output_centric(in, w, dout, map, true, false);
    output_centric_atomics = scope.adds();
  }
  int64_t input_centric_atomics = 0;
  {
    device::AtomicCountScope scope;
    scc_backward_input_centric(in, w, dout, map, true, false);
    input_centric_atomics = scope.adds();
  }
  ASSERT_GT(output_centric_atomics, 0);
  const double reduction =
      1.0 - static_cast<double>(input_centric_atomics) /
                static_cast<double>(output_centric_atomics);
  EXPECT_GT(reduction, 0.9);
}

// ---- shape / argument validation -------------------------------------------------

TEST(SccValidation, WeightShapeChecked) {
  const SCCConfig cfg = make_cfg(8, 16, 2, 0.5);
  ChannelWindowMap map(cfg);
  Tensor in(make_nchw(1, 8, 4, 4));
  Tensor bad_w(Shape{16, 8});  // gw is 4, not 8
  EXPECT_THROW(scc_forward(in, bad_w, nullptr, map), Error);
}

TEST(SccValidation, InputChannelsChecked) {
  const SCCConfig cfg = make_cfg(8, 16, 2, 0.5);
  ChannelWindowMap map(cfg);
  Tensor in(make_nchw(1, 6, 4, 4));
  Tensor w(Shape{16, 4});
  EXPECT_THROW(scc_forward(in, w, nullptr, map), Error);
}

TEST(SccValidation, DoutputShapeChecked) {
  const SCCConfig cfg = make_cfg(4, 8, 2, 0.5);
  ChannelWindowMap map(cfg);
  Rng rng(151);
  Tensor in = random_uniform(make_nchw(1, 4, 4, 4), rng);
  Tensor w = random_uniform(Shape{8, 2}, rng);
  Tensor bad_dout(make_nchw(1, 8, 3, 3));
  EXPECT_THROW(
      scc_backward_input_centric(in, w, bad_dout, map, true, false), Error);
}

TEST(SccValidation, BackwardWithoutDinputSkipsAllocation) {
  const SCCConfig cfg = make_cfg(4, 8, 2, 0.5);
  ChannelWindowMap map(cfg);
  Rng rng(157);
  Tensor in = random_uniform(make_nchw(1, 4, 4, 4), rng);
  Tensor w = random_uniform(Shape{8, 2}, rng);
  Tensor dout = random_uniform(scc_output_shape(in.shape(), map), rng);
  const SCCGrads g =
      scc_backward_input_centric(in, w, dout, map, false, false);
  EXPECT_FALSE(g.dinput.defined());
  EXPECT_FALSE(g.dbias.defined());
  EXPECT_TRUE(g.dweight.defined());
}

// ---- determinism ------------------------------------------------------------------

TEST(SccDeterminism, ForwardAndBackwardAreBitStable) {
  const SCCConfig cfg = make_cfg(8, 16, 2, 0.5);
  ChannelWindowMap map(cfg);
  Rng rng(163);
  Tensor in = random_uniform(make_nchw(2, 8, 6, 6), rng);
  Tensor w = random_uniform(Shape{16, 4}, rng);
  Tensor dout = random_uniform(scc_output_shape(in.shape(), map), rng);

  const Tensor out1 = scc_forward(in, w, nullptr, map);
  const Tensor out2 = scc_forward(in, w, nullptr, map);
  EXPECT_FLOAT_EQ(max_abs_diff(out1, out2), 0.0f);

  const SCCGrads g1 = scc_backward_input_centric(in, w, dout, map, true, false);
  const SCCGrads g2 = scc_backward_input_centric(in, w, dout, map, true, false);
  EXPECT_FLOAT_EQ(max_abs_diff(g1.dinput, g2.dinput), 0.0f);
  EXPECT_FLOAT_EQ(max_abs_diff(g1.dweight, g2.dweight), 0.0f);
}

// ---- memory: channel-cyclic optimization (paper Fig. 10 mechanism) ---------------

TEST(SccMemory, CyclicOptReducesConvStackPeak) {
  // With Cout >> cyclic_dist the conv-stack without CC materialises Cout
  // windows, with CC only cyclic_dist of them.
  const SCCConfig cfg = make_cfg(16, 64, 2, 0.5);  // dist = 16/gcd(4,16) = 4
  ChannelWindowMap map(cfg);
  ASSERT_LT(map.cyclic_dist(), cfg.out_channels);
  Rng rng(167);
  Tensor in = random_uniform(make_nchw(2, 16, 12, 12), rng);
  Tensor w = random_uniform(Shape{64, 8}, rng);

  int64_t peak_no_cc = 0, peak_cc = 0;
  {
    const ConvStackSCC impl(cfg, /*cyclic_opt=*/false);
    PeakMemoryScope scope;
    const Tensor out = impl.forward(in, w, nullptr);
    peak_no_cc = scope.peak_delta();
  }
  {
    const ConvStackSCC impl(cfg, /*cyclic_opt=*/true);
    PeakMemoryScope scope;
    const Tensor out = impl.forward(in, w, nullptr);
    peak_cc = scope.peak_delta();
  }
  EXPECT_LT(peak_cc, peak_no_cc / 2)
      << "CC optimization should cut conv-stack peak memory by far more "
         "than half at Cout/dist = "
      << cfg.out_channels / map.cyclic_dist();
}

}  // namespace
}  // namespace dsx::scc
