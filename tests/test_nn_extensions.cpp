// Tests for the training-framework extensions: Adam, Dropout, named
// checkpoints and the no-cycle-table SCC forward ablation.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "core/scc_kernels.hpp"
#include "models/mobilenet.hpp"
#include "nn/adam.hpp"
#include "nn/bn_folding.hpp"
#include "nn/checkpoint.hpp"
#include "nn/containers.hpp"
#include "nn/layers_basic.hpp"
#include "nn/layers_conv.hpp"
#include "nn/trainer.hpp"
#include "quant/quant_layers.hpp"
#include "tensor/tensor_ops.hpp"

namespace dsx::nn {
namespace {

// ---- Adam ----------------------------------------------------------------

TEST(Adam, FirstStepMovesByLr) {
  // With bias correction, step 1 moves by ~lr * sign(grad) regardless of
  // gradient magnitude.
  Adam opt({.lr = 0.1f});
  Param p = Param::create("w", Tensor(Shape{2}, 1.0f));
  p.grad[0] = 0.5f;
  p.grad[1] = -3.0f;
  opt.step({&p});
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f, 1e-4f);
  EXPECT_NEAR(p.value[1], 1.0f + 0.1f, 1e-4f);
  EXPECT_EQ(opt.step_count(), 1);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimize (w - 3)^2.
  Adam opt({.lr = 0.1f});
  Param p = Param::create("w", Tensor(Shape{1}, 0.0f));
  for (int i = 0; i < 300; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step({&p});
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(Adam, DecoupledWeightDecayRespectsFlag) {
  Adam opt({.lr = 1.0f, .weight_decay = 0.1f});
  Param decayed = Param::create("w", Tensor(Shape{1}, 1.0f), true);
  Param plain = Param::create("b", Tensor(Shape{1}, 1.0f), false);
  opt.step({&decayed, &plain});  // zero grads
  EXPECT_NEAR(decayed.value[0], 0.9f, 1e-5f);
  EXPECT_FLOAT_EQ(plain.value[0], 1.0f);
}

TEST(Adam, ResetStateClearsMoments) {
  Adam opt({.lr = 0.1f});
  Param p = Param::create("w", Tensor(Shape{1}, 0.0f));
  p.grad[0] = 1.0f;
  opt.step({&p});
  opt.reset_state();
  EXPECT_EQ(opt.step_count(), 0);
}

TEST(Adam, TrainsTinyClassifier) {
  Rng rng(1);
  Sequential model;
  model.emplace<Flatten>();
  model.emplace<Linear>(4, 2, rng, true);
  Adam opt({.lr = 0.05f});
  Tensor x(make_nchw(8, 1, 2, 2));
  std::vector<int32_t> y(8);
  for (int64_t i = 0; i < 8; ++i) {
    y[static_cast<size_t>(i)] = static_cast<int32_t>(i % 2);
    for (int64_t j = 0; j < 4; ++j) {
      x[i * 4 + j] = (i % 2 == 0 ? 1.0f : -1.0f) + rng.normal(0.0f, 0.1f);
    }
  }
  SGD dummy({});
  Trainer trainer(model, dummy);
  for (int step = 0; step < 40; ++step) {
    trainer.forward_backward(x, y);
    opt.step(model.params());
  }
  EXPECT_GE(trainer.evaluate(x, y).accuracy, 0.99);
}

// ---- Dropout -------------------------------------------------------------

TEST(Dropout, EvalModeIsIdentity) {
  Dropout drop(0.5f, 7);
  Rng rng(2);
  Tensor x = random_uniform(make_nchw(1, 2, 3, 3), rng);
  Tensor y = drop.forward(x, /*training=*/false);
  EXPECT_TRUE(y.shares_storage_with(x));
}

TEST(Dropout, TrainingZerosRoughlyPFraction) {
  Dropout drop(0.3f, 11);
  Tensor x(Shape{4000}, 1.0f);
  Tensor y = drop.forward(x.reshape(make_nchw(1, 1, 40, 100)), true);
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y[i], 1.0f / 0.7f, 1e-5f);  // inverted scaling
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 4000.0, 0.3, 0.05);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout drop(0.5f, 13);
  Rng rng(3);
  Tensor x = random_uniform(make_nchw(1, 1, 8, 8), rng, 0.5f, 1.0f);
  Tensor y = drop.forward(x, true);
  Tensor dy(y.shape(), 1.0f);
  Tensor dx = drop.backward(dy);
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      EXPECT_EQ(dx[i], 0.0f);
    } else {
      EXPECT_NEAR(dx[i], 2.0f, 1e-5f);  // 1/(1-0.5)
    }
  }
}

TEST(Dropout, ZeroProbabilityIsPassThrough) {
  Dropout drop(0.0f, 17);
  Tensor x(make_nchw(1, 1, 2, 2), 3.0f);
  Tensor y = drop.forward(x, true);
  EXPECT_TRUE(y.shares_storage_with(x));
}

TEST(Dropout, RejectsInvalidP) {
  EXPECT_THROW(Dropout(-0.1f, 1), Error);
  EXPECT_THROW(Dropout(1.0f, 1), Error);
}

// ---- checkpoints -----------------------------------------------------------

std::unique_ptr<Sequential> make_ckpt_model(uint64_t seed) {
  Rng rng(seed);
  auto m = std::make_unique<Sequential>();
  m->emplace<Conv2d>(3, 8, 3, 1, 1, 1, rng, true);
  m->emplace<BatchNorm2d>(8);
  m->emplace<ReLU>();
  m->emplace<GlobalAvgPool>();
  m->emplace<Flatten>();
  m->emplace<Linear>(8, 4, rng, true);
  return m;
}

TEST(Checkpoint, RoundTripRestoresPredictions) {
  auto src = make_ckpt_model(21);
  auto dst = make_ckpt_model(99);  // different init
  Rng rng(4);
  Tensor x = random_uniform(make_nchw(2, 3, 8, 8), rng);
  const Tensor want = src->forward(x, false);
  ASSERT_GT(max_abs_diff(dst->forward(x, false), want), 1e-3f);

  std::stringstream blob;
  save_checkpoint(*src, blob);
  load_checkpoint(*dst, blob);
  EXPECT_LT(max_abs_diff(dst->forward(x, false), want), 1e-6f);
}

TEST(Checkpoint, RejectsArchitectureMismatch) {
  auto src = make_ckpt_model(21);
  Rng rng(5);
  Sequential other;
  other.emplace<Flatten>();
  other.emplace<Linear>(4, 2, rng);
  std::stringstream blob;
  save_checkpoint(*src, blob);
  EXPECT_THROW(load_checkpoint(other, blob), Error);
}

TEST(Checkpoint, RejectsShapeMismatch) {
  Rng rng(6);
  Sequential a, b;
  a.emplace<Linear>(4, 2, rng, true);
  b.emplace<Linear>(4, 3, rng, true);
  std::stringstream blob;
  save_checkpoint(a, blob);
  EXPECT_THROW(load_checkpoint(b, blob), Error);
}

TEST(Checkpoint, RejectsGarbage) {
  auto model = make_ckpt_model(21);
  std::stringstream blob("not a checkpoint at all, sorry");
  EXPECT_THROW(load_checkpoint(*model, blob), Error);
}

/// Conv -> BN -> SCC classifier for the quantized round-trip (quantization
/// replaces the SCCConv, leaving the conv/linear floats checkpointable).
std::unique_ptr<Sequential> make_scc_ckpt_model(uint64_t seed) {
  Rng rng(seed);
  auto m = std::make_unique<Sequential>();
  m->emplace<Conv2d>(3, 8, 3, 1, 1, 1, rng, true);
  m->emplace<BatchNorm2d>(8);
  m->emplace<ReLU>();
  m->emplace<SCCConv>(
      scc::SCCConfig{.in_channels = 8, .out_channels = 16, .groups = 2,
                     .overlap = 0.5, .stride = 1},
      rng);
  m->emplace<ReLU>();
  m->emplace<GlobalAvgPool>();
  m->emplace<Flatten>();
  m->emplace<Linear>(16, 4, rng, true);
  return m;
}

TEST(Checkpoint, RoundTripOnQuantizedModel) {
  // Two identically quantized models (same float source, same calibration):
  // after scrambling dst's remaining float params, loading src's checkpoint
  // must restore agreement. QuantSCCConv itself carries no Params, so the
  // checkpoint covers exactly the float remainder - and the round trip must
  // tolerate the param list the quantized layer does NOT contribute.
  Rng crng(61);
  const Tensor calib = random_uniform(make_nchw(4, 3, 8, 8), crng);
  auto src = make_scc_ckpt_model(60);
  fold_batchnorm(*src);
  quant::quantize_scc_layers(*src, calib);
  auto dst = make_scc_ckpt_model(60);  // same seed: identical int8 banks
  fold_batchnorm(*dst);
  quant::quantize_scc_layers(*dst, calib);

  for (Param* p : dst->params()) {
    for (int64_t i = 0; i < p->value.numel(); ++i) p->value[i] += 0.5f;
  }
  Rng xrng(62);
  Tensor x = random_uniform(make_nchw(2, 3, 8, 8), xrng);
  const Tensor want = src->forward(x, false);
  ASSERT_GT(max_abs_diff(dst->forward(x, false), want), 1e-3f);

  std::stringstream blob;
  save_checkpoint(*src, blob);
  load_checkpoint(*dst, blob);
  EXPECT_LT(max_abs_diff(dst->forward(x, false), want), 1e-6f);
}

TEST(Checkpoint, RoundTripOnClonedModel) {
  // clone() must preserve parameter names/shapes well enough that a source
  // checkpoint loads into a clone (deploy replicates plans this way).
  auto src = make_scc_ckpt_model(63);
  auto clone = src->clone_sequential();
  for (Param* p : clone->params()) {
    for (int64_t i = 0; i < p->value.numel(); ++i) p->value[i] -= 0.25f;
  }
  Rng xrng(64);
  Tensor x = random_uniform(make_nchw(2, 3, 8, 8), xrng);
  const Tensor want = src->forward(x, false);
  ASSERT_GT(max_abs_diff(clone->forward(x, false), want), 1e-3f);

  std::stringstream blob;
  save_checkpoint(*src, blob);
  load_checkpoint(*clone, blob);
  EXPECT_LT(max_abs_diff(clone->forward(x, false), want), 1e-6f);

  // And the reverse direction: a clone's checkpoint loads into the source.
  std::stringstream blob2;
  save_checkpoint(*clone, blob2);
  load_checkpoint(*src, blob2);
  EXPECT_LT(max_abs_diff(src->forward(x, false), clone->forward(x, false)),
            1e-6f);
}

TEST(Checkpoint, RejectsTruncatedFile) {
  auto src = make_ckpt_model(65);
  std::stringstream blob;
  save_checkpoint(*src, blob);
  const std::string bytes = blob.str();
  // Cut inside the magic, the count, a name, and the tensor payload; every
  // prefix must be rejected, never silently half-load.
  for (const size_t cut : {size_t{2}, size_t{10}, size_t{17},
                           bytes.size() / 2, bytes.size() - 1}) {
    ASSERT_LT(cut, bytes.size());
    auto dst = make_ckpt_model(66);
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_THROW(load_checkpoint(*dst, truncated), Error) << "cut=" << cut;
  }
}

TEST(Checkpoint, RejectsCorruptedHeaderFields) {
  auto src = make_ckpt_model(67);
  std::stringstream blob;
  save_checkpoint(*src, blob);
  const std::string bytes = blob.str();

  // Corrupt the magic.
  {
    std::string bad = bytes;
    bad[0] ^= 0x40;
    auto dst = make_ckpt_model(68);
    std::stringstream is(bad);
    EXPECT_THROW(load_checkpoint(*dst, is), Error);
  }
  // Corrupt the param count (bytes 4..11).
  {
    std::string bad = bytes;
    bad[4] = static_cast<char>(bad[4] + 1);
    auto dst = make_ckpt_model(68);
    std::stringstream is(bad);
    EXPECT_THROW(load_checkpoint(*dst, is), Error);
  }
  // Corrupt the first name-length field (bytes 12..15): either an
  // implausible length or a name mismatch, both rejected.
  {
    std::string bad = bytes;
    bad[13] = static_cast<char>(0x7f);
    auto dst = make_ckpt_model(68);
    std::stringstream is(bad);
    EXPECT_THROW(load_checkpoint(*dst, is), Error);
  }
}

TEST(Checkpoint, WorksOnFullMobileNet) {
  Rng rng(7);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWSCC;
  cfg.cg = 2;
  cfg.co = 0.5;
  cfg.width_mult = 0.125;
  auto src = models::build_mobilenet(4, cfg, rng);
  Rng rng2(8);
  auto dst = models::build_mobilenet(4, cfg, rng2);

  std::stringstream blob;
  save_checkpoint(*src, blob);
  load_checkpoint(*dst, blob);
  Rng drng(9);
  Tensor x = random_uniform(make_nchw(1, 3, 16, 16), drng);
  EXPECT_LT(max_abs_diff(dst->forward(x, false), src->forward(x, false)),
            1e-6f);
}

// ---- no-cycle-table SCC ablation ---------------------------------------------

TEST(SccCycleTableAblation, VariantsAreNumericallyIdentical) {
  for (const double co : {0.0, 0.25, 0.5, 1.0 / 3.0}) {
    scc::SCCConfig cfg;
    cfg.in_channels = 12;
    cfg.out_channels = 30;
    cfg.groups = 3;
    cfg.overlap = co;
    const scc::ChannelWindowMap map(cfg);
    Rng rng(10);
    const Tensor x = random_uniform(make_nchw(2, 12, 5, 5), rng);
    const Tensor w = random_uniform(Shape{30, map.group_width()}, rng);
    const Tensor b = random_uniform(Shape{30}, rng);
    const Tensor with_table = scc::scc_forward(x, w, &b, map);
    const Tensor without = scc::scc_forward_no_cycle_table(x, w, &b, map);
    EXPECT_FLOAT_EQ(max_abs_diff(with_table, without), 0.0f) << "co=" << co;
  }
}

}  // namespace
}  // namespace dsx::nn
