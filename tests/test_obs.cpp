// Tests for dsx::obs (src/obs): the metrics registry (handles, exposition,
// type safety, multi-writer exactness), histogram quantile accuracy against
// exact sorted percentiles, the per-request trace pipeline end to end
// through an InferenceServer (span nesting + stats consistency + sampling),
// and the bounded control-plane journal. Also the LatencyStats empty-
// snapshot regression (min must be 0, not INT64_MAX garbage).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "device/atomic_stats.hpp"
#include "nn/containers.hpp"
#include "nn/layers_basic.hpp"
#include "nn/layers_conv.hpp"
#include "obs/obs.hpp"
#include "serve/compiled_model.hpp"
#include "serve/server.hpp"
#include "shard/deadline_batcher.hpp"
#include "tensor/random.hpp"

namespace dsx::obs {
namespace {

constexpr int64_t kImage = 8;
constexpr int64_t kClasses = 10;

/// Small conv -> DW -> SCC classifier (the test_serve architecture).
std::unique_ptr<nn::Sequential> make_scc_model(uint64_t seed) {
  Rng rng(seed);
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Conv2d>(3, 16, 3, 1, 1, 1, rng);
  seq->emplace<nn::BatchNorm2d>(16);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::DepthwiseConv2d>(16, 3, 1, 1, rng);
  seq->emplace<nn::BatchNorm2d>(16);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::SCCConv>(
      scc::SCCConfig{.in_channels = 16, .out_channels = 32, .groups = 2,
                     .overlap = 0.5, .stride = 1},
      rng);
  seq->emplace<nn::BatchNorm2d>(32);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::GlobalAvgPool>();
  seq->emplace<nn::Flatten>();
  seq->emplace<nn::Linear>(32, kClasses, rng);
  return seq;
}

/// Structural JSON validation: balanced braces/brackets outside strings,
/// escape-aware, no trailing garbage. Enough to catch every malformed
/// emission mode of a generator (unbalanced nesting, unterminated strings).
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_str = false;
  bool esc = false;
  bool saw_value = false;
  for (const char c : s) {
    if (in_str) {
      if (esc) {
        esc = false;
      } else if (c == '\\') {
        esc = true;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_str = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        saw_value = true;
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return saw_value && !in_str && stack.empty();
}

/// Exact percentile of a sample set: the value at rank ceil(q * n).
int64_t exact_percentile(std::vector<int64_t> v, double q) {
  std::sort(v.begin(), v.end());
  const auto n = static_cast<double>(v.size());
  size_t rank = static_cast<size_t>(std::ceil(q * n));
  if (rank > 0) --rank;
  return v[std::min(rank, v.size() - 1)];
}

// ---- LatencyStats regression (the empty-snapshot garbage fix) --------------

TEST(LatencyStats, EmptySnapshotIsAllZeros) {
  device::LatencyStats stats;
  const auto s = stats.snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.min_ms, 0.0);  // regression: was INT64_MAX / 1e6
  EXPECT_EQ(s.max_ms, 0.0);
  EXPECT_EQ(s.mean_ms, 0.0);
  EXPECT_EQ(s.p50_ms, 0.0);
  EXPECT_EQ(s.p99_ms, 0.0);
}

TEST(LatencyStats, EmptyAfterResetToo) {
  device::LatencyStats stats;
  stats.record_ns(5'000'000);
  stats.reset();
  const auto s = stats.snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.min_ms, 0.0);
  EXPECT_EQ(s.max_ms, 0.0);
}

// ---- LogHistogram quantile accuracy ----------------------------------------

TEST(LogHistogram, SmallValuesAreExact) {
  device::LogHistogram h;
  for (int i = 0; i < 100; ++i) h.record(5);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100);
  EXPECT_EQ(s.min, 5.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.p50, 5.0);
  EXPECT_EQ(s.p99, 5.0);
  EXPECT_EQ(s.mean, 5.0);
}

TEST(LogHistogram, QuantilesWithinRelativeErrorUniform) {
  device::LogHistogram h;
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int64_t> dist(1000, 100000);
  std::vector<int64_t> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const int64_t v = dist(rng);
    values.push_back(v);
    h.record(v);
  }
  const auto s = h.snapshot();
  // Documented bound plus a little rank slack on a 20k-sample distribution.
  const double tol = device::LogHistogram::kQuantileRelativeError + 0.005;
  const auto p50 = static_cast<double>(exact_percentile(values, 0.50));
  const auto p99 = static_cast<double>(exact_percentile(values, 0.99));
  EXPECT_NEAR(s.p50, p50, tol * p50);
  EXPECT_NEAR(s.p99, p99, tol * p99);
  EXPECT_LE(s.p50, s.max);
  EXPECT_LE(s.p99, s.max);
  EXPECT_GE(s.p50, s.min);
}

TEST(LogHistogram, QuantilesWithinRelativeErrorLogNormal) {
  device::LogHistogram h;
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(8.0, 1.2);  // heavy tail
  std::vector<int64_t> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const auto v = static_cast<int64_t>(dist(rng)) + 1;
    values.push_back(v);
    h.record(v);
  }
  const auto s = h.snapshot();
  const double tol = device::LogHistogram::kQuantileRelativeError + 0.01;
  const auto p50 = static_cast<double>(exact_percentile(values, 0.50));
  const auto p99 = static_cast<double>(exact_percentile(values, 0.99));
  EXPECT_NEAR(s.p50, p50, tol * p50);
  EXPECT_NEAR(s.p99, p99, tol * p99);
}

TEST(LogHistogram, PercentilesClampedToObservedRange) {
  device::LogHistogram h;
  h.record(1000);  // single sample: every percentile must equal it exactly
  const auto s = h.snapshot();
  EXPECT_EQ(s.p50, 1000.0);
  EXPECT_EQ(s.p99, 1000.0);
}

// ---- metrics registry ------------------------------------------------------

TEST(Registry, CounterGaugeHistogramBasics) {
  Registry reg;
  Counter c = reg.counter("dsx_test_total", {{"model", "m"}}, "help text");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5);

  Gauge g = reg.gauge("dsx_test_depth");
  g.set(7);
  g.add(-2);
  EXPECT_EQ(g.value(), 5);

  Histogram h = reg.histogram("dsx_test_us");
  h.record(100);
  h.record(300);
  EXPECT_EQ(h.snapshot().count, 2);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(Registry, DetachedHandlesAreNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  EXPECT_FALSE(c.attached());
  c.inc(100);
  g.set(9);
  h.record(50);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.snapshot().count, 0);
}

TEST(Registry, ReRegistrationSharesTheCellAndLabelOrderIsCanonical) {
  Registry reg;
  Counter a = reg.counter("dsx_test_total", {{"a", "1"}, {"b", "2"}});
  Counter b = reg.counter("dsx_test_total", {{"b", "2"}, {"a", "1"}});
  a.inc();
  b.inc();
  EXPECT_EQ(a.value(), 2);  // same underlying cell
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, TypeClashThrows) {
  Registry reg;
  (void)reg.counter("dsx_test_series");
  EXPECT_THROW((void)reg.gauge("dsx_test_series"), dsx::Error);
  EXPECT_THROW((void)reg.histogram("dsx_test_series"), dsx::Error);
}

TEST(Registry, PrometheusExpositionShape) {
  Registry reg;
  reg.counter("dsx_test_requests_total", {{"model", "m\"x"}}, "Requests.")
      .inc(3);
  reg.gauge("dsx_test_depth", {}, "Depth.").set(4);
  auto h = reg.histogram("dsx_test_latency_us", {{"model", "mx"}});
  for (int i = 1; i <= 100; ++i) h.record(i);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP dsx_test_requests_total Requests."),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dsx_test_requests_total counter"),
            std::string::npos);
  // Label values are escaped.
  EXPECT_NE(text.find("dsx_test_requests_total{model=\"m\\\"x\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("dsx_test_depth 4"), std::string::npos);
  // Histograms export summary-style quantiles plus _sum and _count.
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("dsx_test_latency_us_count{model=\"mx\"} 100"),
            std::string::npos);

  // No duplicate (name, labels) sample lines.
  std::map<std::string, int> seen;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_EQ(++seen[line.substr(0, sp)], 1) << line;
  }

  EXPECT_TRUE(json_well_formed(reg.json_snapshot()));
}

TEST(Registry, MultiWriterStressIsExact) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      // Every thread re-registers its handles - exercises the registration
      // path under contention as well as the write path.
      Counter c = reg.counter("dsx_stress_total", {{"k", "v"}});
      Histogram h = reg.histogram("dsx_stress_us");
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record((t * kPerThread + i) % 1000 + 1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter("dsx_stress_total", {{"k", "v"}}).value(),
            kThreads * kPerThread);
  EXPECT_EQ(reg.histogram("dsx_stress_us").snapshot().count,
            kThreads * kPerThread);
}

// ---- tracing ---------------------------------------------------------------

TEST(Trace, SamplingOffDrawsNoIds) {
  set_trace_sampling(0);
  EXPECT_FALSE(trace_enabled());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_trace_id(), 0u);
}

TEST(Trace, OneInNSamplingIsExact) {
  set_trace_sampling(4);
  int sampled = 0;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = sample_trace_id();
    if (id != 0) {
      ++sampled;
      ids.push_back(id);
    }
  }
  set_trace_sampling(0);
  // The sampler admits exactly one of every N consecutive draws, whatever
  // the counter phase, and sampled ids are unique.
  EXPECT_EQ(sampled, 250);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(Trace, DisabledTracingRecordsNothingFromServing) {
  clear_trace();
  set_trace_sampling(0);
  // A flight promotion would also land events in the rings; this test pins
  // down the HEAD-sampling-off contract, so switch tail capture off too.
  flight::set_flight_enabled(false);
  const int64_t before = trace_stats().recorded;

  auto model = make_scc_model(31);
  serve::InferenceServer server;
  server.register_model(
      "obs-off",
      std::make_unique<serve::CompiledModel>(
          std::move(model), Shape{3, kImage, kImage},
          serve::CompileOptions{.max_batch = 4}),
      {.max_batch = 4});
  Rng rng(5);
  for (int i = 0; i < 8; ++i) {
    (void)server.infer("obs-off",
                       random_uniform(make_nchw(1, 3, kImage, kImage), rng));
  }
  server.stop();
  EXPECT_EQ(trace_stats().recorded, before);
  flight::set_flight_enabled(true);
}

TEST(Trace, EndToEndServerSpansNestAndMatchStats) {
  clear_trace();
  set_trace_sampling(1);  // trace every request
  // Keep the track count exact: a flight promotion under a slow CI run
  // would add its own track for an already-traced request.
  flight::set_flight_enabled(false);

  auto model = make_scc_model(17);
  serve::InferenceServer server;
  server.register_model(
      "obs-e2e",
      std::make_unique<serve::CompiledModel>(
          std::move(model), Shape{3, kImage, kImage},
          serve::CompileOptions{.max_batch = 4}),
      {.max_batch = 4, .max_delay = std::chrono::microseconds(500)});

  constexpr int kRequests = 12;
  Rng rng(9);
  std::vector<Tensor> images;
  for (int i = 0; i < kRequests; ++i) {
    images.push_back(random_uniform(make_nchw(1, 3, kImage, kImage), rng));
  }
  std::vector<std::future<Tensor>> inflight;
  for (const Tensor& img : images) {
    inflight.push_back(server.submit("obs-e2e", img));
  }
  for (auto& f : inflight) (void)f.get();
  const serve::ModelStats stats = server.stats("obs-e2e");
  server.stop();
  set_trace_sampling(0);

  // Group the per-request tracks.
  std::map<uint64_t, std::vector<TraceEvent>> tracks;
  for (const TraceEvent& ev : trace_snapshot()) {
    if (ev.pid == kRequestPid && ev.tid != 0) tracks[ev.tid].push_back(ev);
  }
  ASSERT_EQ(tracks.size(), static_cast<size_t>(kRequests));

  int64_t max_request_dur = 0;
  for (const auto& [tid, events] : tracks) {
    const TraceEvent* request = nullptr;
    const TraceEvent* queue_wait = nullptr;
    const TraceEvent* execute = nullptr;
    const TraceEvent* reply = nullptr;
    int layer_events = 0;
    for (const TraceEvent& ev : events) {
      const std::string name = ev.name;
      if (name == "request") request = &ev;
      if (name == "queue_wait") queue_wait = &ev;
      if (name == "batch_execute") execute = &ev;
      if (name == "reply") reply = &ev;
      if (std::string(ev.cat) == "layer") ++layer_events;
    }
    ASSERT_NE(request, nullptr);
    ASSERT_NE(queue_wait, nullptr);
    ASSERT_NE(execute, nullptr);
    ASSERT_NE(reply, nullptr);
    // The compiled plan has >= 6 steps; each traced request sees them all.
    EXPECT_GE(layer_events, 6);

    const int64_t req_end = request->start_ns + request->dur_ns;
    const auto inside_request = [&](const TraceEvent& ev) {
      EXPECT_GE(ev.start_ns, request->start_ns) << ev.name;
      EXPECT_LE(ev.start_ns + ev.dur_ns, req_end) << ev.name;
    };
    inside_request(*queue_wait);
    inside_request(*execute);
    inside_request(*reply);
    EXPECT_EQ(queue_wait->start_ns, request->start_ns);
    EXPECT_EQ(reply->start_ns + reply->dur_ns, req_end);
    // Every per-layer kernel span nests inside batch_execute.
    const int64_t exec_end = execute->start_ns + execute->dur_ns;
    for (const TraceEvent& ev : events) {
      if (std::string(ev.cat) != "layer") continue;
      EXPECT_GE(ev.start_ns, execute->start_ns);
      EXPECT_LE(ev.start_ns + ev.dur_ns, exec_end);
    }
    max_request_dur = std::max(max_request_dur, request->dur_ns);
  }

  // The request span IS the latency sample: with every request traced, the
  // longest track must equal the stats() max latency (same timestamps).
  EXPECT_NEAR(static_cast<double>(max_request_dur) / 1e6,
              stats.batcher.latency.max_ms, 1e-6);
  EXPECT_EQ(stats.batcher.requests, kRequests);

  // Export surface: well-formed Chrome trace JSON with complete events and
  // track-naming metadata.
  const std::string json = chrome_trace_json();
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"request\""), std::string::npos);

  const std::string path = "trace_test_obs.json";
  ASSERT_TRUE(export_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), json);
  std::remove(path.c_str());
  clear_trace();
  flight::set_flight_enabled(true);
}

TEST(Trace, RingIsBoundedAndCountsDrops) {
  clear_trace();
  set_trace_sampling(1);
  constexpr int kEvents = 40000;  // > the 16384-slot per-thread ring
  for (int i = 0; i < kEvents; ++i) {
    TraceEvent ev;
    ev.name = "flood";
    ev.cat = "test";
    ev.tid = 1;
    ev.start_ns = i;
    record_event(ev);
  }
  set_trace_sampling(0);
  const TraceStats ts = trace_stats();
  EXPECT_GE(ts.recorded, kEvents);
  EXPECT_LE(ts.retained, 16384 + 1);
  EXPECT_GE(ts.dropped, kEvents - 16384 - 1);
  // Retained events are the newest and come back sorted by start time.
  const auto events = trace_snapshot();
  int64_t prev = -1;
  int64_t newest = 0;
  for (const TraceEvent& ev : events) {
    if (std::string(ev.cat) != "test") continue;
    EXPECT_GE(ev.start_ns, prev);
    prev = ev.start_ns;
    newest = std::max(newest, ev.start_ns);
  }
  EXPECT_EQ(newest, kEvents - 1);
  clear_trace();
}

// ---- journal ---------------------------------------------------------------

TEST(Journal, RingIsBoundedOrderedAndFilterable) {
  Journal j(4);
  for (int i = 0; i < 10; ++i) {
    j.record(i % 2 == 0 ? EventKind::kShed : EventKind::kReject, "m",
             std::to_string(i));
  }
  EXPECT_EQ(j.recorded(), 10u);
  EXPECT_EQ(j.dropped(), 6u);
  const auto events = j.events();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  EXPECT_EQ(events.front().detail, "6");
  EXPECT_EQ(events.back().detail, "9");
  const auto sheds = j.events(EventKind::kShed);
  ASSERT_EQ(sheds.size(), 2u);
  for (const auto& e : sheds) EXPECT_EQ(e.kind, EventKind::kShed);
  EXPECT_NE(j.to_text().find("shed"), std::string::npos);
  j.clear();
  EXPECT_TRUE(j.events().empty());
}

TEST(Journal, ServerLifecycleIsJournaled) {
  Journal& j = Journal::global();
  j.clear();
  {
    serve::InferenceServer server;
    server.register_model(
        "obs-journal",
        std::make_unique<serve::CompiledModel>(
            make_scc_model(23), Shape{3, kImage, kImage},
            serve::CompileOptions{.max_batch = 2}),
        {.max_batch = 2});
    server.swap_model("obs-journal",
                      std::make_unique<serve::CompiledModel>(
                          make_scc_model(24), Shape{3, kImage, kImage},
                          serve::CompileOptions{.max_batch = 2}),
                      {.max_batch = 2});
    server.unregister_model("obs-journal");
  }
  const auto regs = j.events(EventKind::kRegister);
  const auto swaps = j.events(EventKind::kSwap);
  const auto unregs = j.events(EventKind::kUnregister);
  ASSERT_EQ(regs.size(), 1u);
  EXPECT_EQ(regs[0].scope, "obs-journal");
  ASSERT_EQ(swaps.size(), 1u);
  EXPECT_EQ(swaps[0].scope, "obs-journal");
  EXPECT_NE(swaps[0].detail.find("drained"), std::string::npos);
  ASSERT_EQ(unregs.size(), 1u);
  // Lifecycle order is exact: register < swap < unregister.
  EXPECT_LT(regs[0].seq, swaps[0].seq);
  EXPECT_LT(swaps[0].seq, unregs[0].seq);
}

// ---- server export surface -------------------------------------------------

TEST(Server, MetricsExportCoversServedModel) {
  auto model = make_scc_model(29);
  serve::InferenceServer server;
  server.register_model(
      "obs-export",
      std::make_unique<serve::CompiledModel>(
          std::move(model), Shape{3, kImage, kImage},
          serve::CompileOptions{.max_batch = 4}),
      {.max_batch = 4});
  Rng rng(3);
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    (void)server.infer("obs-export",
                       random_uniform(make_nchw(1, 3, kImage, kImage), rng));
  }
  const std::string text = server.export_metrics_text();
  server.stop();
  // The registry is cumulative across tests in this process, so assert
  // presence and a floor rather than an exact count.
  const std::string series =
      "dsx_serve_requests_total{model=\"obs-export\"} ";
  const size_t pos = text.find(series);
  ASSERT_NE(pos, std::string::npos);
  EXPECT_GE(std::atoll(text.c_str() + pos + series.size()), kRequests);
  EXPECT_NE(text.find("dsx_serve_request_latency_us"), std::string::npos);
  EXPECT_TRUE(json_well_formed(server.export_metrics_json()));
}

TEST(Registry, HelpTextIsEscapedInExposition) {
  Registry reg;
  reg.counter("dsx_test_help_escape", {},
              "line one\nline two with back\\slash");
  const std::string text = reg.prometheus_text();
  // The exposition format requires \ -> \\ and newline -> \n in HELP; a
  // raw newline would split the HELP comment into a bogus sample line.
  EXPECT_NE(text.find("# HELP dsx_test_help_escape "
                      "line one\\nline two with back\\\\slash\n"),
            std::string::npos);
  EXPECT_EQ(text.find("line two with back\\slash\n"), std::string::npos);
}

TEST(Registry, SumCounterAndMergedHistogramAggregateAcrossReplicas) {
  Registry reg;
  reg.counter("dsx_test_agg_total", {{"model", "m"}, {"replica", "0"}})
      .inc(3);
  reg.counter("dsx_test_agg_total", {{"model", "m"}, {"replica", "1"}})
      .inc(4);
  reg.counter("dsx_test_agg_total", {{"model", "other"}}).inc(100);
  EXPECT_EQ(reg.sum_counter("dsx_test_agg_total", {{"model", "m"}}), 7);
  EXPECT_EQ(reg.sum_counter("dsx_test_agg_total", {}), 107);
  EXPECT_EQ(reg.sum_counter("dsx_test_agg_total", {{"model", "none"}}), 0);

  auto h0 = reg.histogram("dsx_test_agg_us", {{"model", "m"}, {"replica", "0"}});
  auto h1 = reg.histogram("dsx_test_agg_us", {{"model", "m"}, {"replica", "1"}});
  for (int i = 0; i < 50; ++i) h0.record(100);
  for (int i = 0; i < 50; ++i) h1.record(200);
  const auto merged = reg.merged_histogram("dsx_test_agg_us", {{"model", "m"}});
  EXPECT_EQ(merged.count, 100);
  EXPECT_EQ(merged.sum, 50 * 100 + 50 * 200);
  EXPECT_EQ(merged.min, 100);
  EXPECT_EQ(merged.max, 200);
  EXPECT_EQ(reg.merged_histogram("dsx_test_agg_us", {{"model", "x"}}).count, 0);
}

// ---- SLO window math -------------------------------------------------------

TEST(LogHistogram, DeltaSnapshotIsolatesTheWindow) {
  device::LogHistogram h;
  for (int i = 0; i < 1000; ++i) h.record(100);  // epoch A: all fast
  const auto base = h.bucket_snapshot();
  for (int i = 0; i < 1000; ++i) h.record(100000);  // epoch B: all slow
  const auto now = h.bucket_snapshot();

  // Cumulative view straddles both epochs; the delta sees only epoch B.
  const auto full = device::LogHistogram::delta_snapshot(
      now, device::LogHistogram::BucketSnapshot{});
  EXPECT_EQ(full.count, 2000);
  EXPECT_EQ(full.p50, 100.0);  // exact: small-ish values, clamped midpoints
  const auto window = device::LogHistogram::delta_snapshot(now, base);
  EXPECT_EQ(window.count, 1000);
  EXPECT_NEAR(window.p50, 100000.0,
              100000.0 * device::LogHistogram::kQuantileRelativeError);
  EXPECT_NEAR(window.p99, 100000.0,
              100000.0 * device::LogHistogram::kQuantileRelativeError);
  EXPECT_DOUBLE_EQ(window.mean, 100000.0);
  // An empty window (identical endpoints) is all zeros.
  const auto empty = device::LogHistogram::delta_snapshot(now, now);
  EXPECT_EQ(empty.count, 0);
  EXPECT_EQ(empty.p99, 0.0);
  // Delta against an empty baseline IS the cumulative snapshot.
  const auto snap = h.snapshot();
  EXPECT_EQ(full.count, snap.count);
  EXPECT_DOUBLE_EQ(full.p50, snap.p50);
  EXPECT_DOUBLE_EQ(full.p99, snap.p99);
  EXPECT_DOUBLE_EQ(full.min, snap.min);
  EXPECT_DOUBLE_EQ(full.max, snap.max);
}

namespace slo_testing {

/// Scripted cumulative series for deterministic SLO evaluation: every
/// step() appends one window sample (ts advances 1s), recording `good`
/// fast requests and `bad` slow ones into the cumulative state.
struct ScriptedModel {
  device::LogHistogram hist;  // cumulative latencies (microseconds)
  int64_t requests = 0;
  int64_t errors = 0;
  int64_t ts_ns = 1'000'000'000;

  slo::WindowSample step(int good, int bad, int errs = 0) {
    for (int i = 0; i < good; ++i) hist.record(100);      // 0.1 ms
    for (int i = 0; i < bad; ++i) hist.record(100'000);   // 100 ms
    requests += good + bad + errs;
    errors += errs;
    ts_ns += 1'000'000'000;
    slo::WindowSample s;
    s.ts_ns = ts_ns;
    s.requests = requests;
    s.errors = errors;
    s.latency = hist.bucket_snapshot();
    return s;
  }
};

slo::SloSpec test_spec() {
  slo::SloSpec spec;
  spec.p99_ms = 1.0;  // 1 ms objective; good=0.1ms passes, bad=100ms breaches
  spec.latency_target = 0.99;
  spec.max_error_rate = 0.05;
  spec.fast_window = std::chrono::milliseconds(1500);   // ~1 step
  spec.slow_window = std::chrono::milliseconds(5500);   // ~5 steps
  spec.critical_burn = 10.0;
  spec.degraded_burn = 2.0;
  spec.min_samples = 10;
  spec.clear_evaluations = 3;
  return spec;
}

}  // namespace slo_testing

TEST(Slo, WindowDeltaComputesRatesAndBurn) {
  using slo_testing::ScriptedModel;
  ScriptedModel m;
  const slo::SloSpec spec = slo_testing::test_spec();
  const slo::WindowSample a = m.step(/*good=*/90, /*bad=*/0);
  const slo::WindowSample b = m.step(/*good=*/16, /*bad=*/4, /*errs=*/0);
  const slo::WindowDelta d = slo::window_delta(spec, a, b);
  EXPECT_EQ(d.requests, 20);
  EXPECT_EQ(d.latency_count, 20);
  EXPECT_DOUBLE_EQ(d.error_rate, 0.0);
  // 4 of 20 samples above 1 ms -> slow_fraction 0.2 -> burn 0.2 / 0.01.
  EXPECT_DOUBLE_EQ(d.slow_fraction, 0.2);
  EXPECT_NEAR(d.latency_burn, 20.0, 1e-9);
  EXPECT_NEAR(d.burn_rate, 20.0, 1e-9);
  EXPECT_NEAR(d.p99_ms, 100.0,
              100.0 * device::LogHistogram::kQuantileRelativeError);

  // Availability burn: 2 errors in 20 requests = 10% vs the 5% budget.
  const slo::WindowSample c = m.step(/*good=*/18, /*bad=*/0, /*errs=*/2);
  const slo::WindowDelta e = slo::window_delta(spec, b, c);
  EXPECT_DOUBLE_EQ(e.error_rate, 0.1);
  EXPECT_NEAR(e.availability_burn, 2.0, 1e-9);
  // Racing/reversed counters clamp, never go negative.
  const slo::WindowDelta r = slo::window_delta(spec, c, b);
  EXPECT_EQ(r.requests, 0);
  EXPECT_EQ(r.errors, 0);
}

TEST(Slo, BurnRateTrackerTripsAndRecoversWithHysteresis) {
  using slo_testing::ScriptedModel;
  ScriptedModel m;
  const slo::SloSpec spec = slo_testing::test_spec();
  slo::BurnRateTracker tracker(spec);

  // Seed + healthy steady state.
  EXPECT_FALSE(tracker.push(m.step(20, 0)).armed);
  for (int i = 0; i < 6; ++i) {
    const slo::Evaluation ev = tracker.push(m.step(20, 0));
    EXPECT_TRUE(ev.armed);
    EXPECT_EQ(ev.health, slo::Health::kHealthy) << ev.detail;
  }

  // Breach: a step of 100% slow requests floods fast AND slow windows past
  // critical_burn -> Critical immediately (downgrades are not hysteretic).
  const slo::Evaluation trip = tracker.push(m.step(0, 20));
  EXPECT_TRUE(trip.armed);
  EXPECT_EQ(trip.raw, slo::Health::kCritical) << trip.detail;
  EXPECT_EQ(trip.health, slo::Health::kCritical);
  EXPECT_TRUE(trip.transitioned);

  // Recovery: clean steps report a healthier raw verdict, but health only
  // steps down after clear_evaluations consecutive clean evaluations.
  int clean_until_downgrade = 0;
  slo::Evaluation ev;
  for (int i = 0; i < 12; ++i) {
    ev = tracker.push(m.step(20, 0));
    ++clean_until_downgrade;
    if (ev.health != slo::Health::kCritical) break;
  }
  EXPECT_NE(ev.health, slo::Health::kCritical) << ev.detail;
  // The downgrade must have taken at least clear_evaluations cleaner
  // verdicts (the first recovery evals still see breach in the windows).
  EXPECT_GE(clean_until_downgrade, spec.clear_evaluations);
  // And it settles back to steady Healthy.
  for (int i = 0; i < 8; ++i) ev = tracker.push(m.step(20, 0));
  EXPECT_EQ(ev.health, slo::Health::kHealthy) << ev.detail;
}

TEST(Slo, TrackerRingStaysBoundedAndWindowsSurviveWrap) {
  using slo_testing::ScriptedModel;
  ScriptedModel m;
  slo::SloSpec spec = slo_testing::test_spec();
  slo::BurnRateTracker tracker(spec);
  // Push far more samples than any retention bound; deltas must stay
  // windowed (per-step counts), not drift toward cumulative totals.
  slo::Evaluation ev;
  for (int i = 0; i < 600; ++i) ev = tracker.push(m.step(20, 0));
  EXPECT_LE(tracker.ring_size(), slo::BurnRateTracker::kMaxRing);
  EXPECT_TRUE(ev.armed);
  // Fast window ~1.5 steps -> the delta covers 1..2 steps of 20 requests.
  EXPECT_GE(ev.fast.requests, 20);
  EXPECT_LE(ev.fast.requests, 40);
  // Slow window ~5.5 steps, never the 600-step cumulative total.
  EXPECT_GE(ev.slow.requests, 5 * 20);
  EXPECT_LE(ev.slow.requests, 7 * 20);
  EXPECT_EQ(ev.health, slo::Health::kHealthy);
}

TEST(Slo, EngineJournalsTransitionsAndExportsSeries) {
  auto scripted = std::make_shared<slo_testing::ScriptedModel>();
  slo::SloEngine engine;
  slo::SloSpec spec = slo_testing::test_spec();
  // Scripted sampler: healthy steps until told to breach.
  auto breach = std::make_shared<bool>(false);
  engine.set_slo("slo-journal", spec, [scripted, breach] {
    return *breach ? scripted->step(0, 20) : scripted->step(20, 0);
  });
  EXPECT_TRUE(engine.has_slo("slo-journal"));
  for (int i = 0; i < 4; ++i) (void)engine.evaluate("slo-journal");
  EXPECT_EQ(engine.health("slo-journal"), slo::Health::kHealthy);
  EXPECT_EQ(engine.aggregate(), slo::Health::kHealthy);

  const uint64_t recorded_before = Journal::global().recorded();
  *breach = true;
  const slo::Evaluation ev = engine.evaluate("slo-journal");
  EXPECT_EQ(ev.health, slo::Health::kCritical) << ev.detail;
  EXPECT_TRUE(ev.transitioned);
  EXPECT_EQ(engine.aggregate(), slo::Health::kCritical);

  // The transition was journaled with the evaluation detail.
  bool journaled = false;
  for (const Event& e : Journal::global().events(EventKind::kHealth)) {
    if (e.seq >= recorded_before && e.scope == "slo-journal" &&
        e.detail.find("->critical") != std::string::npos) {
      journaled = true;
    }
  }
  EXPECT_TRUE(journaled);

  // And the dsx_slo_* series reflect it.
  Registry& reg = Registry::global();
  EXPECT_EQ(reg.gauge("dsx_slo_health", {{"model", "slo-journal"}}).value(),
            2);
  EXPECT_GE(
      reg.counter("dsx_slo_transitions_total", {{"model", "slo-journal"}})
          .value(),
      1);
  EXPECT_GE(
      reg.counter("dsx_slo_evaluations_total", {{"model", "slo-journal"}})
          .value(),
      5);
  EXPECT_TRUE(json_well_formed(engine.healthz_json()));
  EXPECT_NE(engine.healthz_json().find("\"status\":\"critical\""),
            std::string::npos);
}

// ---- HTTP exporter ---------------------------------------------------------

namespace {

/// Every non-comment exposition line must be `name[{labels}] value` with a
/// fully-parsing numeric value. An OpenMetrics exemplar suffix
/// (` # {trace_id="..."} value timestamp`) is validated then stripped.
bool exposition_well_formed(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t exemplar = line.find(" # {");
    if (exemplar != std::string::npos) {
      const std::string suffix = line.substr(exemplar + 3);
      const size_t close = suffix.find("} ");
      if (close == std::string::npos) return false;
      // `value timestamp` after the exemplar labels, both numeric.
      std::istringstream tail(suffix.substr(close + 2));
      double v = 0.0;
      double ts = 0.0;
      if (!(tail >> v >> ts)) return false;
      line.resize(exemplar);
    }
    const size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp + 1 >= line.size()) return false;
    char* end = nullptr;
    (void)std::strtod(line.c_str() + sp + 1, &end);
    if (end == nullptr || *end != '\0') return false;
    const std::string head = line.substr(0, sp);
    if (head.empty()) return false;
    const size_t brace = head.find('{');
    if (brace != std::string::npos && head.back() != '}') return false;
  }
  return true;
}

/// The value of the first sample line whose head matches `series` exactly.
double scrape_series(const std::string& text, const std::string& series) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(series + " ", 0) == 0) {
      return std::strtod(line.c_str() + series.size() + 1, nullptr);
    }
  }
  return -1.0;
}

}  // namespace

TEST(Exporter, EndpointsServeOverHttp) {
  serve::InferenceServer server;
  server.register_model(
      "http-serve",
      std::make_unique<serve::CompiledModel>(
          make_scc_model(31), Shape{3, kImage, kImage},
          serve::CompileOptions{.max_batch = 4}),
      {.max_batch = 4});
  Rng rng(7);
  for (int i = 0; i < 8; ++i) {
    (void)server.infer("http-serve",
                       random_uniform(make_nchw(1, 3, kImage, kImage), rng));
  }
  const int port = server.start_exporter({});
  ASSERT_GT(port, 0);
  EXPECT_EQ(server.exporter_port(), port);

  const HttpResponse metrics = http_get("127.0.0.1", port, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.headers.find("text/plain"), std::string::npos);
  EXPECT_TRUE(exposition_well_formed(metrics.body));
  // A plain scrape is classic 0.0.4: no exemplar syntax (the classic parser
  // rejects it) and no OpenMetrics terminator.
  EXPECT_EQ(metrics.body.find(" # {"), std::string::npos);
  EXPECT_EQ(metrics.body.find("# EOF"), std::string::npos);
  EXPECT_GE(scrape_series(metrics.body,
                          "dsx_serve_requests_total{model=\"http-serve\"}"),
            8.0);

  // Offering application/openmetrics-text negotiates the OpenMetrics
  // exposition (exemplar-capable, # EOF terminated).
  const HttpResponse om =
      http_get("127.0.0.1", port, "/metrics", std::chrono::milliseconds(5000),
               "application/openmetrics-text");
  EXPECT_EQ(om.status, 200);
  EXPECT_NE(om.headers.find("application/openmetrics-text"),
            std::string::npos);
  EXPECT_TRUE(exposition_well_formed(om.body));
  EXPECT_EQ(om.body.rfind("# EOF\n"), om.body.size() - 6);

  const HttpResponse json = http_get("127.0.0.1", port, "/metrics.json");
  EXPECT_EQ(json.status, 200);
  EXPECT_TRUE(json_well_formed(json.body));

  // No SLOs declared: healthz is 200/healthy.
  const HttpResponse healthz = http_get("127.0.0.1", port, "/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find("\"status\":\"healthy\""), std::string::npos);

  const HttpResponse journal = http_get("127.0.0.1", port, "/journal");
  EXPECT_EQ(journal.status, 200);
  EXPECT_NE(journal.body.find("register"), std::string::npos);

  const HttpResponse journal_json =
      http_get("127.0.0.1", port, "/journal.json");
  EXPECT_EQ(journal_json.status, 200);
  EXPECT_NE(journal_json.headers.find("application/json"),
            std::string::npos);
  EXPECT_TRUE(json_well_formed(journal_json.body));
  EXPECT_NE(journal_json.body.find("\"kind\":\"register\""),
            std::string::npos);
  EXPECT_NE(journal_json.body.find("\"recorded\":"), std::string::npos);

  const HttpResponse trace = http_get("127.0.0.1", port, "/trace");
  EXPECT_EQ(trace.status, 200);
  EXPECT_TRUE(json_well_formed(trace.body));

  const HttpResponse outliers = http_get("127.0.0.1", port, "/outliers");
  EXPECT_EQ(outliers.status, 200);
  EXPECT_TRUE(json_well_formed(outliers.body));
  EXPECT_NE(outliers.body.find("\"outliers\""), std::string::npos);

  // The scraped /metrics also publishes the trace-ring series.
  EXPECT_NE(metrics.body.find("dsx_obs_trace_retained"), std::string::npos);

  EXPECT_EQ(http_get("127.0.0.1", port, "/nope").status, 404);
  const HttpResponse help = http_get("127.0.0.1", port, "/");
  EXPECT_EQ(help.status, 200);
  EXPECT_NE(help.body.find("/outliers"), std::string::npos);
  EXPECT_NE(help.body.find("/journal.json"), std::string::npos);

  // Query strings are stripped, Prometheus-style.
  EXPECT_EQ(http_get("127.0.0.1", port, "/healthz?verbose=1").status, 200);

  server.stop_exporter();
  EXPECT_EQ(server.exporter_port(), 0);
  EXPECT_THROW(http_get("127.0.0.1", port, "/metrics"), Error);
  server.stop();
}

TEST(Exporter, HealthzFlipsTo503OnSloBreach) {
  serve::InferenceServer server;
  server.register_model(
      "http-breach",
      std::make_unique<serve::CompiledModel>(
          make_scc_model(33), Shape{3, kImage, kImage},
          serve::CompileOptions{.max_batch = 4}),
      {.max_batch = 4});
  // An impossible latency objective: every real request breaches, so the
  // burn rate saturates as soon as the windows have samples.
  slo::SloSpec spec;
  spec.p99_ms = 1e-6;
  spec.max_error_rate = 0.5;
  spec.fast_window = std::chrono::milliseconds(50);
  spec.slow_window = std::chrono::milliseconds(100);
  spec.min_samples = 8;
  server.set_slo("http-breach", spec);
  const int port = server.start_exporter({});

  // First probe seeds the window ring (still healthy).
  EXPECT_EQ(http_get("127.0.0.1", port, "/healthz").status, 200);

  Rng rng(9);
  for (int i = 0; i < 16; ++i) {
    (void)server.infer("http-breach",
                       random_uniform(make_nchw(1, 3, kImage, kImage), rng));
  }
  // Every sample in the window is over the objective -> Critical -> 503.
  // One probe can land before the window spans the traffic; give it a few.
  int status = 0;
  std::string body;
  for (int probe = 0; probe < 50 && status != 503; ++probe) {
    const HttpResponse r = http_get("127.0.0.1", port, "/healthz");
    status = r.status;
    body = r.body;
    if (status != 503) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_EQ(status, 503);
  EXPECT_NE(body.find("\"status\":\"critical\""), std::string::npos);
  EXPECT_NE(body.find("http-breach"), std::string::npos);
  EXPECT_EQ(server.slo_engine().health("http-breach"),
            slo::Health::kCritical);

  // The Healthy->Critical transition is in the journal with its windows.
  bool journaled = false;
  for (const Event& e : Journal::global().events(EventKind::kHealth)) {
    if (e.scope == "http-breach" &&
        e.detail.find("->critical") != std::string::npos) {
      journaled = true;
    }
  }
  EXPECT_TRUE(journaled);

  // The health downgrade armed the flight recorder for this model (the SLO
  // hook), and the arming itself was journaled.
  flight::ModelState* st = flight::model_state("http-breach");
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->armed());
  bool armed_journaled = false;
  for (const Event& e : Journal::global().events(EventKind::kFlight)) {
    if (e.scope == "http-breach") armed_journaled = true;
  }
  EXPECT_TRUE(armed_journaled);
  server.stop();
}

TEST(Exporter, ConcurrentScrapesUnderLoadStayParseableAndMonotone) {
  serve::InferenceServer server;
  const int port = server.start_exporter({});
  Registry& reg = Registry::global();

  constexpr int kWriters = 4;
  constexpr int kScrapers = 3;
  constexpr auto kDuration = std::chrono::milliseconds(400);
  std::atomic<bool> stop{false};
  std::atomic<int> parse_failures{0};
  std::atomic<int> monotonicity_violations{0};
  std::atomic<int> scrapes{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&reg, w, &stop] {
      Counter c = reg.counter("dsx_test_scrape_total",
                              {{"writer", std::to_string(w)}});
      Histogram h = reg.histogram("dsx_test_scrape_us",
                                  {{"writer", std::to_string(w)}});
      int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        c.inc();
        h.record(100 + (i++ % 1000));
      }
    });
  }
  std::vector<std::thread> scrapers;
  scrapers.reserve(kScrapers);
  for (int s = 0; s < kScrapers; ++s) {
    scrapers.emplace_back([&, s] {
      const std::string series = "dsx_test_scrape_total{writer=\"" +
                                 std::to_string(s % kWriters) + "\"}";
      double last = -1.0;
      while (!stop.load(std::memory_order_relaxed)) {
        HttpResponse r;
        try {
          r = http_get("127.0.0.1", port, "/metrics");
        } catch (const Error&) {
          continue;  // accept-queue full under sanitizer load: retry
        }
        if (r.status != 200 || !exposition_well_formed(r.body)) {
          parse_failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        scrapes.fetch_add(1, std::memory_order_relaxed);
        const double v = scrape_series(r.body, series);
        if (v < last) {
          monotonicity_violations.fetch_add(1, std::memory_order_relaxed);
        }
        if (v >= 0.0) last = v;
      }
    });
  }
  std::this_thread::sleep_for(kDuration);
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
  for (std::thread& t : scrapers) t.join();

  EXPECT_EQ(parse_failures.load(), 0);
  EXPECT_EQ(monotonicity_violations.load(), 0);
  EXPECT_GT(scrapes.load(), 0);  // the loop really scraped under load
  server.stop();
}

// ---- LogHistogram bucket edges (the `le` boundary) -------------------------

TEST(LogHistogram, BucketUpperBoundsEveryValueInTheBucket) {
  // Small values: the bucket holds exactly that value, the edge is it.
  for (int64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(device::LogHistogram::bucket_upper(
                  device::LogHistogram::bucket_of(v)),
              static_cast<double>(v));
  }
  // Larger values: value < upper edge (exclusive), and the edge of bucket b
  // is the lower edge of bucket b+1 (contiguous coverage).
  for (int64_t v : {8, 9, 100, 1000, 99999, 1'000'000'000}) {
    const int b = device::LogHistogram::bucket_of(v);
    EXPECT_LT(static_cast<double>(v), device::LogHistogram::bucket_upper(b))
        << v;
    EXPECT_GT(device::LogHistogram::bucket_upper(b),
              device::LogHistogram::bucket_value(b))
        << v;
  }
}

// ---- flight recorder (tail-based capture) ----------------------------------

TEST(Flight, DisabledPromotesNothingFromServing) {
  flight::reset_for_test();
  // Threshold 1 us would promote EVERY request - proving the kill switch,
  // not a tall threshold, is what keeps captures out.
  flight::set_absolute_threshold_us(1);
  flight::set_flight_enabled(false);
  serve::InferenceServer server;
  server.register_model(
      "flight-off",
      std::make_unique<serve::CompiledModel>(
          make_scc_model(41), Shape{3, kImage, kImage},
          serve::CompileOptions{.max_batch = 4}),
      {.max_batch = 4});
  Rng rng(11);
  for (int i = 0; i < 6; ++i) {
    (void)server.infer("flight-off",
                       random_uniform(make_nchw(1, 3, kImage, kImage), rng));
  }
  server.stop();
  EXPECT_EQ(flight::flight_stats().promoted, 0);
  EXPECT_TRUE(flight::retained().empty());
  flight::set_flight_enabled(true);
  flight::set_absolute_threshold_us(100'000);
}

TEST(Flight, AbsoluteVerdictPromotesWithSpansExemplarAndTraceResolution) {
  clear_trace();
  set_trace_sampling(0);  // nothing head-sampled: promotion must stand alone
  flight::reset_for_test();
  flight::set_flight_enabled(true);
  flight::set_absolute_threshold_us(1);  // every reply is an outlier

  serve::InferenceServer server;
  server.register_model(
      "flight-e2e",
      std::make_unique<serve::CompiledModel>(
          make_scc_model(43), Shape{3, kImage, kImage},
          serve::CompileOptions{.max_batch = 4}),
      {.max_batch = 4});
  Rng rng(13);
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    (void)server.infer("flight-e2e",
                       random_uniform(make_nchw(1, 3, kImage, kImage), rng));
  }
  server.stop();
  flight::set_absolute_threshold_us(100'000);

  const flight::FlightStats stats = flight::flight_stats();
  EXPECT_GE(stats.promoted, kRequests);
  EXPECT_GE(stats.retained, kRequests);

  // The top-K capture carries the full span breakdown incl. per-layer.
  flight::ModelState* st = flight::model_state("flight-e2e");
  ASSERT_NE(st, nullptr);
  const std::vector<flight::Capture> outliers = st->outliers();
  ASSERT_FALSE(outliers.empty());
  const flight::Capture& cap = outliers.front();
  EXPECT_EQ(cap.verdict, flight::Verdict::kAbsolute);
  EXPECT_GE(cap.trace_id, flight::kFlightIdBase);  // not head-sampled
  EXPECT_GT(cap.latency_us, 0);
  EXPECT_EQ(cap.batch, 1);
  bool has_execute = false;
  bool has_queue_wait = false;
  int layer_spans = 0;
  for (const flight::Span& span : cap.spans) {
    const std::string name = span.name;
    if (name == "batch_execute") has_execute = true;
    if (name == "queue_wait") has_queue_wait = true;
    if (std::string(span.cat) == "layer") ++layer_spans;
  }
  EXPECT_TRUE(has_execute);
  EXPECT_TRUE(has_queue_wait);
  EXPECT_GE(layer_spans, 6);  // the compiled plan has >= 6 steps

  // The capture's trace id resolves in the trace rings (GET /trace).
  bool resolves = false;
  for (const TraceEvent& ev : trace_snapshot()) {
    if (ev.tid == cap.trace_id) resolves = true;
  }
  EXPECT_TRUE(resolves);

  // /outliers carries model, verdict and the span breakdown.
  const std::string json = flight::outliers_json();
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"model\":\"flight-e2e\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"absolute\""), std::string::npos);
  EXPECT_NE(json.find("\"batch_execute\""), std::string::npos);

  // The promotion filed an exemplar on the model's latency histogram, its
  // trace id in the flight range.
  Histogram latency = Registry::global().histogram(
      "dsx_serve_request_latency_us", {{"model", "flight-e2e"}});
  const std::vector<Exemplar> exemplars = latency.exemplars();
  ASSERT_FALSE(exemplars.empty());
  bool exemplar_resolves = false;
  for (const Exemplar& e : exemplars) {
    EXPECT_GE(e.trace_id, flight::kFlightIdBase);
    for (const TraceEvent& ev : trace_snapshot()) {
      if (ev.tid == e.trace_id) exemplar_resolves = true;
    }
  }
  EXPECT_TRUE(exemplar_resolves);
  clear_trace();
}

TEST(Flight, AdaptiveThresholdTracksTheWindowedP99) {
  flight::set_absolute_threshold_us(0);  // isolate the adaptive rule
  flight::ModelState st("flight-adaptive-unit");
  EXPECT_EQ(st.adaptive_threshold_us(), 0);
  EXPECT_EQ(st.judge(1'000'000), flight::Verdict::kNone);  // not derived yet
  // A steady ~1 ms distribution; refreshes land at kMinWindow and every
  // kRefreshEvery observations after.
  for (int i = 0; i < 600; ++i) st.observe(1000 + i % 5);
  const int64_t adaptive = st.adaptive_threshold_us();
  ASSERT_GT(adaptive, 1000);  // ~1.5x the windowed p99
  EXPECT_LT(adaptive, 3000);
  EXPECT_EQ(st.judge(adaptive + 1000), flight::Verdict::kAdaptive);
  EXPECT_EQ(st.judge(1000), flight::Verdict::kNone);  // inside the window
  flight::set_absolute_threshold_us(100'000);
}

TEST(Flight, ArmedCooldownPromotesAboveTheWindowedP50AndJournals) {
  flight::set_absolute_threshold_us(0);
  flight::ModelState* st = flight::model_state("flight-armed-unit");
  ASSERT_NE(st, nullptr);
  st->reset_for_test();
  for (int i = 0; i < 600; ++i) st->observe(1000);
  // p50 floor ~= 1001, adaptive ~= 1501: a 1.2 ms reply is interesting only
  // while armed.
  ASSERT_GT(st->armed_floor_us(), 0);
  ASSERT_LT(st->armed_floor_us(), 1200);
  ASSERT_GT(st->adaptive_threshold_us(), 1200);
  EXPECT_FALSE(st->armed());
  EXPECT_EQ(st->judge(1200), flight::Verdict::kNone);

  const uint64_t seq_before = Journal::global().recorded();
  flight::arm("flight-armed-unit", std::chrono::milliseconds(10'000));
  EXPECT_TRUE(st->armed());
  EXPECT_EQ(st->judge(1200), flight::Verdict::kArmed);
  EXPECT_EQ(st->judge(900), flight::Verdict::kNone);  // below the floor
  bool journaled = false;
  for (const Event& e : Journal::global().events(EventKind::kFlight)) {
    if (e.seq >= seq_before && e.scope == "flight-armed-unit" &&
        e.detail.find("armed") != std::string::npos) {
      journaled = true;
    }
  }
  EXPECT_TRUE(journaled);

  st->arm(std::chrono::milliseconds(0));  // expire the cooldown
  EXPECT_FALSE(st->armed());
  EXPECT_EQ(st->judge(1200), flight::Verdict::kNone);
  flight::set_absolute_threshold_us(100'000);
}

TEST(Flight, ShedRequestsPromoteWithAQueueWaitSpan) {
  flight::reset_for_test();
  flight::set_flight_enabled(true);
  serve::CompiledModel compiled(make_scc_model(47), Shape{3, kImage, kImage},
                                serve::CompileOptions{.max_batch = 4});
  shard::DeadlineBatcher batcher(compiled, {.max_batch = 4,
                                            .manual_drain = true,
                                            .metric_model = "flight-shed"});
  Rng rng(17);
  auto doomed = batcher.submit(
      random_uniform(make_nchw(1, 3, kImage, kImage), rng),
      {.deadline =
           std::chrono::steady_clock::now() + std::chrono::milliseconds(1)});
  auto fine =
      batcher.submit(random_uniform(make_nchw(1, 3, kImage, kImage), rng));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(batcher.drain_one(), 1u);
  EXPECT_THROW(doomed.get(), serve::DeadlineExceeded);
  (void)fine.get();
  batcher.stop();

  flight::ModelState* st = flight::model_state("flight-shed");
  ASSERT_NE(st, nullptr);
  bool shed_capture = false;
  for (const flight::Capture& cap : st->outliers()) {
    if (cap.verdict != flight::Verdict::kShed) continue;
    shed_capture = true;
    ASSERT_FALSE(cap.spans.empty());
    EXPECT_STREQ(cap.spans.front().name, "queue_wait");
    EXPECT_GE(cap.latency_us, 0);
    EXPECT_GE(cap.trace_id, flight::kFlightIdBase);
  }
  EXPECT_TRUE(shed_capture);
  const std::string json = flight::outliers_json();
  EXPECT_NE(json.find("\"verdict\":\"shed\""), std::string::npos);
}

TEST(Flight, RetainedRingIsBounded) {
  flight::reset_for_test();
  flight::ModelState* st = flight::model_state("flight-bound");
  for (size_t i = 0; i < flight::kRetainedCap + 50; ++i) {
    flight::Capture cap;
    cap.latency_us = static_cast<int64_t>(i);
    cap.verdict = flight::Verdict::kAbsolute;
    (void)flight::promote(st, std::move(cap));
  }
  const std::vector<flight::Capture> ring = flight::retained();
  EXPECT_EQ(ring.size(), flight::kRetainedCap);
  // Oldest-first ring: the front is the oldest survivor, the back is newest.
  EXPECT_EQ(ring.front().latency_us, 50);
  EXPECT_EQ(ring.back().latency_us,
            static_cast<int64_t>(flight::kRetainedCap) + 49);
  // The top-K table is bounded too, worst first.
  const std::vector<flight::Capture> outliers = st->outliers();
  EXPECT_EQ(outliers.size(), flight::ModelState::kTopK);
  EXPECT_EQ(outliers.front().latency_us,
            static_cast<int64_t>(flight::kRetainedCap) + 49);
  flight::reset_for_test();
}

// ---- native histogram buckets + exemplars ----------------------------------

TEST(Registry, NativeBucketExpositionIsCumulativeAndOptIn) {
  Registry& reg = Registry::global();
  Histogram h = reg.histogram("dsx_test_native_us", {}, "bucket test");
  h.record(2);
  h.record(2);
  h.record(50);
  h.record(5000);

  // Default exposition: unchanged summary style, no bucket series.
  const std::string summary = reg.prometheus_text();
  EXPECT_NE(summary.find("# TYPE dsx_test_native_us summary"),
            std::string::npos);
  EXPECT_EQ(summary.find("dsx_test_native_us_bucket"), std::string::npos);

  Registry::Exposition expo;
  expo.native_histogram_buckets = true;
  const std::string text = reg.prometheus_text(expo);
  EXPECT_NE(text.find("# TYPE dsx_test_native_us histogram"),
            std::string::npos);
  EXPECT_TRUE(exposition_well_formed(text));

  // Parse this metric's bucket series: cumulative counts must be
  // non-decreasing with increasing le, and +Inf must equal _count.
  std::istringstream in(text);
  std::string line;
  double last_cum = 0.0;
  double last_le = -1.0;
  double inf_value = -1.0;
  int bucket_lines = 0;
  while (std::getline(in, line)) {
    if (line.rfind("dsx_test_native_us_bucket{le=\"", 0) != 0) continue;
    const size_t q1 = line.find('"');
    const size_t q2 = line.find('"', q1 + 1);
    const std::string le = line.substr(q1 + 1, q2 - q1 - 1);
    const double value = std::strtod(line.c_str() + line.rfind(' ') + 1,
                                     nullptr);
    ++bucket_lines;
    EXPECT_GE(value, last_cum) << line;
    last_cum = value;
    if (le == "+Inf") {
      inf_value = value;
    } else {
      const double le_num = std::strtod(le.c_str(), nullptr);
      EXPECT_GT(le_num, last_le) << line;  // ascending bucket edges
      last_le = le_num;
    }
  }
  EXPECT_GE(bucket_lines, 3);  // 2, 50, 5000 land in distinct buckets + Inf
  EXPECT_EQ(inf_value, 4.0);   // le="+Inf" == _count
}

TEST(Registry, ExemplarsKeepPerRangeSlotsAndExport) {
  Registry& reg = Registry::global();
  Histogram h = reg.histogram("dsx_test_exemplar_us", {}, "exemplar test");
  // An outlier exemplar, then a flood of fast-path exemplars in a LOW range:
  // the ranges map to different slots, so the flood cannot evict it.
  h.record(100'000);
  h.record_exemplar(100'000, 99);
  for (int i = 0; i < 1000; ++i) {
    h.record(3);
    h.record_exemplar(3, 7);
  }
  const std::vector<Exemplar> exemplars = h.exemplars();
  bool outlier_survived = false;
  bool flood_present = false;
  for (const Exemplar& e : exemplars) {
    if (e.trace_id == 99 && e.value == 100'000.0) outlier_survived = true;
    if (e.trace_id == 7) flood_present = true;
  }
  EXPECT_TRUE(outlier_survived);
  EXPECT_TRUE(flood_present);

  // OpenMetrics syntax on the bucket the value falls in. Exemplars only
  // appear in the OpenMetrics exposition - the classic 0.0.4 parser rejects
  // them - so the opt-in is exemplars AND openmetrics.
  Registry::Exposition expo;
  expo.native_histogram_buckets = true;
  expo.exemplars = true;
  expo.openmetrics = true;
  const std::string text = reg.prometheus_text(expo);
  EXPECT_TRUE(exposition_well_formed(text));
  EXPECT_NE(text.find("# {trace_id=\"99\"} 100000"), std::string::npos);
  // OpenMetrics terminator, and no bare quantile samples inside a
  // histogram-typed family (strict OM allows only _bucket/_count/_sum).
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
  EXPECT_EQ(text.find("dsx_test_exemplar_us{quantile"), std::string::npos);

  // exemplars without openmetrics stays classic-safe: no exemplar syntax.
  expo.openmetrics = false;
  const std::string classic = reg.prometheus_text(expo);
  EXPECT_EQ(classic.find("trace_id"), std::string::npos);
  EXPECT_EQ(classic.find("# EOF"), std::string::npos);
  // Classic keeps the summary-style quantile series alongside the buckets.
  EXPECT_NE(classic.find("dsx_test_exemplar_us{quantile=\"0.99\"}"),
            std::string::npos);

  // Without the exemplars opt-in the same buckets export clean.
  expo.exemplars = false;
  EXPECT_EQ(reg.prometheus_text(expo).find("trace_id"), std::string::npos);

  // And the JSON snapshot carries them structurally.
  const std::string json = reg.json_snapshot();
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"exemplars\":["), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":99"), std::string::npos);
}

// Runs under the TSan tier alongside Intern.* (see ci.sh --sanitize): the
// slot payloads are relaxed atomics ordered by the seqlock fences, so
// concurrent writers/readers must be data-race-free AND never surface a
// torn (value, trace_id) pair.
TEST(ExemplarSeqlock, ConcurrentWritersAndReadersStayCoherent) {
  Registry& reg = Registry::global();
  Histogram h = reg.histogram("dsx_test_exemplar_race_us", {});
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&h, &stop, w] {
      int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Alternate a low-range and a high-range value (distinct slots, the
        // high one contended by every writer). trace_id mirrors the value,
        // so any torn pair is detectable by the readers.
        const int64_t value = (i++ % 2 == 0) ? 3 : 100'000 + w;
        h.record_exemplar(value, static_cast<uint64_t>(value));
      }
    });
  }
  std::vector<std::thread> readers;
  readers.reserve(2);
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&h, &stop, &torn] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const Exemplar& e : h.exemplars()) {
          if (static_cast<uint64_t>(e.value) != e.trace_id) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);
}

// ---- trace stats as registry series ----------------------------------------

TEST(Trace, PublishTraceStatsExportsRegistrySeries) {
  clear_trace();
  for (int i = 0; i < 10; ++i) {
    TraceEvent ev;
    ev.name = "publish-test";
    ev.tid = 1;
    record_event(ev);
  }
  publish_trace_stats();
  const TraceStats s = trace_stats();
  Registry& reg = Registry::global();
  EXPECT_EQ(reg.gauge("dsx_obs_trace_retained", {}).value(), s.retained);
  EXPECT_EQ(reg.gauge("dsx_obs_trace_threads", {}).value(), s.threads);
  const int64_t dropped_before =
      reg.counter("dsx_obs_trace_dropped_total", {}).value();
  EXPECT_GE(dropped_before, 0);
  // Overflow one ring; the published counter advances by the delta and
  // stays monotone across a clear_trace() (which resets the raw counts).
  constexpr int kOverflow = 20000;  // > the 16384-slot ring
  for (int i = 0; i < kOverflow; ++i) {
    TraceEvent ev;
    ev.name = "publish-overflow";
    ev.tid = 2;
    record_event(ev);
  }
  publish_trace_stats();
  const int64_t dropped_after =
      reg.counter("dsx_obs_trace_dropped_total", {}).value();
  EXPECT_GT(dropped_after, dropped_before);
  clear_trace();
  publish_trace_stats();
  EXPECT_GE(reg.counter("dsx_obs_trace_dropped_total", {}).value(),
            dropped_after);  // monotone despite the reset underneath
  EXPECT_EQ(reg.gauge("dsx_obs_trace_retained", {}).value(), 0);
}

// ---- journal JSON ----------------------------------------------------------

TEST(Journal, ToJsonIsStructuredAndEscaped) {
  Journal::global().record(EventKind::kFlight, "json-scope",
                           "detail with \"quotes\"\nand a newline");
  const std::string json = Journal::global().to_json();
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"kind\":\"flight\""), std::string::npos);
  EXPECT_NE(json.find("\"scope\":\"json-scope\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":"), std::string::npos);
  EXPECT_NE(json.find("\"wall\":\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":"), std::string::npos);
  EXPECT_NE(json.find("\"capacity\":"), std::string::npos);
  // ISO-8601 UTC with milliseconds: ...T..:..:...mmmZ".
  EXPECT_NE(json.find("Z\""), std::string::npos);
}

// ---- intern() under concurrency (suite name = the TSan filter) -------------

TEST(Intern, DedupReturnsTheSamePointer) {
  const char* a = intern("intern-dedup-probe");
  const char* b = intern("intern-dedup-probe");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "intern-dedup-probe");
}

TEST(Intern, PointersStayValidAcrossPoolGrowth) {
  const char* first = intern("intern-growth-anchor");
  std::vector<const char*> ptrs;
  ptrs.reserve(4000);
  for (int i = 0; i < 4000; ++i) {
    ptrs.push_back(intern("intern-growth-" + std::to_string(i)));
  }
  // The pool rehashed many times; node-based storage must keep every
  // previously returned pointer valid and deduplicated.
  EXPECT_EQ(intern("intern-growth-anchor"), first);
  EXPECT_STREQ(first, "intern-growth-anchor");
  for (int i = 0; i < 4000; i += 397) {
    const std::string expect = "intern-growth-" + std::to_string(i);
    EXPECT_STREQ(ptrs[static_cast<size_t>(i)], expect.c_str());
    EXPECT_EQ(intern(expect), ptrs[static_cast<size_t>(i)]);
  }
}

TEST(Intern, ConcurrentHammerDedupsToStablePointers) {
  constexpr int kThreads = 8;
  constexpr int kStrings = 128;
  constexpr int kRounds = 40;
  std::vector<std::vector<const char*>> seen(
      kThreads, std::vector<const char*>(kStrings, nullptr));
  std::atomic<int> start_gate{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen, &start_gate] {
      start_gate.fetch_add(1, std::memory_order_relaxed);
      while (start_gate.load(std::memory_order_relaxed) < kThreads) {
      }
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kStrings; ++i) {
          const char* p =
              intern("intern-hammer-" + std::to_string(i));
          if (seen[static_cast<size_t>(t)][static_cast<size_t>(i)] ==
              nullptr) {
            seen[static_cast<size_t>(t)][static_cast<size_t>(i)] = p;
          } else {
            // Same string -> same pointer, every round, every thread.
            ASSERT_EQ(
                seen[static_cast<size_t>(t)][static_cast<size_t>(i)], p);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kStrings; ++i) {
    const std::string expect = "intern-hammer-" + std::to_string(i);
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[static_cast<size_t>(t)][static_cast<size_t>(i)],
                seen[0][static_cast<size_t>(i)]);
    }
    EXPECT_STREQ(seen[0][static_cast<size_t>(i)], expect.c_str());
  }
}

}  // namespace

// ---- obs::prof (continuous profiling + resource utilization) ---------------

// Sampling-profiler tests arm a real SIGPROF timer; under ASan/TSan the
// signal interacts with the sanitizer runtime in ways the production
// overhead contract does not care about, so they skip there (the ci.sh http
// smoke and the bench gate cover sampling on the plain build).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DSX_PROF_TESTS_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#ifndef DSX_PROF_TESTS_SANITIZED
#define DSX_PROF_TESTS_SANITIZED 1
#endif
#endif
#endif
#ifndef DSX_PROF_TESTS_SANITIZED
#define DSX_PROF_TESTS_SANITIZED 0
#endif

/// External linkage + noinline + noclone, so dladdr can resolve the frame in
/// captured stacks (anonymous-namespace functions never symbolize - that is
/// the negative case, not the one under test; and without noclone, GCC's
/// constant-propagation pass redirects constant-argument calls to a LOCAL
/// .constprop clone absent from the dynamic symbol table).
__attribute__((noinline, noclone)) double dsx_prof_test_burn(int64_t iters) {
  volatile double x = 1.0000001;
  for (int64_t i = 0; i < iters; ++i) x = x * 1.0000001 + 1e-9;
  return x;
}

namespace {

/// RAII start/stop so a failing assertion never leaks a live SIGPROF timer
/// into later tests.
struct ProfScope {
  bool ok;
  explicit ProfScope(int hz = 0) : ok(prof::start(hz)) {}
  ~ProfScope() { prof::stop(); }
};

TEST(LogHistogram, BucketLeIsInclusiveForEverySampleValue) {
  // bucket_le must be the largest value its bucket holds: >= every member
  // value, and still mapping into the same bucket (bucket_upper, the
  // half-open edge, maps into the NEXT bucket for b >= 8).
  for (const int64_t v : {0LL, 5LL, 7LL, 8LL, 16LL, 17LL, 18LL, 100000LL}) {
    const int b = device::LogHistogram::bucket_of(v);
    const double le = device::LogHistogram::bucket_le(b);
    EXPECT_GE(le, static_cast<double>(v)) << "value " << v;
    EXPECT_EQ(device::LogHistogram::bucket_of(static_cast<int64_t>(le)), b)
        << "value " << v;
    if (b >= 8) {
      EXPECT_NE(device::LogHistogram::bucket_of(static_cast<int64_t>(
                    device::LogHistogram::bucket_upper(b))),
                b)
          << "half-open edge must belong to the next bucket, value " << v;
    }
  }
}

TEST(LogHistogram, ExpositionCountsValueLandingExactlyOnABucketEdge) {
  // Regression for the documented bucket_upper-vs-`le` mismatch: 18 lands
  // exactly on bucket 32's exclusive edge ([16,18) -> le="17") and is filed
  // into bucket 33 ([18,20) -> le="19"). The old exposition labeled bucket
  // 32 le="18", silently excluding an 18-valued sample from its own `le`.
  Histogram h = Registry::global().histogram("dsx_test_edge_hist", {},
                                             "edge regression");
  h.record(16);
  h.record(18);
  Registry::Exposition expo;
  expo.native_histogram_buckets = true;
  const std::string text = Registry::global().prometheus_text(expo);
  EXPECT_NE(text.find("dsx_test_edge_hist_bucket{le=\"17\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dsx_test_edge_hist_bucket{le=\"19\"} 2"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("dsx_test_edge_hist_bucket{le=\"18\"}"),
            std::string::npos)
      << "half-open edge leaked into the exposition:\n" << text;
}

TEST(Flight, PromotionCountersCountByVerdict) {
  const auto count = [](const char* verdict) {
    return Registry::global().sum_counter("dsx_obs_flight_promoted_total",
                                          {{"verdict", verdict}});
  };
  const int64_t absolute0 = count("absolute");
  const int64_t shed0 = count("shed");
  flight::Capture cap;
  cap.latency_us = 123456;
  cap.threshold_us = 100000;
  cap.verdict = flight::Verdict::kAbsolute;
  flight::promote(nullptr, cap);
  flight::Capture cap2;
  cap2.latency_us = 1;
  cap2.verdict = flight::Verdict::kShed;
  flight::promote(nullptr, cap2);
  flight::promote(nullptr, cap2);
  EXPECT_EQ(count("absolute"), absolute0 + 1);
  EXPECT_EQ(count("shed"), shed0 + 2);
}

TEST(Prof, StartStopGatesSamplingAndJournals) {
  if (DSX_PROF_TESTS_SANITIZED) GTEST_SKIP() << "sampling under sanitizers";
  ASSERT_FALSE(prof::prof_enabled());
  const int64_t captured0 = prof::profile_stats().captured;
  {
    ProfScope prof_on(101);
    ASSERT_TRUE(prof_on.ok) << "POSIX profiling timer unavailable";
    EXPECT_TRUE(prof::prof_enabled());
    EXPECT_EQ(prof::sampling_hz(), 101);
    EXPECT_TRUE(device::pool_accounting_enabled());
    // ITIMER_PROF counts CPU time - burn some so samples actually land.
    (void)dsx_prof_test_burn(60'000'000);
    EXPECT_GT(prof::profile_stats().captured, captured0);
  }
  EXPECT_FALSE(prof::prof_enabled());
  EXPECT_FALSE(device::pool_accounting_enabled());
  bool started = false;
  bool stopped = false;
  for (const Event& ev : Journal::global().events(EventKind::kProfile)) {
    started = started || ev.detail.find("started at 101 Hz") != std::string::npos;
    stopped = stopped || ev.detail.find("stopped") != std::string::npos;
  }
  EXPECT_TRUE(started);
  EXPECT_TRUE(stopped);
}

TEST(Prof, FoldedStacksSymbolizeTheBurnFrame) {
  if (DSX_PROF_TESTS_SANITIZED) GTEST_SKIP() << "sampling under sanitizers";
  ProfScope prof_on;
  ASSERT_TRUE(prof_on.ok) << "POSIX profiling timer unavailable";
  prof::clear_samples();
  double sink = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  // Burn until enough CPU samples accumulated (bounded: CI machines stall).
  while (prof::profile_stats().retained < 10 &&
         std::chrono::steady_clock::now() < deadline) {
    sink += dsx_prof_test_burn(20'000'000);
  }
  ASSERT_GT(prof::profile_stats().retained, 0) << "no SIGPROF samples landed";
  const std::string folded = prof::folded_stacks();
  ASSERT_FALSE(folded.empty());
  // Folded format: "frame;frame;... count" lines.
  EXPECT_NE(folded.find(' '), std::string::npos);
  EXPECT_NE(folded.find("dsx_prof_test_burn"), std::string::npos)
      << "burn frame did not symbolize:\n" << folded.substr(0, 2000);
  EXPECT_GT(prof::symbolized_fraction(), 0.5);
  const std::string json = prof::profile_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("dsx_prof_test_burn"), std::string::npos);
  (void)sink;
}

TEST(Prof, EndpointServesFoldedStacksOverHttp) {
  if (DSX_PROF_TESTS_SANITIZED) GTEST_SKIP() << "sampling under sanitizers";
  Exporter exporter;
  exporter.start();
  const int port = exporter.port();
  ASSERT_GT(port, 0);
  // Keep a core busy while the 1-second window samples.
  std::atomic<bool> stop_burn{false};
  std::thread burner([&] {
    double sink = 0;
    while (!stop_burn.load(std::memory_order_relaxed)) {
      sink += dsx_prof_test_burn(5'000'000);
    }
    (void)sink;
  });
  const HttpResponse folded =
      http_get("127.0.0.1", port, "/profile?seconds=1",
               std::chrono::milliseconds(15000));
  const HttpResponse json =
      http_get("127.0.0.1", port, "/profile.json?seconds=1",
               std::chrono::milliseconds(15000));
  stop_burn.store(true, std::memory_order_relaxed);
  burner.join();
  exporter.stop();
  EXPECT_EQ(folded.status, 200);
  EXPECT_FALSE(folded.body.empty());
  EXPECT_NE(folded.body.find("dsx_prof_test_burn"), std::string::npos)
      << folded.body.substr(0, 2000);
  EXPECT_EQ(json.status, 200);
  EXPECT_TRUE(json_well_formed(json.body)) << json.body;
  // The windowed endpoint auto-starts and auto-stops the profiler.
  EXPECT_FALSE(prof::prof_enabled());
}

TEST(Prof, KernelTimeAttributesToTheBakedWinner) {
  if (DSX_PROF_TESTS_SANITIZED) GTEST_SKIP() << "sampling under sanitizers";
  serve::CompileOptions copts;
  copts.max_batch = 2;
  copts.tuning = tune::Mode::kCached;  // resolves + bakes every call site
  serve::CompiledModel model(make_scc_model(0x9e1u), Shape({3, kImage, kImage}),
                             copts);
  Rng rng(0x77u);
  const Tensor batch = random_uniform(model.input_shape(2), rng);
  const auto total = [] {
    return Registry::global().sum_counter("dsx_tune_kernel_ns_total", {});
  };
  // Profiler off: the dispatch fast path must not attribute anything.
  const int64_t before_off = total();
  (void)model.run(batch);
  EXPECT_EQ(total(), before_off);
  {
    ProfScope prof_on;
    ASSERT_TRUE(prof_on.ok) << "POSIX profiling timer unavailable";
    (void)model.run(batch);
  }
  EXPECT_GT(total(), before_off)
      << "baked-winner dispatch did not attribute kernel time";
}

TEST(Prof, WorkspaceGaugesTrackArenaOccupancy) {
  serve::CompiledModel model(make_scc_model(0x5a2u), Shape({3, kImage, kImage}),
                             {.max_batch = 2});
  model.set_metric_scope("wsmodel");
  Rng rng(0x31u);
  (void)model.run(random_uniform(model.input_shape(2), rng));
  Registry& reg = Registry::global();
  const obs::Labels labels{{"model", "wsmodel"}};
  const int64_t used =
      reg.gauge("dsx_serve_workspace_used_floats", labels).value();
  const int64_t peak =
      reg.gauge("dsx_serve_workspace_peak_floats", labels).value();
  const int64_t cap =
      reg.gauge("dsx_serve_workspace_capacity_floats", labels).value();
  EXPECT_GT(used, 0);
  EXPECT_GE(peak, used);
  EXPECT_GE(cap, peak);
  EXPECT_EQ(peak, model.report().workspace_floats);
}

TEST(Prof, BatchFormationRecordsQueueDepthAndOccupancy) {
  serve::InferenceServer server;
  auto model = std::make_unique<serve::CompiledModel>(
      make_scc_model(0x41u), Shape({3, kImage, kImage}),
      serve::CompileOptions{.max_batch = 4});
  serve::BatcherOptions bopts;
  bopts.max_batch = 4;
  server.register_model("profq", std::move(model), bopts);
  Rng rng(0x99u);
  const Tensor image = random_uniform(Shape({3, kImage, kImage}), rng);
  for (int i = 0; i < 8; ++i) (void)server.infer("profq", image);
  server.stop();
  Registry& reg = Registry::global();
  const obs::Labels labels{{"model", "profq"}};
  EXPECT_GT(
      reg.histogram("dsx_serve_batch_occupancy_pct", labels).snapshot().count,
      0);
  EXPECT_GT(
      reg.histogram("dsx_serve_queue_depth_at_batch", labels).snapshot().count,
      0);
  // Occupancy is a percentage of max_batch - never above 100.
  EXPECT_LE(
      reg.histogram("dsx_serve_batch_occupancy_pct", labels).snapshot().max,
      100);
}

TEST(Prof, PublishResourceStatsExportsNamedPools) {
  device::ThreadPool pool(2, "prof-test-pool");
  device::set_pool_accounting(true);
  pool.run_chunks(1 << 18, [](int64_t b, int64_t e) {
    volatile double x = 0;
    for (int64_t i = b; i < e; ++i) x = x + static_cast<double>(i);
  });
  device::set_pool_accounting(false);
  prof::publish_resource_stats();
  Registry& reg = Registry::global();
  EXPECT_GT(reg.sum_counter("dsx_device_pool_busy_ns_total",
                            {{"pool", "prof-test-pool"}}),
            0);
  // The global pool registers under "global" on first use.
  (void)device::ThreadPool::global();
  prof::publish_resource_stats();
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("dsx_device_pool_busy_ns_total{pool=\"global\"}"),
            std::string::npos);
  EXPECT_NE(text.find("dsx_device_pool_utilization_permille"),
            std::string::npos);
}

}  // namespace
}  // namespace dsx::obs
