// Tests for dsx::obs (src/obs): the metrics registry (handles, exposition,
// type safety, multi-writer exactness), histogram quantile accuracy against
// exact sorted percentiles, the per-request trace pipeline end to end
// through an InferenceServer (span nesting + stats consistency + sampling),
// and the bounded control-plane journal. Also the LatencyStats empty-
// snapshot regression (min must be 0, not INT64_MAX garbage).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "device/atomic_stats.hpp"
#include "nn/containers.hpp"
#include "nn/layers_basic.hpp"
#include "nn/layers_conv.hpp"
#include "obs/obs.hpp"
#include "serve/compiled_model.hpp"
#include "serve/server.hpp"
#include "tensor/random.hpp"

namespace dsx::obs {
namespace {

constexpr int64_t kImage = 8;
constexpr int64_t kClasses = 10;

/// Small conv -> DW -> SCC classifier (the test_serve architecture).
std::unique_ptr<nn::Sequential> make_scc_model(uint64_t seed) {
  Rng rng(seed);
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Conv2d>(3, 16, 3, 1, 1, 1, rng);
  seq->emplace<nn::BatchNorm2d>(16);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::DepthwiseConv2d>(16, 3, 1, 1, rng);
  seq->emplace<nn::BatchNorm2d>(16);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::SCCConv>(
      scc::SCCConfig{.in_channels = 16, .out_channels = 32, .groups = 2,
                     .overlap = 0.5, .stride = 1},
      rng);
  seq->emplace<nn::BatchNorm2d>(32);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::GlobalAvgPool>();
  seq->emplace<nn::Flatten>();
  seq->emplace<nn::Linear>(32, kClasses, rng);
  return seq;
}

/// Structural JSON validation: balanced braces/brackets outside strings,
/// escape-aware, no trailing garbage. Enough to catch every malformed
/// emission mode of a generator (unbalanced nesting, unterminated strings).
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_str = false;
  bool esc = false;
  bool saw_value = false;
  for (const char c : s) {
    if (in_str) {
      if (esc) {
        esc = false;
      } else if (c == '\\') {
        esc = true;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_str = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        saw_value = true;
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return saw_value && !in_str && stack.empty();
}

/// Exact percentile of a sample set: the value at rank ceil(q * n).
int64_t exact_percentile(std::vector<int64_t> v, double q) {
  std::sort(v.begin(), v.end());
  const auto n = static_cast<double>(v.size());
  size_t rank = static_cast<size_t>(std::ceil(q * n));
  if (rank > 0) --rank;
  return v[std::min(rank, v.size() - 1)];
}

// ---- LatencyStats regression (the empty-snapshot garbage fix) --------------

TEST(LatencyStats, EmptySnapshotIsAllZeros) {
  device::LatencyStats stats;
  const auto s = stats.snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.min_ms, 0.0);  // regression: was INT64_MAX / 1e6
  EXPECT_EQ(s.max_ms, 0.0);
  EXPECT_EQ(s.mean_ms, 0.0);
  EXPECT_EQ(s.p50_ms, 0.0);
  EXPECT_EQ(s.p99_ms, 0.0);
}

TEST(LatencyStats, EmptyAfterResetToo) {
  device::LatencyStats stats;
  stats.record_ns(5'000'000);
  stats.reset();
  const auto s = stats.snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.min_ms, 0.0);
  EXPECT_EQ(s.max_ms, 0.0);
}

// ---- LogHistogram quantile accuracy ----------------------------------------

TEST(LogHistogram, SmallValuesAreExact) {
  device::LogHistogram h;
  for (int i = 0; i < 100; ++i) h.record(5);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100);
  EXPECT_EQ(s.min, 5.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.p50, 5.0);
  EXPECT_EQ(s.p99, 5.0);
  EXPECT_EQ(s.mean, 5.0);
}

TEST(LogHistogram, QuantilesWithinRelativeErrorUniform) {
  device::LogHistogram h;
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int64_t> dist(1000, 100000);
  std::vector<int64_t> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const int64_t v = dist(rng);
    values.push_back(v);
    h.record(v);
  }
  const auto s = h.snapshot();
  // Documented bound plus a little rank slack on a 20k-sample distribution.
  const double tol = device::LogHistogram::kQuantileRelativeError + 0.005;
  const auto p50 = static_cast<double>(exact_percentile(values, 0.50));
  const auto p99 = static_cast<double>(exact_percentile(values, 0.99));
  EXPECT_NEAR(s.p50, p50, tol * p50);
  EXPECT_NEAR(s.p99, p99, tol * p99);
  EXPECT_LE(s.p50, s.max);
  EXPECT_LE(s.p99, s.max);
  EXPECT_GE(s.p50, s.min);
}

TEST(LogHistogram, QuantilesWithinRelativeErrorLogNormal) {
  device::LogHistogram h;
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(8.0, 1.2);  // heavy tail
  std::vector<int64_t> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const auto v = static_cast<int64_t>(dist(rng)) + 1;
    values.push_back(v);
    h.record(v);
  }
  const auto s = h.snapshot();
  const double tol = device::LogHistogram::kQuantileRelativeError + 0.01;
  const auto p50 = static_cast<double>(exact_percentile(values, 0.50));
  const auto p99 = static_cast<double>(exact_percentile(values, 0.99));
  EXPECT_NEAR(s.p50, p50, tol * p50);
  EXPECT_NEAR(s.p99, p99, tol * p99);
}

TEST(LogHistogram, PercentilesClampedToObservedRange) {
  device::LogHistogram h;
  h.record(1000);  // single sample: every percentile must equal it exactly
  const auto s = h.snapshot();
  EXPECT_EQ(s.p50, 1000.0);
  EXPECT_EQ(s.p99, 1000.0);
}

// ---- metrics registry ------------------------------------------------------

TEST(Registry, CounterGaugeHistogramBasics) {
  Registry reg;
  Counter c = reg.counter("dsx_test_total", {{"model", "m"}}, "help text");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5);

  Gauge g = reg.gauge("dsx_test_depth");
  g.set(7);
  g.add(-2);
  EXPECT_EQ(g.value(), 5);

  Histogram h = reg.histogram("dsx_test_us");
  h.record(100);
  h.record(300);
  EXPECT_EQ(h.snapshot().count, 2);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(Registry, DetachedHandlesAreNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  EXPECT_FALSE(c.attached());
  c.inc(100);
  g.set(9);
  h.record(50);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.snapshot().count, 0);
}

TEST(Registry, ReRegistrationSharesTheCellAndLabelOrderIsCanonical) {
  Registry reg;
  Counter a = reg.counter("dsx_test_total", {{"a", "1"}, {"b", "2"}});
  Counter b = reg.counter("dsx_test_total", {{"b", "2"}, {"a", "1"}});
  a.inc();
  b.inc();
  EXPECT_EQ(a.value(), 2);  // same underlying cell
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, TypeClashThrows) {
  Registry reg;
  (void)reg.counter("dsx_test_series");
  EXPECT_THROW((void)reg.gauge("dsx_test_series"), dsx::Error);
  EXPECT_THROW((void)reg.histogram("dsx_test_series"), dsx::Error);
}

TEST(Registry, PrometheusExpositionShape) {
  Registry reg;
  reg.counter("dsx_test_requests_total", {{"model", "m\"x"}}, "Requests.")
      .inc(3);
  reg.gauge("dsx_test_depth", {}, "Depth.").set(4);
  auto h = reg.histogram("dsx_test_latency_us", {{"model", "mx"}});
  for (int i = 1; i <= 100; ++i) h.record(i);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP dsx_test_requests_total Requests."),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dsx_test_requests_total counter"),
            std::string::npos);
  // Label values are escaped.
  EXPECT_NE(text.find("dsx_test_requests_total{model=\"m\\\"x\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("dsx_test_depth 4"), std::string::npos);
  // Histograms export summary-style quantiles plus _sum and _count.
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("dsx_test_latency_us_count{model=\"mx\"} 100"),
            std::string::npos);

  // No duplicate (name, labels) sample lines.
  std::map<std::string, int> seen;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_EQ(++seen[line.substr(0, sp)], 1) << line;
  }

  EXPECT_TRUE(json_well_formed(reg.json_snapshot()));
}

TEST(Registry, MultiWriterStressIsExact) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      // Every thread re-registers its handles - exercises the registration
      // path under contention as well as the write path.
      Counter c = reg.counter("dsx_stress_total", {{"k", "v"}});
      Histogram h = reg.histogram("dsx_stress_us");
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record((t * kPerThread + i) % 1000 + 1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter("dsx_stress_total", {{"k", "v"}}).value(),
            kThreads * kPerThread);
  EXPECT_EQ(reg.histogram("dsx_stress_us").snapshot().count,
            kThreads * kPerThread);
}

// ---- tracing ---------------------------------------------------------------

TEST(Trace, SamplingOffDrawsNoIds) {
  set_trace_sampling(0);
  EXPECT_FALSE(trace_enabled());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_trace_id(), 0u);
}

TEST(Trace, OneInNSamplingIsExact) {
  set_trace_sampling(4);
  int sampled = 0;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = sample_trace_id();
    if (id != 0) {
      ++sampled;
      ids.push_back(id);
    }
  }
  set_trace_sampling(0);
  // The sampler admits exactly one of every N consecutive draws, whatever
  // the counter phase, and sampled ids are unique.
  EXPECT_EQ(sampled, 250);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(Trace, DisabledTracingRecordsNothingFromServing) {
  clear_trace();
  set_trace_sampling(0);
  const int64_t before = trace_stats().recorded;

  auto model = make_scc_model(31);
  serve::InferenceServer server;
  server.register_model(
      "obs-off",
      std::make_unique<serve::CompiledModel>(
          std::move(model), Shape{3, kImage, kImage},
          serve::CompileOptions{.max_batch = 4}),
      {.max_batch = 4});
  Rng rng(5);
  for (int i = 0; i < 8; ++i) {
    (void)server.infer("obs-off",
                       random_uniform(make_nchw(1, 3, kImage, kImage), rng));
  }
  server.stop();
  EXPECT_EQ(trace_stats().recorded, before);
}

TEST(Trace, EndToEndServerSpansNestAndMatchStats) {
  clear_trace();
  set_trace_sampling(1);  // trace every request

  auto model = make_scc_model(17);
  serve::InferenceServer server;
  server.register_model(
      "obs-e2e",
      std::make_unique<serve::CompiledModel>(
          std::move(model), Shape{3, kImage, kImage},
          serve::CompileOptions{.max_batch = 4}),
      {.max_batch = 4, .max_delay = std::chrono::microseconds(500)});

  constexpr int kRequests = 12;
  Rng rng(9);
  std::vector<Tensor> images;
  for (int i = 0; i < kRequests; ++i) {
    images.push_back(random_uniform(make_nchw(1, 3, kImage, kImage), rng));
  }
  std::vector<std::future<Tensor>> inflight;
  for (const Tensor& img : images) {
    inflight.push_back(server.submit("obs-e2e", img));
  }
  for (auto& f : inflight) (void)f.get();
  const serve::ModelStats stats = server.stats("obs-e2e");
  server.stop();
  set_trace_sampling(0);

  // Group the per-request tracks.
  std::map<uint64_t, std::vector<TraceEvent>> tracks;
  for (const TraceEvent& ev : trace_snapshot()) {
    if (ev.pid == kRequestPid && ev.tid != 0) tracks[ev.tid].push_back(ev);
  }
  ASSERT_EQ(tracks.size(), static_cast<size_t>(kRequests));

  int64_t max_request_dur = 0;
  for (const auto& [tid, events] : tracks) {
    const TraceEvent* request = nullptr;
    const TraceEvent* queue_wait = nullptr;
    const TraceEvent* execute = nullptr;
    const TraceEvent* reply = nullptr;
    int layer_events = 0;
    for (const TraceEvent& ev : events) {
      const std::string name = ev.name;
      if (name == "request") request = &ev;
      if (name == "queue_wait") queue_wait = &ev;
      if (name == "batch_execute") execute = &ev;
      if (name == "reply") reply = &ev;
      if (std::string(ev.cat) == "layer") ++layer_events;
    }
    ASSERT_NE(request, nullptr);
    ASSERT_NE(queue_wait, nullptr);
    ASSERT_NE(execute, nullptr);
    ASSERT_NE(reply, nullptr);
    // The compiled plan has >= 6 steps; each traced request sees them all.
    EXPECT_GE(layer_events, 6);

    const int64_t req_end = request->start_ns + request->dur_ns;
    const auto inside_request = [&](const TraceEvent& ev) {
      EXPECT_GE(ev.start_ns, request->start_ns) << ev.name;
      EXPECT_LE(ev.start_ns + ev.dur_ns, req_end) << ev.name;
    };
    inside_request(*queue_wait);
    inside_request(*execute);
    inside_request(*reply);
    EXPECT_EQ(queue_wait->start_ns, request->start_ns);
    EXPECT_EQ(reply->start_ns + reply->dur_ns, req_end);
    // Every per-layer kernel span nests inside batch_execute.
    const int64_t exec_end = execute->start_ns + execute->dur_ns;
    for (const TraceEvent& ev : events) {
      if (std::string(ev.cat) != "layer") continue;
      EXPECT_GE(ev.start_ns, execute->start_ns);
      EXPECT_LE(ev.start_ns + ev.dur_ns, exec_end);
    }
    max_request_dur = std::max(max_request_dur, request->dur_ns);
  }

  // The request span IS the latency sample: with every request traced, the
  // longest track must equal the stats() max latency (same timestamps).
  EXPECT_NEAR(static_cast<double>(max_request_dur) / 1e6,
              stats.batcher.latency.max_ms, 1e-6);
  EXPECT_EQ(stats.batcher.requests, kRequests);

  // Export surface: well-formed Chrome trace JSON with complete events and
  // track-naming metadata.
  const std::string json = chrome_trace_json();
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"request\""), std::string::npos);

  const std::string path = "trace_test_obs.json";
  ASSERT_TRUE(export_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), json);
  std::remove(path.c_str());
  clear_trace();
}

TEST(Trace, RingIsBoundedAndCountsDrops) {
  clear_trace();
  set_trace_sampling(1);
  constexpr int kEvents = 40000;  // > the 16384-slot per-thread ring
  for (int i = 0; i < kEvents; ++i) {
    TraceEvent ev;
    ev.name = "flood";
    ev.cat = "test";
    ev.tid = 1;
    ev.start_ns = i;
    record_event(ev);
  }
  set_trace_sampling(0);
  const TraceStats ts = trace_stats();
  EXPECT_GE(ts.recorded, kEvents);
  EXPECT_LE(ts.retained, 16384 + 1);
  EXPECT_GE(ts.dropped, kEvents - 16384 - 1);
  // Retained events are the newest and come back sorted by start time.
  const auto events = trace_snapshot();
  int64_t prev = -1;
  int64_t newest = 0;
  for (const TraceEvent& ev : events) {
    if (std::string(ev.cat) != "test") continue;
    EXPECT_GE(ev.start_ns, prev);
    prev = ev.start_ns;
    newest = std::max(newest, ev.start_ns);
  }
  EXPECT_EQ(newest, kEvents - 1);
  clear_trace();
}

// ---- journal ---------------------------------------------------------------

TEST(Journal, RingIsBoundedOrderedAndFilterable) {
  Journal j(4);
  for (int i = 0; i < 10; ++i) {
    j.record(i % 2 == 0 ? EventKind::kShed : EventKind::kReject, "m",
             std::to_string(i));
  }
  EXPECT_EQ(j.recorded(), 10u);
  EXPECT_EQ(j.dropped(), 6u);
  const auto events = j.events();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  EXPECT_EQ(events.front().detail, "6");
  EXPECT_EQ(events.back().detail, "9");
  const auto sheds = j.events(EventKind::kShed);
  ASSERT_EQ(sheds.size(), 2u);
  for (const auto& e : sheds) EXPECT_EQ(e.kind, EventKind::kShed);
  EXPECT_NE(j.to_text().find("shed"), std::string::npos);
  j.clear();
  EXPECT_TRUE(j.events().empty());
}

TEST(Journal, ServerLifecycleIsJournaled) {
  Journal& j = Journal::global();
  j.clear();
  {
    serve::InferenceServer server;
    server.register_model(
        "obs-journal",
        std::make_unique<serve::CompiledModel>(
            make_scc_model(23), Shape{3, kImage, kImage},
            serve::CompileOptions{.max_batch = 2}),
        {.max_batch = 2});
    server.swap_model("obs-journal",
                      std::make_unique<serve::CompiledModel>(
                          make_scc_model(24), Shape{3, kImage, kImage},
                          serve::CompileOptions{.max_batch = 2}),
                      {.max_batch = 2});
    server.unregister_model("obs-journal");
  }
  const auto regs = j.events(EventKind::kRegister);
  const auto swaps = j.events(EventKind::kSwap);
  const auto unregs = j.events(EventKind::kUnregister);
  ASSERT_EQ(regs.size(), 1u);
  EXPECT_EQ(regs[0].scope, "obs-journal");
  ASSERT_EQ(swaps.size(), 1u);
  EXPECT_EQ(swaps[0].scope, "obs-journal");
  EXPECT_NE(swaps[0].detail.find("drained"), std::string::npos);
  ASSERT_EQ(unregs.size(), 1u);
  // Lifecycle order is exact: register < swap < unregister.
  EXPECT_LT(regs[0].seq, swaps[0].seq);
  EXPECT_LT(swaps[0].seq, unregs[0].seq);
}

// ---- server export surface -------------------------------------------------

TEST(Server, MetricsExportCoversServedModel) {
  auto model = make_scc_model(29);
  serve::InferenceServer server;
  server.register_model(
      "obs-export",
      std::make_unique<serve::CompiledModel>(
          std::move(model), Shape{3, kImage, kImage},
          serve::CompileOptions{.max_batch = 4}),
      {.max_batch = 4});
  Rng rng(3);
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    (void)server.infer("obs-export",
                       random_uniform(make_nchw(1, 3, kImage, kImage), rng));
  }
  const std::string text = server.export_metrics_text();
  server.stop();
  // The registry is cumulative across tests in this process, so assert
  // presence and a floor rather than an exact count.
  const std::string series =
      "dsx_serve_requests_total{model=\"obs-export\"} ";
  const size_t pos = text.find(series);
  ASSERT_NE(pos, std::string::npos);
  EXPECT_GE(std::atoll(text.c_str() + pos + series.size()), kRequests);
  EXPECT_NE(text.find("dsx_serve_request_latency_us"), std::string::npos);
  EXPECT_TRUE(json_well_formed(server.export_metrics_json()));
}

}  // namespace
}  // namespace dsx::obs
