// dsx::simd - the runtime-dispatched vectorized CPU backend.
//
// The load-bearing guarantees:
//   * runtime dispatch never hands out an ISA the host/build cannot execute
//     (DSX_SIMD/set_active_isa clamp to detect_isa());
//   * packed GEMM / conv matches the scalar library within the documented
//     simd::kMaxUlp bound, across odd-M/N/K and channel-tail sweeps on
//     EVERY ISA level the host offers (masked-remainder paths included);
//   * the SCC and depthwise simd kernels are BIT-identical to the scalar
//     library at scalar/SSE2 level (tune::Fidelity::kBitExact) and
//     ULP-bounded at AVX2+FMA level;
//   * the fused bias+ReLU epilogues agree with reference epilogues;
//   * the tune registry only enumerates kUlpBounded candidates under
//     fast-math, and a cached kUlpBounded record is never applied to a
//     strict session (no silent numerics change);
//   * serving compiles stay bit-identical with allow_fast_math off and
//     report per-layer fidelity when it is on.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/scc_kernels.hpp"
#include "nn/layers_basic.hpp"
#include "nn/layers_conv.hpp"
#include "ops/depthwise.hpp"
#include "ops/gemm.hpp"
#include "serve/compiled_model.hpp"
#include "simd/depthwise.hpp"
#include "simd/dispatch.hpp"
#include "simd/gemm.hpp"
#include "simd/scc.hpp"
#include "tensor/random.hpp"
#include "tune/dispatch.hpp"
#include "tune/tune.hpp"
#include "testing_utils.hpp"

namespace dsx {
namespace {

using testing::bit_identical;

/// Every ISA level this host can actually execute, scalar first.
std::vector<simd::Isa> host_levels() {
  std::vector<simd::Isa> levels;
  for (const simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kSse2, simd::Isa::kAvx2}) {
    if (simd::isa_available(isa)) levels.push_back(isa);
  }
  return levels;
}

/// True when `isa` must be bit-identical to the scalar library for the SCC
/// and depthwise kernels (no FMA below AVX2 level).
bool bit_exact_level(simd::Isa isa) { return isa != simd::Isa::kAvx2; }

struct SessionGuard {
  SessionGuard() { reset(); }
  ~SessionGuard() { reset(); }
  static void reset() {
    tune::Session::global().set_mode(tune::Mode::kOff);
    tune::Session::global().set_cache_path("");
    tune::Session::global().cache().clear();
    tune::Session::global().set_tuner_options({});
    tune::Session::global().set_allow_fast_math(false);
  }
};

// ---- dispatch ---------------------------------------------------------------

TEST(SimdDispatch, ParseNamesAndDetect) {
  EXPECT_EQ(simd::parse_isa("scalar"), simd::Isa::kScalar);
  EXPECT_EQ(simd::parse_isa("sse2"), simd::Isa::kSse2);
  EXPECT_EQ(simd::parse_isa("avx2"), simd::Isa::kAvx2);
  EXPECT_THROW(simd::parse_isa("avx512"), Error);
  EXPECT_STREQ(simd::isa_name(simd::Isa::kAvx2), "avx2");
  // The DSX_SIMD override parses through the same function, so every level
  // name the env accepts is covered here.
  EXPECT_TRUE(simd::isa_available(simd::Isa::kScalar));
  EXPECT_TRUE(simd::isa_available(simd::detect_isa()));
}

TEST(SimdDispatch, SetActiveClampsToHostAndScopedIsaRestores) {
  const simd::Isa before = simd::active_isa();
  // Requesting the widest level lands at most at detect_isa().
  const simd::Isa applied = simd::set_active_isa(simd::Isa::kAvx2);
  EXPECT_EQ(applied, simd::detect_isa());
  simd::set_active_isa(before);
  {
    simd::ScopedIsa forced(simd::Isa::kScalar);  // DSX_SIMD=scalar equivalent
    EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
    const auto& table = simd::kernels(simd::active_isa());
    EXPECT_EQ(table.compiled_level, 0);
    EXPECT_EQ(table.vector_width, 1);
  }
  EXPECT_EQ(simd::active_isa(), before);
  // The table for a given level never exceeds what it claims.
  for (const simd::Isa isa : host_levels()) {
    EXPECT_EQ(simd::kernels(isa).compiled_level, static_cast<int>(isa));
  }
}

// ---- ULP helper sanity ------------------------------------------------------

TEST(SimdUlp, DistanceBasics) {
  EXPECT_EQ(testing::ulp_distance(1.0f, 1.0f), 0);
  EXPECT_EQ(testing::ulp_distance(0.0f, -0.0f), 0);
  EXPECT_EQ(testing::ulp_distance(1.0f, std::nextafterf(1.0f, 2.0f)), 1);
  EXPECT_EQ(testing::ulp_distance(-1.0f, std::nextafterf(-1.0f, -2.0f)), 1);
  EXPECT_GT(testing::ulp_distance(1.0f, -1.0f), int64_t{1} << 40);
  EXPECT_GT(testing::ulp_distance(1.0f, std::nanf("")), int64_t{1} << 40);
}

// ---- packed GEMM ------------------------------------------------------------

TEST(SimdGemm, MatchesScalarWithinUlpAcrossOddShapesAndTails) {
  Rng rng(101);
  // Odd M/N/K chosen to hit every masked-remainder path: M tails of the 6-row
  // micro-kernel, N tails of both the 8- and 16-wide panels, K crossing the
  // 256-deep K-blocking boundary.
  const struct {
    int64_t M, N, K;
  } shapes[] = {{1, 1, 1},   {5, 7, 9},    {6, 16, 8},   {7, 17, 13},
                {13, 33, 67}, {17, 31, 130}, {3, 129, 300}, {23, 15, 257}};
  const struct {
    float alpha, beta;
    bool trans_a, trans_b;
  } variants[] = {{1.0f, 0.0f, false, false},
                  {0.5f, 1.0f, false, false},
                  {1.0f, 0.0f, true, false},
                  {1.0f, 0.0f, false, true},
                  {2.0f, 0.5f, true, true}};
  for (const auto& s : shapes) {
    for (const auto& v : variants) {
      // Positive operands: the kMaxUlp contract is a relative-error bound,
      // which zero-crossing sums would void (cancellation shrinks the
      // result without shrinking the absolute error).
      const Tensor a = random_uniform(
          v.trans_a ? Shape{s.K, s.M} : Shape{s.M, s.K}, rng, 0.0f, 1.0f);
      const Tensor b = random_uniform(
          v.trans_b ? Shape{s.N, s.K} : Shape{s.K, s.N}, rng, 0.0f, 1.0f);
      Tensor c0 = random_uniform(Shape{s.M, s.N}, rng, 0.0f, 1.0f);
      Tensor expect = c0.clone();
      gemm(v.trans_a, v.trans_b, s.M, s.N, s.K, v.alpha, a.data(),
           a.shape().dim(1), b.data(), b.shape().dim(1), v.beta,
           expect.data(), s.N);
      for (const simd::Isa isa : host_levels()) {
        Tensor got = c0.clone();
        simd::gemm(v.trans_a, v.trans_b, s.M, s.N, s.K, v.alpha, a.data(),
                   a.shape().dim(1), b.data(), b.shape().dim(1), v.beta,
                   got.data(), s.N, isa);
        SCOPED_TRACE(::testing::Message()
                     << "isa=" << simd::isa_name(isa) << " M=" << s.M
                     << " N=" << s.N << " K=" << s.K << " tA=" << v.trans_a
                     << " tB=" << v.trans_b);
        testing::expect_allclose_ulp(got, expect, simd::kMaxUlp);
      }
    }
  }
}

TEST(SimdGemm, DegenerateDims) {
  Rng rng(7);
  const Tensor a = random_uniform(Shape{4, 3}, rng);
  const Tensor b = random_uniform(Shape{3, 5}, rng);
  Tensor c = random_uniform(Shape{4, 5}, rng);
  const Tensor c0 = c.clone();
  // K == 0: C = beta*C.
  simd::gemm(false, false, 4, 5, 0, 1.0f, a.data(), 3, b.data(), 5, 0.5f,
             c.data(), 5);
  for (int64_t i = 0; i < c.numel(); ++i) EXPECT_FLOAT_EQ(c[i], 0.5f * c0[i]);
  // alpha == 0, beta == 0 zeroes C without reading it.
  simd::gemm(false, false, 4, 5, 3, 0.0f, a.data(), 3, b.data(), 5, 0.0f,
             c.data(), 5);
  for (int64_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c[i], 0.0f);
}

TEST(SimdGemm, FusedBiasReluEpilogue) {
  Rng rng(33);
  const int64_t M = 11, N = 19, K = 29;
  const Tensor a = random_uniform(Shape{M, K}, rng, 0.0f, 1.0f);
  const Tensor b = random_uniform(Shape{K, N}, rng, 0.0f, 1.0f);
  const Tensor bias = random_uniform(Shape{M}, rng, 0.5f, 1.5f);
  Tensor ref(Shape{M, N});
  gemm(false, false, M, N, K, 1.0f, a.data(), K, b.data(), N, 0.0f,
       ref.data(), N);
  for (int64_t i = 0; i < M; ++i) {
    for (int64_t j = 0; j < N; ++j) ref.data()[i * N + j] += bias[i];
  }
  for (const simd::Isa isa : host_levels()) {
    SCOPED_TRACE(simd::isa_name(isa));
    Workspace ws;
    Tensor got(Shape{M, N});
    simd::gemm_bias_relu_ws(false, false, M, N, K, 1.0f, a.data(), K,
                            b.data(), N, 0.0f, got.data(), N, bias.data(),
                            /*relu=*/true, ws, isa);
    // All-positive operands: ReLU is the identity here, the ULP bound holds.
    testing::expect_allclose_ulp(got, ref, simd::kMaxUlp);

    // A hugely negative bias drives every output below zero: the fused ReLU
    // must clamp each to exactly +0.0.
    Tensor clamped(Shape{M, N});
    std::vector<float> neg(static_cast<size_t>(M), -1e6f);
    simd::gemm_bias_relu_ws(false, false, M, N, K, 1.0f, a.data(), K,
                            b.data(), N, 0.0f, clamped.data(), N, neg.data(),
                            /*relu=*/true, ws, isa);
    for (int64_t i = 0; i < clamped.numel(); ++i) {
      ASSERT_EQ(clamped[i], 0.0f) << "i=" << i;
    }
  }
}

TEST(SimdGemm, WorkspaceDrawMatchesDeclaredSizing) {
  Rng rng(5);
  const int64_t M = 9, N = 21, K = 33;
  const Tensor a = random_uniform(Shape{M, K}, rng);
  const Tensor b = random_uniform(Shape{K, N}, rng);
  Tensor c(Shape{M, N});
  Workspace ws;
  simd::gemm_ws(false, false, M, N, K, 1.0f, a.data(), K, b.data(), N, 0.0f,
                c.data(), N, ws);
  EXPECT_EQ(ws.used_floats(), simd::gemm_workspace_floats(M, N, K));
}

// ---- conv2d via packed GEMM -------------------------------------------------

TEST(SimdConv, MatchesConvWithinUlpIncludingGroupsAndTails) {
  Rng rng(55);
  const struct {
    int64_t batch, cin, cout, spatial, k, stride, pad, groups;
    bool bias;
  } cases[] = {
      {2, 8, 16, 7, 3, 1, 1, 1, true},    // odd spatial, full pad
      {1, 12, 12, 9, 3, 2, 0, 2, false},  // grouped, strided
      {2, 16, 32, 5, 1, 1, 0, 1, true},   // dense 1x1 (no im2col)
      {1, 16, 16, 5, 1, 1, 0, 4, false},  // grouped pointwise
      {2, 6, 9, 11, 5, 2, 2, 3, true},    // 5x5, 3 groups, odd plane
  };
  for (const auto& c : cases) {
    const Conv2dArgs args{c.stride, c.pad, c.groups};
    const Tensor in = random_uniform(
        make_nchw(c.batch, c.cin, c.spatial, c.spatial), rng, 0.0f, 1.0f);
    const Tensor w = random_uniform(Shape{c.cout, c.cin / c.groups, c.k, c.k},
                                    rng, 0.0f, 1.0f);
    const Tensor bias = random_uniform(Shape{c.cout}, rng, 0.0f, 1.0f);
    const Tensor* bp = c.bias ? &bias : nullptr;
    const Tensor expect = conv2d_forward(in, w, bp, args);
    for (const simd::Isa isa : host_levels()) {
      SCOPED_TRACE(::testing::Message()
                   << simd::isa_name(isa) << " k=" << c.k << " g=" << c.groups
                   << " s=" << c.stride);
      Workspace ws;
      Tensor out(conv2d_output_shape(in.shape(), w.shape(), args));
      simd::conv2d_forward_into(in, w, bp, args, ws, out, isa);
      testing::expect_allclose_ulp(out, expect, simd::kMaxUlp);
      EXPECT_LE(ws.used_floats(),
                simd::conv2d_workspace_floats(in.shape(), w.shape(), args));
    }
  }
}

// ---- SCC forward ------------------------------------------------------------

TEST(SimdScc, BitExactBelowFmaUlpBoundedAtAvx2) {
  Rng rng(77);
  const struct {
    int64_t batch, cin, cout, spatial, cg, stride;
    double co;
    bool bias;
  } cases[] = {
      {1, 8, 12, 5, 2, 1, 0.5, false},   // 25-pixel plane: every tail path
      {2, 16, 24, 7, 4, 1, 0.25, true},  // 49-pixel plane
      {2, 12, 8, 6, 3, 2, 0.33, true},   // strided fallback
      {3, 32, 32, 3, 8, 1, 0.75, false}, // 9-pixel plane, wide windows
      {1, 64, 128, 1, 16, 1, 0.5, true}, // single-pixel plane (pure tail)
  };
  for (const auto& c : cases) {
    const scc::SCCConfig cfg{c.cin, c.cout, c.cg, c.co, c.stride};
    const scc::ChannelWindowMap map(cfg);
    const Tensor in = random_uniform(
        make_nchw(c.batch, c.cin, c.spatial, c.spatial), rng, 0.0f, 1.0f);
    const Tensor w =
        random_uniform(Shape{c.cout, map.group_width()}, rng, 0.0f, 1.0f);
    const Tensor bias = random_uniform(Shape{c.cout}, rng, 0.0f, 1.0f);
    const Tensor* bp = c.bias ? &bias : nullptr;
    const Tensor expect = scc::scc_forward(in, w, bp, map);
    for (const simd::Isa isa : host_levels()) {
      SCOPED_TRACE(::testing::Message() << simd::isa_name(isa) << " spatial="
                                        << c.spatial << " s=" << c.stride);
      Tensor out(scc::scc_output_shape(in.shape(), map));
      simd::scc_forward_into(in, w, bp, map, out, /*fuse_relu=*/false, isa);
      if (bit_exact_level(isa)) {
        EXPECT_TRUE(bit_identical(expect, out))
            << simd::isa_name(isa) << " must be bit-exact (kBitExact)";
      } else {
        testing::expect_allclose_ulp(out, expect, simd::kMaxUlp);
      }
    }
  }
}

TEST(SimdScc, FusedReluEpilogue) {
  Rng rng(79);
  const scc::SCCConfig cfg{16, 24, 4, 0.5, 1};
  const scc::ChannelWindowMap map(cfg);
  // Zero-centered inputs so the ReLU boundary is actually exercised.
  const Tensor in = random_uniform(make_nchw(2, 16, 5, 5), rng, -1.0f, 1.0f);
  const Tensor w = random_uniform(Shape{24, map.group_width()}, rng, -1.0f,
                                  1.0f);
  Tensor expect = scc::scc_forward(in, w, nullptr, map);
  for (int64_t i = 0; i < expect.numel(); ++i) {
    if (expect[i] < 0.0f) expect.data()[i] = 0.0f;
  }
  for (const simd::Isa isa : host_levels()) {
    if (!bit_exact_level(isa)) continue;  // exact comparison needs kBitExact
    Tensor out(scc::scc_output_shape(in.shape(), map));
    simd::scc_forward_into(in, w, nullptr, map, out, /*fuse_relu=*/true, isa);
    EXPECT_TRUE(bit_identical(expect, out)) << simd::isa_name(isa);
  }
}

// ---- depthwise forward ------------------------------------------------------

TEST(SimdDepthwise, BitExactBelowFmaUlpBoundedAtAvx2) {
  Rng rng(91);
  const struct {
    int64_t batch, c, spatial, k, stride, pad;
    bool bias;
  } cases[] = {
      {2, 8, 7, 3, 1, 1, true},   // odd 7x7 rows: interval + tail paths
      {1, 16, 9, 3, 1, 0, false}, // valid-only (interior shrinks)
      {2, 4, 13, 5, 1, 2, true},  // 5x5 taps, wide halo
      {1, 8, 8, 3, 2, 1, true},   // strided fallback
      {3, 6, 2, 3, 1, 1, false},  // plane smaller than one vector
  };
  for (const auto& c : cases) {
    const DepthwiseArgs args{c.stride, c.pad};
    const Tensor in = random_uniform(
        make_nchw(c.batch, c.c, c.spatial, c.spatial), rng, 0.0f, 1.0f);
    const Tensor w = random_uniform(Shape{c.c, 1, c.k, c.k}, rng, 0.0f, 1.0f);
    const Tensor bias = random_uniform(Shape{c.c}, rng, 0.0f, 1.0f);
    const Tensor* bp = c.bias ? &bias : nullptr;
    const Tensor expect = depthwise_forward(in, w, bp, args);
    for (const simd::Isa isa : host_levels()) {
      SCOPED_TRACE(::testing::Message() << simd::isa_name(isa)
                                        << " spatial=" << c.spatial
                                        << " k=" << c.k << " s=" << c.stride);
      Tensor out(depthwise_output_shape(in.shape(), w.shape(), args));
      simd::depthwise_forward_into(in, w, bp, args, out, /*fuse_relu=*/false,
                                   isa);
      if (bit_exact_level(isa)) {
        EXPECT_TRUE(bit_identical(expect, out))
            << simd::isa_name(isa) << " must be bit-exact (kBitExact)";
      } else {
        testing::expect_allclose_ulp(out, expect, simd::kMaxUlp);
      }
    }
  }
}

TEST(SimdDepthwise, FusedReluEpilogue) {
  Rng rng(93);
  const DepthwiseArgs args{1, 1};
  const Tensor in = random_uniform(make_nchw(2, 6, 7, 7), rng, -1.0f, 1.0f);
  const Tensor w = random_uniform(Shape{6, 1, 3, 3}, rng, -1.0f, 1.0f);
  Tensor expect = depthwise_forward(in, w, nullptr, args);
  for (int64_t i = 0; i < expect.numel(); ++i) {
    if (expect[i] < 0.0f) expect.data()[i] = 0.0f;
  }
  for (const simd::Isa isa : host_levels()) {
    if (!bit_exact_level(isa)) continue;
    Tensor out(depthwise_output_shape(in.shape(), w.shape(), args));
    simd::depthwise_forward_into(in, w, nullptr, args, out,
                                 /*fuse_relu=*/true, isa);
    EXPECT_TRUE(bit_identical(expect, out)) << simd::isa_name(isa);
  }
}

// ---- tune integration: fidelity gating --------------------------------------

TEST(SimdTune, RegistryGatesUlpBoundedCandidatesBehindFastMath) {
  SessionGuard guard;
  Rng rng(17);
  const scc::SCCConfig cfg{16, 24, 4, 0.5, 1};
  const scc::ChannelWindowMap map(cfg);
  const Tensor in = random_uniform(make_nchw(2, 16, 6, 6), rng);
  const tune::ProblemKey key = tune::make_scc_forward_key(in.shape(), map);
  auto& registry = tune::KernelRegistry::global();

  const auto strict = registry.scc_forward(key, /*allow_ulp_bounded=*/false);
  for (const auto& c : strict) {
    EXPECT_EQ(c.fidelity, tune::Fidelity::kBitExact) << c.label();
  }
  const auto fast = registry.scc_forward(key, /*allow_ulp_bounded=*/true);
  EXPECT_GE(fast.size(), strict.size());

  if (simd::isa_available(simd::Isa::kSse2)) {
    // The SSE2 SCC kernel is bit-exact, so it is admissible in strict mode.
    bool has_sse2 = false;
    for (const auto& c : strict) has_sse2 |= c.variant == "simd_sse2";
    EXPECT_TRUE(has_sse2);
  }
  if (simd::isa_available(simd::Isa::kAvx2)) {
    bool strict_has_avx2 = false, fast_has_avx2 = false;
    for (const auto& c : strict) strict_has_avx2 |= c.variant == "simd_avx2";
    for (const auto& c : fast) fast_has_avx2 |= c.variant == "simd_avx2";
    EXPECT_FALSE(strict_has_avx2) << "kUlpBounded candidate leaked into "
                                     "strict enumeration";
    EXPECT_TRUE(fast_has_avx2);
    // find_* applies the same gate.
    EXPECT_FALSE(registry
                     .find_scc(key, "simd_avx2", tune::kGrainDefault,
                               /*allow_ulp_bounded=*/false)
                     .has_value());
    EXPECT_TRUE(registry
                    .find_scc(key, "simd_avx2", tune::kGrainDefault,
                              /*allow_ulp_bounded=*/true)
                    .has_value());
  }

  // Conv simd candidates are always kUlpBounded (packed GEMM).
  const Conv2dArgs args{1, 1, 1};
  const Tensor w = random_uniform(Shape{8, 16, 3, 3}, rng);
  const tune::ProblemKey ckey =
      tune::make_conv2d_forward_key(in.shape(), w.shape(), args);
  for (const auto& c : registry.conv2d_forward(ckey, false)) {
    EXPECT_TRUE(c.variant == "im2col" || c.variant == "direct") << c.label();
  }

  // The depthwise family exists with its default first.
  const DepthwiseArgs dwargs{1, 1};
  const Tensor dww = random_uniform(Shape{16, 1, 3, 3}, rng);
  const tune::ProblemKey dkey =
      tune::make_depthwise_forward_key(in.shape(), dww.shape(), dwargs);
  const auto dw = registry.depthwise_forward(dkey, false);
  ASSERT_FALSE(dw.empty());
  EXPECT_EQ(dw.front().variant, "direct");
}

TEST(SimdTune, CachedUlpRecordNeverAppliedToStrictSession) {
  if (!simd::isa_available(simd::Isa::kAvx2)) GTEST_SKIP();
  SessionGuard guard;
  Rng rng(19);
  const DepthwiseArgs args{1, 1};
  const Tensor in = random_uniform(make_nchw(2, 8, 6, 6), rng, 0.0f, 1.0f);
  const Tensor w = random_uniform(Shape{8, 1, 3, 3}, rng, 0.0f, 1.0f);
  const Tensor expect = depthwise_forward(in, w, nullptr, args);

  // Seed a fast-math record exactly as a DSX_FAST_MATH process would have
  // written it (dispatch stamps the admission domain into the key) ...
  tune::TuningRecord rec;
  rec.key = tune::make_depthwise_forward_key(in.shape(), w.shape(), args);
  rec.key.fast_math = true;
  rec.variant = "simd_avx2";
  rec.grain = tune::kGrainDefault;
  rec.fidelity = tune::Fidelity::kUlpBounded;
  rec.median_ns = 1.0;
  rec.default_ns = 2.0;
  rec.iters = 1;
  tune::Session::global().cache().put(rec);
  // ... plus a tampered/corrupt one: a kUlpBounded winner sitting in the
  // STRICT domain slot, which only the fidelity gate can catch.
  tune::TuningRecord tampered = rec;
  tampered.key.fast_math = false;
  tune::Session::global().cache().put(tampered);

  tune::Session::ScopedMode scope(tune::Mode::kCached);
  {
    // Strict session: neither record may steer dispatch (the fast-math one
    // misses on domain, the tampered one is refused by the fidelity gate) -
    // default kernel, bit-identical output.
    Workspace ws;
    Tensor out(depthwise_output_shape(in.shape(), w.shape(), args));
    tune::DepthwiseSite site;
    tune::depthwise_forward_dispatch(in, w, nullptr, args, ws, out, &site);
    EXPECT_TRUE(bit_identical(expect, out));
    ASSERT_TRUE(site.resolved());
    EXPECT_EQ(site.baked->variant, "direct");
    EXPECT_FALSE(site.record.has_value());
  }
  {
    // Fast-math session: the same record now applies.
    tune::Session::ScopedFastMath fast(true);
    Workspace ws;
    Tensor out(depthwise_output_shape(in.shape(), w.shape(), args));
    tune::DepthwiseSite site;
    tune::depthwise_forward_dispatch(in, w, nullptr, args, ws, out, &site);
    ASSERT_TRUE(site.resolved());
    EXPECT_EQ(site.baked->variant, "simd_avx2");
    testing::expect_allclose_ulp(out, expect, simd::kMaxUlp);
  }
}

TEST(SimdTune, DepthwiseDispatchOffModeIsDefaultBitExact) {
  SessionGuard guard;
  Rng rng(23);
  const DepthwiseArgs args{2, 1};
  const Tensor in = random_uniform(make_nchw(2, 6, 8, 8), rng);
  const Tensor w = random_uniform(Shape{6, 1, 3, 3}, rng);
  const Tensor expect = depthwise_forward(in, w, nullptr, args);
  Workspace ws;
  Tensor out(depthwise_output_shape(in.shape(), w.shape(), args));
  tune::DepthwiseSite site;
  tune::depthwise_forward_dispatch(in, w, nullptr, args, ws, out, &site);
  EXPECT_TRUE(bit_identical(expect, out));
  EXPECT_FALSE(site.resolved());  // off mode resolves nothing
}

// ---- serving compile --------------------------------------------------------

std::unique_ptr<nn::Sequential> small_model(uint64_t seed) {
  Rng rng(seed);
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 16, 3, 1, 1, 1, rng, /*bias=*/true);
  net->emplace<nn::ReLU>();
  net->emplace<nn::DepthwiseConv2d>(16, 3, 1, 1, rng, /*bias=*/true);
  net->emplace<nn::SCCConv>(scc::SCCConfig{16, 24, 4, 0.5, 1}, rng,
                            /*bias=*/true);
  return net;
}

TEST(SimdServe, StrictTunedCompileStaysBitIdenticalToOff) {
  SessionGuard guard;
  const Shape image{3, 8, 8};
  serve::CompiledModel off(small_model(3), image, {.max_batch = 4});
  serve::CompiledModel tuned(small_model(3), image,
                             {.max_batch = 4,
                              .tuning = tune::Mode::kTune,
                              .tuner = {.warmup = 0, .iters = 1}});
  // allow_fast_math defaults OFF: only kBitExact candidates were admitted,
  // so the tuned plan's outputs are bit-identical whatever won.
  Rng rng(29);
  const Tensor batch = random_uniform(make_nchw(4, 3, 8, 8), rng);
  EXPECT_TRUE(bit_identical(off.run(batch), tuned.run(batch)));
  for (const auto& choice : tuned.report().tuned) {
    EXPECT_EQ(choice.fidelity, tune::Fidelity::kBitExact) << choice.layer;
  }
  SessionGuard::reset();
}

TEST(SimdServe, FastMathCompileReportsFidelityAndStaysUlpClose) {
  SessionGuard guard;
  const Shape image{3, 8, 8};
  serve::CompiledModel off(small_model(4), image, {.max_batch = 4});
  serve::CompiledModel fast(small_model(4), image,
                            {.max_batch = 4,
                             .tuning = tune::Mode::kTune,
                             .tuner = {.warmup = 0, .iters = 1},
                             .allow_fast_math = true});
  // The compile-scoped fast-math flag must not leak into the session.
  EXPECT_FALSE(tune::Session::global().allow_fast_math());

  Rng rng(31);
  const Tensor batch = random_uniform(make_nchw(4, 3, 8, 8), rng);
  const Tensor a = off.run(batch);
  const Tensor b = fast.run(batch);
  // ULP divergence compounds across layers, so the end-to-end check is a
  // relative tolerance, not a per-op ULP bound.
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(a[i], b[i], 1e-3f * (1.0f + std::abs(a[i]))) << "i=" << i;
  }
  for (const auto& choice : fast.report().tuned) {
    // Fidelity is reported per layer; whatever won must be a legal value.
    EXPECT_TRUE(choice.fidelity == tune::Fidelity::kBitExact ||
                choice.fidelity == tune::Fidelity::kUlpBounded)
        << choice.layer;
  }
  SessionGuard::reset();
}

}  // namespace
}  // namespace dsx
