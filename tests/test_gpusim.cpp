// Tests for the analytic GPU model: wave/saturation behaviour (Fig. 13's
// mechanism), atomic serialization, all-reduce link model (Fig. 14's
// mechanism) and profile aggregation.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/estimator.hpp"
#include "gpusim/kernel_profile.hpp"
#include "gpusim/link_model.hpp"

namespace dsx::gpusim {
namespace {

device::KernelRecord make_record(int64_t threads, double flops, double bytes,
                                 int64_t atomics = 0) {
  device::KernelRecord r;
  r.name = "k";
  r.threads = threads;
  r.flops_per_thread = flops;
  r.bytes_per_thread = bytes;
  r.atomic_adds = atomics;
  return r;
}

TEST(DeviceSpec, V100Headline) {
  const DeviceSpec v100 = DeviceSpec::v100();
  EXPECT_EQ(v100.sms, 80);
  EXPECT_DOUBLE_EQ(v100.peak_flops, 15.7e12);
  EXPECT_DOUBLE_EQ(v100.wave_threads(), 80.0 * 2048.0);
}

TEST(Estimator, FlatWhileUndersaturated) {
  // Below one wave, the modeled time is the launch overhead plus one wave -
  // independent of thread count. This is the knee mechanism of Fig. 13.
  const DeviceSpec spec = DeviceSpec::v100();
  const double t_small = estimate_kernel_time(spec, make_record(1000, 100, 40));
  const double t_half_wave =
      estimate_kernel_time(spec, make_record(80000, 100, 40));
  EXPECT_DOUBLE_EQ(t_small, t_half_wave);
}

TEST(Estimator, LinearBeyondSaturation) {
  const DeviceSpec spec = DeviceSpec::v100();
  const int64_t wave = static_cast<int64_t>(spec.wave_threads());
  const double t1 = estimate_kernel_time(spec, make_record(wave, 100, 40));
  const double t4 = estimate_kernel_time(spec, make_record(4 * wave, 100, 40));
  // 4 waves cost ~4x the wave time (minus the shared launch overhead).
  const double wave_time = t1 - spec.kernel_launch_overhead;
  EXPECT_NEAR(t4 - spec.kernel_launch_overhead, 4.0 * wave_time,
              1e-12 + 0.01 * wave_time);
}

TEST(Estimator, RooflinePicksBindingResource) {
  const DeviceSpec spec = DeviceSpec::v100();
  // Compute-bound: heavy flops, light bytes.
  const auto compute = make_record(1 << 20, 10000.0, 4.0);
  // Memory-bound: light flops, heavy bytes.
  const auto memory = make_record(1 << 20, 4.0, 10000.0);
  const double tc = estimate_kernel_time(spec, compute);
  const double tm = estimate_kernel_time(spec, memory);
  // bytes/bw > flops/peak for the memory kernel on a V100 (ratio ~17).
  EXPECT_GT(tm, tc);
}

TEST(Estimator, AtomicsAddSerializationTime) {
  const DeviceSpec spec = DeviceSpec::v100();
  const double t0 = estimate_kernel_time(spec, make_record(1024, 10, 10, 0));
  const double t1 =
      estimate_kernel_time(spec, make_record(1024, 10, 10, 40'000'000));
  EXPECT_NEAR(t1 - t0, 40e6 / spec.atomic_throughput, 1e-9);
}

TEST(Estimator, ZeroThreadKernelCostsOverheadOnly) {
  const DeviceSpec spec = DeviceSpec::v100();
  EXPECT_DOUBLE_EQ(estimate_kernel_time(spec, make_record(0, 1, 1)),
                   spec.kernel_launch_overhead);
  EXPECT_THROW(estimate_kernel_time(spec, make_record(-1, 1, 1)), Error);
}

TEST(Estimator, LogTimeIsSumOfKernels) {
  const DeviceSpec spec = DeviceSpec::v100();
  const std::vector<device::KernelRecord> log = {make_record(100, 10, 10),
                                                 make_record(200, 10, 10)};
  EXPECT_NEAR(estimate_log_time(spec, log),
              estimate_kernel_time(spec, log[0]) +
                  estimate_kernel_time(spec, log[1]),
              1e-15);
}

// ---- link model -----------------------------------------------------------------

TEST(LinkModel, SingleDeviceIsFree) {
  const DeviceSpec spec = DeviceSpec::v100();
  EXPECT_DOUBLE_EQ(all_reduce_time(spec, 1e9, 1), 0.0);
}

TEST(LinkModel, BandwidthTermUsesRingBytes) {
  const DeviceSpec spec = DeviceSpec::v100();
  const double t2 = all_reduce_time(spec, 100e6, 2);
  // 2 devices: wire = payload; latency = 2 hops.
  EXPECT_NEAR(t2, 2 * spec.link_latency + 100e6 / spec.link_bandwidth, 1e-12);
}

TEST(LinkModel, WireTrafficSaturatesWithDevices) {
  const DeviceSpec spec = DeviceSpec::v100();
  // Ring all-reduce traffic per device grows like 2(D-1)/D -> 2, so time
  // grows but stays bounded (plus latency).
  const double t2 = all_reduce_time(spec, 1e9, 2);
  const double t4 = all_reduce_time(spec, 1e9, 4);
  const double t8 = all_reduce_time(spec, 1e9, 8);
  EXPECT_LT(t2, t4);
  EXPECT_LT(t4, t8);
  EXPECT_LT(t8, 2.1 * t2);
}

TEST(LinkModel, DataParallelSpeedupShape) {
  // Fig. 14 shape: speedup grows with devices; for compute-dominated steps it
  // approaches linear; comm overhead keeps it strictly sublinear.
  const DeviceSpec spec = DeviceSpec::v100();
  const double compute = 0.5;       // seconds per step on 1 device
  const double grads = 50e6;        // bytes
  double prev_speedup = 1.0;
  for (int d = 1; d <= 4; ++d) {
    const MultiGpuEstimate est =
        estimate_data_parallel(spec, compute, grads, d);
    EXPECT_GE(est.speedup, prev_speedup);
    EXPECT_LE(est.speedup, static_cast<double>(d) + 1e-9);
    prev_speedup = est.speedup;
  }
  const MultiGpuEstimate est4 = estimate_data_parallel(spec, compute, grads, 4);
  EXPECT_GT(est4.speedup, 3.0);  // near-linear at 4 devices (paper Fig. 14)
}

TEST(LinkModel, CommBoundStepsScalePoorly) {
  const DeviceSpec spec = DeviceSpec::v100();
  // Tiny compute, huge gradients: adding devices barely helps.
  const MultiGpuEstimate est =
      estimate_data_parallel(spec, 1e-3, 4e9, 4);
  EXPECT_LT(est.speedup, 1.0);
}

TEST(LinkModel, Validation) {
  const DeviceSpec spec = DeviceSpec::v100();
  EXPECT_THROW(all_reduce_time(spec, -1.0, 2), Error);
  EXPECT_THROW(all_reduce_time(spec, 1.0, 0), Error);
  EXPECT_THROW(estimate_data_parallel(spec, -1.0, 1.0, 2), Error);
}

// ---- profile aggregation ----------------------------------------------------------

TEST(Profile, SummarizeTotals) {
  const std::vector<device::KernelRecord> log = {
      make_record(100, 2.0, 4.0, 5), make_record(50, 4.0, 8.0, 0)};
  const ProfileSummary s = summarize(log);
  EXPECT_EQ(s.launches, 2);
  EXPECT_DOUBLE_EQ(s.total_threads, 150.0);
  EXPECT_DOUBLE_EQ(s.total_flops, 200.0 + 200.0);
  EXPECT_DOUBLE_EQ(s.total_bytes, 400.0 + 400.0);
  EXPECT_EQ(s.total_atomics, 5);
}

TEST(Profile, SummarizeByNameGroups) {
  std::vector<device::KernelRecord> log = {make_record(10, 1, 1),
                                           make_record(20, 1, 1)};
  log[0].name = "a";
  log[1].name = "a";
  log.push_back(make_record(5, 1, 1));
  log.back().name = "b";
  const auto by_name = summarize_by_name(log);
  ASSERT_EQ(by_name.size(), 2u);
  EXPECT_EQ(by_name[0].name, "a");
  EXPECT_EQ(by_name[0].summary.launches, 2);
  EXPECT_EQ(by_name[1].name, "b");
}

TEST(Profile, EndToEndProfiledSccForwardEstimates) {
  // Record a real SCC forward launch log and check the estimator returns a
  // sane positive time that grows with batch size.
  // (The actual Fig. 13 reproduction lives in bench/fig13_batch_size.)
  const DeviceSpec spec = DeviceSpec::v100();
  const auto run = [&](int64_t batch) {
    device::KernelRecord r = make_record(batch * 64 * 32 * 32, 2.0 * 16, 72.0);
    return estimate_kernel_time(spec, r);
  };
  const double t16 = run(16);
  const double t64 = run(64);
  const double t1024 = run(1024);
  EXPECT_GT(t16, 0.0);
  EXPECT_LE(t16, t64 + 1e-15);
  EXPECT_LT(t64, t1024);
}

}  // namespace
}  // namespace dsx::gpusim
