// Tests for the design-space exploration library (explore/design_space):
// grid enumeration, Pareto-front invariants (no dominated point survives,
// every dropped point is dominated), budget selection, and the cross-channel
// proxy evaluator's accuracy ordering (the paper's Table I mechanism).
#include <gtest/gtest.h>

#include <array>

#include "core/cost_model.hpp"
#include "explore/design_space.hpp"

namespace dsx::explore {
namespace {

// ---- grid ---------------------------------------------------------------------

TEST(Grid, EnumeratesCrossProductInOrder) {
  const std::array<int64_t, 2> cgs = {2, 4};
  const std::array<double, 3> cos = {0.0, 0.5, 1.0};
  const auto points = grid(cgs, cos);
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(points[0].cg, 2);
  EXPECT_DOUBLE_EQ(points[0].co, 0.0);
  EXPECT_EQ(points[5].cg, 4);
  EXPECT_DOUBLE_EQ(points[5].co, 1.0);
}

TEST(Grid, RejectsInvalidAxes) {
  const std::array<int64_t, 1> ok_cg = {2};
  const std::array<double, 1> ok_co = {0.5};
  const std::array<int64_t, 1> bad_cg = {0};
  const std::array<double, 1> bad_co = {1.5};
  EXPECT_THROW(grid(std::span<const int64_t>{}, ok_co), std::runtime_error);
  EXPECT_THROW(grid(bad_cg, ok_co), std::runtime_error);
  EXPECT_THROW(grid(ok_cg, bad_co), std::runtime_error);
}

TEST(Grid, DesignPointNamesMatchPaperNotation) {
  EXPECT_EQ((DesignPoint{2, 0.5}.to_string()), "SCC-cg2-co50%");
  EXPECT_EQ((DesignPoint{4, 1.0 / 3.0}.to_string()), "SCC-cg4-co33%");
}

// ---- evaluate_grid ---------------------------------------------------------------

TEST(EvaluateGrid, AttachesCostAndScorePerPoint) {
  const std::array<int64_t, 2> cgs = {1, 2};
  const std::array<double, 1> cos = {0.5};
  const auto points = grid(cgs, cos);
  const auto candidates = evaluate_grid(
      points,
      [](const DesignPoint& p) {
        return DesignCost{100.0 / static_cast<double>(p.cg), 10.0};
      },
      [](const DesignPoint& p) { return 1.0 / static_cast<double>(p.cg); });
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_DOUBLE_EQ(candidates[0].mmacs, 100.0);
  EXPECT_DOUBLE_EQ(candidates[0].score, 1.0);
  EXPECT_DOUBLE_EQ(candidates[1].mmacs, 50.0);
  EXPECT_DOUBLE_EQ(candidates[1].score, 0.5);
}

TEST(EvaluateGrid, RejectsNullCallbacks) {
  const std::array<int64_t, 1> cgs = {2};
  const std::array<double, 1> cos = {0.5};
  const auto points = grid(cgs, cos);
  EXPECT_THROW(
      evaluate_grid(points, nullptr, [](const DesignPoint&) { return 0.0; }),
      std::runtime_error);
}

// ---- pareto_front ---------------------------------------------------------------

Candidate make_candidate(double mmacs, double score) {
  return {{2, 0.5}, mmacs, 0.0, score};
}

TEST(ParetoFront, DropsDominatedPoints) {
  // (10, 0.9) dominates (12, 0.8); (5, 0.5) survives as the cheap corner.
  auto front = pareto_front(
      {make_candidate(10, 0.9), make_candidate(12, 0.8),
       make_candidate(5, 0.5)});
  ASSERT_EQ(front.size(), 2u);
  EXPECT_DOUBLE_EQ(front[0].mmacs, 5.0);
  EXPECT_DOUBLE_EQ(front[1].mmacs, 10.0);
}

TEST(ParetoFront, SortedByCostWithStrictlyIncreasingScore) {
  auto front = pareto_front(
      {make_candidate(8, 0.3), make_candidate(2, 0.1), make_candidate(4, 0.2),
       make_candidate(6, 0.15), make_candidate(10, 0.05)});
  ASSERT_EQ(front.size(), 3u);
  for (size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].mmacs, front[i - 1].mmacs);
    EXPECT_GT(front[i].score, front[i - 1].score);
  }
}

TEST(ParetoFront, NoSurvivorIsDominated) {
  // Property over a pseudo-random cloud: for every kept point there is no
  // other original point that is at least as good on both axes and better
  // on one.
  std::vector<Candidate> cloud;
  uint64_t state = 12345;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 40) / static_cast<double>(1 << 24);
  };
  for (int i = 0; i < 64; ++i) cloud.push_back(make_candidate(next(), next()));
  const auto front = pareto_front(cloud);
  ASSERT_FALSE(front.empty());
  for (const Candidate& kept : front) {
    for (const Candidate& other : cloud) {
      const bool dominates =
          other.mmacs <= kept.mmacs && other.score >= kept.score &&
          (other.mmacs < kept.mmacs || other.score > kept.score);
      EXPECT_FALSE(dominates) << "front point (" << kept.mmacs << ", "
                              << kept.score << ") dominated by ("
                              << other.mmacs << ", " << other.score << ")";
    }
  }
}

TEST(ParetoFront, EveryDroppedPointIsDominated) {
  std::vector<Candidate> cloud = {make_candidate(1, 0.1), make_candidate(2, 0.5),
                                  make_candidate(3, 0.4),
                                  make_candidate(4, 0.9)};
  const auto front = pareto_front(cloud);
  for (const Candidate& c : cloud) {
    bool kept = false;
    for (const Candidate& f : front) {
      kept |= f.mmacs == c.mmacs && f.score == c.score;
    }
    if (kept) continue;
    bool dominated = false;
    for (const Candidate& f : front) {
      dominated |= f.mmacs <= c.mmacs && f.score >= c.score &&
                   (f.mmacs < c.mmacs || f.score > c.score);
    }
    EXPECT_TRUE(dominated) << "(" << c.mmacs << ", " << c.score
                           << ") dropped but not dominated";
  }
}

TEST(ParetoFront, EmptyInputGivesEmptyFront) {
  EXPECT_TRUE(pareto_front({}).empty());
}

// ---- best_under_budget --------------------------------------------------------------

TEST(BudgetPick, PicksHighestScoreWithinBudget) {
  const std::vector<Candidate> candidates = {
      make_candidate(5, 0.5), make_candidate(10, 0.9), make_candidate(20, 0.95)};
  const Candidate c = best_under_budget(candidates, 12.0);
  EXPECT_DOUBLE_EQ(c.mmacs, 10.0);
  EXPECT_DOUBLE_EQ(c.score, 0.9);
}

TEST(BudgetPick, BreaksScoreTiesTowardCheaper) {
  const std::vector<Candidate> candidates = {make_candidate(10, 0.9),
                                             make_candidate(6, 0.9)};
  EXPECT_DOUBLE_EQ(best_under_budget(candidates, 100.0).mmacs, 6.0);
}

TEST(BudgetPick, ThrowsWhenNothingFits) {
  const std::vector<Candidate> candidates = {make_candidate(10, 0.9)};
  EXPECT_THROW(best_under_budget(candidates, 5.0), std::runtime_error);
}

// ---- cost function integration --------------------------------------------------------

TEST(CostIntegration, SccCostFollowsDesignPoint) {
  // The standard CostFn: analytic SCC cost of a representative fusion layer.
  const auto cost_fn = [](const DesignPoint& p) {
    scc::SCCConfig cfg;
    cfg.in_channels = 64;
    cfg.out_channels = 64;
    cfg.groups = p.cg;
    cfg.overlap = p.co;
    const auto c = scc::scc_cost(cfg, 16, 16, false);
    return DesignCost{c.macs / 1e6, c.params / 1e3};
  };
  const DesignCost cg1 = cost_fn({1, 0.5});
  const DesignCost cg4 = cost_fn({4, 0.5});
  EXPECT_DOUBLE_EQ(cg1.mmacs, 4.0 * cg4.mmacs);   // MACs scale as 1/cg
  EXPECT_DOUBLE_EQ(cg1.kparams, 4.0 * cg4.kparams);
  // co does not change the analytic cost (paper Table I).
  EXPECT_DOUBLE_EQ(cost_fn({4, 0.0}).mmacs, cg4.mmacs);
}

// ---- the proxy evaluator (slow path: one real training run per point) -----------------

TEST(CrossChannelProxy, OverlapBeatsNoOverlapAtEqualCost) {
  // The paper's core accuracy claim in miniature: at equal cg (equal cost),
  // SCC's window overlap recovers the cross-group signal GPW loses.
  ProxyOptions opts;
  opts.epochs = 6;
  opts.train_samples = 192;
  opts.test_samples = 96;
  const ScoreFn proxy = make_cross_channel_proxy(opts);
  const double gpw_like = proxy({4, 0.0});   // no overlap = GPW corner
  const double scc = proxy({4, 0.5});
  EXPECT_GT(scc, gpw_like + 0.10);
}

TEST(CrossChannelProxy, IsDeterministicForFixedOptions) {
  ProxyOptions opts;
  opts.epochs = 2;
  opts.train_samples = 64;
  opts.test_samples = 32;
  const ScoreFn proxy = make_cross_channel_proxy(opts);
  EXPECT_DOUBLE_EQ(proxy({2, 0.5}), proxy({2, 0.5}));
}

TEST(CrossChannelProxy, RejectsIndivisibleGroups) {
  const ScoreFn proxy = make_cross_channel_proxy();
  EXPECT_THROW(proxy({3, 0.5}), std::runtime_error);  // 3 does not divide 8
}

// ---- per-layer budget allocation ------------------------------------------------

TEST(SiteMacs, MatchesAnalyticFormula) {
  const LayerSite site{64, 128, 16};
  EXPECT_DOUBLE_EQ(site_mmacs(site, 1), 128.0 * 64 * 16 * 16 / 1e6);
  EXPECT_DOUBLE_EQ(site_mmacs(site, 4), site_mmacs(site, 1) / 4.0);
  EXPECT_THROW(site_mmacs(site, 5), std::runtime_error);  // 5 !| 64
}

TEST(PerLayerAllocation, KeepsEverythingAtCg1WhenBudgetIsLoose) {
  const std::vector<LayerSite> sites = {{64, 64, 16}, {128, 128, 8}};
  const std::vector<int64_t> cgs = {1, 2, 4, 8};
  const Allocation alloc = allocate_per_layer(sites, cgs, 1e9);
  EXPECT_EQ(alloc.cg, (std::vector<int64_t>{1, 1}));
  EXPECT_DOUBLE_EQ(alloc.total_mmacs,
                   site_mmacs(sites[0], 1) + site_mmacs(sites[1], 1));
}

TEST(PerLayerAllocation, MeetsTheBudget) {
  const std::vector<LayerSite> sites = {{64, 64, 16}, {128, 128, 8},
                                        {256, 256, 4}};
  const std::vector<int64_t> cgs = {1, 2, 4, 8};
  const double loose = site_mmacs(sites[0], 1) + site_mmacs(sites[1], 1) +
                       site_mmacs(sites[2], 1);
  const Allocation alloc = allocate_per_layer(sites, cgs, loose / 3.0);
  EXPECT_LE(alloc.total_mmacs, loose / 3.0);
  // Reported total matches recomputation from the assignment.
  double recomputed = 0.0;
  for (size_t s = 0; s < sites.size(); ++s) {
    recomputed += site_mmacs(sites[s], alloc.cg[s]);
  }
  EXPECT_NEAR(alloc.total_mmacs, recomputed, 1e-12);
}

TEST(PerLayerAllocation, BumpsTheBiggestSaverFirst) {
  // Site 0 is 4x the cost of site 1 at every cg - the greedy must group
  // site 0 before touching site 1.
  const std::vector<LayerSite> sites = {{64, 64, 16}, {64, 64, 8}};
  const std::vector<int64_t> cgs = {1, 2};
  const double full = site_mmacs(sites[0], 1) + site_mmacs(sites[1], 1);
  // Budget reachable by halving site 0 alone.
  const Allocation alloc =
      allocate_per_layer(sites, cgs, full - site_mmacs(sites[0], 2));
  EXPECT_EQ(alloc.cg[0], 2);
  EXPECT_EQ(alloc.cg[1], 1);
}

TEST(PerLayerAllocation, SkipsCgsThatDoNotDivide) {
  // 24 channels: cg=8 invalid (24 % 8 != 0), ladder is {1, 2, 4}.
  const std::vector<LayerSite> sites = {{24, 24, 8}};
  const std::vector<int64_t> cgs = {1, 2, 4, 8};
  const Allocation alloc =
      allocate_per_layer(sites, cgs, site_mmacs(sites[0], 4));
  EXPECT_EQ(alloc.cg[0], 4);  // maxed out at the largest valid cg
}

TEST(PerLayerAllocation, ThrowsWhenBudgetUnreachable) {
  const std::vector<LayerSite> sites = {{8, 8, 8}};
  const std::vector<int64_t> cgs = {1, 2};
  EXPECT_THROW(allocate_per_layer(sites, cgs, 1e-9), std::runtime_error);
}

TEST(PerLayerAllocation, RejectsUnsortedCgAxis) {
  const std::vector<LayerSite> sites = {{8, 8, 8}};
  const std::vector<int64_t> cgs = {4, 2};
  EXPECT_THROW(allocate_per_layer(sites, cgs, 1e9), std::runtime_error);
}

}  // namespace
}  // namespace dsx::explore
