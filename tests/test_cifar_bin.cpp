// Tests for the CIFAR-10 binary-format loader (data/cifar_bin): round-trip
// fidelity, layout correctness against a hand-built record, truncation,
// and malformed-file rejection.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "data/cifar_bin.hpp"
#include "data/synth.hpp"
#include "tensor/tensor_ops.hpp"

namespace dsx::data {
namespace {

/// Unique temp path per test; removed on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(::testing::TempDir() + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(CifarBin, RoundTripPreservesLabelsAndPixels) {
  Dataset ds = make_synth_cifar(6, 501);  // [6, 3, 32, 32], values may exceed
  TempFile tmp("roundtrip.bin");
  save_cifar10_bin(ds, tmp.path);
  const Dataset back = load_cifar10_bin(tmp.path);

  ASSERT_EQ(back.images.shape(), ds.images.shape());
  ASSERT_EQ(back.labels, ds.labels);
  EXPECT_EQ(back.num_classes, 10);
  // Quantization: loaded pixel within half a code of the clamped original.
  for (int64_t i = 0; i < ds.images.numel(); ++i) {
    const float clamped = std::clamp(ds.images[i], 0.0f, 1.0f);
    EXPECT_NEAR(back.images[i], clamped, 0.5f / 255.0f + 1e-6f);
  }
}

TEST(CifarBin, FileSizeMatchesRecordLayout) {
  Dataset ds = make_synth_cifar(4, 503);
  TempFile tmp("layout.bin");
  save_cifar10_bin(ds, tmp.path);
  std::ifstream file(tmp.path, std::ios::binary | std::ios::ate);
  EXPECT_EQ(static_cast<int64_t>(file.tellg()), 4 * kCifarRecordBytes);
}

TEST(CifarBin, ReadsCanonicalLayout) {
  // Hand-build one record: label 7, red plane all 255, green 128, blue 0.
  TempFile tmp("canon.bin");
  {
    std::ofstream file(tmp.path, std::ios::binary);
    file.put(7);
    for (int i = 0; i < 1024; ++i) file.put(static_cast<char>(255));
    for (int i = 0; i < 1024; ++i) file.put(static_cast<char>(128));
    for (int i = 0; i < 1024; ++i) file.put(static_cast<char>(0));
  }
  const Dataset ds = load_cifar10_bin(tmp.path);
  ASSERT_EQ(ds.images.shape(), make_nchw(1, 3, 32, 32));
  EXPECT_EQ(ds.labels[0], 7);
  EXPECT_FLOAT_EQ(ds.images.at(0, 0, 15, 15), 1.0f);
  EXPECT_NEAR(ds.images.at(0, 1, 15, 15), 128.0f / 255.0f, 1e-6f);
  EXPECT_FLOAT_EQ(ds.images.at(0, 2, 15, 15), 0.0f);
}

TEST(CifarBin, MaxSamplesTruncates) {
  Dataset ds = make_synth_cifar(8, 505);
  TempFile tmp("trunc.bin");
  save_cifar10_bin(ds, tmp.path);
  const Dataset head = load_cifar10_bin(tmp.path, 3);
  EXPECT_EQ(head.images.shape().n(), 3);
  EXPECT_EQ(head.labels.size(), 3u);
  EXPECT_EQ(head.labels[2], ds.labels[2]);
}

TEST(CifarBin, RejectsMissingFile) {
  EXPECT_THROW(load_cifar10_bin("/nonexistent/cifar.bin"),
               std::runtime_error);
}

TEST(CifarBin, RejectsTruncatedFile) {
  TempFile tmp("bad.bin");
  {
    std::ofstream file(tmp.path, std::ios::binary);
    for (int i = 0; i < 100; ++i) file.put(0);  // not a record multiple
  }
  EXPECT_THROW(load_cifar10_bin(tmp.path), std::runtime_error);
}

TEST(CifarBin, RejectsOutOfRangeLabelByte) {
  TempFile tmp("badlabel.bin");
  {
    std::ofstream file(tmp.path, std::ios::binary);
    file.put(11);  // CIFAR-10 labels are 0..9
    for (int i = 0; i < 3072; ++i) file.put(0);
  }
  EXPECT_THROW(load_cifar10_bin(tmp.path), std::runtime_error);
}

TEST(CifarBin, SaveRejectsWrongShape) {
  Dataset ds;
  ds.images = Tensor(make_nchw(2, 3, 16, 16));
  ds.labels = {0, 1};
  TempFile tmp("shape.bin");
  EXPECT_THROW(save_cifar10_bin(ds, tmp.path), std::runtime_error);
}

TEST(CifarBin, SaveRejectsLabelCountMismatch) {
  Dataset ds;
  ds.images = Tensor(make_nchw(2, 3, 32, 32));
  ds.labels = {0};
  TempFile tmp("labels.bin");
  EXPECT_THROW(save_cifar10_bin(ds, tmp.path), std::runtime_error);
}

TEST(CifarBin, LoadedDataTrainsThroughDataLoader) {
  // The loaded Dataset must plug straight into the training pipeline.
  Dataset ds = make_synth_cifar(16, 507);
  TempFile tmp("pipeline.bin");
  save_cifar10_bin(ds, tmp.path);
  const Dataset loaded = load_cifar10_bin(tmp.path);
  EXPECT_EQ(loaded.images.shape().n(), 16);
  EXPECT_EQ(loaded.num_classes, 10);
  // Every label valid for a 10-way head.
  for (const int32_t y : loaded.labels) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 10);
  }
}

}  // namespace
}  // namespace dsx::data
