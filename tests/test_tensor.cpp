// Unit tests for src/tensor: shapes, storage, elementwise and channel ops,
// allocation tracking, RNG and serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "tensor/alloc_tracker.hpp"
#include "tensor/random.hpp"
#include "tensor/serialize.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"

namespace dsx {
namespace {

// ---- Shape ---------------------------------------------------------------

TEST(Shape, RankAndDims) {
  Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.rank(), 4);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(3), 5);
  EXPECT_EQ(s[1], 3);
}

TEST(Shape, NegativeIndexing) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(Shape, DimOutOfRangeThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s.dim(2), Error);
  EXPECT_THROW(s.dim(-3), Error);
}

TEST(Shape, Numel) {
  EXPECT_EQ((Shape{2, 3, 4}).numel(), 24);
  EXPECT_EQ(Shape{}.numel(), 1);
  EXPECT_EQ((Shape{5, 0, 2}).numel(), 0);
}

TEST(Shape, NegativeDimRejected) {
  EXPECT_THROW(Shape({2, -1}), Error);
}

TEST(Shape, NchwAccessors) {
  Shape s = make_nchw(2, 16, 8, 9);
  EXPECT_EQ(s.n(), 2);
  EXPECT_EQ(s.c(), 16);
  EXPECT_EQ(s.h(), 8);
  EXPECT_EQ(s.w(), 9);
}

TEST(Shape, NchwAccessorsRequireRank4) {
  Shape s{2, 3};
  EXPECT_THROW(s.n(), Error);
  EXPECT_THROW(s.c(), Error);
}

TEST(Shape, Strides) {
  Shape s{2, 3, 4};
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(Shape, EqualityAndToString) {
  EXPECT_EQ((Shape{1, 2}), (Shape{1, 2}));
  EXPECT_NE((Shape{1, 2}), (Shape{2, 1}));
  EXPECT_EQ((Shape{1, 2}).to_string(), "[1, 2]");
}

TEST(Shape, ConvOutSize) {
  EXPECT_EQ(conv_out_size(32, 3, 1, 1), 32);
  EXPECT_EQ(conv_out_size(32, 3, 2, 1), 16);
  EXPECT_EQ(conv_out_size(32, 1, 1, 0), 32);
  EXPECT_EQ(conv_out_size(5, 2, 2, 0), 2);
}

TEST(Shape, ConvOutSizeValidation) {
  EXPECT_THROW(conv_out_size(4, 0, 1, 0), Error);
  EXPECT_THROW(conv_out_size(4, 3, 0, 0), Error);
  EXPECT_THROW(conv_out_size(4, 3, 1, -1), Error);
  EXPECT_THROW(conv_out_size(2, 5, 1, 0), Error);
}

// ---- Tensor ----------------------------------------------------------------

TEST(Tensor, DefaultUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_THROW(t.data(), Error);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{4, 4});
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t(Shape{3}, 2.5f);
  EXPECT_EQ(t[0], 2.5f);
  EXPECT_EQ(t[2], 2.5f);
}

TEST(Tensor, CloneIsDeep) {
  Tensor a(Shape{2, 2}, 1.0f);
  Tensor b = a.clone();
  b[0] = 7.0f;
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_FALSE(a.shares_storage_with(b));
}

TEST(Tensor, CopyIsShallow) {
  Tensor a(Shape{2, 2}, 1.0f);
  Tensor b = a;
  b[0] = 7.0f;
  EXPECT_EQ(a[0], 7.0f);
  EXPECT_TRUE(a.shares_storage_with(b));
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor a(Shape{2, 6});
  Tensor b = a.reshape(Shape{3, 4});
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_EQ(b.shape(), (Shape{3, 4}));
}

TEST(Tensor, ReshapeNumelMismatchThrows) {
  Tensor a(Shape{2, 6});
  EXPECT_THROW(a.reshape(Shape{5}), Error);
}

TEST(Tensor, At4dRoundTrip) {
  Tensor t(make_nchw(2, 3, 4, 5));
  t.at(1, 2, 3, 4) = 42.0f;
  EXPECT_EQ(t.at(1, 2, 3, 4), 42.0f);
  // flat layout agreement
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 42.0f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t(make_nchw(1, 2, 2, 2));
  EXPECT_THROW(t.at(0, 2, 0, 0), Error);
  EXPECT_THROW(t.at(1, 0, 0, 0), Error);
  EXPECT_THROW(t.at(0, 0, -1, 0), Error);
}

TEST(Tensor, At2d) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 9.0f;
  EXPECT_EQ(t[5], 9.0f);
  EXPECT_THROW(t.at(2, 0), Error);
}

TEST(Tensor, FlatIndexBoundsChecked) {
  Tensor t(Shape{3});
  EXPECT_THROW(t[3], Error);
  EXPECT_THROW(t[-1], Error);
}

// ---- AllocationTracker --------------------------------------------------------

TEST(AllocationTracker, TracksLiveBytes) {
  auto& tracker = AllocationTracker::instance();
  const int64_t before = tracker.current_bytes();
  {
    Tensor t(Shape{1024});
    EXPECT_EQ(tracker.current_bytes(), before + 4096);
  }
  EXPECT_EQ(tracker.current_bytes(), before);
}

TEST(AllocationTracker, PeakScope) {
  PeakMemoryScope scope;
  { Tensor big(Shape{2048}); }
  { Tensor small(Shape{16}); }
  EXPECT_GE(scope.peak_delta(), 2048 * 4);
}

TEST(AllocationTracker, SharedStorageFreedOnce) {
  auto& tracker = AllocationTracker::instance();
  const int64_t before = tracker.current_bytes();
  {
    Tensor a(Shape{256});
    Tensor b = a;             // shared
    Tensor c = a.reshape(Shape{16, 16});
    EXPECT_EQ(tracker.current_bytes(), before + 1024);
  }
  EXPECT_EQ(tracker.current_bytes(), before);
}

// ---- elementwise ops ----------------------------------------------------------

TEST(TensorOps, AddAndInPlace) {
  Tensor a(Shape{3}, 1.0f), b(Shape{3}, 2.0f);
  Tensor c = add(a, b);
  EXPECT_EQ(c[1], 3.0f);
  add_(a, b);
  EXPECT_EQ(a[0], 3.0f);
}

TEST(TensorOps, ShapeMismatchThrows) {
  Tensor a(Shape{3}), b(Shape{4});
  EXPECT_THROW(add(a, b), Error);
  EXPECT_THROW(add_(a, b), Error);
  EXPECT_THROW(axpy_(a, 1.0f, b), Error);
  EXPECT_THROW(max_abs_diff(a, b), Error);
}

TEST(TensorOps, Axpy) {
  Tensor a(Shape{2}, 1.0f), b(Shape{2}, 3.0f);
  axpy_(a, 0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 2.5f);
}

TEST(TensorOps, Scale) {
  Tensor a(Shape{2}, 2.0f);
  scale_(a, -1.5f);
  EXPECT_FLOAT_EQ(a[1], -3.0f);
}

TEST(TensorOps, SumMeanMaxAbs) {
  Tensor a(Shape{4});
  a[0] = 1.0f;
  a[1] = -5.0f;
  a[2] = 2.0f;
  a[3] = 2.0f;
  EXPECT_DOUBLE_EQ(sum(a), 0.0);
  EXPECT_DOUBLE_EQ(mean(a), 0.0);
  EXPECT_FLOAT_EQ(max_abs(a), 5.0f);
}

TEST(TensorOps, MaxAbsDiff) {
  Tensor a(Shape{2}, 1.0f), b(Shape{2}, 1.0f);
  b[1] = 1.5f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.5f);
}

// ---- channel ops ---------------------------------------------------------------

Tensor make_ramp(int64_t n, int64_t c, int64_t h, int64_t w) {
  Tensor t(make_nchw(n, c, h, w));
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(i);
  return t;
}

TEST(ChannelOps, GatherSelectsChannels) {
  Tensor in = make_ramp(2, 4, 2, 2);
  const std::vector<int64_t> idx = {3, 1};
  Tensor out = gather_channels(in, idx);
  EXPECT_EQ(out.shape(), make_nchw(2, 2, 2, 2));
  EXPECT_EQ(out.at(0, 0, 0, 0), in.at(0, 3, 0, 0));
  EXPECT_EQ(out.at(1, 1, 1, 1), in.at(1, 1, 1, 1));
}

TEST(ChannelOps, GatherAllowsDuplicates) {
  Tensor in = make_ramp(1, 2, 1, 1);
  const std::vector<int64_t> idx = {0, 0, 1};
  Tensor out = gather_channels(in, idx);
  EXPECT_EQ(out.shape().c(), 3);
  EXPECT_EQ(out.at(0, 0, 0, 0), out.at(0, 1, 0, 0));
}

TEST(ChannelOps, GatherRejectsBadIndex) {
  Tensor in = make_ramp(1, 2, 1, 1);
  const std::vector<int64_t> idx = {2};
  EXPECT_THROW(gather_channels(in, idx), Error);
}

TEST(ChannelOps, SliceMatchesGather) {
  Tensor in = make_ramp(2, 5, 3, 3);
  Tensor s = slice_channels(in, 1, 4);
  EXPECT_EQ(s.shape().c(), 3);
  EXPECT_EQ(s.at(1, 0, 2, 2), in.at(1, 1, 2, 2));
  EXPECT_THROW(slice_channels(in, 3, 2), Error);
  EXPECT_THROW(slice_channels(in, 0, 6), Error);
}

TEST(ChannelOps, ConcatInvertsSlice) {
  Tensor in = make_ramp(2, 6, 2, 3);
  Tensor a = slice_channels(in, 0, 2);
  Tensor b = slice_channels(in, 2, 6);
  Tensor cat = concat_channels({a, b});
  EXPECT_EQ(cat.shape(), in.shape());
  EXPECT_FLOAT_EQ(max_abs_diff(cat, in), 0.0f);
}

TEST(ChannelOps, ConcatValidatesShapes) {
  Tensor a(make_nchw(1, 2, 2, 2));
  Tensor b(make_nchw(2, 2, 2, 2));
  EXPECT_THROW(concat_channels({a, b}), Error);
  EXPECT_THROW(concat_channels({}), Error);
}

TEST(ChannelOps, ScatterAddIsGatherAdjoint) {
  // <gather(x), y> == <x, scatter(y)> for any index list (adjoint property).
  Rng rng(7);
  Tensor x = random_uniform(make_nchw(2, 5, 3, 3), rng);
  const std::vector<int64_t> idx = {4, 0, 4, 2};
  Tensor y = random_uniform(make_nchw(2, 4, 3, 3), rng);
  const Tensor gx = gather_channels(x, idx);
  Tensor sy(x.shape());
  scatter_add_channels(sy, y, idx);
  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < gx.numel(); ++i) lhs += gx[i] * y[i];
  for (int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * sy[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(ChannelOps, ScatterAddAccumulatesDuplicates) {
  Tensor dst(make_nchw(1, 2, 1, 1));
  Tensor src(make_nchw(1, 3, 1, 1), 1.0f);
  const std::vector<int64_t> idx = {0, 0, 1};
  scatter_add_channels(dst, src, idx);
  EXPECT_FLOAT_EQ(dst.at(0, 0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(dst.at(0, 1, 0, 0), 1.0f);
}

TEST(ChannelOps, PadUnpadRoundTrip) {
  Tensor in = make_ramp(1, 2, 3, 3);
  Tensor padded = pad_spatial(in, 2);
  EXPECT_EQ(padded.shape(), make_nchw(1, 2, 7, 7));
  EXPECT_EQ(padded.at(0, 0, 0, 0), 0.0f);
  EXPECT_EQ(padded.at(0, 1, 2, 2), in.at(0, 1, 0, 0));
  Tensor back = unpad_spatial(padded, 2);
  EXPECT_FLOAT_EQ(max_abs_diff(back, in), 0.0f);
}

TEST(ChannelOps, PadZeroIsCopy) {
  Tensor in = make_ramp(1, 1, 2, 2);
  Tensor out = pad_spatial(in, 0);
  EXPECT_FALSE(out.shares_storage_with(in));
  EXPECT_FLOAT_EQ(max_abs_diff(out, in), 0.0f);
}

// ---- Rng -----------------------------------------------------------------------

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  Tensor ta(Shape{32}), tb(Shape{32}), tc(Shape{32});
  fill_uniform(ta, a, -1.0f, 1.0f);
  fill_uniform(tb, b, -1.0f, 1.0f);
  fill_uniform(tc, c, -1.0f, 1.0f);
  EXPECT_FLOAT_EQ(max_abs_diff(ta, tb), 0.0f);
  EXPECT_GT(max_abs_diff(ta, tc), 0.0f);
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  Tensor t(Shape{256});
  fill_uniform(t, rng, 2.0f, 3.0f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], 2.0f);
    EXPECT_LT(t[i], 3.0f);
  }
}

TEST(Rng, KaimingBound) {
  Rng rng(1);
  Tensor t(Shape{512});
  fill_kaiming(t, rng, 32);
  const float bound = std::sqrt(6.0f / 32.0f);
  EXPECT_LE(max_abs(t), bound);
  EXPECT_GT(max_abs(t), 0.5f * bound);  // actually spread out
}

TEST(Rng, RandintInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 200; ++i) {
    const int64_t v = rng.randint(-1, 1);
    EXPECT_GE(v, -1);
    EXPECT_LE(v, 1);
    saw_lo |= v == -1;
    saw_hi |= v == 1;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.randint(2, 1), Error);
}

// ---- serialization ---------------------------------------------------------------

TEST(Serialize, RoundTrip) {
  Rng rng(3);
  Tensor t = random_normal(make_nchw(2, 3, 4, 5), rng);
  std::stringstream ss;
  save_tensor(ss, t);
  Tensor back = load_tensor(ss);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_FLOAT_EQ(max_abs_diff(back, t), 0.0f);
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream ss;
  ss << "NOPE. . . . . . . . . . .";
  EXPECT_THROW(load_tensor(ss), Error);
}

TEST(Serialize, TruncatedPayloadRejected) {
  Rng rng(3);
  Tensor t = random_normal(Shape{64}, rng);
  std::stringstream ss;
  save_tensor(ss, t);
  std::string blob = ss.str();
  blob.resize(blob.size() / 2);
  std::stringstream half(blob);
  EXPECT_THROW(load_tensor(half), Error);
}

TEST(Serialize, UndefinedTensorRejected) {
  std::stringstream ss;
  Tensor t;
  EXPECT_THROW(save_tensor(ss, t), Error);
}

}  // namespace
}  // namespace dsx
