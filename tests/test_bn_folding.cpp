// Tests for inference-time batch-norm folding: outputs must be preserved
// exactly for every conv kind, folded models must lose their BN layers, and
// the transform must recurse through containers.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "data/synth.hpp"
#include "models/mobilenet.hpp"
#include "models/resnet.hpp"
#include "nn/bn_folding.hpp"
#include "nn/containers.hpp"
#include "nn/layers_basic.hpp"
#include "nn/layers_conv.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"
#include "tensor/tensor_ops.hpp"

namespace dsx::nn {
namespace {

/// Runs a few training steps so BN running stats are non-trivial.
void warm_up(Sequential& model, int64_t channels, int64_t image,
             uint64_t seed) {
  Rng rng(seed);
  SGD opt({.lr = 0.01f, .momentum = 0.9f, .weight_decay = 0.0f});
  Trainer trainer(model, opt);
  for (int step = 0; step < 5; ++step) {
    Tensor x = random_uniform(make_nchw(8, channels, image, image), rng,
                              -2.0f, 3.0f);
    const Shape out = model.output_shape(x.shape());
    std::vector<int32_t> labels(8);
    for (auto& y : labels) {
      y = static_cast<int32_t>(rng.randint(0, out.dim(1) - 1));
    }
    trainer.train_batch(x, labels);
  }
}

TEST(BnFolding, PreservesConv2dOutputs) {
  Rng rng(1);
  Sequential model;
  model.emplace<Conv2d>(3, 8, 3, 1, 1, 1, rng);
  model.emplace<BatchNorm2d>(8);
  model.emplace<ReLU>();
  model.emplace<GlobalAvgPool>();
  model.emplace<Flatten>();
  model.emplace<Linear>(8, 4, rng);
  warm_up(model, 3, 8, 11);

  Rng drng(2);
  Tensor x = random_uniform(make_nchw(3, 3, 8, 8), drng);
  const Tensor before = model.forward(x, /*training=*/false);
  EXPECT_EQ(fold_batchnorm(model), 1);
  const Tensor after = model.forward(x, /*training=*/false);
  EXPECT_LT(max_abs_diff(before, after), 1e-4f);
}

TEST(BnFolding, PreservesDepthwiseOutputs) {
  Rng rng(3);
  Sequential model;
  model.emplace<DepthwiseConv2d>(4, 3, 1, 1, rng);
  model.emplace<BatchNorm2d>(4);
  model.emplace<GlobalAvgPool>();
  model.emplace<Flatten>();
  model.emplace<Linear>(4, 2, rng);
  warm_up(model, 4, 6, 13);

  Rng drng(4);
  Tensor x = random_uniform(make_nchw(2, 4, 6, 6), drng);
  const Tensor before = model.forward(x, false);
  EXPECT_EQ(fold_batchnorm(model), 1);
  EXPECT_LT(max_abs_diff(model.forward(x, false), before), 1e-4f);
}

TEST(BnFolding, PreservesSCCOutputs) {
  Rng rng(5);
  scc::SCCConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 16;
  cfg.groups = 2;
  cfg.overlap = 0.5;
  Sequential model;
  model.emplace<SCCConv>(cfg, rng);
  model.emplace<BatchNorm2d>(16);
  model.emplace<GlobalAvgPool>();
  model.emplace<Flatten>();
  model.emplace<Linear>(16, 4, rng);
  warm_up(model, 8, 6, 17);

  Rng drng(6);
  Tensor x = random_uniform(make_nchw(2, 8, 6, 6), drng);
  const Tensor before = model.forward(x, false);
  EXPECT_EQ(fold_batchnorm(model), 1);
  EXPECT_LT(max_abs_diff(model.forward(x, false), before), 1e-4f);
}

TEST(BnFolding, AddsBiasWhereConvHadNone) {
  Rng rng(7);
  Sequential model;
  auto& conv = model.emplace<Conv2d>(2, 4, 1, 1, 0, 1, rng, /*bias=*/false);
  model.emplace<BatchNorm2d>(4);
  EXPECT_EQ(conv.bias_param(), nullptr);
  fold_batchnorm(model);
  ASSERT_NE(conv.bias_param(), nullptr);
  // With fresh BN (mean 0, var 1, beta 0) the folded bias is ~0.
  EXPECT_LT(max_abs(conv.bias_param()->value), 1e-4f);
}

TEST(BnFolding, FoldsWholeMobileNet) {
  Rng rng(8);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWSCC;
  cfg.cg = 2;
  cfg.co = 0.5;
  cfg.width_mult = 0.125;
  auto model = models::build_mobilenet(4, cfg, rng);
  warm_up(*model, 3, 16, 19);

  Rng drng(9);
  Tensor x = random_uniform(make_nchw(2, 3, 16, 16), drng);
  const Tensor before = model->forward(x, false);
  // MobileNet: stem BN + 13 blocks x 2 BNs = 27 folds.
  const int folded = fold_batchnorm(*model);
  EXPECT_EQ(folded, 27);
  EXPECT_LT(max_abs_diff(model->forward(x, false), before), 2e-4f);

  // All BN layers are gone (replaced by Identity).
  int bn_left = 0;
  model->for_each_layer([&](Layer& l) {
    if (dynamic_cast<BatchNorm2d*>(&l) != nullptr) ++bn_left;
  });
  EXPECT_EQ(bn_left, 0);
}

TEST(BnFolding, RecursesThroughResidualBlocks) {
  Rng rng(10);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWSCC;
  cfg.cg = 2;
  cfg.co = 0.5;
  cfg.width_mult = 0.125;
  auto model = models::build_resnet(18, 4, cfg, rng);
  warm_up(*model, 3, 16, 23);

  Rng drng(11);
  Tensor x = random_uniform(make_nchw(2, 3, 16, 16), drng);
  const Tensor before = model->forward(x, false);
  const int folded = fold_batchnorm(*model);
  EXPECT_GT(folded, 10);  // stem + every block branch + projections
  EXPECT_LT(max_abs_diff(model->forward(x, false), before), 2e-4f);
}

TEST(BnFolding, NoPairsMeansNoChange) {
  Rng rng(12);
  Sequential model;
  model.emplace<ReLU>();
  model.emplace<Flatten>();
  EXPECT_EQ(fold_batchnorm(model), 0);
}

TEST(BnFolding, IdentityLayerPassesThrough) {
  Identity id;
  Rng rng(13);
  Tensor x = random_uniform(make_nchw(1, 2, 3, 3), rng);
  Tensor y = id.forward(x, true);
  EXPECT_TRUE(y.shares_storage_with(x));
  Tensor g = id.backward(y);
  EXPECT_TRUE(g.shares_storage_with(y));
  EXPECT_EQ(id.output_shape(x.shape()), x.shape());
}

}  // namespace
}  // namespace dsx::nn
