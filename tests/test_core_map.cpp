// Tests for the SCC channel-window map (paper Algorithm 1 / Fig. 5):
// cyclic-distance theory, window invariants, corner-case equivalences and
// configuration validation.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/check.hpp"
#include "core/channel_map.hpp"

namespace dsx::scc {
namespace {

SCCConfig make_cfg(int64_t cin, int64_t cout, int64_t cg, double co,
                   int64_t stride = 1) {
  SCCConfig cfg;
  cfg.in_channels = cin;
  cfg.out_channels = cout;
  cfg.groups = cg;
  cfg.overlap = co;
  cfg.stride = stride;
  return cfg;
}

// ---- paper examples ---------------------------------------------------------

TEST(ChannelMap, PaperFig5aCyclicDistance) {
  // Cin=4, cg=2, co=50% -> cyclic_dist = 4 (paper Fig. 5(a)).
  ChannelWindowMap map(make_cfg(4, 8, 2, 0.5));
  EXPECT_EQ(map.group_width(), 2);
  EXPECT_EQ(map.overlap_channels(), 1);
  EXPECT_EQ(map.step(), 1);
  EXPECT_EQ(map.cyclic_dist(), 4);
}

TEST(ChannelMap, PaperFig5bCyclicDistance) {
  // Cin=6, cg=2, co=33% (=1/3) -> cyclic_dist = 3 (paper Fig. 5(b)).
  ChannelWindowMap map(make_cfg(6, 6, 2, 1.0 / 3.0));
  EXPECT_EQ(map.group_width(), 3);
  EXPECT_EQ(map.overlap_channels(), 1);
  EXPECT_EQ(map.cyclic_dist(), 3);
}

TEST(ChannelMap, PaperFig5bAtLiteral33Percent) {
  // 0.33 (not exactly 1/3) must round the same way - this is precisely why
  // the implementation uses llround instead of Algorithm 1's floor.
  ChannelWindowMap map(make_cfg(6, 6, 2, 0.33));
  EXPECT_EQ(map.overlap_channels(), 1);
  EXPECT_EQ(map.cyclic_dist(), 3);
}

TEST(ChannelMap, PaperFig2cWindows) {
  // Fig. 2(c): Cin=4, cg=2, co=50%: filter 2 reads {Cin1, Cin2}; filter 3
  // wraps to {Cin3, Cin0}.
  ChannelWindowMap map(make_cfg(4, 8, 2, 0.5));
  EXPECT_EQ(map.window(0).start, 0);
  EXPECT_EQ(map.window(1).start, 1);
  EXPECT_EQ(map.input_channel(1, 0), 1);
  EXPECT_EQ(map.input_channel(1, 1), 2);
  EXPECT_EQ(map.input_channel(3, 0), 3);
  EXPECT_EQ(map.input_channel(3, 1), 0);  // wrap-around
}

// ---- corner cases (paper Table I) ---------------------------------------------

TEST(ChannelMap, PwCornerCase) {
  // PW = SCC with 1 group and 100% overlap: every filter covers all inputs
  // starting at 0.
  ChannelWindowMap map(make_cfg(8, 16, 1, 1.0));
  EXPECT_EQ(map.group_width(), 8);
  EXPECT_EQ(map.step(), 0);
  EXPECT_EQ(map.cyclic_dist(), 1);
  for (int64_t f = 0; f < 16; ++f) {
    EXPECT_EQ(map.window(f).start, 0);
    EXPECT_EQ(map.window(f).width, 8);
  }
}

TEST(ChannelMap, GpwCornerCase) {
  // GPW = SCC with m groups and 0% overlap: exactly m distinct windows, each
  // aligned to a group boundary.
  ChannelWindowMap map(make_cfg(8, 16, 4, 0.0));
  EXPECT_EQ(map.step(), 2);
  EXPECT_EQ(map.cyclic_dist(), 4);
  std::set<int64_t> starts;
  for (int64_t f = 0; f < 16; ++f) {
    const ChannelWindow w = map.window(f);
    EXPECT_EQ(w.start % 2, 0);  // group aligned
    starts.insert(w.start);
  }
  EXPECT_EQ(starts.size(), 4u);
}

// ---- parameterized invariants ---------------------------------------------------

struct MapCase {
  int64_t cin, cout, cg;
  double co;
};

class MapInvariants : public ::testing::TestWithParam<MapCase> {};

TEST_P(MapInvariants, WindowWidthIsGroupWidth) {
  const MapCase p = GetParam();
  ChannelWindowMap map(make_cfg(p.cin, p.cout, p.cg, p.co));
  for (int64_t f = 0; f < p.cout; ++f) {
    EXPECT_EQ(map.window(f).width, map.group_width());
  }
}

TEST_P(MapInvariants, StartsAdvanceByStepModCin) {
  const MapCase p = GetParam();
  ChannelWindowMap map(make_cfg(p.cin, p.cout, p.cg, p.co));
  for (int64_t f = 0; f + 1 < p.cout; ++f) {
    EXPECT_EQ(map.window(f + 1).start,
              (map.window(f).start + map.step()) % p.cin);
  }
}

TEST_P(MapInvariants, WindowsRepeatWithCyclicDistance) {
  const MapCase p = GetParam();
  ChannelWindowMap map(make_cfg(p.cin, p.cout, p.cg, p.co));
  const int64_t dist = map.cyclic_dist();
  for (int64_t f = 0; f + dist < p.cout; ++f) {
    EXPECT_EQ(map.window(f).start, map.window(f + dist).start);
  }
  // And windows within one cycle are pairwise distinct.
  std::set<int64_t> starts;
  for (int64_t f = 0; f < std::min<int64_t>(dist, p.cout); ++f) {
    starts.insert(map.window(f).start);
  }
  EXPECT_EQ(static_cast<int64_t>(starts.size()),
            std::min<int64_t>(dist, p.cout));
}

TEST_P(MapInvariants, CyclicDistDividesCinOverGcd) {
  const MapCase p = GetParam();
  ChannelWindowMap map(make_cfg(p.cin, p.cout, p.cg, p.co));
  if (map.step() == 0) {
    EXPECT_EQ(map.cyclic_dist(), 1);
  } else {
    EXPECT_EQ(map.cyclic_dist(), p.cin / std::gcd(map.step(), p.cin));
  }
}

TEST_P(MapInvariants, ContributorsMatchForwardMap) {
  const MapCase p = GetParam();
  ChannelWindowMap map(make_cfg(p.cin, p.cout, p.cg, p.co));
  // Total (filter, tap) pairs must equal Cout * gw, and every recorded
  // contributor must agree with the forward input_channel mapping.
  int64_t total = 0;
  for (int64_t ic = 0; ic < p.cin; ++ic) {
    for (const auto& contrib : map.contributors(ic)) {
      EXPECT_EQ(map.input_channel(contrib.filter, contrib.k), ic);
      ++total;
    }
  }
  EXPECT_EQ(total, p.cout * map.group_width());
}

TEST_P(MapInvariants, EveryChannelReadWhenEnoughFilters) {
  const MapCase p = GetParam();
  ChannelWindowMap map(make_cfg(p.cin, p.cout, p.cg, p.co));
  if (p.cout >= map.cyclic_dist() * 1) {
    // One full cycle of windows covers every channel at least once when the
    // windows tile the ring (gw * dist >= Cin always holds: gw >= gcd(step,
    // Cin) is not generally enough, but gw >= step means consecutive windows
    // are gap-free).
    if (map.group_width() >= map.step()) {
      for (int64_t ic = 0; ic < p.cin; ++ic) {
        EXPECT_FALSE(map.contributors(ic).empty())
            << "channel " << ic << " never read: " << map.config().to_string();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MapInvariants,
    ::testing::Values(MapCase{4, 8, 2, 0.5}, MapCase{6, 6, 2, 1.0 / 3.0},
                      MapCase{8, 16, 1, 1.0}, MapCase{8, 16, 4, 0.0},
                      MapCase{8, 16, 2, 0.5}, MapCase{8, 16, 2, 0.25},
                      MapCase{8, 16, 2, 0.75}, MapCase{16, 32, 8, 0.5},
                      MapCase{16, 8, 4, 1.0 / 3.0}, MapCase{12, 24, 3, 0.5},
                      MapCase{64, 128, 2, 0.5}, MapCase{64, 128, 8, 0.25},
                      MapCase{10, 5, 5, 0.5}, MapCase{9, 27, 3, 2.0 / 3.0}));

// ---- Algorithm 1 cross-validation ----------------------------------------------

TEST(ChannelMap, MatchesAlgorithm1AtExactOverlaps) {
  // Where co*gw is exactly integral, the literal floor-based Algorithm 1 and
  // our rounded closed form must produce identical cycles.
  struct Case {
    int64_t cin, cg;
    double co;
  };
  const Case cases[] = {
      {4, 2, 0.5}, {8, 2, 0.5}, {8, 2, 0.25}, {8, 4, 0.0}, {16, 4, 0.5},
      {12, 3, 0.5}, {6, 2, 0.0},
  };
  for (const Case& c : cases) {
    ChannelWindowMap map(make_cfg(c.cin, 4 * c.cin, c.cg, c.co));
    const auto ref = ChannelWindowMap::algorithm1_reference(
        c.cin, c.cg, c.co, 4 * c.cin);
    ASSERT_EQ(static_cast<int64_t>(ref.size()), map.cyclic_dist())
        << "Cin=" << c.cin << " cg=" << c.cg << " co=" << c.co;
    for (size_t f = 0; f < ref.size(); ++f) {
      EXPECT_EQ(ref[f].first, map.window(static_cast<int64_t>(f)).start);
    }
  }
}

// ---- validation ------------------------------------------------------------------

TEST(ChannelMap, RejectsNonDivisibleGroups) {
  EXPECT_THROW(ChannelWindowMap(make_cfg(6, 8, 4, 0.5)), Error);
}

TEST(ChannelMap, RejectsOutOfRangeOverlap) {
  EXPECT_THROW(ChannelWindowMap(make_cfg(8, 8, 2, -0.1)), Error);
  EXPECT_THROW(ChannelWindowMap(make_cfg(8, 8, 2, 1.1)), Error);
}

TEST(ChannelMap, RejectsNonPositiveDims) {
  EXPECT_THROW(ChannelWindowMap(make_cfg(0, 8, 1, 0.5)), Error);
  EXPECT_THROW(ChannelWindowMap(make_cfg(8, 0, 1, 0.5)), Error);
  EXPECT_THROW(ChannelWindowMap(make_cfg(8, 8, 0, 0.5)), Error);
  EXPECT_THROW(ChannelWindowMap(make_cfg(8, 8, 2, 0.5, 0)), Error);
}

TEST(ChannelMap, WindowIndexBoundsChecked) {
  ChannelWindowMap map(make_cfg(4, 8, 2, 0.5));
  EXPECT_THROW(map.window(8), Error);
  EXPECT_THROW(map.window(-1), Error);
  EXPECT_THROW(map.input_channel(0, 2), Error);
  EXPECT_THROW(map.contributors(4), Error);
}

TEST(ChannelMap, ConfigToString) {
  const SCCConfig cfg = make_cfg(8, 16, 2, 0.5);
  EXPECT_NE(cfg.to_string().find("cg=2"), std::string::npos);
  EXPECT_NE(cfg.to_string().find("co=50"), std::string::npos);
}

}  // namespace
}  // namespace dsx::scc
