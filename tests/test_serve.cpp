// Tests for the serving runtime (src/serve): compiled plans must report the
// expected BN folds, dynamic-batched inference must be bit-identical to
// per-image eval-mode forward (for folded FP32 and quantized SCC models),
// concurrent clients must each be answered exactly once, and the Workspace
// arena must stop per-call allocation growth in steady state.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "core/scc_gemm.hpp"
#include "nn/bn_folding.hpp"
#include "nn/containers.hpp"
#include "nn/layers_basic.hpp"
#include "nn/layers_conv.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"
#include "ops/conv2d.hpp"
#include "quant/quant_layers.hpp"
#include "serve/batcher.hpp"
#include "serve/compiled_model.hpp"
#include "serve/server.hpp"
#include "tensor/random.hpp"
#include "tensor/workspace.hpp"
#include "testing_utils.hpp"

namespace dsx::serve {
namespace {

constexpr int64_t kImage = 8;
constexpr int64_t kClasses = 10;

/// Small conv -> DW -> SCC classifier with three foldable BN pairs.
std::unique_ptr<nn::Sequential> make_scc_model(uint64_t seed) {
  Rng rng(seed);
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Conv2d>(3, 16, 3, 1, 1, 1, rng);
  seq->emplace<nn::BatchNorm2d>(16);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::DepthwiseConv2d>(16, 3, 1, 1, rng);
  seq->emplace<nn::BatchNorm2d>(16);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::SCCConv>(
      scc::SCCConfig{.in_channels = 16, .out_channels = 32, .groups = 2,
                     .overlap = 0.5, .stride = 1},
      rng);
  seq->emplace<nn::BatchNorm2d>(32);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::GlobalAvgPool>();
  seq->emplace<nn::Flatten>();
  seq->emplace<nn::Linear>(32, kClasses, rng);
  return seq;
}

/// A few SGD steps so BN running statistics are non-trivial before folding.
void warm_up(nn::Sequential& model, uint64_t seed) {
  Rng rng(seed);
  nn::SGD opt({.lr = 0.01f, .momentum = 0.9f, .weight_decay = 0.0f});
  nn::Trainer trainer(model, opt);
  for (int step = 0; step < 3; ++step) {
    Tensor x = random_uniform(make_nchw(8, 3, kImage, kImage), rng,
                              -2.0f, 3.0f);
    std::vector<int32_t> labels(8);
    for (auto& y : labels) {
      y = static_cast<int32_t>(rng.randint(0, kClasses - 1));
    }
    trainer.train_batch(x, labels);
  }
}

std::vector<Tensor> make_images(int64_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> images;
  for (int64_t i = 0; i < count; ++i) {
    images.push_back(
        random_uniform(make_nchw(1, 3, kImage, kImage), rng, -1.0f, 1.0f));
  }
  return images;
}

/// Reference answers from the compiled (already folded/quantized) model's own
/// per-image eval forward - exactly what batched serving must reproduce.
std::vector<Tensor> per_image_reference(CompiledModel& compiled,
                                        const std::vector<Tensor>& images) {
  std::vector<Tensor> refs;
  for (const Tensor& img : images) {
    refs.push_back(compiled.model().forward(img, /*training=*/false));
  }
  return refs;
}

using testing::bit_identical;

// ---- Workspace -------------------------------------------------------------

TEST(Workspace, ReusesMemoryAcrossResets) {
  Workspace ws;
  float* a = ws.alloc(100);
  float* b = ws.alloc(200);
  EXPECT_NE(a, b);
  const int64_t cap = ws.capacity_floats();
  ws.reset();
  EXPECT_EQ(ws.used_floats(), 0);
  // Same request pattern lands on the same memory, no growth.
  EXPECT_EQ(ws.alloc(100), a);
  EXPECT_EQ(ws.alloc(200), b);
  EXPECT_EQ(ws.capacity_floats(), cap);
  EXPECT_GE(ws.peak_floats(), 300);
}

TEST(Workspace, TensorsAliasArenaMemory) {
  Workspace ws;
  Tensor t = ws.alloc_tensor(Shape{4, 4});
  t.fill(3.0f);
  EXPECT_EQ(t[0], 3.0f);
  ws.reset();
  Tensor u = ws.alloc_tensor(Shape{4, 4});
  EXPECT_EQ(u.data(), t.data());  // recycled, not reallocated
}

TEST(Workspace, ConvForwardIntoMatchesAllocatingPath) {
  Rng rng(3);
  Tensor x = random_uniform(make_nchw(2, 8, 10, 10), rng);
  Tensor w = random_uniform(Shape{12, 8, 3, 3}, rng);
  Conv2dArgs args{.stride = 1, .pad = 1, .groups = 1};
  Tensor expect = conv2d_forward(x, w, nullptr, args);

  Workspace ws;
  ws.reserve(conv2d_workspace_floats(x.shape(), w.shape(), args));
  Tensor out(conv2d_output_shape(x.shape(), w.shape(), args));
  conv2d_forward_into(x, w, nullptr, args, ws, out);
  EXPECT_TRUE(bit_identical(expect, out));

  // Second call must not grow the arena.
  const int64_t cap = ws.capacity_floats();
  ws.reset();
  conv2d_forward_into(x, w, nullptr, args, ws, out);
  EXPECT_EQ(ws.capacity_floats(), cap);
}

TEST(Workspace, SCCGemmWorkspaceVariantMatches) {
  Rng rng(4);
  scc::SCCConfig cfg{.in_channels = 8, .out_channels = 12, .groups = 2,
                     .overlap = 0.5, .stride = 1};
  scc::ChannelWindowMap map(cfg);
  Tensor x = random_uniform(make_nchw(2, 8, 6, 6), rng);
  Tensor w = random_uniform(Shape{12, map.group_width()}, rng);
  Tensor expect = scc::scc_forward_gemm(x, w, nullptr, map);

  Workspace ws;
  ws.reserve(scc::scc_gemm_workspace_floats(x.shape(), map));
  Tensor got = scc::scc_forward_gemm_ws(x, w, nullptr, map, ws);
  EXPECT_TRUE(bit_identical(expect, got));
}

// ---- CompiledModel ---------------------------------------------------------

TEST(CompiledModel, ReportsExpectedBnFoldCount) {
  auto model = make_scc_model(21);
  warm_up(*model, 22);
  CompiledModel compiled(std::move(model), Shape{3, kImage, kImage},
                         {.max_batch = 4});
  EXPECT_EQ(compiled.report().bn_folded, 3);
  EXPECT_EQ(compiled.report().identities_stripped, 3);
  EXPECT_GT(compiled.report().param_floats, 0);
  EXPECT_GT(compiled.report().workspace_floats, 0);
  // 12 layers - 3 stripped identities (the fold replaces BN in place; the
  // compile pass then removes the placeholders).
  EXPECT_EQ(compiled.report().steps, 9);
}

TEST(CompiledModel, FreezesCompositionSCCImplsToFused) {
  Rng rng(31);
  auto model = std::make_unique<nn::Sequential>();
  model->emplace<nn::SCCConv>(
      scc::SCCConfig{.in_channels = 8, .out_channels = 8, .groups = 2,
                     .overlap = 0.5, .stride = 1},
      rng, /*bias=*/false, nn::SCCImpl::kChannelStack);
  CompiledModel compiled(std::move(model), Shape{8, 4, 4}, {.max_batch = 2});
  EXPECT_EQ(compiled.report().scc_frozen, 1);
  auto* scc_layer = dynamic_cast<nn::SCCConv*>(&compiled.model().layer(0));
  ASSERT_NE(scc_layer, nullptr);
  EXPECT_EQ(scc_layer->impl(), nn::SCCImpl::kFused);
}

TEST(CompiledModel, BatchedRunBitIdenticalToPerImageEval) {
  auto model = make_scc_model(41);
  warm_up(*model, 42);
  CompiledModel compiled(std::move(model), Shape{3, kImage, kImage},
                         {.max_batch = 4});
  const auto images = make_images(4, 43);
  const auto refs = per_image_reference(compiled, images);

  Tensor batch(compiled.input_shape(4));
  const int64_t floats = Shape{3, kImage, kImage}.numel();
  for (int64_t i = 0; i < 4; ++i) {
    std::memcpy(batch.data() + i * floats, images[static_cast<size_t>(i)].data(),
                static_cast<size_t>(floats) * sizeof(float));
  }
  Tensor out = compiled.run(batch);
  ASSERT_EQ(out.shape(), compiled.output_shape(4));
  for (int64_t i = 0; i < 4; ++i) {
    const Tensor& ref = refs[static_cast<size_t>(i)];
    ASSERT_EQ(ref.numel(), kClasses);
    EXPECT_EQ(std::memcmp(out.data() + i * kClasses, ref.data(),
                          sizeof(float) * kClasses),
              0)
        << "image " << i << " diverged from per-image eval forward";
  }
}

TEST(CompiledModel, SteadyStateRunsDoNotGrowWorkspace) {
  auto model = make_scc_model(51);
  CompiledModel compiled(std::move(model), Shape{3, kImage, kImage},
                         {.max_batch = 4});
  Tensor batch(compiled.input_shape(4));
  (void)compiled.run(batch);
  const int64_t floats = compiled.report().workspace_floats;
  for (int i = 0; i < 3; ++i) (void)compiled.run(batch);
  EXPECT_EQ(compiled.report().workspace_floats, floats);
}

// ---- DynamicBatcher / InferenceServer --------------------------------------

TEST(DynamicBatcher, CoalescedAnswersMatchPerImageEval) {
  auto model = make_scc_model(61);
  warm_up(*model, 62);
  auto compiled = std::make_unique<CompiledModel>(
      std::move(model), Shape{3, kImage, kImage}, CompileOptions{.max_batch = 4});
  const auto images = make_images(8, 63);
  const auto refs = per_image_reference(*compiled, images);

  DynamicBatcher batcher(*compiled,
                         {.max_batch = 4,
                          .max_delay = std::chrono::microseconds(2000)});
  std::vector<std::future<Tensor>> futures;
  for (const Tensor& img : images) futures.push_back(batcher.submit(img));
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_TRUE(bit_identical(futures[i].get(), refs[i])) << "request " << i;
  }
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.requests, 8);
  EXPECT_GE(stats.batches, 2);  // 8 requests cannot fit one batch of 4
  EXPECT_EQ(stats.latency.count, 8);
}

TEST(DynamicBatcher, StopDrainsPendingRequests) {
  auto model = make_scc_model(71);
  auto compiled = std::make_unique<CompiledModel>(
      std::move(model), Shape{3, kImage, kImage}, CompileOptions{.max_batch = 2});
  auto batcher = std::make_unique<DynamicBatcher>(
      *compiled, BatcherOptions{.max_batch = 2,
                                .max_delay = std::chrono::microseconds(50000)});
  const auto images = make_images(5, 72);
  std::vector<std::future<Tensor>> futures;
  for (const Tensor& img : images) futures.push_back(batcher->submit(img));
  batcher->stop();  // must answer all five before joining
  for (auto& f : futures) EXPECT_EQ(f.get().numel(), kClasses);
  EXPECT_THROW(batcher->submit(images[0]), Error);
}

TEST(InferenceServer, ConcurrentClientsEachAnsweredExactlyOnce) {
  constexpr int kClients = 6;
  constexpr int kPerClient = 8;
  constexpr int kDistinct = 8;

  auto fp32 = make_scc_model(81);
  warm_up(*fp32, 82);
  auto compiled = std::make_unique<CompiledModel>(
      std::move(fp32), Shape{3, kImage, kImage}, CompileOptions{.max_batch = 4});
  const auto images = make_images(kDistinct, 83);
  const auto refs = per_image_reference(*compiled, images);

  InferenceServer server;
  server.register_model("scc", std::move(compiled),
                        {.max_batch = 4,
                         .max_delay = std::chrono::microseconds(500)});

  std::atomic<int> answered{0};
  std::atomic<int> mismatched{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int k = 0; k < kPerClient; ++k) {
        const size_t j = static_cast<size_t>((t * kPerClient + k) % kDistinct);
        Tensor y = server.infer("scc", images[j]);
        if (!bit_identical(y, refs[j])) mismatched.fetch_add(1);
        answered.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(answered.load(), kClients * kPerClient);
  EXPECT_EQ(mismatched.load(), 0);
  const ModelStats stats = server.stats("scc");
  EXPECT_EQ(stats.batcher.requests, kClients * kPerClient);
  EXPECT_EQ(stats.batcher.latency.count, kClients * kPerClient);
  EXPECT_GT(stats.batcher.qps, 0.0);
  EXPECT_LE(stats.batcher.latency.p50_ms, stats.batcher.latency.p99_ms);
}

TEST(InferenceServer, ServesQuantizedSCCModelBitIdentical) {
  constexpr int kClients = 4;
  auto model = make_scc_model(91);
  warm_up(*model, 92);
  // Post-training quantization pipeline: fold, calibrate, swap SCC -> int8.
  ASSERT_EQ(nn::fold_batchnorm(*model), 3);
  Rng rng(93);
  Tensor calibration =
      random_uniform(make_nchw(8, 3, kImage, kImage), rng, -1.0f, 1.0f);
  const quant::QuantizeReport qreport =
      quant::quantize_scc_layers(*model, calibration);
  ASSERT_EQ(qreport.layers_quantized, 1);

  auto compiled = std::make_unique<CompiledModel>(
      std::move(model), Shape{3, kImage, kImage}, CompileOptions{.max_batch = 4});
  EXPECT_EQ(compiled->report().bn_folded, 0);  // already folded upstream
  const auto images = make_images(6, 94);
  const auto refs = per_image_reference(*compiled, images);

  InferenceServer server;
  server.register_model("qscc", std::move(compiled),
                        {.max_batch = 4,
                         .max_delay = std::chrono::microseconds(500)});
  std::atomic<int> mismatched{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int k = 0; k < 6; ++k) {
        const size_t j = static_cast<size_t>((t + k) % 6);
        Tensor y = server.infer("qscc", images[j]);
        if (!bit_identical(y, refs[j])) mismatched.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatched.load(), 0);
  EXPECT_EQ(server.stats("qscc").batcher.requests, kClients * 6);
}

TEST(InferenceServer, RoutesBetweenMultipleModels) {
  auto a = make_scc_model(101);
  auto b = make_scc_model(102);  // different seed -> different weights
  auto ca = std::make_unique<CompiledModel>(std::move(a),
                                            Shape{3, kImage, kImage},
                                            CompileOptions{.max_batch = 2});
  auto cb = std::make_unique<CompiledModel>(std::move(b),
                                            Shape{3, kImage, kImage},
                                            CompileOptions{.max_batch = 2});
  const auto images = make_images(1, 103);
  const Tensor ref_a = ca->model().forward(images[0], false);
  const Tensor ref_b = cb->model().forward(images[0], false);

  InferenceServer server;
  server.register_model("a", std::move(ca));
  server.register_model("b", std::move(cb));
  EXPECT_TRUE(server.has_model("a"));
  EXPECT_FALSE(server.has_model("c"));
  EXPECT_EQ(server.model_names().size(), 2u);
  EXPECT_TRUE(bit_identical(server.infer("a", images[0]), ref_a));
  EXPECT_TRUE(bit_identical(server.infer("b", images[0]), ref_b));
  EXPECT_FALSE(bit_identical(ref_a, ref_b));
  EXPECT_THROW(server.infer("missing", images[0]), Error);
  EXPECT_THROW(
      server.register_model("a", nullptr), Error);
}

TEST(DynamicBatcher, OptionsAreValidatedAtConstruction) {
  auto model = make_scc_model(75);
  CompiledModel compiled(std::move(model), Shape{3, kImage, kImage},
                         {.max_batch = 2});
  EXPECT_THROW(DynamicBatcher(compiled, {.max_batch = -1}),
               std::invalid_argument);
  EXPECT_THROW(
      DynamicBatcher(compiled, {.max_delay = std::chrono::microseconds(-1)}),
      std::invalid_argument);
  EXPECT_THROW(DynamicBatcher(compiled, {.queue_capacity = -3}),
               std::invalid_argument);
  EXPECT_THROW(DynamicBatcher(compiled, {.replicas = 0}),
               std::invalid_argument);
  // max_batch = 0 remains the documented "use the model's max_batch".
  DynamicBatcher ok(compiled, {.max_batch = 0});
  ok.stop();
}

TEST(DynamicBatcher, BoundedQueueRejectsWhenFull) {
  auto model = make_scc_model(76);
  CompiledModel compiled(std::move(model), Shape{3, kImage, kImage},
                         {.max_batch = 2});
  // A stopped-up batcher: huge delay so the queue holds requests while we
  // overfill it.
  DynamicBatcher batcher(compiled,
                         {.max_batch = 2,
                          .max_delay = std::chrono::microseconds(200000),
                          .queue_capacity = 2});
  const auto images = make_images(4, 77);
  std::vector<std::future<Tensor>> futures;
  int rejected = 0;
  for (const Tensor& img : images) {
    try {
      futures.push_back(batcher.submit(img));
    } catch (const QueueFull&) {
      ++rejected;
    }
  }
  // The worker may have already drained early submissions, so rejection is
  // load-dependent - but capacity 2 with 4 instant submissions must reject
  // at least one on this single-batch-in-flight setup... unless the worker
  // raced ahead; accept either, but every accepted request must answer.
  batcher.stop();
  for (auto& f : futures) EXPECT_EQ(f.get().numel(), kClasses);
  EXPECT_EQ(batcher.stats().requests,
            static_cast<int64_t>(futures.size()));
  (void)rejected;
}

TEST(DynamicBatcher, DeadlineAwareSubmitPassesThroughToTheEngine) {
  // DynamicBatcher is a FIFO wrapper over shard::DeadlineBatcher; the
  // deadline-aware overload gets real shedding with visible counters.
  auto model = make_scc_model(74);
  CompiledModel compiled(std::move(model), Shape{3, kImage, kImage},
                         {.max_batch = 2});
  DynamicBatcher batcher(compiled);
  const auto images = make_images(2, 73);
  auto doomed = batcher.submit(
      images[0],
      {.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1)});
  EXPECT_THROW(doomed.get(), DeadlineExceeded);
  EXPECT_EQ(batcher.infer(images[1]).numel(), kClasses);
  EXPECT_EQ(batcher.deadline_stats().shed, 1);
  EXPECT_EQ(batcher.stats().requests, 1);  // sheds never hit a batch
}

TEST(InferenceServer, StopSubmitRaceAnswersOrRejectsEveryRequest) {
  constexpr int kClients = 6;
  constexpr int kPerClient = 40;
  auto model = make_scc_model(78);
  auto compiled = std::make_unique<CompiledModel>(
      std::move(model), Shape{3, kImage, kImage},
      CompileOptions{.max_batch = 4});
  const auto images = make_images(4, 79);

  InferenceServer server;
  server.register_model("scc", std::move(compiled),
                        {.max_batch = 4,
                         .max_delay = std::chrono::microseconds(200)});

  // One request answered deterministically before the race begins, so the
  // answered > 0 assertion below cannot flake on a loaded host.
  ASSERT_EQ(server.infer("scc", images[0]).numel(), kClasses);

  // N threads submit while the main thread stops the server mid-stream.
  // Contract: every submit() either returns a future that IS answered
  // (stop drains the queue) or throws the stopped error - no hangs, no
  // dropped promises.
  std::atomic<int> answered{1};  // the warm-up request above
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int k = 0; k < kPerClient; ++k) {
        try {
          Tensor y =
              server.infer("scc", images[static_cast<size_t>(t + k) % 4]);
          if (y.numel() == kClasses) answered.fetch_add(1);
        } catch (const Error&) {
          rejected.fetch_add(1);
        }
      }
    });
  }
  // Let some traffic through, then slam the door.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.stop();
  for (auto& c : clients) c.join();
  EXPECT_EQ(answered.load() + rejected.load(), kClients * kPerClient + 1);
  EXPECT_GT(answered.load(), 0);
  // Every drained request is accounted in the stats exactly once.
  EXPECT_EQ(server.stats("scc").batcher.requests, answered.load());
}

// ---- LatencyStats ----------------------------------------------------------

TEST(LatencyStats, PercentilesTrackRecordedDistribution) {
  device::LatencyStats stats;
  // 90 fast requests at ~1ms, a 10% tail at ~100ms: p50 stays fast, the
  // nearest-rank p99 lands in the tail.
  for (int i = 0; i < 90; ++i) stats.record_ns(1'000'000);
  for (int i = 0; i < 10; ++i) stats.record_ns(100'000'000);
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.count, 100);
  EXPECT_NEAR(snap.p50_ms, 1.0, 0.1);
  EXPECT_GT(snap.p99_ms, 50.0);
  EXPECT_NEAR(snap.min_ms, 1.0, 0.1);
  EXPECT_NEAR(snap.max_ms, 100.0, 1.0);
  EXPECT_GT(snap.mean_ms, snap.p50_ms);
  stats.reset();
  EXPECT_EQ(stats.snapshot().count, 0);
}

}  // namespace
}  // namespace dsx::serve
