// Tests for the NN framework: layer forward/backward correctness (numerical
// gradients through whole layers), containers, optimizer math, trainer
// behaviour and metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "nn/containers.hpp"
#include "nn/layers_basic.hpp"
#include "nn/layers_conv.hpp"
#include "nn/metrics.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"
#include "testing_utils.hpp"

namespace dsx::nn {
namespace {

using dsx::testing::ProbeLoss;
using dsx::testing::max_numeric_grad_error;

/// Gradient-checks one layer end to end: dLoss/dInput and dLoss/dParams.
void check_layer_gradients(Layer& layer, Tensor input, float tol = 3e-2f) {
  ProbeLoss probe(layer.output_shape(input.shape()));
  const auto loss = [&] {
    return probe.value(layer.forward(input, /*training=*/true));
  };
  // Populate caches, compute analytic grads.
  layer.forward(input, true);
  for (Param* p : layer.params()) p->zero_grad();
  const Tensor dinput = layer.backward(probe.mask);

  EXPECT_LT(max_numeric_grad_error(input, loss, dinput), tol) << "d/dInput";
  for (Param* p : layer.params()) {
    // Re-run forward/backward so grads are fresh (backward accumulates).
    p->zero_grad();
    layer.forward(input, true);
    layer.backward(probe.mask);
    EXPECT_LT(max_numeric_grad_error(p->value, loss, p->grad), tol)
        << "d/d" << p->name;
  }
}

// ---- individual layers -----------------------------------------------------

TEST(Layers, Conv2dGradients) {
  Rng rng(1);
  Conv2d layer(3, 4, 3, 1, 1, 1, rng, /*bias=*/true);
  check_layer_gradients(layer, random_uniform(make_nchw(2, 3, 4, 4), rng));
}

TEST(Layers, GroupedConv2dGradients) {
  Rng rng(2);
  Conv2d layer(4, 4, 1, 1, 0, 2, rng, /*bias=*/true);
  check_layer_gradients(layer, random_uniform(make_nchw(1, 4, 3, 3), rng));
}

TEST(Layers, DepthwiseGradients) {
  Rng rng(3);
  DepthwiseConv2d layer(3, 3, 1, 1, rng, /*bias=*/true);
  check_layer_gradients(layer, random_uniform(make_nchw(1, 3, 4, 4), rng));
}

TEST(Layers, SCCFusedGradients) {
  Rng rng(4);
  scc::SCCConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 6;
  cfg.groups = 2;
  cfg.overlap = 0.5;
  SCCConv layer(cfg, rng, /*bias=*/true, SCCImpl::kFused);
  check_layer_gradients(layer, random_uniform(make_nchw(1, 4, 3, 3), rng));
}

TEST(Layers, SCCAllImplsProduceSameForward) {
  Rng rng(5);
  scc::SCCConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 8;
  cfg.groups = 2;
  cfg.overlap = 0.5;
  SCCConv layer(cfg, rng, true, SCCImpl::kFused);
  Tensor in = random_uniform(make_nchw(2, 8, 4, 4), rng);
  const Tensor ref = layer.forward(in, false);
  for (SCCImpl impl :
       {SCCImpl::kFusedOutputCentricBwd, SCCImpl::kChannelStack,
        SCCImpl::kConvStack, SCCImpl::kConvStackNoCC}) {
    layer.set_impl(impl);
    EXPECT_LT(max_abs_diff(layer.forward(in, false), ref), 1e-4f)
        << scc_impl_name(impl);
  }
}

TEST(Layers, SCCAllImplsProduceSameGradients) {
  Rng rng(6);
  scc::SCCConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 8;
  cfg.groups = 2;
  cfg.overlap = 0.5;
  Tensor in = random_uniform(make_nchw(1, 4, 3, 3), rng);

  SCCConv ref_layer(cfg, rng, true, SCCImpl::kFused);
  ref_layer.forward(in, true);
  Tensor dout(ref_layer.output_shape(in.shape()), 1.0f);
  const Tensor ref_din = ref_layer.backward(dout);
  const Tensor ref_dw = ref_layer.params()[0]->grad.clone();

  for (SCCImpl impl :
       {SCCImpl::kFusedOutputCentricBwd, SCCImpl::kChannelStack,
        SCCImpl::kConvStack}) {
    ref_layer.set_impl(impl);
    for (Param* p : ref_layer.params()) p->zero_grad();
    ref_layer.forward(in, true);
    const Tensor din = ref_layer.backward(dout);
    EXPECT_LT(max_abs_diff(din, ref_din), 1e-3f) << scc_impl_name(impl);
    EXPECT_LT(max_abs_diff(ref_layer.params()[0]->grad, ref_dw), 1e-3f)
        << scc_impl_name(impl);
  }
}

TEST(Layers, BatchNormGradients) {
  Rng rng(7);
  BatchNorm2d layer(3);
  check_layer_gradients(layer, random_uniform(make_nchw(2, 3, 3, 3), rng));
}

TEST(Layers, LinearGradients) {
  Rng rng(8);
  Linear layer(6, 4, rng, true);
  check_layer_gradients(layer, random_uniform(Shape{3, 6}, rng));
}

TEST(Layers, ReLUGradients) {
  Rng rng(9);
  ReLU layer;
  // Keep inputs away from the kink at 0, where central differences and the
  // subgradient legitimately disagree.
  Tensor in = random_uniform(make_nchw(1, 2, 3, 3), rng, 0.2f, 1.0f);
  for (int64_t i = 0; i < in.numel(); ++i) {
    if (i % 2 == 0) in[i] = -in[i];
  }
  check_layer_gradients(layer, std::move(in));
}

TEST(Layers, MaxPoolGradients) {
  Rng rng(10);
  MaxPool2d layer(2, 2);
  check_layer_gradients(layer, random_uniform(make_nchw(1, 2, 4, 4), rng));
}

TEST(Layers, GlobalAvgPoolGradients) {
  Rng rng(11);
  GlobalAvgPool layer;
  check_layer_gradients(layer, random_uniform(make_nchw(2, 3, 3, 3), rng));
}

TEST(Layers, FlattenRoundTrip) {
  Rng rng(12);
  Flatten layer;
  Tensor in = random_uniform(make_nchw(2, 3, 4, 4), rng);
  Tensor out = layer.forward(in, true);
  EXPECT_EQ(out.shape(), (Shape{2, 48}));
  Tensor din = layer.backward(out);
  EXPECT_EQ(din.shape(), in.shape());
  EXPECT_FLOAT_EQ(max_abs_diff(din, in), 0.0f);
}

TEST(Layers, BackwardBeforeForwardThrows) {
  Rng rng(13);
  ReLU relu;
  Tensor g(make_nchw(1, 1, 2, 2));
  EXPECT_THROW(relu.backward(g), Error);
  Linear lin(4, 2, rng);
  EXPECT_THROW(lin.backward(Tensor(Shape{1, 2})), Error);
  MaxPool2d pool;
  EXPECT_THROW(pool.backward(g), Error);
}

TEST(Layers, EvalForwardDoesNotCache) {
  Rng rng(14);
  ReLU relu;
  relu.forward(random_uniform(make_nchw(1, 1, 2, 2), rng), /*training=*/false);
  EXPECT_THROW(relu.backward(Tensor(make_nchw(1, 1, 2, 2))), Error);
}

// ---- output shapes ------------------------------------------------------------

TEST(Layers, OutputShapes) {
  Rng rng(15);
  const Shape in = make_nchw(2, 8, 16, 16);
  EXPECT_EQ(Conv2d(8, 16, 3, 2, 1, 1, rng).output_shape(in),
            make_nchw(2, 16, 8, 8));
  EXPECT_EQ(DepthwiseConv2d(8, 3, 1, 1, rng).output_shape(in),
            make_nchw(2, 8, 16, 16));
  scc::SCCConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 24;
  cfg.groups = 2;
  cfg.overlap = 0.5;
  EXPECT_EQ(SCCConv(cfg, rng).output_shape(in), make_nchw(2, 24, 16, 16));
  EXPECT_EQ(MaxPool2d(2, 2).output_shape(in), make_nchw(2, 8, 8, 8));
  EXPECT_EQ(GlobalAvgPool().output_shape(in), make_nchw(2, 8, 1, 1));
  EXPECT_EQ(Flatten().output_shape(in), (Shape{2, 8 * 16 * 16}));
}

// ---- containers -----------------------------------------------------------------

TEST(Sequential, ChainsForwardBackward) {
  Rng rng(16);
  Sequential seq;
  seq.emplace<Conv2d>(2, 4, 3, 1, 1, 1, rng);
  seq.emplace<ReLU>();
  seq.emplace<GlobalAvgPool>();
  seq.emplace<Flatten>();
  seq.emplace<Linear>(4, 3, rng);
  Tensor in = random_uniform(make_nchw(2, 2, 5, 5), rng);
  EXPECT_EQ(seq.output_shape(in.shape()), (Shape{2, 3}));
  Tensor out = seq.forward(in, true);
  EXPECT_EQ(out.shape(), (Shape{2, 3}));
  Tensor din = seq.backward(Tensor(Shape{2, 3}, 1.0f));
  EXPECT_EQ(din.shape(), in.shape());
}

TEST(Sequential, GradientsThroughStack) {
  Rng rng(17);
  Sequential seq;
  seq.emplace<Conv2d>(2, 3, 1, 1, 0, 1, rng, true);
  seq.emplace<ReLU>();
  seq.emplace<Flatten>();
  seq.emplace<Linear>(3 * 9, 2, rng, true);
  check_layer_gradients(seq, random_uniform(make_nchw(1, 2, 3, 3), rng));
}

TEST(Sequential, CollectsAllParams) {
  Rng rng(18);
  Sequential seq;
  seq.emplace<Conv2d>(2, 4, 3, 1, 1, 1, rng, true);   // w + b
  seq.emplace<BatchNorm2d>(4);                        // gamma + beta
  seq.emplace<Linear>(4, 2, rng, true);               // w + b
  EXPECT_EQ(seq.params().size(), 6u);
}

TEST(Sequential, CostAccumulatesOverLayers) {
  Rng rng(19);
  Sequential seq;
  seq.emplace<Conv2d>(2, 4, 3, 1, 1, 1, rng);
  seq.emplace<MaxPool2d>(2, 2);
  seq.emplace<Conv2d>(4, 8, 3, 1, 1, 1, rng);
  const scc::LayerCost cost = seq.cost(make_nchw(1, 2, 8, 8));
  // conv1: 64*4*9*2; conv2 at 4x4: 16*8*9*4
  EXPECT_DOUBLE_EQ(cost.macs, 64.0 * 4 * 9 * 2 + 16.0 * 8 * 9 * 4);
  EXPECT_DOUBLE_EQ(cost.params, 4.0 * 2 * 9 + 8.0 * 4 * 9);
}

TEST(Residual, IdentityShortcutGradients) {
  Rng rng(20);
  auto main = std::make_unique<Sequential>();
  main->emplace<Conv2d>(3, 3, 3, 1, 1, 1, rng, true);
  Residual res(std::move(main), nullptr);
  check_layer_gradients(res, random_uniform(make_nchw(1, 3, 3, 3), rng));
}

TEST(Residual, ProjectionShortcutGradients) {
  Rng rng(21);
  auto main = std::make_unique<Sequential>();
  main->emplace<Conv2d>(2, 4, 3, 2, 1, 1, rng, true);
  auto sc = std::make_unique<Sequential>();
  sc->emplace<Conv2d>(2, 4, 1, 2, 0, 1, rng, true);
  Residual res(std::move(main), std::move(sc));
  check_layer_gradients(res, random_uniform(make_nchw(1, 2, 4, 4), rng));
}

TEST(Residual, ShapeMismatchThrows) {
  Rng rng(22);
  auto main = std::make_unique<Sequential>();
  main->emplace<Conv2d>(2, 4, 3, 1, 1, 1, rng);
  Residual res(std::move(main), nullptr);  // identity: 2 channels vs 4
  Tensor in(make_nchw(1, 2, 4, 4));
  EXPECT_THROW(res.forward(in, false), Error);
}

// ---- SGD ------------------------------------------------------------------------

TEST(Sgd, VanillaStepMath) {
  SGD opt({.lr = 0.5f, .momentum = 0.0f, .weight_decay = 0.0f});
  Param p = Param::create("w", Tensor(Shape{2}, 1.0f));
  p.grad.fill(0.2f);
  opt.step({&p});
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.5f * 0.2f);
}

TEST(Sgd, MomentumAccumulates) {
  SGD opt({.lr = 1.0f, .momentum = 0.5f, .weight_decay = 0.0f});
  Param p = Param::create("w", Tensor(Shape{1}, 0.0f));
  p.grad.fill(1.0f);
  opt.step({&p});  // v=1, w=-1
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);
  opt.step({&p});  // v=1.5, w=-2.5
  EXPECT_FLOAT_EQ(p.value[0], -2.5f);
}

TEST(Sgd, WeightDecayOnlyWhereEnabled) {
  SGD opt({.lr = 1.0f, .momentum = 0.0f, .weight_decay = 0.1f});
  Param decayed = Param::create("w", Tensor(Shape{1}, 1.0f), true);
  Param plain = Param::create("b", Tensor(Shape{1}, 1.0f), false);
  opt.step({&decayed, &plain});  // grads are zero
  EXPECT_FLOAT_EQ(decayed.value[0], 1.0f - 0.1f);
  EXPECT_FLOAT_EQ(plain.value[0], 1.0f);
}

TEST(Sgd, ResetStateClearsVelocity) {
  SGD opt({.lr = 1.0f, .momentum = 0.9f, .weight_decay = 0.0f});
  Param p = Param::create("w", Tensor(Shape{1}, 0.0f));
  p.grad.fill(1.0f);
  opt.step({&p});
  opt.reset_state();
  p.value.fill(0.0f);
  opt.step({&p});
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);  // no leftover momentum
}

// ---- Trainer ---------------------------------------------------------------------

TEST(Trainer, LossDecreasesOnSeparableProblem) {
  Rng rng(23);
  Sequential model;
  model.emplace<Flatten>();
  model.emplace<Linear>(4, 2, rng, true);
  SGD opt({.lr = 0.2f, .momentum = 0.9f, .weight_decay = 0.0f});
  Trainer trainer(model, opt);

  // Two linearly separable blobs.
  Tensor x(make_nchw(8, 1, 2, 2));
  std::vector<int32_t> y(8);
  for (int64_t i = 0; i < 8; ++i) {
    const int32_t label = static_cast<int32_t>(i % 2);
    y[static_cast<size_t>(i)] = label;
    for (int64_t j = 0; j < 4; ++j) {
      x[i * 4 + j] = (label == 0 ? 1.0f : -1.0f) + rng.normal(0.0f, 0.1f);
    }
  }
  const double first = trainer.train_batch(x, y).loss;
  double last = first;
  for (int step = 0; step < 30; ++step) last = trainer.train_batch(x, y).loss;
  EXPECT_LT(last, first * 0.2);
  EXPECT_GE(trainer.evaluate(x, y).accuracy, 0.99);
}

TEST(Trainer, ForwardBackwardLeavesParamsUnchanged) {
  Rng rng(24);
  Sequential model;
  model.emplace<Flatten>();
  model.emplace<Linear>(4, 2, rng);
  SGD opt({});
  Trainer trainer(model, opt);
  const Tensor before = model.params()[0]->value.clone();
  Tensor x(make_nchw(2, 1, 2, 2), 0.5f);
  const std::vector<int32_t> y = {0, 1};
  trainer.forward_backward(x, y);
  EXPECT_FLOAT_EQ(max_abs_diff(model.params()[0]->value, before), 0.0f);
}

// ---- metrics ---------------------------------------------------------------------

TEST(Metrics, AccuracyCountsArgmaxHits) {
  Tensor logits(Shape{3, 3});
  logits.at(0, 0) = 5.0f;  // -> 0
  logits.at(1, 2) = 5.0f;  // -> 2
  logits.at(2, 1) = 5.0f;  // -> 1
  const std::vector<int32_t> labels = {0, 2, 0};
  EXPECT_NEAR(accuracy(logits, labels), 2.0 / 3.0, 1e-9);
}

TEST(Metrics, TopKAccuracy) {
  Tensor logits(Shape{1, 4});
  logits[0] = 0.1f; logits[1] = 0.3f; logits[2] = 0.2f; logits[3] = 0.0f;
  const std::vector<int32_t> labels = {2};
  EXPECT_DOUBLE_EQ(top_k_accuracy(logits, labels, 1), 0.0);
  EXPECT_DOUBLE_EQ(top_k_accuracy(logits, labels, 2), 1.0);
  EXPECT_THROW(top_k_accuracy(logits, labels, 5), Error);
}

TEST(Metrics, AverageMeter) {
  AverageMeter meter;
  meter.add(1.0, 1);
  meter.add(3.0, 3);
  EXPECT_DOUBLE_EQ(meter.mean(), 10.0 / 4.0);
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.mean(), 0.0);
}

}  // namespace
}  // namespace dsx::nn

// ---- LR schedules (appended) -----------------------------------------------------

#include "nn/lr_schedule.hpp"

namespace dsx::nn {
namespace {

TEST(LrSchedule, StepDecayDropsAtBoundaries) {
  StepDecay sched(0.1f, 3, 0.5f);
  EXPECT_FLOAT_EQ(sched.lr_at(0), 0.1f);
  EXPECT_FLOAT_EQ(sched.lr_at(2), 0.1f);
  EXPECT_FLOAT_EQ(sched.lr_at(3), 0.05f);
  EXPECT_FLOAT_EQ(sched.lr_at(6), 0.025f);
  EXPECT_THROW(sched.lr_at(-1), Error);
}

TEST(LrSchedule, StepDecayValidation) {
  EXPECT_THROW(StepDecay(0.0f, 3, 0.5f), Error);
  EXPECT_THROW(StepDecay(0.1f, 0, 0.5f), Error);
  EXPECT_THROW(StepDecay(0.1f, 3, 1.5f), Error);
}

TEST(LrSchedule, CosineDecayEndpoints) {
  CosineDecay sched(0.2f, 10, 0.01f);
  EXPECT_FLOAT_EQ(sched.lr_at(0), 0.2f);
  EXPECT_NEAR(sched.lr_at(5), 0.5f * (0.2f + 0.01f), 1e-5f);
  EXPECT_FLOAT_EQ(sched.lr_at(10), 0.01f);
  EXPECT_FLOAT_EQ(sched.lr_at(99), 0.01f);  // clamps past the horizon
}

TEST(LrSchedule, CosineDecayIsMonotoneNonIncreasing) {
  CosineDecay sched(1.0f, 20);
  float prev = sched.lr_at(0);
  for (int64_t e = 1; e <= 20; ++e) {
    const float lr = sched.lr_at(e);
    EXPECT_LE(lr, prev + 1e-7f);
    prev = lr;
  }
}

TEST(LrSchedule, DrivesOptimizerThroughOptions) {
  StepDecay sched(0.5f, 1, 0.1f);
  SGD opt({.lr = sched.lr_at(0), .momentum = 0.0f, .weight_decay = 0.0f});
  Param p = Param::create("w", Tensor(Shape{1}, 1.0f));
  p.grad.fill(1.0f);
  opt.step({&p});
  EXPECT_FLOAT_EQ(p.value[0], 0.5f);
  opt.options().lr = sched.lr_at(1);
  p.grad.fill(1.0f);
  opt.step({&p});
  EXPECT_FLOAT_EQ(p.value[0], 0.45f);
}

}  // namespace
}  // namespace dsx::nn
