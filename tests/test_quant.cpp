// Tests for the int8 quantization module: primitive round trips and error
// bounds, quantized SCC / pointwise kernels against their float versions,
// the QuantSCCConv inference layer, and the whole-model post-training
// transform (calibrate -> fold BN -> swap SCC layers).
#include <gtest/gtest.h>

#include <cmath>

#include "core/scc_kernels.hpp"
#include "data/synth.hpp"
#include "models/mobilenet.hpp"
#include "nn/bn_folding.hpp"
#include "nn/metrics.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"
#include "ops/conv2d.hpp"
#include "quant/quant_layers.hpp"
#include "quant/qscc.hpp"
#include "quant/quantize.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor_ops.hpp"

namespace dsx::quant {
namespace {

// ---- primitives -------------------------------------------------------------

TEST(QuantizeScale, MapsAbsmaxTo127) {
  const float scale = choose_scale(2.54f);
  EXPECT_EQ(quantize_value(2.54f, scale), 127);
  EXPECT_EQ(quantize_value(-2.54f, scale), -127);
  EXPECT_EQ(quantize_value(0.0f, scale), 0);
}

TEST(QuantizeScale, ZeroTensorGetsZeroScale) {
  EXPECT_EQ(choose_scale(0.0f), 0.0f);
  EXPECT_EQ(quantize_value(123.0f, 0.0f), 0);  // degenerate scale: all zeros
}

TEST(QuantizeScale, RejectsNonFiniteAbsmax) {
  EXPECT_THROW(choose_scale(-1.0f), std::runtime_error);
  EXPECT_THROW(choose_scale(std::nanf("")), std::runtime_error);
}

TEST(QuantizeValue, ClampsBeyondCalibratedRange) {
  const float scale = choose_scale(1.0f);
  EXPECT_EQ(quantize_value(5.0f, scale), 127);
  EXPECT_EQ(quantize_value(-5.0f, scale), -127);
}

TEST(QuantizeRoundTrip, ErrorBoundedByHalfScale) {
  Rng rng(41);
  const Tensor t = random_uniform(make_nchw(2, 4, 6, 6), rng, -3.0f, 3.0f);
  const QuantizedTensor q = quantize_per_tensor(t);
  const Tensor back = dequantize(q);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::abs(back[i] - t[i]), q.scale * 0.5f + 1e-7f);
  }
}

TEST(QuantizeRoundTrip, ZeroTensorSurvives) {
  const Tensor t(make_nchw(1, 2, 3, 3));
  const QuantizedTensor q = quantize_per_tensor(t);
  EXPECT_EQ(q.scale, 0.0f);
  const Tensor back = dequantize(q);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(back[i], 0.0f);
}

TEST(QuantizePerFilter, EachRowUsesOwnRange) {
  // Row 0 spans [-1, 1], row 1 spans [-100, 100]; with one shared scale row
  // 0 would collapse to ~1 code; per-filter keeps both at full resolution.
  Tensor w(Shape{2, 4});
  w.at(0, 0) = 1.0f;
  w.at(0, 1) = -0.5f;
  w.at(1, 0) = 100.0f;
  w.at(1, 1) = -37.0f;
  const QuantizedFilterBank q = quantize_per_filter(w);
  ASSERT_EQ(q.scales.size(), 2u);
  EXPECT_FLOAT_EQ(q.scales[0], 1.0f / 127.0f);
  EXPECT_FLOAT_EQ(q.scales[1], 100.0f / 127.0f);
  const Tensor back = dequantize(q);
  EXPECT_NEAR(back.at(0, 1), -0.5f, 1.0f / 127.0f);
  EXPECT_NEAR(back.at(1, 1), -37.0f, 100.0f / 127.0f);
}

TEST(QuantizePerFilter, TightensErrorVsPerTensor) {
  // Property: per-filter reconstruction error is never worse than treating
  // the whole bank with the global scale.
  Rng rng(43);
  Tensor w = random_uniform(Shape{8, 16}, rng);
  // Give the rows wildly different magnitudes.
  for (int64_t f = 0; f < 8; ++f) {
    for (int64_t k = 0; k < 16; ++k) {
      w.at(f, k) *= static_cast<float>(1 << f);
    }
  }
  const Tensor per_filter = dequantize(quantize_per_filter(w));
  const Tensor per_tensor = dequantize(quantize_per_tensor(w));
  EXPECT_LT(max_abs_diff(per_filter, w), max_abs_diff(per_tensor, w));
}

TEST(QuantizePerFilter, RejectsRank1) {
  Tensor w(Shape{8});
  EXPECT_THROW(quantize_per_filter(w), std::runtime_error);
}

TEST(PercentileCalibration, FullQuantileEqualsAbsmax) {
  Rng rng(44);
  const Tensor t = random_uniform(make_nchw(1, 2, 8, 8), rng, -5.0f, 5.0f);
  EXPECT_FLOAT_EQ(choose_scale_percentile(t, 1.0), choose_scale(max_abs(t)));
}

TEST(PercentileCalibration, ClipsOutlierTail) {
  // 127 unit values and one 100.0 outlier: absmax calibration wastes nearly
  // the whole code range on the outlier; a 99% quantile ignores it.
  Tensor t(Shape{128});
  for (int64_t i = 0; i < 127; ++i) t[i] = 1.0f;
  t[127] = 100.0f;
  const float absmax_scale = choose_scale_percentile(t, 1.0);
  const float clipped_scale = choose_scale_percentile(t, 0.99);
  EXPECT_FLOAT_EQ(absmax_scale, 100.0f / 127.0f);
  EXPECT_FLOAT_EQ(clipped_scale, 1.0f / 127.0f);
  // The bulk of the distribution round-trips far better with clipping.
  const Tensor clipped = dequantize(quantize_with_scale(t, clipped_scale));
  const Tensor full = dequantize(quantize_with_scale(t, absmax_scale));
  EXPECT_LT(std::abs(clipped[0] - 1.0f), std::abs(full[0] - 1.0f));
}

TEST(PercentileCalibration, RejectsBadQuantile) {
  Tensor t(Shape{4});
  EXPECT_THROW(choose_scale_percentile(t, 0.0), std::runtime_error);
  EXPECT_THROW(choose_scale_percentile(t, 1.5), std::runtime_error);
}

// ---- quantized kernels -------------------------------------------------------

scc::SCCConfig make_cfg(int64_t cin, int64_t cout, int64_t cg, double co,
                        int64_t stride = 1) {
  scc::SCCConfig cfg;
  cfg.in_channels = cin;
  cfg.out_channels = cout;
  cfg.groups = cg;
  cfg.overlap = co;
  cfg.stride = stride;
  return cfg;
}

TEST(QSccForward, ExactOnRepresentableValues) {
  // Inputs k/127 * absmax and weights m/127 * absmax quantize losslessly, so
  // the int8 kernel must agree with the float kernel bit-for-bit (modulo
  // float rounding of the dequant multiply).
  const scc::SCCConfig cfg = make_cfg(4, 8, 2, 0.5);
  scc::ChannelWindowMap map(cfg);
  Rng rng(47);
  Tensor in(make_nchw(1, 4, 3, 3));
  for (int64_t i = 0; i < in.numel(); ++i) {
    in[i] = static_cast<float>(rng.randint(-127, 127)) / 127.0f;
  }
  Tensor w(Shape{8, 2});
  for (int64_t i = 0; i < w.numel(); ++i) {
    w[i] = static_cast<float>(rng.randint(-127, 127)) / 127.0f;
  }
  // Pin the calibration ranges to 1.0 - per *row* for the per-filter weight
  // bank - so every code is exactly an integer in [-127, 127].
  in[0] = 1.0f;
  for (int64_t f = 0; f < 8; ++f) w.at(f, 0) = 1.0f;

  const Tensor want = scc::scc_forward(in, w, nullptr, map);
  const Tensor got = qscc_forward(quantize_per_tensor(in),
                                  quantize_per_filter(w), nullptr, map);
  EXPECT_LT(max_abs_diff(got, want), 1e-5f);
}

struct QCase {
  int64_t cin, cout, cg;
  double co;
  int64_t stride;
};

class QSccSweep : public ::testing::TestWithParam<QCase> {};

TEST_P(QSccSweep, CloseToFloatKernel) {
  const QCase p = GetParam();
  const scc::SCCConfig cfg = make_cfg(p.cin, p.cout, p.cg, p.co, p.stride);
  scc::ChannelWindowMap map(cfg);
  Rng rng(53);
  const Tensor in = random_uniform(make_nchw(2, p.cin, 6, 6), rng);
  const Tensor w = random_uniform(Shape{p.cout, map.group_width()}, rng);
  const Tensor b = random_uniform(Shape{p.cout}, rng);

  const Tensor want = scc::scc_forward(in, w, &b, map);
  const Tensor got =
      qscc_forward(quantize_per_tensor(in), quantize_per_filter(w), &b, map);
  ASSERT_EQ(got.shape(), want.shape());
  // Error bound: each of the gw products contributes at most
  // (sx/2)|w| + (sw/2)|x| + (sx sw)/4; bound loosely with the scales.
  const float sx = choose_scale(max_abs(in));
  const float sw = choose_scale(max_abs(w));
  const float bound =
      static_cast<float>(map.group_width()) *
      (0.5f * sx * max_abs(w) + 0.5f * sw * max_abs(in) + 0.25f * sx * sw) *
      1.5f;
  EXPECT_LT(max_abs_diff(got, want), bound) << cfg.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QSccSweep,
    ::testing::Values(QCase{4, 8, 2, 0.5, 1}, QCase{8, 16, 4, 0.5, 1},
                      QCase{6, 6, 2, 1.0 / 3.0, 1}, QCase{8, 8, 1, 1.0, 1},
                      QCase{8, 8, 4, 0.0, 1}, QCase{8, 8, 2, 0.5, 2}));

TEST(QPointwise, CloseToFloatConv) {
  Rng rng(59);
  const Tensor in = random_uniform(make_nchw(2, 8, 5, 5), rng);
  const Tensor w = random_uniform(Shape{16, 4, 1, 1}, rng);
  const Conv2dArgs args{1, 0, 2};
  const Tensor want = conv2d_forward(in, w, nullptr, args);
  const Tensor got = qpointwise_forward(quantize_per_tensor(in),
                                        quantize_per_filter(w), nullptr, 2);
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_LT(max_abs_diff(got, want), 0.05f * max_abs(want) + 0.05f);
}

TEST(QPointwise, RejectsBadGroups) {
  Rng rng(61);
  const Tensor in = random_uniform(make_nchw(1, 6, 3, 3), rng);
  const Tensor w = random_uniform(Shape{8, 2, 1, 1}, rng);
  EXPECT_THROW(qpointwise_forward(quantize_per_tensor(in),
                                  quantize_per_filter(w), nullptr, 4),
               std::runtime_error);
}

// ---- QuantSCCConv layer ------------------------------------------------------

TEST(QuantSCCLayer, MatchesFloatLayerClosely) {
  const scc::SCCConfig cfg = make_cfg(8, 16, 2, 0.5);
  Rng rng(67);
  nn::SCCConv flayer(cfg, rng, /*bias=*/true);
  Rng data(68);
  const Tensor in = random_uniform(make_nchw(2, 8, 6, 6), data);

  QuantSCCConv qlayer(flayer, choose_scale(max_abs(in)));
  const Tensor want = flayer.forward(in, false);
  const Tensor got = qlayer.forward(in, false);
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_LT(max_abs_diff(got, want), 0.05f * max_abs(want) + 0.05f);
  EXPECT_EQ(qlayer.output_shape(in.shape()), want.shape());
}

TEST(QuantSCCLayer, IsInferenceOnly) {
  const scc::SCCConfig cfg = make_cfg(4, 4, 2, 0.5);
  Rng rng(71);
  nn::SCCConv flayer(cfg, rng);
  QuantSCCConv qlayer(flayer, 0.01f);
  Rng data(72);
  const Tensor in = random_uniform(make_nchw(1, 4, 4, 4), data);
  EXPECT_THROW(qlayer.forward(in, /*training=*/true), std::runtime_error);
  EXPECT_THROW(qlayer.backward(in), std::runtime_error);
  EXPECT_TRUE(qlayer.params().empty());
}

TEST(QuantSCCLayer, KeepsCostModelMacs) {
  const scc::SCCConfig cfg = make_cfg(8, 16, 2, 0.5);
  Rng rng(73);
  nn::SCCConv flayer(cfg, rng);
  QuantSCCConv qlayer(flayer, 0.01f);
  const Shape in = make_nchw(1, 8, 8, 8);
  EXPECT_DOUBLE_EQ(qlayer.cost(in).macs, flayer.cost(in).macs);
  EXPECT_EQ(qlayer.weight_bytes(), 16 * 4);  // Cout x gw int8 codes
}

// ---- whole-model transform -----------------------------------------------------

TEST(QuantizeModel, SwapsAllTopLevelSCCLayersAndKeepsPredictions) {
  Rng rng(79);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWSCC;
  cfg.cg = 2;
  cfg.co = 0.5;
  cfg.width_mult = 0.125;
  auto model = models::build_mobilenet(10, cfg, rng);

  // Train until the logits separate (near-uniform logits would make argmax
  // agreement meaningless - any perturbation flips it), then fold BN.
  data::Dataset ds = data::make_synth_cifar(32, 81);
  nn::SGD opt({.lr = 0.05f});
  nn::Trainer trainer(*model, opt);
  for (int step = 0; step < 10; ++step) {
    trainer.train_batch(ds.images, ds.labels);
  }
  nn::fold_batchnorm(*model);

  const Tensor float_logits = model->forward(ds.images, false);
  const QuantizeReport report = quantize_scc_layers(*model, ds.images);
  EXPECT_EQ(report.layers_quantized, 13);  // one SCC per MobileNet block
  EXPECT_EQ(report.int8_weight_bytes * 4, report.float_weight_bytes);

  const Tensor quant_logits = model->forward(ds.images, false);
  ASSERT_EQ(quant_logits.shape(), float_logits.shape());
  // Argmax agreement between float and int8 on the calibration data. 13
  // quantized layers on a briefly-trained model with small logit margins:
  // demand a clear majority, not bit-exactness.
  int64_t agree = 0;
  const int64_t n = float_logits.shape().dim(0);
  const int64_t k = float_logits.shape().dim(1);
  for (int64_t i = 0; i < n; ++i) {
    int64_t af = 0, aq = 0;
    for (int64_t j = 1; j < k; ++j) {
      if (float_logits.at(i, j) > float_logits.at(i, af)) af = j;
      if (quant_logits.at(i, j) > quant_logits.at(i, aq)) aq = j;
    }
    agree += af == aq;
  }
  EXPECT_GE(static_cast<double>(agree) / static_cast<double>(n), 0.75);
}

TEST(QuantizeModel, RejectsNonImageCalibration) {
  Rng rng(83);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWSCC;
  cfg.width_mult = 0.125;
  auto model = models::build_mobilenet(10, cfg, rng);
  Tensor bad(Shape{4, 3});
  EXPECT_THROW(quantize_scc_layers(*model, bad), std::runtime_error);
}

}  // namespace
}  // namespace dsx::quant
