// Unit tests for src/device: thread pool, parallel loops, instrumented
// atomics, kernel-launch logging and the virtual device group.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "device/atomic_stats.hpp"
#include "device/device_group.hpp"
#include "device/launch.hpp"
#include "device/parallel_for.hpp"
#include "device/thread_pool.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor_ops.hpp"

namespace dsx::device {
namespace {

// ---- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, CoversWholeRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.run_chunks(1000, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.run_chunks(0, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, NegativeRangeThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_chunks(-1, [](int64_t, int64_t) {}), Error);
}

TEST(ThreadPool, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int64_t> sum{0};
  pool.run_chunks(100, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_chunks(100,
                               [&](int64_t b, int64_t) {
                                 if (b > 0) throw Error("boom");
                               }),
               Error);
  // Pool must still be usable afterwards.
  std::atomic<int> ok{0};
  pool.run_chunks(8, [&](int64_t b, int64_t e) {
    ok += static_cast<int>(e - b);
  });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPool, PropagatesCallerChunkException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_chunks(100,
                               [&](int64_t b, int64_t) {
                                 if (b == 0) throw Error("boom");
                               }),
               Error);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(3);
  for (int iter = 0; iter < 50; ++iter) {
    std::atomic<int64_t> sum{0};
    pool.run_chunks(64, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) sum += 1;
    });
    EXPECT_EQ(sum.load(), 64);
  }
}

TEST(ThreadPool, GlobalPoolExists) {
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

// ---- parallel_for -------------------------------------------------------------

TEST(ParallelFor, MatchesSerialSum) {
  std::vector<int64_t> data(5000);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<int64_t> sum{0};
  parallel_for(
      5000, [&](int64_t i) { sum += data[static_cast<size_t>(i)]; },
      /*grain=*/16);
  EXPECT_EQ(sum.load(), 5000 * 4999 / 2);
}

TEST(ParallelFor, SmallRangeStaysSerial) {
  // Bodies under the grain threshold run inline on the caller.
  const auto caller = std::this_thread::get_id();
  bool same_thread = true;
  parallel_for(
      8,
      [&](int64_t) {
        same_thread = same_thread && std::this_thread::get_id() == caller;
      },
      /*grain=*/1024);
  EXPECT_TRUE(same_thread);
}

TEST(ParallelForChunks, ChunksPartitionRange) {
  std::vector<std::atomic<int>> hits(4096);
  parallel_for_chunks(
      4096,
      [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
      },
      /*grain=*/8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor2d, CoversGrid) {
  std::vector<std::atomic<int>> hits(12 * 34);
  parallel_for_2d(
      12, 34,
      [&](int64_t r, int64_t c) { hits[static_cast<size_t>(r * 34 + c)]++; },
      /*grain=*/4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterations) {
  int calls = 0;
  parallel_for(0, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_THROW(parallel_for(-5, [](int64_t) {}), Error);
}

// ---- atomics -------------------------------------------------------------------

TEST(AtomicAddFloat, ConcurrentSumIsExact) {
  float target = 0.0f;
  parallel_for_chunks(
      10000,
      [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) atomic_add_float(target, 1.0f);
      },
      /*grain=*/8);
  EXPECT_FLOAT_EQ(target, 10000.0f);
}

TEST(AtomicCounters, ScopeCountsOnlyInside) {
  float x = 0.0f;
  atomic_add_float(x, 1.0f);  // outside any scope: not counted
  {
    AtomicCountScope scope;
    atomic_add_float(x, 1.0f);
    atomic_add_float(x, 1.0f);
    EXPECT_EQ(scope.adds(), 2);
  }
  EXPECT_FALSE(AtomicCounters::instance().counting());
}

TEST(AtomicCounters, NestedScopesRestoreState) {
  AtomicCountScope outer;
  float x = 0.0f;
  {
    AtomicCountScope inner;
    atomic_add_float(x, 1.0f);
  }
  atomic_add_float(x, 1.0f);
  EXPECT_TRUE(AtomicCounters::instance().counting());
  EXPECT_GE(outer.adds(), 2);
}

// ---- kernel log ----------------------------------------------------------------

TEST(KernelLog, RecordsLaunchesInsideScope) {
  KernelProfileScope scope;
  launch_kernel("test_kernel", 100, {3.0, 5.0}, [](int64_t) {});
  const auto records = scope.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "test_kernel");
  EXPECT_EQ(records[0].threads, 100);
  EXPECT_DOUBLE_EQ(records[0].flops_per_thread, 3.0);
  EXPECT_DOUBLE_EQ(records[0].total_flops(), 300.0);
  EXPECT_DOUBLE_EQ(records[0].total_bytes(), 500.0);
}

TEST(KernelLog, SilentWhenDisabled) {
  KernelLog::instance().clear();
  launch_kernel("quiet", 10, {}, [](int64_t) {});
  EXPECT_TRUE(KernelLog::instance().snapshot().empty());
}

TEST(KernelLog, ModeledThreadCountDiffersFromExecRange) {
  KernelProfileScope scope;
  launch_kernel_chunks_modeled("gemm_like", /*exec=*/4, /*model=*/4096,
                               {2.0, 1.0}, [](int64_t, int64_t) {});
  const auto records = scope.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].threads, 4096);
}

TEST(KernelLog, CapturesAtomicsPerLaunch) {
  AtomicCountScope counting;
  KernelProfileScope scope;
  float x = 0.0f;
  launch_kernel("atomic_kernel", 4, {}, [&](int64_t) {
    atomic_add_float(x, 1.0f);
  });
  launch_kernel("clean_kernel", 4, {}, [](int64_t) {});
  const auto records = scope.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].atomic_adds, 4);
  EXPECT_EQ(records[1].atomic_adds, 0);
}

// ---- DeviceGroup ---------------------------------------------------------------

TEST(DeviceGroup, AllReduceMeanAveragesReplicas) {
  DeviceGroup group(3);
  Tensor a(Shape{4}, 1.0f), b(Shape{4}, 2.0f), c(Shape{4}, 6.0f);
  std::vector<Tensor*> replicas = {&a, &b, &c};
  const CollectiveStats stats = group.all_reduce_mean(replicas);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(a[i], 3.0f);
    EXPECT_FLOAT_EQ(b[i], 3.0f);
    EXPECT_FLOAT_EQ(c[i], 3.0f);
  }
  EXPECT_EQ(stats.devices, 3);
  EXPECT_DOUBLE_EQ(stats.payload_bytes, 16.0);
}

TEST(DeviceGroup, AllReduceValidatesShapes) {
  DeviceGroup group(2);
  Tensor a(Shape{4}), b(Shape{5});
  std::vector<Tensor*> replicas = {&a, &b};
  EXPECT_THROW(group.all_reduce_mean(replicas), Error);
}

TEST(DeviceGroup, AllReduceValidatesReplicaCount) {
  DeviceGroup group(2);
  Tensor a(Shape{4});
  std::vector<Tensor*> replicas = {&a};
  EXPECT_THROW(group.all_reduce_mean(replicas), Error);
}

TEST(DeviceGroup, ParamListCollective) {
  DeviceGroup group(2);
  Tensor a0(Shape{2}, 0.0f), a1(Shape{2}, 4.0f);
  Tensor b0(Shape{3}, 1.0f), b1(Shape{3}, 3.0f);
  std::vector<std::vector<Tensor*>> params = {{&a0, &b0}, {&a1, &b1}};
  const CollectiveStats stats = group.all_reduce_mean(params);
  EXPECT_FLOAT_EQ(a0[0], 2.0f);
  EXPECT_FLOAT_EQ(b1[2], 2.0f);
  EXPECT_DOUBLE_EQ(stats.payload_bytes, (2 + 3) * 4.0);
}

TEST(DeviceGroup, Broadcast) {
  DeviceGroup group(3);
  Tensor src(Shape{3}, 5.0f);
  Tensor d1(Shape{3}), d2(Shape{3});
  std::vector<Tensor*> dst = {&d1, &d2};
  group.broadcast(src, dst);
  EXPECT_FLOAT_EQ(d1[2], 5.0f);
  EXPECT_FLOAT_EQ(d2[0], 5.0f);
}

TEST(DeviceGroup, RingBytesFormula) {
  EXPECT_DOUBLE_EQ(ring_all_reduce_bytes(100.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(ring_all_reduce_bytes(100.0, 2), 100.0);
  EXPECT_DOUBLE_EQ(ring_all_reduce_bytes(100.0, 4), 150.0);
  EXPECT_THROW(ring_all_reduce_bytes(1.0, 0), Error);
}

TEST(DeviceGroup, RequiresAtLeastOneDevice) {
  EXPECT_THROW(DeviceGroup(0), Error);
}

TEST(DeviceGroup, SingleDeviceGroupIsIdentityWithZeroWireTraffic) {
  DeviceGroup group(1);
  EXPECT_EQ(group.size(), 1);
  Tensor a(Shape{4}, 7.0f);
  std::vector<Tensor*> replicas = {&a};
  const CollectiveStats stats = group.all_reduce_mean(replicas);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(a[i], 7.0f);
  EXPECT_EQ(stats.devices, 1);
  EXPECT_DOUBLE_EQ(stats.wire_bytes, 0.0);  // a 1-ring moves nothing
  EXPECT_DOUBLE_EQ(ring_all_reduce_bytes(1024.0, 1), 0.0);
}

TEST(DeviceGroup, EmptyReplicaSpanIsRejected) {
  DeviceGroup group(1);
  std::vector<Tensor*> none;
  EXPECT_THROW(group.all_reduce_mean(std::span<Tensor* const>(none)), Error);
  DeviceGroup group2(2);
  EXPECT_THROW(group2.all_reduce_mean(std::span<Tensor* const>(none)), Error);
  // A null replica inside a correctly sized span is also a caller bug.
  Tensor a(Shape{2});
  std::vector<Tensor*> with_null = {&a, nullptr};
  EXPECT_THROW(group2.all_reduce_mean(with_null), Error);
}

TEST(DeviceGroup, MismatchedParamListLengthsAreRejected) {
  DeviceGroup group(2);
  Tensor a0(Shape{2}), b0(Shape{3});
  Tensor a1(Shape{2});
  // Device 0 holds two params, device 1 only one.
  std::vector<std::vector<Tensor*>> uneven = {{&a0, &b0}, {&a1}};
  EXPECT_THROW(group.all_reduce_mean(uneven), Error);
  // Wrong outer (device) count fails too.
  std::vector<std::vector<Tensor*>> wrong_devices = {{&a0}};
  EXPECT_THROW(group.all_reduce_mean(wrong_devices), Error);
  // Zero-length param lists are a valid no-op collective.
  std::vector<std::vector<Tensor*>> empty_lists = {{}, {}};
  const CollectiveStats stats = group.all_reduce_mean(empty_lists);
  EXPECT_DOUBLE_EQ(stats.payload_bytes, 0.0);
  EXPECT_DOUBLE_EQ(stats.wire_bytes, 0.0);
}

// ---- ThreadPool::current / PoolScope (dsx::shard execution lanes) ----------

TEST(PoolScope, CurrentDefaultsToGlobalAndBindsPerThread) {
  EXPECT_EQ(&ThreadPool::current(), &ThreadPool::global());
  ThreadPool lane(1);
  {
    PoolScope scope(lane);
    EXPECT_EQ(&ThreadPool::current(), &lane);
    // The binding is thread-local: a fresh thread still sees the global.
    std::thread observer([] {
      EXPECT_EQ(&ThreadPool::current(), &ThreadPool::global());
    });
    observer.join();
    // Scopes nest and restore.
    ThreadPool inner(1);
    {
      PoolScope nested(inner);
      EXPECT_EQ(&ThreadPool::current(), &inner);
    }
    EXPECT_EQ(&ThreadPool::current(), &lane);
  }
  EXPECT_EQ(&ThreadPool::current(), &ThreadPool::global());
}

TEST(PoolScope, ParallelForRunsOnBoundLane) {
  // Two lanes execute parallel loops concurrently without touching the
  // global pool's non-reentrant run_chunks: this is the property that lets
  // shard replicas run without the process-wide execution lock.
  ThreadPool lane_a(2), lane_b(2);
  std::atomic<int64_t> sum{0};
  std::thread ta([&] {
    PoolScope scope(lane_a);
    parallel_for(
        4096, [&](int64_t i) { sum.fetch_add(i, std::memory_order_relaxed); },
        /*grain=*/1);
  });
  std::thread tb([&] {
    PoolScope scope(lane_b);
    parallel_for(
        4096, [&](int64_t i) { sum.fetch_add(i, std::memory_order_relaxed); },
        /*grain=*/1);
  });
  ta.join();
  tb.join();
  EXPECT_EQ(sum.load(), 2 * (4096 * 4095) / 2);
}

// ---- busy/idle pool accounting (obs::prof resource layer) ------------------

/// RAII arm/disarm so a failing assertion never leaks the process-wide flag
/// into later tests.
struct AccountingScope {
  AccountingScope() { set_pool_accounting(true); }
  ~AccountingScope() { set_pool_accounting(false); }
};

TEST(PoolAccounting, OffByDefaultAndAccumulatesNothing) {
  ThreadPool pool(4, "acct-off");
  ASSERT_FALSE(pool_accounting_enabled());
  pool.run_chunks(1 << 16, [&](int64_t b, int64_t e) {
    volatile double x = 0;
    for (int64_t i = b; i < e; ++i) x = x + static_cast<double>(i);
  });
  EXPECT_EQ(pool.busy_ns(), 0);
  EXPECT_EQ(pool.idle_ns(), 0);
}

TEST(PoolAccounting, SaturatedPoolShowsHighUtilization) {
  AccountingScope acct;
  ThreadPool pool(4, "acct-busy");
  const auto t0 = std::chrono::steady_clock::now();
  // Every thread spins its whole chunk: busy time should approach
  // threads x wall. Several run_chunks calls keep per-call dispatch
  // overhead amortized.
  for (int rep = 0; rep < 4; ++rep) {
    pool.run_chunks(static_cast<int64_t>(pool.size()),
                    [&](int64_t b, int64_t e) {
                      volatile double x = 1.0;
                      const auto until = std::chrono::steady_clock::now() +
                                         std::chrono::milliseconds(20);
                      while (std::chrono::steady_clock::now() < until) {
                        for (int i = 0; i < 1000; ++i) x = x * 1.0000001;
                      }
                      (void)b;
                      (void)e;
                    });
  }
  const double wall_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
  const double util = static_cast<double>(pool.busy_ns()) /
                      (wall_ns * static_cast<double>(pool.size()));
  // Near 1.0 in theory; leave slack for scheduling noise on loaded CI
  // machines. Well above 0 proves chunk execution is what is being timed.
  EXPECT_GT(util, 0.5);
  EXPECT_LE(util, 1.1);  // never more busy than threads x wall (+10% clock skew)
}

TEST(PoolAccounting, IdlePoolAccumulatesIdleNotBusy) {
  AccountingScope acct;
  ThreadPool pool(4, "acct-idle");
  // One trivial dispatch parks the workers inside an accounted cv wait...
  pool.run_chunks(1, [](int64_t, int64_t) {});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // ...then a second dispatch forces every worker through the wait exit,
  // banking the parked time into idle_ns.
  pool.run_chunks(1, [](int64_t, int64_t) {});
  EXPECT_GT(pool.idle_ns(), 30'000'000);  // most of the 50ms park
  EXPECT_LT(pool.busy_ns(), 20'000'000);  // two trivial chunks only
}

TEST(PoolAccounting, CountersMonotoneUnderHammer) {
  AccountingScope acct;
  ThreadPool pool(4, "acct-hammer");
  std::atomic<bool> stop{false};
  std::atomic<bool> violated{false};
  // 8 reader threads poll the counters for monotonicity while the pool
  // executes work - the TSan-tier interleaving check for the relaxed
  // counter writes against concurrent pool_stats() snapshots.
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&] {
      int64_t last_busy = 0;
      int64_t last_idle = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (const auto& st : ThreadPool::pool_stats()) {
          if (st.name != "acct-hammer") continue;
          if (st.busy_ns < last_busy || st.idle_ns < last_idle) {
            violated.store(true, std::memory_order_relaxed);
          }
          last_busy = st.busy_ns;
          last_idle = st.idle_ns;
        }
      }
    });
  }
  for (int rep = 0; rep < 50; ++rep) {
    pool.run_chunks(1 << 12, [&](int64_t b, int64_t e) {
      volatile int64_t x = 0;
      for (int64_t i = b; i < e; ++i) x = x + i;
    });
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  EXPECT_FALSE(violated.load());
  EXPECT_GT(pool.busy_ns(), 0);
}

TEST(PoolAccounting, NamedPoolsAppearInStatsAnonymousDoNot) {
  ThreadPool named(2, "acct-named");
  ThreadPool anon(2);
  bool saw_named = false;
  for (const auto& st : ThreadPool::pool_stats()) {
    if (st.name == "acct-named") {
      saw_named = true;
      EXPECT_EQ(st.threads, 2u);
    }
    EXPECT_FALSE(st.name.empty());
  }
  EXPECT_TRUE(saw_named);
  // The process-wide global() pool registers under "global".
  (void)ThreadPool::global();
  bool saw_global = false;
  for (const auto& st : ThreadPool::pool_stats()) {
    saw_global = saw_global || st.name == "global";
  }
  EXPECT_TRUE(saw_global);
}

}  // namespace
}  // namespace dsx::device
