// Tests for dsx::shard (src/shard): replica cloning must be bit-identical,
// sharded serving must reproduce per-image eval-mode forward on every
// replica, the DeadlineBatcher must form batches earliest-deadline-first,
// shed expired requests with DeadlineExceeded, and reject on a full bounded
// queue, and a multi-threaded stress run across replicas must answer every
// request exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "nn/bn_folding.hpp"
#include "nn/containers.hpp"
#include "nn/layers_basic.hpp"
#include "nn/layers_conv.hpp"
#include "nn/layers_mix.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"
#include "quant/quant_layers.hpp"
#include "serve/server.hpp"
#include "shard/shard.hpp"
#include "tensor/random.hpp"
#include "tune/tune.hpp"
#include "testing_utils.hpp"

namespace dsx::shard {
namespace {

using namespace std::chrono_literals;

constexpr int64_t kImage = 8;
constexpr int64_t kClasses = 10;

/// Small conv -> DW -> SCC classifier with three foldable BN pairs (the
/// test_serve model, so the sharded tier is exercised on the same plan
/// shape the single-batcher tier pins).
std::unique_ptr<nn::Sequential> make_scc_model(uint64_t seed) {
  Rng rng(seed);
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Conv2d>(3, 16, 3, 1, 1, 1, rng);
  seq->emplace<nn::BatchNorm2d>(16);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::DepthwiseConv2d>(16, 3, 1, 1, rng);
  seq->emplace<nn::BatchNorm2d>(16);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::SCCConv>(
      scc::SCCConfig{.in_channels = 16, .out_channels = 32, .groups = 2,
                     .overlap = 0.5, .stride = 1},
      rng);
  seq->emplace<nn::BatchNorm2d>(32);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::GlobalAvgPool>();
  seq->emplace<nn::Flatten>();
  seq->emplace<nn::Linear>(32, kClasses, rng);
  return seq;
}

void warm_up(nn::Sequential& model, uint64_t seed) {
  Rng rng(seed);
  nn::SGD opt({.lr = 0.01f, .momentum = 0.9f, .weight_decay = 0.0f});
  nn::Trainer trainer(model, opt);
  for (int step = 0; step < 3; ++step) {
    Tensor x =
        random_uniform(make_nchw(8, 3, kImage, kImage), rng, -2.0f, 3.0f);
    std::vector<int32_t> labels(8);
    for (auto& y : labels) {
      y = static_cast<int32_t>(rng.randint(0, kClasses - 1));
    }
    trainer.train_batch(x, labels);
  }
}

std::vector<Tensor> make_images(int64_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> images;
  for (int64_t i = 0; i < count; ++i) {
    images.push_back(
        random_uniform(make_nchw(1, 3, kImage, kImage), rng, -1.0f, 1.0f));
  }
  return images;
}

using testing::bit_identical;

std::unique_ptr<serve::CompiledModel> make_compiled(uint64_t seed,
                                                    int64_t max_batch = 4) {
  auto model = make_scc_model(seed);
  warm_up(*model, seed + 1);
  return std::make_unique<serve::CompiledModel>(
      std::move(model), Shape{3, kImage, kImage},
      serve::CompileOptions{.max_batch = max_batch});
}

// ---- Layer::clone / CompiledModel::clone_replica ---------------------------

TEST(ReplicaClone, ClonedModelForwardBitIdentical) {
  auto model = make_scc_model(11);
  warm_up(*model, 12);
  auto clone = model->clone_sequential();
  const auto images = make_images(3, 13);
  for (const Tensor& img : images) {
    EXPECT_TRUE(bit_identical(model->forward(img, false),
                              clone->forward(img, false)));
  }
  // Independence: nudging the original's weights must not move the clone.
  for (nn::Param* p : model->params()) {
    for (int64_t i = 0; i < p->value.numel(); ++i) p->value[i] += 1.0f;
  }
  auto clone2 = clone->clone_sequential();
  for (const Tensor& img : images) {
    EXPECT_FALSE(bit_identical(model->forward(img, false),
                               clone->forward(img, false)));
    EXPECT_TRUE(bit_identical(clone2->forward(img, false),
                              clone->forward(img, false)));
  }
}

TEST(ReplicaClone, HeterogeneousLayerZooClonesBitIdentical) {
  // Covers the clone paths the conv/BN/linear model misses: Residual
  // (recursive main/shortcut clone), MaxPool2d, ShiftConv2d (drawn shift
  // pattern must be preserved), ChannelShuffle and Dropout.
  Rng rng(15);
  auto model = std::make_unique<nn::Sequential>();
  model->emplace<nn::Conv2d>(3, 8, 3, 1, 1, 1, rng);
  auto res_main = std::make_unique<nn::Sequential>();
  res_main->emplace<nn::Conv2d>(8, 8, 3, 1, 1, 1, rng);
  res_main->emplace<nn::ReLU>();
  model->emplace<nn::Residual>(std::move(res_main), nullptr);
  model->emplace<nn::MaxPool2d>(2, 2);
  model->emplace<nn::ShiftConv2d>(8, 3);
  model->emplace<nn::ChannelShuffle>(2);
  model->emplace<nn::Dropout>(0.3f, /*seed=*/9);
  model->emplace<nn::GlobalAvgPool>();
  model->emplace<nn::Flatten>();
  model->emplace<nn::Linear>(8, 4, rng);

  auto clone = model->clone_sequential();
  const auto images = make_images(3, 16);
  for (const Tensor& img : images) {
    Tensor a = model->forward(img, false);
    Tensor b = clone->forward(img, false);
    EXPECT_TRUE(bit_identical(a, b));
  }
}

TEST(ReplicaClone, QuantizedModelReplicatesBitIdentical) {
  // QuantSCCConv::clone does a manual fix-up (deep bias copy, fresh int8
  // scratch); exercise it end to end through CompiledModel::clone_replica.
  auto model = make_scc_model(17);
  warm_up(*model, 18);
  ASSERT_EQ(nn::fold_batchnorm(*model), 3);
  Rng rng(19);
  Tensor calibration =
      random_uniform(make_nchw(8, 3, kImage, kImage), rng, -1.0f, 1.0f);
  ASSERT_EQ(quant::quantize_scc_layers(*model, calibration).layers_quantized,
            1);
  auto prototype = std::make_unique<serve::CompiledModel>(
      std::move(model), Shape{3, kImage, kImage},
      serve::CompileOptions{.max_batch = 2});
  auto replica = prototype->clone_replica();
  Rng img_rng(20);
  Tensor batch = random_uniform(prototype->input_shape(2), img_rng);
  // Interleave runs so a shared int8 scratch between the two would corrupt.
  Tensor a1 = prototype->run(batch);
  Tensor b1 = replica->run(batch);
  Tensor a2 = prototype->run(batch);
  EXPECT_TRUE(bit_identical(a1, b1));
  EXPECT_TRUE(bit_identical(a1, a2));
}

TEST(ReplicaClone, CompiledReplicaBitIdenticalAndIndependent) {
  auto prototype = make_compiled(21);
  auto replica = prototype->clone_replica();
  EXPECT_EQ(replica->report().steps, prototype->report().steps);
  const auto images = make_images(4, 23);
  Tensor batch(prototype->input_shape(4));
  const int64_t floats = Shape{3, kImage, kImage}.numel();
  for (int64_t i = 0; i < 4; ++i) {
    std::memcpy(batch.data() + i * floats,
                images[static_cast<size_t>(i)].data(),
                static_cast<size_t>(floats) * sizeof(float));
  }
  EXPECT_TRUE(bit_identical(prototype->run(batch), replica->run(batch)));
}

TEST(ReplicaClone, TunedPlanSharedThroughCacheWithoutRemeasuring) {
  auto model = make_scc_model(31);
  serve::CompileOptions copts;
  copts.max_batch = 2;
  copts.tuning = tune::Mode::kTune;
  copts.tuner = {.warmup = 0, .iters = 1};
  auto prototype = std::make_unique<serve::CompiledModel>(
      std::move(model), Shape{3, kImage, kImage}, copts);
  EXPECT_GT(prototype->report().layers_tuned, 0);

  const int64_t tunes_before = tune::Session::global().tunes_performed();
  auto replica = prototype->clone_replica();
  // The clone compiles in kCached against the session cache the prototype
  // populated: same resolved call sites, zero new measurements.
  EXPECT_EQ(tune::Session::global().tunes_performed(), tunes_before);
  EXPECT_EQ(replica->report().layers_tuned,
            prototype->report().layers_tuned);
  EXPECT_EQ(replica->options().tuning, tune::Mode::kCached);

  Rng rng(33);
  Tensor x = random_uniform(prototype->input_shape(2), rng);
  EXPECT_TRUE(bit_identical(prototype->run(x), replica->run(x)));
}

// ---- DeadlineBatcher -------------------------------------------------------

TEST(DeadlineBatcher, EdfOrderingGovernsBatchFormation) {
  auto compiled = make_compiled(41);
  DeadlineBatcher batcher(*compiled,
                          {.max_batch = 2, .manual_drain = true});
  const auto images = make_images(4, 42);
  const auto now = std::chrono::steady_clock::now();
  // Submission order is the REVERSE of deadline order.
  auto f0 = batcher.submit(images[0], {.deadline = now + 4000ms});
  auto f1 = batcher.submit(images[1], {.deadline = now + 3000ms});
  auto f2 = batcher.submit(images[2], {.deadline = now + 2000ms});
  auto f3 = batcher.submit(images[3], {.deadline = now + 1000ms});

  EXPECT_EQ(batcher.drain_one(), 2u);  // must take the two earliest deadlines
  EXPECT_EQ(f3.wait_for(0ms), std::future_status::ready);
  EXPECT_EQ(f2.wait_for(0ms), std::future_status::ready);
  EXPECT_EQ(f1.wait_for(0ms), std::future_status::timeout);
  EXPECT_EQ(f0.wait_for(0ms), std::future_status::timeout);

  EXPECT_EQ(batcher.drain_one(), 2u);
  EXPECT_EQ(f1.wait_for(0ms), std::future_status::ready);
  EXPECT_EQ(f0.wait_for(0ms), std::future_status::ready);
  EXPECT_EQ(batcher.stats().batcher.requests, 4);
}

TEST(DeadlineBatcher, PriorityBreaksDeadlineTies) {
  auto compiled = make_compiled(51);
  DeadlineBatcher batcher(*compiled,
                          {.max_batch = 1, .manual_drain = true});
  const auto images = make_images(2, 52);
  auto bulk = batcher.submit(images[0], {.priority = serve::Priority::kBulk});
  auto inter =
      batcher.submit(images[1], {.priority = serve::Priority::kInteractive});
  EXPECT_EQ(batcher.drain_one(), 1u);
  EXPECT_EQ(inter.wait_for(0ms), std::future_status::ready);
  EXPECT_EQ(bulk.wait_for(0ms), std::future_status::timeout);
  batcher.stop();  // drains the bulk request
  EXPECT_EQ(bulk.wait_for(0ms), std::future_status::ready);
  EXPECT_EQ(bulk.get().numel(), kClasses);
}

TEST(DeadlineBatcher, ExpiredRequestsAreShedWithDeadlineExceeded) {
  auto compiled = make_compiled(61);
  DeadlineBatcher batcher(*compiled,
                          {.max_batch = 4, .manual_drain = true});
  const auto images = make_images(2, 62);
  auto doomed = batcher.submit(
      images[0], {.deadline = std::chrono::steady_clock::now() + 1ms});
  auto fine = batcher.submit(images[1]);
  std::this_thread::sleep_for(10ms);

  EXPECT_EQ(batcher.drain_one(), 1u);  // only the live request executes
  EXPECT_THROW(doomed.get(), serve::DeadlineExceeded);
  EXPECT_EQ(fine.get().numel(), kClasses);
  const DeadlineBatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.batcher.requests, 1);  // shed requests never hit a batch
}

TEST(DeadlineBatcher, TightDeadlineOnIdleWorkerIsExecutedNotShed) {
  // Regression: the worker used to wait until exactly the front request's
  // deadline before forming a batch, guaranteeing the shed of any request
  // whose budget was shorter than max_delay even on an idle server. The
  // deadline-triggered wake must fire with enough lead to execute it.
  auto compiled = make_compiled(65);
  DeadlineBatcher batcher(
      *compiled,
      {.max_batch = 4, .max_delay = std::chrono::microseconds(2'000'000)});
  const auto images = make_images(1, 66);
  auto f = batcher.submit(images[0], within(200ms));
  EXPECT_EQ(f.get().numel(), kClasses);  // answered, not DeadlineExceeded
  const DeadlineBatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.batcher.requests, 1);
  // The batch formed near the deadline (minus the lead), not at max_delay.
  EXPECT_LT(stats.batcher.latency.max_ms, 1000.0);
}

TEST(DeadlineBatcher, TighterDeadlineArrivingMidWaitTightensTheCutoff) {
  // Regression: the worker computed its batch-formation cutoff once before
  // sleeping; a tighter-deadline request arriving mid-wait became the new
  // EDF front but slept behind the stale cutoff and was shed. The cutoff
  // must be recomputed on every wakeup.
  auto compiled = make_compiled(64);
  DeadlineBatcher batcher(
      *compiled,
      {.max_batch = 4, .max_delay = std::chrono::microseconds(2'000'000)});
  const auto images = make_images(2, 63);
  // No-deadline request parks the worker on a ~2s cutoff...
  auto slow = batcher.submit(images[0]);
  std::this_thread::sleep_for(20ms);
  // ...then a 200ms-budget request must pull the batch forward and execute.
  auto tight = batcher.submit(images[1], within(200ms));
  EXPECT_EQ(tight.get().numel(), kClasses);
  EXPECT_EQ(slow.get().numel(), kClasses);  // swept into the same EDF batch
  EXPECT_EQ(batcher.stats().shed, 0);
  EXPECT_LT(batcher.stats().batcher.latency.max_ms, 1500.0);
}

TEST(DeadlineBatcher, DeadOnArrivalIsShedAtSubmit) {
  auto compiled = make_compiled(71);
  DeadlineBatcher batcher(*compiled,
                          {.max_batch = 2, .manual_drain = true});
  const auto images = make_images(1, 72);
  auto f = batcher.submit(
      images[0], {.deadline = std::chrono::steady_clock::now() - 1ms});
  EXPECT_THROW(f.get(), serve::DeadlineExceeded);
  EXPECT_EQ(batcher.stats().shed, 1);
  EXPECT_EQ(batcher.stats().queue_depth, 0);
  // A stopped batcher throws for EVERY submission - dead-on-arrival
  // requests included; it does not keep shedding after shutdown.
  batcher.stop();
  EXPECT_THROW(batcher.submit(images[0],
                              {.deadline = std::chrono::steady_clock::now() -
                                           1ms}),
               Error);
  EXPECT_EQ(batcher.stats().shed, 1);
}

TEST(DeadlineBatcher, AgedNoDeadlineRequestCannotBeStarvedByDeadlineTraffic) {
  // EDF alone would starve a no-deadline request behind sustained deadline
  // traffic (kNoDeadline sorts last). Once the request has waited past
  // max_delay, batch formation must force it into the next full batch.
  auto compiled = make_compiled(67);
  DeadlineBatcher batcher(*compiled, {.max_batch = 2,
                                      .max_delay = std::chrono::microseconds(1000),
                                      .manual_drain = true});
  const auto images = make_images(6, 68);
  auto starved = batcher.submit(images[0]);  // no deadline
  std::this_thread::sleep_for(5ms);          // exhaust its max_delay budget
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::future<Tensor>> urgent;
  for (int i = 1; i < 6; ++i) {
    // All EDF-ahead of the no-deadline request.
    urgent.push_back(batcher.submit(
        images[static_cast<size_t>(i)],
        {.deadline = now + std::chrono::seconds(10 + i)}));
  }
  EXPECT_EQ(batcher.drain_one(), 2u);
  // The aged request rode along with the most urgent one.
  EXPECT_EQ(starved.wait_for(0ms), std::future_status::ready);
  EXPECT_EQ(urgent[0].wait_for(0ms), std::future_status::ready);
  EXPECT_EQ(urgent[1].wait_for(0ms), std::future_status::timeout);
  batcher.stop();
  for (auto& f : urgent) EXPECT_EQ(f.get().numel(), kClasses);
}

TEST(DeadlineBatcher, ExpiredEntriesDoNotHoldBoundedQueueCapacity) {
  auto compiled = make_compiled(69);
  DeadlineBatcher batcher(
      *compiled, {.max_batch = 2, .queue_capacity = 2, .manual_drain = true});
  const auto images = make_images(3, 70);
  // Fill the queue with requests that expire while waiting. The budget must
  // comfortably outlast the submit() calls themselves: a request whose
  // deadline passes DURING submit is shed dead-on-arrival and never queued,
  // which breaks this test's premise (both capacity slots held by expired
  // entries) - on a slow or contended host a 1us budget did exactly that,
  // and the later d0/d1.get() then waited forever on a request only the
  // never-reached third submit would have answered.
  auto d0 = batcher.submit(images[0], within(std::chrono::milliseconds(100)));
  auto d1 = batcher.submit(images[1], within(std::chrono::milliseconds(100)));
  ASSERT_EQ(batcher.stats().queue_depth, 2);  // both queued alive
  std::this_thread::sleep_for(150ms);         // ...and now both expired
  // Queue is "full" of dead entries - a live request must still be
  // admitted, shedding them instead of throwing QueueFull.
  auto live = batcher.submit(images[2]);
  EXPECT_THROW(d0.get(), serve::DeadlineExceeded);
  EXPECT_THROW(d1.get(), serve::DeadlineExceeded);
  EXPECT_EQ(batcher.stats().rejected, 0);
  EXPECT_EQ(batcher.stats().shed, 2);
  EXPECT_EQ(batcher.drain_one(), 1u);
  EXPECT_EQ(live.get().numel(), kClasses);
}

TEST(DeadlineBatcher, BoundedQueueRejectsWithQueueFull) {
  auto compiled = make_compiled(81);
  DeadlineBatcher batcher(
      *compiled, {.max_batch = 2, .queue_capacity = 2, .manual_drain = true});
  const auto images = make_images(3, 82);
  auto f0 = batcher.submit(images[0]);
  auto f1 = batcher.submit(images[1]);
  EXPECT_THROW(batcher.submit(images[2]), serve::QueueFull);
  EXPECT_EQ(batcher.stats().rejected, 1);
  EXPECT_EQ(batcher.stats().queue_depth, 2);
  EXPECT_EQ(batcher.drain_one(), 2u);
  // Capacity freed: admission works again.
  auto f2 = batcher.submit(images[2]);
  EXPECT_EQ(batcher.drain_one(), 1u);
  EXPECT_EQ(f0.get().numel(), kClasses);
  EXPECT_EQ(f1.get().numel(), kClasses);
  EXPECT_EQ(f2.get().numel(), kClasses);
}

TEST(DeadlineBatcher, OptionsValidation) {
  auto compiled = make_compiled(91);
  EXPECT_THROW(DeadlineBatcher(*compiled, {.max_batch = -1}),
               std::invalid_argument);
  EXPECT_THROW(
      DeadlineBatcher(*compiled,
                      {.max_delay = std::chrono::microseconds(-5)}),
      std::invalid_argument);
  EXPECT_THROW(DeadlineBatcher(*compiled, {.queue_capacity = -2}),
               std::invalid_argument);
}

// ---- Router ----------------------------------------------------------------

TEST(Router, RoundRobinCyclesAllReplicas) {
  Router router(RoutingPolicy::kRoundRobin, /*seed=*/0);
  const std::vector<int64_t> load{5, 0, 3};
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 9; ++i) ++hits[static_cast<size_t>(router.pick(load))];
  EXPECT_EQ(hits, (std::vector<int>{3, 3, 3}));
}

TEST(Router, LeastOutstandingPicksArgmin) {
  Router router(RoutingPolicy::kLeastOutstanding);
  EXPECT_EQ(router.pick(std::vector<int64_t>{4, 1, 2}), 1);
  EXPECT_EQ(router.pick(std::vector<int64_t>{0, 0, 2}), 0);  // first min
  EXPECT_EQ(router.pick(std::vector<int64_t>{7}), 0);
}

TEST(Router, PowerOfTwoPrefersLessLoadedOfItsSamples) {
  Router router(RoutingPolicy::kPowerOfTwo);
  // One replica massively loaded: po2 must route the clear majority away
  // from it (it only lands there when BOTH samples hit it, p = 1/R^2).
  const std::vector<int64_t> load{1000, 0, 0, 0};
  int overloaded = 0;
  const int picks = 400;
  for (int i = 0; i < picks; ++i) {
    const int r = router.pick(load);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 4);
    if (r == 0) ++overloaded;
  }
  EXPECT_LT(overloaded, picks / 8);  // expectation is picks/16
}

TEST(Router, PolicyNamesRoundTrip) {
  for (RoutingPolicy p :
       {RoutingPolicy::kRoundRobin, RoutingPolicy::kLeastOutstanding,
        RoutingPolicy::kPowerOfTwo}) {
    EXPECT_EQ(parse_routing_policy(routing_policy_name(p)), p);
  }
  EXPECT_THROW(parse_routing_policy("random"), Error);
}

// ---- ReplicaSet ------------------------------------------------------------

TEST(ReplicaSet, EveryReplicaBitIdenticalToPerImageEval) {
  ReplicaSet set(make_compiled(101), {.replicas = 3});
  ASSERT_EQ(set.replicas(), 3);
  const auto images = make_images(4, 102);
  // References from replica 0's own per-image eval forward.
  std::vector<Tensor> refs;
  for (const Tensor& img : images) {
    refs.push_back(set.replica_model(0).model().forward(img, false));
  }
  // Route requests to EVERY replica explicitly: any replica must answer
  // bit-identically (the batched outputs vs per-image eval invariant,
  // extended across the fleet).
  for (int r = 0; r < set.replicas(); ++r) {
    for (size_t i = 0; i < images.size(); ++i) {
      Tensor y = set.replica_batcher(r).infer(images[i]);
      EXPECT_TRUE(bit_identical(y, refs[i]))
          << "replica " << r << ", image " << i;
    }
  }
}

TEST(ReplicaSet, LanePartitioningAndStats) {
  ReplicaSet set(make_compiled(111), {.replicas = 2, .lane_threads = 1});
  const auto images = make_images(2, 112);
  (void)set.infer(images[0]);
  (void)set.infer(images[1]);
  const ShardStats stats = set.stats();
  EXPECT_EQ(stats.replicas, 2);
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.latency.count, 2);
  ASSERT_EQ(stats.per_replica.size(), 2u);
  for (const ReplicaStats& rs : stats.per_replica) {
    EXPECT_EQ(rs.lane_threads, 1u);
  }
  EXPECT_THROW(ReplicaSet(make_compiled(113), {.replicas = 0}),
               std::invalid_argument);
}

TEST(ReplicaSet, MultiThreadedStressAcrossReplicas) {
  constexpr int kClients = 6;
  constexpr int kPerClient = 8;
  auto prototype = make_compiled(121);
  const auto images = make_images(8, 122);
  std::vector<Tensor> refs;
  for (const Tensor& img : images) {
    refs.push_back(prototype->model().forward(img, false));
  }
  ReplicaSet set(std::move(prototype),
                 {.replicas = 2,
                  .policy = RoutingPolicy::kLeastOutstanding,
                  .max_batch = 4,
                  .max_delay = std::chrono::microseconds(500)});

  std::atomic<int> answered{0};
  std::atomic<int> mismatched{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int k = 0; k < kPerClient; ++k) {
        const size_t j =
            static_cast<size_t>((t * kPerClient + k) % images.size());
        Tensor y = set.infer(images[j]);
        if (!bit_identical(y, refs[j])) mismatched.fetch_add(1);
        answered.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(answered.load(), kClients * kPerClient);
  EXPECT_EQ(mismatched.load(), 0);
  const ShardStats stats = set.stats();
  EXPECT_EQ(stats.requests, kClients * kPerClient);
  EXPECT_EQ(stats.latency.count, kClients * kPerClient);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.rejected, 0);
}

TEST(ReplicaSet, StopDrainsAndRejectsNewWork) {
  ReplicaSet set(make_compiled(131),
                 {.replicas = 2,
                  .max_batch = 2,
                  .max_delay = std::chrono::microseconds(50000)});
  const auto images = make_images(5, 132);
  std::vector<std::future<Tensor>> futures;
  for (const Tensor& img : images) futures.push_back(set.submit(img));
  set.stop();  // must answer all five before joining
  for (auto& f : futures) EXPECT_EQ(f.get().numel(), kClasses);
  EXPECT_THROW(set.submit(images[0]), Error);
}

// ---- InferenceServer integration -------------------------------------------

TEST(ShardedServer, OneFieldRegistrationServesBitIdentical) {
  auto compiled = make_compiled(141);
  const auto images = make_images(6, 142);
  std::vector<Tensor> refs;
  for (const Tensor& img : images) {
    refs.push_back(compiled->model().forward(img, false));
  }
  serve::InferenceServer server;
  // Existing callers shard by changing one field.
  server.register_model("scc", std::move(compiled),
                        {.max_batch = 4,
                         .max_delay = std::chrono::microseconds(500),
                         .replicas = 2});
  constexpr int kClients = 4;
  std::atomic<int> mismatched{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int k = 0; k < 6; ++k) {
        const size_t j = static_cast<size_t>((t + k) % images.size());
        Tensor y = server.infer("scc", images[j]);
        if (!bit_identical(y, refs[j])) mismatched.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatched.load(), 0);

  const serve::ModelStats stats = server.stats("scc");
  ASSERT_TRUE(stats.shard.has_value());
  EXPECT_EQ(stats.shard->replicas, 2);
  EXPECT_EQ(stats.shard->requests, kClients * 6);
  EXPECT_EQ(stats.shard->per_replica.size(), 2u);
}

TEST(ShardedServer, DeadlineSubmitOnShardedAndPlainModels) {
  serve::InferenceServer server;
  server.register_model_sharded("sharded", make_compiled(151),
                                {.replicas = 2,
                                 .policy = RoutingPolicy::kRoundRobin});
  server.register_model("plain", make_compiled(152));
  const auto images = make_images(1, 153);

  // Generous deadline: answered normally on both paths.
  shard::SubmitOptions fine = within(std::chrono::microseconds(5'000'000));
  EXPECT_EQ(server.submit("sharded", images[0], fine).get().numel(), kClasses);
  EXPECT_EQ(server.submit("plain", images[0], fine).get().numel(), kClasses);

  // Already-expired deadline: shed on both paths.
  shard::SubmitOptions doomed;
  doomed.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  EXPECT_THROW(server.submit("sharded", images[0], doomed).get(),
               serve::DeadlineExceeded);
  EXPECT_THROW(server.submit("plain", images[0], doomed).get(),
               serve::DeadlineExceeded);
}

}  // namespace
}  // namespace dsx::shard
