// Tests for the parameter-free mixing primitives: shift convolution
// (ops/shift, paper ref [10]) and channel shuffle (ops/shuffle, paper ref
// [9]), their nn layers, and the Shift+SCC / DW+GPW+Shuffle scheme blocks.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "models/schemes.hpp"
#include "nn/containers.hpp"
#include "nn/layers_mix.hpp"
#include "nn/sgd.hpp"
#include "ops/depthwise.hpp"
#include "ops/shift.hpp"
#include "ops/shuffle.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor_ops.hpp"
#include "testing_utils.hpp"

namespace dsx {
namespace {

// ---- make_uniform_shifts ----------------------------------------------------

TEST(UniformShifts, Kernel1IsIdentity) {
  const auto shifts = make_uniform_shifts(7, 1);
  ASSERT_EQ(shifts.size(), 7u);
  for (const ShiftOffset& s : shifts) {
    EXPECT_EQ(s.dy, 0);
    EXPECT_EQ(s.dx, 0);
  }
}

TEST(UniformShifts, OffsetsStayInNeighbourhood) {
  const auto shifts = make_uniform_shifts(40, 5);
  for (const ShiftOffset& s : shifts) {
    EXPECT_GE(s.dy, -2);
    EXPECT_LE(s.dy, 2);
    EXPECT_GE(s.dx, -2);
    EXPECT_LE(s.dx, 2);
  }
}

TEST(UniformShifts, RoundRobinIsBalanced) {
  // Every displacement of the 3x3 neighbourhood must be used floor/ceil
  // (C / 9) times.
  const int64_t C = 21;  // 21 = 2*9 + 3
  const auto shifts = make_uniform_shifts(C, 3);
  std::map<std::pair<int64_t, int64_t>, int64_t> counts;
  for (const ShiftOffset& s : shifts) counts[{s.dy, s.dx}]++;
  EXPECT_EQ(counts.size(), 9u);
  for (const auto& [offset, count] : counts) {
    EXPECT_GE(count, C / 9);
    EXPECT_LE(count, C / 9 + 1);
  }
}

TEST(UniformShifts, RejectsEvenKernel) {
  EXPECT_THROW(make_uniform_shifts(8, 2), std::runtime_error);
  EXPECT_THROW(make_uniform_shifts(8, 0), std::runtime_error);
  EXPECT_THROW(make_uniform_shifts(0, 3), std::runtime_error);
}

// ---- shift forward ----------------------------------------------------------

TEST(ShiftForward, IdentityOffsetsCopyInput) {
  Rng rng(1);
  const Tensor in = random_uniform(make_nchw(2, 3, 5, 5), rng);
  const std::vector<ShiftOffset> shifts(3, ShiftOffset{0, 0});
  const Tensor out = shift_forward(in, shifts, 1);
  ASSERT_EQ(out.shape(), in.shape());
  for (int64_t i = 0; i < in.numel(); ++i) EXPECT_FLOAT_EQ(out[i], in[i]);
}

TEST(ShiftForward, DisplacesAndZeroPads) {
  // One channel, shift (dy=1, dx=-1): out(y,x) = in(y+1, x-1) with zeros
  // falling in from the bottom row / left column.
  Tensor in(make_nchw(1, 1, 3, 3));
  for (int64_t i = 0; i < 9; ++i) in[i] = static_cast<float>(i + 1);
  const Tensor out = shift_forward(in, {{1, -1}}, 1);
  // in =  1 2 3 / 4 5 6 / 7 8 9
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 0.0f);  // reads in(1,-1)
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), 4.0f);  // reads in(1,0)
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 2), 5.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 7.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 2, 0), 0.0f);  // reads in(3,-1)
  EXPECT_FLOAT_EQ(out.at(0, 0, 2, 2), 0.0f);  // reads in(3,1)
}

TEST(ShiftForward, StrideSubsamples) {
  Tensor in(make_nchw(1, 1, 4, 4));
  for (int64_t i = 0; i < 16; ++i) in[i] = static_cast<float>(i);
  const Tensor out = shift_forward(in, {{0, 0}}, 2);
  ASSERT_EQ(out.shape(), make_nchw(1, 1, 2, 2));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), 2.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 0), 8.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 10.0f);
}

TEST(ShiftForward, RejectsWrongOffsetCount) {
  Rng rng(2);
  const Tensor in = random_uniform(make_nchw(1, 4, 3, 3), rng);
  const std::vector<ShiftOffset> shifts(3);  // 3 offsets, 4 channels
  EXPECT_THROW(shift_forward(in, shifts, 1), std::runtime_error);
}

// Shift is depthwise convolution with a one-hot kernel: cross-validate
// against ops/depthwise over kernels and strides.
class ShiftVsDepthwise
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(ShiftVsDepthwise, MatchesOneHotDepthwise) {
  const auto [kernel, stride] = GetParam();
  Rng rng(7);
  const int64_t C = 2 * kernel * kernel + 1;  // exercise wrap of round-robin
  const Tensor in = random_uniform(make_nchw(2, C, 9, 9), rng);
  const auto shifts = make_uniform_shifts(C, kernel);

  // Depthwise weight: one-hot at (dy + K/2, dx + K/2) per channel.
  Tensor w(Shape{C, 1, kernel, kernel});
  for (int64_t c = 0; c < C; ++c) {
    const ShiftOffset s = shifts[static_cast<size_t>(c)];
    w.at(c, 0, s.dy + kernel / 2, s.dx + kernel / 2) = 1.0f;
  }
  DepthwiseArgs args;
  args.stride = stride;
  args.pad = kernel / 2;
  const Tensor dw = depthwise_forward(in, w, nullptr, args);
  const Tensor sh = shift_forward(in, shifts, stride);
  ASSERT_EQ(sh.shape(), dw.shape());
  for (int64_t i = 0; i < sh.numel(); ++i) {
    ASSERT_FLOAT_EQ(sh[i], dw[i]) << "at flat index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(KernelsAndStrides, ShiftVsDepthwise,
                         ::testing::Combine(::testing::Values<int64_t>(1, 3, 5),
                                            ::testing::Values<int64_t>(1, 2)));

// ---- shift backward ---------------------------------------------------------

class ShiftBackward
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(ShiftBackward, MatchesNumericGradient) {
  const auto [kernel, stride] = GetParam();
  Rng rng(11);
  const int64_t C = kernel * kernel;
  Tensor in = random_uniform(make_nchw(1, C, 5, 5), rng);
  const auto shifts = make_uniform_shifts(C, kernel);

  const Tensor out = shift_forward(in, shifts, stride);
  const testing::ProbeLoss probe(out.shape());
  const Tensor dinput = shift_backward(in.shape(), shifts, probe.mask, stride);

  const float err = testing::max_numeric_grad_error(
      in, [&] { return probe.value(shift_forward(in, shifts, stride)); },
      dinput);
  EXPECT_LT(err, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(KernelsAndStrides, ShiftBackward,
                         ::testing::Combine(::testing::Values<int64_t>(1, 3),
                                            ::testing::Values<int64_t>(1, 2)));

TEST(ShiftBackwardShape, RejectsMismatchedDoutput) {
  const Shape in_shape = make_nchw(1, 2, 6, 6);
  const std::vector<ShiftOffset> shifts(2);
  Tensor bad(make_nchw(1, 2, 5, 5));
  EXPECT_THROW(shift_backward(in_shape, shifts, bad, 1), std::runtime_error);
}

// ---- channel shuffle --------------------------------------------------------

TEST(ShuffleDestination, MatchesTransposeFormula) {
  // C=6, g=2: [0 1 2 | 3 4 5] -> positions [0 2 4 | 1 3 5].
  EXPECT_EQ(shuffle_destination(0, 6, 2), 0);
  EXPECT_EQ(shuffle_destination(1, 6, 2), 2);
  EXPECT_EQ(shuffle_destination(2, 6, 2), 4);
  EXPECT_EQ(shuffle_destination(3, 6, 2), 1);
  EXPECT_EQ(shuffle_destination(4, 6, 2), 3);
  EXPECT_EQ(shuffle_destination(5, 6, 2), 5);
}

TEST(ShuffleDestination, IsBijective) {
  const int64_t C = 24;
  for (int64_t g : {1, 2, 3, 4, 6, 8, 12, 24}) {
    std::vector<bool> hit(static_cast<size_t>(C), false);
    for (int64_t c = 0; c < C; ++c) {
      const int64_t d = shuffle_destination(c, C, g);
      ASSERT_GE(d, 0);
      ASSERT_LT(d, C);
      ASSERT_FALSE(hit[static_cast<size_t>(d)]) << "g=" << g << " c=" << c;
      hit[static_cast<size_t>(d)] = true;
    }
  }
}

TEST(ShuffleDestination, GroupsOneIsIdentity) {
  for (int64_t c = 0; c < 8; ++c) EXPECT_EQ(shuffle_destination(c, 8, 1), c);
}

class ShuffleRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(ShuffleRoundTrip, InverseIsShuffleWithComplementGroups) {
  const int64_t g = GetParam();
  Rng rng(3);
  const int64_t C = 24;
  const Tensor in = random_uniform(make_nchw(2, C, 4, 4), rng);
  const Tensor once = channel_shuffle_forward(in, g);
  const Tensor back = channel_shuffle_forward(once, C / g);
  for (int64_t i = 0; i < in.numel(); ++i) {
    ASSERT_FLOAT_EQ(back[i], in[i]) << "g=" << g;
  }
}

INSTANTIATE_TEST_SUITE_P(Groups, ShuffleRoundTrip,
                         ::testing::Values<int64_t>(1, 2, 3, 4, 6, 8, 12, 24));

TEST(ShuffleForward, MovesWholePlanes) {
  Rng rng(5);
  const Tensor in = random_uniform(make_nchw(1, 4, 3, 3), rng);
  const Tensor out = channel_shuffle_forward(in, 2);
  for (int64_t c = 0; c < 4; ++c) {
    const int64_t d = shuffle_destination(c, 4, 2);
    for (int64_t y = 0; y < 3; ++y) {
      for (int64_t x = 0; x < 3; ++x) {
        ASSERT_FLOAT_EQ(out.at(0, d, y, x), in.at(0, c, y, x));
      }
    }
  }
}

TEST(ShuffleBackward, IsInversePermutationOfForward) {
  Rng rng(6);
  const Tensor in = random_uniform(make_nchw(2, 12, 3, 3), rng);
  for (int64_t g : {2, 3, 4, 6}) {
    const Tensor fwd = channel_shuffle_forward(in, g);
    const Tensor restored = channel_shuffle_backward(fwd, g);
    for (int64_t i = 0; i < in.numel(); ++i) {
      ASSERT_FLOAT_EQ(restored[i], in[i]) << "g=" << g;
    }
  }
}

TEST(ShuffleForward, RejectsNonDivisibleGroups) {
  Rng rng(8);
  const Tensor in = random_uniform(make_nchw(1, 6, 2, 2), rng);
  EXPECT_THROW(channel_shuffle_forward(in, 4), std::runtime_error);
  EXPECT_THROW(channel_shuffle_forward(in, 0), std::runtime_error);
}

// ---- nn layers --------------------------------------------------------------

TEST(ShiftConv2dLayer, ForwardBackwardShapes) {
  nn::ShiftConv2d layer(6, 3, 2);
  Rng rng(9);
  const Tensor in = random_uniform(make_nchw(2, 6, 8, 8), rng);
  const Tensor out = layer.forward(in, /*training=*/true);
  EXPECT_EQ(out.shape(), make_nchw(2, 6, 4, 4));
  EXPECT_EQ(layer.output_shape(in.shape()), out.shape());
  const Tensor din = layer.backward(out);
  EXPECT_EQ(din.shape(), in.shape());
}

TEST(ShiftConv2dLayer, HasZeroCostAndNoParams) {
  nn::ShiftConv2d layer(8, 3);
  const scc::LayerCost cost = layer.cost(make_nchw(1, 8, 16, 16));
  EXPECT_EQ(cost.macs, 0.0);
  EXPECT_EQ(cost.params, 0.0);
  EXPECT_TRUE(layer.params().empty());
}

TEST(ShiftConv2dLayer, BackwardWithoutForwardThrows) {
  nn::ShiftConv2d layer(4, 3);
  Tensor dout(make_nchw(1, 4, 4, 4));
  EXPECT_THROW(layer.backward(dout), std::runtime_error);
}

TEST(ShiftConv2dLayer, RejectsChannelMismatch) {
  nn::ShiftConv2d layer(4, 3);
  Rng rng(10);
  const Tensor in = random_uniform(make_nchw(1, 5, 4, 4), rng);
  EXPECT_THROW(layer.forward(in, false), std::runtime_error);
  EXPECT_THROW(layer.output_shape(in.shape()), std::runtime_error);
}

TEST(ChannelShuffleLayer, ForwardBackwardRoundTrip) {
  nn::ChannelShuffle layer(4);
  Rng rng(12);
  const Tensor in = random_uniform(make_nchw(2, 8, 3, 3), rng);
  const Tensor out = layer.forward(in, true);
  EXPECT_EQ(out.shape(), in.shape());
  const Tensor din = layer.backward(out);
  for (int64_t i = 0; i < in.numel(); ++i) ASSERT_FLOAT_EQ(din[i], in[i]);
}

TEST(ChannelShuffleLayer, GradientFlowsThroughPermutation) {
  // d(shuffle)/dx is the permutation matrix itself; check numerically.
  nn::ChannelShuffle layer(2);
  Rng rng(13);
  Tensor in = random_uniform(make_nchw(1, 4, 2, 2), rng);
  const Tensor out = layer.forward(in, true);
  const testing::ProbeLoss probe(out.shape());
  const Tensor din = layer.backward(probe.mask);
  const float err = testing::max_numeric_grad_error(
      in, [&] { return probe.value(channel_shuffle_forward(in, 2)); }, din);
  EXPECT_LT(err, 1e-3f);
}

// ---- scheme blocks ----------------------------------------------------------

struct SchemeBlockCase {
  models::ConvScheme scheme;
  const char* label;
};

class SchemeBlock : public ::testing::TestWithParam<SchemeBlockCase> {};

TEST_P(SchemeBlock, BuildsAndTrainsOneStep) {
  const SchemeBlockCase c = GetParam();
  Rng rng(21);
  models::SchemeConfig cfg;
  cfg.scheme = c.scheme;
  cfg.cg = 2;
  cfg.co = 0.5;

  nn::Sequential seq;
  models::append_conv_block(seq, 8, 16, 3, 2, 1, cfg, rng);

  const Shape in_shape = make_nchw(2, 8, 8, 8);
  EXPECT_EQ(seq.output_shape(in_shape), make_nchw(2, 16, 4, 4));

  Rng data_rng(22);
  const Tensor in = random_uniform(in_shape, data_rng);
  const Tensor out = seq.forward(in, /*training=*/true);
  ASSERT_EQ(out.shape(), make_nchw(2, 16, 4, 4));

  // One full backward + SGD step must change the trainable parameters.
  const Tensor din = seq.backward(out);
  EXPECT_EQ(din.shape(), in_shape);
  auto params = seq.params();
  ASSERT_FALSE(params.empty());
  std::vector<float> before;
  for (nn::Param* p : params) before.push_back(p->value[0]);
  nn::SGD opt({.lr = 0.1f});
  opt.step(params);
  bool changed = false;
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i]->value[0] != before[i]) changed = true;
  }
  EXPECT_TRUE(changed) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    NewSchemes, SchemeBlock,
    ::testing::Values(SchemeBlockCase{models::ConvScheme::kDWGPWShuffle,
                                      "DW+GPW+Shuffle"},
                      SchemeBlockCase{models::ConvScheme::kShiftSCC,
                                      "Shift+SCC"}),
    [](const ::testing::TestParamInfo<SchemeBlockCase>& info) {
      return info.param.scheme == models::ConvScheme::kDWGPWShuffle
                 ? "DWGPWShuffle"
                 : "ShiftSCC";
    });

TEST(SchemeString, NamesNewSchemes) {
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWGPWShuffle;
  cfg.cg = 4;
  EXPECT_EQ(cfg.to_string(), "DW+GPW-cg4+Shuffle");
  cfg.scheme = models::ConvScheme::kShiftSCC;
  cfg.co = 0.5;
  EXPECT_EQ(cfg.to_string(), "Shift+SCC-cg4-co50%");
}

TEST(ShiftSCCBlock, CostDropsDWStageEntirely) {
  // Shift+SCC must cost exactly the SCC stage: the spatial stage is free.
  Rng rng(30);
  models::SchemeConfig shift_cfg;
  shift_cfg.scheme = models::ConvScheme::kShiftSCC;
  shift_cfg.cg = 2;
  shift_cfg.co = 0.5;
  nn::Sequential shift_seq;
  models::append_conv_block(shift_seq, 16, 16, 3, 1, 1, shift_cfg, rng);

  models::SchemeConfig dw_cfg = shift_cfg;
  dw_cfg.scheme = models::ConvScheme::kDWSCC;
  nn::Sequential dw_seq;
  models::append_conv_block(dw_seq, 16, 16, 3, 1, 1, dw_cfg, rng);

  const Shape in = make_nchw(1, 16, 8, 8);
  const scc::LayerCost shift_cost = shift_seq.cost(in);
  const scc::LayerCost dw_cost = dw_seq.cost(in);
  // DW adds K*K*C params and K*K*C*H*W MACs on top of the shared SCC+BN.
  EXPECT_DOUBLE_EQ(dw_cost.params - shift_cost.params, 9.0 * 16);
  EXPECT_DOUBLE_EQ(dw_cost.macs - shift_cost.macs, 9.0 * 16 * 8 * 8);
}

}  // namespace
}  // namespace dsx
