// Tests for the GEMM-based SCC implementation (core/scc_gemm) - the route
// the paper's §IV evaluates and rejects. The implementation must be
// numerically identical to the fused DSXplore kernels across the full
// (cg, co, stride, shape) grid, including the PW / GPW corner cases, while
// its cost structure (per-filter gathers, filter-sequential GEMMs) is what
// bench/micro_kernels measures against.
#include <gtest/gtest.h>

#include "core/scc_gemm.hpp"
#include "core/scc_kernels.hpp"
#include "nn/layers_conv.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor_ops.hpp"
#include "testing_utils.hpp"

namespace dsx::scc {
namespace {

SCCConfig make_cfg(int64_t cin, int64_t cout, int64_t cg, double co,
                   int64_t stride = 1) {
  SCCConfig cfg;
  cfg.in_channels = cin;
  cfg.out_channels = cout;
  cfg.groups = cg;
  cfg.overlap = co;
  cfg.stride = stride;
  return cfg;
}

struct SccCase {
  int64_t N, Cin, Cout, H, W, cg;
  double co;
  int64_t stride;
};

class SccGemmSweep : public ::testing::TestWithParam<SccCase> {};

TEST_P(SccGemmSweep, ForwardMatchesFusedKernel) {
  const SccCase p = GetParam();
  const SCCConfig cfg = make_cfg(p.Cin, p.Cout, p.cg, p.co, p.stride);
  ChannelWindowMap map(cfg);
  Rng rng(211);
  Tensor in = random_uniform(make_nchw(p.N, p.Cin, p.H, p.W), rng);
  Tensor w = random_uniform(Shape{p.Cout, map.group_width()}, rng);
  Tensor b = random_uniform(Shape{p.Cout}, rng);

  const Tensor fused = scc_forward(in, w, &b, map);
  const Tensor gemm = scc_forward_gemm(in, w, &b, map);
  ASSERT_EQ(gemm.shape(), fused.shape());
  EXPECT_LT(max_abs_diff(gemm, fused), 1e-4f) << cfg.to_string();
}

TEST_P(SccGemmSweep, ForwardWithoutBiasMatches) {
  const SccCase p = GetParam();
  const SCCConfig cfg = make_cfg(p.Cin, p.Cout, p.cg, p.co, p.stride);
  ChannelWindowMap map(cfg);
  Rng rng(213);
  Tensor in = random_uniform(make_nchw(p.N, p.Cin, p.H, p.W), rng);
  Tensor w = random_uniform(Shape{p.Cout, map.group_width()}, rng);
  EXPECT_LT(max_abs_diff(scc_forward_gemm(in, w, nullptr, map),
                         scc_forward(in, w, nullptr, map)),
            1e-4f);
}

TEST_P(SccGemmSweep, BackwardMatchesInputCentric) {
  const SccCase p = GetParam();
  const SCCConfig cfg = make_cfg(p.Cin, p.Cout, p.cg, p.co, p.stride);
  ChannelWindowMap map(cfg);
  Rng rng(217);
  Tensor in = random_uniform(make_nchw(p.N, p.Cin, p.H, p.W), rng);
  Tensor w = random_uniform(Shape{p.Cout, map.group_width()}, rng);
  Tensor dout = random_uniform(scc_output_shape(in.shape(), map), rng);

  const SCCGrads want = scc_backward_input_centric(in, w, dout, map,
                                                   /*need_dinput=*/true,
                                                   /*has_bias=*/true);
  const SCCGrads got = scc_backward_gemm(in, w, dout, map, true, true);
  EXPECT_LT(max_abs_diff(got.dinput, want.dinput), 1e-4f);
  EXPECT_LT(max_abs_diff(got.dweight, want.dweight), 1e-4f);
  EXPECT_LT(max_abs_diff(got.dbias, want.dbias), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SccGemmSweep,
    ::testing::Values(
        SccCase{1, 4, 8, 4, 4, 2, 0.5, 1},       // paper Fig. 5(a)
        SccCase{2, 6, 6, 3, 5, 2, 1.0 / 3.0, 1}, // paper Fig. 5(b)
        SccCase{1, 8, 16, 5, 5, 4, 0.5, 1},
        SccCase{2, 8, 8, 4, 4, 2, 0.25, 1},
        SccCase{1, 8, 16, 4, 4, 1, 1.0, 1},      // PW corner
        SccCase{1, 8, 16, 4, 4, 4, 0.0, 1},      // GPW corner
        SccCase{2, 8, 8, 6, 6, 2, 0.5, 2},       // strided
        SccCase{1, 16, 8, 3, 3, 8, 0.5, 1},      // Cout < Cin
        SccCase{1, 12, 24, 4, 4, 3, 0.5, 1}));   // non-power-of-two

TEST(SccGemmBackward, SkipsDinputWhenNotNeeded) {
  const SCCConfig cfg = make_cfg(8, 8, 2, 0.5);
  ChannelWindowMap map(cfg);
  Rng rng(219);
  Tensor in = random_uniform(make_nchw(1, 8, 4, 4), rng);
  Tensor w = random_uniform(Shape{8, 4}, rng);
  Tensor dout = random_uniform(scc_output_shape(in.shape(), map), rng);
  const SCCGrads g = scc_backward_gemm(in, w, dout, map,
                                       /*need_dinput=*/false,
                                       /*has_bias=*/false);
  EXPECT_FALSE(g.dinput.defined());
  EXPECT_FALSE(g.dbias.defined());
  EXPECT_TRUE(g.dweight.defined());
}

TEST(SccGemmBackward, RejectsWrongDoutputShape) {
  const SCCConfig cfg = make_cfg(8, 8, 2, 0.5);
  ChannelWindowMap map(cfg);
  Rng rng(223);
  Tensor in = random_uniform(make_nchw(1, 8, 4, 4), rng);
  Tensor w = random_uniform(Shape{8, 4}, rng);
  Tensor bad = random_uniform(make_nchw(1, 8, 3, 3), rng);
  EXPECT_THROW(scc_backward_gemm(in, w, bad, map, true, false),
               std::runtime_error);
}

TEST(SccGemmLayer, GemmStackImplTrainsLikeFused) {
  // The layer backend must be a drop-in: identical forward and identical
  // accumulated gradients as the fused implementation.
  const SCCConfig cfg = make_cfg(8, 12, 2, 0.5);
  Rng rng_a(31), rng_b(31);
  nn::SCCConv fused(cfg, rng_a, /*bias=*/true, nn::SCCImpl::kFused);
  nn::SCCConv gemm(cfg, rng_b, /*bias=*/true, nn::SCCImpl::kGemmStack);
  EXPECT_EQ(nn::scc_impl_name(gemm.impl()), "GEMM-stack");

  Rng data(33);
  const Tensor in = random_uniform(make_nchw(2, 8, 5, 5), data);
  const Tensor out_f = fused.forward(in, true);
  const Tensor out_g = gemm.forward(in, true);
  ASSERT_LT(max_abs_diff(out_f, out_g), 1e-4f);

  const Tensor dout = random_uniform(out_f.shape(), data);
  const Tensor din_f = fused.backward(dout);
  const Tensor din_g = gemm.backward(dout);
  EXPECT_LT(max_abs_diff(din_f, din_g), 1e-4f);
  auto pf = fused.params(), pg = gemm.params();
  ASSERT_EQ(pf.size(), pg.size());
  for (size_t i = 0; i < pf.size(); ++i) {
    EXPECT_LT(max_abs_diff(pf[i]->grad, pg[i]->grad), 1e-4f);
  }
}

TEST(SccGemmNumerics, WeightGradientMatchesNumericDerivative) {
  const SCCConfig cfg = make_cfg(6, 6, 2, 1.0 / 3.0);
  ChannelWindowMap map(cfg);
  Rng rng(227);
  Tensor in = random_uniform(make_nchw(1, 6, 3, 3), rng);
  Tensor w = random_uniform(Shape{6, 3}, rng);

  const Tensor out = scc_forward_gemm(in, w, nullptr, map);
  const testing::ProbeLoss probe(out.shape());
  const SCCGrads g = scc_backward_gemm(in, w, probe.mask, map, true, false);
  const float err = testing::max_numeric_grad_error(
      w, [&] { return probe.value(scc_forward_gemm(in, w, nullptr, map)); },
      g.dweight);
  EXPECT_LT(err, 1e-3f);
}

}  // namespace
}  // namespace dsx::scc
