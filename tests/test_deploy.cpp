// Tests for dsx::deploy: the versioned ModelStore (integrity-checked
// artifacts, warm-started compiles), the server's hot-swap/unregister paths
// (zero dropped requests under concurrent traffic), and the rollout ladder
// end to end - shadow -> canary (deterministic split) -> promote -> forced
// p99 regression -> guardrail auto-rollback.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "deploy/deploy.hpp"
#include "models/mobilenet.hpp"
#include "serve/server.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor_ops.hpp"
#include "tune/tune.hpp"
#include "testing_utils.hpp"

namespace fs = std::filesystem;

namespace dsx::deploy {
namespace {

constexpr int64_t kImage = 16;
constexpr int64_t kClasses = 10;

ArchSpec tiny_spec(uint64_t seed, double width_mult = 0.25) {
  ArchSpec spec;
  spec.family = "mobilenet";
  spec.num_classes = kClasses;
  spec.image = kImage;
  spec.scheme.scheme = models::ConvScheme::kDWSCC;
  spec.scheme.cg = 2;
  spec.scheme.co = 0.5;
  spec.scheme.width_mult = width_mult;
  spec.init_seed = seed;
  return spec;
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

std::vector<Tensor> make_images(int64_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> images;
  for (int64_t i = 0; i < count; ++i) {
    images.push_back(
        random_uniform(make_nchw(1, 3, kImage, kImage), rng, -1.0f, 1.0f));
  }
  return images;
}

using testing::bit_identical;

/// Per-image batch-1 answers of a store version compiled the same way the
/// rollout controller compiles it.
std::vector<Tensor> version_reference(const ModelStore& store,
                                      const std::string& model,
                                      const std::string& version,
                                      const std::vector<Tensor>& images) {
  auto compiled = store.compile(model, version);
  std::vector<Tensor> refs;
  for (const Tensor& img : images) refs.push_back(compiled->run(img));
  return refs;
}

// ---- request hashing -------------------------------------------------------

TEST(RequestHash, DeterministicAcrossCopies) {
  const auto images = make_images(4, 11);
  for (const Tensor& img : images) {
    const Tensor copy = img.clone();
    EXPECT_EQ(request_hash(img), request_hash(copy));
    const int bucket = request_bucket(img);
    EXPECT_GE(bucket, 0);
    EXPECT_LT(bucket, kRouteBuckets);
    EXPECT_EQ(bucket, request_bucket(copy));
  }
}

TEST(RequestHash, SpreadsDistinctImages) {
  const auto images = make_images(32, 12);
  int distinct = 0;
  for (size_t i = 1; i < images.size(); ++i) {
    if (request_hash(images[i]) != request_hash(images[0])) ++distinct;
  }
  EXPECT_GT(distinct, 25);  // FNV over float payloads must not collapse
}

// ---- arch specs ------------------------------------------------------------

TEST(ArchSpec, SerializationRoundTrip) {
  ArchSpec spec = tiny_spec(7, 0.5);
  spec.family = "vgg16";
  spec.num_classes = 42;
  spec.image = 32;
  spec.scheme.scc_impl = nn::SCCImpl::kGemmStack;
  std::stringstream blob;
  write_arch_spec(blob, spec);
  const ArchSpec back = read_arch_spec(blob);
  EXPECT_EQ(back.family, spec.family);
  EXPECT_EQ(back.num_classes, spec.num_classes);
  EXPECT_EQ(back.channels, spec.channels);
  EXPECT_EQ(back.image, spec.image);
  EXPECT_EQ(back.scheme.scheme, spec.scheme.scheme);
  EXPECT_EQ(back.scheme.cg, spec.scheme.cg);
  EXPECT_DOUBLE_EQ(back.scheme.co, spec.scheme.co);
  EXPECT_EQ(back.scheme.scc_impl, spec.scheme.scc_impl);
  EXPECT_DOUBLE_EQ(back.scheme.width_mult, spec.scheme.width_mult);
  EXPECT_EQ(back.init_seed, spec.init_seed);
}

TEST(ArchSpec, BuildRejectsUnknownFamily) {
  ArchSpec spec = tiny_spec(1);
  spec.family = "transformer";
  EXPECT_THROW(build_architecture(spec), Error);
}

TEST(ArchSpec, BuildsEveryKnownFamily) {
  for (const char* family : {"mobilenet", "resnet18", "vgg16"}) {
    ArchSpec spec = tiny_spec(1);
    spec.family = family;
    spec.image = 32;  // vgg needs >= 32
    auto net = build_architecture(spec);
    ASSERT_NE(net, nullptr) << family;
    EXPECT_GT(net->params().size(), 0u) << family;
  }
}

// ---- model store -----------------------------------------------------------

TEST(ModelStore, SaveLoadRoundTripRestoresPredictions) {
  ModelStore store(fresh_dir("store_roundtrip"));
  const ArchSpec spec = tiny_spec(21);
  auto net = build_architecture(spec);
  // Perturb away from the spec's init so the round trip provably carries the
  // weights through the checkpoint, not through the rebuild seed.
  for (nn::Param* p : net->params()) {
    for (int64_t i = 0; i < std::min<int64_t>(4, p->value.numel()); ++i) {
      p->value[i] += 0.25f;
    }
  }
  store.save_version("mnet", "v1", *net, spec);

  EXPECT_TRUE(store.has_version("mnet", "v1"));
  EXPECT_EQ(store.list_models(), std::vector<std::string>{"mnet"});
  EXPECT_EQ(store.list_versions("mnet"), std::vector<std::string>{"v1"});

  const VersionManifest m = store.manifest("mnet", "v1");
  EXPECT_EQ(m.model, "mnet");
  EXPECT_EQ(m.version, "v1");
  EXPECT_EQ(m.arch.family, "mobilenet");
  EXPECT_GT(m.weights.bytes, 0);
  EXPECT_FALSE(m.has_tuning_cache);

  auto loaded = store.load_model("mnet", "v1");
  const auto images = make_images(3, 22);
  for (const Tensor& img : images) {
    EXPECT_TRUE(bit_identical(loaded->forward(img, false),
                              net->forward(img, false)));
  }
}

TEST(ModelStore, VersionsAreImmutableAndNamesValidated) {
  ModelStore store(fresh_dir("store_immutable"));
  const ArchSpec spec = tiny_spec(23);
  auto net = build_architecture(spec);
  store.save_version("mnet", "v1", *net, spec);
  EXPECT_THROW(store.save_version("mnet", "v1", *net, spec), Error);
  EXPECT_THROW(store.save_version("../escape", "v1", *net, spec), Error);
  EXPECT_THROW(store.save_version("mnet", ".hidden", *net, spec), Error);
  EXPECT_THROW(store.save_version("", "v1", *net, spec), Error);
  // Read/remove paths validate names too - '..' must never escape the root.
  EXPECT_THROW(store.manifest("..", "v1"), Error);
  EXPECT_THROW(store.remove_version("..", "anything"), Error);
  EXPECT_THROW(store.list_versions(".."), Error);
  EXPECT_THROW(store.load_model("mnet", "../../v1"), Error);
  // An unbuildable spec is rejected at SAVE time - the store must never
  // publish weights behind an architecture no reader can reconstruct.
  ArchSpec bad = spec;
  bad.family = "transformer";
  EXPECT_THROW(store.save_version("mnet", "v9", *net, bad), Error);
  EXPECT_FALSE(store.has_version("mnet", "v9"));
}

TEST(ModelStore, RejectsCorruptedAndTruncatedArtifacts) {
  ModelStore store(fresh_dir("store_corrupt"));
  const ArchSpec spec = tiny_spec(25);
  auto net = build_architecture(spec);
  const std::string dir = store.save_version("mnet", "v1", *net, spec);
  const fs::path weights = fs::path(dir) / "weights.bin";

  // Flip one byte in the middle of the weights payload: size unchanged, so
  // only the checksum can catch it.
  {
    std::fstream f(weights, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(weights) / 2));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x5a);
    f.write(&byte, 1);
  }
  EXPECT_THROW(store.manifest("mnet", "v1"), Error);
  EXPECT_THROW(store.load_model("mnet", "v1"), Error);

  // Truncation: restore a fresh version, then chop the weights file.
  store.save_version("mnet", "v2", *net, spec);
  const fs::path w2 = fs::path(store.root()) / "mnet" / "v2" / "weights.bin";
  fs::resize_file(w2, fs::file_size(w2) / 2);
  EXPECT_THROW(store.manifest("mnet", "v2"), Error);

  // Manifest truncation is rejected too.
  store.save_version("mnet", "v3", *net, spec);
  const fs::path m3 = fs::path(store.root()) / "mnet" / "v3" / "manifest.bin";
  fs::resize_file(m3, fs::file_size(m3) - 6);
  EXPECT_THROW(store.manifest("mnet", "v3"), Error);
}

TEST(ModelStore, RemoveVersionDeletesAndPrunes) {
  ModelStore store(fresh_dir("store_remove"));
  const ArchSpec spec = tiny_spec(27);
  auto net = build_architecture(spec);
  store.save_version("mnet", "v1", *net, spec);
  store.save_version("mnet", "v2", *net, spec);
  store.remove_version("mnet", "v1");
  EXPECT_FALSE(store.has_version("mnet", "v1"));
  EXPECT_TRUE(store.has_version("mnet", "v2"));
  store.remove_version("mnet", "v2");
  EXPECT_TRUE(store.list_models().empty());
  EXPECT_THROW(store.remove_version("mnet", "v2"), Error);
}

TEST(ModelStore, CompileWarmStartsFromStoredTuningCache) {
  ModelStore store(fresh_dir("store_tune"));
  const ArchSpec spec = tiny_spec(29);

  // Measure once (kTune) so the session cache holds records for this
  // architecture's problems, then persist those records with the version.
  {
    auto net = build_architecture(spec);
    serve::CompileOptions copts;
    copts.max_batch = 4;
    copts.tuning = tune::Mode::kTune;
    copts.tuner = {.warmup = 1, .iters = 3};
    serve::CompiledModel measured(std::move(net), spec.image_shape(), copts);
    ASSERT_GT(measured.report().layers_tuned, 0);
  }
  auto net = build_architecture(spec);
  store.save_version("mnet", "v1", *net, spec,
                     &tune::Session::global().cache());
  ASSERT_TRUE(store.manifest("mnet", "v1").has_tuning_cache);

  // Forget the in-memory records so the warm start provably comes from the
  // stored artifact, then compile through the store: zero measurements.
  tune::Session::global().cache().clear();
  const int64_t tunes_before = tune::Session::global().tunes_performed();
  auto compiled =
      store.compile("mnet", "v1", serve::CompileOptions{.max_batch = 4});
  EXPECT_EQ(tune::Session::global().tunes_performed(), tunes_before);
  EXPECT_GT(compiled->report().layers_tuned, 0);
  EXPECT_EQ(compiled->options().tuning, tune::Mode::kCached);

  // The stored artifact must remain byte-identical (compile never writes
  // back into the immutable version).
  EXPECT_NO_THROW(store.manifest("mnet", "v1"));
}

// ---- server hot-swap / unregister ------------------------------------------

std::unique_ptr<serve::CompiledModel> compile_spec(const ArchSpec& spec,
                                                   int64_t max_batch = 4) {
  return std::make_unique<serve::CompiledModel>(
      build_architecture(spec), spec.image_shape(),
      serve::CompileOptions{.max_batch = max_batch});
}

TEST(InferenceServer, UnregisterModelFreesTheName) {
  serve::InferenceServer server;
  server.register_model("m", compile_spec(tiny_spec(31)));
  const auto images = make_images(2, 32);
  EXPECT_EQ(server.infer("m", images[0]).numel(), kClasses);

  server.unregister_model("m");
  EXPECT_FALSE(server.has_model("m"));
  EXPECT_THROW(server.submit("m", images[0]), Error);
  EXPECT_THROW(server.unregister_model("m"), Error);

  // The name is immediately reusable.
  server.register_model("m", compile_spec(tiny_spec(33)));
  EXPECT_EQ(server.infer("m", images[1]).numel(), kClasses);
}

TEST(InferenceServer, UnregisterAnswersEveryAcceptedRequest) {
  serve::InferenceServer server;
  server.register_model("m", compile_spec(tiny_spec(35)),
                        {.max_batch = 4,
                         .max_delay = std::chrono::microseconds(50000)});
  const auto images = make_images(6, 36);
  std::vector<std::future<Tensor>> futures;
  for (const Tensor& img : images) futures.push_back(server.submit("m", img));
  server.unregister_model("m");  // drains: answers all six
  for (auto& f : futures) EXPECT_EQ(f.get().numel(), kClasses);
}

TEST(InferenceServer, HotSwapSwitchesModelAtomically) {
  const ArchSpec spec_a = tiny_spec(41);
  const ArchSpec spec_b = tiny_spec(42);
  auto a = compile_spec(spec_a);
  auto b = compile_spec(spec_b);
  const auto images = make_images(4, 43);
  std::vector<Tensor> ref_a, ref_b;
  {
    auto ra = compile_spec(spec_a);
    auto rb = compile_spec(spec_b);
    for (const Tensor& img : images) {
      ref_a.push_back(ra->run(img));
      ref_b.push_back(rb->run(img));
    }
  }
  ASSERT_GT(max_abs_diff(ref_a[0], ref_b[0]), 1e-3f);

  serve::InferenceServer server;
  server.register_model("m", std::move(a));
  for (size_t i = 0; i < images.size(); ++i) {
    EXPECT_TRUE(bit_identical(server.infer("m", images[i]), ref_a[i]));
  }
  const serve::SwapReport report = server.swap_model("m", std::move(b));
  EXPECT_GE(report.drained, 0);
  for (size_t i = 0; i < images.size(); ++i) {
    EXPECT_TRUE(bit_identical(server.infer("m", images[i]), ref_b[i]));
  }
  EXPECT_THROW(server.swap_model("nope", compile_spec(spec_a)), Error);
}

TEST(InferenceServer, HotSwapUnderConcurrentTrafficDropsNothing) {
  // 4 client threads hammer one name while the main thread hot-swaps the
  // model repeatedly (including onto a 2-replica sharded fleet). Contract:
  // no submit fails, every request is answered exactly once, and every
  // answer is one of the two versions' outputs - never garbage.
  const ArchSpec spec_a = tiny_spec(45);
  const ArchSpec spec_b = tiny_spec(46);
  const auto images = make_images(4, 47);
  std::vector<Tensor> ref_a, ref_b;
  {
    auto ra = compile_spec(spec_a);
    auto rb = compile_spec(spec_b);
    for (const Tensor& img : images) {
      ref_a.push_back(ra->run(img));
      ref_b.push_back(rb->run(img));
    }
  }

  serve::InferenceServer server;
  server.register_model("m", compile_spec(spec_a),
                        {.max_delay = std::chrono::microseconds(300)});

  constexpr int kClients = 4;
  constexpr int kPerClient = 40;
  std::atomic<int> answered{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        const size_t j = static_cast<size_t>(c + r) % images.size();
        const Tensor y = server.infer("m", images[j]);
        if (!bit_identical(y, ref_a[j]) && !bit_identical(y, ref_b[j])) {
          wrong.fetch_add(1);
        }
        answered.fetch_add(1);
      }
    });
  }
  // Swap back and forth while traffic flows; one swap lands on a sharded
  // fleet to cover the ReplicaSet path.
  for (int s = 0; s < 4; ++s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    const ArchSpec& spec = (s % 2 == 0) ? spec_b : spec_a;
    serve::BatcherOptions opts;
    opts.max_delay = std::chrono::microseconds(300);
    if (s == 2) opts.replicas = 2;
    server.swap_model("m", compile_spec(spec), opts);
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(answered.load(), kClients * kPerClient);
  EXPECT_EQ(wrong.load(), 0);
}

// ---- rollout ladder end to end ---------------------------------------------

TEST(Rollout, ShadowCanaryPromoteThenGuardrailRollback) {
  ModelStore store(fresh_dir("store_rollout"));

  // v1/v2: same tiny design point, different weights. v3: a 2.0-width
  // variant of the same family - ~64x the MACs, a p99 regression heavy
  // enough to clear the guardrail ratio even when CI contention inflates
  // the primary's own tail latency.
  const ArchSpec spec_v1 = tiny_spec(51);
  const ArchSpec spec_v2 = tiny_spec(52);
  const ArchSpec spec_v3 = tiny_spec(53, /*width_mult=*/2.0);

  // Measure v1's problems once and persist the records with v2, so staging
  // v2 warm-starts (v1 and v2 share every problem shape).
  {
    auto net = build_architecture(spec_v1);
    serve::CompileOptions copts;
    copts.max_batch = 4;
    copts.tuning = tune::Mode::kTune;
    copts.tuner = {.warmup = 1, .iters = 3};
    serve::CompiledModel measured(std::move(net), spec_v1.image_shape(),
                                  copts);
  }
  {
    auto v1 = build_architecture(spec_v1);
    store.save_version("mnet", "v1", *v1, spec_v1);
    auto v2 = build_architecture(spec_v2);
    store.save_version("mnet", "v2", *v2, spec_v2,
                       &tune::Session::global().cache());
    auto v3 = build_architecture(spec_v3);
    store.save_version("mnet", "v3", *v3, spec_v3);
  }

  const auto images = make_images(24, 54);
  const auto ref_v1 = version_reference(store, "mnet", "v1", images);
  const auto ref_v2 = version_reference(store, "mnet", "v2", images);

  serve::InferenceServer server;
  RolloutOptions ropts;
  ropts.shadow_fraction = 0.5;  // plenty of mirrors from 24 images
  ropts.canary_fraction = 0.25;
  // min_samples = 40 keeps the guardrail UNARMED through v2's (healthy)
  // shadow+canary phases (~24 candidate answers) and arms it only once the
  // deliberately slow v3 has enough samples that its p99 is dominated by
  // real execution cost, not a single scheduler hiccup.
  ropts.guardrail_min_samples = 40;
  ropts.guardrail_max_p99_ratio = 3.0;
  ropts.guardrail_check_every = 8;
  RolloutController rollout(server, store, ropts);

  int64_t accepted = 0;  // every request the ladder accepts must answer
  const auto drive = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (const Tensor& img : images) {
        (void)rollout.infer("mnet", img);  // .get() inside: answered or throw
        ++accepted;
      }
    }
  };

  // --- live: v1 only -------------------------------------------------------
  rollout.deploy("mnet", "v1", serve::CompileOptions{.max_batch = 4});
  for (size_t i = 0; i < images.size(); ++i) {
    EXPECT_TRUE(bit_identical(rollout.infer("mnet", images[i]), ref_v1[i]));
    ++accepted;
  }

  // --- stage v2: shadow ----------------------------------------------------
  const int64_t tunes_before = tune::Session::global().tunes_performed();
  tune::Session::global().cache().clear();  // force the store artifact path
  rollout.stage("mnet", "v2", serve::CompileOptions{.max_batch = 4});
  // Warm start: staging compiled v2 without a single measurement, yet the
  // plan resolved its call sites from the stored records.
  EXPECT_EQ(tune::Session::global().tunes_performed(), tunes_before);
  EXPECT_GT(server.stats("mnet@v2").compile.layers_tuned, 0);

  RolloutStatus status = rollout.status("mnet");
  EXPECT_EQ(status.phase, Phase::kShadow);
  EXPECT_EQ(status.candidate_version, "v2");

  // Shadowed traffic: the caller's reply is ALWAYS v1's output.
  for (size_t i = 0; i < images.size(); ++i) {
    EXPECT_TRUE(bit_identical(rollout.infer("mnet", images[i]), ref_v1[i]));
    ++accepted;
  }
  rollout.drain_shadow_compares();
  status = rollout.status("mnet");
  EXPECT_GT(status.shadow.mirrored, 0);
  EXPECT_EQ(status.shadow.compared, status.shadow.mirrored);
  EXPECT_EQ(status.shadow.errors, 0);
  // v1 != v2, so the comparator must flag disagreement - shadow's whole job.
  EXPECT_GT(status.shadow.mismatches, 0);
  EXPECT_GT(status.shadow.max_abs_diff, 0.0);

  // --- canary at 25%: deterministic split ----------------------------------
  rollout.advance_to_canary("mnet");
  EXPECT_DOUBLE_EQ(rollout.status("mnet").split_fraction, 0.25);
  int canary_routed = 0;
  for (int round = 0; round < 2; ++round) {
    for (size_t i = 0; i < images.size(); ++i) {
      const bool expect_candidate = request_bucket(images[i]) < 2500;
      const Tensor y = rollout.infer("mnet", images[i]);
      ++accepted;
      // The same image lands on the same side every round (deterministic
      // hash), and each side's answer is bit-identical to its version.
      if (expect_candidate) {
        EXPECT_TRUE(bit_identical(y, ref_v2[i])) << "image " << i;
        ++canary_routed;
      } else {
        EXPECT_TRUE(bit_identical(y, ref_v1[i])) << "image " << i;
      }
    }
  }
  EXPECT_GT(canary_routed, 0);

  // --- promote: v2 becomes live, v1 drains ---------------------------------
  const RolloutStatus pre_promote = rollout.status("mnet");
  rollout.promote("mnet");
  status = rollout.status("mnet");
  EXPECT_EQ(status.phase, Phase::kLive);
  EXPECT_EQ(status.live_version, "v2");
  EXPECT_EQ(status.promotions, 1);
  EXPECT_FALSE(server.has_model("mnet@v2"));  // alias consumed by the swap
  for (size_t i = 0; i < images.size(); ++i) {
    EXPECT_TRUE(bit_identical(rollout.infer("mnet", images[i]), ref_v2[i]));
    ++accepted;
  }

  // The healthy v2 rollout must have finished BELOW the guardrail's arming
  // threshold - otherwise the phases above were themselves at (noise) risk
  // of an auto-rollback and this test's sizing needs revisiting.
  ASSERT_LT(pre_promote.candidate_requests + pre_promote.candidate_errors,
            ropts.guardrail_min_samples);

  // --- stage v3 (64x MACs), canary, and watch the guardrail fire -----------
  rollout.stage("mnet", "v3", serve::CompileOptions{.max_batch = 4});
  // 100% canary: every request routes to the slow candidate, so it crosses
  // guardrail_min_samples fastest (the deterministic 25% split was already
  // verified on v2). Every reply still arrives; once the guardrail rolls
  // back mid-drive, later submits just go back to the primary.
  rollout.advance_to_canary("mnet", 1.0);
  drive(static_cast<int>(ropts.guardrail_min_samples) /
            static_cast<int>(images.size()) + 2);
  rollout.check_guardrail("mnet");
  status = rollout.status("mnet");
  EXPECT_TRUE(status.rolled_back);
  EXPECT_NE(status.rollback_reason.find("guardrail"), std::string::npos);
  EXPECT_EQ(status.phase, Phase::kLive);
  EXPECT_EQ(status.live_version, "v2");
  EXPECT_FALSE(server.has_model("mnet@v3"));

  // Post-rollback: ALL traffic (including former canary buckets) is v2.
  for (size_t i = 0; i < images.size(); ++i) {
    EXPECT_TRUE(bit_identical(rollout.infer("mnet", images[i]), ref_v2[i]));
    ++accepted;
  }
  // Exactly-once across the whole ladder: every accepted request produced
  // exactly one reply (each infer() above returned or threw; none threw).
  EXPECT_GT(accepted, 0);
}

TEST(Rollout, ManualRollbackDropsCandidate) {
  ModelStore store(fresh_dir("store_manual_rb"));
  const ArchSpec spec_v1 = tiny_spec(61);
  const ArchSpec spec_v2 = tiny_spec(62);
  {
    auto v1 = build_architecture(spec_v1);
    store.save_version("mnet", "v1", *v1, spec_v1);
    auto v2 = build_architecture(spec_v2);
    store.save_version("mnet", "v2", *v2, spec_v2);
  }
  serve::InferenceServer server;
  RolloutController rollout(server, store);
  rollout.deploy("mnet", "v1");
  rollout.stage("mnet", "v2");
  EXPECT_THROW(rollout.stage("mnet", "v2"), Error);  // one candidate at a time
  rollout.rollback("mnet");
  const RolloutStatus status = rollout.status("mnet");
  EXPECT_TRUE(status.rolled_back);
  EXPECT_EQ(status.rollback_reason, "manual");
  EXPECT_EQ(status.phase, Phase::kLive);
  EXPECT_FALSE(server.has_model("mnet@v2"));
  // And the ladder is reusable: stage again after rollback.
  rollout.stage("mnet", "v2");
  EXPECT_EQ(rollout.status("mnet").phase, Phase::kShadow);
}

TEST(Rollout, AdoptManagesInProcessModels) {
  ModelStore store(fresh_dir("store_adopt"));
  serve::InferenceServer server;
  server.register_model("m", compile_spec(tiny_spec(71)));
  RolloutController rollout(server, store);
  EXPECT_THROW(rollout.adopt("ghost", "v0"), Error);
  rollout.adopt("m", "v0");
  EXPECT_EQ(rollout.status("m").live_version, "v0");
  const auto images = make_images(1, 72);
  EXPECT_EQ(rollout.infer("m", images[0]).numel(), kClasses);
}

}  // namespace
}  // namespace dsx::deploy
