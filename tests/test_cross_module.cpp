// Cross-module integration tests: the extension modules composed the way a
// deployment pipeline would actually chain them (prune -> quantize, BN
// folding through shift blocks, checkpointing parameter-free layers,
// per-layer allocation on a real model plan, implementation switching).
#include <gtest/gtest.h>

#include "data/synth.hpp"
#include "explore/design_space.hpp"
#include "models/mobilenet.hpp"
#include "nn/bn_folding.hpp"
#include "nn/checkpoint.hpp"
#include "nn/layers_conv.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"
#include "prune/prune.hpp"
#include "quant/quant_layers.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor_ops.hpp"

namespace dsx {
namespace {

TEST(PruneThenQuantize, ZerosSurviveQuantizationExactly) {
  // A pruned weight has exact zeros; int8 quantization must keep them at
  // code 0, so the compression stack composes without densifying.
  scc::SCCConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 16;
  cfg.groups = 2;
  cfg.overlap = 0.5;
  Rng rng(131);
  nn::SCCConv layer(cfg, rng);
  auto params = layer.params();
  prune::Pruner pruner = prune::Pruner::magnitude(params, 0.5);
  const double sparsity_before =
      prune::measured_sparsity(layer.weight_param().value);

  quant::QuantSCCConv qlayer(layer, 0.01f);
  const Tensor requantized = quant::dequantize(qlayer.qweight());
  EXPECT_DOUBLE_EQ(prune::measured_sparsity(requantized), sparsity_before);
}

TEST(PruneThenQuantize, WholePipelineKeepsModelRunnable) {
  Rng rng(137);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWSCC;
  cfg.cg = 2;
  cfg.co = 0.5;
  cfg.width_mult = 0.125;
  auto model = models::build_mobilenet(4, cfg, rng);

  data::Dataset ds = data::make_synth_cifar(8, 139, 16, 3, 4);
  nn::SGD opt({.lr = 0.05f});
  nn::Trainer trainer(*model, opt);
  trainer.train_batch(ds.images, ds.labels);

  auto params = model->params();
  prune::Pruner pruner = prune::Pruner::global_magnitude(params, 0.5);
  nn::fold_batchnorm(*model);
  const quant::QuantizeReport report =
      quant::quantize_scc_layers(*model, ds.images);
  EXPECT_EQ(report.layers_quantized, 13);

  const Tensor logits = model->forward(ds.images, false);
  EXPECT_EQ(logits.shape(), (Shape{8, 4}));
  for (int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(logits[i]));
  }
}

TEST(BnFolding, SkipsShiftStagesButFoldsSccStages) {
  // In Shift+SCC blocks the first BN follows a parameter-free shift - it
  // has nothing to fold into and must survive; the SCC->BN pairs fold.
  Rng rng(149);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kShiftSCC;
  cfg.cg = 2;
  cfg.co = 0.5;
  nn::Sequential seq;
  models::append_conv_block(seq, 8, 16, 3, 1, 1, cfg, rng);
  models::append_conv_block(seq, 16, 16, 3, 1, 1, cfg, rng);

  // Realistic BN statistics from a few training steps.
  Rng data(151);
  const Tensor x = random_uniform(make_nchw(4, 8, 8, 8), data);
  for (int i = 0; i < 3; ++i) {
    const Tensor y = seq.forward(x, true);
    seq.backward(y);
  }
  const Tensor before = seq.forward(x, false);
  const int folded = nn::fold_batchnorm(seq);
  EXPECT_EQ(folded, 2);  // only the two SCC->BN pairs
  const Tensor after = seq.forward(x, false);
  EXPECT_LT(max_abs_diff(before, after), 2e-4f);
}

TEST(Checkpoint, RoundTripsModelsWithParameterFreeLayers) {
  // Shift / shuffle layers own no tensors; save/load must still line up.
  Rng rng_a(157), rng_b(157);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWGPWShuffle;
  cfg.cg = 2;
  cfg.width_mult = 0.125;
  auto source = models::build_mobilenet(4, cfg, rng_a);
  auto target = models::build_mobilenet(4, cfg, rng_b);

  // Diverge the source, then restore into the target.
  Rng data(159);
  const Tensor x = random_uniform(make_nchw(2, 3, 16, 16), data);
  nn::SGD opt({.lr = 0.1f});
  nn::Trainer trainer(*source, opt);
  std::vector<int32_t> labels = {0, 1};
  trainer.train_batch(x, labels);

  const std::string path = ::testing::TempDir() + "shuffle_model.ckpt";
  nn::save_checkpoint_file(*source, path);
  nn::load_checkpoint_file(*target, path);
  std::remove(path.c_str());

  // Checkpoints carry parameters (not BN running buffers), so compare
  // training-mode outputs, which depend only on parameters + batch stats.
  const Tensor a = source->forward(x, true);
  const Tensor b = target->forward(x, true);
  EXPECT_LT(max_abs_diff(a, b), 1e-6f);
}

TEST(PerLayerAllocation, WorksOnTheMobileNetBlockPlan) {
  // Fusion sites of MobileNet-v1 at width 0.25 on 32x32 inputs: channel
  // plan {64..1024} scaled, spatial halving at the stride-2 blocks.
  const std::vector<std::pair<int64_t, int64_t>> plan = {
      {64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},  {512, 2}, {512, 1},
      {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1}};
  std::vector<explore::LayerSite> sites;
  int64_t in_c = 8, spatial = 32;
  for (const auto& [out, stride] : plan) {
    if (stride == 2) spatial /= 2;
    const int64_t out_c = std::max<int64_t>(8, out / 4);
    sites.push_back({in_c, out_c, spatial});
    in_c = out_c;
  }

  const std::vector<int64_t> cgs = {1, 2, 4, 8};
  double full = 0.0;
  for (const auto& s : sites) full += explore::site_mmacs(s, 1);
  const explore::Allocation alloc =
      explore::allocate_per_layer(sites, cgs, full / 3.0);
  EXPECT_LE(alloc.total_mmacs, full / 3.0);
  // Every assignment is valid for its site, and the budget forced real work.
  int64_t bumped = 0;
  for (size_t s = 0; s < sites.size(); ++s) {
    EXPECT_EQ(sites[s].in_channels % alloc.cg[s], 0);
    EXPECT_EQ(sites[s].out_channels % alloc.cg[s], 0);
    bumped += alloc.cg[s] > 1;
  }
  EXPECT_GT(bumped, 0);
}

TEST(ImplSwitch, GemmStackSwapsInAfterTraining) {
  // A model trained with fused kernels must produce identical predictions
  // after switching every SCC layer to the GEMM-stack implementation.
  Rng rng(163);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWSCC;
  cfg.cg = 2;
  cfg.co = 0.5;
  cfg.width_mult = 0.125;
  auto model = models::build_mobilenet(4, cfg, rng);

  data::Dataset ds = data::make_synth_cifar(4, 167, 16, 3, 4);
  nn::SGD opt({.lr = 0.05f});
  nn::Trainer trainer(*model, opt);
  trainer.train_batch(ds.images, ds.labels);

  const Tensor fused = model->forward(ds.images, false);
  model->for_each_layer([](nn::Layer& layer) {
    if (auto* scc = dynamic_cast<nn::SCCConv*>(&layer)) {
      scc->set_impl(nn::SCCImpl::kGemmStack);
    }
  });
  const Tensor gemm = model->forward(ds.images, false);
  EXPECT_LT(max_abs_diff(fused, gemm), 1e-4f);
}

}  // namespace
}  // namespace dsx
