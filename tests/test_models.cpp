// Tests for the model zoo: shape correctness across depths and schemes,
// parameter accounting against the analytic cost model, and the FLOPs /
// parameter-reduction relations behind the paper's Tables II-IV.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "models/mobilenet.hpp"
#include "models/resnet.hpp"
#include "models/schemes.hpp"
#include "models/vgg.hpp"
#include "nn/layers_basic.hpp"

namespace dsx::models {
namespace {

SchemeConfig make_scheme(ConvScheme scheme, int64_t cg = 2, double co = 0.5,
                         double width = 1.0) {
  SchemeConfig cfg;
  cfg.scheme = scheme;
  cfg.cg = cg;
  cfg.co = co;
  cfg.width_mult = width;
  return cfg;
}

// ---- scale_channels ---------------------------------------------------------

TEST(Schemes, ScaleChannelsRoundsToMultiplesOf8) {
  SchemeConfig cfg;
  cfg.width_mult = 0.25;
  EXPECT_EQ(scale_channels(64, cfg), 16);
  EXPECT_EQ(scale_channels(100, cfg), 24);
  EXPECT_EQ(scale_channels(8, cfg), 8);  // floor at 8
  cfg.width_mult = 1.0;
  EXPECT_EQ(scale_channels(512, cfg), 512);
}

TEST(Schemes, SchemeNames) {
  EXPECT_EQ(make_scheme(ConvScheme::kStandard).to_string(), "Origin");
  EXPECT_EQ(make_scheme(ConvScheme::kDWPW).to_string(), "DW+PW");
  EXPECT_EQ(make_scheme(ConvScheme::kDWGPW, 4).to_string(), "DW+GPW-cg4");
  EXPECT_EQ(make_scheme(ConvScheme::kDWSCC, 2, 0.5).to_string(),
            "DW+SCC-cg2-co50%");
}

TEST(Schemes, ConvBlockShapes) {
  Rng rng(1);
  for (ConvScheme scheme : {ConvScheme::kStandard, ConvScheme::kDWPW,
                            ConvScheme::kDWGPW, ConvScheme::kDWSCC}) {
    nn::Sequential seq;
    append_conv_block(seq, 16, 32, 3, 2, 1, make_scheme(scheme), rng);
    EXPECT_EQ(seq.output_shape(make_nchw(1, 16, 8, 8)), make_nchw(1, 32, 4, 4))
        << make_scheme(scheme).to_string();
  }
}

TEST(Schemes, GpwRejectsNonDivisibleChannels) {
  Rng rng(2);
  nn::Sequential seq;
  EXPECT_THROW(append_conv_block(seq, 6, 8, 3, 1, 1,
                                 make_scheme(ConvScheme::kDWGPW, 4), rng),
               Error);
}

// ---- builders produce working models -------------------------------------------

struct ModelCase {
  const char* name;
  ConvScheme scheme;
};

class AllModels : public ::testing::TestWithParam<ModelCase> {};

TEST_P(AllModels, BuildForwardShapes) {
  const ModelCase p = GetParam();
  Rng rng(3);
  const SchemeConfig cfg = make_scheme(p.scheme, 2, 0.5, /*width=*/0.125);

  auto vgg = build_vgg(16, 10, 32, cfg, rng);
  EXPECT_EQ(vgg->output_shape(make_nchw(2, 3, 32, 32)), (Shape{2, 10}));

  auto mob = build_mobilenet(10, cfg, rng);
  EXPECT_EQ(mob->output_shape(make_nchw(2, 3, 32, 32)), (Shape{2, 10}));

  auto res = build_resnet(18, 10, cfg, rng);
  EXPECT_EQ(res->output_shape(make_nchw(2, 3, 32, 32)), (Shape{2, 10}));
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, AllModels,
    ::testing::Values(ModelCase{"origin", ConvScheme::kStandard},
                      ModelCase{"dwpw", ConvScheme::kDWPW},
                      ModelCase{"dwgpw", ConvScheme::kDWGPW},
                      ModelCase{"dwscc", ConvScheme::kDWSCC}));

TEST(Models, Vgg19HasMoreLayersThanVgg16) {
  Rng rng(4);
  const SchemeConfig cfg = make_scheme(ConvScheme::kStandard, 2, 0.5, 0.125);
  auto v16 = build_vgg(16, 10, 32, cfg, rng);
  auto v19 = build_vgg(19, 10, 32, cfg, rng);
  EXPECT_GT(v19->size(), v16->size());
  EXPECT_GT(v19->cost(make_nchw(1, 3, 32, 32)).macs,
            v16->cost(make_nchw(1, 3, 32, 32)).macs);
}

TEST(Models, Resnet50DeeperAndCostlierThanResnet18) {
  Rng rng(5);
  const SchemeConfig cfg = make_scheme(ConvScheme::kStandard, 2, 0.5, 0.125);
  auto r18 = build_resnet(18, 10, cfg, rng);
  auto r50 = build_resnet(50, 10, cfg, rng);
  EXPECT_EQ(r50->output_shape(make_nchw(1, 3, 32, 32)), (Shape{1, 10}));
  EXPECT_GT(r50->cost(make_nchw(1, 3, 32, 32)).params,
            r18->cost(make_nchw(1, 3, 32, 32)).params);
}

TEST(Models, InvalidDepthsRejected) {
  Rng rng(6);
  const SchemeConfig cfg = make_scheme(ConvScheme::kStandard);
  EXPECT_THROW(build_vgg(13, 10, 32, cfg, rng), Error);
  EXPECT_THROW(build_resnet(34, 10, cfg, rng), Error);
}

TEST(Models, ForwardRunsAtTinyWidth) {
  Rng rng(7);
  const SchemeConfig cfg = make_scheme(ConvScheme::kDWSCC, 2, 0.5, 0.125);
  auto model = build_mobilenet(10, cfg, rng);
  Rng drng(8);
  Tensor x = random_uniform(make_nchw(2, 3, 16, 16), drng);
  Tensor logits = model->forward(x, /*training=*/false);
  EXPECT_EQ(logits.shape(), (Shape{2, 10}));
}

// ---- parameter accounting --------------------------------------------------------

TEST(Models, CostModelParamsMatchActualParamTensors) {
  // cost().params counts conv/fc weights + BN affine; the instantiated model
  // must hold exactly that many scalars.
  Rng rng(9);
  for (ConvScheme scheme : {ConvScheme::kStandard, ConvScheme::kDWPW,
                            ConvScheme::kDWGPW, ConvScheme::kDWSCC}) {
    const SchemeConfig cfg = make_scheme(scheme, 2, 0.5, 0.25);
    auto model = build_mobilenet(10, cfg, rng);
    const double modeled = model->cost(make_nchw(1, 3, 32, 32)).params;
    const int64_t actual = nn::param_count(model->params());
    EXPECT_DOUBLE_EQ(modeled, static_cast<double>(actual))
        << cfg.to_string();
  }
}

// ---- Table II / IV relations (full width, analytic) --------------------------------

TEST(PaperTables, Vgg16OriginCostsMatchPaper) {
  // Paper Table II: VGG16 Origin = 314.16 MFLOPs / 14.73M params on CIFAR-10.
  // Our VGG16 counts conv+fc MACs; BN affine params are a <1% additive
  // difference, so compare with a 5% band.
  Rng rng(10);
  const SchemeConfig cfg = make_scheme(ConvScheme::kStandard);
  auto model = build_vgg(16, 10, 32, cfg, rng);
  const auto cost = model->cost(make_nchw(1, 3, 32, 32));
  EXPECT_NEAR(cost.macs / 1e6, 314.16, 314.16 * 0.05);
  EXPECT_NEAR(cost.params / 1e6, 14.73, 14.73 * 0.05);
}

TEST(PaperTables, MobileNetBaselineCostsMatchPaper) {
  // Paper Table IV: Baseline (DW+PW) = 50 MFLOPs, 6.17M params. The paper
  // does not spell out its exact CIFAR head, so assert a 2x band here; the
  // exact measured numbers are recorded in EXPERIMENTS.md.
  Rng rng(11);
  const SchemeConfig cfg = make_scheme(ConvScheme::kDWPW);
  auto model = build_mobilenet(10, cfg, rng);
  const auto cost = model->cost(make_nchw(1, 3, 32, 32));
  EXPECT_GT(cost.macs / 1e6, 25.0);
  EXPECT_LT(cost.macs / 1e6, 100.0);
  EXPECT_GT(cost.params / 1e6, 3.0);
  EXPECT_LT(cost.params / 1e6, 12.0);
}

TEST(PaperTables, SccAndGpwHaveIdenticalCosts) {
  // Paper Table IV: at equal cg, SCC and GPW have identical FLOPs and
  // parameter counts - overlap changes which channels are read, not costs.
  Rng rng(12);
  for (int64_t cg : {2L, 4L, 8L}) {
    auto gpw = build_mobilenet(10, make_scheme(ConvScheme::kDWGPW, cg), rng);
    auto scc =
        build_mobilenet(10, make_scheme(ConvScheme::kDWSCC, cg, 0.5), rng);
    const auto gc = gpw->cost(make_nchw(1, 3, 32, 32));
    const auto sc = scc->cost(make_nchw(1, 3, 32, 32));
    EXPECT_DOUBLE_EQ(gc.macs, sc.macs) << "cg=" << cg;
    EXPECT_DOUBLE_EQ(gc.params, sc.params) << "cg=" << cg;
  }
}

TEST(PaperTables, CostsFallMonotonicallyWithCg) {
  // Paper Table IV: MFLOPs 50 -> 30 -> 20 -> 10 as cg goes 1 -> 2 -> 4 -> 8.
  Rng rng(13);
  auto base = build_mobilenet(10, make_scheme(ConvScheme::kDWPW), rng);
  double prev = base->cost(make_nchw(1, 3, 32, 32)).macs;
  for (int64_t cg : {2L, 4L, 8L}) {
    auto m = build_mobilenet(10, make_scheme(ConvScheme::kDWSCC, cg), rng);
    const double macs = m->cost(make_nchw(1, 3, 32, 32)).macs;
    EXPECT_LT(macs, prev) << "cg=" << cg;
    prev = macs;
  }
}

TEST(PaperTables, DsxploreCutsVggCostByOver90Percent) {
  // Paper Table II: VGG16 314.16 -> 21.85 MFLOPs (93%), 14.73M -> 0.87M
  // params (94%).
  Rng rng(14);
  auto origin = build_vgg(16, 10, 32, make_scheme(ConvScheme::kStandard), rng);
  auto dsx =
      build_vgg(16, 10, 32, make_scheme(ConvScheme::kDWSCC, 2, 0.5), rng);
  const auto oc = origin->cost(make_nchw(1, 3, 32, 32));
  const auto dc = dsx->cost(make_nchw(1, 3, 32, 32));
  EXPECT_LT(dc.macs, oc.macs * 0.10);
  EXPECT_LT(dc.params, oc.params * 0.10);
}

TEST(PaperTables, Resnet50ReductionIsPartial) {
  // Paper Table II: ResNet50 1297.8 -> 735.8 MFLOPs (~43% saved): bottleneck
  // PWs are untouched, so the reduction is much smaller than VGG's.
  Rng rng(15);
  auto origin =
      build_resnet(50, 10, make_scheme(ConvScheme::kStandard), rng);
  auto dsx =
      build_resnet(50, 10, make_scheme(ConvScheme::kDWSCC, 2, 0.5), rng);
  const auto oc = origin->cost(make_nchw(1, 3, 32, 32));
  const auto dc = dsx->cost(make_nchw(1, 3, 32, 32));
  const double saved = 1.0 - dc.macs / oc.macs;
  EXPECT_GT(saved, 0.20);
  EXPECT_LT(saved, 0.70);
}


TEST(Models, ImageNetStemMatchesPaperResnet50Cost) {
  // Paper Table III: ResNet50 Origin = 4130 MFLOPs / 23.67M params at
  // 224x224. Our stem's unpadded max-pool gives 55x55 (vs torchvision's 56),
  // so allow a 10% band.
  Rng rng(16);
  const SchemeConfig cfg = make_scheme(ConvScheme::kStandard);
  auto model = build_resnet(50, 1000, cfg, rng, /*imagenet_stem=*/true);
  const auto cost = model->cost(make_nchw(1, 3, 224, 224));
  EXPECT_NEAR(cost.macs / 1e6, 4130.0, 413.0);
  EXPECT_NEAR(cost.params / 1e6, 23.67, 2.4);
}

TEST(Models, ImageNetStemDownsamples32x) {
  Rng rng(17);
  const SchemeConfig cfg = make_scheme(ConvScheme::kStandard, 2, 0.5, 0.125);
  auto model = build_resnet(18, 10, cfg, rng, /*imagenet_stem=*/true);
  // 224 -> 112 (stem conv) -> 55 (pool) -> 55/28/14/7 stages -> GAP.
  EXPECT_EQ(model->output_shape(make_nchw(1, 3, 224, 224)), (Shape{1, 10}));
}

}  // namespace
}  // namespace dsx::models
