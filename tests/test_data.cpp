// Tests for the synthetic datasets and the data loader.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.hpp"
#include "data/dataloader.hpp"
#include "data/synth.hpp"
#include "tensor/tensor_ops.hpp"

namespace dsx::data {
namespace {

// ---- generators -------------------------------------------------------------

TEST(SynthCifar, ShapesAndLabels) {
  Dataset ds = make_synth_cifar(40, 1);
  EXPECT_EQ(ds.images.shape(), make_nchw(40, 3, 32, 32));
  EXPECT_EQ(ds.labels.size(), 40u);
  EXPECT_EQ(ds.num_classes, 10);
  for (int32_t y : ds.labels) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 10);
  }
}

TEST(SynthCifar, BalancedLabels) {
  Dataset ds = make_synth_cifar(50, 2);
  std::vector<int> counts(10, 0);
  for (int32_t y : ds.labels) counts[static_cast<size_t>(y)]++;
  for (int c : counts) EXPECT_EQ(c, 5);
}

TEST(SynthCifar, DeterministicBySeed) {
  Dataset a = make_synth_cifar(10, 7);
  Dataset b = make_synth_cifar(10, 7);
  Dataset c = make_synth_cifar(10, 8);
  EXPECT_FLOAT_EQ(max_abs_diff(a.images, b.images), 0.0f);
  EXPECT_GT(max_abs_diff(a.images, c.images), 0.0f);
}

TEST(SynthCifar, ClassesAreDistinguishable) {
  // Same-class samples must look more alike than cross-class samples. The
  // generator applies random circular shifts, so compare shift-invariant
  // descriptors: DFT magnitudes at the low frequencies the prototypes use.
  Dataset ds = make_synth_cifar(40, 3, 16, 3, 2);
  const int64_t S = 16, C = 3, plane = S * S;
  const int64_t kFreq = 5;  // prototypes use fx, fy in [1, 4]
  auto descriptor = [&](int64_t i) {
    std::vector<double> d;
    for (int64_t c = 0; c < C; ++c) {
      const float* img = ds.images.data() + (i * C + c) * plane;
      for (int64_t fy = 0; fy < kFreq; ++fy) {
        for (int64_t fx = 0; fx < kFreq; ++fx) {
          double re = 0.0, im = 0.0;
          for (int64_t y = 0; y < S; ++y) {
            for (int64_t x = 0; x < S; ++x) {
              const double ph =
                  -2.0 * 3.14159265358979 * (fx * x + fy * y) / S;
              re += img[y * S + x] * std::cos(ph);
              im += img[y * S + x] * std::sin(ph);
            }
          }
          d.push_back(std::sqrt(re * re + im * im));
        }
      }
    }
    return d;
  };
  std::vector<std::vector<double>> desc;
  for (int64_t i = 0; i < 40; ++i) desc.push_back(descriptor(i));
  auto dist2 = [&](int64_t i, int64_t j) {
    double acc = 0.0;
    for (size_t k = 0; k < desc[i].size(); ++k) {
      const double d = desc[i][k] - desc[j][k];
      acc += d * d;
    }
    return acc;
  };
  double same = 0.0, cross = 0.0;
  int same_n = 0, cross_n = 0;
  for (int64_t i = 0; i < 40; ++i) {
    for (int64_t j = i + 1; j < 40; ++j) {
      if (ds.labels[i] == ds.labels[j]) {
        same += dist2(i, j);
        ++same_n;
      } else {
        cross += dist2(i, j);
        ++cross_n;
      }
    }
  }
  // Same-class pairs are closer in descriptor space.
  EXPECT_LT(same / same_n, 0.7 * (cross / cross_n));
}

TEST(SynthImagenet, ShapesAndClassCount) {
  Dataset ds = make_synth_imagenet(20, 4);
  EXPECT_EQ(ds.images.shape(), make_nchw(20, 3, 64, 64));
  EXPECT_EQ(ds.num_classes, 100);
}

TEST(CrossChannel, PairDefinitionStraddlesGroups) {
  CrossChannelOptions opts;
  // Channels 8, classes 4: pairs (1,2), (3,4), (5,6), (7,0).
  EXPECT_EQ(cross_channel_pair(0, opts), (std::pair<int64_t, int64_t>{1, 2}));
  EXPECT_EQ(cross_channel_pair(1, opts), (std::pair<int64_t, int64_t>{3, 4}));
  EXPECT_EQ(cross_channel_pair(3, opts), (std::pair<int64_t, int64_t>{7, 0}));
  EXPECT_THROW(cross_channel_pair(4, opts), Error);
}

TEST(CrossChannel, PlantedPairIsCorrelated) {
  CrossChannelOptions opts;
  Dataset ds = make_cross_channel_task(80, 5, opts);
  const int64_t plane = opts.spatial * opts.spatial;
  for (int64_t i = 0; i < 80; ++i) {
    const auto [a, b] =
        cross_channel_pair(ds.labels[static_cast<size_t>(i)], opts);
    const float* xa = ds.images.data() + (i * opts.channels + a) * plane;
    const float* xb = ds.images.data() + (i * opts.channels + b) * plane;
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (int64_t j = 0; j < plane; ++j) {
      dot += static_cast<double>(xa[j]) * xb[j];
      na += static_cast<double>(xa[j]) * xa[j];
      nb += static_cast<double>(xb[j]) * xb[j];
    }
    const double corr = dot / std::sqrt(na * nb);
    EXPECT_GT(corr, 0.9) << "sample " << i;
  }
}

TEST(CrossChannel, OtherPairsAreUncorrelated) {
  CrossChannelOptions opts;
  Dataset ds = make_cross_channel_task(40, 6, opts);
  const int64_t plane = opts.spatial * opts.spatial;
  // Average |corr| over non-planted adjacent pairs must be small.
  double total = 0.0;
  int count = 0;
  for (int64_t i = 0; i < 40; ++i) {
    const auto planted =
        cross_channel_pair(ds.labels[static_cast<size_t>(i)], opts);
    for (int64_t c = 0; c < opts.channels; ++c) {
      const int64_t d = (c + 1) % opts.channels;
      if (std::pair<int64_t, int64_t>{c, d} == planted) continue;
      const float* xa = ds.images.data() + (i * opts.channels + c) * plane;
      const float* xb = ds.images.data() + (i * opts.channels + d) * plane;
      double dot = 0.0, na = 0.0, nb = 0.0;
      for (int64_t j = 0; j < plane; ++j) {
        dot += static_cast<double>(xa[j]) * xb[j];
        na += static_cast<double>(xa[j]) * xa[j];
        nb += static_cast<double>(xb[j]) * xb[j];
      }
      total += std::abs(dot / std::sqrt(na * nb));
      ++count;
    }
  }
  EXPECT_LT(total / count, 0.3);
}

TEST(CrossChannel, ValidatesChannelClassRatio) {
  CrossChannelOptions opts;
  opts.channels = 6;  // != 2 * 4
  EXPECT_THROW(make_cross_channel_task(10, 1, opts), Error);
}

// ---- DataLoader ----------------------------------------------------------------

TEST(DataLoader, CoversEpochWithoutDuplicates) {
  Dataset ds = make_synth_cifar(23, 9, 8, 3, 10);
  DataLoader loader(ds, {.batch_size = 5, .shuffle = true, .seed = 3});
  std::multiset<int32_t> seen;
  int64_t total = 0;
  while (loader.has_next()) {
    Batch b = loader.next();
    total += b.images.shape().n();
    for (int32_t y : b.labels) seen.insert(y);
  }
  EXPECT_EQ(total, 23);
  EXPECT_EQ(loader.batches_per_epoch(), 5);  // 4 full + 1 ragged
}

TEST(DataLoader, DropLastSkipsRaggedBatch) {
  Dataset ds = make_synth_cifar(23, 9, 8, 3, 10);
  DataLoader loader(ds,
                    {.batch_size = 5, .shuffle = false, .drop_last = true});
  int64_t total = 0;
  while (loader.has_next()) total += loader.next().images.shape().n();
  EXPECT_EQ(total, 20);
  EXPECT_EQ(loader.batches_per_epoch(), 4);
}

TEST(DataLoader, UnshuffledPreservesOrder) {
  Dataset ds = make_synth_cifar(10, 11, 8, 3, 5);
  DataLoader loader(ds, {.batch_size = 4, .shuffle = false});
  Batch b = loader.next();
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(b.labels[static_cast<size_t>(i)],
              ds.labels[static_cast<size_t>(i)]);
  }
}

TEST(DataLoader, ShuffleChangesOrderButNotContent) {
  Dataset ds = make_synth_cifar(50, 13, 8, 3, 10);
  DataLoader loader(ds, {.batch_size = 50, .shuffle = true, .seed = 17});
  Batch b = loader.next();
  // Same multiset of labels.
  std::multiset<int32_t> orig(ds.labels.begin(), ds.labels.end());
  std::multiset<int32_t> got(b.labels.begin(), b.labels.end());
  EXPECT_EQ(orig, got);
  // But (almost surely) a different order.
  EXPECT_NE(std::vector<int32_t>(b.labels.begin(), b.labels.end()), ds.labels);
}

TEST(DataLoader, ResetStartsNewEpoch) {
  Dataset ds = make_synth_cifar(8, 15, 8, 3, 4);
  DataLoader loader(ds, {.batch_size = 8, .shuffle = false});
  loader.next();
  EXPECT_FALSE(loader.has_next());
  loader.reset();
  EXPECT_TRUE(loader.has_next());
}

TEST(DataLoader, NextPastEndThrows) {
  Dataset ds = make_synth_cifar(4, 15, 8, 3, 4);
  DataLoader loader(ds, {.batch_size = 4});
  loader.next();
  EXPECT_THROW(loader.next(), Error);
}

TEST(DataLoader, AugmentPreservesShapeAndLabels) {
  Dataset ds = make_synth_cifar(16, 19, 8, 3, 4);
  DataLoader plain(ds, {.batch_size = 16, .shuffle = false});
  DataLoader aug(ds, {.batch_size = 16, .shuffle = false, .augment = true});
  Batch pb = plain.next();
  Batch ab = aug.next();
  EXPECT_EQ(ab.images.shape(), pb.images.shape());
  EXPECT_EQ(ab.labels, pb.labels);
  // Augmentation actually changed pixels (circular shift / flip).
  EXPECT_GT(max_abs_diff(ab.images, pb.images), 0.0f);
  // But the multiset of pixel values per sample is preserved (it is a
  // permutation).
  const int64_t sample = 3 * 8 * 8;
  for (int64_t i = 0; i < 2; ++i) {
    std::multiset<float> a_set, p_set;
    for (int64_t k = 0; k < sample; ++k) {
      a_set.insert(ab.images[i * sample + k]);
      p_set.insert(pb.images[i * sample + k]);
    }
    EXPECT_EQ(a_set, p_set);
  }
}

TEST(DataLoader, FullBatchClonesDataset) {
  Dataset ds = make_synth_cifar(6, 21, 8, 3, 3);
  Batch b = full_batch(ds);
  EXPECT_EQ(b.images.shape(), ds.images.shape());
  EXPECT_FALSE(b.images.shares_storage_with(ds.images));
  EXPECT_EQ(b.labels, ds.labels);
}

TEST(DataLoader, ValidatesBatchSize) {
  Dataset ds = make_synth_cifar(4, 23, 8, 3, 2);
  EXPECT_THROW(DataLoader(ds, {.batch_size = 0}), Error);
}

}  // namespace
}  // namespace dsx::data
