// Randomized property tests: algebraic invariants of the kernels that must
// hold for *any* valid configuration, exercised over seeded random sweeps.
#include <gtest/gtest.h>

#include "core/compositions.hpp"
#include "core/cost_model.hpp"
#include "core/scc_kernels.hpp"
#include "device/launch.hpp"
#include "ops/conv2d.hpp"
#include "testing_utils.hpp"

namespace dsx {
namespace {

/// Draws a random valid SCC configuration.
scc::SCCConfig random_scc_config(Rng& rng) {
  static const int64_t cins[] = {4, 6, 8, 12, 16};
  scc::SCCConfig cfg;
  cfg.in_channels = cins[rng.randint(0, 4)];
  // pick a divisor of Cin as cg
  std::vector<int64_t> divisors;
  for (int64_t d = 1; d <= cfg.in_channels; ++d) {
    if (cfg.in_channels % d == 0) divisors.push_back(d);
  }
  cfg.groups = divisors[static_cast<size_t>(
      rng.randint(0, static_cast<int64_t>(divisors.size()) - 1))];
  cfg.out_channels = rng.randint(1, 3) * cfg.in_channels;
  cfg.overlap = 0.25 * static_cast<double>(rng.randint(0, 4));
  cfg.stride = rng.bernoulli(0.25) ? 2 : 1;
  return cfg;
}

class RandomSccSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomSccSweep, ForwardIsLinearInInput) {
  // SCC(a*x + b*y) == a*SCC(x) + b*SCC(y) (bias off).
  Rng rng(1000 + GetParam());
  const scc::SCCConfig cfg = random_scc_config(rng);
  const scc::ChannelWindowMap map(cfg);
  const Shape in_shape = make_nchw(2, cfg.in_channels, 5, 5);
  Tensor x = random_uniform(in_shape, rng);
  Tensor y = random_uniform(in_shape, rng);
  Tensor w = random_uniform(Shape{cfg.out_channels, map.group_width()}, rng);

  const float a = rng.uniform(-2.0f, 2.0f), b = rng.uniform(-2.0f, 2.0f);
  Tensor combo = x.clone();
  scale_(combo, a);
  axpy_(combo, b, y);

  Tensor lhs = scc::scc_forward(combo, w, nullptr, map);
  Tensor fx = scc::scc_forward(x, w, nullptr, map);
  Tensor fy = scc::scc_forward(y, w, nullptr, map);
  scale_(fx, a);
  axpy_(fx, b, fy);
  EXPECT_LT(max_abs_diff(lhs, fx), 1e-3f) << cfg.to_string();
}

TEST_P(RandomSccSweep, ForwardIsLinearInWeights) {
  Rng rng(2000 + GetParam());
  const scc::SCCConfig cfg = random_scc_config(rng);
  const scc::ChannelWindowMap map(cfg);
  Tensor x = random_uniform(make_nchw(1, cfg.in_channels, 4, 4), rng);
  Tensor w1 = random_uniform(Shape{cfg.out_channels, map.group_width()}, rng);
  Tensor w2 = random_uniform(Shape{cfg.out_channels, map.group_width()}, rng);

  Tensor wsum = add(w1, w2);
  Tensor lhs = scc::scc_forward(x, wsum, nullptr, map);
  Tensor rhs = add(scc::scc_forward(x, w1, nullptr, map),
                   scc::scc_forward(x, w2, nullptr, map));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-3f) << cfg.to_string();
}

TEST_P(RandomSccSweep, BackwardIsAdjointOfForward) {
  // <SCC(x), g> == <x, SCC_backward_input(g)> - the defining property of a
  // correct input gradient, for any configuration.
  Rng rng(3000 + GetParam());
  const scc::SCCConfig cfg = random_scc_config(rng);
  const scc::ChannelWindowMap map(cfg);
  Tensor x = random_uniform(make_nchw(2, cfg.in_channels, 4, 4), rng);
  Tensor w = random_uniform(Shape{cfg.out_channels, map.group_width()}, rng);
  Tensor g = random_uniform(scc::scc_output_shape(x.shape(), map), rng);

  const Tensor fx = scc::scc_forward(x, w, nullptr, map);
  const scc::SCCGrads grads =
      scc::scc_backward_input_centric(x, w, g, map, true, false);
  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < fx.numel(); ++i) lhs += fx[i] * g[i];
  for (int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * grads.dinput[i];
  EXPECT_NEAR(lhs, rhs, 1e-2 * (1.0 + std::abs(lhs))) << cfg.to_string();
}

TEST_P(RandomSccSweep, AllFourImplementationsAgree) {
  Rng rng(4000 + GetParam());
  const scc::SCCConfig cfg = random_scc_config(rng);
  const scc::ChannelWindowMap map(cfg);
  Tensor x = random_uniform(make_nchw(1, cfg.in_channels, 4, 4), rng);
  Tensor w = random_uniform(Shape{cfg.out_channels, map.group_width()}, rng);
  Tensor b = random_uniform(Shape{cfg.out_channels}, rng);

  const Tensor fused = scc::scc_forward(x, w, &b, map);
  EXPECT_LT(max_abs_diff(scc::ChannelStackSCC(cfg).forward(x, w, &b), fused),
            1e-4f)
      << cfg.to_string();
  EXPECT_LT(max_abs_diff(scc::ConvStackSCC(cfg, true).forward(x, w, &b),
                         fused),
            1e-4f)
      << cfg.to_string();
  EXPECT_LT(max_abs_diff(scc::ConvStackSCC(cfg, false).forward(x, w, &b),
                         fused),
            1e-4f)
      << cfg.to_string();
}

TEST_P(RandomSccSweep, CostModelMatchesRecordedKernelWork) {
  // The analytic MAC count must equal the (threads * flops_per_thread) / 2
  // the forward kernel reports to the launch log.
  Rng rng(5000 + GetParam());
  scc::SCCConfig cfg = random_scc_config(rng);
  cfg.stride = 1;  // cost model and kernel agree trivially on stride here
  const scc::ChannelWindowMap map(cfg);
  const int64_t H = 6, W = 6, N = 2;
  Tensor x = random_uniform(make_nchw(N, cfg.in_channels, H, W), rng);
  Tensor w = random_uniform(Shape{cfg.out_channels, map.group_width()}, rng);

  device::KernelProfileScope profile;
  scc::scc_forward(x, w, nullptr, map);
  const auto records = profile.records();
  ASSERT_EQ(records.size(), 1u);
  const double kernel_macs = records[0].total_flops() / 2.0;
  const double analytic = N * scc::scc_cost(cfg, H, W, false).macs;
  EXPECT_DOUBLE_EQ(kernel_macs, analytic) << cfg.to_string();
}

TEST_P(RandomSccSweep, StridedForwardSubsamplesExactly) {
  // SCC with stride s == stride-1 SCC output subsampled at (s*y, s*x).
  Rng rng(6000 + GetParam());
  scc::SCCConfig cfg = random_scc_config(rng);
  cfg.stride = 2;
  scc::SCCConfig dense_cfg = cfg;
  dense_cfg.stride = 1;
  const scc::ChannelWindowMap map(cfg), dense_map(dense_cfg);
  Tensor x = random_uniform(make_nchw(1, cfg.in_channels, 6, 6), rng);
  Tensor w = random_uniform(Shape{cfg.out_channels, map.group_width()}, rng);

  const Tensor strided = scc::scc_forward(x, w, nullptr, map);
  const Tensor dense = scc::scc_forward(x, w, nullptr, dense_map);
  for (int64_t f = 0; f < cfg.out_channels; ++f) {
    for (int64_t y = 0; y < strided.shape().h(); ++y) {
      for (int64_t xx = 0; xx < strided.shape().w(); ++xx) {
        EXPECT_FLOAT_EQ(strided.at(0, f, y, xx),
                        dense.at(0, f, 2 * y, 2 * xx));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, RandomSccSweep, ::testing::Range(0, 20));

// ---- convolution properties -----------------------------------------------------

class RandomConvSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomConvSweep, IdentityKernelIsIdentity) {
  // 1x1 conv with identity weight matrix reproduces the input.
  Rng rng(7000 + GetParam());
  const int64_t C = rng.randint(1, 6);
  Tensor x = random_uniform(make_nchw(2, C, 4, 4), rng);
  Tensor w(Shape{C, C, 1, 1});
  for (int64_t c = 0; c < C; ++c) w[c * C + c] = 1.0f;
  Tensor y = conv2d_forward(x, w, nullptr, Conv2dArgs{1, 0, 1});
  EXPECT_LT(max_abs_diff(x, y), 1e-6f);
}

TEST_P(RandomConvSweep, ConvBackwardIsAdjoint) {
  Rng rng(8000 + GetParam());
  const int64_t C = 2 * rng.randint(1, 3);
  const int64_t groups = rng.bernoulli(0.5) ? 2 : 1;
  const int64_t K = rng.bernoulli(0.5) ? 3 : 1;
  const int64_t pad = K / 2;
  Tensor x = random_uniform(make_nchw(2, C, 5, 5), rng);
  Tensor w = random_uniform(Shape{C, C / groups, K, K}, rng);
  const Conv2dArgs args{1, pad, groups};
  Tensor g = random_uniform(conv2d_output_shape(x.shape(), w.shape(), args),
                            rng);
  const Tensor fx = conv2d_forward(x, w, nullptr, args);
  const Conv2dGrads grads = conv2d_backward(x, w, g, args, true, false);
  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < fx.numel(); ++i) lhs += fx[i] * g[i];
  for (int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * grads.dinput[i];
  EXPECT_NEAR(lhs, rhs, 1e-2 * (1.0 + std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(Random, RandomConvSweep, ::testing::Range(0, 10));

// ---- cost-model identities --------------------------------------------------------

TEST(CostProperties, SccCostEqualsGpwCostForAllConfigs) {
  // Paper Table I: overlap is free - SCC always costs exactly GPW at equal cg.
  for (int64_t cin : {8L, 16L, 64L}) {
    for (int64_t cg : {1L, 2L, 4L, 8L}) {
      for (double co : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        scc::SCCConfig cfg;
        cfg.in_channels = cin;
        cfg.out_channels = 2 * cin;
        cfg.groups = cg;
        cfg.overlap = co;
        const auto s = scc::scc_cost(cfg, 8, 8, false);
        const auto g = scc::pointwise_cost(cin, 2 * cin, 8, 8, cg, false);
        EXPECT_DOUBLE_EQ(s.macs, g.macs);
        EXPECT_DOUBLE_EQ(s.params, g.params);
      }
    }
  }
}

TEST(CostProperties, DscBeatsStandardConvAtEveryShape) {
  // The classic DSC saving 1/Cout + 1/K^2 (paper §II-B).
  for (int64_t c : {32L, 64L, 128L}) {
    const auto std_cost = scc::conv2d_cost(c, c, 3, 16, 16, 1, 0, 1, false);
    const auto dw = scc::depthwise_cost(c, 3, 16, 16, 1, 0, false);
    const auto pw = scc::pointwise_cost(c, c, 14, 14, 1, false);
    const double ratio = (dw.macs + pw.macs) / std_cost.macs;
    const double predicted = 1.0 / static_cast<double>(c) + 1.0 / 9.0;
    EXPECT_NEAR(ratio, predicted, 0.05);
  }
}

TEST(CostProperties, StrideQuartersSpatialMacs) {
  const auto s1 = scc::conv2d_cost(16, 16, 3, 16, 16, 1, 1, 1, false);
  const auto s2 = scc::conv2d_cost(16, 16, 3, 16, 16, 2, 1, 1, false);
  EXPECT_NEAR(s1.macs / s2.macs, 4.0, 0.1);
  EXPECT_DOUBLE_EQ(s1.params, s2.params);
}

}  // namespace
}  // namespace dsx
