#!/usr/bin/env bash
# Tier-1 verification plus the serving/tuning smoke benches.
#
#   scripts/ci.sh              - configure, build, ctest, smoke benches
#                                (writes BENCH_serve_throughput.json,
#                                 BENCH_shard_scaling.json,
#                                 BENCH_deploy_swap.json,
#                                 BENCH_micro_kernels.json, BENCH_tune.json,
#                                 BENCH_simd_gemm.json)
#                                plus the deploy canary walkthrough
#   scripts/ci.sh --fast       - skip the smoke benches (tier-1 only)
#   scripts/ci.sh --sanitize   - additionally build Debug + ASan/UBSan in
#                                build-sanitize/ and run the tier-1 suite
#                                under the sanitizers (test_simd included:
#                                that is what catches pack-buffer overruns
#                                and misaligned loads in the simd kernels)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --sanitize) SANITIZE=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== configure =="
cmake -B build -S .

echo "== build =="
cmake --build build -j"${JOBS}"

echo "== tier-1 tests =="
# --timeout backstops the per-test TIMEOUT property from CMakeLists: a
# deadlocked batcher fails fast instead of hanging CI.
ctest --test-dir build --output-on-failure -j"${JOBS}" --timeout 300

if [[ "${FAST}" != "1" ]]; then
  echo "== serve throughput (smoke, json) =="
  ./build/bench_serve_throughput --smoke --json

  echo "== shard scaling (smoke, json) =="
  # Sweeps replicas {1,2,4}; asserts modeled R=2 >= 1.3x R=1 and that
  # measured R=2 is not slower than R=1 (see bench/shard_scaling.cpp).
  ./build/bench_shard_scaling --smoke --json

  echo "== deploy hot-swap (smoke, json) =="
  # Hot-swaps under sustained load; asserts zero dropped/duplicated replies
  # and every answer bit-identical to a registered version.
  ./build/bench_deploy_swap --smoke --json

  echo "== deploy canary walkthrough =="
  # Store -> shadow -> canary -> promote; asserts the promoted fleet serves
  # the staged version bit-identically (see examples/serve_mobilenet_scc).
  ./build/example_serve_mobilenet_scc --canary

  echo "== obs smoke: metrics exposition + request trace =="
  # Serve under load with full tracing, then validate the two export
  # surfaces: the Prometheus exposition must contain the serving counters
  # with no duplicate (name, labels) series, and the trace file must be
  # well-formed Chrome trace-event JSON.
  rm -f trace_ci.json metrics_ci.txt
  ./build/example_serve_mobilenet_scc --metrics --trace trace_ci.json \
    > metrics_ci.txt
  grep -q '^dsx_serve_requests_total' metrics_ci.txt \
    || { echo "obs smoke: dsx_serve_requests_total missing" >&2; exit 1; }
  DUPES="$(grep '^dsx_' metrics_ci.txt | awk '{$NF=""; print}' | sort \
    | uniq -d)"
  [[ -z "${DUPES}" ]] \
    || { echo "obs smoke: duplicate series:"; echo "${DUPES}"; exit 1; } >&2
  grep -q '"traceEvents"' trace_ci.json \
    || { echo "obs smoke: trace_ci.json missing traceEvents" >&2; exit 1; }
  grep -q '"ph"[[:space:]]*:[[:space:]]*"X"' trace_ci.json \
    || { echo "obs smoke: trace_ci.json has no complete events" >&2; exit 1; }
  if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import json; json.load(open("trace_ci.json"))' \
      || { echo "obs smoke: trace_ci.json is not valid JSON" >&2; exit 1; }
  fi
  rm -f trace_ci.json metrics_ci.txt
  echo "obs smoke OK"

  if [[ -x build/bench_micro_kernels ]]; then
    echo "== kernel tuning + simd packed GEMM (json) =="
    # Candidate sweep (simd levels included via fast-math), packed-GEMM
    # GFLOP/s scalar vs sse2 vs avx2, strict + fast-math tuned plans.
    # SHAPE-CHECKs: tuned-plan bit-identity, never-slower, and on an AVX2
    # host packed GEMM >= 2x the scalar baseline (BENCH_simd_gemm.json).
    ./build/bench_micro_kernels --json
  else
    echo "bench_micro_kernels not built (google-benchmark missing); skipping"
  fi
fi

if [[ "${SANITIZE}" == "1" ]]; then
  echo "== configure (ASan+UBSan Debug) =="
  cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=Debug -DDSX_SANITIZE=ON

  echo "== build (ASan+UBSan Debug) =="
  cmake --build build-sanitize -j"${JOBS}"

  echo "== tier-1 tests (ASan+UBSan) =="
  ctest --test-dir build-sanitize --output-on-failure -j"${JOBS}" --timeout 600
fi

echo "CI OK"
