#!/usr/bin/env bash
# Tier-1 verification plus the serving/tuning smoke benches.
#
#   scripts/ci.sh              - configure, build, ctest, smoke benches
#                                (writes BENCH_serve_throughput.json,
#                                 BENCH_shard_scaling.json,
#                                 BENCH_deploy_swap.json,
#                                 BENCH_net_ingress.json,
#                                 BENCH_micro_kernels.json, BENCH_tune.json,
#                                 BENCH_simd_gemm.json)
#                                plus the deploy canary walkthrough and the
#                                net wire smoke (separate client process)
#   scripts/ci.sh --fast       - skip the smoke benches (tier-1 only)
#   scripts/ci.sh --sanitize   - additionally build Debug + ASan/UBSan in
#                                build-sanitize/ and run the tier-1 suite
#                                under the sanitizers (test_simd included:
#                                that is what catches pack-buffer overruns
#                                and misaligned loads in the simd kernels),
#                                then build Debug + TSan in build-tsan/ and
#                                run the obs string-interning and exemplar
#                                seqlock suites (Intern.*, ExemplarSeqlock.*),
#                                the thread-pool accounting suite
#                                (PoolAccounting.*) and the full net suite
#                                (ingress event loop + dispatch pool +
#                                residency single-flight) under it
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --sanitize) SANITIZE=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== configure =="
cmake -B build -S .

echo "== build =="
cmake --build build -j"${JOBS}"

echo "== tier-1 tests =="
# --timeout backstops the per-test TIMEOUT property from CMakeLists: a
# deadlocked batcher fails fast instead of hanging CI.
ctest --test-dir build --output-on-failure -j"${JOBS}" --timeout 300

if [[ "${FAST}" != "1" ]]; then
  echo "== serve throughput (smoke, json) =="
  ./build/bench_serve_throughput --smoke --json

  echo "== shard scaling (smoke, json) =="
  # Sweeps replicas {1,2,4}; asserts modeled R=2 >= 1.3x R=1 and that
  # measured R=2 is not slower than R=1 (see bench/shard_scaling.cpp).
  ./build/bench_shard_scaling --smoke --json

  echo "== deploy hot-swap (smoke, json) =="
  # Hot-swaps under sustained load; asserts zero dropped/duplicated replies
  # and every answer bit-identical to a registered version.
  ./build/bench_deploy_swap --smoke --json

  echo "== net ingress (smoke, json) =="
  # Loopback wire QPS vs the in-process submit() path at equal concurrency
  # (SHAPE-CHECK >= 0.9x), every submitted request answered, then a
  # residency-churn phase (3 models under a budget for ~2.5) with zero
  # errors while evictions and fault-ins run.
  ./build/bench_net_ingress --smoke --json

  echo "== deploy canary walkthrough =="
  # Store -> shadow -> canary -> promote; asserts the promoted fleet serves
  # the staged version bit-identically (see examples/serve_mobilenet_scc).
  ./build/example_serve_mobilenet_scc --canary

  echo "== obs smoke: metrics exposition + request trace =="
  # Serve under load with full tracing, then validate the two export
  # surfaces: the Prometheus exposition must contain the serving counters
  # with no duplicate (name, labels) series, and the trace file must be
  # well-formed Chrome trace-event JSON.
  rm -f trace_ci.json metrics_ci.txt
  ./build/example_serve_mobilenet_scc --metrics --trace trace_ci.json \
    > metrics_ci.txt
  grep -q '^dsx_serve_requests_total' metrics_ci.txt \
    || { echo "obs smoke: dsx_serve_requests_total missing" >&2; exit 1; }
  DUPES="$(grep '^dsx_' metrics_ci.txt | awk '{$NF=""; print}' | sort \
    | uniq -d)"
  [[ -z "${DUPES}" ]] \
    || { echo "obs smoke: duplicate series:"; echo "${DUPES}"; exit 1; } >&2
  grep -q '"traceEvents"' trace_ci.json \
    || { echo "obs smoke: trace_ci.json missing traceEvents" >&2; exit 1; }
  grep -q '"ph"[[:space:]]*:[[:space:]]*"X"' trace_ci.json \
    || { echo "obs smoke: trace_ci.json has no complete events" >&2; exit 1; }
  if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import json; json.load(open("trace_ci.json"))' \
      || { echo "obs smoke: trace_ci.json is not valid JSON" >&2; exit 1; }
  fi
  rm -f trace_ci.json metrics_ci.txt
  echo "obs smoke OK"

  echo "== obs smoke: HTTP telemetry endpoint (/metrics + /healthz) =="
  # Start the example's live endpoint on an ephemeral port and scrape it
  # from OUTSIDE the process. Run 1 (generous SLO): /metrics must be valid
  # exposition and /healthz must be 200. Run 2 (impossible --slo-p99-ms):
  # /healthz must flip to 503 with the transition in /journal.
  CURL="curl -sS --max-time 5"
  command -v curl >/dev/null 2>&1 || CURL=""
  if [[ -n "${CURL}" ]]; then
    rm -f serve_metrics_ci.log
    ./build/example_serve_mobilenet_scc --serve-metrics 0 --profile \
      > serve_metrics_ci.log 2>&1 &
    SRV_PID=$!
    PORT=""
    for _ in $(seq 1 100); do
      PORT="$(sed -n 's/^METRICS_PORT=//p' serve_metrics_ci.log)"
      [[ -n "${PORT}" ]] && break
      sleep 0.2
    done
    [[ -n "${PORT}" ]] \
      || { echo "http smoke: no METRICS_PORT line" >&2; kill "${SRV_PID}"; exit 1; }
    ${CURL} "http://127.0.0.1:${PORT}/metrics" > metrics_http_ci.txt
    grep -q '^dsx_serve_requests_total' metrics_http_ci.txt \
      || { echo "http smoke: scraped exposition missing serving counters" >&2
           kill "${SRV_PID}"; exit 1; }
    BAD="$(grep '^dsx_' metrics_http_ci.txt \
      | awk 'NF < 2 || $NF !~ /^-?[0-9.e+-]+$/' )"
    [[ -z "${BAD}" ]] \
      || { echo "http smoke: malformed sample lines:"; echo "${BAD}"
           kill "${SRV_PID}"; exit 1; } >&2
    # A plain scrape is classic 0.0.4 text: exemplar syntax would be a parse
    # error to the classic Prometheus parser, so it must not appear.
    if grep -q '# {' metrics_http_ci.txt; then
      echo "http smoke: classic /metrics scrape carries exemplar syntax" >&2
      kill "${SRV_PID}"; exit 1
    fi
    HZ="$(${CURL} -o /dev/null -w '%{http_code}' \
      "http://127.0.0.1:${PORT}/healthz")"
    [[ "${HZ}" == "200" ]] \
      || { echo "http smoke: healthy /healthz returned ${HZ}" >&2
           kill "${SRV_PID}"; exit 1; }

    # Flight recorder end to end: the demo forces one genuinely slow request
    # (execution lock held ~80 ms against a 50 ms threshold), so /outliers
    # must carry a promoted capture with the per-phase span breakdown, a
    # fresh exposition scrape must attach its trace id as an OpenMetrics
    # exemplar on a native bucket line, and that id must resolve to real
    # span events in /trace. Poll briefly: the forced outlier runs right
    # after the port line is printed.
    OUTLIER_OK=""
    for _ in $(seq 1 40); do
      ${CURL} "http://127.0.0.1:${PORT}/outliers" > outliers_ci.json || true
      if grep -q '"verdict":"absolute"' outliers_ci.json; then
        OUTLIER_OK=1; break
      fi
      sleep 0.25
    done
    [[ -n "${OUTLIER_OK}" ]] \
      || { echo "flight smoke: forced outlier never promoted (absolute)" >&2
           kill "${SRV_PID}"; exit 1; }
    grep -q '"model":"mobilenet-scc"' outliers_ci.json \
      || { echo "flight smoke: /outliers has no mobilenet-scc capture" >&2
           kill "${SRV_PID}"; exit 1; }
    grep -q '"batch_execute"' outliers_ci.json \
      || { echo "flight smoke: capture lacks the batch_execute span" >&2
           kill "${SRV_PID}"; exit 1; }
    # Exemplars are negotiated: only an OpenMetrics scrape carries them.
    ${CURL} -H 'Accept: application/openmetrics-text' \
      "http://127.0.0.1:${PORT}/metrics" > metrics_flight_ci.txt
    grep -q '# {trace_id="' metrics_flight_ci.txt \
      || { echo "flight smoke: no OpenMetrics exemplar on /metrics" >&2
           kill "${SRV_PID}"; exit 1; }
    tail -n 1 metrics_flight_ci.txt | grep -q '^# EOF$' \
      || { echo "flight smoke: OpenMetrics scrape missing # EOF" >&2
           kill "${SRV_PID}"; exit 1; }
    EXEMPLAR_ID="$(sed -n 's/.*# {trace_id="\([0-9]*\)".*/\1/p' \
      metrics_flight_ci.txt | head -n 1)"
    [[ -n "${EXEMPLAR_ID}" ]] \
      || { echo "flight smoke: exemplar trace_id unparseable" >&2
           kill "${SRV_PID}"; exit 1; }
    # To a file first: `curl | grep -q` under pipefail fails on grep's
    # early exit (curl 23) even when the id is present.
    ${CURL} "http://127.0.0.1:${PORT}/trace" > trace_ci.json
    grep -q "\"tid\":${EXEMPLAR_ID}" trace_ci.json \
      || { echo "flight smoke: exemplar trace_id ${EXEMPLAR_ID} not in /trace" >&2
           kill "${SRV_PID}"; exit 1; }
    ${CURL} "http://127.0.0.1:${PORT}/journal.json" > journal_ci.txt
    grep -q '"kind":"register"' journal_ci.txt \
      || { echo "http smoke: /journal.json missing register event" >&2
           kill "${SRV_PID}"; exit 1; }
    # Continuous profiling end to end: --profile armed the sampler for the
    # whole run, so a 1-second /profile window over live traffic must return
    # non-empty folded stacks whose frames symbolized to real code (the
    # serving/kernel stack, not raw hex addresses).
    ${CURL} --max-time 15 "http://127.0.0.1:${PORT}/profile?seconds=1" \
      > profile_ci.txt
    [[ -s profile_ci.txt ]] \
      || { echo "prof smoke: /profile?seconds=1 returned no samples" >&2
           kill "${SRV_PID}"; exit 1; }
    grep -Eq 'dsx::|gemm|conv|worker_loop' profile_ci.txt \
      || { echo "prof smoke: folded stacks carry no symbolized dsx frame:" >&2
           head -n 5 profile_ci.txt >&2; kill "${SRV_PID}"; exit 1; }
    ${CURL} "http://127.0.0.1:${PORT}/metrics" > metrics_prof_ci.txt
    grep -q '^dsx_device_pool_busy_ns_total' metrics_prof_ci.txt \
      || { echo "prof smoke: /metrics missing pool utilization series" >&2
           kill "${SRV_PID}"; exit 1; }
    kill "${SRV_PID}" 2>/dev/null; wait "${SRV_PID}" 2>/dev/null || true

    rm -f serve_metrics_ci.log
    ./build/example_serve_mobilenet_scc --serve-metrics 0 \
      --slo-p99-ms 0.000001 > serve_metrics_ci.log 2>&1 &
    SRV_PID=$!
    PORT=""
    for _ in $(seq 1 100); do
      PORT="$(sed -n 's/^METRICS_PORT=//p' serve_metrics_ci.log)"
      [[ -n "${PORT}" ]] && break
      sleep 0.2
    done
    [[ -n "${PORT}" ]] \
      || { echo "http smoke: no METRICS_PORT line (run 2)" >&2
           kill "${SRV_PID}"; exit 1; }
    HZ=""
    for _ in $(seq 1 60); do
      HZ="$(${CURL} -o healthz_ci.json -w '%{http_code}' \
        "http://127.0.0.1:${PORT}/healthz" || true)"
      [[ "${HZ}" == "503" ]] && break
      sleep 0.25
    done
    [[ "${HZ}" == "503" ]] \
      || { echo "http smoke: impossible SLO never flipped /healthz to 503" >&2
           kill "${SRV_PID}"; exit 1; }
    grep -q '"status":"critical"' healthz_ci.json \
      || { echo "http smoke: 503 body is not critical" >&2
           kill "${SRV_PID}"; exit 1; }
    ${CURL} "http://127.0.0.1:${PORT}/journal" > journal_ci.txt
    grep -q 'health.*->critical' journal_ci.txt \
      || { echo "http smoke: health transition not journaled" >&2
           kill "${SRV_PID}"; exit 1; }
    kill "${SRV_PID}" 2>/dev/null; wait "${SRV_PID}" 2>/dev/null || true
    rm -f serve_metrics_ci.log metrics_http_ci.txt healthz_ci.json \
      outliers_ci.json metrics_flight_ci.txt trace_ci.json journal_ci.txt \
      profile_ci.txt metrics_prof_ci.txt
    echo "http smoke OK"
  else
    echo "curl not available; skipping HTTP endpoint smoke"
  fi

  echo "== net smoke: framed TCP ingress + residency (separate process) =="
  # The example listens on an ephemeral port; example_dsx_client - a
  # genuinely separate process - speaks the framed protocol end to end and
  # exits 0 iff every reply came back kOk, so a lost or errored reply fails
  # CI here. The second model overflows the demo's budget (~1.5 models), so
  # requesting it forces a real eviction + fault-in over the wire.
  rm -f listen_ci.log client_ci.txt
  ./build/example_serve_mobilenet_scc --listen 0 > listen_ci.log 2>&1 &
  SRV_PID=$!
  IPORT=""
  for _ in $(seq 1 150); do
    IPORT="$(sed -n 's/^INGRESS_PORT=//p' listen_ci.log)"
    [[ -n "${IPORT}" ]] && break
    sleep 0.2
  done
  [[ -n "${IPORT}" ]] \
    || { echo "net smoke: no INGRESS_PORT line" >&2; kill "${SRV_PID}"; exit 1; }
  ./build/example_dsx_client --port "${IPORT}" --model mobilenet-scc \
    --count 3 --token demo-interactive > client_ci.txt \
    || { echo "net smoke: client run failed:" >&2; cat client_ci.txt >&2
         kill "${SRV_PID}"; exit 1; }
  grep -q '^3/3 replies ok' client_ci.txt \
    || { echo "net smoke: expected 3/3 replies ok:" >&2; cat client_ci.txt >&2
         kill "${SRV_PID}"; exit 1; }
  ./build/example_dsx_client --port "${IPORT}" --model mobilenet-scc-alt \
    --count 2 --token demo-bulk > client_ci.txt \
    || { echo "net smoke: cold-model client run failed:" >&2
         cat client_ci.txt >&2; kill "${SRV_PID}"; exit 1; }
  grep -q '^2/2 replies ok' client_ci.txt \
    || { echo "net smoke: expected 2/2 replies ok on fault-in:" >&2
         cat client_ci.txt >&2; kill "${SRV_PID}"; exit 1; }
  if [[ -n "${CURL:-}" ]]; then
    MPORT="$(sed -n 's/^METRICS_PORT=//p' listen_ci.log)"
    ${CURL} "http://127.0.0.1:${MPORT}/residency" > residency_ci.json
    grep -q '"budget_floats"' residency_ci.json \
      || { echo "net smoke: /residency lacks budget_floats" >&2
           kill "${SRV_PID}"; exit 1; }
    grep -q '"mobilenet-scc"' residency_ci.json \
      || { echo "net smoke: /residency lacks the managed model table" >&2
           kill "${SRV_PID}"; exit 1; }
    ${CURL} "http://127.0.0.1:${MPORT}/metrics" > metrics_net_ci.txt
    grep -q '^dsx_net_frames_total' metrics_net_ci.txt \
      || { echo "net smoke: /metrics lacks dsx_net_frames_total" >&2
           kill "${SRV_PID}"; exit 1; }
  fi
  kill "${SRV_PID}" 2>/dev/null; wait "${SRV_PID}" 2>/dev/null || true
  rm -rf listen_ci.log client_ci.txt residency_ci.json metrics_net_ci.txt \
    dsx_listen_store
  echo "net smoke OK"

  if [[ -x build/bench_micro_kernels ]]; then
    echo "== kernel tuning + simd packed GEMM (json) =="
    # Candidate sweep (simd levels included via fast-math), packed-GEMM
    # GFLOP/s scalar vs sse2 vs avx2, strict + fast-math tuned plans.
    # SHAPE-CHECKs: tuned-plan bit-identity, never-slower, and on an AVX2
    # host packed GEMM >= 2x the scalar baseline (BENCH_simd_gemm.json).
    ./build/bench_micro_kernels --json
  else
    echo "bench_micro_kernels not built (google-benchmark missing); skipping"
  fi
fi

if [[ "${SANITIZE}" == "1" ]]; then
  echo "== configure (ASan+UBSan Debug) =="
  cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=Debug -DDSX_SANITIZE=ON

  echo "== build (ASan+UBSan Debug) =="
  cmake --build build-sanitize -j"${JOBS}"

  echo "== tier-1 tests (ASan+UBSan) =="
  ctest --test-dir build-sanitize --output-on-failure -j"${JOBS}" --timeout 600

  # TSan is incompatible with ASan, so it gets its own tree. The trace rings
  # are single-writer-torn-read BY DESIGN (TSan would flag them), so this
  # tier runs only the obs primitives whose thread-safety must hold to the
  # letter: obs::intern() (concurrent span recorders dereference its
  # pointers forever), the exemplar seqlock (atomic payloads ordered by
  # fences - a plain-field version was a real data race), and the
  # thread-pool busy/idle accounting (relaxed counters read by concurrent
  # pool_stats() snapshotters while workers accumulate).
  echo "== configure (TSan Debug) =="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug -DDSX_SANITIZE_THREAD=ON

  echo "== build (TSan Debug, test_obs + test_device + test_net) =="
  cmake --build build-tsan -j"${JOBS}" --target test_obs test_device test_net

  echo "== obs intern + exemplar-seqlock tests (TSan) =="
  ./build-tsan/test_obs --gtest_filter='Intern.*:ExemplarSeqlock.*'

  echo "== thread-pool accounting tests (TSan) =="
  ./build-tsan/test_device --gtest_filter='PoolAccounting.*'

  echo "== net ingress + residency tests (TSan) =="
  # The whole suite is TSan-clean: the event thread owns all connection
  # state by construction, workers talk through mutex-guarded queues, and
  # the residency single-flight races (8-thread thundering herd, eviction
  # churn under concurrent hot-swaps) are exactly what TSan should watch.
  ./build-tsan/test_net
fi

echo "CI OK"
