#!/usr/bin/env bash
# Tier-1 verification plus the serving smoke bench.
#
#   scripts/ci.sh          - configure, build, ctest, serve-throughput smoke
#   scripts/ci.sh --fast   - skip the smoke bench (tier-1 only)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== configure =="
cmake -B build -S .

echo "== build =="
cmake --build build -j"${JOBS}"

echo "== tier-1 tests =="
ctest --test-dir build --output-on-failure -j"${JOBS}"

if [[ "${1:-}" != "--fast" ]]; then
  echo "== serve throughput (smoke) =="
  ./build/bench_serve_throughput --smoke
fi

echo "CI OK"
