#!/usr/bin/env bash
# Tier-1 verification plus the serving/tuning smoke benches.
#
#   scripts/ci.sh              - configure, build, ctest, smoke benches
#                                (writes BENCH_serve_throughput.json,
#                                 BENCH_shard_scaling.json,
#                                 BENCH_deploy_swap.json,
#                                 BENCH_micro_kernels.json, BENCH_tune.json,
#                                 BENCH_simd_gemm.json)
#                                plus the deploy canary walkthrough
#   scripts/ci.sh --fast       - skip the smoke benches (tier-1 only)
#   scripts/ci.sh --sanitize   - additionally build Debug + ASan/UBSan in
#                                build-sanitize/ and run the tier-1 suite
#                                under the sanitizers (test_simd included:
#                                that is what catches pack-buffer overruns
#                                and misaligned loads in the simd kernels)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --sanitize) SANITIZE=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== configure =="
cmake -B build -S .

echo "== build =="
cmake --build build -j"${JOBS}"

echo "== tier-1 tests =="
# --timeout backstops the per-test TIMEOUT property from CMakeLists: a
# deadlocked batcher fails fast instead of hanging CI.
ctest --test-dir build --output-on-failure -j"${JOBS}" --timeout 300

if [[ "${FAST}" != "1" ]]; then
  echo "== serve throughput (smoke, json) =="
  ./build/bench_serve_throughput --smoke --json

  echo "== shard scaling (smoke, json) =="
  # Sweeps replicas {1,2,4}; asserts modeled R=2 >= 1.3x R=1 and that
  # measured R=2 is not slower than R=1 (see bench/shard_scaling.cpp).
  ./build/bench_shard_scaling --smoke --json

  echo "== deploy hot-swap (smoke, json) =="
  # Hot-swaps under sustained load; asserts zero dropped/duplicated replies
  # and every answer bit-identical to a registered version.
  ./build/bench_deploy_swap --smoke --json

  echo "== deploy canary walkthrough =="
  # Store -> shadow -> canary -> promote; asserts the promoted fleet serves
  # the staged version bit-identically (see examples/serve_mobilenet_scc).
  ./build/example_serve_mobilenet_scc --canary

  if [[ -x build/bench_micro_kernels ]]; then
    echo "== kernel tuning + simd packed GEMM (json) =="
    # Candidate sweep (simd levels included via fast-math), packed-GEMM
    # GFLOP/s scalar vs sse2 vs avx2, strict + fast-math tuned plans.
    # SHAPE-CHECKs: tuned-plan bit-identity, never-slower, and on an AVX2
    # host packed GEMM >= 2x the scalar baseline (BENCH_simd_gemm.json).
    ./build/bench_micro_kernels --json
  else
    echo "bench_micro_kernels not built (google-benchmark missing); skipping"
  fi
fi

if [[ "${SANITIZE}" == "1" ]]; then
  echo "== configure (ASan+UBSan Debug) =="
  cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=Debug -DDSX_SANITIZE=ON

  echo "== build (ASan+UBSan Debug) =="
  cmake --build build-sanitize -j"${JOBS}"

  echo "== tier-1 tests (ASan+UBSan) =="
  ctest --test-dir build-sanitize --output-on-failure -j"${JOBS}" --timeout 600
fi

echo "CI OK"
