// Serving walkthrough: train a tiny MobileNet-SCC on synthetic data, compile
// it into a frozen inference plan, and serve concurrent single-image
// requests through the dynamic micro-batching server.
//
//  1. train a few batches (enough for non-trivial BN statistics),
//  2. CompiledModel: fold BN, freeze SCC maps, size the workspace arena,
//  3. InferenceServer: register the plan, fire client threads at it,
//  4. print the per-model stats snapshot (QPS, p50/p99, batch occupancy).
//
// Build & run:  cmake -B build -S . && cmake --build build &&
//               ./build/example_serve_mobilenet_scc
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "data/synth.hpp"
#include "models/mobilenet.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"
#include "serve/server.hpp"
#include "tensor/random.hpp"

int main() {
  using namespace dsx;

  // --- 1. train a tiny MobileNet-SCC on synthetic CIFAR ---------------------
  const int64_t image = 16;
  Rng rng(7);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWSCC;
  cfg.cg = 4;
  cfg.co = 0.5;
  cfg.width_mult = 0.25;
  auto net = models::build_mobilenet(10, cfg, rng);
  std::printf("model: MobileNet %s\n", cfg.to_string().c_str());

  const data::Dataset train =
      data::make_synth_cifar(64, /*seed=*/3, image, 3, 10);
  nn::SGD opt({.lr = 0.05f, .momentum = 0.9f, .weight_decay = 1e-4f});
  nn::Trainer trainer(*net, opt);
  const int64_t batch = 16;
  const int64_t image_floats = 3 * image * image;
  for (int64_t b = 0; b + batch <= train.images.shape().n(); b += batch) {
    Tensor x(make_nchw(batch, 3, image, image));
    std::vector<int32_t> y(static_cast<size_t>(batch));
    for (int64_t i = 0; i < batch; ++i) {
      std::memcpy(x.data() + i * image_floats,
                  train.images.data() + (b + i) * image_floats,
                  static_cast<size_t>(image_floats) * sizeof(float));
      y[static_cast<size_t>(i)] = train.labels[static_cast<size_t>(b + i)];
    }
    const auto step = trainer.train_batch(x, y);
    std::printf("  step loss %.4f\n", step.loss);
  }

  // --- 2. compile: fold BN, freeze SCC, size the arena ----------------------
  serve::CompileOptions copts;
  copts.max_batch = 8;
  auto compiled = std::make_unique<serve::CompiledModel>(
      std::move(net), Shape{3, image, image}, copts);
  const serve::CompileReport& report = compiled->report();
  std::printf("\ncompiled plan: %lld steps, %lld BN pairs folded, "
              "%lld identities stripped, %lld SCC layers frozen,\n"
              "  %lld params, %lld workspace floats (max batch %lld)\n",
              static_cast<long long>(report.steps),
              static_cast<long long>(report.bn_folded),
              static_cast<long long>(report.identities_stripped),
              static_cast<long long>(report.scc_frozen),
              static_cast<long long>(report.param_floats),
              static_cast<long long>(report.workspace_floats),
              static_cast<long long>(copts.max_batch));

  // --- 3. serve concurrent clients ------------------------------------------
  serve::InferenceServer server;
  server.register_model("mobilenet-scc", std::move(compiled),
                        {.max_batch = 8,
                         .max_delay = std::chrono::microseconds(2000)});

  const int kClients = 4, kPerClient = 32;
  Rng img_rng(13);
  std::vector<Tensor> requests;
  for (int i = 0; i < 16; ++i) {
    requests.push_back(
        random_uniform(make_nchw(1, 3, image, image), img_rng));
  }
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<Tensor>> inflight;
      for (int r = 0; r < kPerClient; ++r) {
        inflight.push_back(server.submit(
            "mobilenet-scc",
            requests[static_cast<size_t>((c + r) % requests.size())]));
      }
      for (auto& f : inflight) f.get();
    });
  }
  for (auto& t : clients) t.join();

  // --- 4. stats snapshot -----------------------------------------------------
  const serve::ModelStats stats = server.stats("mobilenet-scc");
  std::printf("\nserved %d clients x %d requests:\n", kClients, kPerClient);
  std::printf("  requests      %lld\n",
              static_cast<long long>(stats.batcher.requests));
  std::printf("  micro-batches %lld (avg occupancy %.2f)\n",
              static_cast<long long>(stats.batcher.batches),
              stats.batcher.avg_batch);
  std::printf("  throughput    %.0f QPS\n", stats.batcher.qps);
  std::printf("  latency       p50 %.2f ms, p99 %.2f ms, max %.2f ms\n",
              stats.batcher.latency.p50_ms, stats.batcher.latency.p99_ms,
              stats.batcher.latency.max_ms);
  return 0;
}
