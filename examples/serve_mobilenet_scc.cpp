// Serving walkthrough: train a tiny MobileNet-SCC on synthetic data, compile
// it into a frozen inference plan, and serve concurrent single-image
// requests through the dynamic micro-batching server.
//
//  1. train a few batches (enough for non-trivial BN statistics),
//  2. CompiledModel: fold BN, freeze SCC maps, size the workspace arena,
//  3. InferenceServer: register the plan, fire client threads at it,
//  4. print the per-model stats snapshot (QPS, p50/p99, batch occupancy).
//
// Build & run:  cmake -B build -S . && cmake --build build &&
//               ./build/example_serve_mobilenet_scc
//
// `--tune` demonstrates the dsx::tune compile pass instead: a cold-cache
// compile (every conv/SCC problem measured, winners persisted to
// dsx_tune_cache.bin) vs a warm-cache compile of the same architecture (no
// re-measuring), plus the measured per-layer speedup table the plan baked in.
//
// `--shard R` demonstrates dsx::shard instead: the model is registered with
// BatcherOptions::replicas = R (the one-field sharding switch), clients fire
// a mix of interactive, normal and deliberately-expired requests at it, and
// the per-replica stats table (requests, avg batch, p99, sheds) is printed.
//
// `--canary` demonstrates dsx::deploy instead: two weight versions are
// persisted to a ModelStore, v1 goes live behind a RolloutController, v2 is
// staged through the full ladder - shadow (mirrored traffic, output
// comparison) -> canary (25% of real requests by deterministic hash) ->
// promote (zero-downtime hot-swap) - with per-version stats printed at each
// step.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "data/synth.hpp"
#include "deploy/deploy.hpp"
#include "models/mobilenet.hpp"
#include "net/net.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "shard/shard.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor_ops.hpp"
#include "tune/tune.hpp"

namespace {

dsx::models::SchemeConfig scheme() {
  dsx::models::SchemeConfig cfg;
  cfg.scheme = dsx::models::ConvScheme::kDWSCC;
  cfg.cg = 4;
  cfg.co = 0.5;
  cfg.width_mult = 0.25;
  return cfg;
}

int run_tuning_demo() {
  using namespace dsx;
  const int64_t image = 16;
  const char* cache = "dsx_tune_cache.bin";
  std::remove(cache);  // a true cold start
  std::printf("model: MobileNet %s, tuning cache: %s\n",
              scheme().to_string().c_str(), cache);

  const auto compile_ms = [&](tune::Mode mode) {
    Rng rng(7);  // same seed -> same architecture + weights both times
    auto net = models::build_mobilenet(10, scheme(), rng);
    serve::CompileOptions copts;
    copts.max_batch = 8;
    copts.tuning = mode;
    copts.tuning_cache = cache;
    copts.tuner = {.warmup = 2, .iters = 7};
    const auto t0 = std::chrono::steady_clock::now();
    serve::CompiledModel compiled(std::move(net), Shape{3, image, image},
                                  copts);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    return std::make_pair(ms, compiled.report());
  };

  const int64_t tunes_before = tune::Session::global().tunes_performed();
  const auto [cold_ms, cold_report] = compile_ms(tune::Mode::kTune);
  const int64_t cold_tunes =
      tune::Session::global().tunes_performed() - tunes_before;
  std::printf("\ncold-cache compile: %.0f ms, %lld problems measured, "
              "%lld call sites resolved\n",
              cold_ms, static_cast<long long>(cold_tunes),
              static_cast<long long>(cold_report.layers_tuned));

  // Drop the in-memory records so the second compile genuinely exercises
  // the persisted file - without this, warm start would "work" even if
  // disk persistence were broken.
  tune::Session::global().cache().clear();
  const auto [warm_ms, warm_report] = compile_ms(tune::Mode::kTune);
  const int64_t warm_tunes = tune::Session::global().tunes_performed() -
                             tunes_before - cold_tunes;
  std::printf("warm-cache compile: %.0f ms, %lld problems measured "
              "(records loaded from %s)\n",
              warm_ms, static_cast<long long>(warm_tunes), cache);

  std::printf("\nper-layer winners (cold compile):\n");
  std::printf("  %-44s %-18s %10s %10s %7s\n", "layer", "variant", "default",
              "tuned", "gain");
  for (const serve::TunedLayerChoice& c : cold_report.tuned) {
    std::printf("  %-44s %-18s %8.0fns %8.0fns %6.2fx\n", c.layer.c_str(),
                (c.variant + "@g=" + tune::grain_name(c.grain)).c_str(),
                c.default_ns, c.median_ns, c.default_ns / c.median_ns);
  }
  if (cold_report.tuned.empty()) {
    std::printf("  (every problem kept the default implementation)\n");
  }
  std::printf("\nwarm start %s: %lld re-measurements on the second compile\n",
              warm_tunes == 0 ? "OK" : "FAILED",
              static_cast<long long>(warm_tunes));
  return warm_tunes == 0 ? 0 : 1;
}

int run_shard_demo(int replicas) {
  using namespace dsx;
  const int64_t image = 16;
  Rng rng(7);
  auto net = models::build_mobilenet(10, scheme(), rng);
  auto compiled = std::make_unique<serve::CompiledModel>(
      std::move(net), Shape{3, image, image},
      serve::CompileOptions{.max_batch = 8});
  std::printf("model: MobileNet %s, sharded across %d replicas\n",
              scheme().to_string().c_str(), replicas);

  serve::InferenceServer server;
  // Sharding is the one-field change: replicas > 1 compiles R - 1 clones of
  // the plan and serves them behind per-replica deadline batchers with
  // private execution lanes.
  server.register_model("mobilenet-scc", std::move(compiled),
                        {.max_batch = 8,
                         .max_delay = std::chrono::microseconds(1000),
                         .replicas = replicas});

  const int kClients = 4, kPerClient = 48;
  Rng img_rng(13);
  std::vector<Tensor> requests;
  for (int i = 0; i < 16; ++i) {
    requests.push_back(random_uniform(make_nchw(1, 3, image, image), img_rng));
  }
  std::vector<std::thread> clients;
  std::vector<int> sheds(static_cast<size_t>(kClients), 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<Tensor>> inflight;
      for (int r = 0; r < kPerClient; ++r) {
        const Tensor& img =
            requests[static_cast<size_t>((c + r) % requests.size())];
        shard::SubmitOptions sopts;
        if (r % 3 == 0) {
          // Interactive traffic: tight but satisfiable deadline.
          sopts = shard::within(std::chrono::microseconds(500000),
                                serve::Priority::kInteractive);
        } else if (r % 7 == 0) {
          // Already-expired deadline: shed on arrival, never batched.
          sopts.deadline = std::chrono::steady_clock::now() -
                           std::chrono::milliseconds(1);
        }
        inflight.push_back(server.submit("mobilenet-scc", img, sopts));
      }
      for (auto& f : inflight) {
        try {
          (void)f.get();
        } catch (const serve::DeadlineExceeded&) {
          ++sheds[static_cast<size_t>(c)];
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  const serve::ModelStats stats = server.stats("mobilenet-scc");
  if (!stats.shard.has_value()) {
    std::printf("(replicas=1: served by the single FIFO batcher)\n");
    std::printf("  requests %lld, p99 %.2f ms\n",
                static_cast<long long>(stats.batcher.requests),
                stats.batcher.latency.p99_ms);
    return 0;
  }
  const shard::ShardStats& shard_stats = *stats.shard;
  std::printf("\nserved %d clients x %d requests, %s routing:\n", kClients,
              kPerClient, shard::routing_policy_name(shard_stats.policy));
  std::printf("  %-8s %-6s %-10s %-10s %-10s %-6s %-9s\n", "replica", "lane",
              "requests", "batches", "avg batch", "p99", "sheds");
  for (const shard::ReplicaStats& rs : shard_stats.per_replica) {
    std::printf("  %-8d %-6u %-10lld %-10lld %-10.2f %-6.2f %-9lld\n",
                rs.replica, rs.lane_threads,
                static_cast<long long>(rs.batcher.batcher.requests),
                static_cast<long long>(rs.batcher.batcher.batches),
                rs.batcher.batcher.avg_batch, rs.batcher.batcher.latency.p99_ms,
                static_cast<long long>(rs.batcher.shed));
  }
  int client_sheds = 0;
  for (const int s : sheds) client_sheds += s;
  std::printf("  aggregate: %lld answered (%.0f QPS), %lld shed, %lld "
              "rejected, p50 %.2f ms, p99 %.2f ms\n",
              static_cast<long long>(shard_stats.requests), shard_stats.qps,
              static_cast<long long>(shard_stats.shed),
              static_cast<long long>(shard_stats.rejected),
              shard_stats.latency.p50_ms, shard_stats.latency.p99_ms);
  std::printf("  clients observed %d DeadlineExceeded - must equal the "
              "server-side shed count\n", client_sheds);
  return shard_stats.requests > 0 && shard_stats.shed > 0 &&
                 client_sheds == static_cast<int>(shard_stats.shed)
             ? 0
             : 1;
}

int run_metrics_endpoint_demo(int port, double slo_p99_ms, bool profile) {
  using namespace dsx;
  const int64_t image = 16;
  Rng rng(7);
  auto compiled = std::make_unique<serve::CompiledModel>(
      models::build_mobilenet(10, scheme(), rng), Shape{3, image, image},
      serve::CompileOptions{.max_batch = 8});
  std::printf("model: MobileNet %s, serving with a live telemetry endpoint\n",
              scheme().to_string().c_str());

  serve::InferenceServer server;
  server.register_model("mobilenet-scc", std::move(compiled),
                        {.max_batch = 8,
                         .max_delay = std::chrono::microseconds(1000)});

  // Short burn windows so an impossible --slo-p99-ms flips /healthz to 503
  // within a few seconds of traffic (the production defaults are 5s/60s).
  obs::slo::SloSpec spec;
  spec.p99_ms = slo_p99_ms > 0 ? slo_p99_ms : 10000.0;  // generous default
  spec.fast_window = std::chrono::milliseconds(500);
  spec.slow_window = std::chrono::milliseconds(2000);
  spec.min_samples = 8;
  server.set_slo("mobilenet-scc", spec);

  obs::ExporterOptions eopts;
  eopts.port = port;
  const int bound = server.start_exporter(eopts);
  // The machine-readable line CI greps for (flushed before traffic starts).
  std::printf("METRICS_PORT=%d\n", bound);
  std::fflush(stdout);
  std::printf("scrape me:  curl http://127.0.0.1:%d/metrics\n"
              "            curl http://127.0.0.1:%d/healthz\n",
              bound, bound);
  if (profile) {
    if (server.start_profile()) {
      std::printf("profiler:   sampling at %d Hz; folded stacks at\n"
                  "            curl 'http://127.0.0.1:%d/profile?seconds=1'\n"
                  "            curl 'http://127.0.0.1:%d/profile.json'\n",
                  obs::prof::sampling_hz(), bound, bound);
    } else {
      std::printf("profiler:   unavailable on this platform (resource "
                  "utilization series still exported)\n");
    }
  }

  // Drive steady traffic so the scraped series and SLO windows are live.
  constexpr auto kServeFor = std::chrono::seconds(20);
  Rng img_rng(13);
  std::vector<Tensor> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(random_uniform(make_nchw(1, 3, image, image), img_rng));
  }

  // Force one genuine tail outlier so /outliers, the /metrics exemplars and
  // their /trace timelines have something real to show: a helper thread
  // holds the process execution lock ~80 ms while one request is in flight,
  // so that request's reply-time latency trips the (lowered) absolute
  // threshold and the flight recorder promotes its capture.
  obs::flight::set_absolute_threshold_us(50'000);
  {
    std::thread holder([] {
      std::lock_guard<std::mutex> lock(serve::execution_mutex());
      std::this_thread::sleep_for(std::chrono::milliseconds(80));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    (void)server.infer("mobilenet-scc", requests[0]);
    holder.join();
  }
  std::printf("flight recorder: %lld capture(s) promoted; "
              "curl http://127.0.0.1:%d/outliers\n",
              static_cast<long long>(obs::flight::flight_stats().promoted),
              bound);

  const auto t_end = std::chrono::steady_clock::now() + kServeFor;
  int64_t answered = 0;
  while (std::chrono::steady_clock::now() < t_end) {
    (void)server.infer(
        "mobilenet-scc",
        requests[static_cast<size_t>(answered % requests.size())]);
    ++answered;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const obs::slo::Health health = server.health("mobilenet-scc");
  std::printf("served %lld requests; final health: %s\n",
              static_cast<long long>(answered),
              obs::slo::health_name(health));
  // An impossible objective is SUPPOSED to end Critical - this demo's exit
  // code reports "did the endpoint serve", not "was the SLO met".
  return answered > 0 ? 0 : 1;
}

int run_canary_demo() {
  using namespace dsx;
  const int64_t image = 16;

  // --- 1. two weight versions of the design point into the store -----------
  const std::string store_root = "dsx_model_store";
  std::filesystem::remove_all(store_root);  // a fresh walkthrough every run
  deploy::ModelStore store(store_root);
  deploy::ArchSpec spec;
  spec.family = "mobilenet";
  spec.num_classes = 10;
  spec.image = image;
  spec.scheme = scheme();
  for (const auto& [version, seed] :
       {std::pair<const char*, uint64_t>{"v1", 7},
        std::pair<const char*, uint64_t>{"v2", 8}}) {
    spec.init_seed = seed;
    auto net = deploy::build_architecture(spec);
    store.save_version("mobilenet-scc", version, *net, spec);
    const auto m = store.manifest("mobilenet-scc", version);
    std::printf("stored %s/%s: %s, weights %lld bytes (checksum %016llx)\n",
                m.model.c_str(), m.version.c_str(),
                m.arch.to_string().c_str(),
                static_cast<long long>(m.weights.bytes),
                static_cast<unsigned long long>(m.weights.checksum));
  }

  // --- 2. v1 live, v2 through shadow -> canary -> promote ------------------
  serve::InferenceServer server;
  deploy::RolloutOptions ropts;
  ropts.shadow_fraction = 0.5;
  ropts.canary_fraction = 0.25;
  deploy::RolloutController rollout(server, store, ropts);
  rollout.deploy("mobilenet-scc", "v1",
                 serve::CompileOptions{.max_batch = 8});

  Rng img_rng(13);
  std::vector<Tensor> requests;
  for (int i = 0; i < 24; ++i) {
    requests.push_back(
        random_uniform(make_nchw(1, 3, image, image), img_rng));
  }
  const auto drive = [&](int rounds) {
    int answered = 0;
    for (int r = 0; r < rounds; ++r) {
      for (const Tensor& img : requests) {
        (void)rollout.infer("mobilenet-scc", img);
        ++answered;
      }
    }
    return answered;
  };
  const auto print_status = [&](const char* moment) {
    const deploy::RolloutStatus s = rollout.status("mobilenet-scc");
    std::printf("\n[%s] live=%s%s%s phase=%s split=%.0f%%\n", moment,
                s.live_version.c_str(),
                s.candidate_version.empty() ? "" : " candidate=",
                s.candidate_version.c_str(), deploy::phase_name(s.phase),
                s.split_fraction * 100.0);
    std::printf("  primary:   %lld requests, p99 %.2f ms\n",
                static_cast<long long>(s.primary_requests), s.primary_p99_ms);
    if (!s.candidate_version.empty()) {
      std::printf("  candidate: %lld requests, p99 %.2f ms, %lld errors\n",
                  static_cast<long long>(s.candidate_requests),
                  s.candidate_p99_ms,
                  static_cast<long long>(s.candidate_errors));
    }
    if (s.shadow.mirrored > 0) {
      std::printf("  shadow:    %lld mirrored, %lld compared, %lld "
                  "mismatches (max |diff| %.4f)\n",
                  static_cast<long long>(s.shadow.mirrored),
                  static_cast<long long>(s.shadow.compared),
                  static_cast<long long>(s.shadow.mismatches),
                  s.shadow.max_abs_diff);
    }
  };

  int answered = drive(1);
  print_status("v1 live");

  rollout.stage("mobilenet-scc", "v2", serve::CompileOptions{.max_batch = 8});
  answered += drive(2);
  rollout.drain_shadow_compares();
  print_status("v2 shadowing at 50%");
  const deploy::RolloutStatus shadow_status = rollout.status("mobilenet-scc");

  rollout.advance_to_canary("mobilenet-scc");
  answered += drive(2);
  print_status("v2 canary at 25% (deterministic request-hash split)");

  rollout.promote("mobilenet-scc");
  answered += drive(1);
  print_status("v2 promoted (hot-swap; v1 drained, zero dropped)");

  // --- 3. sanity: the promoted fleet really is v2 --------------------------
  auto v2_ref = store.compile("mobilenet-scc", "v2",
                              serve::CompileOptions{.max_batch = 8});
  const float diff = max_abs_diff(rollout.infer("mobilenet-scc", requests[0]),
                                  v2_ref->run(requests[0]));
  ++answered;
  std::printf("\nserved %d requests end to end; post-promote reply vs v2 "
              "reference |diff| = %g\n", answered, diff);
  const bool ok = diff == 0.0f && shadow_status.shadow.mirrored > 0 &&
                  shadow_status.shadow.compared ==
                      shadow_status.shadow.mirrored &&
                  rollout.status("mobilenet-scc").promotions == 1;
  std::printf("canary walkthrough %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

int run_listen_demo(int port) {
  using namespace dsx;
  const int64_t image = 16;

  // Two store-backed designs under a residency budget that fits ~1.5 of
  // them: requesting the cold name evicts the other and faults in from
  // disk - watch it live on GET /residency.
  const std::string store_root = "dsx_listen_store";
  std::filesystem::remove_all(store_root);
  deploy::ModelStore store(store_root);
  deploy::ArchSpec spec;
  spec.family = "mobilenet";
  spec.num_classes = 10;
  spec.image = image;
  spec.scheme = scheme();
  for (const auto& [name, seed] :
       {std::pair<const char*, uint64_t>{"mobilenet-scc", 7},
        std::pair<const char*, uint64_t>{"mobilenet-scc-alt", 8}}) {
    spec.init_seed = seed;
    auto net = deploy::build_architecture(spec);
    store.save_version(name, "v1", *net, spec);
  }

  serve::InferenceServer server;
  const int metrics_port = server.start_exporter({.port = 0});

  net::ResidencyOptions ropts;
  {
    auto probe =
        store.compile("mobilenet-scc", "v1", {.max_batch = 8});
    const int64_t cost = probe->report().param_floats +
                         probe->report().workspace_floats;
    ropts.budget_floats = cost + cost / 2;
  }
  ropts.compile.max_batch = 8;
  net::ResidencyManager residency(server, store, ropts);
  residency.add_model("mobilenet-scc", "v1");
  residency.add_model("mobilenet-scc-alt", "v1");

  net::IngressOptions iopts;
  iopts.port = port;
  iopts.tenants = {
      net::TenantSpec{.token = "demo-interactive",
                      .priority = serve::Priority::kInteractive},
      net::TenantSpec{.token = "demo-bulk",
                      .priority = serve::Priority::kBulk,
                      .max_inflight = 8},
  };
  net::IngressServer ingress(server, iopts, &residency);
  ingress.start();

  // The machine-readable lines CI greps for (flushed before traffic).
  std::printf("INGRESS_PORT=%d\n", ingress.port());
  std::printf("METRICS_PORT=%d\n", metrics_port);
  std::fflush(stdout);
  std::printf(
      "listening; send an image:\n"
      "  ./build/example_dsx_client --port %d --model mobilenet-scc\n"
      "residency table:  curl http://127.0.0.1:%d/residency\n"
      "metrics:          curl http://127.0.0.1:%d/metrics | grep dsx_net\n",
      ingress.port(), metrics_port, metrics_port);

  // Fault both names once so /residency shows a real eviction before any
  // client arrives.
  Rng img_rng(13);
  const Tensor img = random_uniform(make_nchw(1, 3, image, image), img_rng);
  (void)residency.infer("mobilenet-scc", img);
  (void)residency.infer("mobilenet-scc-alt", img);
  const net::ResidencyStats warm = residency.stats();
  std::printf("residency: %lld registered, %lld resident, %lld faults, "
              "%lld evictions (budget %lld floats)\n",
              static_cast<long long>(warm.registered),
              static_cast<long long>(warm.resident),
              static_cast<long long>(warm.faults),
              static_cast<long long>(warm.evictions),
              static_cast<long long>(warm.budget_floats));

  constexpr auto kServeFor = std::chrono::seconds(30);
  std::this_thread::sleep_for(kServeFor);

  const net::IngressServer::Stats stats = ingress.stats();
  std::printf("ingress: %llu connections, %llu frames, %llu replies "
              "(%llu dropped), %llu framing errors, %llu rejected\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.frames),
              static_cast<unsigned long long>(stats.replies),
              static_cast<unsigned long long>(stats.dropped_replies),
              static_cast<unsigned long long>(stats.framing_errors),
              static_cast<unsigned long long>(stats.rejected));
  ingress.stop();
  server.stop();
  std::filesystem::remove_all(store_root);
  return 0;
}

void print_usage(const char* prog) {
  std::printf(
      "usage: %s [demo] [observability flags]\n"
      "\n"
      "demos (pick at most one; default: the serving walkthrough):\n"
      "  (none)        train, compile and serve a tiny MobileNet-SCC\n"
      "  --tune        cold- vs warm-cache autotuned compile (dsx::tune)\n"
      "  --shard [R]   sharded serving across R replicas (dsx::shard)\n"
      "  --canary      shadow -> canary -> promote rollout (dsx::deploy)\n"
      "  --listen PORT network ingress demo (dsx::net): two store-backed\n"
      "                models under a residency budget that fits one and a\n"
      "                half, served over the framed TCP protocol on PORT\n"
      "                (0 = ephemeral; prints 'INGRESS_PORT=<port>' and\n"
      "                'METRICS_PORT=<port>') for ~30s - drive it with\n"
      "                example_dsx_client, watch GET /residency meanwhile\n"
      "  --serve-metrics PORT\n"
      "                live telemetry endpoint demo (dsx::obs): compile and\n"
      "                serve the model, start the HTTP exporter on PORT\n"
      "                (0 = ephemeral), print 'METRICS_PORT=<port>' and keep\n"
      "                driving traffic for ~20s - scrape GET /metrics,\n"
      "                /metrics.json, /healthz, /trace, /journal meanwhile\n"
      "\n"
      "observability flags (compose with any demo; dsx::obs):\n"
      "  --metrics     after the run, print the process-wide metrics\n"
      "                registry as Prometheus text exposition\n"
      "  --trace FILE  trace every request (sampling 1-in-1) and write\n"
      "                Chrome trace-event JSON to FILE - load it in\n"
      "                Perfetto (ui.perfetto.dev) or chrome://tracing\n"
      "  --slo-p99-ms X\n"
      "                with --serve-metrics: declare a p99 latency SLO of\n"
      "                X ms on the served model (short burn windows, so an\n"
      "                impossible X flips GET /healthz to 503 within a few\n"
      "                seconds; omitted = a generous default objective)\n"
      "  --profile     with --serve-metrics: arm the sampling CPU profiler\n"
      "                for the whole run - GET /profile serves flamegraph\n"
      "                folded stacks, /profile.json the top-N frame table,\n"
      "                and /metrics gains pool/queue/arena utilization\n"
      "  --help        this message\n",
      prog);
}

int run_serving_demo();

}  // namespace

int main(int argc, char** argv) {
  using namespace dsx;
  bool metrics = false;
  const char* trace_path = nullptr;
  enum class Demo {
    kServe,
    kTune,
    kShard,
    kCanary,
    kMetricsEndpoint,
    kListen
  } demo = Demo::kServe;
  int replicas = 2;
  int serve_metrics_port = 0;
  int listen_port = 0;
  double slo_p99_ms = 0.0;
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      print_usage(argv[0]);
      return 0;
    }
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace requires an output path (see --help)\n");
        return 2;
      }
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tune") == 0) {
      demo = Demo::kTune;
    } else if (std::strcmp(argv[i], "--canary") == 0) {
      demo = Demo::kCanary;
    } else if (std::strcmp(argv[i], "--shard") == 0) {
      demo = Demo::kShard;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        const int r = std::atoi(argv[++i]);
        if (r > 0) replicas = r;
      }
    } else if (std::strcmp(argv[i], "--serve-metrics") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "--serve-metrics requires a port (0 = ephemeral; see "
                     "--help)\n");
        return 2;
      }
      demo = Demo::kMetricsEndpoint;
      serve_metrics_port = std::atoi(argv[++i]);
      if (serve_metrics_port < 0 || serve_metrics_port > 65535) {
        std::fprintf(stderr, "--serve-metrics: bad port '%s'\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--listen") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "--listen requires a port (0 = ephemeral; see --help)\n");
        return 2;
      }
      demo = Demo::kListen;
      listen_port = std::atoi(argv[++i]);
      if (listen_port < 0 || listen_port > 65535 ||
          (listen_port == 0 && std::strcmp(argv[i], "0") != 0)) {
        std::fprintf(stderr, "--listen: bad port '%s'\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--slo-p99-ms") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "--slo-p99-ms requires a latency objective in ms (see "
                     "--help)\n");
        return 2;
      }
      slo_p99_ms = std::atof(argv[++i]);
      if (slo_p99_ms <= 0.0) {
        std::fprintf(stderr, "--slo-p99-ms: bad objective '%s'\n", argv[i]);
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag '%s' (see --help)\n", argv[i]);
      return 2;
    }
  }

  if (trace_path != nullptr) obs::set_trace_sampling(1);  // trace everything

  int rc = 0;
  switch (demo) {
    case Demo::kTune:
      rc = run_tuning_demo();
      break;
    case Demo::kShard:
      rc = run_shard_demo(replicas);
      break;
    case Demo::kCanary:
      rc = run_canary_demo();
      break;
    case Demo::kMetricsEndpoint:
      rc = run_metrics_endpoint_demo(serve_metrics_port, slo_p99_ms, profile);
      break;
    case Demo::kListen:
      rc = run_listen_demo(listen_port);
      break;
    case Demo::kServe:
      rc = run_serving_demo();
      break;
  }

  if (metrics) {
    std::printf("\n# ---- metrics (Prometheus exposition) ----\n%s",
                obs::Registry::global().prometheus_text().c_str());
  }
  if (trace_path != nullptr) {
    const obs::TraceStats ts = obs::trace_stats();
    if (obs::export_chrome_trace(trace_path)) {
      std::printf("\ntrace: %lld events retained (%lld recorded, %lld "
                  "dropped) -> %s\n",
                  static_cast<long long>(ts.retained),
                  static_cast<long long>(ts.recorded),
                  static_cast<long long>(ts.dropped), trace_path);
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n", trace_path);
      rc = rc == 0 ? 1 : rc;
    }
  }
  return rc;
}

namespace {

int run_serving_demo() {
  using namespace dsx;
  // --- 1. train a tiny MobileNet-SCC on synthetic CIFAR ---------------------
  const int64_t image = 16;
  Rng rng(7);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWSCC;
  cfg.cg = 4;
  cfg.co = 0.5;
  cfg.width_mult = 0.25;
  auto net = models::build_mobilenet(10, cfg, rng);
  std::printf("model: MobileNet %s\n", cfg.to_string().c_str());

  const data::Dataset train =
      data::make_synth_cifar(64, /*seed=*/3, image, 3, 10);
  nn::SGD opt({.lr = 0.05f, .momentum = 0.9f, .weight_decay = 1e-4f});
  nn::Trainer trainer(*net, opt);
  const int64_t batch = 16;
  const int64_t image_floats = 3 * image * image;
  for (int64_t b = 0; b + batch <= train.images.shape().n(); b += batch) {
    Tensor x(make_nchw(batch, 3, image, image));
    std::vector<int32_t> y(static_cast<size_t>(batch));
    for (int64_t i = 0; i < batch; ++i) {
      std::memcpy(x.data() + i * image_floats,
                  train.images.data() + (b + i) * image_floats,
                  static_cast<size_t>(image_floats) * sizeof(float));
      y[static_cast<size_t>(i)] = train.labels[static_cast<size_t>(b + i)];
    }
    const auto step = trainer.train_batch(x, y);
    std::printf("  step loss %.4f\n", step.loss);
  }

  // --- 2. compile: fold BN, freeze SCC, size the arena ----------------------
  serve::CompileOptions copts;
  copts.max_batch = 8;
  auto compiled = std::make_unique<serve::CompiledModel>(
      std::move(net), Shape{3, image, image}, copts);
  const serve::CompileReport& report = compiled->report();
  std::printf("\ncompiled plan: %lld steps, %lld BN pairs folded, "
              "%lld identities stripped, %lld SCC layers frozen,\n"
              "  %lld params, %lld workspace floats (max batch %lld)\n",
              static_cast<long long>(report.steps),
              static_cast<long long>(report.bn_folded),
              static_cast<long long>(report.identities_stripped),
              static_cast<long long>(report.scc_frozen),
              static_cast<long long>(report.param_floats),
              static_cast<long long>(report.workspace_floats),
              static_cast<long long>(copts.max_batch));

  // --- 3. serve concurrent clients ------------------------------------------
  serve::InferenceServer server;
  server.register_model("mobilenet-scc", std::move(compiled),
                        {.max_batch = 8,
                         .max_delay = std::chrono::microseconds(2000)});

  const int kClients = 4, kPerClient = 32;
  Rng img_rng(13);
  std::vector<Tensor> requests;
  for (int i = 0; i < 16; ++i) {
    requests.push_back(
        random_uniform(make_nchw(1, 3, image, image), img_rng));
  }
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<Tensor>> inflight;
      for (int r = 0; r < kPerClient; ++r) {
        inflight.push_back(server.submit(
            "mobilenet-scc",
            requests[static_cast<size_t>((c + r) % requests.size())]));
      }
      for (auto& f : inflight) f.get();
    });
  }
  for (auto& t : clients) t.join();

  // --- 4. stats snapshot -----------------------------------------------------
  const serve::ModelStats stats = server.stats("mobilenet-scc");
  std::printf("\nserved %d clients x %d requests:\n", kClients, kPerClient);
  std::printf("  requests      %lld\n",
              static_cast<long long>(stats.batcher.requests));
  std::printf("  micro-batches %lld (avg occupancy %.2f)\n",
              static_cast<long long>(stats.batcher.batches),
              stats.batcher.avg_batch);
  std::printf("  throughput    %.0f QPS\n", stats.batcher.qps);
  std::printf("  latency       p50 %.2f ms, p99 %.2f ms, max %.2f ms\n",
              stats.batcher.latency.p50_ms, stats.batcher.latency.p99_ms,
              stats.batcher.latency.max_ms);
  return 0;
}

}  // namespace
