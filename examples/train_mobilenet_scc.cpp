// End-to-end training example: MobileNet with SCC channel fusion
// (DW+SCC-cg2-co50%, the paper's headline configuration) on the SynthCIFAR
// task, with per-epoch metrics and a final checkpoint.
//
// Usage: train_mobilenet_scc [epochs] [width_mult]
#include <cstdio>
#include <cstdlib>

#include "data/dataloader.hpp"
#include "data/synth.hpp"
#include "models/mobilenet.hpp"
#include "nn/checkpoint.hpp"
#include "nn/metrics.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"

int main(int argc, char** argv) {
  using namespace dsx;
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 6;
  const double width = argc > 2 ? std::atof(argv[2]) : 0.125;

  const int64_t classes = 4, image = 16;
  const data::Dataset train = data::make_synth_cifar(512, 101, image, 3,
                                                     classes);
  const data::Dataset test = data::make_synth_cifar(256, 102, image, 3,
                                                    classes);

  Rng rng(7);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWSCC;
  cfg.cg = 2;
  cfg.co = 0.5;
  cfg.width_mult = width;
  auto model = models::build_mobilenet(classes, cfg, rng);

  const auto cost = model->cost(make_nchw(1, 3, image, image));
  std::printf("MobileNet %s: %.2f MMACs/image, %.0f params\n",
              cfg.to_string().c_str(), cost.macs / 1e6, cost.params);

  nn::SGD opt({.lr = 0.02f, .momentum = 0.9f, .weight_decay = 1e-4f});
  nn::Trainer trainer(*model, opt);
  data::DataLoader loader(train, {.batch_size = 32, .shuffle = true,
                                  .augment = true, .seed = 3});

  for (int e = 0; e < epochs; ++e) {
    loader.reset();
    nn::AverageMeter loss, acc;
    while (loader.has_next()) {
      const data::Batch b = loader.next();
      const nn::StepResult r = trainer.train_batch(b.images, b.labels);
      loss.add(r.loss);
      acc.add(r.accuracy);
    }
    const data::Batch tb = data::full_batch(test);
    const nn::EvalResult ev = trainer.evaluate(tb.images, tb.labels);
    std::printf("epoch %2d | train loss %.3f acc %5.1f%% | test loss %.3f "
                "acc %5.1f%%\n",
                e, loss.mean(), 100 * acc.mean(), ev.loss,
                100 * ev.accuracy);
  }

  // Named checkpoint: reload with nn::load_checkpoint_file on an
  // identically-built model.
  const char* path = "mobilenet_scc.ckpt";
  nn::save_checkpoint_file(*model, path);
  std::printf("checkpoint written to %s (%zu tensors)\n", path,
              model->params().size());
  return 0;
}
