// Post-training int8 quantization of an SCC MobileNet - the edge-deployment
// scenario the paper's introduction motivates (tiny devices, tight memory).
//
// Pipeline:
//   1. train MobileNet/DW+SCC briefly on the synthetic CIFAR stand-in,
//   2. fold BatchNorm into the convolutions (inference form),
//   3. calibrate + quantize every SCC layer to int8 (per-filter weight
//      scales, percentile-clipped static activation scale),
//   4. compare float vs int8: accuracy, agreement, weight bytes, latency.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quantized_inference
#include <chrono>
#include <cstdio>

#include "data/synth.hpp"
#include "models/mobilenet.hpp"
#include "nn/bn_folding.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"
#include "quant/quant_layers.hpp"

namespace {

double seconds(const std::function<void()>& fn, int iters) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() / iters;
}

}  // namespace

int main() {
  using namespace dsx;

  // --- 1. train a small DW+SCC MobileNet -----------------------------------
  Rng rng(7);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWSCC;
  cfg.cg = 2;
  cfg.co = 0.5;
  cfg.width_mult = 0.25;
  auto model = models::build_mobilenet(10, cfg, rng);
  std::printf("model: MobileNet %s\n", cfg.to_string().c_str());

  data::Dataset train = data::make_synth_cifar(64, 11);
  data::Dataset test = data::make_synth_cifar(64, 13);
  nn::SGD opt({.lr = 0.05f});
  nn::Trainer trainer(*model, opt);
  for (int epoch = 0; epoch < 8; ++epoch) {
    const nn::StepResult r = trainer.train_batch(train.images, train.labels);
    if (epoch % 2 == 1) {
      std::printf("  epoch %d: loss %.3f acc %.2f\n", epoch, r.loss,
                  r.accuracy);
    }
  }

  // --- 2. inference form -----------------------------------------------------
  const int folded = nn::fold_batchnorm(*model);
  std::printf("folded %d BatchNorm layers into their convolutions\n", folded);
  const nn::EvalResult float_eval =
      trainer.evaluate(test.images, test.labels);
  const Tensor float_logits = model->forward(test.images, false);

  // --- 3. calibrate + quantize ------------------------------------------------
  const quant::QuantizeReport report =
      quant::quantize_scc_layers(*model, train.images);
  std::printf("quantized %lld SCC layers: %lld weight bytes -> %lld (%.1fx)\n",
              static_cast<long long>(report.layers_quantized),
              static_cast<long long>(report.float_weight_bytes),
              static_cast<long long>(report.int8_weight_bytes),
              static_cast<double>(report.float_weight_bytes) /
                  static_cast<double>(report.int8_weight_bytes));

  // --- 4. float vs int8 -------------------------------------------------------
  const nn::EvalResult quant_eval =
      trainer.evaluate(test.images, test.labels);
  const Tensor quant_logits = model->forward(test.images, false);
  int64_t agree = 0;
  const int64_t n = float_logits.shape().dim(0);
  const int64_t k = float_logits.shape().dim(1);
  for (int64_t i = 0; i < n; ++i) {
    int64_t af = 0, aq = 0;
    for (int64_t j = 1; j < k; ++j) {
      if (float_logits.at(i, j) > float_logits.at(i, af)) af = j;
      if (quant_logits.at(i, j) > quant_logits.at(i, aq)) aq = j;
    }
    agree += af == aq;
  }
  std::printf("\nheld-out accuracy: float %.2f | int8 %.2f; "
              "top-1 agreement %.0f%%\n",
              float_eval.accuracy, quant_eval.accuracy,
              100.0 * static_cast<double>(agree) / static_cast<double>(n));

  const double latency =
      seconds([&] { model->forward(test.images, false); }, 3);
  std::printf("int8 inference latency: %.1f ms / batch of %lld\n",
              1e3 * latency, static_cast<long long>(n));
  return 0;
}
