// Quickstart: the DSXplore public API in one file.
//
//  1. configure a sliding-channel convolution (SCC),
//  2. inspect its channel-window map (Algorithm 1),
//  3. run the fused forward/backward kernels,
//  4. verify against the PyTorch-style operator compositions,
//  5. compare analytic cost against the PW convolution it replaces.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "core/compositions.hpp"
#include "core/cost_model.hpp"
#include "core/scc_kernels.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor_ops.hpp"

int main() {
  using namespace dsx;

  // --- 1. configure: SCC-cg2-co50% over 8 -> 16 channels -------------------
  scc::SCCConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 16;
  cfg.groups = 2;      // cg: each filter reads Cin/cg = 4 channels
  cfg.overlap = 0.5;   // co: adjacent filters share 50% of their window
  const scc::ChannelWindowMap map(cfg);

  std::printf("%s\n", cfg.to_string().c_str());
  std::printf("group width gw = %lld, step = %lld, cyclic_dist = %lld\n",
              static_cast<long long>(map.group_width()),
              static_cast<long long>(map.step()),
              static_cast<long long>(map.cyclic_dist()));

  // --- 2. the channel-window map -------------------------------------------
  std::printf("\nfilter -> input-channel window (note the wrap-around):\n");
  for (int64_t f = 0; f < 6; ++f) {
    const scc::ChannelWindow w = map.window(f);
    std::printf("  filter %lld reads channels", static_cast<long long>(f));
    for (int64_t k = 0; k < w.width; ++k) {
      std::printf(" %lld",
                  static_cast<long long>((w.start + k) % cfg.in_channels));
    }
    std::printf("\n");
  }

  // --- 3. fused kernels ------------------------------------------------------
  Rng rng(42);
  const Tensor input = random_uniform(make_nchw(2, 8, 16, 16), rng);
  const Tensor weight =
      random_uniform(Shape{cfg.out_channels, map.group_width()}, rng);

  const Tensor output = scc::scc_forward(input, weight, nullptr, map);
  std::printf("\nforward: input %s -> output %s\n",
              input.shape().to_string().c_str(),
              output.shape().to_string().c_str());

  Tensor dout(output.shape(), 1.0f);
  const scc::SCCGrads grads = scc::scc_backward_input_centric(
      input, weight, dout, map, /*need_dinput=*/true, /*has_bias=*/false);
  std::printf("backward: |dinput| max %.4f, |dweight| max %.4f "
              "(input-centric, zero atomics)\n",
              max_abs(grads.dinput), max_abs(grads.dweight));

  // --- 4. compositions agree -------------------------------------------------
  const scc::ConvStackSCC pytorch_opt(cfg);
  const float diff =
      max_abs_diff(pytorch_opt.forward(input, weight, nullptr), output);
  std::printf("\nconv-stack composition max deviation from fused: %.2e\n",
              diff);

  // --- 5. analytic cost vs pointwise ----------------------------------------
  const auto scc_cost = scc::scc_cost(cfg, 16, 16, false);
  const auto pw_cost =
      scc::pointwise_cost(cfg.in_channels, cfg.out_channels, 16, 16, 1, false);
  std::printf("cost per image: SCC %.0f MACs / %.0f params vs PW %.0f MACs / "
              "%.0f params (%.0f%% saved)\n",
              scc_cost.macs, scc_cost.params, pw_cost.macs, pw_cost.params,
              100.0 * (1.0 - scc_cost.macs / pw_cost.macs));
  return 0;
}
