// Factorized kernel + pruning - the composition the paper's §II-C calls "a
// potential research direction": SCC already cut the dense cost; magnitude
// pruning then sparsifies what remains.
//
// Pipeline:
//   1. train MobileNet/DW+SCC on the synthetic CIFAR stand-in,
//   2. one-shot global magnitude-prune 60% of the weights (accuracy dips),
//   3. finetune with the masks held (Pruner::reapply after each step),
//   4. report accuracy at each stage and the surviving weight count.
//
// Usage: prune_finetune [epochs] [sparsity]
#include <cstdio>
#include <cstdlib>

#include "data/dataloader.hpp"
#include "data/synth.hpp"
#include "models/mobilenet.hpp"
#include "nn/metrics.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"
#include "prune/prune.hpp"

namespace {

double run_epoch(dsx::nn::Trainer& trainer, dsx::data::DataLoader& loader,
                 dsx::prune::Pruner* pruner) {
  loader.reset();
  dsx::nn::AverageMeter acc;
  while (loader.has_next()) {
    const dsx::data::Batch b = loader.next();
    acc.add(trainer.train_batch(b.images, b.labels).accuracy);
    if (pruner != nullptr) pruner->reapply();
  }
  return acc.mean();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsx;
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 5;
  const double sparsity = argc > 2 ? std::atof(argv[2]) : 0.6;

  const int64_t classes = 4, image = 16;
  const data::Dataset train = data::make_synth_cifar(512, 101, image, 3,
                                                     classes);
  const data::Dataset test = data::make_synth_cifar(256, 102, image, 3,
                                                    classes);

  Rng rng(19);
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWSCC;
  cfg.cg = 2;
  cfg.co = 0.5;
  cfg.width_mult = 0.125;
  auto model = models::build_mobilenet(classes, cfg, rng);
  std::printf("model: MobileNet %s\n", cfg.to_string().c_str());

  nn::SGD opt({.lr = 0.02f, .momentum = 0.9f, .weight_decay = 1e-4f});
  nn::Trainer trainer(*model, opt);
  data::DataLoader loader(train, {.batch_size = 32, .shuffle = true,
                                  .augment = true, .seed = 3});
  const data::Batch tb = data::full_batch(test);

  // --- 1. dense training ------------------------------------------------------
  for (int e = 0; e < epochs; ++e) run_epoch(trainer, loader, nullptr);
  const nn::EvalResult dense = trainer.evaluate(tb.images, tb.labels);
  std::printf("dense:                 test acc %5.1f%%\n",
              100 * dense.accuracy);

  // --- 2. one-shot global magnitude pruning ------------------------------------
  auto params = model->params();
  int64_t dense_weights = 0;
  for (nn::Param* p : params) {
    if (p->decay) dense_weights += p->value.numel();
  }
  prune::Pruner pruner = prune::Pruner::global_magnitude(params, sparsity);
  const nn::EvalResult pruned = trainer.evaluate(tb.images, tb.labels);
  std::printf("pruned %2.0f%% (0-shot):   test acc %5.1f%%\n",
              100 * pruner.overall_sparsity(), 100 * pruned.accuracy);

  // --- 3. masked finetuning ------------------------------------------------------
  for (int e = 0; e < epochs; ++e) run_epoch(trainer, loader, &pruner);
  const nn::EvalResult finetuned = trainer.evaluate(tb.images, tb.labels);
  const auto surviving = static_cast<int64_t>(
      static_cast<double>(dense_weights) * (1.0 - pruner.overall_sparsity()));
  std::printf("finetuned (masked):    test acc %5.1f%%\n",
              100 * finetuned.accuracy);
  std::printf("\nweights: %lld dense -> ~%lld surviving (SCC already cut the "
              "dense model; pruning stacks on top)\n",
              static_cast<long long>(dense_weights),
              static_cast<long long>(surviving));
  return 0;
}
