// Data-parallel training across a virtual device group (the paper's Fig. 14
// setup, executed on CPU replicas).
//
// Each "device" owns a model replica and a shard of every batch; after the
// local backward passes the gradients are all-reduced (mean) and every
// replica steps identically - the replicas stay bit-synchronized, which this
// example asserts every epoch.
//
// Usage: multi_device_training [devices=2] [epochs=3]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "data/dataloader.hpp"
#include "data/synth.hpp"
#include "device/device_group.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/link_model.hpp"
#include "models/mobilenet.hpp"
#include "nn/metrics.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"
#include "tensor/tensor_ops.hpp"

int main(int argc, char** argv) {
  using namespace dsx;
  const int devices = argc > 1 ? std::atoi(argv[1]) : 2;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 3;
  const int64_t classes = 4, image = 16, global_batch = 32;
  const int64_t shard = global_batch / devices;

  const data::Dataset train = data::make_synth_cifar(256, 201, image, 3,
                                                     classes);
  const data::Dataset test = data::make_synth_cifar(128, 202, image, 3,
                                                    classes);

  // Identical replicas (same init seed) - one per device.
  models::SchemeConfig cfg;
  cfg.scheme = models::ConvScheme::kDWSCC;
  cfg.cg = 2;
  cfg.co = 0.5;
  cfg.width_mult = 0.125;
  std::vector<std::unique_ptr<nn::Sequential>> replicas;
  std::vector<std::unique_ptr<nn::SGD>> optimizers;
  std::vector<std::unique_ptr<nn::Trainer>> trainers;
  for (int d = 0; d < devices; ++d) {
    Rng rng(7);  // same seed -> identical initial replicas
    replicas.push_back(models::build_mobilenet(classes, cfg, rng));
    optimizers.push_back(std::make_unique<nn::SGD>(
        nn::SGD::Options{.lr = 0.02f, .momentum = 0.9f,
                         .weight_decay = 1e-4f}));
    trainers.push_back(
        std::make_unique<nn::Trainer>(*replicas.back(), *optimizers.back()));
  }

  device::DeviceGroup group(devices);
  const gpusim::DeviceSpec v100 = gpusim::DeviceSpec::v100();
  double grad_bytes = 0.0;
  for (nn::Param* p : replicas[0]->params()) {
    grad_bytes += static_cast<double>(p->value.size_bytes());
  }

  data::DataLoader loader(train, {.batch_size = global_batch,
                                  .shuffle = true, .seed = 3,
                                  .drop_last = true});
  const int64_t sample = 3 * image * image;
  for (int e = 0; e < epochs; ++e) {
    loader.reset();
    nn::AverageMeter loss;
    double wire_mb = 0.0;
    while (loader.has_next()) {
      const data::Batch b = loader.next();
      // Local forward/backward on each device's shard.
      for (int d = 0; d < devices; ++d) {
        Tensor part(make_nchw(shard, 3, image, image));
        std::copy_n(b.images.data() + d * shard * sample, shard * sample,
                    part.data());
        const std::vector<int32_t> part_labels(
            b.labels.begin() + d * shard,
            b.labels.begin() + (d + 1) * shard);
        const nn::StepResult r =
            trainers[static_cast<size_t>(d)]->forward_backward(part,
                                                               part_labels);
        if (d == 0) loss.add(r.loss);
      }
      // All-reduce gradients, then identical optimizer steps.
      std::vector<std::vector<Tensor*>> grads(static_cast<size_t>(devices));
      for (int d = 0; d < devices; ++d) {
        for (nn::Param* p : replicas[static_cast<size_t>(d)]->params()) {
          grads[static_cast<size_t>(d)].push_back(&p->grad);
        }
      }
      const device::CollectiveStats stats = group.all_reduce_mean(grads);
      wire_mb += stats.wire_bytes / 1e6;
      for (int d = 0; d < devices; ++d) {
        optimizers[static_cast<size_t>(d)]->step(
            replicas[static_cast<size_t>(d)]->params());
      }
    }
    // Replicas must remain bit-identical.
    float max_drift = 0.0f;
    const auto p0 = replicas[0]->params();
    for (int d = 1; d < devices; ++d) {
      const auto pd = replicas[static_cast<size_t>(d)]->params();
      for (size_t i = 0; i < p0.size(); ++i) {
        max_drift =
            std::max(max_drift, max_abs_diff(p0[i]->value, pd[i]->value));
      }
    }
    const data::Batch tb = data::full_batch(test);
    const nn::EvalResult ev = trainers[0]->evaluate(tb.images, tb.labels);
    std::printf("epoch %d | loss %.3f | test acc %5.1f%% | replica drift "
                "%.1e | all-reduce traffic %.1f MB\n",
                e, loss.mean(), 100 * ev.accuracy, max_drift, wire_mb);
  }

  const auto est4 = gpusim::estimate_data_parallel(
      v100, /*single_device_compute=*/10e-3, grad_bytes, devices);
  std::printf("\nV100 link model: %d-device step = %.2f ms compute + %.2f ms "
              "all-reduce (%.1f MB grads) -> %.2fx speedup\n",
              devices, 1e3 * est4.compute_seconds, 1e3 * est4.comm_seconds,
              grad_bytes / 1e6, est4.speedup);
  return 0;
}
