// dsx_client - send an image to a dsx::net ingress and print the reply.
//
// The other half of `example_serve_mobilenet_scc --listen PORT`: connects
// to the framed TCP protocol (src/net/protocol.hpp), sends one or more
// single-image requests and prints each reply's status and top class. A
// separate process on purpose - this is the over-the-wire smoke that proves
// the wire format, not an in-process shortcut.
//
//   ./build/example_serve_mobilenet_scc --listen 0   (note INGRESS_PORT=N)
//   ./build/example_dsx_client --port N --model mobilenet-scc
//
// Exit code 0 iff every reply came back kOk.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/net.hpp"
#include "tensor/random.hpp"
#include "tensor/shape.hpp"

namespace {

void print_usage(const char* prog) {
  std::printf(
      "usage: %s --port PORT [options]\n"
      "\n"
      "  --port PORT     ingress port to connect to (required)\n"
      "  --host HOST     ingress host (default 127.0.0.1)\n"
      "  --model NAME    model to request (default mobilenet-scc)\n"
      "  --token TOKEN   tenant auth token (default: anonymous)\n"
      "  --count N       requests to send, pipelined (default 1)\n"
      "  --image SIZE    square image edge in pixels (default 16; must\n"
      "                  match the served model's input)\n"
      "  --seed N        RNG seed for the synthetic image (default 13)\n"
      "  --deadline-us N relative deadline per request (default none)\n"
      "  --help          this message\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsx;
  net::ClientOptions opts;
  std::string model = "mobilenet-scc";
  int count = 1;
  int64_t image = 16;
  uint64_t seed = 13;
  uint64_t deadline_us = 0;
  for (int i = 1; i < argc; ++i) {
    const auto arg_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value (see --help)\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--help") == 0) {
      print_usage(argv[0]);
      return 0;
    } else if (std::strcmp(argv[i], "--port") == 0) {
      opts.port = std::atoi(arg_value("--port"));
    } else if (std::strcmp(argv[i], "--host") == 0) {
      opts.host = arg_value("--host");
    } else if (std::strcmp(argv[i], "--model") == 0) {
      model = arg_value("--model");
    } else if (std::strcmp(argv[i], "--token") == 0) {
      opts.token = arg_value("--token");
    } else if (std::strcmp(argv[i], "--count") == 0) {
      count = std::atoi(arg_value("--count"));
    } else if (std::strcmp(argv[i], "--image") == 0) {
      image = std::atoll(arg_value("--image"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<uint64_t>(std::atoll(arg_value("--seed")));
    } else if (std::strcmp(argv[i], "--deadline-us") == 0) {
      deadline_us = static_cast<uint64_t>(std::atoll(arg_value("--deadline-us")));
    } else {
      std::fprintf(stderr, "unknown flag '%s' (see --help)\n", argv[i]);
      return 2;
    }
  }
  if (opts.port <= 0 || opts.port > 65535) {
    std::fprintf(stderr, "--port is required (see --help)\n");
    return 2;
  }
  if (count <= 0 || image <= 0) {
    std::fprintf(stderr, "--count and --image must be positive\n");
    return 2;
  }

  try {
    net::Client client(opts);
    Rng rng(seed);
    // Pipelined: all requests go out before the first reply is awaited.
    std::vector<uint64_t> ids;
    for (int i = 0; i < count; ++i) {
      ids.push_back(client.send(
          model, random_uniform(make_nchw(1, 3, image, image), rng, -1, 1),
          serve::Priority::kNormal, deadline_us));
    }
    int ok = 0;
    for (uint64_t id : ids) {
      const net::ReplyFrame reply = client.recv(id);
      if (reply.status != net::Status::kOk) {
        std::printf("request %llu: status=%s (%s)\n",
                    static_cast<unsigned long long>(id),
                    net::status_name(reply.status), reply.message.c_str());
        continue;
      }
      // Top class of the returned logits.
      const float* logits = reply.output.data();
      int64_t best = 0;
      for (int64_t c = 1; c < reply.output.numel(); ++c) {
        if (logits[c] > logits[best]) best = c;
      }
      std::printf("request %llu: status=ok class=%lld logit=%.4f\n",
                  static_cast<unsigned long long>(id),
                  static_cast<long long>(best), logits[best]);
      ++ok;
    }
    std::printf("%d/%d replies ok\n", ok, count);
    return ok == count ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "dsx_client: %s\n", e.what());
    return 1;
  }
}
