// Design-space exploration - the "Xplore" in DSXplore, end to end.
//
// Part 1 sweeps the (cg, co) space of SCC for a chosen model, reporting for
// every point: analytic MACs/params, measured step time with the fused
// kernels, and the cyclic distance (which governs the composition baselines'
// memory). Part 2 runs the explore/ library workflow the paper's manual
// Table IV sweep corresponds to: score every point on the cross-channel
// proxy task, compute the cost/accuracy Pareto front, and pick the best
// design under a MACs budget.
//
// Usage: design_space_explorer [model=mobilenet|vgg16|resnet18]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>

#include "explore/design_space.hpp"
#include "models/mobilenet.hpp"
#include "models/resnet.hpp"
#include "models/schemes.hpp"
#include "models/vgg.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"
#include "tensor/random.hpp"

namespace {

double step_seconds(dsx::nn::Sequential& model, const dsx::Tensor& images,
                    std::span<const int32_t> labels) {
  dsx::nn::SGD opt({});
  dsx::nn::Trainer trainer(model, opt);
  trainer.forward_backward(images, labels);  // warmup
  const auto t0 = std::chrono::steady_clock::now();
  trainer.forward_backward(images, labels);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

std::unique_ptr<dsx::nn::Sequential> build(const char* which, int64_t classes,
                                           int64_t image,
                                           const dsx::models::SchemeConfig& cfg,
                                           dsx::Rng& rng) {
  if (std::strcmp(which, "vgg16") == 0) {
    return dsx::models::build_vgg(16, classes, image, cfg, rng);
  }
  if (std::strcmp(which, "resnet18") == 0) {
    return dsx::models::build_resnet(18, classes, cfg, rng);
  }
  return dsx::models::build_mobilenet(classes, cfg, rng);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsx;
  const char* which = argc > 1 ? argv[1] : "mobilenet";
  const int64_t image = 32, batch = 4, classes = 10;

  // --- Part 1: measured sweep over the whole grid ---------------------------
  std::printf("DSXplore design-space sweep for %s (width 0.125, batch %lld, "
              "%lldx%lld)\n\n",
              which, static_cast<long long>(batch),
              static_cast<long long>(image), static_cast<long long>(image));
  std::printf("%-14s %10s %10s %12s %12s\n", "design", "MMACs", "kParams",
              "step (ms)", "cyclic_dist");

  Rng drng(5);
  const Tensor images =
      random_uniform(make_nchw(batch, 3, image, image), drng);
  std::vector<int32_t> labels(static_cast<size_t>(batch));
  for (auto& y : labels) y = static_cast<int32_t>(drng.randint(0, classes - 1));

  for (const int64_t cg : {1, 2, 4, 8}) {
    for (const double co : {0.25, 1.0 / 3.0, 0.5, 0.75}) {
      models::SchemeConfig cfg;
      cfg.scheme = models::ConvScheme::kDWSCC;
      cfg.cg = cg;
      cfg.co = co;
      cfg.width_mult = 0.125;
      Rng rng(7);
      auto model = build(which, classes, image, cfg, rng);
      const auto cost = model->cost(make_nchw(1, 3, image, image));
      const double ms = 1e3 * step_seconds(*model, images, labels);

      // Representative cyclic distance: a mid-network fusion layer.
      scc::SCCConfig probe;
      probe.in_channels = 64;
      probe.out_channels = 64;
      probe.groups = cg;
      probe.overlap = co;
      const scc::ChannelWindowMap map(probe);

      char name[32];
      std::snprintf(name, sizeof(name), "cg%lld-co%.0f%%",
                    static_cast<long long>(cg), 100 * co);
      std::printf("%-14s %10.2f %10.1f %12.2f %12lld\n", name,
                  cost.macs / 1e6, cost.params / 1e3, ms,
                  static_cast<long long>(map.cyclic_dist()));
    }
  }

  // --- Part 2: the library workflow (proxy score -> Pareto -> budget) --------
  std::printf("\n--- explore/ library: proxy-scored Pareto front ---\n");
  const std::vector<int64_t> cgs = {1, 2, 4, 8};
  const std::vector<double> cos = {0.0, 1.0 / 3.0, 0.5};
  const auto points = explore::grid(cgs, cos);

  const auto cost_fn = [&](const explore::DesignPoint& p) {
    models::SchemeConfig cfg;
    cfg.scheme = models::ConvScheme::kDWSCC;
    cfg.cg = p.cg;
    cfg.co = p.co;
    cfg.width_mult = 0.125;
    Rng rng(7);
    auto model = build(which, classes, image, cfg, rng);
    const auto c = model->cost(make_nchw(1, 3, image, image));
    return explore::DesignCost{c.macs / 1e6, c.params / 1e3};
  };
  explore::ProxyOptions proxy_opts;
  proxy_opts.epochs = 6;
  proxy_opts.train_samples = 192;
  proxy_opts.test_samples = 96;
  const auto score_fn = explore::make_cross_channel_proxy(proxy_opts);

  const auto candidates = explore::evaluate_grid(points, cost_fn, score_fn);
  const auto front = explore::pareto_front(candidates);
  std::printf("%zu candidates -> %zu on the cost/accuracy Pareto front:\n",
              candidates.size(), front.size());
  for (const explore::Candidate& c : front) {
    std::printf("  %-16s %8.2f MMACs  proxy acc %5.1f%%\n",
                c.design.to_string().c_str(), c.mmacs, 100 * c.score);
  }

  // Budget: halfway between the cheapest and richest design in the grid.
  double lo = 1e300, hi = 0.0;
  for (const explore::Candidate& c : candidates) {
    lo = std::min(lo, c.mmacs);
    hi = std::max(hi, c.mmacs);
  }
  const double budget = 0.5 * (lo + hi);
  const explore::Candidate pick =
      explore::best_under_budget(candidates, budget);
  std::printf("\nbest design under %.2f MMACs: %s (proxy acc %.1f%%)\n",
              budget, pick.design.to_string().c_str(), 100 * pick.score);
  std::printf(
      "\nReading the tables: larger cg cuts MACs/params (and step time) but - "
      "per the paper's Table IV - costs accuracy; co is free at runtime and "
      "buys back cross-channel information. The paper's recommended operating "
      "points are cg=2..4 with co=33..50%%.\n");
  return 0;
}
