// Tuned kernel dispatch - the integration point between ops and the tuner.
//
// These are drop-in replacements for scc::scc_forward_into /
// conv2d_forward_into that consult the KernelRegistry + TuningCache under
// the Session's mode. In kOff mode they collapse to the default kernel with
// one branch of overhead, keeping tuning-off behavior bit-identical to the
// pre-tuning library.
//
// A call site may pass a persistent Site: the first resolution (cache hit or
// fresh measurement) is BAKED into it and every later call executes the
// resolved candidate directly - no key building, no cache lookup. This is
// how serve::CompiledModel freezes per-layer winners into a plan: each
// nn::Conv2d / nn::SCCConv owns its Site, the compile-time tuning pass
// resolves them once, and steady-state run() never touches the session.
#pragma once

#include <optional>

#include "obs/metrics.hpp"
#include "tune/cache.hpp"
#include "tune/registry.hpp"

namespace dsx::tune {

/// Per-call-site baked resolution for SCC forward.
///
/// `kernel_ns` feeds dsx_tune_kernel_ns_total{variant=}: cumulative time the
/// process spent inside this site's baked winner, attributed at dispatch
/// while the profiler samples (obs::prof). Registered at bake time (cold
/// path) keyed by the winner's variant; detached until then and whenever
/// profiling is off the fast path pays one relaxed load only.
struct SccSite {
  std::optional<SCCCandidate> baked;
  std::optional<TuningRecord> record;  // absent when baked the default
  obs::Counter kernel_ns;
  bool resolved() const { return baked.has_value(); }
  void reset() { baked.reset(); record.reset(); kernel_ns = {}; }
};

/// Per-call-site baked resolution for conv2d forward.
struct ConvSite {
  std::optional<ConvCandidate> baked;
  std::optional<TuningRecord> record;
  obs::Counter kernel_ns;
  bool resolved() const { return baked.has_value(); }
  void reset() { baked.reset(); record.reset(); kernel_ns = {}; }
};

/// Per-call-site baked resolution for depthwise forward.
struct DepthwiseSite {
  std::optional<DepthwiseCandidate> baked;
  std::optional<TuningRecord> record;
  obs::Counter kernel_ns;
  bool resolved() const { return baked.has_value(); }
  void reset() { baked.reset(); record.reset(); kernel_ns = {}; }
};

/// Executes the best-known SCC forward implementation for this problem.
/// `out` must already have scc_output_shape; scratch comes from `ws`.
void scc_forward_dispatch(const Tensor& input, const Tensor& weight,
                          const Tensor* bias, const scc::ChannelWindowMap& map,
                          Workspace& ws, Tensor& out, SccSite* site = nullptr);

/// Executes the best-known conv2d forward implementation for this problem.
void conv2d_forward_dispatch(const Tensor& input, const Tensor& weight,
                             const Tensor* bias, const Conv2dArgs& args,
                             Workspace& ws, Tensor& out,
                             ConvSite* site = nullptr);

/// Executes the best-known depthwise forward implementation.
void depthwise_forward_dispatch(const Tensor& input, const Tensor& weight,
                                const Tensor* bias, const DepthwiseArgs& args,
                                Workspace& ws, Tensor& out,
                                DepthwiseSite* site = nullptr);

}  // namespace dsx::tune
