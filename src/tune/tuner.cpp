#include "tune/tuner.hpp"

#include <algorithm>
#include <chrono>

#include "common/check.hpp"
#include "core/scc_kernels.hpp"
#include "explore/design_space.hpp"

namespace dsx::tune {

namespace {

double time_once_ns(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

/// Hopeless-candidate cutoff: anything this much slower than the round-1
/// best is dropped after one observation (the GEMM routes lose by 30-70x;
/// timing them k times just burns the CPU quota the close races need).
constexpr double kPruneFactor = 5.0;

/// Median-of-k per candidate with the candidates interleaved round-robin:
/// one timed run of each per round, and each round starting one position
/// later. Interleaving spreads throttling windows and scheduler bursts over
/// every candidate instead of condemning whichever was being measured; the
/// rotating start spreads the cold-cache penalty of following a
/// large-footprint candidate (the GEMM routes evict everything) so no fixed
/// position eats it every round. Both matter a lot on the loaded shared-CPU
/// substrates this tuner actually runs on. Candidates beyond kPruneFactor
/// of the first round's best keep their single sample and stop being run.
std::vector<double> measure_interleaved(
    const std::vector<std::function<void()>>& fns, int warmup, int iters) {
  for (int w = 0; w < warmup; ++w) {
    for (const auto& fn : fns) fn();
  }
  std::vector<std::vector<double>> times(fns.size());
  std::vector<bool> active(fns.size(), true);
  for (int it = 0; it < std::max(1, iters); ++it) {
    for (size_t i = 0; i < fns.size(); ++i) {
      const size_t idx = (i + static_cast<size_t>(it)) % fns.size();
      if (!active[idx]) continue;
      times[idx].push_back(time_once_ns(fns[idx]));
    }
    if (it == 0) {
      double best = times[0][0];
      for (const auto& t : times) best = std::min(best, t[0]);
      for (size_t i = 0; i < fns.size(); ++i) {
        if (times[i][0] > best * kPruneFactor) active[i] = false;
      }
    }
  }
  std::vector<double> medians(fns.size());
  for (size_t i = 0; i < fns.size(); ++i) {
    std::sort(times[i].begin(), times[i].end());
    medians[i] = times[i][times[i].size() / 2];
  }
  return medians;
}

/// Winner index among measured candidates. Candidates within `epsilon` of
/// the best median are one tie set - inside it, time differences are noise,
/// so the decision moves to explore::pareto_front over (minimize scratch
/// memory, maximize registry priority): the front's cheapest-memory point
/// wins and earlier-registered candidates dominate later ones. The default
/// implementation is registered first with zero scratch, so a non-default
/// winner is always a strictly-more-than-epsilon measured improvement.
size_t select_winner(const std::vector<CandidateTiming>& timings,
                     double epsilon) {
  DSX_CHECK(!timings.empty(), "tune: no candidates to select from");
  double best = timings.front().median_ns;
  for (const CandidateTiming& t : timings) best = std::min(best, t.median_ns);

  std::vector<explore::Candidate> pool;
  for (size_t i = 0; i < timings.size(); ++i) {
    if (timings[i].median_ns > best * (1.0 + epsilon)) continue;
    explore::Candidate c;
    c.mmacs = static_cast<double>(timings[i].scratch_floats);
    c.score = -static_cast<double>(i);    // registry order = priority
    c.kparams = static_cast<double>(i);   // carries the index through
    pool.push_back(c);
  }
  const std::vector<explore::Candidate> front = explore::pareto_front(pool);
  DSX_CHECK(!front.empty(), "tune: empty Pareto front");
  // Ascending mmacs (= scratch); the first entry is the cheapest-memory,
  // highest-priority survivor.
  return static_cast<size_t>(front.front().kparams);
}

TuningRecord make_record(const ProblemKey& key,
                         const std::vector<CandidateTiming>& timings,
                         size_t winner, int iters) {
  TuningRecord rec;
  rec.key = key;
  rec.variant = timings[winner].variant;
  rec.grain = timings[winner].grain;
  rec.fidelity = timings[winner].fidelity;
  rec.median_ns = timings[winner].median_ns;
  rec.default_ns = timings.front().median_ns;  // registry default comes first
  rec.iters = iters;
  return rec;
}

/// Family-independent measure -> time -> select -> record sequence;
/// `make_runner(candidate)` supplies the family-specific execution closure.
template <typename Candidate, typename MakeRunner>
TuneResult measure_and_select(const ProblemKey& key,
                              const std::vector<Candidate>& candidates,
                              const TunerOptions& opts,
                              MakeRunner&& make_runner) {
  std::vector<std::function<void()>> fns;
  fns.reserve(candidates.size());
  for (const Candidate& c : candidates) fns.push_back(make_runner(c));
  const std::vector<double> medians =
      measure_interleaved(fns, opts.warmup, opts.iters);

  TuneResult result;
  for (size_t i = 0; i < candidates.size(); ++i) {
    result.timings.push_back({candidates[i].variant, candidates[i].grain,
                              candidates[i].scratch_floats,
                              candidates[i].fidelity, medians[i]});
  }
  const size_t winner = select_winner(result.timings, opts.time_epsilon);
  result.record = make_record(key, result.timings, winner, opts.iters);
  return result;
}

}  // namespace

Tuner::Tuner(TunerOptions opts) : opts_(opts) {
  DSX_REQUIRE(opts_.warmup >= 0 && opts_.iters >= 1,
              "tune: warmup must be >= 0 and iters >= 1");
}

TuneResult Tuner::tune_scc(const ProblemKey& key, const Tensor& input,
                           const Tensor& weight, const Tensor* bias,
                           const scc::ChannelWindowMap& map) const {
  const std::vector<SCCCandidate> candidates =
      KernelRegistry::global().scc_forward(key, opts_.allow_fast_math);
  DSX_REQUIRE(!candidates.empty(), "tune: no SCC candidates registered");

  // Private scratch so the caller's arena never sees measurement traffic.
  Tensor out(scc::scc_output_shape(input.shape(), map));
  Workspace scratch;
  SCCProblem problem{&input, &weight, bias, &map, &scratch, &out};
  return measure_and_select(
      key, candidates, opts_, [&scratch, problem](const SCCCandidate& c) {
        // &c outlives the closure (it points into `candidates`).
        return std::function<void()>([&scratch, cand = &c, problem] {
          scratch.reset();
          cand->run(problem);
        });
      });
}

TuneResult Tuner::tune_conv2d(const ProblemKey& key, const Tensor& input,
                              const Tensor& weight, const Tensor* bias,
                              const Conv2dArgs& args) const {
  const std::vector<ConvCandidate> candidates =
      KernelRegistry::global().conv2d_forward(key, opts_.allow_fast_math);
  DSX_REQUIRE(!candidates.empty(), "tune: no conv2d candidates registered");

  Tensor out(conv2d_output_shape(input.shape(), weight.shape(), args));
  Workspace scratch;
  ConvProblem problem{&input, &weight, bias, &args, &scratch, &out};
  return measure_and_select(
      key, candidates, opts_, [&scratch, problem](const ConvCandidate& c) {
        return std::function<void()>([&scratch, cand = &c, problem] {
          scratch.reset();
          cand->run(problem);
        });
      });
}

TuneResult Tuner::tune_depthwise(const ProblemKey& key, const Tensor& input,
                                 const Tensor& weight, const Tensor* bias,
                                 const DepthwiseArgs& args) const {
  const std::vector<DepthwiseCandidate> candidates =
      KernelRegistry::global().depthwise_forward(key, opts_.allow_fast_math);
  DSX_REQUIRE(!candidates.empty(), "tune: no depthwise candidates registered");

  Tensor out(depthwise_output_shape(input.shape(), weight.shape(), args));
  Workspace scratch;
  DepthwiseProblem problem{&input, &weight, bias, &args, &scratch, &out};
  return measure_and_select(
      key, candidates, opts_,
      [&scratch, problem](const DepthwiseCandidate& c) {
        return std::function<void()>([&scratch, cand = &c, problem] {
          scratch.reset();
          cand->run(problem);
        });
      });
}

}  // namespace dsx::tune
