#include "tune/dispatch.hpp"

#include <chrono>
#include <sstream>

#include "common/check.hpp"
#include "core/scc_kernels.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "tune/tune.hpp"

namespace dsx::tune {

namespace {

int64_t mono_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Shared dispatch skeleton for every op family: baked site -> off-mode
/// default -> cache lookup -> (kTune) measure + record -> resolve -> bake ->
/// run. A new op family only supplies the five family-specific callables;
/// the cache/tune/fallback sequencing stays in one place.
template <typename Problem, typename Site, typename MakeKey,
          typename RunDefault, typename TuneProblem, typename FindCandidate,
          typename Enumerate>
void dispatch_impl(const Problem& problem, Site* site, MakeKey&& make_key,
                   RunDefault&& run_default, TuneProblem&& tune_problem,
                   FindCandidate&& find_candidate, Enumerate&& enumerate) {
  if (site != nullptr && site->resolved()) {
    // Kernel-variant time attribution, profiler-gated: with prof off the
    // steady-state cost here is prof_enabled()'s single relaxed load. The
    // clock reads bracket the existing call - float work is untouched.
    if (obs::prof::prof_enabled()) {
      const int64_t t0 = mono_ns();
      site->baked->run(problem);
      site->kernel_ns.inc(mono_ns() - t0);
      return;
    }
    site->baked->run(problem);
    return;
  }

  Session& session = Session::global();
  const Mode mode = session.mode();
  if (mode == Mode::kOff) {
    run_default();
    return;
  }

  // Fidelity admission comes from the session's fast-math opt-in. It is
  // stamped into the ProblemKey: strict and fast-math records are distinct
  // cache entries, so a shape tuned in one domain still measures (kTune) or
  // misses to the default (kCached) in the other instead of silently
  // replaying a winner picked from the wrong candidate menu.
  const bool allow = session.allow_fast_math();
  ProblemKey key = make_key();
  key.fast_math = allow;
  std::optional<TuningRecord> rec = session.cache().find(key);
  if (!rec.has_value() && mode == Mode::kTune) {
    TunerOptions opts = session.tuner_options();
    opts.allow_fast_math = allow;
    const Tuner tuner(opts);
    TuneResult result = tune_problem(tuner, key);
    session.cache().put(result.record);
    session.note_tune();
    session.save_cache();
    // Journal the measurement (obs): which problem, which winner, and the
    // speedup over the default - the post-mortem trail for "why is this
    // process running variant X".
    {
      std::ostringstream os;
      os << key.to_string() << " -> " << result.record.variant
         << " (median " << result.record.median_ns / 1e3 << " us, default "
         << result.record.default_ns / 1e3 << " us)";
      obs::Journal::global().record(obs::EventKind::kTuneMeasure, "tune",
                                    os.str());
    }
    obs::Registry::global()
        .counter("dsx_tune_measurements_total", {},
                 "Tuner measurements performed through dispatch.")
        .inc();
    rec = std::move(result.record);
  }

  // Defense in depth on top of the domain-keyed lookup: a kUlpBounded
  // record (hand-seeded, or from a tampered cache) found while fast-math is
  // off fails this fidelity-gated lookup and falls through to the default
  // kernel - a fast-math record can never change a strict process's
  // numerics.
  using Candidate = typename decltype(find_candidate(
      key, std::string(), int64_t{0}, false))::value_type;
  std::optional<Candidate> cand;
  if (rec.has_value()) {
    cand = find_candidate(key, rec->variant, rec->grain, allow);
  }
  if (!cand.has_value()) {  // cache miss in kCached, or a stale record
    auto candidates = enumerate(key, allow);
    DSX_CHECK(!candidates.empty(), "tune: registry offered no candidates");
    // The registry's first candidate is the library default.
    cand = std::move(candidates.front());
    rec.reset();
  }
  if (site != nullptr) {
    site->baked = cand;
    site->record = rec;
    // Bake-time registration (cold path): all steady-state dispatches of
    // this site attribute into the winner's per-variant series.
    site->kernel_ns = obs::Registry::global().counter(
        "dsx_tune_kernel_ns_total", {{"variant", cand->variant}},
        "Nanoseconds spent inside baked tuned kernels, by winning variant "
        "(attributed while the profiler is on)");
  }
  cand->run(problem);
}

}  // namespace

void scc_forward_dispatch(const Tensor& input, const Tensor& weight,
                          const Tensor* bias, const scc::ChannelWindowMap& map,
                          Workspace& ws, Tensor& out, SccSite* site) {
  const SCCProblem problem{&input, &weight, bias, &map, &ws, &out};
  const KernelRegistry& registry = KernelRegistry::global();
  dispatch_impl(
      problem, site,
      [&] { return make_scc_forward_key(input.shape(), map); },
      [&] { scc::scc_forward_into(input, weight, bias, map, out); },
      [&](const Tuner& tuner, const ProblemKey& key) {
        return tuner.tune_scc(key, input, weight, bias, map);
      },
      [&](const ProblemKey& key, const std::string& variant, int64_t grain,
          bool allow) { return registry.find_scc(key, variant, grain, allow); },
      [&](const ProblemKey& key, bool allow) {
        return registry.scc_forward(key, allow);
      });
}

void conv2d_forward_dispatch(const Tensor& input, const Tensor& weight,
                             const Tensor* bias, const Conv2dArgs& args,
                             Workspace& ws, Tensor& out, ConvSite* site) {
  const ConvProblem problem{&input, &weight, bias, &args, &ws, &out};
  const KernelRegistry& registry = KernelRegistry::global();
  dispatch_impl(
      problem, site,
      [&] { return make_conv2d_forward_key(input.shape(), weight.shape(), args); },
      [&] { conv2d_forward_into(input, weight, bias, args, ws, out); },
      [&](const Tuner& tuner, const ProblemKey& key) {
        return tuner.tune_conv2d(key, input, weight, bias, args);
      },
      [&](const ProblemKey& key, const std::string& variant, int64_t grain,
          bool allow) {
        return registry.find_conv(key, variant, grain, allow);
      },
      [&](const ProblemKey& key, bool allow) {
        return registry.conv2d_forward(key, allow);
      });
}

void depthwise_forward_dispatch(const Tensor& input, const Tensor& weight,
                                const Tensor* bias, const DepthwiseArgs& args,
                                Workspace& ws, Tensor& out,
                                DepthwiseSite* site) {
  const DepthwiseProblem problem{&input, &weight, bias, &args, &ws, &out};
  const KernelRegistry& registry = KernelRegistry::global();
  dispatch_impl(
      problem, site,
      [&] {
        return make_depthwise_forward_key(input.shape(), weight.shape(), args);
      },
      [&] { depthwise_forward_into(input, weight, bias, args, out); },
      [&](const Tuner& tuner, const ProblemKey& key) {
        return tuner.tune_depthwise(key, input, weight, bias, args);
      },
      [&](const ProblemKey& key, const std::string& variant, int64_t grain,
          bool allow) {
        return registry.find_depthwise(key, variant, grain, allow);
      },
      [&](const ProblemKey& key, bool allow) {
        return registry.depthwise_forward(key, allow);
      });
}

}  // namespace dsx::tune
