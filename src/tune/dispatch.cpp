#include "tune/dispatch.hpp"

#include "common/check.hpp"
#include "core/scc_kernels.hpp"
#include "tune/tune.hpp"

namespace dsx::tune {

namespace {

/// Shared dispatch skeleton for every op family: baked site -> off-mode
/// default -> cache lookup -> (kTune) measure + record -> resolve -> bake ->
/// run. A new op family only supplies the five family-specific callables;
/// the cache/tune/fallback sequencing stays in one place.
template <typename Problem, typename Site, typename MakeKey,
          typename RunDefault, typename TuneProblem, typename FindCandidate,
          typename Enumerate>
void dispatch_impl(const Problem& problem, Site* site, MakeKey&& make_key,
                   RunDefault&& run_default, TuneProblem&& tune_problem,
                   FindCandidate&& find_candidate, Enumerate&& enumerate) {
  if (site != nullptr && site->resolved()) {
    site->baked->run(problem);
    return;
  }

  Session& session = Session::global();
  const Mode mode = session.mode();
  if (mode == Mode::kOff) {
    run_default();
    return;
  }

  const ProblemKey key = make_key();
  std::optional<TuningRecord> rec = session.cache().find(key);
  if (!rec.has_value() && mode == Mode::kTune) {
    const Tuner tuner(session.tuner_options());
    TuneResult result = tune_problem(tuner, key);
    session.cache().put(result.record);
    session.note_tune();
    session.save_cache();
    rec = std::move(result.record);
  }

  using Candidate = typename decltype(find_candidate(
      key, std::string(), int64_t{0}))::value_type;
  std::optional<Candidate> cand;
  if (rec.has_value()) {
    cand = find_candidate(key, rec->variant, rec->grain);
  }
  if (!cand.has_value()) {  // cache miss in kCached, or a stale record
    auto candidates = enumerate(key);
    DSX_CHECK(!candidates.empty(), "tune: registry offered no candidates");
    // The registry's first candidate is the library default.
    cand = std::move(candidates.front());
    rec.reset();
  }
  if (site != nullptr) {
    site->baked = cand;
    site->record = rec;
  }
  cand->run(problem);
}

}  // namespace

void scc_forward_dispatch(const Tensor& input, const Tensor& weight,
                          const Tensor* bias, const scc::ChannelWindowMap& map,
                          Workspace& ws, Tensor& out, SccSite* site) {
  const SCCProblem problem{&input, &weight, bias, &map, &ws, &out};
  const KernelRegistry& registry = KernelRegistry::global();
  dispatch_impl(
      problem, site,
      [&] { return make_scc_forward_key(input.shape(), map); },
      [&] { scc::scc_forward_into(input, weight, bias, map, out); },
      [&](const Tuner& tuner, const ProblemKey& key) {
        return tuner.tune_scc(key, input, weight, bias, map);
      },
      [&](const ProblemKey& key, const std::string& variant, int64_t grain) {
        return registry.find_scc(key, variant, grain);
      },
      [&](const ProblemKey& key) { return registry.scc_forward(key); });
}

void conv2d_forward_dispatch(const Tensor& input, const Tensor& weight,
                             const Tensor* bias, const Conv2dArgs& args,
                             Workspace& ws, Tensor& out, ConvSite* site) {
  const ConvProblem problem{&input, &weight, bias, &args, &ws, &out};
  const KernelRegistry& registry = KernelRegistry::global();
  dispatch_impl(
      problem, site,
      [&] { return make_conv2d_forward_key(input.shape(), weight.shape(), args); },
      [&] { conv2d_forward_into(input, weight, bias, args, ws, out); },
      [&](const Tuner& tuner, const ProblemKey& key) {
        return tuner.tune_conv2d(key, input, weight, bias, args);
      },
      [&](const ProblemKey& key, const std::string& variant, int64_t grain) {
        return registry.find_conv(key, variant, grain);
      },
      [&](const ProblemKey& key) { return registry.conv2d_forward(key); });
}

}  // namespace dsx::tune
