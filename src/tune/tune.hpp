// dsx::tune - empirical autotuning of kernel dispatch (umbrella + session).
//
// DSXplore's thesis is design exploration; this subsystem applies it to the
// implementation axis the paper sweeps by hand in §IV-B: which kernel
// variant, and which parallel-for schedule, actually wins on THIS hardware
// for THIS shape. Three modes:
//
//   kOff    - dispatch runs today's heuristics untouched (bit-identical to
//             the pre-tuning library; the default, and what tests pin);
//   kCached - dispatch consults the TuningCache and uses a record when one
//             exists; never measures;
//   kTune   - cache misses trigger a Tuner measurement whose winner is
//             recorded (and persisted when a cache path is set).
//
// The process-wide Session carries the mode, the cache, the tuner options
// and the fast-math opt-in (tune::Fidelity admission: while off - the
// default - dispatch and the tuner only ever see kBitExact candidates, so
// every historical bit-identity invariant holds; while on, kUlpBounded simd
// candidates join the menu). Environment overrides for zero-code adoption:
//   DSX_TUNE=off|cached|tune   initial mode
//   DSX_TUNE_CACHE=<path>      cache file, auto-loaded when present and
//                              saved after every new measurement
//   DSX_FAST_MATH=1            admit kUlpBounded (simd FMA) candidates
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "tune/cache.hpp"
#include "tune/tuner.hpp"

namespace dsx::tune {

enum class Mode {
  kOff = 0,
  kCached = 1,
  kTune = 2,
};

const char* mode_name(Mode mode);
/// Parses "off" / "cached" / "tune"; throws dsx::Error otherwise.
Mode parse_mode(const std::string& name);

class Session {
 public:
  /// Process-wide session; first use reads DSX_TUNE / DSX_TUNE_CACHE.
  static Session& global();

  Mode mode() const;
  void set_mode(Mode mode);

  TuningCache& cache() { return cache_; }

  TunerOptions tuner_options() const;
  void set_tuner_options(const TunerOptions& opts);

  /// Cache persistence path; empty disables autosave. Setting a path loads
  /// an existing file immediately unless `load_existing` is false (missing
  /// files are fine - first run; a corrupt or stale-version file is
  /// reported to stderr and skipped, so a torn write degrades to a cold
  /// start instead of aborting startup). Pass load_existing=false when
  /// restoring a previously observed path: re-loading the old file would
  /// let its records overwrite fresher in-memory measurements.
  std::string cache_path() const;
  void set_cache_path(const std::string& path, bool load_existing = true);
  /// Persists the cache to cache_path() (atomic temp+rename); no-op when
  /// the path is empty or autosave is deferred.
  void save_cache() const;

  /// While deferred, dispatch skips its per-measurement save_cache() - a
  /// compile-time tuning pass measures many problems and saves once at the
  /// end instead of rewriting the file per record.
  bool autosave_deferred() const;
  void set_autosave_deferred(bool deferred);

  /// Fast-math opt-in: admit Fidelity::kUlpBounded candidates in dispatch
  /// and tuning. Default off (bit-identity preserved); initialised from
  /// DSX_FAST_MATH, set per-compile by CompileOptions.allow_fast_math.
  /// A ScopedFastMath override on the CURRENT thread takes precedence over
  /// the process-wide setting (see ScopedFastMath below).
  bool allow_fast_math() const;
  /// Sets the process-wide flag (every thread without a scoped override).
  void set_allow_fast_math(bool allow);

  /// Number of Tuner measurements performed through dispatch since process
  /// start - a warm-started process re-measures nothing, which tests and
  /// the example assert through this counter.
  int64_t tunes_performed() const;
  void note_tune();

  /// RAII fast-math switch, THREAD-LOCAL by design: a compile's tuning
  /// pass opts its own dispatches in without widening admission for raw
  /// dispatch racing on other threads - a concurrent strict caller can
  /// never have a kUlpBounded kernel baked into its call site by someone
  /// else's fast-math compile (that would silently change its numerics,
  /// which is worse than the mode leak the serialized tuning pass already
  /// documents).
  class ScopedFastMath {
   public:
    explicit ScopedFastMath(bool allow);
    ~ScopedFastMath();
    ScopedFastMath(const ScopedFastMath&) = delete;
    ScopedFastMath& operator=(const ScopedFastMath&) = delete;

   private:
    int saved_;  // previous thread-local override (-1 = none)
  };

  /// RAII mode switch (used by serve compilation's tuning pass).
  class ScopedMode {
   public:
    explicit ScopedMode(Mode mode);
    ~ScopedMode();
    ScopedMode(const ScopedMode&) = delete;
    ScopedMode& operator=(const ScopedMode&) = delete;

   private:
    Mode saved_;
  };

 private:
  Session();

  /// Best-effort load for auto-load paths (env init, set_cache_path):
  /// missing files are silent, unreadable ones warn and leave the cache as
  /// it was.
  void try_load(const std::string& path);

  mutable std::mutex mu_;
  /// Atomic, not mutex-guarded: mode() sits on the serving hot path (every
  /// unbaked dispatch reads it), and a process-wide lock per layer per
  /// request would serialize concurrent batchers.
  std::atomic<Mode> mode_{Mode::kOff};
  /// Atomic for the same hot-path reason as mode_.
  std::atomic<bool> fast_math_{false};
  TunerOptions tuner_opts_;
  std::string cache_path_;
  bool autosave_deferred_ = false;
  int64_t tunes_ = 0;
  TuningCache cache_;
};

}  // namespace dsx::tune
