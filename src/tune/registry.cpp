#include "tune/registry.hpp"

#include <sstream>

#include "core/scc_gemm.hpp"
#include "core/scc_kernels.hpp"
#include "device/parallel_for.hpp"
#include "simd/register.hpp"

namespace dsx::tune {

namespace {

/// Schedule axis: library default, always-parallel, force-serial. With one
/// pool thread every grain degenerates to serial execution, so only the
/// default survives (fewer candidates = cheaper tuning).
std::vector<int64_t> grain_axis(int64_t threads) {
  if (threads <= 1) return {kGrainDefault};
  return {kGrainDefault, 1, device::kSerialGrain};
}

/// Drops kUlpBounded candidates unless fast-math admitted them. The default
/// implementation is always kBitExact, so the front stays the default.
template <typename Candidate>
void filter_fidelity(std::vector<Candidate>& candidates,
                     bool allow_ulp_bounded) {
  if (allow_ulp_bounded) return;
  std::erase_if(candidates, [](const Candidate& c) {
    return c.fidelity != Fidelity::kBitExact;
  });
}

template <typename Candidate>
std::optional<Candidate> find_in(std::vector<Candidate> candidates,
                                 const std::string& variant, int64_t grain) {
  for (Candidate& c : candidates) {
    if (c.variant == variant && c.grain == grain) return std::move(c);
  }
  return std::nullopt;
}

}  // namespace

std::string grain_name(int64_t grain) {
  if (grain == kGrainDefault) return "default";
  if (grain == device::kSerialGrain) return "serial";
  return std::to_string(grain);
}

std::string SCCCandidate::label() const {
  return variant + "@g=" + grain_name(grain);
}

std::string ConvCandidate::label() const {
  return variant + "@g=" + grain_name(grain);
}

std::string DepthwiseCandidate::label() const {
  return variant + "@g=" + grain_name(grain);
}

KernelRegistry& KernelRegistry::global() {
  static KernelRegistry registry;
  return registry;
}

KernelRegistry::KernelRegistry() {
  // ---- built-in SCC forward candidates -------------------------------------
  register_scc_factory([](const ProblemKey& key,
                          std::vector<SCCCandidate>& out) {
    for (const int64_t grain : grain_axis(key.threads)) {
      SCCCandidate fused;
      fused.variant = "fused";
      fused.grain = grain;
      fused.run = [grain](const SCCProblem& p) {
        device::GrainOverride scope(grain);
        scc::scc_forward_into(*p.input, *p.weight, p.bias, *p.map, *p.out);
      };
      out.push_back(std::move(fused));
    }
    SCCCandidate nocc;
    nocc.variant = "fused_nocc";
    nocc.run = [](const SCCProblem& p) {
      scc::scc_forward_no_cycle_table_into(*p.input, *p.weight, p.bias, *p.map,
                                           *p.out);
    };
    out.push_back(std::move(nocc));

    SCCCandidate gemm;
    gemm.variant = "gemm";
    // Gather buffer + output column (mirrors scc_gemm_workspace_floats).
    const int64_t rows = key.n * ((key.h - 1) / key.stride + 1) *
                         ((key.w - 1) / key.stride + 1);
    gemm.scratch_floats = Workspace::aligned_size(rows * key.gw) +
                          Workspace::aligned_size(rows);
    gemm.run = [](const SCCProblem& p) {
      scc::scc_forward_gemm_into(*p.input, *p.weight, p.bias, *p.map, *p.ws,
                                 *p.out);
    };
    out.push_back(std::move(gemm));
  });

  // ---- built-in conv2d forward candidates ----------------------------------
  register_conv_factory([](const ProblemKey& key,
                           std::vector<ConvCandidate>& out) {
    const Shape in_shape = make_nchw(key.n, key.c, key.h, key.w);
    const Shape w_shape{key.cout, key.c / key.groups, key.kernel, key.kernel};
    const Conv2dArgs args{key.stride, key.pad, key.groups};
    const int64_t im2col_scratch =
        conv2d_workspace_floats(in_shape, w_shape, args);
    for (const int64_t grain : grain_axis(key.threads)) {
      ConvCandidate lowered;
      lowered.variant = "im2col";
      lowered.grain = grain;
      lowered.scratch_floats = im2col_scratch;
      lowered.run = [grain](const ConvProblem& p) {
        device::GrainOverride scope(grain);
        conv2d_forward_into(*p.input, *p.weight, p.bias, *p.args, *p.ws,
                            *p.out);
      };
      out.push_back(std::move(lowered));
    }
    for (const int64_t grain : grain_axis(key.threads)) {
      ConvCandidate direct;
      direct.variant = "direct";
      direct.grain = grain;
      direct.run = [grain](const ConvProblem& p) {
        device::GrainOverride scope(grain);
        conv2d_forward_direct_into(*p.input, *p.weight, p.bias, *p.args,
                                   *p.out);
      };
      out.push_back(std::move(direct));
    }
  });

  // ---- built-in depthwise forward candidates -------------------------------
  register_depthwise_factory([](const ProblemKey& key,
                                std::vector<DepthwiseCandidate>& out) {
    for (const int64_t grain : grain_axis(key.threads)) {
      DepthwiseCandidate direct;
      direct.variant = "direct";
      direct.grain = grain;
      direct.run = [grain](const DepthwiseProblem& p) {
        device::GrainOverride scope(grain);
        depthwise_forward_into(*p.input, *p.weight, p.bias, *p.args, *p.out);
      };
      out.push_back(std::move(direct));
    }
  });

  // ---- vectorized CPU backend ----------------------------------------------
  simd::register_simd_kernels(*this);
}

void KernelRegistry::register_scc_factory(SCCFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  scc_factories_.push_back(std::move(factory));
}

void KernelRegistry::register_conv_factory(ConvFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  conv_factories_.push_back(std::move(factory));
}

void KernelRegistry::register_depthwise_factory(DepthwiseFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  depthwise_factories_.push_back(std::move(factory));
}

std::vector<SCCCandidate> KernelRegistry::scc_forward(
    const ProblemKey& key, bool allow_ulp_bounded) const {
  std::vector<SCCFactory> factories;
  {
    std::lock_guard<std::mutex> lock(mu_);
    factories = scc_factories_;
  }
  std::vector<SCCCandidate> out;
  for (const auto& f : factories) f(key, out);
  filter_fidelity(out, allow_ulp_bounded);
  return out;
}

std::vector<ConvCandidate> KernelRegistry::conv2d_forward(
    const ProblemKey& key, bool allow_ulp_bounded) const {
  std::vector<ConvFactory> factories;
  {
    std::lock_guard<std::mutex> lock(mu_);
    factories = conv_factories_;
  }
  std::vector<ConvCandidate> out;
  for (const auto& f : factories) f(key, out);
  filter_fidelity(out, allow_ulp_bounded);
  return out;
}

std::vector<DepthwiseCandidate> KernelRegistry::depthwise_forward(
    const ProblemKey& key, bool allow_ulp_bounded) const {
  std::vector<DepthwiseFactory> factories;
  {
    std::lock_guard<std::mutex> lock(mu_);
    factories = depthwise_factories_;
  }
  std::vector<DepthwiseCandidate> out;
  for (const auto& f : factories) f(key, out);
  filter_fidelity(out, allow_ulp_bounded);
  return out;
}

std::optional<SCCCandidate> KernelRegistry::find_scc(
    const ProblemKey& key, const std::string& variant, int64_t grain,
    bool allow_ulp_bounded) const {
  return find_in(scc_forward(key, allow_ulp_bounded), variant, grain);
}

std::optional<ConvCandidate> KernelRegistry::find_conv(
    const ProblemKey& key, const std::string& variant, int64_t grain,
    bool allow_ulp_bounded) const {
  return find_in(conv2d_forward(key, allow_ulp_bounded), variant, grain);
}

std::optional<DepthwiseCandidate> KernelRegistry::find_depthwise(
    const ProblemKey& key, const std::string& variant, int64_t grain,
    bool allow_ulp_bounded) const {
  return find_in(depthwise_forward(key, allow_ulp_bounded), variant, grain);
}

}  // namespace dsx::tune
