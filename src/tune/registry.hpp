// Interchangeable kernel implementations per op family.
//
// The registry is the autotuner's menu: for a given ProblemKey it enumerates
// every (variant, grain) candidate that computes the same result - the
// contract is BIT-identical outputs (tests/test_tune.cpp enforces it
// property-style), which is what lets a frozen serving plan swap variants
// without re-validating numerics.
//
// Built-in candidates:
//   SCC forward : fused output-centric kernel (default), the cycle-table-off
//                 ablation, and the im2col-style per-filter GEMM route;
//   conv2d      : im2col+GEMM (default) and the direct no-lowering kernel;
//   depthwise   : the direct kernel (default).
// The families carry a small schedule axis: the device::parallel_for grain
// (library default / always-parallel / force-serial), pruned to the default
// alone when the pool has one thread. The dsx::simd backend registers one
// vectorized candidate per ISA level the host offers ("simd_sse2",
// "simd_avx2") into every family through the factory hooks below.
//
// Candidate admission is fidelity-gated (tune::Fidelity): enumeration drops
// kUlpBounded candidates unless the caller opts into fast-math, so with the
// default (off) the historical bit-identity contract is exactly preserved -
// every enumerable candidate is bit-identical to the family default.
//
// A future backend (GPU, quantized) extends the menu by registering another
// factory; nothing else in the tuner changes.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/channel_map.hpp"
#include "ops/conv2d.hpp"
#include "tensor/tensor.hpp"
#include "tensor/workspace.hpp"
#include "tune/problem_key.hpp"

namespace dsx::tune {

/// One SCC forward problem instance; `out` must already have the output
/// shape, scratch is drawn from `ws`.
struct SCCProblem {
  const Tensor* input = nullptr;
  const Tensor* weight = nullptr;
  const Tensor* bias = nullptr;  // may be null
  const scc::ChannelWindowMap* map = nullptr;
  Workspace* ws = nullptr;
  Tensor* out = nullptr;
};

/// One conv2d forward problem instance.
struct ConvProblem {
  const Tensor* input = nullptr;
  const Tensor* weight = nullptr;
  const Tensor* bias = nullptr;  // may be null
  const Conv2dArgs* args = nullptr;
  Workspace* ws = nullptr;
  Tensor* out = nullptr;
};

/// One depthwise forward problem instance.
struct DepthwiseProblem {
  const Tensor* input = nullptr;
  const Tensor* weight = nullptr;
  const Tensor* bias = nullptr;  // may be null
  const DepthwiseArgs* args = nullptr;
  Workspace* ws = nullptr;
  Tensor* out = nullptr;
};

/// Grain axis value meaning "leave device::kDefaultGrain alone".
inline constexpr int64_t kGrainDefault = 0;

struct SCCCandidate {
  std::string variant;  // "fused", "fused_nocc", "gemm", "simd_avx2", ...
  int64_t grain = kGrainDefault;  // device grain override; 0 = default
  int64_t scratch_floats = 0;     // extra arena draw (tie-break axis)
  Fidelity fidelity = Fidelity::kBitExact;
  std::function<void(const SCCProblem&)> run;  // installs the grain itself

  std::string label() const;  // "fused@g=default" / "gemm@g=serial" ...
};

struct ConvCandidate {
  std::string variant;  // "im2col", "direct", "simd_avx2", ...
  int64_t grain = kGrainDefault;
  int64_t scratch_floats = 0;
  Fidelity fidelity = Fidelity::kBitExact;
  std::function<void(const ConvProblem&)> run;

  std::string label() const;
};

struct DepthwiseCandidate {
  std::string variant;  // "direct", "simd_sse2", ...
  int64_t grain = kGrainDefault;
  int64_t scratch_floats = 0;
  Fidelity fidelity = Fidelity::kBitExact;
  std::function<void(const DepthwiseProblem&)> run;

  std::string label() const;
};

/// Human-readable grain axis value ("default", "serial", or the number).
std::string grain_name(int64_t grain);

class KernelRegistry {
 public:
  /// Process-wide registry, built-ins pre-registered.
  static KernelRegistry& global();

  /// All candidates for an SCC forward problem, default implementation
  /// first (selection prefers earlier entries on ties). `allow_ulp_bounded`
  /// admits Fidelity::kUlpBounded candidates (fast-math opt-in); the
  /// default keeps the enumeration bit-exact only.
  std::vector<SCCCandidate> scc_forward(const ProblemKey& key,
                                        bool allow_ulp_bounded = false) const;
  std::vector<ConvCandidate> conv2d_forward(
      const ProblemKey& key, bool allow_ulp_bounded = false) const;
  std::vector<DepthwiseCandidate> depthwise_forward(
      const ProblemKey& key, bool allow_ulp_bounded = false) const;

  /// Candidate with the given variant/grain, or nullopt when the registry
  /// no longer offers it (a cache record from an older build, a simd record
  /// from a wider host, or a kUlpBounded record while fast-math is off -
  /// the caller falls back to the default implementation in every case).
  std::optional<SCCCandidate> find_scc(const ProblemKey& key,
                                       const std::string& variant,
                                       int64_t grain,
                                       bool allow_ulp_bounded = false) const;
  std::optional<ConvCandidate> find_conv(const ProblemKey& key,
                                         const std::string& variant,
                                         int64_t grain,
                                         bool allow_ulp_bounded = false) const;
  std::optional<DepthwiseCandidate> find_depthwise(
      const ProblemKey& key, const std::string& variant, int64_t grain,
      bool allow_ulp_bounded = false) const;

  /// Extension point: a factory appends candidates for keys it understands.
  using SCCFactory =
      std::function<void(const ProblemKey&, std::vector<SCCCandidate>&)>;
  using ConvFactory =
      std::function<void(const ProblemKey&, std::vector<ConvCandidate>&)>;
  using DepthwiseFactory =
      std::function<void(const ProblemKey&, std::vector<DepthwiseCandidate>&)>;
  void register_scc_factory(SCCFactory factory);
  void register_conv_factory(ConvFactory factory);
  void register_depthwise_factory(DepthwiseFactory factory);

 private:
  KernelRegistry();

  mutable std::mutex mu_;
  std::vector<SCCFactory> scc_factories_;
  std::vector<ConvFactory> conv_factories_;
  std::vector<DepthwiseFactory> depthwise_factories_;
};

}  // namespace dsx::tune
