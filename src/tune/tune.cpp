#include "tune/tune.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/check.hpp"

namespace dsx::tune {

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kOff:
      return "off";
    case Mode::kCached:
      return "cached";
    case Mode::kTune:
      return "tune";
  }
  return "unknown";
}

Mode parse_mode(const std::string& name) {
  if (name == "off") return Mode::kOff;
  if (name == "cached") return Mode::kCached;
  if (name == "tune") return Mode::kTune;
  DSX_REQUIRE(false, "tune: unknown mode '" << name
                                            << "' (expected off|cached|tune)");
  return Mode::kOff;  // unreachable
}

Session& Session::global() {
  static Session session;
  return session;
}

Session::Session() {
  if (const char* env = std::getenv("DSX_TUNE")) {
    mode_ = parse_mode(env);
  }
  if (const char* env = std::getenv("DSX_FAST_MATH")) {
    const std::string v(env);
    fast_math_ = v == "1" || v == "on" || v == "true";
  }
  if (const char* env = std::getenv("DSX_TUNE_CACHE")) {
    cache_path_ = env;
    try_load(cache_path_);
  }
}

void Session::try_load(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe.is_open()) return;  // first run - nothing to warm-start from
  try {
    cache_.load(probe);
  } catch (const std::exception& e) {
    // A torn or stale-version cache must degrade to a cold start, never
    // brick startup (std::exception, not just dsx::Error: corrupt counts
    // could also surface as allocation failures); the next save overwrites
    // the file atomically.
    std::fprintf(stderr, "dsx::tune: ignoring cache %s (%s)\n", path.c_str(),
                 e.what());
  }
}

Mode Session::mode() const { return mode_.load(std::memory_order_relaxed); }

void Session::set_mode(Mode mode) {
  mode_.store(mode, std::memory_order_relaxed);
}

namespace {
/// Per-thread ScopedFastMath override: -1 none, else 0/1.
thread_local int tl_fast_math = -1;
}  // namespace

bool Session::allow_fast_math() const {
  if (tl_fast_math >= 0) return tl_fast_math == 1;
  return fast_math_.load(std::memory_order_relaxed);
}

void Session::set_allow_fast_math(bool allow) {
  fast_math_.store(allow, std::memory_order_relaxed);
}

TunerOptions Session::tuner_options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tuner_opts_;
}

void Session::set_tuner_options(const TunerOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  tuner_opts_ = opts;
}

std::string Session::cache_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_path_;
}

void Session::set_cache_path(const std::string& path, bool load_existing) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_path_ = path;
  }
  if (path.empty() || !load_existing) return;
  try_load(path);
}

void Session::save_cache() const {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (autosave_deferred_) return;
    path = cache_path_;
  }
  if (path.empty()) return;
  cache_.save_file(path);
}

bool Session::autosave_deferred() const {
  std::lock_guard<std::mutex> lock(mu_);
  return autosave_deferred_;
}

void Session::set_autosave_deferred(bool deferred) {
  std::lock_guard<std::mutex> lock(mu_);
  autosave_deferred_ = deferred;
}

int64_t Session::tunes_performed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tunes_;
}

void Session::note_tune() {
  std::lock_guard<std::mutex> lock(mu_);
  ++tunes_;
}

Session::ScopedMode::ScopedMode(Mode mode) : saved_(Session::global().mode()) {
  Session::global().set_mode(mode);
}

Session::ScopedMode::~ScopedMode() { Session::global().set_mode(saved_); }

Session::ScopedFastMath::ScopedFastMath(bool allow) : saved_(tl_fast_math) {
  tl_fast_math = allow ? 1 : 0;
}

Session::ScopedFastMath::~ScopedFastMath() { tl_fast_math = saved_; }

}  // namespace dsx::tune
