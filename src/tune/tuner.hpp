// Empirical measurement of registry candidates.
//
// The Tuner runs every candidate the KernelRegistry offers for a problem on
// the REAL tensors (the paper's design-exploration ethos applied to the
// implementation axis): warmup runs first, then median-of-k wall-clock
// timing, which is robust to the scheduler noise a 1-2 core substrate
// produces. Selection reuses dsx::explore's Pareto machinery for
// tie-breaking: candidates within a small time epsilon of the fastest are
// reduced to the (time, scratch-memory) Pareto front and the front's
// cheapest-memory point wins, with the registry's default-first ordering
// breaking exact ties - so the default implementation is never abandoned
// for noise.
//
// Measurement uses a private Workspace and a private output tensor; the
// caller's arena only ever sees the winner's allocation pattern (important:
// serve::CompiledModel sizes its arena from the dry run that tunes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tune/cache.hpp"
#include "tune/registry.hpp"

namespace dsx::tune {

struct TunerOptions {
  int warmup = 1;  // untimed runs of every candidate before measuring
  int iters = 5;   // timed rounds; the per-candidate median is kept
  /// Candidates within this fraction of the best median count as ties and
  /// go to the Pareto tie-break instead of winning on noise. The default is
  /// deliberately generous: a shared-CPU substrate jitters by a few percent
  /// even with interleaved rounds, and the wins worth baking in are larger.
  double time_epsilon = 0.05;
  /// Admit Fidelity::kUlpBounded candidates (the simd FMA kernels) into the
  /// measured menu. Default off: the tuner then only ever selects from
  /// bit-exact candidates, preserving every bit-identity invariant.
  /// Dispatch overrides this from Session::allow_fast_math().
  bool allow_fast_math = false;
};

/// One candidate's measurement (kept for reports and bench JSON).
struct CandidateTiming {
  std::string variant;
  int64_t grain = 0;
  int64_t scratch_floats = 0;
  Fidelity fidelity = Fidelity::kBitExact;
  double median_ns = 0.0;
};

struct TuneResult {
  TuningRecord record;                  // the winner
  std::vector<CandidateTiming> timings; // every candidate, registry order
};

class Tuner {
 public:
  explicit Tuner(TunerOptions opts = {});

  /// Measures every registered SCC forward candidate for `key` on the given
  /// tensors and returns the winner. Does not touch the cache.
  TuneResult tune_scc(const ProblemKey& key, const Tensor& input,
                      const Tensor& weight, const Tensor* bias,
                      const scc::ChannelWindowMap& map) const;

  TuneResult tune_conv2d(const ProblemKey& key, const Tensor& input,
                         const Tensor& weight, const Tensor* bias,
                         const Conv2dArgs& args) const;

  TuneResult tune_depthwise(const ProblemKey& key, const Tensor& input,
                            const Tensor& weight, const Tensor* bias,
                            const DepthwiseArgs& args) const;

 private:
  TunerOptions opts_;
};

}  // namespace dsx::tune
