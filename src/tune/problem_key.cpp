#include "tune/problem_key.hpp"

#include <sstream>

#include "common/check.hpp"
#include "device/thread_pool.hpp"

namespace dsx::tune {

const char* op_family_name(OpFamily op) {
  switch (op) {
    case OpFamily::kSCCForward:
      return "scc_forward";
    case OpFamily::kConv2dForward:
      return "conv2d_forward";
    case OpFamily::kDepthwiseForward:
      return "depthwise_forward";
  }
  return "unknown";
}

const char* fidelity_name(Fidelity fidelity) {
  switch (fidelity) {
    case Fidelity::kBitExact:
      return "bit_exact";
    case Fidelity::kUlpBounded:
      return "ulp_bounded";
  }
  return "unknown";
}

std::string ProblemKey::to_string() const {
  std::ostringstream os;
  os << op_family_name(op) << "[" << n << "x" << c << "x" << h << "x" << w
     << " -> " << cout;
  if (op == OpFamily::kConv2dForward || op == OpFamily::kDepthwiseForward) {
    os << ", k" << kernel << " s" << stride << " p" << pad << " g" << groups;
  } else {
    os << ", gw" << gw << " step" << step << " s" << stride;
  }
  os << ", t" << threads << (fast_math ? ", fm" : "") << "]";
  return os.str();
}

ProblemKey make_scc_forward_key(const Shape& input,
                                const scc::ChannelWindowMap& map) {
  DSX_REQUIRE(input.rank() == 4,
              "tune: SCC input must be NCHW, got " << input.to_string());
  ProblemKey key;
  key.op = OpFamily::kSCCForward;
  key.n = input.n();
  key.c = input.c();
  key.h = input.h();
  key.w = input.w();
  key.cout = map.config().out_channels;
  key.stride = map.config().stride;
  key.gw = map.group_width();
  key.step = map.step();
  key.threads = static_cast<int64_t>(device::ThreadPool::current().size());
  return key;
}

ProblemKey make_conv2d_forward_key(const Shape& input, const Shape& weight,
                                   const Conv2dArgs& args) {
  DSX_REQUIRE(input.rank() == 4 && weight.rank() == 4,
              "tune: conv2d key needs NCHW input and [Cout,Cin/g,K,K] weight");
  ProblemKey key;
  key.op = OpFamily::kConv2dForward;
  key.n = input.n();
  key.c = input.c();
  key.h = input.h();
  key.w = input.w();
  key.cout = weight.dim(0);
  key.kernel = weight.dim(2);
  key.stride = args.stride;
  key.pad = args.pad;
  key.groups = args.groups;
  key.threads = static_cast<int64_t>(device::ThreadPool::current().size());
  return key;
}

ProblemKey make_depthwise_forward_key(const Shape& input, const Shape& weight,
                                      const DepthwiseArgs& args) {
  DSX_REQUIRE(input.rank() == 4 && weight.rank() == 4,
              "tune: depthwise key needs NCHW input and [C,1,K,K] weight");
  ProblemKey key;
  key.op = OpFamily::kDepthwiseForward;
  key.n = input.n();
  key.c = input.c();
  key.h = input.h();
  key.w = input.w();
  key.cout = input.c();
  key.kernel = weight.dim(2);
  key.stride = args.stride;
  key.pad = args.pad;
  key.groups = input.c();
  key.threads = static_cast<int64_t>(device::ThreadPool::current().size());
  return key;
}

}  // namespace dsx::tune
