// Persistent store of tuning decisions.
//
// A TuningRecord pins the winning (variant, grain) for one ProblemKey plus
// the measured medians that justified it. The cache is an in-memory map with
// versioned on-disk persistence (binary, little-endian, magic "DSXU" - the
// same conventions as tensor/serialize), so a process warm-starts from a
// prior run's measurements instead of re-benchmarking every layer.
// Loading a file whose version does not match kVersion throws: a stale
// format must never silently decide kernels.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "tune/problem_key.hpp"

namespace dsx::tune {

struct TuningRecord {
  ProblemKey key;
  std::string variant;  // winning registry variant
  int64_t grain = 0;    // winning grain axis value (0 = library default)
  /// Numerical contract of the winner relative to the family default. A
  /// kUlpBounded record is only applied while fast-math is opted in;
  /// otherwise dispatch falls back to the default kernel (never a silent
  /// numerics change).
  Fidelity fidelity = Fidelity::kBitExact;
  double median_ns = 0.0;   // winner's median wall time
  double default_ns = 0.0;  // default candidate's median (speedup reporting)
  int64_t iters = 0;        // timing iterations behind the medians
};

/// Thread-safe record store. find() returns a copy so callers never hold
/// pointers across concurrent put()/clear().
class TuningCache {
 public:
  /// On-disk format version; bumped whenever the record layout changes.
  /// v2 added TuningRecord::fidelity - a v1 file has no way to say whether
  /// its winner was bit-exact, so loading one throws instead of guessing.
  static constexpr int64_t kVersion = 2;

  std::optional<TuningRecord> find(const ProblemKey& key) const;
  void put(const TuningRecord& record);  // last writer wins
  int64_t size() const;
  void clear();

  /// Serializes every record; throws dsx::Error on stream failure.
  void save(std::ostream& os) const;
  /// Merges records from the stream into this cache (loaded records
  /// overwrite same-key entries); throws dsx::Error on bad magic, version
  /// mismatch, or truncation.
  void load(std::istream& is);

  void save_file(const std::string& path) const;
  void load_file(const std::string& path);

 private:
  mutable std::mutex mu_;
  std::map<ProblemKey, TuningRecord> records_;
};

}  // namespace dsx::tune
