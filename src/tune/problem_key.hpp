// Canonical problem identity for the empirical autotuner (dsx::tune).
//
// A ProblemKey names everything that can change which kernel implementation
// wins: the op family, the input geometry, the op's own parameters (conv
// kernel/stride/pad/groups, SCC window width and step), the dtype, and the
// executing thread count (a schedule that wins on an oversubscribed pool
// loses on a wide one, so records must not migrate across pool sizes).
// Records keyed by ProblemKey are what the TuningCache persists and what
// frozen serving plans bake in.
#pragma once

#include <cstdint>
#include <string>
#include <tuple>

#include "core/channel_map.hpp"
#include "ops/conv2d.hpp"
#include "ops/depthwise.hpp"
#include "tensor/shape.hpp"

namespace dsx::tune {

enum class OpFamily : int64_t {
  kSCCForward = 0,
  kConv2dForward = 1,
  kDepthwiseForward = 2,
};

const char* op_family_name(OpFamily op);

/// Numerical contract of a registry candidate relative to its family's
/// default implementation:
///   kBitExact   - bit-identical outputs (the historical contract; what
///                 lets frozen plans swap variants without re-validating
///                 numerics);
///   kUlpBounded - within simd::kMaxUlp ULP of the default (FMA/reordered
///                 accumulation cannot be bit-identical). Only admitted
///                 when fast-math is opted in (CompileOptions.allow_fast_math
///                 / Session fast-math / DSX_FAST_MATH); with the default
///                 (off), every pre-existing bit-identity invariant holds.
enum class Fidelity : int64_t {
  kBitExact = 0,
  kUlpBounded = 1,
};

const char* fidelity_name(Fidelity fidelity);

/// Only f32 exists today; the field keeps cache records honest when a
/// quantized or half-precision backend registers candidates later.
enum class DType : int64_t { kF32 = 0 };

struct ProblemKey {
  OpFamily op = OpFamily::kSCCForward;
  int64_t n = 0, c = 0, h = 0, w = 0;  // input NCHW
  int64_t cout = 0;
  int64_t kernel = 0, stride = 1, pad = 0, groups = 1;  // conv parameters
  int64_t gw = 0, step = 0;  // SCC window geometry (zero for conv)
  int64_t threads = 1;       // device::ThreadPool size the record was made on
  DType dtype = DType::kF32;
  /// Fidelity-admission domain the record was tuned under (dispatch stamps
  /// it from the session's fast-math flag). Part of the identity: the
  /// fast-math menu is a superset of the strict one, so a winner measured
  /// in one domain says nothing about the other - without this, a strict
  /// record would permanently suppress fast-math tuning of the same shape
  /// (and vice versa). Strict and fast-math records coexist in one cache.
  bool fast_math = false;

  auto tie() const {
    return std::tie(op, n, c, h, w, cout, kernel, stride, pad, groups, gw,
                    step, threads, dtype, fast_math);
  }
  bool operator==(const ProblemKey& o) const { return tie() == o.tie(); }
  bool operator<(const ProblemKey& o) const { return tie() < o.tie(); }

  std::string to_string() const;
};

/// Key for an SCC forward problem. `threads` comes from
/// ThreadPool::current() - the EXECUTING pool, which is the lane pool when
/// a device::PoolScope is bound. Load-bearing for dsx::shard: replica
/// clones compile under their lane's scope, so tuning records are keyed
/// (and shared) per lane width, not per global-pool width.
ProblemKey make_scc_forward_key(const Shape& input,
                                const scc::ChannelWindowMap& map);

/// Key for a conv2d forward problem; same ThreadPool::current() threads
/// semantics as make_scc_forward_key.
ProblemKey make_conv2d_forward_key(const Shape& input, const Shape& weight,
                                   const Conv2dArgs& args);

/// Key for a depthwise forward problem (groups = c = cout by construction);
/// same ThreadPool::current() threads semantics.
ProblemKey make_depthwise_forward_key(const Shape& input, const Shape& weight,
                                      const DepthwiseArgs& args);

}  // namespace dsx::tune
