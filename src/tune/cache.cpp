#include "tune/cache.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "common/binary_io.hpp"
#include "common/check.hpp"

namespace dsx::tune {

namespace {

constexpr char kMagic[4] = {'D', 'S', 'X', 'U'};

// Checked little-endian stream primitives shared with the deploy formats
// (a torn/truncated read throws dsx::Error from the helper itself).
using io::read_f64;
using io::read_i64;
using io::read_str;
using io::write_f64;
using io::write_i64;
using io::write_str;

void write_key(std::ostream& os, const ProblemKey& k) {
  write_i64(os, static_cast<int64_t>(k.op));
  write_i64(os, k.n);
  write_i64(os, k.c);
  write_i64(os, k.h);
  write_i64(os, k.w);
  write_i64(os, k.cout);
  write_i64(os, k.kernel);
  write_i64(os, k.stride);
  write_i64(os, k.pad);
  write_i64(os, k.groups);
  write_i64(os, k.gw);
  write_i64(os, k.step);
  write_i64(os, k.threads);
  write_i64(os, static_cast<int64_t>(k.dtype));
  write_i64(os, k.fast_math ? 1 : 0);
}

ProblemKey read_key(std::istream& is) {
  ProblemKey k;
  k.op = static_cast<OpFamily>(read_i64(is));
  k.n = read_i64(is);
  k.c = read_i64(is);
  k.h = read_i64(is);
  k.w = read_i64(is);
  k.cout = read_i64(is);
  k.kernel = read_i64(is);
  k.stride = read_i64(is);
  k.pad = read_i64(is);
  k.groups = read_i64(is);
  k.gw = read_i64(is);
  k.step = read_i64(is);
  k.threads = read_i64(is);
  k.dtype = static_cast<DType>(read_i64(is));
  const int64_t fast_math = read_i64(is);
  DSX_REQUIRE(fast_math == 0 || fast_math == 1,
              "TuningCache: invalid fast_math flag " << fast_math);
  k.fast_math = fast_math == 1;
  return k;
}

}  // namespace

std::optional<TuningRecord> TuningCache::find(const ProblemKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

void TuningCache::put(const TuningRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_[record.key] = record;
}

int64_t TuningCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(records_.size());
}

void TuningCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

void TuningCache::save(std::ostream& os) const {
  std::vector<TuningRecord> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(records_.size());
    for (const auto& [key, rec] : records_) snapshot.push_back(rec);
  }
  os.write(kMagic, sizeof(kMagic));
  write_i64(os, kVersion);
  write_i64(os, static_cast<int64_t>(snapshot.size()));
  for (const TuningRecord& rec : snapshot) {
    write_key(os, rec.key);
    write_str(os, rec.variant);
    write_i64(os, rec.grain);
    write_i64(os, static_cast<int64_t>(rec.fidelity));
    write_f64(os, rec.median_ns);
    write_f64(os, rec.default_ns);
    write_i64(os, rec.iters);
  }
  DSX_CHECK(os.good(), "TuningCache: stream write failed");
}

void TuningCache::load(std::istream& is) {
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  DSX_REQUIRE(is.good() && std::memcmp(magic, kMagic, 4) == 0,
              "TuningCache: bad magic");
  const int64_t version = read_i64(is);
  DSX_REQUIRE(version == kVersion,
              "TuningCache: file version " << version << ", this build reads "
                                           << kVersion
                                           << " - delete the cache and retune");
  const int64_t count = read_i64(is);
  // A record is ~140 bytes on disk; a million of them is already far past
  // any real kernel menu, so anything larger is corruption, and bounding
  // here keeps the reserve() below from attempting a giant allocation.
  DSX_REQUIRE(count >= 0 && count <= (int64_t{1} << 20),
              "TuningCache: implausible record count " << count);
  std::vector<TuningRecord> loaded;
  loaded.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    TuningRecord rec;
    rec.key = read_key(is);
    rec.variant = read_str(is);
    rec.grain = read_i64(is);
    const int64_t fidelity = read_i64(is);
    DSX_REQUIRE(fidelity == static_cast<int64_t>(Fidelity::kBitExact) ||
                    fidelity == static_cast<int64_t>(Fidelity::kUlpBounded),
                "TuningCache: invalid fidelity " << fidelity);
    rec.fidelity = static_cast<Fidelity>(fidelity);
    rec.median_ns = read_f64(is);
    rec.default_ns = read_f64(is);
    rec.iters = read_i64(is);
    loaded.push_back(std::move(rec));
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (TuningRecord& rec : loaded) records_[rec.key] = std::move(rec);
}

void TuningCache::save_file(const std::string& path) const {
  // Write-temp-then-rename so a crash mid-save can never leave a torn file
  // for the next process's warm-start load to choke on.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary);
    DSX_REQUIRE(os.is_open(), "TuningCache: cannot open " << tmp);
    save(os);
  }
  DSX_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
              "TuningCache: cannot rename " << tmp << " to " << path);
}

void TuningCache::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DSX_REQUIRE(is.is_open(), "TuningCache: cannot open " << path);
  load(is);
}

}  // namespace dsx::tune
