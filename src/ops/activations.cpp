#include "ops/activations.hpp"

#include "common/check.hpp"
#include "device/launch.hpp"

namespace dsx {

Tensor relu_forward(const Tensor& input) {
  Tensor out(input.shape());
  const float* in = input.data();
  float* o = out.data();
  device::launch_kernel_chunks(
      "relu_fwd", input.numel(), {1.0, 8.0}, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) o[i] = in[i] > 0.0f ? in[i] : 0.0f;
      });
  return out;
}

Tensor relu_backward(const Tensor& doutput, const Tensor& input) {
  DSX_REQUIRE(doutput.shape() == input.shape(),
              "relu_backward: shape mismatch");
  Tensor din(input.shape());
  const float* dy = doutput.data();
  const float* in = input.data();
  float* dx = din.data();
  device::launch_kernel_chunks(
      "relu_bwd", input.numel(), {1.0, 12.0}, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) dx[i] = in[i] > 0.0f ? dy[i] : 0.0f;
      });
  return din;
}

}  // namespace dsx
