// General matrix multiply (single precision, row-major).
//
// The paper discusses why SCC cannot ride on cuBLAS GEMM (skewed, tiny
// per-filter matrices) while standard/group/pointwise convolutions can. This
// GEMM is the substrate those baselines ride on here: a straightforward
// blocked row-major kernel parallelised over output rows.
//
// This is the library's BIT-EXACT reference GEMM and deliberately stays
// scalar: serving bit-identity invariants (tune kOff, replica cloning,
// deploy shadow compare) pin its float-op order. The fast path is
// simd::gemm (simd/gemm.hpp) - same signature, packed panels, runtime
// AVX2/SSE2 dispatch, ULP-bounded - which reaches production plans through
// the tune::KernelRegistry candidates under CompileOptions.allow_fast_math.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace dsx {

/// C = alpha * op(A) * op(B) + beta * C.
/// A is stored [M,K] (or [K,M] when trans_a), B is stored [K,N] (or [N,K]
/// when trans_b), C is [M,N]; ld* are row strides of the stored matrices.
void gemm(bool trans_a, bool trans_b, int64_t M, int64_t N, int64_t K,
          float alpha, const float* A, int64_t lda, const float* B,
          int64_t ldb, float beta, float* C, int64_t ldc);

/// out = op(a) * op(b) for rank-2 tensors.
Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

}  // namespace dsx
