// Softmax + cross-entropy loss (fused, numerically stable).
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace dsx {

/// Row-wise softmax of logits [N, K].
Tensor softmax(const Tensor& logits);

struct XentResult {
  double loss = 0.0;   // mean over the batch
  Tensor dlogits;      // gradient wrt logits (already divided by N)
};

/// Mean cross-entropy of logits [N, K] against integer labels (size N).
XentResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int32_t> labels);

}  // namespace dsx
