// Shift convolution (Wu et al., "Shift: A Zero FLOP, Zero Parameter
// Alternative to Spatial Convolutions", CVPR'18 - the paper's reference [10]).
//
// Shift replaces the depthwise spatial stage of a separable block: every
// channel is displaced by one fixed integer offset drawn from the KxK
// neighbourhood, so the spatial stage costs zero multiplies and zero
// parameters. DSXplore's §II names it as the specialised spatial-fusion
// sibling of its own channel-fusion contribution; we implement it so
// Shift+SCC blocks can be composed and ablated against DW+SCC.
//
// Semantics: shift is exactly depthwise convolution with a one-hot KxK
// kernel and 'same' (K/2) zero padding - out-of-range reads are zero. That
// equivalence is property-tested against ops/depthwise.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace dsx {

/// Per-channel spatial displacement: output (y, x) reads input
/// (y*stride + dy, x*stride + dx); out-of-range reads produce zero.
struct ShiftOffset {
  int64_t dy = 0;
  int64_t dx = 0;
};

/// The canonical offset assignment: the K*K displacements of an odd KxK
/// neighbourhood (dy, dx in [-K/2, K/2], row-major), dealt round-robin
/// across channels so every displacement is used floor/ceil(C/K^2) times.
std::vector<ShiftOffset> make_uniform_shifts(int64_t channels, int64_t kernel);

/// Output shape of a shift with the given stride ('same' spatial semantics:
/// Ho = (H-1)/stride + 1, like a strided 1x1 convolution).
Shape shift_output_shape(const Shape& input, int64_t stride);

/// Forward pass: one displacement per channel, `shifts.size() == C`.
Tensor shift_forward(const Tensor& input, const std::vector<ShiftOffset>& shifts,
                     int64_t stride);

/// Backward pass (input gradient only - shift has no parameters). Gather
/// formulation: each input pixel pulls from the unique output pixel that
/// read it, so the kernel is race-free with zero atomics.
Tensor shift_backward(const Shape& input_shape,
                      const std::vector<ShiftOffset>& shifts,
                      const Tensor& doutput, int64_t stride);

}  // namespace dsx
