// Fully-connected layer primitives (classifier heads of the CNNs).
//
// input: [N, in_features]; weight: [out_features, in_features];
// bias: [out_features] (optional).
#pragma once

#include "tensor/tensor.hpp"

namespace dsx {

Tensor linear_forward(const Tensor& input, const Tensor& weight,
                      const Tensor* bias);

struct LinearGrads {
  Tensor dinput;
  Tensor dweight;
  Tensor dbias;
};

LinearGrads linear_backward(const Tensor& input, const Tensor& weight,
                            const Tensor& doutput, bool need_dinput,
                            bool has_bias);

}  // namespace dsx
