#include "ops/im2col.hpp"

#include "common/check.hpp"
#include "tensor/shape.hpp"

namespace dsx {

void im2col(const float* in, int64_t C, int64_t H, int64_t W, int64_t K,
            int64_t stride, int64_t pad, float* col) {
  const int64_t Ho = conv_out_size(H, K, stride, pad);
  const int64_t Wo = conv_out_size(W, K, stride, pad);
  const int64_t planeo = Ho * Wo;
  for (int64_t c = 0; c < C; ++c) {
    const float* plane = in + c * H * W;
    for (int64_t ky = 0; ky < K; ++ky) {
      for (int64_t kx = 0; kx < K; ++kx) {
        float* row = col + ((c * K + ky) * K + kx) * planeo;
        for (int64_t y = 0; y < Ho; ++y) {
          const int64_t iy = y * stride + ky - pad;
          if (iy < 0 || iy >= H) {
            for (int64_t x = 0; x < Wo; ++x) row[y * Wo + x] = 0.0f;
            continue;
          }
          for (int64_t x = 0; x < Wo; ++x) {
            const int64_t ix = x * stride + kx - pad;
            row[y * Wo + x] =
                (ix >= 0 && ix < W) ? plane[iy * W + ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im_add(const float* col, int64_t C, int64_t H, int64_t W, int64_t K,
                int64_t stride, int64_t pad, float* in) {
  const int64_t Ho = conv_out_size(H, K, stride, pad);
  const int64_t Wo = conv_out_size(W, K, stride, pad);
  const int64_t planeo = Ho * Wo;
  for (int64_t c = 0; c < C; ++c) {
    float* plane = in + c * H * W;
    for (int64_t ky = 0; ky < K; ++ky) {
      for (int64_t kx = 0; kx < K; ++kx) {
        const float* row = col + ((c * K + ky) * K + kx) * planeo;
        for (int64_t y = 0; y < Ho; ++y) {
          const int64_t iy = y * stride + ky - pad;
          if (iy < 0 || iy >= H) continue;
          for (int64_t x = 0; x < Wo; ++x) {
            const int64_t ix = x * stride + kx - pad;
            if (ix >= 0 && ix < W) plane[iy * W + ix] += row[y * Wo + x];
          }
        }
      }
    }
  }
}

}  // namespace dsx
