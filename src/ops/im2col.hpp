// im2col / col2im lowering for convolution-as-GEMM.
//
// Column layout: col[(c*K + ky)*K + kx][y*Wo + x] — channels vary slowest, so
// a grouped convolution's group g owns the contiguous row block
// [g*Cg*K*K, (g+1)*Cg*K*K), which is what ops/conv2d.cpp slices.
#pragma once

#include <cstdint>

namespace dsx {

/// Lowers one image `in` [C,H,W] into `col` [C*K*K, Ho*Wo].
void im2col(const float* in, int64_t C, int64_t H, int64_t W, int64_t K,
            int64_t stride, int64_t pad, float* col);

/// Accumulates a column matrix back into one image: in += lift(col).
void col2im_add(const float* col, int64_t C, int64_t H, int64_t W, int64_t K,
                int64_t stride, int64_t pad, float* in);

}  // namespace dsx
