#include "ops/softmax_xent.hpp"

#include <cmath>
#include <mutex>

#include "common/check.hpp"
#include "device/launch.hpp"

namespace dsx {

Tensor softmax(const Tensor& logits) {
  DSX_REQUIRE(logits.shape().rank() == 2, "softmax: logits must be [N, K]");
  const int64_t N = logits.shape().dim(0), K = logits.shape().dim(1);
  Tensor out(logits.shape());
  device::launch_kernel_chunks(
      "softmax", N, {4.0 * static_cast<double>(K), 8.0 * K},
      [&](int64_t b, int64_t e) {
        for (int64_t n = b; n < e; ++n) {
          const float* row = logits.data() + n * K;
          float* o = out.data() + n * K;
          float m = row[0];
          for (int64_t k = 1; k < K; ++k) m = std::max(m, row[k]);
          double z = 0.0;
          for (int64_t k = 0; k < K; ++k) {
            o[k] = std::exp(row[k] - m);
            z += o[k];
          }
          const float inv = static_cast<float>(1.0 / z);
          for (int64_t k = 0; k < K; ++k) o[k] *= inv;
        }
      });
  return out;
}

XentResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int32_t> labels) {
  DSX_REQUIRE(logits.shape().rank() == 2, "xent: logits must be [N, K]");
  const int64_t N = logits.shape().dim(0), K = logits.shape().dim(1);
  DSX_REQUIRE(static_cast<int64_t>(labels.size()) == N,
              "xent: " << labels.size() << " labels for batch " << N);
  for (int32_t y : labels) {
    DSX_REQUIRE(y >= 0 && y < K, "xent: label " << y << " out of [0," << K
                                                << ")");
  }

  XentResult res;
  res.dlogits = softmax(logits);
  const float invN = 1.0f / static_cast<float>(N);
  double loss = 0.0;
  std::mutex loss_mu;
  device::launch_kernel_chunks(
      "xent", N, {4.0, 8.0}, [&](int64_t b, int64_t e) {
        double local = 0.0;
        for (int64_t n = b; n < e; ++n) {
          float* row = res.dlogits.data() + n * K;
          const int32_t y = labels[static_cast<size_t>(n)];
          // -log p_y, clamped away from log(0).
          local -= std::log(std::max(row[y], 1e-12f));
          row[y] -= 1.0f;
          for (int64_t k = 0; k < K; ++k) row[k] *= invN;
        }
        std::lock_guard<std::mutex> lock(loss_mu);
        loss += local;
      });
  res.loss = loss / static_cast<double>(N);
  return res;
}

}  // namespace dsx
