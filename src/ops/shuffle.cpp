#include "ops/shuffle.hpp"

#include <cstring>

#include "common/check.hpp"
#include "device/launch.hpp"

namespace dsx {

namespace {

void validate(const Shape& input, int64_t groups) {
  DSX_REQUIRE(input.rank() == 4,
              "channel_shuffle: input must be NCHW, got " << input.to_string());
  DSX_REQUIRE(groups >= 1, "channel_shuffle: groups must be >= 1");
  DSX_REQUIRE(input.c() % groups == 0, "channel_shuffle: groups "
                                           << groups << " must divide C = "
                                           << input.c());
}

Tensor permute_planes(const Tensor& input, int64_t groups) {
  const int64_t N = input.shape().n(), C = input.shape().c();
  const int64_t plane = input.shape().h() * input.shape().w();
  Tensor out(input.shape());
  device::launch_kernel_chunks_modeled(
      "channel_shuffle", N * C, N * C * plane, {0.0, 8.0},
      [&](int64_t b, int64_t e) {
        for (int64_t nc = b; nc < e; ++nc) {
          const int64_t n = nc / C, c = nc % C;
          const int64_t dst = shuffle_destination(c, C, groups);
          std::memcpy(out.data() + (n * C + dst) * plane,
                      input.data() + nc * plane,
                      static_cast<size_t>(plane) * sizeof(float));
        }
      });
  return out;
}

}  // namespace

int64_t shuffle_destination(int64_t c, int64_t channels, int64_t groups) {
  DSX_REQUIRE(groups >= 1 && channels % groups == 0,
              "shuffle_destination: groups " << groups << " must divide C = "
                                             << channels);
  DSX_REQUIRE(c >= 0 && c < channels,
              "shuffle_destination: channel " << c << " out of range");
  const int64_t per_group = channels / groups;
  const int64_t g = c / per_group, j = c % per_group;
  return j * groups + g;
}

Tensor channel_shuffle_forward(const Tensor& input, int64_t groups) {
  validate(input.shape(), groups);
  return permute_planes(input, groups);
}

Tensor channel_shuffle_backward(const Tensor& doutput, int64_t groups) {
  validate(doutput.shape(), groups);
  // Transposing a [g, C/g] view is undone by transposing the [C/g, g] view.
  return permute_planes(doutput, doutput.shape().c() / groups);
}

}  // namespace dsx
