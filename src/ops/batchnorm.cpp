#include "ops/batchnorm.hpp"

#include <cmath>

#include "common/check.hpp"
#include "device/launch.hpp"

namespace dsx {

BatchNormState BatchNormState::create(int64_t channels) {
  DSX_REQUIRE(channels > 0, "BatchNormState: channels must be positive");
  BatchNormState s;
  s.gamma = Tensor(Shape{channels}, 1.0f);
  s.beta = Tensor(Shape{channels}, 0.0f);
  s.running_mean = Tensor(Shape{channels}, 0.0f);
  s.running_var = Tensor(Shape{channels}, 1.0f);
  return s;
}

Tensor batchnorm_forward(const Tensor& input, BatchNormState& state,
                         BatchNormCache* cache, bool training, float momentum,
                         float eps) {
  DSX_REQUIRE(input.shape().rank() == 4, "batchnorm: input must be NCHW");
  const int64_t N = input.shape().n(), C = input.shape().c();
  const int64_t plane = input.shape().h() * input.shape().w();
  DSX_REQUIRE(state.gamma.shape() == Shape{C},
              "batchnorm: state for " << state.gamma.numel()
                                      << " channels, input has " << C);
  DSX_REQUIRE(!training || cache != nullptr,
              "batchnorm: training mode needs a cache");

  Tensor out(input.shape());
  if (training) {
    cache->xhat = Tensor(input.shape());
    cache->inv_std.assign(static_cast<size_t>(C), 0.0f);
  }
  const int64_t count = N * plane;

  device::launch_kernel_chunks_modeled(
      "batchnorm_fwd", C, input.numel(), {8.0, 16.0},
      [&](int64_t b, int64_t e) {
        for (int64_t c = b; c < e; ++c) {
          float mean_c, var_c;
          if (training) {
            double sum = 0.0, sq = 0.0;
            for (int64_t n = 0; n < N; ++n) {
              const float* p = input.data() + (n * C + c) * plane;
              for (int64_t j = 0; j < plane; ++j) {
                sum += p[j];
                sq += static_cast<double>(p[j]) * p[j];
              }
            }
            mean_c = static_cast<float>(sum / count);
            var_c = static_cast<float>(sq / count) - mean_c * mean_c;
            if (var_c < 0.0f) var_c = 0.0f;  // numerical floor
            state.running_mean.data()[c] =
                (1.0f - momentum) * state.running_mean.data()[c] +
                momentum * mean_c;
            state.running_var.data()[c] =
                (1.0f - momentum) * state.running_var.data()[c] +
                momentum * var_c;
          } else {
            mean_c = state.running_mean.data()[c];
            var_c = state.running_var.data()[c];
          }
          const float inv_std = 1.0f / std::sqrt(var_c + eps);
          const float g = state.gamma.data()[c];
          const float bta = state.beta.data()[c];
          if (training) cache->inv_std[static_cast<size_t>(c)] = inv_std;
          for (int64_t n = 0; n < N; ++n) {
            const float* p = input.data() + (n * C + c) * plane;
            float* o = out.data() + (n * C + c) * plane;
            float* xh = training
                            ? cache->xhat.data() + (n * C + c) * plane
                            : nullptr;
            for (int64_t j = 0; j < plane; ++j) {
              const float xhat = (p[j] - mean_c) * inv_std;
              if (xh != nullptr) xh[j] = xhat;
              o[j] = g * xhat + bta;
            }
          }
        }
      });
  return out;
}

BatchNormGrads batchnorm_backward(const Tensor& doutput,
                                  const BatchNormState& state,
                                  const BatchNormCache& cache) {
  DSX_REQUIRE(doutput.shape() == cache.xhat.shape(),
              "batchnorm_backward: doutput vs cache shape mismatch");
  const int64_t N = doutput.shape().n(), C = doutput.shape().c();
  const int64_t plane = doutput.shape().h() * doutput.shape().w();
  DSX_REQUIRE(static_cast<int64_t>(cache.inv_std.size()) == C,
              "batchnorm_backward: stale cache");

  BatchNormGrads grads;
  grads.dinput = Tensor(doutput.shape());
  grads.dgamma = Tensor(Shape{C});
  grads.dbeta = Tensor(Shape{C});
  const float inv_count = 1.0f / static_cast<float>(N * plane);

  device::launch_kernel_chunks_modeled(
      "batchnorm_bwd", C, doutput.numel(), {10.0, 20.0},
      [&](int64_t b, int64_t e) {
        for (int64_t c = b; c < e; ++c) {
          // Two reductions, then the standard dx formula:
          // dx = g*inv_std/M * (M*dy - sum(dy) - xhat*sum(dy*xhat))
          double sum_dy = 0.0, sum_dy_xhat = 0.0;
          for (int64_t n = 0; n < N; ++n) {
            const float* dy = doutput.data() + (n * C + c) * plane;
            const float* xh = cache.xhat.data() + (n * C + c) * plane;
            for (int64_t j = 0; j < plane; ++j) {
              sum_dy += dy[j];
              sum_dy_xhat += static_cast<double>(dy[j]) * xh[j];
            }
          }
          grads.dbeta.data()[c] = static_cast<float>(sum_dy);
          grads.dgamma.data()[c] = static_cast<float>(sum_dy_xhat);
          const float g = state.gamma.data()[c];
          const float inv_std = cache.inv_std[static_cast<size_t>(c)];
          const float k = g * inv_std;
          const float mean_dy = static_cast<float>(sum_dy) * inv_count;
          const float mean_dy_xhat =
              static_cast<float>(sum_dy_xhat) * inv_count;
          for (int64_t n = 0; n < N; ++n) {
            const float* dy = doutput.data() + (n * C + c) * plane;
            const float* xh = cache.xhat.data() + (n * C + c) * plane;
            float* dx = grads.dinput.data() + (n * C + c) * plane;
            for (int64_t j = 0; j < plane; ++j) {
              dx[j] = k * (dy[j] - mean_dy - xh[j] * mean_dy_xhat);
            }
          }
        }
      });
  return grads;
}

}  // namespace dsx
