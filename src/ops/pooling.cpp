#include "ops/pooling.hpp"

#include <limits>

#include "common/check.hpp"
#include "device/launch.hpp"

namespace dsx {

namespace {

struct PoolDims {
  int64_t N, C, H, W, Ho, Wo;
};

PoolDims resolve(const Shape& input, const PoolArgs& args) {
  DSX_REQUIRE(input.rank() == 4, "pooling: input must be NCHW");
  PoolDims d;
  d.N = input.n();
  d.C = input.c();
  d.H = input.h();
  d.W = input.w();
  d.Ho = conv_out_size(d.H, args.kernel, args.stride, 0);
  d.Wo = conv_out_size(d.W, args.kernel, args.stride, 0);
  return d;
}

}  // namespace

MaxPoolResult maxpool2d_forward(const Tensor& input, const PoolArgs& args) {
  const PoolDims d = resolve(input.shape(), args);
  MaxPoolResult res;
  res.output = Tensor(make_nchw(d.N, d.C, d.Ho, d.Wo));
  res.argmax.assign(static_cast<size_t>(res.output.numel()), 0);
  const int64_t plane = d.H * d.W, planeo = d.Ho * d.Wo;

  device::launch_kernel_chunks_modeled(
      "maxpool_fwd", d.N * d.C, d.N * d.C * planeo,
      {static_cast<double>(args.kernel * args.kernel), 8.0},
      [&](int64_t b, int64_t e) {
        for (int64_t nc = b; nc < e; ++nc) {
          const float* in_p = input.data() + nc * plane;
          float* out_p = res.output.data() + nc * planeo;
          int32_t* am_p = res.argmax.data() + nc * planeo;
          for (int64_t y = 0; y < d.Ho; ++y) {
            for (int64_t x = 0; x < d.Wo; ++x) {
              float best = -std::numeric_limits<float>::infinity();
              int32_t best_idx = 0;
              for (int64_t ky = 0; ky < args.kernel; ++ky) {
                const int64_t iy = y * args.stride + ky;
                if (iy >= d.H) continue;
                for (int64_t kx = 0; kx < args.kernel; ++kx) {
                  const int64_t ix = x * args.stride + kx;
                  if (ix >= d.W) continue;
                  const float v = in_p[iy * d.W + ix];
                  if (v > best) {
                    best = v;
                    best_idx = static_cast<int32_t>(iy * d.W + ix);
                  }
                }
              }
              out_p[y * d.Wo + x] = best;
              am_p[y * d.Wo + x] = best_idx;
            }
          }
        }
      });
  return res;
}

Tensor maxpool2d_backward(const Tensor& doutput, const MaxPoolResult& cache,
                          const Shape& input_shape, const PoolArgs& args) {
  const PoolDims d = resolve(input_shape, args);
  DSX_REQUIRE(doutput.shape() == make_nchw(d.N, d.C, d.Ho, d.Wo),
              "maxpool2d_backward: doutput shape");
  DSX_REQUIRE(cache.argmax.size() == static_cast<size_t>(doutput.numel()),
              "maxpool2d_backward: stale cache");
  Tensor din(input_shape);
  const int64_t plane = d.H * d.W, planeo = d.Ho * d.Wo;
  device::launch_kernel_chunks(
      "maxpool_bwd", d.N * d.C, {1.0, 8.0}, [&](int64_t b, int64_t e) {
        for (int64_t nc = b; nc < e; ++nc) {
          const float* do_p = doutput.data() + nc * planeo;
          const int32_t* am_p = cache.argmax.data() + nc * planeo;
          float* di_p = din.data() + nc * plane;
          for (int64_t j = 0; j < planeo; ++j) di_p[am_p[j]] += do_p[j];
        }
      });
  return din;
}

Tensor avgpool2d_forward(const Tensor& input, const PoolArgs& args) {
  const PoolDims d = resolve(input.shape(), args);
  Tensor out(make_nchw(d.N, d.C, d.Ho, d.Wo));
  const int64_t plane = d.H * d.W, planeo = d.Ho * d.Wo;
  const float inv = 1.0f / static_cast<float>(args.kernel * args.kernel);
  device::launch_kernel_chunks(
      "avgpool_fwd", d.N * d.C, {1.0, 8.0}, [&](int64_t b, int64_t e) {
        for (int64_t nc = b; nc < e; ++nc) {
          const float* in_p = input.data() + nc * plane;
          float* out_p = out.data() + nc * planeo;
          for (int64_t y = 0; y < d.Ho; ++y) {
            for (int64_t x = 0; x < d.Wo; ++x) {
              float acc = 0.0f;
              for (int64_t ky = 0; ky < args.kernel; ++ky) {
                const int64_t iy = y * args.stride + ky;
                if (iy >= d.H) continue;
                for (int64_t kx = 0; kx < args.kernel; ++kx) {
                  const int64_t ix = x * args.stride + kx;
                  if (ix >= d.W) continue;
                  acc += in_p[iy * d.W + ix];
                }
              }
              out_p[y * d.Wo + x] = acc * inv;
            }
          }
        }
      });
  return out;
}

Tensor avgpool2d_backward(const Tensor& doutput, const Shape& input_shape,
                          const PoolArgs& args) {
  const PoolDims d = resolve(input_shape, args);
  DSX_REQUIRE(doutput.shape() == make_nchw(d.N, d.C, d.Ho, d.Wo),
              "avgpool2d_backward: doutput shape");
  Tensor din(input_shape);
  const int64_t plane = d.H * d.W, planeo = d.Ho * d.Wo;
  const float inv = 1.0f / static_cast<float>(args.kernel * args.kernel);
  device::launch_kernel_chunks(
      "avgpool_bwd", d.N * d.C, {1.0, 8.0}, [&](int64_t b, int64_t e) {
        for (int64_t nc = b; nc < e; ++nc) {
          const float* do_p = doutput.data() + nc * planeo;
          float* di_p = din.data() + nc * plane;
          for (int64_t y = 0; y < d.Ho; ++y) {
            for (int64_t x = 0; x < d.Wo; ++x) {
              const float g = do_p[y * d.Wo + x] * inv;
              for (int64_t ky = 0; ky < args.kernel; ++ky) {
                const int64_t iy = y * args.stride + ky;
                if (iy >= d.H) continue;
                for (int64_t kx = 0; kx < args.kernel; ++kx) {
                  const int64_t ix = x * args.stride + kx;
                  if (ix >= d.W) continue;
                  di_p[iy * d.W + ix] += g;
                }
              }
            }
          }
        }
      });
  return din;
}

Tensor global_avgpool_forward(const Tensor& input) {
  DSX_REQUIRE(input.shape().rank() == 4, "global_avgpool: input must be NCHW");
  const int64_t N = input.shape().n(), C = input.shape().c();
  const int64_t plane = input.shape().h() * input.shape().w();
  Tensor out(make_nchw(N, C, 1, 1));
  const float inv = 1.0f / static_cast<float>(plane);
  device::launch_kernel_chunks(
      "gap_fwd", N * C, {static_cast<double>(plane), 4.0 * plane},
      [&](int64_t b, int64_t e) {
        for (int64_t nc = b; nc < e; ++nc) {
          const float* p = input.data() + nc * plane;
          double acc = 0.0;
          for (int64_t j = 0; j < plane; ++j) acc += p[j];
          out.data()[nc] = static_cast<float>(acc) * inv;
        }
      });
  return out;
}

Tensor global_avgpool_backward(const Tensor& doutput,
                               const Shape& input_shape) {
  DSX_REQUIRE(input_shape.rank() == 4, "global_avgpool: input must be NCHW");
  const int64_t N = input_shape.n(), C = input_shape.c();
  const int64_t plane = input_shape.h() * input_shape.w();
  DSX_REQUIRE(doutput.shape() == make_nchw(N, C, 1, 1),
              "global_avgpool_backward: doutput shape");
  Tensor din(input_shape);
  const float inv = 1.0f / static_cast<float>(plane);
  device::launch_kernel_chunks(
      "gap_bwd", N * C, {1.0, 4.0 * plane}, [&](int64_t b, int64_t e) {
        for (int64_t nc = b; nc < e; ++nc) {
          const float g = doutput.data()[nc] * inv;
          float* p = din.data() + nc * plane;
          for (int64_t j = 0; j < plane; ++j) p[j] = g;
        }
      });
  return din;
}

}  // namespace dsx
