// Depthwise convolution (the DW half of every DW+{PW,GPW,SCC} block).
//
// Direct kernels, no lowering: one GPU-model thread per output pixel in the
// forward pass, one per input pixel / per weight tap in the backward pass
// (both race-free, mirroring the paper's description of DW as the cheap,
// per-channel spatial stage).
//
// Weight layout: [C, 1, K, K]; bias optional [C].
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"
#include "tensor/workspace.hpp"

namespace dsx {

struct DepthwiseArgs {
  int64_t stride = 1;
  int64_t pad = 0;
};

Shape depthwise_output_shape(const Shape& input, const Shape& weight,
                             const DepthwiseArgs& args);

Tensor depthwise_forward(const Tensor& input, const Tensor& weight,
                         const Tensor* bias, const DepthwiseArgs& args);

/// Forward into a preallocated `out` of shape depthwise_output_shape(...);
/// lets the serving runtime keep activations in a workspace arena.
void depthwise_forward_into(const Tensor& input, const Tensor& weight,
                            const Tensor* bias, const DepthwiseArgs& args,
                            Tensor& out);

struct DepthwiseGrads {
  Tensor dinput;
  Tensor dweight;
  Tensor dbias;
};

DepthwiseGrads depthwise_backward(const Tensor& input, const Tensor& weight,
                                  const Tensor& doutput,
                                  const DepthwiseArgs& args, bool need_dinput,
                                  bool has_bias);

}  // namespace dsx
