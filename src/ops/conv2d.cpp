#include "ops/conv2d.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "device/launch.hpp"
#include "ops/gemm.hpp"
#include "ops/im2col.hpp"

namespace dsx {

namespace {

struct ConvDims {
  int64_t N, Cin, H, W;
  int64_t Cout, K;
  int64_t Ho, Wo;
  int64_t groups, cin_g, cout_g;
};

void add_bias_rows(const Tensor* bias, int64_t N, int64_t Cout, int64_t planeo,
                   Tensor& out) {
  if (bias == nullptr) return;
  device::launch_kernel_chunks(
      "conv2d_bias", N * Cout, {1.0, 8.0}, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
          const float bv = bias->data()[i % Cout];
          float* p = out.data() + i * planeo;
          for (int64_t j = 0; j < planeo; ++j) p[j] += bv;
        }
      });
}

ConvDims resolve_dims(const Shape& input, const Shape& weight,
                      const Conv2dArgs& args) {
  DSX_REQUIRE(input.rank() == 4, "conv2d: input must be NCHW, got "
                                     << input.to_string());
  DSX_REQUIRE(weight.rank() == 4, "conv2d: weight must be [Cout,Cin/g,K,K], got "
                                      << weight.to_string());
  DSX_REQUIRE(weight.dim(2) == weight.dim(3),
              "conv2d: non-square kernel " << weight.to_string());
  ConvDims d;
  d.N = input.n();
  d.Cin = input.c();
  d.H = input.h();
  d.W = input.w();
  d.Cout = weight.dim(0);
  d.K = weight.dim(2);
  d.groups = args.groups;
  DSX_REQUIRE(d.groups >= 1, "conv2d: groups must be >= 1");
  DSX_REQUIRE(d.Cin % d.groups == 0, "conv2d: Cin " << d.Cin
                                                    << " not divisible by groups "
                                                    << d.groups);
  DSX_REQUIRE(d.Cout % d.groups == 0, "conv2d: Cout " << d.Cout
                                                      << " not divisible by groups "
                                                      << d.groups);
  d.cin_g = d.Cin / d.groups;
  d.cout_g = d.Cout / d.groups;
  DSX_REQUIRE(weight.dim(1) == d.cin_g,
              "conv2d: weight expects " << weight.dim(1)
                                        << " input channels per group, input has "
                                        << d.cin_g);
  d.Ho = conv_out_size(d.H, d.K, args.stride, args.pad);
  d.Wo = conv_out_size(d.W, d.K, args.stride, args.pad);
  return d;
}

}  // namespace

Shape conv2d_output_shape(const Shape& input, const Shape& weight,
                          const Conv2dArgs& args) {
  const ConvDims d = resolve_dims(input, weight, args);
  return make_nchw(d.N, d.Cout, d.Ho, d.Wo);
}

Tensor conv2d_forward(const Tensor& input, const Tensor& weight,
                      const Tensor* bias, const Conv2dArgs& args) {
  // Compatibility wrapper: a throwaway arena makes this the allocating path.
  Workspace ws;
  Tensor out(conv2d_output_shape(input.shape(), weight.shape(), args));
  conv2d_forward_into(input, weight, bias, args, ws, out);
  return out;
}

int64_t conv2d_workspace_floats(const Shape& input, const Shape& weight,
                                const Conv2dArgs& args) {
  const ConvDims d = resolve_dims(input, weight, args);
  const bool is_1x1_dense = d.K == 1 && args.stride == 1 && args.pad == 0;
  return is_1x1_dense
             ? 0
             : Workspace::aligned_size(d.Cin * d.K * d.K * d.Ho * d.Wo);
}

void conv2d_forward_into(const Tensor& input, const Tensor& weight,
                         const Tensor* bias, const Conv2dArgs& args,
                         Workspace& ws, Tensor& out) {
  const ConvDims d = resolve_dims(input.shape(), weight.shape(), args);
  if (bias != nullptr) {
    DSX_REQUIRE(bias->shape() == Shape{d.Cout},
                "conv2d: bias shape " << bias->shape().to_string());
  }
  DSX_REQUIRE(out.shape() == make_nchw(d.N, d.Cout, d.Ho, d.Wo),
              "conv2d: out shape " << out.shape().to_string());

  const int64_t planeo = d.Ho * d.Wo;
  const int64_t col_rows = d.Cin * d.K * d.K;
  const bool is_1x1_dense =
      d.K == 1 && args.stride == 1 && args.pad == 0;

  // col buffer reused across images (skipped on the dense 1x1 fast path).
  float* col = is_1x1_dense ? nullptr : ws.alloc(col_rows * planeo);

  for (int64_t n = 0; n < d.N; ++n) {
    const float* in_n = input.data() + n * d.Cin * d.H * d.W;
    float* out_n = out.data() + n * d.Cout * planeo;
    const float* lowered = in_n;
    if (!is_1x1_dense) {
      im2col(in_n, d.Cin, d.H, d.W, d.K, args.stride, args.pad, col);
      lowered = col;
    }
    const int64_t rows_g = d.cin_g * d.K * d.K;
    for (int64_t g = 0; g < d.groups; ++g) {
      // out_g [cout_g, planeo] = W_g [cout_g, rows_g] x col_g [rows_g, planeo]
      gemm(false, false, d.cout_g, planeo, rows_g, 1.0f,
           weight.data() + g * d.cout_g * rows_g, rows_g,
           lowered + g * rows_g * planeo, planeo, 0.0f,
           out_n + g * d.cout_g * planeo, planeo);
    }
  }

  add_bias_rows(bias, d.N, d.Cout, planeo, out);
}

void conv2d_forward_direct_into(const Tensor& input, const Tensor& weight,
                                const Tensor* bias, const Conv2dArgs& args,
                                Tensor& out) {
  const ConvDims d = resolve_dims(input.shape(), weight.shape(), args);
  if (bias != nullptr) {
    DSX_REQUIRE(bias->shape() == Shape{d.Cout},
                "conv2d: bias shape " << bias->shape().to_string());
  }
  DSX_REQUIRE(out.shape() == make_nchw(d.N, d.Cout, d.Ho, d.Wo),
              "conv2d: out shape " << out.shape().to_string());

  const int64_t planeo = d.Ho * d.Wo;
  const int64_t stride = args.stride, pad = args.pad;

  // One chunk index per (n, oc) output plane, mirroring the GEMM row order:
  // taps iterate (ic, ky, kx) with the pixel loop innermost, zero weights
  // skipped, bias added by the shared post-pass - the exact float-op
  // sequence of the im2col route, minus the column materialisation.
  device::launch_kernel_chunks_modeled(
      "conv2d_direct", d.N * d.Cout, out.numel(),
      {2.0 * static_cast<double>(d.cin_g * d.K * d.K),
       4.0 * (static_cast<double>(d.cin_g * d.K * d.K) + 2.0)},
      [&](int64_t b, int64_t e) {
        for (int64_t row = b; row < e; ++row) {
          const int64_t n = row / d.Cout;
          const int64_t oc = row % d.Cout;
          const int64_t g = oc / d.cout_g;
          const float* in_n = input.data() + (n * d.Cin + g * d.cin_g) * d.H * d.W;
          const float* w_row = weight.data() + oc * d.cin_g * d.K * d.K;
          float* out_row = out.data() + row * planeo;
          for (int64_t j = 0; j < planeo; ++j) out_row[j] = 0.0f;
          for (int64_t ic = 0; ic < d.cin_g; ++ic) {
            const float* in_c = in_n + ic * d.H * d.W;
            for (int64_t ky = 0; ky < d.K; ++ky) {
              for (int64_t kx = 0; kx < d.K; ++kx) {
                const float wv = w_row[(ic * d.K + ky) * d.K + kx];
                if (wv == 0.0f) continue;  // mirrors the GEMM zero-row skip
                // In-bounds ox range for this tap (ix = ox*stride + kx - pad
                // in [0, W)); pixels outside it are the im2col zeros, whose
                // +-0.0f contributions never change the accumulator.
                const int64_t ox_lo =
                    pad > kx ? (pad - kx + stride - 1) / stride : 0;
                const int64_t ox_hi = std::min(
                    d.Wo, d.W - 1 - kx + pad >= 0
                              ? (d.W - 1 - kx + pad) / stride + 1
                              : int64_t{0});
                for (int64_t oy = 0; oy < d.Ho; ++oy) {
                  const int64_t iy = oy * stride + ky - pad;
                  if (iy < 0 || iy >= d.H) continue;  // im2col wrote zeros
                  const float* in_y = in_c + iy * d.W + kx - pad;
                  float* out_y = out_row + oy * d.Wo;
                  if (stride == 1) {
                    for (int64_t ox = ox_lo; ox < ox_hi; ++ox) {
                      out_y[ox] += wv * in_y[ox];
                    }
                  } else {
                    for (int64_t ox = ox_lo; ox < ox_hi; ++ox) {
                      out_y[ox] += wv * in_y[ox * stride];
                    }
                  }
                }
              }
            }
          }
        }
      });

  add_bias_rows(bias, d.N, d.Cout, planeo, out);
}

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            const Tensor& doutput, const Conv2dArgs& args,
                            bool need_dinput, bool has_bias) {
  const ConvDims d = resolve_dims(input.shape(), weight.shape(), args);
  DSX_REQUIRE(doutput.shape() == make_nchw(d.N, d.Cout, d.Ho, d.Wo),
              "conv2d_backward: doutput shape " << doutput.shape().to_string());

  Conv2dGrads grads;
  grads.dweight = Tensor(weight.shape());
  if (need_dinput) grads.dinput = Tensor(input.shape());

  const int64_t planeo = d.Ho * d.Wo;
  const int64_t rows_g = d.cin_g * d.K * d.K;
  const int64_t col_rows = d.Cin * d.K * d.K;
  const bool is_1x1_dense = d.K == 1 && args.stride == 1 && args.pad == 0;

  Tensor col;
  Tensor dcol;
  if (!is_1x1_dense) {
    col = Tensor(Shape{col_rows, planeo});
    if (need_dinput) dcol = Tensor(Shape{col_rows, planeo});
  }

  for (int64_t n = 0; n < d.N; ++n) {
    const float* in_n = input.data() + n * d.Cin * d.H * d.W;
    const float* dout_n = doutput.data() + n * d.Cout * planeo;
    const float* lowered = in_n;
    if (!is_1x1_dense) {
      im2col(in_n, d.Cin, d.H, d.W, d.K, args.stride, args.pad, col.data());
      lowered = col.data();
    }
    for (int64_t g = 0; g < d.groups; ++g) {
      // dW_g += dOut_g [cout_g, planeo] x col_g^T [planeo, rows_g]
      gemm(false, true, d.cout_g, rows_g, planeo, 1.0f,
           dout_n + g * d.cout_g * planeo, planeo,
           lowered + g * rows_g * planeo, planeo, 1.0f,
           grads.dweight.data() + g * d.cout_g * rows_g, rows_g);
    }
    if (need_dinput) {
      if (is_1x1_dense) {
        float* din_n = grads.dinput.data() + n * d.Cin * d.H * d.W;
        for (int64_t g = 0; g < d.groups; ++g) {
          // dIn_g = W_g^T [cin_g, cout_g] x dOut_g [cout_g, planeo]
          gemm(true, false, d.cin_g, planeo, d.cout_g, 1.0f,
               weight.data() + g * d.cout_g * d.cin_g, d.cin_g,
               dout_n + g * d.cout_g * planeo, planeo, 0.0f,
               din_n + g * d.cin_g * planeo, planeo);
        }
      } else {
        for (int64_t g = 0; g < d.groups; ++g) {
          gemm(true, false, rows_g, planeo, d.cout_g, 1.0f,
               weight.data() + g * d.cout_g * rows_g, rows_g,
               dout_n + g * d.cout_g * planeo, planeo, 0.0f,
               dcol.data() + g * rows_g * planeo, planeo);
        }
        col2im_add(dcol.data(), d.Cin, d.H, d.W, d.K, args.stride, args.pad,
                   grads.dinput.data() + n * d.Cin * d.H * d.W);
      }
    }
  }

  if (has_bias) {
    grads.dbias = Tensor(Shape{d.Cout});
    device::launch_kernel_chunks(
        "conv2d_dbias", d.Cout, {1.0, 8.0}, [&](int64_t b, int64_t e) {
          for (int64_t c = b; c < e; ++c) {
            double acc = 0.0;
            for (int64_t n = 0; n < d.N; ++n) {
              const float* p = doutput.data() + (n * d.Cout + c) * planeo;
              for (int64_t j = 0; j < planeo; ++j) acc += p[j];
            }
            grads.dbias.data()[c] = static_cast<float>(acc);
          }
        });
  }
  return grads;
}

}  // namespace dsx
