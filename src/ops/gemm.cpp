#include "ops/gemm.hpp"

#include "common/check.hpp"
#include "device/launch.hpp"

namespace dsx {

namespace {

// Rough per-output-element byte traffic assuming 16-way reuse of the K-panel
// (a tile-cache assumption; only used by the gpusim cost model, never for
// correctness).
device::KernelCosts gemm_costs(int64_t K) {
  device::KernelCosts costs;
  costs.flops_per_thread = 2.0 * static_cast<double>(K);
  costs.bytes_per_thread = 4.0 * (2.0 * static_cast<double>(K) / 16.0 + 2.0);
  return costs;
}

}  // namespace

void gemm(bool trans_a, bool trans_b, int64_t M, int64_t N, int64_t K,
          float alpha, const float* A, int64_t lda, const float* B,
          int64_t ldb, float beta, float* C, int64_t ldc) {
  DSX_REQUIRE(M >= 0 && N >= 0 && K >= 0, "gemm: negative dimension");
  DSX_REQUIRE(A != nullptr && B != nullptr && C != nullptr,
              "gemm: null operand");
  if (M == 0 || N == 0) return;

  const auto a_at = [&](int64_t i, int64_t k) -> float {
    return trans_a ? A[k * lda + i] : A[i * lda + k];
  };

  device::launch_kernel_chunks_modeled(
      "gemm", M, M * N, gemm_costs(K), [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          float* c_row = C + i * ldc;
          if (beta == 0.0f) {
            for (int64_t j = 0; j < N; ++j) c_row[j] = 0.0f;
          } else if (beta != 1.0f) {
            for (int64_t j = 0; j < N; ++j) c_row[j] *= beta;
          }
          if (K == 0 || alpha == 0.0f) continue;
          if (!trans_b) {
            // i-k-j order: stream rows of B, accumulate into the C row.
            for (int64_t k = 0; k < K; ++k) {
              const float a = alpha * a_at(i, k);
              if (a == 0.0f) continue;
              const float* b_row = B + k * ldb;
              for (int64_t j = 0; j < N; ++j) c_row[j] += a * b_row[j];
            }
          } else {
            // B stored [N,K]: dot products along contiguous B rows.
            for (int64_t j = 0; j < N; ++j) {
              const float* b_row = B + j * ldb;
              float acc = 0.0f;
              if (!trans_a) {
                const float* a_row = A + i * lda;
                for (int64_t k = 0; k < K; ++k) acc += a_row[k] * b_row[k];
              } else {
                for (int64_t k = 0; k < K; ++k) acc += a_at(i, k) * b_row[k];
              }
              c_row[j] += alpha * acc;
            }
          }
        }
      });
}

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  DSX_REQUIRE(a.shape().rank() == 2 && b.shape().rank() == 2,
              "matmul needs rank-2 tensors, got " << a.shape().to_string()
                                                  << " and "
                                                  << b.shape().to_string());
  const int64_t M = trans_a ? a.shape().dim(1) : a.shape().dim(0);
  const int64_t Ka = trans_a ? a.shape().dim(0) : a.shape().dim(1);
  const int64_t Kb = trans_b ? b.shape().dim(1) : b.shape().dim(0);
  const int64_t N = trans_b ? b.shape().dim(0) : b.shape().dim(1);
  DSX_REQUIRE(Ka == Kb, "matmul: inner dimensions " << Ka << " vs " << Kb);
  Tensor out(Shape{M, N});
  gemm(trans_a, trans_b, M, N, Ka, 1.0f, a.data(), a.shape().dim(1), b.data(),
       b.shape().dim(1), 0.0f, out.data(), N);
  return out;
}

}  // namespace dsx
