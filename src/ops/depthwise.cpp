#include "ops/depthwise.hpp"

#include "common/check.hpp"
#include "device/launch.hpp"

namespace dsx {

namespace {

struct DwDims {
  int64_t N, C, H, W, K, Ho, Wo;
};

DwDims resolve(const Shape& input, const Shape& weight,
               const DepthwiseArgs& args) {
  DSX_REQUIRE(input.rank() == 4, "depthwise: input must be NCHW");
  DSX_REQUIRE(weight.rank() == 4 && weight.dim(1) == 1 &&
                  weight.dim(2) == weight.dim(3),
              "depthwise: weight must be [C,1,K,K], got "
                  << weight.to_string());
  DSX_REQUIRE(weight.dim(0) == input.c(),
              "depthwise: weight C " << weight.dim(0) << " vs input C "
                                     << input.c());
  DwDims d;
  d.N = input.n();
  d.C = input.c();
  d.H = input.h();
  d.W = input.w();
  d.K = weight.dim(2);
  d.Ho = conv_out_size(d.H, d.K, args.stride, args.pad);
  d.Wo = conv_out_size(d.W, d.K, args.stride, args.pad);
  return d;
}

}  // namespace

Shape depthwise_output_shape(const Shape& input, const Shape& weight,
                             const DepthwiseArgs& args) {
  const DwDims d = resolve(input, weight, args);
  return make_nchw(d.N, d.C, d.Ho, d.Wo);
}

Tensor depthwise_forward(const Tensor& input, const Tensor& weight,
                         const Tensor* bias, const DepthwiseArgs& args) {
  Tensor out(depthwise_output_shape(input.shape(), weight.shape(), args));
  depthwise_forward_into(input, weight, bias, args, out);
  return out;
}

void depthwise_forward_into(const Tensor& input, const Tensor& weight,
                            const Tensor* bias, const DepthwiseArgs& args,
                            Tensor& out) {
  const DwDims d = resolve(input.shape(), weight.shape(), args);
  if (bias != nullptr) {
    DSX_REQUIRE(bias->shape() == Shape{d.C}, "depthwise: bad bias shape");
  }
  DSX_REQUIRE(out.shape() == make_nchw(d.N, d.C, d.Ho, d.Wo),
              "depthwise: out shape " << out.shape().to_string());
  const int64_t planeo = d.Ho * d.Wo;
  const int64_t plane = d.H * d.W;
  const double flops = 2.0 * static_cast<double>(d.K * d.K);

  device::launch_kernel_chunks_modeled(
      "dw_forward", d.N * d.C, d.N * d.C * planeo,
      {flops, 4.0 * (d.K * d.K + 2.0)}, [&](int64_t b, int64_t e) {
        for (int64_t nc = b; nc < e; ++nc) {
          const int64_t c = nc % d.C;
          const float* in_p = input.data() + nc * plane;
          const float* w = weight.data() + c * d.K * d.K;
          const float bv = bias != nullptr ? bias->data()[c] : 0.0f;
          float* out_p = out.data() + nc * planeo;
          for (int64_t y = 0; y < d.Ho; ++y) {
            for (int64_t x = 0; x < d.Wo; ++x) {
              float acc = bv;
              for (int64_t ky = 0; ky < d.K; ++ky) {
                const int64_t iy = y * args.stride + ky - args.pad;
                if (iy < 0 || iy >= d.H) continue;
                for (int64_t kx = 0; kx < d.K; ++kx) {
                  const int64_t ix = x * args.stride + kx - args.pad;
                  if (ix < 0 || ix >= d.W) continue;
                  acc += w[ky * d.K + kx] * in_p[iy * d.W + ix];
                }
              }
              out_p[y * d.Wo + x] = acc;
            }
          }
        }
      });
}

DepthwiseGrads depthwise_backward(const Tensor& input, const Tensor& weight,
                                  const Tensor& doutput,
                                  const DepthwiseArgs& args, bool need_dinput,
                                  bool has_bias) {
  const DwDims d = resolve(input.shape(), weight.shape(), args);
  DSX_REQUIRE(doutput.shape() == make_nchw(d.N, d.C, d.Ho, d.Wo),
              "depthwise_backward: doutput shape "
                  << doutput.shape().to_string());
  DepthwiseGrads grads;
  grads.dweight = Tensor(weight.shape());
  const int64_t planeo = d.Ho * d.Wo;
  const int64_t plane = d.H * d.W;

  // dW: one model-thread per weight tap per channel; race-free because each
  // (c, ky, kx) is owned by one thread, accumulation runs over n, y, x.
  device::launch_kernel_chunks_modeled(
      "dw_dweight", d.C, d.C * d.K * d.K,
      {2.0 * static_cast<double>(d.N * planeo), 8.0},
      [&](int64_t b, int64_t e) {
        for (int64_t c = b; c < e; ++c) {
          float* dw = grads.dweight.data() + c * d.K * d.K;
          for (int64_t ky = 0; ky < d.K; ++ky) {
            for (int64_t kx = 0; kx < d.K; ++kx) {
              double acc = 0.0;
              for (int64_t n = 0; n < d.N; ++n) {
                const float* in_p = input.data() + (n * d.C + c) * plane;
                const float* do_p = doutput.data() + (n * d.C + c) * planeo;
                for (int64_t y = 0; y < d.Ho; ++y) {
                  const int64_t iy = y * args.stride + ky - args.pad;
                  if (iy < 0 || iy >= d.H) continue;
                  for (int64_t x = 0; x < d.Wo; ++x) {
                    const int64_t ix = x * args.stride + kx - args.pad;
                    if (ix < 0 || ix >= d.W) continue;
                    acc += do_p[y * d.Wo + x] * in_p[iy * d.W + ix];
                  }
                }
              }
              dw[ky * d.K + kx] = static_cast<float>(acc);
            }
          }
        }
      });

  if (need_dinput) {
    grads.dinput = Tensor(input.shape());
    // Input-centric: each input pixel gathers the output positions whose
    // window covered it. Race-free by construction.
    device::launch_kernel_chunks_modeled(
        "dw_dinput", d.N * d.C, d.N * d.C * plane,
        {2.0 * static_cast<double>(d.K * d.K), 4.0 * (d.K * d.K + 2.0)},
        [&](int64_t b, int64_t e) {
          for (int64_t nc = b; nc < e; ++nc) {
            const int64_t c = nc % d.C;
            const float* w = weight.data() + c * d.K * d.K;
            const float* do_p = doutput.data() + nc * planeo;
            float* di_p = grads.dinput.data() + nc * plane;
            for (int64_t iy = 0; iy < d.H; ++iy) {
              for (int64_t ix = 0; ix < d.W; ++ix) {
                float acc = 0.0f;
                for (int64_t ky = 0; ky < d.K; ++ky) {
                  const int64_t ty = iy + args.pad - ky;
                  if (ty < 0 || ty % args.stride != 0) continue;
                  const int64_t y = ty / args.stride;
                  if (y >= d.Ho) continue;
                  for (int64_t kx = 0; kx < d.K; ++kx) {
                    const int64_t tx = ix + args.pad - kx;
                    if (tx < 0 || tx % args.stride != 0) continue;
                    const int64_t x = tx / args.stride;
                    if (x >= d.Wo) continue;
                    acc += w[ky * d.K + kx] * do_p[y * d.Wo + x];
                  }
                }
                di_p[iy * d.W + ix] = acc;
              }
            }
          }
        });
  }

  if (has_bias) {
    grads.dbias = Tensor(Shape{d.C});
    device::launch_kernel_chunks(
        "dw_dbias", d.C, {1.0, 8.0}, [&](int64_t b, int64_t e) {
          for (int64_t c = b; c < e; ++c) {
            double acc = 0.0;
            for (int64_t n = 0; n < d.N; ++n) {
              const float* p = doutput.data() + (n * d.C + c) * planeo;
              for (int64_t j = 0; j < planeo; ++j) acc += p[j];
            }
            grads.dbias.data()[c] = static_cast<float>(acc);
          }
        });
  }
  return grads;
}

}  // namespace dsx
