// Spatial pooling (max / average / global average).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace dsx {

struct PoolArgs {
  int64_t kernel = 2;
  int64_t stride = 2;
};

/// Max pooling; `argmax` (flat input-plane index per output element) is kept
/// for the backward pass.
struct MaxPoolResult {
  Tensor output;
  std::vector<int32_t> argmax;  // size = output.numel()
};

MaxPoolResult maxpool2d_forward(const Tensor& input, const PoolArgs& args);
Tensor maxpool2d_backward(const Tensor& doutput, const MaxPoolResult& cache,
                          const Shape& input_shape, const PoolArgs& args);

Tensor avgpool2d_forward(const Tensor& input, const PoolArgs& args);
Tensor avgpool2d_backward(const Tensor& doutput, const Shape& input_shape,
                          const PoolArgs& args);

/// Pools each channel plane to a single value: [N,C,H,W] -> [N,C,1,1].
Tensor global_avgpool_forward(const Tensor& input);
Tensor global_avgpool_backward(const Tensor& doutput, const Shape& input_shape);

}  // namespace dsx
