// Standard / grouped / pointwise convolution (im2col + GEMM path).
//
// This is the substrate the paper's baselines are built from:
//   - standard conv:   groups = 1
//   - group conv (GC): groups = cg
//   - pointwise (PW):  K = 1, groups = 1
//   - group PW (GPW):  K = 1, groups = cg
// Depthwise has its own direct kernels in ops/depthwise.hpp.
//
// Weight layout: [Cout, Cin/groups, K, K]; bias: [Cout] (optional).
#pragma once

#include <cstdint>
#include <optional>

#include "tensor/tensor.hpp"
#include "tensor/workspace.hpp"

namespace dsx {

struct Conv2dArgs {
  int64_t stride = 1;
  int64_t pad = 0;
  int64_t groups = 1;
};

/// Validates shapes and returns the output shape for the given input.
Shape conv2d_output_shape(const Shape& input, const Shape& weight,
                          const Conv2dArgs& args);

/// Forward pass. `bias` may be null.
Tensor conv2d_forward(const Tensor& input, const Tensor& weight,
                      const Tensor* bias, const Conv2dArgs& args);

/// Workspace-backed forward: the im2col column buffer is drawn from `ws`
/// (hot serving paths reuse one arena across calls instead of allocating),
/// and the output is written into `out`, which must already have the shape
/// conv2d_output_shape returns. Bit-identical to conv2d_forward.
void conv2d_forward_into(const Tensor& input, const Tensor& weight,
                         const Tensor* bias, const Conv2dArgs& args,
                         Workspace& ws, Tensor& out);

/// Floats of scratch conv2d_forward_into draws from the workspace for this
/// problem (arena pre-sizing).
int64_t conv2d_workspace_floats(const Shape& input, const Shape& weight,
                                const Conv2dArgs& args);

/// Direct (no-lowering) forward: indexes the input in place instead of
/// materialising the im2col matrix, trading the Cin*K*K*Ho*Wo column copy
/// for strided reads and boundary tests. Accumulates in exactly the
/// im2col+GEMM float order, so it is bit-identical to conv2d_forward_into;
/// dsx::tune registers both and measures which wins per shape.
void conv2d_forward_direct_into(const Tensor& input, const Tensor& weight,
                                const Tensor* bias, const Conv2dArgs& args,
                                Tensor& out);

struct Conv2dGrads {
  Tensor dinput;   // defined only when requested
  Tensor dweight;
  Tensor dbias;    // defined only when has_bias
};

/// Backward pass for input, weight and (optionally) bias gradients.
Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            const Tensor& doutput, const Conv2dArgs& args,
                            bool need_dinput, bool has_bias);

}  // namespace dsx
