#include "ops/shift.hpp"

#include "common/check.hpp"
#include "device/launch.hpp"

namespace dsx {

namespace {

void validate(const Shape& input, const std::vector<ShiftOffset>& shifts,
              int64_t stride) {
  DSX_REQUIRE(input.rank() == 4, "shift: input must be NCHW, got "
                                     << input.to_string());
  DSX_REQUIRE(stride >= 1, "shift: stride must be >= 1, got " << stride);
  DSX_REQUIRE(static_cast<int64_t>(shifts.size()) == input.c(),
              "shift: " << shifts.size() << " offsets for " << input.c()
                        << " channels");
}

}  // namespace

std::vector<ShiftOffset> make_uniform_shifts(int64_t channels, int64_t kernel) {
  DSX_REQUIRE(channels >= 1, "make_uniform_shifts: non-positive channels");
  DSX_REQUIRE(kernel >= 1 && kernel % 2 == 1,
              "make_uniform_shifts: kernel must be odd, got " << kernel);
  const int64_t r = kernel / 2;
  std::vector<ShiftOffset> neighbourhood;
  neighbourhood.reserve(static_cast<size_t>(kernel * kernel));
  for (int64_t dy = -r; dy <= r; ++dy) {
    for (int64_t dx = -r; dx <= r; ++dx) {
      neighbourhood.push_back({dy, dx});
    }
  }
  std::vector<ShiftOffset> shifts(static_cast<size_t>(channels));
  for (int64_t c = 0; c < channels; ++c) {
    shifts[static_cast<size_t>(c)] =
        neighbourhood[static_cast<size_t>(c % (kernel * kernel))];
  }
  return shifts;
}

Shape shift_output_shape(const Shape& input, int64_t stride) {
  DSX_REQUIRE(input.rank() == 4, "shift: input must be NCHW");
  DSX_REQUIRE(stride >= 1, "shift: stride must be >= 1");
  return make_nchw(input.n(), input.c(), (input.h() - 1) / stride + 1,
                   (input.w() - 1) / stride + 1);
}

Tensor shift_forward(const Tensor& input, const std::vector<ShiftOffset>& shifts,
                     int64_t stride) {
  validate(input.shape(), shifts, stride);
  const Shape out_shape = shift_output_shape(input.shape(), stride);
  const int64_t N = input.shape().n(), C = input.shape().c();
  const int64_t H = input.shape().h(), W = input.shape().w();
  const int64_t Ho = out_shape.h(), Wo = out_shape.w();
  Tensor out(out_shape);

  // One GPU-model thread per output pixel; zero FLOPs, one read + one write.
  device::launch_kernel_chunks_modeled(
      "shift_forward", N * C, N * C * Ho * Wo, {0.0, 8.0},
      [&](int64_t b, int64_t e) {
        for (int64_t nc = b; nc < e; ++nc) {
          const int64_t c = nc % C;
          const ShiftOffset s = shifts[static_cast<size_t>(c)];
          const float* x = input.data() + nc * H * W;
          float* y = out.data() + nc * Ho * Wo;
          for (int64_t oy = 0; oy < Ho; ++oy) {
            const int64_t iy = oy * stride + s.dy;
            float* row = y + oy * Wo;
            if (iy < 0 || iy >= H) {
              for (int64_t ox = 0; ox < Wo; ++ox) row[ox] = 0.0f;
              continue;
            }
            const float* xrow = x + iy * W;
            for (int64_t ox = 0; ox < Wo; ++ox) {
              const int64_t ix = ox * stride + s.dx;
              row[ox] = (ix >= 0 && ix < W) ? xrow[ix] : 0.0f;
            }
          }
        }
      });
  return out;
}

Tensor shift_backward(const Shape& input_shape,
                      const std::vector<ShiftOffset>& shifts,
                      const Tensor& doutput, int64_t stride) {
  validate(input_shape, shifts, stride);
  const Shape out_shape = shift_output_shape(input_shape, stride);
  DSX_REQUIRE(doutput.shape() == out_shape,
              "shift backward: doutput " << doutput.shape().to_string()
                                         << " expected "
                                         << out_shape.to_string());
  const int64_t N = input_shape.n(), C = input_shape.c();
  const int64_t H = input_shape.h(), W = input_shape.w();
  const int64_t Ho = out_shape.h(), Wo = out_shape.w();
  Tensor dinput(input_shape);

  // Input-centric gather: input pixel (iy, ix) was read by output pixel
  // ((iy-dy)/stride, (ix-dx)/stride) when that division is exact and in
  // range - at most one reader, so writes never collide.
  device::launch_kernel_chunks_modeled(
      "shift_backward", N * C, N * C * H * W, {0.0, 8.0},
      [&](int64_t b, int64_t e) {
        for (int64_t nc = b; nc < e; ++nc) {
          const int64_t c = nc % C;
          const ShiftOffset s = shifts[static_cast<size_t>(c)];
          const float* dy = doutput.data() + nc * Ho * Wo;
          float* dx = dinput.data() + nc * H * W;
          for (int64_t iy = 0; iy < H; ++iy) {
            float* drow = dx + iy * W;
            const int64_t ny = iy - s.dy;
            const bool row_ok = ny >= 0 && ny % stride == 0 && ny / stride < Ho;
            if (!row_ok) {
              for (int64_t ix = 0; ix < W; ++ix) drow[ix] = 0.0f;
              continue;
            }
            const float* dyrow = dy + (ny / stride) * Wo;
            for (int64_t ix = 0; ix < W; ++ix) {
              const int64_t nx = ix - s.dx;
              const bool ok = nx >= 0 && nx % stride == 0 && nx / stride < Wo;
              drow[ix] = ok ? dyrow[nx / stride] : 0.0f;
            }
          }
        }
      });
  return dinput;
}

}  // namespace dsx
