// Channel shuffle (Zhang et al., ShuffleNet, CVPR'18 - the paper's reference
// [9], where GPW originates).
//
// ShuffleNet's answer to the information-segregation problem of grouped
// pointwise convolutions is a fixed channel permutation between GPW stages;
// DSXplore's answer is window overlap inside the convolution itself (SCC).
// Implementing shuffle lets the repo ablate the two cross-channel mixing
// mechanisms head-to-head (bench/ablation_crosschannel).
//
// The permutation is the standard "transpose" shuffle: viewing the C
// channels as a [groups, C/groups] matrix, shuffle writes its transpose,
// so channel g*(C/groups)+j moves to position j*groups+g. The inverse of a
// shuffle with `groups` is a shuffle with `C/groups` (property-tested).
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace dsx {

/// Destination channel of source channel `c` under a shuffle with `groups`.
int64_t shuffle_destination(int64_t c, int64_t channels, int64_t groups);

/// Forward pass: permutes channel planes, spatial content untouched.
Tensor channel_shuffle_forward(const Tensor& input, int64_t groups);

/// Backward pass: the inverse permutation (= forward with C/groups groups).
Tensor channel_shuffle_backward(const Tensor& doutput, int64_t groups);

}  // namespace dsx
