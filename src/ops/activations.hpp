// Elementwise activations.
#pragma once

#include "tensor/tensor.hpp"

namespace dsx {

/// out = max(x, 0).
Tensor relu_forward(const Tensor& input);
/// din = dout where input > 0 else 0.
Tensor relu_backward(const Tensor& doutput, const Tensor& input);

}  // namespace dsx
