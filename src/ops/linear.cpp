#include "ops/linear.hpp"

#include "common/check.hpp"
#include "device/launch.hpp"
#include "ops/gemm.hpp"

namespace dsx {

Tensor linear_forward(const Tensor& input, const Tensor& weight,
                      const Tensor* bias) {
  DSX_REQUIRE(input.shape().rank() == 2 && weight.shape().rank() == 2,
              "linear: input and weight must be rank-2");
  const int64_t N = input.shape().dim(0);
  const int64_t in_f = input.shape().dim(1);
  const int64_t out_f = weight.shape().dim(0);
  DSX_REQUIRE(weight.shape().dim(1) == in_f,
              "linear: weight " << weight.shape().to_string()
                                << " vs input features " << in_f);
  // out = input [N, in] x weight^T [in, out]
  Tensor out = matmul(input, weight, false, true);
  if (bias != nullptr) {
    DSX_REQUIRE(bias->shape() == Shape{out_f}, "linear: bad bias shape");
    device::launch_kernel_chunks(
        "linear_bias", N, {static_cast<double>(out_f), 8.0},
        [&](int64_t b, int64_t e) {
          for (int64_t n = b; n < e; ++n) {
            float* row = out.data() + n * out_f;
            for (int64_t j = 0; j < out_f; ++j) row[j] += bias->data()[j];
          }
        });
  }
  return out;
}

LinearGrads linear_backward(const Tensor& input, const Tensor& weight,
                            const Tensor& doutput, bool need_dinput,
                            bool has_bias) {
  const int64_t N = input.shape().dim(0);
  const int64_t in_f = input.shape().dim(1);
  const int64_t out_f = weight.shape().dim(0);
  DSX_REQUIRE(doutput.shape() == (Shape{N, out_f}),
              "linear_backward: doutput shape "
                  << doutput.shape().to_string());
  LinearGrads grads;
  // dW [out, in] = dY^T [out, N] x X [N, in]
  grads.dweight = matmul(doutput, input, true, false);
  if (need_dinput) {
    // dX [N, in] = dY [N, out] x W [out, in]
    grads.dinput = matmul(doutput, weight, false, false);
  }
  if (has_bias) {
    grads.dbias = Tensor(Shape{out_f});
    device::launch_kernel_chunks(
        "linear_dbias", out_f, {static_cast<double>(N), 8.0},
        [&](int64_t b, int64_t e) {
          for (int64_t j = b; j < e; ++j) {
            double acc = 0.0;
            for (int64_t n = 0; n < N; ++n) acc += doutput.data()[n * out_f + j];
            grads.dbias.data()[j] = static_cast<float>(acc);
          }
        });
  }
  (void)in_f;
  return grads;
}

}  // namespace dsx
