// Batch normalization over the channel axis of NCHW tensors.
//
// Every DSC block in the evaluated models is conv -> BN -> ReLU, so BN sits
// on the training path of all experiments. Training mode uses batch
// statistics and updates running estimates; eval mode uses the running
// estimates.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace dsx {

/// Learnable and running state of one BN layer (owned by the caller/layer).
struct BatchNormState {
  Tensor gamma;         // [C]
  Tensor beta;          // [C]
  Tensor running_mean;  // [C]
  Tensor running_var;   // [C]

  /// gamma=1, beta=0, running stats at N(0,1).
  static BatchNormState create(int64_t channels);
};

/// Per-batch cache required by the backward pass.
struct BatchNormCache {
  Tensor xhat;                  // normalized input, same shape as input
  std::vector<float> inv_std;   // [C]
};

/// Forward. In training mode fills `cache` (must be non-null) and updates
/// running statistics with `momentum`.
Tensor batchnorm_forward(const Tensor& input, BatchNormState& state,
                         BatchNormCache* cache, bool training,
                         float momentum = 0.1f, float eps = 1e-5f);

struct BatchNormGrads {
  Tensor dinput;
  Tensor dgamma;  // [C]
  Tensor dbeta;   // [C]
};

/// Backward for training-mode BN.
BatchNormGrads batchnorm_backward(const Tensor& doutput,
                                  const BatchNormState& state,
                                  const BatchNormCache& cache);

}  // namespace dsx
