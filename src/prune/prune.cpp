#include "prune/prune.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace dsx::prune {

namespace {

/// Decayable params are the weights; biases / BN affine set decay = false.
std::vector<nn::Param*> weight_params(const std::vector<nn::Param*>& params) {
  std::vector<nn::Param*> out;
  for (nn::Param* p : params) {
    if (p != nullptr && p->decay && p->value.defined()) out.push_back(p);
  }
  return out;
}

void check_fraction(double fraction, const char* what) {
  DSX_REQUIRE(fraction >= 0.0 && fraction < 1.0,
              what << " must be in [0, 1), got " << fraction);
}

}  // namespace

int64_t Mask::kept() const {
  int64_t count = 0;
  for (int64_t i = 0; i < keep.numel(); ++i) count += keep[i] != 0.0f;
  return count;
}

double Mask::sparsity() const {
  if (total() == 0) return 0.0;
  return 1.0 - static_cast<double>(kept()) / static_cast<double>(total());
}

Mask magnitude_mask(const Tensor& value, double sparsity) {
  DSX_REQUIRE(value.defined(), "magnitude_mask: undefined tensor");
  check_fraction(sparsity, "magnitude_mask: sparsity");
  const int64_t n = value.numel();
  const auto to_zero =
      static_cast<int64_t>(std::floor(sparsity * static_cast<double>(n)));
  Mask m{Tensor(value.shape(), 1.0f)};
  if (to_zero == 0) return m;

  // Order indices by (|w|, index): the zeroed count is exact even with ties.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + (to_zero - 1), order.end(),
                   [&](int64_t a, int64_t b) {
                     const float ma = std::abs(value[a]);
                     const float mb = std::abs(value[b]);
                     return ma != mb ? ma < mb : a < b;
                   });
  for (int64_t i = 0; i < to_zero; ++i) {
    m.keep[order[static_cast<size_t>(i)]] = 0.0f;
  }
  return m;
}

Mask filter_mask(const Tensor& value, double fraction) {
  DSX_REQUIRE(value.defined() && value.shape().rank() >= 2,
              "filter_mask: weight must have rank >= 2, got "
                  << value.shape().to_string());
  check_fraction(fraction, "filter_mask: fraction");
  const int64_t filters = value.shape().dim(0);
  const int64_t fsize = value.numel() / filters;
  const auto to_zero = static_cast<int64_t>(
      std::floor(fraction * static_cast<double>(filters)));
  Mask m{Tensor(value.shape(), 1.0f)};
  if (to_zero == 0) return m;

  std::vector<double> norms(static_cast<size_t>(filters));
  for (int64_t f = 0; f < filters; ++f) {
    double acc = 0.0;
    for (int64_t i = 0; i < fsize; ++i) {
      const float w = value[f * fsize + i];
      acc += static_cast<double>(w) * w;
    }
    norms[static_cast<size_t>(f)] = acc;
  }
  std::vector<int64_t> order(static_cast<size_t>(filters));
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + (to_zero - 1), order.end(),
                   [&](int64_t a, int64_t b) {
                     const double na = norms[static_cast<size_t>(a)];
                     const double nb = norms[static_cast<size_t>(b)];
                     return na != nb ? na < nb : a < b;
                   });
  for (int64_t i = 0; i < to_zero; ++i) {
    const int64_t f = order[static_cast<size_t>(i)];
    for (int64_t j = 0; j < fsize; ++j) m.keep[f * fsize + j] = 0.0f;
  }
  return m;
}

std::vector<Mask> global_magnitude_masks(
    const std::vector<nn::Param*>& params, double sparsity) {
  check_fraction(sparsity, "global_magnitude_masks: sparsity");
  int64_t total = 0;
  for (const nn::Param* p : params) {
    DSX_REQUIRE(p != nullptr && p->value.defined(),
                "global_magnitude_masks: null/undefined param");
    total += p->value.numel();
  }
  std::vector<Mask> masks;
  masks.reserve(params.size());
  for (const nn::Param* p : params) {
    masks.push_back({Tensor(p->value.shape(), 1.0f)});
  }
  const auto to_zero =
      static_cast<int64_t>(std::floor(sparsity * static_cast<double>(total)));
  if (to_zero == 0) return masks;

  // (|w|, param, offset) triples; one global nth_element.
  struct Entry {
    float mag;
    int32_t param;
    int64_t offset;
  };
  std::vector<Entry> entries;
  entries.reserve(static_cast<size_t>(total));
  for (size_t pi = 0; pi < params.size(); ++pi) {
    const Tensor& v = params[pi]->value;
    for (int64_t i = 0; i < v.numel(); ++i) {
      entries.push_back({std::abs(v[i]), static_cast<int32_t>(pi), i});
    }
  }
  std::nth_element(entries.begin(), entries.begin() + (to_zero - 1),
                   entries.end(), [](const Entry& a, const Entry& b) {
                     if (a.mag != b.mag) return a.mag < b.mag;
                     if (a.param != b.param) return a.param < b.param;
                     return a.offset < b.offset;
                   });
  for (int64_t i = 0; i < to_zero; ++i) {
    const Entry& e = entries[static_cast<size_t>(i)];
    masks[static_cast<size_t>(e.param)].keep[e.offset] = 0.0f;
  }
  return masks;
}

void apply_mask(nn::Param& param, const Mask& mask) {
  DSX_REQUIRE(param.value.shape() == mask.keep.shape(),
              "apply_mask: mask shape " << mask.keep.shape().to_string()
                                        << " vs param "
                                        << param.value.shape().to_string());
  for (int64_t i = 0; i < param.value.numel(); ++i) {
    param.value[i] *= mask.keep[i];
  }
}

double measured_sparsity(const Tensor& t) {
  DSX_REQUIRE(t.defined() && t.numel() > 0, "measured_sparsity: empty tensor");
  int64_t zeros = 0;
  for (int64_t i = 0; i < t.numel(); ++i) zeros += t[i] == 0.0f;
  return static_cast<double>(zeros) / static_cast<double>(t.numel());
}

Pruner::Pruner(std::vector<nn::Param*> params, std::vector<Mask> masks)
    : params_(std::move(params)), masks_(std::move(masks)) {
  reapply();
}

Pruner Pruner::magnitude(const std::vector<nn::Param*>& params,
                         double sparsity) {
  auto weights = weight_params(params);
  std::vector<Mask> masks;
  masks.reserve(weights.size());
  for (nn::Param* p : weights) {
    masks.push_back(magnitude_mask(p->value, sparsity));
  }
  return Pruner(std::move(weights), std::move(masks));
}

Pruner Pruner::global_magnitude(const std::vector<nn::Param*>& params,
                                double sparsity) {
  auto weights = weight_params(params);
  auto masks = global_magnitude_masks(weights, sparsity);
  return Pruner(std::move(weights), std::move(masks));
}

Pruner Pruner::structured(const std::vector<nn::Param*>& params,
                          double fraction) {
  std::vector<nn::Param*> filtered;
  for (nn::Param* p : weight_params(params)) {
    if (p->value.shape().rank() >= 2) filtered.push_back(p);
  }
  std::vector<Mask> masks;
  masks.reserve(filtered.size());
  for (nn::Param* p : filtered) {
    masks.push_back(filter_mask(p->value, fraction));
  }
  return Pruner(std::move(filtered), std::move(masks));
}

void Pruner::reapply() {
  for (size_t i = 0; i < params_.size(); ++i) {
    apply_mask(*params_[i], masks_[i]);
  }
}

double Pruner::overall_sparsity() const {
  int64_t total = 0, kept = 0;
  for (const Mask& m : masks_) {
    total += m.total();
    kept += m.kept();
  }
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(kept) / static_cast<double>(total);
}

}  // namespace dsx::prune
