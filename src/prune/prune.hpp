// Magnitude pruning on top of factorized kernels.
//
// The paper's §II-C positions sparse convolution / pruning as orthogonal to
// kernel factorization and names "factorized kernel + pruning" a promising
// direction; this module realises that composition. Two granularities,
// matching the paper's taxonomy:
//   * non-structured - per-weight magnitude masks (maximal reduction, no
//     layout regularity), per-tensor or with one global threshold;
//   * structured     - whole-filter masks (rows of weight dim 0), which keep
//     the computation regular on real hardware.
// Masks are binary float tensors applied multiplicatively; `Pruner` keeps
// them applied across finetuning steps (the standard prune -> mask ->
// retrain recipe), since an SGD step with momentum would otherwise
// resurrect pruned weights.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/param.hpp"
#include "tensor/tensor.hpp"

namespace dsx::prune {

/// Binary keep-mask over one parameter tensor (1 = keep, 0 = pruned).
struct Mask {
  Tensor keep;

  int64_t total() const { return keep.numel(); }
  int64_t kept() const;
  /// Fraction of weights zeroed by this mask.
  double sparsity() const;
};

/// Non-structured: zeroes exactly floor(sparsity * numel) weights of the
/// smallest magnitude (ties broken by index, so the count is exact).
/// Requires 0 <= sparsity < 1.
Mask magnitude_mask(const Tensor& value, double sparsity);

/// Structured: zeroes the floor(fraction * filters) rows of dim 0 with the
/// smallest L2 norm - whole-filter pruning.
Mask filter_mask(const Tensor& value, double fraction);

/// One magnitude threshold across all params (the global-budget variant:
/// layers with small weights absorb more of the sparsity). Returns one mask
/// per param, in order.
std::vector<Mask> global_magnitude_masks(
    const std::vector<nn::Param*>& params, double sparsity);

/// value *= keep (idempotent).
void apply_mask(nn::Param& param, const Mask& mask);

/// Fraction of exactly-zero entries.
double measured_sparsity(const Tensor& t);

/// Holds masks over a model's weight parameters and re-applies them after
/// every optimizer step during finetuning.
class Pruner {
 public:
  /// Per-tensor magnitude pruning of every decayable param (weights; biases
  /// and BN affine params are left dense).
  static Pruner magnitude(const std::vector<nn::Param*>& params,
                          double sparsity);
  /// One global threshold over all decayable params.
  static Pruner global_magnitude(const std::vector<nn::Param*>& params,
                                 double sparsity);
  /// Whole-filter pruning of decayable params with rank >= 2.
  static Pruner structured(const std::vector<nn::Param*>& params,
                           double fraction);

  /// Re-zeroes the pruned weights (call after each optimizer step).
  void reapply();

  /// Zero fraction across all masked parameters.
  double overall_sparsity() const;

  size_t masked_params() const { return params_.size(); }
  const std::vector<Mask>& masks() const { return masks_; }

 private:
  Pruner(std::vector<nn::Param*> params, std::vector<Mask> masks);

  std::vector<nn::Param*> params_;
  std::vector<Mask> masks_;
};

}  // namespace dsx::prune
