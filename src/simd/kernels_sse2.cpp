// SSE2 (width-4) instantiation of the generic simd kernels. SSE2 is part of
// the x86-64 baseline, so this TU needs no extra arch flags; vfmadd is
// mul+add per lane, which keeps the SCC/depthwise kernels bit-identical to
// the scalar library (tune::Fidelity::kBitExact).
#define DSX_SIMD_LEVEL 1
#define DSX_SIMD_NS sse2
#include "simd/vec.hpp"
#include "simd/kernels_impl.inc"
