// Per-ISA kernel entry points of the vectorized CPU backend (dsx::simd).
//
// One generic implementation (kernels_impl.inc, written against the Vec
// abstraction in vec.hpp) is compiled three times - kernels_scalar.cpp,
// kernels_sse2.cpp, kernels_avx2.cpp - each into its own namespace with its
// own per-file arch flags. This header declares the shared argument structs
// and the three `table()` accessors; dispatch.cpp picks a table at runtime
// from cpuid (+ the DSX_SIMD override) so the same binary runs on any
// x86-64 host and only ever executes instructions it supports.
//
// The structs are raw-pointer "launch parameter blocks" on purpose: the
// kernel TUs stay free of Tensor/ops dependencies, and the public wrappers
// (simd/gemm.hpp, simd/scc.hpp, simd/depthwise.hpp) do all shape validation
// before handing work down.
#pragma once

#include <cstdint>

namespace dsx::scc {
class ChannelWindowMap;
}

namespace dsx::simd {

/// C = alpha * op(A) * op(B) + beta * C, then the optional fused epilogue
/// (+row_bias per output row, ReLU). Row-major, same operand conventions as
/// dsx::gemm. pack_a/pack_b are caller-provided panel buffers of at least
/// gemm_pack_a_floats() / gemm_pack_b_floats(N) floats (drawn from a serving
/// Workspace on hot paths so steady state performs no heap allocation).
struct GemmCall {
  int64_t M = 0, N = 0, K = 0;
  float alpha = 1.0f, beta = 0.0f;
  bool trans_a = false, trans_b = false;
  const float* A = nullptr;
  int64_t lda = 0;
  const float* B = nullptr;
  int64_t ldb = 0;
  float* C = nullptr;
  int64_t ldc = 0;
  const float* row_bias = nullptr;  // optional, length M; added per C row
  bool relu = false;                // max(x, 0) after bias
  float* pack_a = nullptr;
  float* pack_b = nullptr;
};

/// Fused SCC forward (one filter = one cyclic input-channel window), with an
/// optional fused bias+ReLU epilogue. Mirrors scc::scc_forward_into's
/// geometry; `map` supplies the per-filter window starts.
struct SccCall {
  const float* input = nullptr;   // [N, Cin, H, W]
  const float* weight = nullptr;  // [Cout, gw]
  const float* bias = nullptr;    // optional [Cout]
  const scc::ChannelWindowMap* map = nullptr;
  int64_t N = 0, Cin = 0, H = 0, W = 0;
  int64_t Cout = 0, Ho = 0, Wo = 0, gw = 0, stride = 1;
  float* out = nullptr;  // [N, Cout, Ho, Wo]
  bool relu = false;
};

/// Depthwise KxK forward with optional fused bias+ReLU epilogue; mirrors
/// dsx::depthwise_forward_into's geometry.
struct DwCall {
  const float* input = nullptr;   // [N, C, H, W]
  const float* weight = nullptr;  // [C, 1, K, K]
  const float* bias = nullptr;    // optional [C]
  int64_t N = 0, C = 0, H = 0, W = 0, K = 0;
  int64_t Ho = 0, Wo = 0, stride = 1, pad = 0;
  float* out = nullptr;  // [N, C, Ho, Wo]
  bool relu = false;
};

/// One ISA level's kernel set. `compiled_level` is what the TU actually
/// achieved (a TU built without its arch flags degrades, see vec.hpp) -
/// dispatch refuses to hand out tables whose compiled level falls short.
struct KernelTable {
  int compiled_level = 0;  // 0 scalar, 1 sse2, 2 avx2+fma
  int vector_width = 1;    // float lanes per Vec
  void (*gemm)(const GemmCall&) = nullptr;
  void (*scc_forward)(const SccCall&) = nullptr;
  void (*depthwise_forward)(const DwCall&) = nullptr;
};

/// Documented accuracy bound for tune::Fidelity::kUlpBounded simd kernels:
/// every element of a kUlpBounded kernel's output is within this many ULP of
/// the scalar reference kernel's output (FMA contracts mul+add to one
/// rounding; blocked GEMM applies alpha/beta with different bracketing).
/// This is a RELATIVE-error bound: it holds whenever the accumulation does
/// not catastrophically cancel (zero-crossing sums shrink the result's
/// magnitude without shrinking the absolute error, inflating the ULP
/// distance unboundedly - true of any reordered summation, not just these
/// kernels). tests/test_simd.cpp enforces the bound property-style across
/// odd-shape tail sweeps on every ISA level the host offers, on
/// positive-bounded operands where the relative bound is meaningful.
inline constexpr int64_t kMaxUlp = 64;

// Cache-blocking constants shared by every ISA level. The micro-kernel is
// kGemmMR x (2 * vector_width); panel buffers are sized for the widest
// level (kGemmMaxNR) so one arena reservation serves whatever level the
// dispatcher picks at runtime.
inline constexpr int64_t kGemmMR = 6;     // micro-kernel rows
inline constexpr int64_t kGemmMaxNR = 16; // widest micro-kernel cols (AVX2)
inline constexpr int64_t kGemmKC = 256;   // K-panel depth
inline constexpr int64_t kGemmMC = 72;    // M-panel height (multiple of MR)

/// Floats GemmCall::pack_a must provide (one MC x KC panel, MR-padded).
inline int64_t gemm_pack_a_floats() { return kGemmMC * kGemmKC; }
/// Floats GemmCall::pack_b must provide for an N-column problem.
inline int64_t gemm_pack_b_floats(int64_t N) {
  const int64_t n_pad = (N + kGemmMaxNR - 1) / kGemmMaxNR * kGemmMaxNR;
  return kGemmKC * n_pad;
}

namespace scalar {
const KernelTable& table();
}
namespace sse2 {
const KernelTable& table();
}
namespace avx2 {
const KernelTable& table();
}

}  // namespace dsx::simd
