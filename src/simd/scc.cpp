#include "simd/scc.hpp"

#include "common/check.hpp"
#include "core/scc_kernels.hpp"

namespace dsx::simd {

void scc_forward_into(const Tensor& input, const Tensor& weight,
                      const Tensor* bias, const scc::ChannelWindowMap& map,
                      Tensor& out, bool fuse_relu, Isa isa) {
  const scc::SCCConfig& cfg = map.config();
  const Shape expect = scc::scc_output_shape(input.shape(), map);
  DSX_REQUIRE(out.shape() == expect,
              "simd::scc: out shape " << out.shape().to_string()
                                      << ", expected " << expect.to_string());
  const int64_t gw = map.group_width();
  DSX_REQUIRE(weight.shape() == (Shape{cfg.out_channels, gw}),
              "simd::scc: weight must be [Cout, gw], got "
                  << weight.shape().to_string());
  if (bias != nullptr) {
    DSX_REQUIRE(bias->shape() == Shape{cfg.out_channels},
                "simd::scc: bias must be [Cout]");
  }

  SccCall call;
  call.input = input.data();
  call.weight = weight.data();
  call.bias = bias != nullptr ? bias->data() : nullptr;
  call.map = &map;
  call.N = input.shape().n();
  call.Cin = input.shape().c();
  call.H = input.shape().h();
  call.W = input.shape().w();
  call.Cout = cfg.out_channels;
  call.Ho = expect.h();
  call.Wo = expect.w();
  call.gw = gw;
  call.stride = cfg.stride;
  call.out = out.data();
  call.relu = fuse_relu;
  kernels(isa).scc_forward(call);
}

}  // namespace dsx::simd
