// Scalar (width-1) instantiation of the generic simd kernels - the portable
// baseline every host can run, and the reference level DSX_SIMD=scalar
// forces for debugging.
#define DSX_SIMD_LEVEL 0
#define DSX_SIMD_NS scalar
#include "simd/vec.hpp"
#include "simd/kernels_impl.inc"
