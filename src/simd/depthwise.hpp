// Vectorized depthwise forward (dsx::simd).
//
// Same geometry contract as dsx::depthwise_forward_into. Stride-1 output
// rows are computed tap-by-tap over the valid column interval of each
// (ky, kx) tap - per element that is exactly the scalar kernel's bounds-
// checked accumulation order, so the SSE2 level is BIT-identical
// (tune::Fidelity::kBitExact) and the AVX2+FMA level is ULP-bounded.
// `fuse_relu` applies the bias+ReLU epilogue before the final store.
#pragma once

#include "ops/depthwise.hpp"
#include "simd/dispatch.hpp"
#include "tensor/tensor.hpp"

namespace dsx::simd {

/// Forward into a preallocated `out` of depthwise_output_shape(...).
void depthwise_forward_into(const Tensor& input, const Tensor& weight,
                            const Tensor* bias, const DepthwiseArgs& args,
                            Tensor& out, bool fuse_relu = false,
                            Isa isa = active_isa());

}  // namespace dsx::simd
