// AVX2+FMA (width-8) instantiation of the generic simd kernels.
//
// CMake compiles ONLY this file with `-mavx2 -mfma` (see the simd section of
// CMakeLists.txt); nothing here may be called unless runtime dispatch
// confirmed cpuid support, and no other TU may include code compiled with
// those flags - that is what keeps the binary runnable on pre-AVX2 x86-64.
// When the flags could not be applied (non-x86 target, unsupported
// compiler), vec.hpp degrades this TU and table().compiled_level reports
// what was actually built, so dispatch never advertises it.
#define DSX_SIMD_LEVEL 2
#define DSX_SIMD_NS avx2
#include "simd/vec.hpp"
#include "simd/kernels_impl.inc"
