#include "simd/gemm.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "ops/im2col.hpp"

namespace dsx::simd {

namespace {

void run_gemm_packed(bool trans_a, bool trans_b, int64_t M, int64_t N,
                     int64_t K, float alpha, const float* A, int64_t lda,
                     const float* B, int64_t ldb, float beta, float* C,
                     int64_t ldc, const float* row_bias, bool relu,
                     float* pack_a, float* pack_b, Isa isa) {
  GemmCall call;
  call.M = M;
  call.N = N;
  call.K = K;
  call.alpha = alpha;
  call.beta = beta;
  call.trans_a = trans_a;
  call.trans_b = trans_b;
  call.A = A;
  call.lda = lda;
  call.B = B;
  call.ldb = ldb;
  call.C = C;
  call.ldc = ldc;
  call.row_bias = row_bias;
  call.relu = relu;
  call.pack_a = pack_a;
  call.pack_b = pack_b;
  kernels(isa).gemm(call);
}

void run_gemm(bool trans_a, bool trans_b, int64_t M, int64_t N, int64_t K,
              float alpha, const float* A, int64_t lda, const float* B,
              int64_t ldb, float beta, float* C, int64_t ldc,
              const float* row_bias, bool relu, Workspace& ws, Isa isa) {
  DSX_REQUIRE(M >= 0 && N >= 0 && K >= 0, "simd::gemm: negative dimension");
  DSX_REQUIRE(A != nullptr && B != nullptr && C != nullptr,
              "simd::gemm: null operand");
  if (M == 0 || N == 0) return;
  run_gemm_packed(trans_a, trans_b, M, N, K, alpha, A, lda, B, ldb, beta, C,
                  ldc, row_bias, relu, ws.alloc(gemm_pack_a_floats()),
                  ws.alloc(gemm_pack_b_floats(N)), isa);
}

}  // namespace

int64_t gemm_workspace_floats(int64_t M, int64_t N, int64_t K) {
  (void)M;
  (void)K;
  return Workspace::aligned_size(gemm_pack_a_floats()) +
         Workspace::aligned_size(gemm_pack_b_floats(N));
}

void gemm_ws(bool trans_a, bool trans_b, int64_t M, int64_t N, int64_t K,
             float alpha, const float* A, int64_t lda, const float* B,
             int64_t ldb, float beta, float* C, int64_t ldc, Workspace& ws,
             Isa isa) {
  run_gemm(trans_a, trans_b, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc,
           /*row_bias=*/nullptr, /*relu=*/false, ws, isa);
}

void gemm(bool trans_a, bool trans_b, int64_t M, int64_t N, int64_t K,
          float alpha, const float* A, int64_t lda, const float* B,
          int64_t ldb, float beta, float* C, int64_t ldc, Isa isa) {
  // Thread-local arena: grows to the high-water mark once, then serves every
  // later call allocation-free (the ws overloads are for serving arenas).
  thread_local Workspace scratch;
  scratch.reset();
  gemm_ws(trans_a, trans_b, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc,
          scratch, isa);
}

void gemm_bias_relu_ws(bool trans_a, bool trans_b, int64_t M, int64_t N,
                       int64_t K, float alpha, const float* A, int64_t lda,
                       const float* B, int64_t ldb, float beta, float* C,
                       int64_t ldc, const float* row_bias, bool relu,
                       Workspace& ws, Isa isa) {
  run_gemm(trans_a, trans_b, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc,
           row_bias, relu, ws, isa);
}

int64_t conv2d_workspace_floats(const Shape& input, const Shape& weight,
                                const Conv2dArgs& args) {
  const Shape out = conv2d_output_shape(input, weight, args);
  const int64_t K = weight.dim(2);
  const int64_t planeo = out.h() * out.w();
  const int64_t rows_g = (input.c() / args.groups) * K * K;
  const int64_t cout_g = weight.dim(0) / args.groups;
  const bool is_1x1_dense = K == 1 && args.stride == 1 && args.pad == 0;
  const int64_t col = is_1x1_dense
                          ? 0
                          : Workspace::aligned_size(input.c() * K * K * planeo);
  return col + gemm_workspace_floats(cout_g, planeo, rows_g);
}

void conv2d_forward_into(const Tensor& input, const Tensor& weight,
                         const Tensor* bias, const Conv2dArgs& args,
                         Workspace& ws, Tensor& out, Isa isa) {
  const Shape expect = conv2d_output_shape(input.shape(), weight.shape(), args);
  DSX_REQUIRE(out.shape() == expect,
              "simd::conv2d: out shape " << out.shape().to_string()
                                         << ", expected " << expect.to_string());
  const int64_t N = input.shape().n(), Cin = input.shape().c();
  const int64_t H = input.shape().h(), W = input.shape().w();
  const int64_t Cout = weight.shape().dim(0), K = weight.shape().dim(2);
  const int64_t Ho = expect.h(), Wo = expect.w();
  const int64_t planeo = Ho * Wo;
  const int64_t groups = args.groups;
  const int64_t cin_g = Cin / groups, cout_g = Cout / groups;
  const int64_t rows_g = cin_g * K * K;
  if (bias != nullptr) {
    DSX_REQUIRE(bias->shape() == Shape{Cout},
                "simd::conv2d: bias shape " << bias->shape().to_string());
  }
  const bool is_1x1_dense = K == 1 && args.stride == 1 && args.pad == 0;

  float* col = is_1x1_dense ? nullptr : ws.alloc(Cin * K * K * planeo);
  // Pack panels allocated once and reused across every (image, group) GEMM -
  // a serving arena sees exactly conv2d_workspace_floats() of draw per call.
  float* pack_a = ws.alloc(gemm_pack_a_floats());
  float* pack_b = ws.alloc(gemm_pack_b_floats(planeo));
  for (int64_t n = 0; n < N; ++n) {
    const float* in_n = input.data() + n * Cin * H * W;
    float* out_n = out.data() + n * Cout * planeo;
    const float* lowered = in_n;
    if (!is_1x1_dense) {
      im2col(in_n, Cin, H, W, K, args.stride, args.pad, col);
      lowered = col;
    }
    for (int64_t g = 0; g < groups; ++g) {
      run_gemm_packed(
          false, false, cout_g, planeo, rows_g, 1.0f,
          weight.data() + g * cout_g * rows_g, rows_g,
          lowered + g * rows_g * planeo, planeo, 0.0f,
          out_n + g * cout_g * planeo, planeo,
          bias != nullptr ? bias->data() + g * cout_g : nullptr,
          /*relu=*/false, pack_a, pack_b, isa);
    }
  }
}

}  // namespace dsx::simd
