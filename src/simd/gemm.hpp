// Packed, register-blocked GEMM of the vectorized CPU backend (dsx::simd).
//
// Same contract as dsx::gemm (C = alpha*op(A)*op(B) + beta*C, row-major),
// implemented the way Snytsar's commodity-hardware primitives and the tiled
// composable-kernel structure prescribe: A and B are repacked into
// cache-resident panels, a kGemmMR x (2*vector_width) micro-kernel keeps the
// accumulators in registers (FMA at AVX2 level), and masked partial stores
// handle the M/N tails so odd shapes never read or write out of bounds.
//
// Numerics: ULP-bounded relative to dsx::gemm, NOT bit-identical (see
// kernels.hpp kMaxUlp) - which is why the tuner only admits the simd GEMM
// candidates under CompileOptions.allow_fast_math / Session fast-math.
//
// The packing buffers come from a Workspace so serving hot paths stay
// allocation-free; the plain overload uses a thread-local scratch arena.
#pragma once

#include <cstdint>

#include "ops/conv2d.hpp"
#include "simd/dispatch.hpp"
#include "tensor/tensor.hpp"
#include "tensor/workspace.hpp"

namespace dsx::simd {

/// Floats of Workspace scratch gemm_ws draws for an (M, N, K) problem.
int64_t gemm_workspace_floats(int64_t M, int64_t N, int64_t K);

/// Packed GEMM with pack panels drawn from `ws`. `isa` defaults to the
/// runtime-dispatched level; passing an explicit level (tests, tuner
/// candidates) is clamped to what this host can execute.
void gemm_ws(bool trans_a, bool trans_b, int64_t M, int64_t N, int64_t K,
             float alpha, const float* A, int64_t lda, const float* B,
             int64_t ldb, float beta, float* C, int64_t ldc, Workspace& ws,
             Isa isa = active_isa());

/// Drop-in signature twin of dsx::gemm (thread-local scratch arena).
void gemm(bool trans_a, bool trans_b, int64_t M, int64_t N, int64_t K,
          float alpha, const float* A, int64_t lda, const float* B,
          int64_t ldb, float beta, float* C, int64_t ldc,
          Isa isa = active_isa());

/// GEMM with the fused per-row bias + optional ReLU epilogue applied at the
/// final K-block store (row_bias may be null, length M otherwise).
void gemm_bias_relu_ws(bool trans_a, bool trans_b, int64_t M, int64_t N,
                       int64_t K, float alpha, const float* A, int64_t lda,
                       const float* B, int64_t ldb, float beta, float* C,
                       int64_t ldc, const float* row_bias, bool relu,
                       Workspace& ws, Isa isa = active_isa());

/// conv2d forward on the im2col + packed-GEMM route with the bias folded
/// into the GEMM epilogue. Same shape contract as conv2d_forward_into;
/// ULP-bounded relative to it (registered as a tune candidate under
/// fast-math). Scratch (columns + pack panels) comes from `ws`.
void conv2d_forward_into(const Tensor& input, const Tensor& weight,
                         const Tensor* bias, const Conv2dArgs& args,
                         Workspace& ws, Tensor& out, Isa isa = active_isa());

/// Floats of scratch simd::conv2d_forward_into draws from the workspace.
int64_t conv2d_workspace_floats(const Shape& input, const Shape& weight,
                                const Conv2dArgs& args);

}  // namespace dsx::simd
