// Runtime ISA dispatch for the vectorized CPU backend (dsx::simd).
//
// The binary carries three compilations of every simd kernel (scalar, SSE2,
// AVX2+FMA; see kernels.hpp) and picks one at runtime:
//
//   detect_isa()  - the widest level BOTH the executing CPU (cpuid) and this
//                   build (per-file arch flags) support;
//   active_isa()  - the level dispatch actually uses. Initialised once from
//                   the DSX_SIMD environment override (scalar|sse2|avx2,
//                   clamped to detect_isa() with a stderr warning), else
//                   detect_isa(). set_active_isa()/ScopedIsa re-pin it for
//                   tests and tools.
//
// tune::KernelRegistry enumerates one candidate per level <= active_isa()
// (variants "simd_sse2", "simd_avx2"), so tuning records name the exact ISA
// they were measured on and a record from a wider host degrades to the
// default kernel instead of executing unsupported instructions.
#pragma once

#include <string>

#include "simd/kernels.hpp"

namespace dsx::simd {

enum class Isa : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

const char* isa_name(Isa isa);
/// Parses "scalar" / "sse2" / "avx2"; throws dsx::Error otherwise.
Isa parse_isa(const std::string& name);

/// Widest level supported by both the running CPU and this build.
Isa detect_isa();

/// Level dispatch uses; first call applies the DSX_SIMD override.
Isa active_isa();
/// Re-pins active_isa(), clamped to detect_isa(). Returns the applied level.
Isa set_active_isa(Isa isa);

/// RAII active-ISA override (tests sweep every level the host offers).
class ScopedIsa {
 public:
  explicit ScopedIsa(Isa isa);
  ~ScopedIsa();
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;

 private:
  Isa saved_;
};

/// True when `isa` can execute on this host with this build.
bool isa_available(Isa isa);

/// Kernel table for a level, clamped to detect_isa() - the returned table
/// always executes safely on this host.
const KernelTable& kernels(Isa isa);

}  // namespace dsx::simd
