#include "simd/depthwise.hpp"

#include "common/check.hpp"

namespace dsx::simd {

void depthwise_forward_into(const Tensor& input, const Tensor& weight,
                            const Tensor* bias, const DepthwiseArgs& args,
                            Tensor& out, bool fuse_relu, Isa isa) {
  const Shape expect =
      depthwise_output_shape(input.shape(), weight.shape(), args);
  DSX_REQUIRE(out.shape() == expect,
              "simd::depthwise: out shape " << out.shape().to_string()
                                            << ", expected "
                                            << expect.to_string());
  if (bias != nullptr) {
    DSX_REQUIRE(bias->shape() == Shape{input.shape().c()},
                "simd::depthwise: bad bias shape");
  }

  DwCall call;
  call.input = input.data();
  call.weight = weight.data();
  call.bias = bias != nullptr ? bias->data() : nullptr;
  call.N = input.shape().n();
  call.C = input.shape().c();
  call.H = input.shape().h();
  call.W = input.shape().w();
  call.K = weight.shape().dim(2);
  call.Ho = expect.h();
  call.Wo = expect.w();
  call.stride = args.stride;
  call.pad = args.pad;
  call.out = out.data();
  call.relu = fuse_relu;
  kernels(isa).depthwise_forward(call);
}

}  // namespace dsx::simd
