// Registration of the dsx::simd kernels into tune::KernelRegistry.
//
// Called once by the KernelRegistry constructor, after the built-in
// candidates: the simd factories append one candidate per ISA level in
// (active_isa() clamped to the host, levels above scalar) to the SCC,
// conv2d and depthwise forward families. Variants are named by level
// ("simd_sse2", "simd_avx2") so tuning-cache records pin the exact ISA they
// were measured on - a record replayed on a narrower host simply fails the
// registry lookup and degrades to the default kernel.
//
// Fidelity per tune contract: SCC/depthwise at SSE2 level are kBitExact
// (mul+add per lane in the scalar accumulation order); everything on the
// FMA path, and every packed-GEMM route, is kUlpBounded and therefore only
// enumerable under fast-math.
#pragma once

namespace dsx::tune {
class KernelRegistry;
}

namespace dsx::simd {

void register_simd_kernels(tune::KernelRegistry& registry);

}  // namespace dsx::simd
