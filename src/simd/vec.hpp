// Fixed-width Vec<float> abstraction for the per-ISA kernel translation
// units (dsx::simd).
//
// This header is NOT meant for general inclusion: a kernel TU defines
//   DSX_SIMD_LEVEL   0 = scalar, 1 = SSE2, 2 = AVX2+FMA
//   DSX_SIMD_NS      scalar | sse2 | avx2
// and then includes it, getting a `Vec` type plus load/store/arithmetic
// helpers inside `namespace dsx::simd::DSX_SIMD_NS`. Because each TU uses a
// distinct namespace, three copies of the same generic kernel body
// (kernels_impl.inc) coexist in one binary without ODR violations, and only
// the TU compiled with `-mavx2 -mfma` ever emits AVX2 instructions - the
// binary stays runnable on any x86-64 (or non-x86) host, with dispatch.cpp
// picking the widest table the CPU supports at runtime.
//
// Numerical contract (load-bearing for tune::Fidelity):
//   * level 0/1 `fmadd(a, b, c)` is add(mul(a, b), c) - two IEEE roundings
//     per lane, the exact op sequence of the scalar kernels. Lanes are
//     independent, so a kernel that preserves the scalar per-element
//     accumulation order is BIT-identical at these levels.
//   * level 2 `fmadd` is a true fused multiply-add (one rounding). Kernels
//     built on it are only ULP-bounded relative to the scalar reference
//     (tune::Fidelity::kUlpBounded; see simd::kMaxUlp).
//
// If the requested intrinsics are unavailable at compile time (non-x86
// target, or the build system could not apply the per-file arch flags), the
// level silently degrades to the best available; DSX_SIMD_COMPILED_LEVEL
// records what was actually achieved so the dispatch table never advertises
// an ISA the TU cannot execute.
#pragma once

#include <cstdint>

#ifndef DSX_SIMD_LEVEL
#error "define DSX_SIMD_LEVEL (0|1|2) before including simd/vec.hpp"
#endif
#ifndef DSX_SIMD_NS
#error "define DSX_SIMD_NS (scalar|sse2|avx2) before including simd/vec.hpp"
#endif

// Degrade gracefully when the toolchain/target cannot honor the request.
#if DSX_SIMD_LEVEL >= 2 && defined(__AVX2__) && defined(__FMA__)
#define DSX_SIMD_COMPILED_LEVEL 2
#include <immintrin.h>
#elif DSX_SIMD_LEVEL >= 1 && (defined(__SSE2__) || defined(_M_X64))
#define DSX_SIMD_COMPILED_LEVEL 1
#include <emmintrin.h>
#else
#define DSX_SIMD_COMPILED_LEVEL 0
#endif

namespace dsx::simd::DSX_SIMD_NS {

#if DSX_SIMD_COMPILED_LEVEL == 2

inline constexpr int kWidth = 8;

struct Vec {
  __m256 v;
};

inline Vec vzero() { return {_mm256_setzero_ps()}; }
inline Vec vbroadcast(float x) { return {_mm256_set1_ps(x)}; }
inline Vec vload(const float* p) { return {_mm256_loadu_ps(p)}; }
inline void vstore(float* p, Vec a) { _mm256_storeu_ps(p, a.v); }
inline Vec vadd(Vec a, Vec b) { return {_mm256_add_ps(a.v, b.v)}; }
inline Vec vmul(Vec a, Vec b) { return {_mm256_mul_ps(a.v, b.v)}; }
inline Vec vmax(Vec a, Vec b) { return {_mm256_max_ps(a.v, b.v)}; }
/// One-rounding fused multiply-add: a*b + c.
inline Vec vfmadd(Vec a, Vec b, Vec c) {
  return {_mm256_fmadd_ps(a.v, b.v, c.v)};
}

/// Static lane-mask table for the tail paths (one aligned load instead of
/// rebuilding the mask lane-by-lane on every call - the SCC/depthwise inner
/// loops hit a partial op once per tap on tail tiles).
inline __m256i tail_mask(int64_t n) {
  alignas(32) static const int32_t kMasks[8][8] = {
      {0, 0, 0, 0, 0, 0, 0, 0},
      {-1, 0, 0, 0, 0, 0, 0, 0},
      {-1, -1, 0, 0, 0, 0, 0, 0},
      {-1, -1, -1, 0, 0, 0, 0, 0},
      {-1, -1, -1, -1, 0, 0, 0, 0},
      {-1, -1, -1, -1, -1, 0, 0, 0},
      {-1, -1, -1, -1, -1, -1, 0, 0},
      {-1, -1, -1, -1, -1, -1, -1, 0},
  };
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(kMasks[n]));
}

/// Loads the first n lanes (0 < n <= kWidth); missing lanes read as zero.
inline Vec vload_partial(const float* p, int64_t n) {
  if (n >= kWidth) return vload(p);
  return {_mm256_maskload_ps(p, tail_mask(n))};
}

/// Stores the first n lanes (0 < n <= kWidth); the rest of memory untouched.
inline void vstore_partial(float* p, Vec a, int64_t n) {
  if (n >= kWidth) {
    vstore(p, a);
    return;
  }
  _mm256_maskstore_ps(p, tail_mask(n), a.v);
}

#elif DSX_SIMD_COMPILED_LEVEL == 1

inline constexpr int kWidth = 4;

struct Vec {
  __m128 v;
};

inline Vec vzero() { return {_mm_setzero_ps()}; }
inline Vec vbroadcast(float x) { return {_mm_set1_ps(x)}; }
inline Vec vload(const float* p) { return {_mm_loadu_ps(p)}; }
inline void vstore(float* p, Vec a) { _mm_storeu_ps(p, a.v); }
inline Vec vadd(Vec a, Vec b) { return {_mm_add_ps(a.v, b.v)}; }
inline Vec vmul(Vec a, Vec b) { return {_mm_mul_ps(a.v, b.v)}; }
inline Vec vmax(Vec a, Vec b) { return {_mm_max_ps(a.v, b.v)}; }
/// Two roundings (mul then add) - the scalar op sequence, per lane.
inline Vec vfmadd(Vec a, Vec b, Vec c) {
  return {_mm_add_ps(_mm_mul_ps(a.v, b.v), c.v)};
}

inline Vec vload_partial(const float* p, int64_t n) {
  if (n >= kWidth) return vload(p);
  alignas(16) float tmp[kWidth] = {};
  for (int64_t i = 0; i < n; ++i) tmp[i] = p[i];
  return {_mm_load_ps(tmp)};
}

inline void vstore_partial(float* p, Vec a, int64_t n) {
  if (n >= kWidth) {
    vstore(p, a);
    return;
  }
  alignas(16) float tmp[kWidth];
  _mm_store_ps(tmp, a.v);
  for (int64_t i = 0; i < n; ++i) p[i] = tmp[i];
}

#else  // scalar fallback

inline constexpr int kWidth = 1;

struct Vec {
  float v;
};

inline Vec vzero() { return {0.0f}; }
inline Vec vbroadcast(float x) { return {x}; }
inline Vec vload(const float* p) { return {*p}; }
inline void vstore(float* p, Vec a) { *p = a.v; }
inline Vec vadd(Vec a, Vec b) { return {a.v + b.v}; }
inline Vec vmul(Vec a, Vec b) { return {a.v * b.v}; }
inline Vec vmax(Vec a, Vec b) { return {a.v > b.v ? a.v : b.v}; }
inline Vec vfmadd(Vec a, Vec b, Vec c) { return {a.v * b.v + c.v}; }

inline Vec vload_partial(const float* p, int64_t n) {
  return n >= 1 ? vload(p) : vzero();
}
inline void vstore_partial(float* p, Vec a, int64_t n) {
  if (n >= 1) vstore(p, a);
}

#endif

}  // namespace dsx::simd::DSX_SIMD_NS
