#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/check.hpp"
#include "obs/journal.hpp"

namespace dsx::simd {

namespace {

/// cpuid-level hardware support (ignores what this build compiled).
bool hardware_supports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
#if defined(__x86_64__) || defined(_M_X64)
      return true;  // SSE2 is part of the x86-64 baseline
#elif (defined(__GNUC__) || defined(__clang__)) && defined(__i386__)
      return __builtin_cpu_supports("sse2");
#else
      return false;
#endif
    case Isa::kAvx2:
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
  }
  return false;
}

const KernelTable& raw_table(Isa isa) {
  switch (isa) {
    case Isa::kAvx2:
      return avx2::table();
    case Isa::kSse2:
      return sse2::table();
    case Isa::kScalar:
      break;
  }
  return scalar::table();
}

Isa compute_detected() {
  for (const Isa isa : {Isa::kAvx2, Isa::kSse2}) {
    // Both the CPU and the build must deliver the level: a TU compiled
    // without its arch flags degrades (vec.hpp) and reports a lower
    // compiled_level, which must never be advertised as the real thing.
    if (hardware_supports(isa) &&
        raw_table(isa).compiled_level == static_cast<int>(isa)) {
      return isa;
    }
  }
  return Isa::kScalar;
}

Isa clamp_to_detected(Isa isa, const char* origin) {
  const Isa cap = detect_isa();
  if (static_cast<int>(isa) <= static_cast<int>(cap)) return isa;
  std::fprintf(stderr,
               "dsx::simd: %s requested %s but this host/build caps at %s; "
               "using %s\n",
               origin, isa_name(isa), isa_name(cap), isa_name(cap));
  return cap;
}

std::atomic<int>& active_level() {
  static std::atomic<int> level = [] {
    Isa isa = detect_isa();
    const char* env = std::getenv("DSX_SIMD");
    if (env != nullptr) {
      isa = clamp_to_detected(parse_isa(env), "DSX_SIMD");
    }
    // One-shot journal entry: which level this process starts at, and why.
    std::string detail = std::string("detected=") + isa_name(detect_isa()) +
                         " active=" + isa_name(isa);
    if (env != nullptr) detail += std::string(" (DSX_SIMD=") + env + ")";
    obs::Journal::global().record(obs::EventKind::kIsaSelect, "simd", detail);
    return static_cast<int>(isa);
  }();
  return level;
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Isa parse_isa(const std::string& name) {
  if (name == "scalar") return Isa::kScalar;
  if (name == "sse2") return Isa::kSse2;
  if (name == "avx2") return Isa::kAvx2;
  DSX_REQUIRE(false, "simd: unknown ISA '" << name
                                           << "' (expected scalar|sse2|avx2)");
  return Isa::kScalar;  // unreachable
}

Isa detect_isa() {
  static const Isa detected = compute_detected();
  return detected;
}

Isa active_isa() {
  return static_cast<Isa>(active_level().load(std::memory_order_relaxed));
}

Isa set_active_isa(Isa isa) {
  const Isa applied = clamp_to_detected(isa, "set_active_isa");
  active_level().store(static_cast<int>(applied), std::memory_order_relaxed);
  return applied;
}

ScopedIsa::ScopedIsa(Isa isa) : saved_(active_isa()) { set_active_isa(isa); }

ScopedIsa::~ScopedIsa() { set_active_isa(saved_); }

bool isa_available(Isa isa) {
  return static_cast<int>(isa) <= static_cast<int>(detect_isa());
}

const KernelTable& kernels(Isa isa) {
  if (!isa_available(isa)) isa = detect_isa();
  return raw_table(isa);
}

}  // namespace dsx::simd
