#include "simd/register.hpp"

#include <vector>

#include "simd/depthwise.hpp"
#include "simd/gemm.hpp"
#include "simd/scc.hpp"
#include "tune/registry.hpp"

namespace dsx::simd {

namespace {

/// Vector ISA levels worth a candidate right now: every level above scalar
/// up to active_isa(). Evaluated at enumeration time, so a ScopedIsa /
/// DSX_SIMD override reshapes the menu immediately.
std::vector<Isa> candidate_levels() {
  std::vector<Isa> levels;
  const int active = static_cast<int>(active_isa());
  for (int l = static_cast<int>(Isa::kSse2); l <= active; ++l) {
    levels.push_back(static_cast<Isa>(l));
  }
  return levels;
}

std::string variant_name(Isa isa) {
  return std::string("simd_") + isa_name(isa);
}

}  // namespace

void register_simd_kernels(tune::KernelRegistry& registry) {
  // SCC forward: SSE2 preserves the scalar per-element op sequence
  // (kBitExact, admissible in strict mode); AVX2 uses FMA (kUlpBounded).
  registry.register_scc_factory(
      [](const tune::ProblemKey& key, std::vector<tune::SCCCandidate>& out) {
        (void)key;
        for (const Isa isa : candidate_levels()) {
          tune::SCCCandidate cand;
          cand.variant = variant_name(isa);
          cand.fidelity = isa == Isa::kSse2 ? tune::Fidelity::kBitExact
                                            : tune::Fidelity::kUlpBounded;
          cand.run = [isa](const tune::SCCProblem& p) {
            scc_forward_into(*p.input, *p.weight, p.bias, *p.map, *p.out,
                             /*fuse_relu=*/false, isa);
          };
          out.push_back(std::move(cand));
        }
      });

  // conv2d forward: im2col + packed GEMM with the bias folded into the GEMM
  // epilogue. The blocked accumulation is kUlpBounded at every level.
  registry.register_conv_factory(
      [](const tune::ProblemKey& key, std::vector<tune::ConvCandidate>& out) {
        const Shape in_shape = make_nchw(key.n, key.c, key.h, key.w);
        const Shape w_shape{key.cout, key.c / key.groups, key.kernel,
                            key.kernel};
        const Conv2dArgs args{key.stride, key.pad, key.groups};
        // Qualified: ADL would also find dsx::conv2d_workspace_floats.
        const int64_t scratch =
            simd::conv2d_workspace_floats(in_shape, w_shape, args);
        for (const Isa isa : candidate_levels()) {
          tune::ConvCandidate cand;
          cand.variant = variant_name(isa);
          cand.fidelity = tune::Fidelity::kUlpBounded;
          cand.scratch_floats = scratch;
          cand.run = [isa](const tune::ConvProblem& p) {
            conv2d_forward_into(*p.input, *p.weight, p.bias, *p.args, *p.ws,
                                *p.out, isa);
          };
          out.push_back(std::move(cand));
        }
      });

  // depthwise forward: same fidelity split as SCC.
  registry.register_depthwise_factory(
      [](const tune::ProblemKey& key,
         std::vector<tune::DepthwiseCandidate>& out) {
        (void)key;
        for (const Isa isa : candidate_levels()) {
          tune::DepthwiseCandidate cand;
          cand.variant = variant_name(isa);
          cand.fidelity = isa == Isa::kSse2 ? tune::Fidelity::kBitExact
                                            : tune::Fidelity::kUlpBounded;
          cand.run = [isa](const tune::DepthwiseProblem& p) {
            depthwise_forward_into(*p.input, *p.weight, p.bias, *p.args,
                                   *p.out, /*fuse_relu=*/false, isa);
          };
          out.push_back(std::move(cand));
        }
      });
}

}  // namespace dsx::simd
