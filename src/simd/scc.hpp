// Vectorized fused SCC forward (dsx::simd).
//
// Same geometry contract as scc::scc_forward_into: one filter = one cyclic
// input-channel window, output-centric, no data duplication. The stride-1
// spatial plane is the contiguous axis, so each output tile keeps its
// accumulator in a vector register while the gw taps stream whole channel
// planes; `fuse_relu` applies the bias+ReLU epilogue before the store.
//
// Fidelity: at SSE2 level (and scalar) the per-element accumulation order
// and op sequence match the scalar fused kernel exactly - BIT-identical
// (tune::Fidelity::kBitExact). At AVX2 level FMA contracts each tap to one
// rounding - ULP-bounded (kMaxUlp).
#pragma once

#include "core/channel_map.hpp"
#include "simd/dispatch.hpp"
#include "tensor/tensor.hpp"

namespace dsx::simd {

/// Forward into a preallocated `out` of scc_output_shape(input, map).
void scc_forward_into(const Tensor& input, const Tensor& weight,
                      const Tensor* bias, const scc::ChannelWindowMap& map,
                      Tensor& out, bool fuse_relu = false,
                      Isa isa = active_isa());

}  // namespace dsx::simd
