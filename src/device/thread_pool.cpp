#include "device/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/check.hpp"

namespace dsx::device {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  // The calling thread acts as worker 0; spawn n-1 helpers.
  tasks_.resize(n > 0 ? n - 1 : 0);
  workers_.reserve(tasks_.size());
  for (unsigned i = 0; i < tasks_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(unsigned worker_index) {
  uint64_t seen_generation = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] {
        return stop_ || (generation_ != seen_generation &&
                         tasks_[worker_index].fn != nullptr);
      });
      if (stop_) return;
      seen_generation = generation_;
      task = tasks_[worker_index];
      tasks_[worker_index].fn = nullptr;
    }
    std::exception_ptr err;
    if (task.begin < task.end) {
      try {
        (*task.fn)(task.begin, task.end);
      } catch (...) {
        err = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run_chunks(int64_t total,
                            const std::function<void(int64_t, int64_t)>& fn) {
  DSX_REQUIRE(total >= 0, "run_chunks: negative range");
  if (total == 0) return;
  const int64_t nthreads = static_cast<int64_t>(size());
  const int64_t chunk = (total + nthreads - 1) / nthreads;

  // Chunk 0 runs on the calling thread; the rest go to workers.
  int64_t my_end = std::min<int64_t>(chunk, total);
  {
    std::lock_guard<std::mutex> lock(mu_);
    DSX_CHECK(pending_ == 0, "run_chunks is not reentrant");
    first_error_ = nullptr;
    unsigned used = 0;
    for (unsigned i = 0; i < tasks_.size(); ++i) {
      const int64_t b = std::min<int64_t>(chunk * (i + 1), total);
      const int64_t e = std::min<int64_t>(chunk * (i + 2), total);
      tasks_[i] = Task{&fn, b, e};
      ++used;
    }
    pending_ = used;
    ++generation_;
  }
  cv_work_.notify_all();

  std::exception_ptr my_err;
  try {
    if (my_end > 0) fn(0, my_end);
  } catch (...) {
    my_err = std::current_exception();
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    if (!first_error_ && my_err) first_error_ = my_err;
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
  if (my_err) std::rethrow_exception(my_err);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([]() -> unsigned {
    if (const char* env = std::getenv("DSX_THREADS")) {
      const int v = std::atoi(env);
      if (v > 0) return static_cast<unsigned>(v);
    }
    return 0;
  }());
  return pool;
}

namespace {
// Lane binding for the calling thread (see PoolScope); null = global pool.
thread_local ThreadPool* t_current_pool = nullptr;
}  // namespace

ThreadPool& ThreadPool::current() {
  return t_current_pool != nullptr ? *t_current_pool : global();
}

PoolScope::PoolScope(ThreadPool& pool) : saved_(t_current_pool) {
  t_current_pool = &pool;
}

PoolScope::~PoolScope() { t_current_pool = saved_; }

}  // namespace dsx::device
