#include "device/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#include "common/check.hpp"

namespace dsx::device {

namespace {

int64_t mono_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Registry of live NAMED pools, for pool_stats(). Ctor/dtor rate, so a
// mutex-guarded vector is plenty.
std::mutex& pools_mu() {
  static std::mutex mu;
  return mu;
}
std::vector<ThreadPool*>& named_pools() {
  static std::vector<ThreadPool*> pools;
  return pools;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads, std::string name)
    : name_(std::move(name)) {
  unsigned n = threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  // The calling thread acts as worker 0; spawn n-1 helpers.
  tasks_.resize(n > 0 ? n - 1 : 0);
  workers_.reserve(tasks_.size());
  for (unsigned i = 0; i < tasks_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  if (!name_.empty()) {
    std::lock_guard<std::mutex> lock(pools_mu());
    named_pools().push_back(this);
  }
}

ThreadPool::~ThreadPool() {
  if (!name_.empty()) {
    std::lock_guard<std::mutex> lock(pools_mu());
    auto& pools = named_pools();
    pools.erase(std::remove(pools.begin(), pools.end(), this), pools.end());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

std::vector<ThreadPool::PoolStats> ThreadPool::pool_stats() {
  std::vector<PoolStats> out;
  std::lock_guard<std::mutex> lock(pools_mu());
  out.reserve(named_pools().size());
  for (const ThreadPool* p : named_pools()) {
    out.push_back({p->name(), p->size(), p->busy_ns(), p->idle_ns()});
  }
  return out;
}

void ThreadPool::worker_loop(unsigned worker_index) {
  uint64_t seen_generation = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      const auto ready = [&] {
        return stop_ || (generation_ != seen_generation &&
                         tasks_[worker_index].fn != nullptr);
      };
      if (pool_accounting_enabled()) {
        const int64_t t0 = mono_ns();
        cv_work_.wait(lock, ready);
        idle_ns_.fetch_add(mono_ns() - t0, std::memory_order_relaxed);
      } else {
        cv_work_.wait(lock, ready);
      }
      if (stop_) return;
      seen_generation = generation_;
      task = tasks_[worker_index];
      tasks_[worker_index].fn = nullptr;
    }
    std::exception_ptr err;
    if (task.begin < task.end) {
      const bool acct = pool_accounting_enabled();
      const int64_t t0 = acct ? mono_ns() : 0;
      try {
        (*task.fn)(task.begin, task.end);
      } catch (...) {
        err = std::current_exception();
      }
      if (acct) busy_ns_.fetch_add(mono_ns() - t0, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run_chunks(int64_t total,
                            const std::function<void(int64_t, int64_t)>& fn) {
  DSX_REQUIRE(total >= 0, "run_chunks: negative range");
  if (total == 0) return;
  const int64_t nthreads = static_cast<int64_t>(size());
  const int64_t chunk = (total + nthreads - 1) / nthreads;

  // Chunk 0 runs on the calling thread; the rest go to workers.
  int64_t my_end = std::min<int64_t>(chunk, total);
  {
    std::lock_guard<std::mutex> lock(mu_);
    DSX_CHECK(pending_ == 0, "run_chunks is not reentrant");
    first_error_ = nullptr;
    unsigned used = 0;
    for (unsigned i = 0; i < tasks_.size(); ++i) {
      const int64_t b = std::min<int64_t>(chunk * (i + 1), total);
      const int64_t e = std::min<int64_t>(chunk * (i + 2), total);
      tasks_[i] = Task{&fn, b, e};
      ++used;
    }
    pending_ = used;
    ++generation_;
  }
  cv_work_.notify_all();

  std::exception_ptr my_err;
  {
    const bool acct = pool_accounting_enabled();
    const int64_t t0 = acct ? mono_ns() : 0;
    try {
      if (my_end > 0) fn(0, my_end);
    } catch (...) {
      my_err = std::current_exception();
    }
    if (acct) busy_ns_.fetch_add(mono_ns() - t0, std::memory_order_relaxed);
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    if (!first_error_ && my_err) first_error_ = my_err;
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
  if (my_err) std::rethrow_exception(my_err);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(
      []() -> unsigned {
        if (const char* env = std::getenv("DSX_THREADS")) {
          const int v = std::atoi(env);
          if (v > 0) return static_cast<unsigned>(v);
        }
        return 0;
      }(),
      "global");
  return pool;
}

namespace {
// Lane binding for the calling thread (see PoolScope); null = global pool.
thread_local ThreadPool* t_current_pool = nullptr;
}  // namespace

ThreadPool& ThreadPool::current() {
  return t_current_pool != nullptr ? *t_current_pool : global();
}

PoolScope::PoolScope(ThreadPool& pool) : saved_(t_current_pool) {
  t_current_pool = &pool;
}

PoolScope::~PoolScope() { t_current_pool = saved_; }

}  // namespace dsx::device
