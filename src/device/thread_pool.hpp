// Persistent worker pool.
//
// This is the execution substrate standing in for the GPU: DSXplore's CUDA
// kernels are expressed as per-thread work functions over a flat index space
// (see device/launch.hpp), and the pool executes those index spaces with
// static chunking, one chunk per worker, like an OpenMP `parallel for`.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsx::device {

/// Fixed-size pool of worker threads executing range tasks.
class ThreadPool {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs fn(begin, end) over [0, total) split into one contiguous chunk per
  /// pool thread (the calling thread executes one chunk too). Blocks until
  /// every chunk finished. Exceptions from chunks are rethrown (first one).
  void run_chunks(int64_t total,
                  const std::function<void(int64_t, int64_t)>& fn);

  /// Process-wide pool; size from DSX_THREADS env var when set, else
  /// hardware concurrency.
  static ThreadPool& global();

  /// Pool the calling thread should run kernels on: the pool bound by the
  /// innermost PoolScope on this thread, else global(). parallel_for and
  /// the launch_kernel entry points route through this, which is how
  /// dsx::shard gives every replica its own execution lane - a replica
  /// worker binds its lane pool and every kernel it launches lands there
  /// instead of the shared global pool.
  static ThreadPool& current();

 private:
  struct Task {
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    int64_t begin = 0;
    int64_t end = 0;
  };

  void worker_loop(unsigned worker_index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<Task> tasks_;       // one slot per worker
  uint64_t generation_ = 0;       // bumped per run_chunks call
  unsigned pending_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// RAII binding of a pool as ThreadPool::current() for the calling thread.
/// Scopes nest; each restores the previous binding. The binding is
/// thread-local, so one replica lane's scope never leaks into concurrent
/// lanes or into the pool's own worker threads.
class PoolScope {
 public:
  explicit PoolScope(ThreadPool& pool);
  ~PoolScope();

  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

 private:
  ThreadPool* saved_;
};

}  // namespace dsx::device
