// Persistent worker pool.
//
// This is the execution substrate standing in for the GPU: DSXplore's CUDA
// kernels are expressed as per-thread work functions over a flat index space
// (see device/launch.hpp), and the pool executes those index spaces with
// static chunking, one chunk per worker, like an OpenMP `parallel for`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dsx::device {

namespace detail {
/// Process-wide switch for pool busy/idle accounting. Off by default so the
/// steady-state cost of every accounting site is one relaxed load; the
/// profiler (dsx::obs::prof) flips it on for the sampling window.
inline std::atomic<bool> g_pool_accounting{false};
}  // namespace detail

/// True when busy/idle nanosecond accounting is active (one relaxed load -
/// this is the whole off-path cost of an accounting site).
inline bool pool_accounting_enabled() {
  return detail::g_pool_accounting.load(std::memory_order_relaxed);
}
/// Enables/disables busy/idle accounting process-wide. Counters are
/// cumulative and monotone; toggling only gates whether new time is added.
inline void set_pool_accounting(bool on) {
  detail::g_pool_accounting.store(on, std::memory_order_relaxed);
}

/// Fixed-size pool of worker threads executing range tasks.
class ThreadPool {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency(). A non-empty
  /// `name` registers the pool in the process-wide stats registry (see
  /// pool_stats) so its busy/idle counters are exportable; anonymous pools
  /// stay private.
  explicit ThreadPool(unsigned threads = 0, std::string name = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  const std::string& name() const { return name_; }
  /// Cumulative nanoseconds pool threads spent executing chunks (includes
  /// the calling thread's chunk 0). Only accumulates while
  /// pool_accounting_enabled(); monotone.
  int64_t busy_ns() const { return busy_ns_.load(std::memory_order_relaxed); }
  /// Cumulative nanoseconds workers spent parked waiting for work. The
  /// calling thread never parks, so idle covers workers_ only; monotone.
  int64_t idle_ns() const { return idle_ns_.load(std::memory_order_relaxed); }

  struct PoolStats {
    std::string name;
    unsigned threads = 0;
    int64_t busy_ns = 0;
    int64_t idle_ns = 0;
  };
  /// Snapshot of every live NAMED pool's counters (registry is
  /// mutex-guarded; scrape-rate calls only).
  static std::vector<PoolStats> pool_stats();

  /// Runs fn(begin, end) over [0, total) split into one contiguous chunk per
  /// pool thread (the calling thread executes one chunk too). Blocks until
  /// every chunk finished. Exceptions from chunks are rethrown (first one).
  void run_chunks(int64_t total,
                  const std::function<void(int64_t, int64_t)>& fn);

  /// Process-wide pool; size from DSX_THREADS env var when set, else
  /// hardware concurrency.
  static ThreadPool& global();

  /// Pool the calling thread should run kernels on: the pool bound by the
  /// innermost PoolScope on this thread, else global(). parallel_for and
  /// the launch_kernel entry points route through this, which is how
  /// dsx::shard gives every replica its own execution lane - a replica
  /// worker binds its lane pool and every kernel it launches lands there
  /// instead of the shared global pool.
  static ThreadPool& current();

 private:
  struct Task {
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    int64_t begin = 0;
    int64_t end = 0;
  };

  void worker_loop(unsigned worker_index);

  std::string name_;
  std::atomic<int64_t> busy_ns_{0};
  std::atomic<int64_t> idle_ns_{0};
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<Task> tasks_;       // one slot per worker
  uint64_t generation_ = 0;       // bumped per run_chunks call
  unsigned pending_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// RAII binding of a pool as ThreadPool::current() for the calling thread.
/// Scopes nest; each restores the previous binding. The binding is
/// thread-local, so one replica lane's scope never leaks into concurrent
/// lanes or into the pool's own worker threads.
class PoolScope {
 public:
  explicit PoolScope(ThreadPool& pool);
  ~PoolScope();

  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

 private:
  ThreadPool* saved_;
};

}  // namespace dsx::device
