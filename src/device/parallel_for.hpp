// Structured parallel loops over index ranges.
//
// parallel_for(n, f) runs f(i) for i in [0, n) on the global pool;
// parallel_for_2d flattens a rectangular space. `grain` lets callers keep
// tiny loops serial (thread hand-off on a 2-core host costs more than the
// work it would save).
#pragma once

#include <cstdint>
#include <functional>

#include "device/thread_pool.hpp"

namespace dsx::device {

/// Minimum iterations per worker before a loop is worth parallelising.
inline constexpr int64_t kDefaultGrain = 1024;

/// Runs body(i) for every i in [0, total). Parallel when total >= grain.
void parallel_for(int64_t total, const std::function<void(int64_t)>& body,
                  int64_t grain = kDefaultGrain);

/// Runs body(begin, end) over chunked subranges of [0, total); this is the
/// cheaper form when the body can keep per-chunk state (accumulators,
/// scratch buffers).
void parallel_for_chunks(int64_t total,
                         const std::function<void(int64_t, int64_t)>& body,
                         int64_t grain = kDefaultGrain);

/// Runs body(i, j) over [0, rows) x [0, cols), parallel over the flattened
/// space.
void parallel_for_2d(int64_t rows, int64_t cols,
                     const std::function<void(int64_t, int64_t)>& body,
                     int64_t grain = kDefaultGrain);

}  // namespace dsx::device
