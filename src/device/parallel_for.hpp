// Structured parallel loops over index ranges.
//
// parallel_for(n, f) runs f(i) for i in [0, n) on ThreadPool::current() -
// the lane pool bound by a device::PoolScope when one is active (dsx::shard
// replica lanes), else the process-global pool. Chunking never changes
// results: every output index is computed by exactly one thread, so pool
// size only affects scheduling, not floating-point evaluation order.
// parallel_for_2d flattens a rectangular space. `grain` lets callers keep
// tiny loops serial (thread hand-off on a 2-core host costs more than the
// work it would save).
//
// The grain threshold is a heuristic, and dsx::tune measures it instead of
// trusting it: a GrainOverride scope substitutes a tuned grain for
// kDefaultGrain at every loop it dynamically encloses (call sites that pass
// an explicit non-default grain keep their choice). With no scope active the
// constant applies unchanged, so tuning-off behavior is bit-for-bit the
// pre-tuning behavior.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "device/thread_pool.hpp"

namespace dsx::device {

/// Minimum iterations per worker before a loop is worth parallelising.
inline constexpr int64_t kDefaultGrain = 1024;

/// Grain value that keeps any loop serial (total < grain always holds).
inline constexpr int64_t kSerialGrain = std::numeric_limits<int64_t>::max();

/// Grain a loop will actually use: `requested`, unless the caller asked for
/// the library default while a GrainOverride scope is active on this thread.
int64_t effective_grain(int64_t requested);

/// RAII override of kDefaultGrain for the enclosed loops on this thread.
/// `grain <= 0` installs nothing (tuning records use 0 for "library
/// default"). Scopes nest; each restores the previous override.
class GrainOverride {
 public:
  explicit GrainOverride(int64_t grain);
  ~GrainOverride();
  GrainOverride(const GrainOverride&) = delete;
  GrainOverride& operator=(const GrainOverride&) = delete;

 private:
  int64_t saved_;
};

/// Runs body(i) for every i in [0, total). Parallel when total >= grain.
void parallel_for(int64_t total, const std::function<void(int64_t)>& body,
                  int64_t grain = kDefaultGrain);

/// Runs body(begin, end) over chunked subranges of [0, total); this is the
/// cheaper form when the body can keep per-chunk state (accumulators,
/// scratch buffers).
void parallel_for_chunks(int64_t total,
                         const std::function<void(int64_t, int64_t)>& body,
                         int64_t grain = kDefaultGrain);

/// Runs body(i, j) over [0, rows) x [0, cols), parallel over the flattened
/// space.
void parallel_for_2d(int64_t rows, int64_t cols,
                     const std::function<void(int64_t, int64_t)>& body,
                     int64_t grain = kDefaultGrain);

}  // namespace dsx::device
