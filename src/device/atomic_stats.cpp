#include "device/atomic_stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace dsx::device {

AtomicCounters& AtomicCounters::instance() {
  static AtomicCounters counters;
  return counters;
}

// ---- LogHistogram ---------------------------------------------------------

int LogHistogram::bucket_of(int64_t value) {
  if (value <= 0) return 0;
  // Small integers get exact buckets: bucket b holds exactly value b for
  // b < 8 (octaves 1 and 2 go unused; ordering stays monotone in value).
  if (value < (1 << kSubBits)) return static_cast<int>(value);
  const int octave =
      63 - std::countl_zero(static_cast<uint64_t>(value));  // floor(log2 v)
  const int sub = static_cast<int>((value >> (octave - kSubBits)) &
                                   ((1 << kSubBits) - 1));
  return std::min(kBuckets - 1, (octave << kSubBits) + sub);
}

double LogHistogram::bucket_value(int bucket) {
  if (bucket < (1 << kSubBits)) return static_cast<double>(bucket);  // exact
  const int octave = bucket >> kSubBits;
  const int sub = bucket & ((1 << kSubBits) - 1);
  // Geometric midpoint of [lower, upper): halves the worst-case relative
  // error vs reporting the lower edge (see kQuantileRelativeError).
  const double lower =
      std::ldexp(1.0 + static_cast<double>(sub) / (1 << kSubBits), octave);
  const double upper =
      std::ldexp(1.0 + static_cast<double>(sub + 1) / (1 << kSubBits), octave);
  return std::sqrt(lower * upper);
}

double LogHistogram::bucket_upper(int bucket) {
  if (bucket < (1 << kSubBits)) return static_cast<double>(bucket);  // exact
  const int octave = bucket >> kSubBits;
  const int sub = bucket & ((1 << kSubBits) - 1);
  // Exclusive edge of the half-open range [lower, upper) that bucket_of
  // implements; Prometheus reads `le` as inclusive, so a sample exactly at
  // the edge is off by one bucket in the exposition (see the header note).
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / (1 << kSubBits),
                    octave);
}

double LogHistogram::bucket_le(int bucket) {
  if (bucket < (1 << kSubBits)) return static_cast<double>(bucket);  // exact
  // bucket_of's range is [lower, upper) over int64 samples and every edge
  // for octave >= 3 is an integer, so the largest value the bucket holds -
  // the inclusive Prometheus `le` - is exactly upper - 1.
  return bucket_upper(bucket) - 1.0;
}

void LogHistogram::record(int64_t value) {
  if (value < 0) value = 0;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen && !min_.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen && !max_.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  buckets_[static_cast<size_t>(bucket_of(value))].fetch_add(
      1, std::memory_order_relaxed);
}

LogHistogram::BucketSnapshot LogHistogram::bucket_snapshot() const {
  BucketSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (int b = 0; b < kBuckets; ++b) {
    s.buckets[static_cast<size_t>(b)] =
        buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }
  return s;
}

LogHistogram::Snapshot LogHistogram::snapshot() const {
  // Cumulative = the delta against an empty baseline; one quantile
  // implementation serves both the lifetime and the windowed views.
  return delta_snapshot(bucket_snapshot(), BucketSnapshot{});
}

LogHistogram::Snapshot LogHistogram::delta_snapshot(
    const BucketSnapshot& newer, const BucketSnapshot& older) {
  Snapshot s;
  s.count = newer.count - older.count;
  if (s.count <= 0) return Snapshot{};
  s.sum = static_cast<double>(newer.sum - older.sum);
  s.mean = s.sum / static_cast<double>(s.count);
  // Per-bucket deltas; relaxed reads racing writers can leave a stale
  // `older` slightly ahead in one bucket - clamp to zero, never negative.
  std::array<int64_t, kBuckets> delta{};
  int lo = -1;
  int hi = -1;
  for (int b = 0; b < kBuckets; ++b) {
    const int64_t d = newer.buckets[static_cast<size_t>(b)] -
                      older.buckets[static_cast<size_t>(b)];
    delta[static_cast<size_t>(b)] = d > 0 ? d : 0;
    if (d > 0) {
      if (lo < 0) lo = b;
      hi = b;
    }
  }
  if (older.count == 0) {
    // Full-history window: the exact extrema are known. A reader racing the
    // very first record() can observe count > 0 with the min CAS not yet
    // landed; clamp the INT64_MAX sentinel to 0 so no snapshot ever reports
    // a garbage min.
    s.min = newer.min == INT64_MAX ? 0.0 : static_cast<double>(newer.min);
    s.max = static_cast<double>(newer.max);
  } else if (lo >= 0) {
    // Windowed: extrema are bucket-resolution, clamped to the lifetime
    // observed range (which can only reduce the error).
    const double life_min =
        newer.min == INT64_MAX ? 0.0 : static_cast<double>(newer.min);
    const double life_max = static_cast<double>(newer.max);
    s.min = std::clamp(bucket_value(lo), life_min, life_max);
    s.max = std::clamp(bucket_value(hi), life_min, life_max);
  }
  const auto percentile = [&](double q) {
    const int64_t target = std::max<int64_t>(
        1, static_cast<int64_t>(q * static_cast<double>(s.count) + 0.5));
    int64_t seen_count = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen_count += delta[static_cast<size_t>(b)];
      if (seen_count >= target) {
        // The exact nearest-rank sample lies inside bucket b, so clamping
        // its midpoint to the observed range only ever reduces the error.
        return std::clamp(bucket_value(b), s.min, s.max);
      }
    }
    return s.max;
  };
  s.p50 = percentile(0.50);
  s.p99 = percentile(0.99);
  return s;
}

void LogHistogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ---- LatencyStats ---------------------------------------------------------

LatencyStats::Snapshot LatencyStats::snapshot() const {
  const LogHistogram::Snapshot h = hist_.snapshot();
  Snapshot s;
  s.count = h.count;
  s.mean_ms = h.mean / 1e6;
  s.min_ms = h.min / 1e6;
  s.max_ms = h.max / 1e6;
  s.p50_ms = h.p50 / 1e6;
  s.p99_ms = h.p99 / 1e6;
  return s;
}

AtomicCountScope::AtomicCountScope() {
  auto& c = AtomicCounters::instance();
  was_counting_ = c.counting();
  c.set_counting(true);
  base_ = c.adds();
}

AtomicCountScope::~AtomicCountScope() {
  AtomicCounters::instance().set_counting(was_counting_);
}

int64_t AtomicCountScope::adds() const {
  return AtomicCounters::instance().adds() - base_;
}

}  // namespace dsx::device
