#include "device/atomic_stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace dsx::device {

AtomicCounters& AtomicCounters::instance() {
  static AtomicCounters counters;
  return counters;
}

// ---- LatencyStats ---------------------------------------------------------

int LatencyStats::bucket_of(int64_t ns) {
  if (ns <= 0) return 0;
  const int octave =
      63 - std::countl_zero(static_cast<uint64_t>(ns));  // floor(log2 ns)
  const int sub =
      octave >= kSubBits
          ? static_cast<int>((ns >> (octave - kSubBits)) & ((1 << kSubBits) - 1))
          : 0;
  return std::min(kBuckets - 1, (octave << kSubBits) + sub);
}

double LatencyStats::bucket_lower_ms(int bucket) {
  const int octave = bucket >> kSubBits;
  const int sub = bucket & ((1 << kSubBits) - 1);
  const double ns =
      std::ldexp(1.0 + static_cast<double>(sub) / (1 << kSubBits), octave);
  return ns / 1e6;
}

void LatencyStats::record_ns(int64_t ns) {
  if (ns < 0) ns = 0;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  int64_t seen = min_ns_.load(std::memory_order_relaxed);
  while (ns < seen &&
         !min_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
  seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
  buckets_[static_cast<size_t>(bucket_of(ns))].fetch_add(
      1, std::memory_order_relaxed);
}

LatencyStats::Snapshot LatencyStats::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.mean_ms = static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) /
              static_cast<double>(s.count) / 1e6;
  s.min_ms =
      static_cast<double>(min_ns_.load(std::memory_order_relaxed)) / 1e6;
  s.max_ms =
      static_cast<double>(max_ns_.load(std::memory_order_relaxed)) / 1e6;
  const auto percentile = [&](double q) {
    const int64_t target = std::max<int64_t>(
        1, static_cast<int64_t>(q * static_cast<double>(s.count) + 0.5));
    int64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
      if (seen >= target) return bucket_lower_ms(b);
    }
    return s.max_ms;
  };
  s.p50_ms = percentile(0.50);
  s.p99_ms = percentile(0.99);
  return s;
}

void LatencyStats::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(INT64_MAX, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

AtomicCountScope::AtomicCountScope() {
  auto& c = AtomicCounters::instance();
  was_counting_ = c.counting();
  c.set_counting(true);
  base_ = c.adds();
}

AtomicCountScope::~AtomicCountScope() {
  AtomicCounters::instance().set_counting(was_counting_);
}

int64_t AtomicCountScope::adds() const {
  return AtomicCounters::instance().adds() - base_;
}

}  // namespace dsx::device
