#include "device/atomic_stats.hpp"

namespace dsx::device {

AtomicCounters& AtomicCounters::instance() {
  static AtomicCounters counters;
  return counters;
}

AtomicCountScope::AtomicCountScope() {
  auto& c = AtomicCounters::instance();
  was_counting_ = c.counting();
  c.set_counting(true);
  base_ = c.adds();
}

AtomicCountScope::~AtomicCountScope() {
  AtomicCounters::instance().set_counting(was_counting_);
}

int64_t AtomicCountScope::adds() const {
  return AtomicCounters::instance().adds() - base_;
}

}  // namespace dsx::device
