#include "device/parallel_for.hpp"

#include "common/check.hpp"

namespace dsx::device {

namespace {
// Tuned-grain override for the current thread; 0 = none. Thread-local so a
// tuning scope on the serving thread cannot leak into concurrent callers.
thread_local int64_t t_grain_override = 0;
}  // namespace

int64_t effective_grain(int64_t requested) {
  return (t_grain_override > 0 && requested == kDefaultGrain)
             ? t_grain_override
             : requested;
}

GrainOverride::GrainOverride(int64_t grain) : saved_(t_grain_override) {
  if (grain > 0) t_grain_override = grain;
}

GrainOverride::~GrainOverride() { t_grain_override = saved_; }

void parallel_for(int64_t total, const std::function<void(int64_t)>& body,
                  int64_t grain) {
  DSX_REQUIRE(total >= 0, "parallel_for: negative range");
  grain = effective_grain(grain);
  if (total == 0) return;
  if (total < grain || ThreadPool::current().size() == 1) {
    for (int64_t i = 0; i < total; ++i) body(i);
    return;
  }
  ThreadPool::current().run_chunks(total, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) body(i);
  });
}

void parallel_for_chunks(int64_t total,
                         const std::function<void(int64_t, int64_t)>& body,
                         int64_t grain) {
  DSX_REQUIRE(total >= 0, "parallel_for_chunks: negative range");
  grain = effective_grain(grain);
  if (total == 0) return;
  if (total < grain || ThreadPool::current().size() == 1) {
    body(0, total);
    return;
  }
  ThreadPool::current().run_chunks(total, body);
}

void parallel_for_2d(int64_t rows, int64_t cols,
                     const std::function<void(int64_t, int64_t)>& body,
                     int64_t grain) {
  DSX_REQUIRE(rows >= 0 && cols >= 0, "parallel_for_2d: negative range");
  const int64_t total = rows * cols;
  if (total == 0) return;
  parallel_for_chunks(
      total,
      [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) body(i / cols, i % cols);
      },
      grain);
}

}  // namespace dsx::device
