#include "device/parallel_for.hpp"

#include "common/check.hpp"

namespace dsx::device {

void parallel_for(int64_t total, const std::function<void(int64_t)>& body,
                  int64_t grain) {
  DSX_REQUIRE(total >= 0, "parallel_for: negative range");
  if (total == 0) return;
  if (total < grain || ThreadPool::global().size() == 1) {
    for (int64_t i = 0; i < total; ++i) body(i);
    return;
  }
  ThreadPool::global().run_chunks(total, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) body(i);
  });
}

void parallel_for_chunks(int64_t total,
                         const std::function<void(int64_t, int64_t)>& body,
                         int64_t grain) {
  DSX_REQUIRE(total >= 0, "parallel_for_chunks: negative range");
  if (total == 0) return;
  if (total < grain || ThreadPool::global().size() == 1) {
    body(0, total);
    return;
  }
  ThreadPool::global().run_chunks(total, body);
}

void parallel_for_2d(int64_t rows, int64_t cols,
                     const std::function<void(int64_t, int64_t)>& body,
                     int64_t grain) {
  DSX_REQUIRE(rows >= 0 && cols >= 0, "parallel_for_2d: negative range");
  const int64_t total = rows * cols;
  if (total == 0) return;
  parallel_for_chunks(
      total,
      [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) body(i / cols, i % cols);
      },
      grain);
}

}  // namespace dsx::device
