#include "device/device_group.hpp"

#include <cstring>

#include "common/check.hpp"
#include "device/parallel_for.hpp"

namespace dsx::device {

double ring_all_reduce_bytes(double payload_bytes, int devices) {
  DSX_REQUIRE(devices >= 1, "ring_all_reduce_bytes: devices must be >= 1");
  if (devices == 1) return 0.0;
  return 2.0 * (devices - 1) / devices * payload_bytes;
}

DeviceGroup::DeviceGroup(int devices) : devices_(devices) {
  DSX_REQUIRE(devices >= 1, "DeviceGroup needs at least one device");
}

CollectiveStats DeviceGroup::all_reduce_mean(
    std::span<Tensor* const> replicas) const {
  DSX_REQUIRE(static_cast<int>(replicas.size()) == devices_,
              "all_reduce_mean: got " << replicas.size() << " replicas for "
                                      << devices_ << " devices");
  Tensor* first = replicas[0];
  DSX_REQUIRE(first != nullptr && first->defined(), "null replica tensor");
  const int64_t n = first->numel();
  for (Tensor* t : replicas) {
    DSX_REQUIRE(t != nullptr && t->shape() == first->shape(),
                "all_reduce_mean: replica shape mismatch");
  }

  const float inv = 1.0f / static_cast<float>(devices_);
  parallel_for_chunks(n, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      float acc = 0.0f;
      for (Tensor* t : replicas) acc += t->data()[i];
      acc *= inv;
      for (Tensor* t : replicas) t->data()[i] = acc;
    }
  });

  CollectiveStats stats;
  stats.devices = devices_;
  stats.payload_bytes = static_cast<double>(first->size_bytes());
  stats.wire_bytes = ring_all_reduce_bytes(stats.payload_bytes, devices_);
  return stats;
}

CollectiveStats DeviceGroup::all_reduce_mean(
    const std::vector<std::vector<Tensor*>>& replica_params) const {
  DSX_REQUIRE(static_cast<int>(replica_params.size()) == devices_,
              "all_reduce_mean: replica count mismatch");
  const size_t k = replica_params.front().size();
  for (const auto& params : replica_params) {
    DSX_REQUIRE(params.size() == k, "all_reduce_mean: param list mismatch");
  }
  CollectiveStats total;
  total.devices = devices_;
  std::vector<Tensor*> slot(static_cast<size_t>(devices_));
  for (size_t j = 0; j < k; ++j) {
    for (int d = 0; d < devices_; ++d) {
      slot[static_cast<size_t>(d)] = replica_params[static_cast<size_t>(d)][j];
    }
    const CollectiveStats s = all_reduce_mean(slot);
    total.payload_bytes += s.payload_bytes;
    total.wire_bytes += s.wire_bytes;
  }
  return total;
}

void DeviceGroup::broadcast(const Tensor& src,
                            std::span<Tensor* const> dst) const {
  for (Tensor* t : dst) {
    DSX_REQUIRE(t != nullptr && t->shape() == src.shape(),
                "broadcast: destination shape mismatch");
    if (t->data() == src.data()) continue;
    std::memcpy(t->data(), src.data(),
                static_cast<size_t>(src.size_bytes()));
  }
}

}  // namespace dsx::device
