// CUDA-style kernel launches on the CPU substrate.
//
// DSXplore's GPU kernels assign one thread per output (or input) pixel and
// index the flat thread space `blockIdx.x * blockDim.x + threadIdx.x`.
// `launch_kernel` reproduces that model: the work function receives the flat
// thread id and the launch records a KernelRecord (thread count + per-thread
// cost estimate + atomics performed) into the KernelLog when profiling is
// active. gpusim replays those records through an analytic V100 model to
// produce the paper's GPU-side figures.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace dsx::device {

/// Static per-thread cost declaration for a kernel (used by gpusim).
struct KernelCosts {
  double flops_per_thread = 0.0;
  double bytes_per_thread = 0.0;
};

/// One recorded kernel launch.
struct KernelRecord {
  std::string name;
  int64_t threads = 0;
  double flops_per_thread = 0.0;
  double bytes_per_thread = 0.0;
  int64_t atomic_adds = 0;

  double total_flops() const { return flops_per_thread * static_cast<double>(threads); }
  double total_bytes() const { return bytes_per_thread * static_cast<double>(threads); }
};

/// Process-wide launch log (enabled explicitly by profiling scopes).
class KernelLog {
 public:
  static KernelLog& instance();

  void set_enabled(bool on);
  bool enabled() const;

  void append(KernelRecord record);
  std::vector<KernelRecord> snapshot() const;
  void clear();

 private:
  KernelLog() = default;
  mutable std::mutex mu_;
  bool enabled_ = false;
  std::vector<KernelRecord> records_;
};

/// RAII profiling scope: clears and enables the log, restores on exit.
class KernelProfileScope {
 public:
  KernelProfileScope();
  ~KernelProfileScope();
  std::vector<KernelRecord> records() const;

 private:
  bool was_enabled_;
};

/// Executes body(tid) for tid in [0, threads) on the pool, recording the
/// launch when profiling is enabled. This is the single entry point all
/// DSXplore kernels go through.
void launch_kernel(const char* name, int64_t threads, const KernelCosts& costs,
                   const std::function<void(int64_t)>& body);

/// Chunked form: body(begin, end); cheaper when per-thread dispatch through
/// std::function would dominate (the common case for tight inner loops).
void launch_kernel_chunks(const char* name, int64_t threads,
                          const KernelCosts& costs,
                          const std::function<void(int64_t, int64_t)>& body);

/// Chunked form whose recorded GPU-model thread count differs from the CPU
/// execution range (e.g. GEMM executes one chunk per row but models an
/// M*N-thread launch).
void launch_kernel_chunks_modeled(
    const char* name, int64_t exec_range, int64_t model_threads,
    const KernelCosts& costs,
    const std::function<void(int64_t, int64_t)>& body);

}  // namespace dsx::device
