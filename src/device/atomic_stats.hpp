// Instrumented atomics.
//
// The paper's key backward-pass claim (Fig. 9) is that the input-centric
// design removes >90% of the atomic operations the output-centric design
// needs. On the GPU those were `atomicAdd`s counted with NVProf; here every
// float atomic-add flows through atomic_add_float, which (when counting is
// enabled) tallies into AtomicCounters, so the claim is checked exactly.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace dsx::device {

/// Process-wide atomic-operation tally. Thread-safe.
class AtomicCounters {
 public:
  static AtomicCounters& instance();

  /// Enable/disable counting (counting costs one relaxed increment per op).
  void set_counting(bool on) { counting_.store(on, std::memory_order_relaxed); }
  bool counting() const { return counting_.load(std::memory_order_relaxed); }

  void record_add() {
    if (counting()) adds_.fetch_add(1, std::memory_order_relaxed);
  }

  int64_t adds() const { return adds_.load(std::memory_order_relaxed); }
  void reset() { adds_.store(0, std::memory_order_relaxed); }

 private:
  AtomicCounters() = default;
  std::atomic<bool> counting_{false};
  std::atomic<int64_t> adds_{0};
};

/// Atomically target += value (CAS loop; safe under concurrent writers).
inline void atomic_add_float(float& target, float value) {
  AtomicCounters::instance().record_add();
  std::atomic_ref<float> ref(target);
  float old = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(old, old + value,
                                    std::memory_order_relaxed)) {
  }
}

/// Lock-free latency accumulator for the serving runtime (serve/): writers
/// record durations with relaxed atomics only, so many client and batcher
/// threads can publish stats without serializing on a mutex. Percentiles come
/// from a log-scale histogram with 8 sub-buckets per octave (~6% resolution),
/// plenty for p50/p99 serving dashboards.
class LatencyStats {
 public:
  struct Snapshot {
    int64_t count = 0;
    double mean_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
  };

  void record_ns(int64_t ns);
  /// Consistent-enough copy for reporting (relaxed reads; exact only when
  /// writers are quiescent).
  Snapshot snapshot() const;
  void reset();

 private:
  // 64 octaves x 8 sub-buckets covers the full int64 nanosecond range.
  static constexpr int kSubBits = 3;
  static constexpr int kBuckets = 64 << kSubBits;
  static int bucket_of(int64_t ns);
  static double bucket_lower_ms(int bucket);

  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_ns_{0};
  std::atomic<int64_t> min_ns_{INT64_MAX};
  std::atomic<int64_t> max_ns_{0};
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
};

/// RAII scope that enables counting and reports the delta.
class AtomicCountScope {
 public:
  AtomicCountScope();
  ~AtomicCountScope();
  /// Atomic adds performed since the scope began.
  int64_t adds() const;

 private:
  int64_t base_;
  bool was_counting_;
};

}  // namespace dsx::device
