// Instrumented atomics.
//
// The paper's key backward-pass claim (Fig. 9) is that the input-centric
// design removes >90% of the atomic operations the output-centric design
// needs. On the GPU those were `atomicAdd`s counted with NVProf; here every
// float atomic-add flows through atomic_add_float, which (when counting is
// enabled) tallies into AtomicCounters, so the claim is checked exactly.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace dsx::device {

/// Process-wide atomic-operation tally. Thread-safe.
class AtomicCounters {
 public:
  static AtomicCounters& instance();

  /// Enable/disable counting (counting costs one relaxed increment per op).
  void set_counting(bool on) { counting_.store(on, std::memory_order_relaxed); }
  bool counting() const { return counting_.load(std::memory_order_relaxed); }

  void record_add() {
    if (counting()) adds_.fetch_add(1, std::memory_order_relaxed);
  }

  int64_t adds() const { return adds_.load(std::memory_order_relaxed); }
  void reset() { adds_.store(0, std::memory_order_relaxed); }

 private:
  AtomicCounters() = default;
  std::atomic<bool> counting_{false};
  std::atomic<int64_t> adds_{0};
};

/// Atomically target += value (CAS loop; safe under concurrent writers).
inline void atomic_add_float(float& target, float value) {
  AtomicCounters::instance().record_add();
  std::atomic_ref<float> ref(target);
  float old = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(old, old + value,
                                    std::memory_order_relaxed)) {
  }
}

/// Lock-free log-scale histogram over non-negative int64 samples: writers
/// record with relaxed atomics only, so many threads can publish without
/// serializing on a mutex. Values below 8 get exact buckets (small-integer
/// histograms like micro-batch sizes stay precise); above that, buckets are
/// log-spaced with 8 sub-buckets per octave and percentiles report the
/// bucket's geometric midpoint clamped to the observed [min, max], which
/// bounds the relative error at ~6% (kQuantileRelativeError).
///
/// This is the engine the serving tier's LatencyStats always ran on,
/// generalized to be unit-agnostic so dsx::obs can register Histograms over
/// it for any quantity (latencies, queue waits, batch sizes).
class LogHistogram {
 public:
  // 64 octaves x 8 sub-buckets covers the full int64 range.
  static constexpr int kSubBits = 3;
  static constexpr int kBuckets = 64 << kSubBits;

  struct Snapshot {
    int64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
  };

  /// Raw cumulative state: the bucket counts plus the integer accumulators,
  /// all relaxed reads. Two BucketSnapshots taken at different times can be
  /// subtracted (delta_snapshot) to answer quantile questions about just
  /// the samples recorded in between - the windowing primitive dsx::obs's
  /// SLO engine runs on.
  struct BucketSnapshot {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = INT64_MAX;  // raw sentinel; INT64_MAX = nothing recorded
    int64_t max = 0;
    std::array<int64_t, kBuckets> buckets{};
  };

  /// Records one sample; negative values clamp to 0. Wait-free (a handful
  /// of relaxed atomic RMWs), safe under any number of concurrent writers.
  void record(int64_t value);
  /// Consistent-enough copy for reporting (relaxed reads; exact only when
  /// writers are quiescent). An empty histogram snapshots as all zeros, and
  /// a snapshot racing the very first record() clamps the still-unwritten
  /// min to 0 instead of leaking an INT64_MAX-derived value.
  Snapshot snapshot() const;
  /// The raw cumulative state (relaxed reads, same consistency contract as
  /// snapshot()).
  BucketSnapshot bucket_snapshot() const;
  /// Quantiles over the samples recorded between `older` and `newer` (both
  /// cumulative). With an empty `older` this reproduces snapshot() exactly -
  /// there is ONE quantile implementation, windowed or cumulative. Window
  /// min/max are bucket-resolution (the exact extrema of just the window
  /// are not recoverable from cumulative state); racing counts are clamped
  /// so a slightly-stale `older` never yields negative buckets.
  static Snapshot delta_snapshot(const BucketSnapshot& newer,
                                 const BucketSnapshot& older);
  void reset();

  /// Worst-case relative error of p50/p99 for values >= 8: a sub-bucket
  /// spans [L, 1.125L) and reports its geometric midpoint ~1.0607L, so the
  /// exact percentile is within +6.1%/-5.7% of the reported one.
  static constexpr double kQuantileRelativeError = 0.061;

  /// Representative value of bucket `b` (exact for b < 8, else the
  /// geometric midpoint of the bucket's range). Exposed for consumers that
  /// classify BucketSnapshot deltas against a threshold (SLO burn rates).
  static double bucket_value(int bucket);
  /// Upper edge of bucket `b`: exact for b < 8 (the bucket holds exactly
  /// value b, so the edge is inclusive), else the EXCLUSIVE upper bound of
  /// the sub-bucket's half-open range [lower, upper) that bucket_of
  /// implements. Half-open edge semantics - NOT directly usable as a
  /// Prometheus `le` boundary (Prometheus reads `le` as inclusive, but
  /// bucket_of files an integer sample exactly equal to this edge into the
  /// NEXT bucket). Exposition sites use bucket_le instead.
  static double bucket_upper(int bucket);
  /// Largest sample value bucket `b` can hold - the inclusive-`le`-correct
  /// Prometheus boundary for cumulative bucket exposition over
  /// BucketSnapshot counts. Exact, not approximate: samples are int64 and
  /// every bucket edge for octave >= 3 is an integer (2^oct + (sub+1) *
  /// 2^(oct-3)), so the largest held value is simply bucket_upper - 1 for
  /// b >= 8 and b itself below (where buckets hold exactly one value).
  static double bucket_le(int bucket);
  /// The bucket a sample lands in (exposed so consumers can key bounded
  /// per-range state - exemplar slots - consistently with the histogram).
  static int bucket_of(int64_t value);

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{0};
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
};

/// Latency-flavoured view over LogHistogram for the serving runtime: records
/// nanoseconds, snapshots in milliseconds. Kept as a distinct type so every
/// serving stats struct keeps its *_ms field names.
class LatencyStats {
 public:
  struct Snapshot {
    int64_t count = 0;
    double mean_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
  };

  void record_ns(int64_t ns) { hist_.record(ns); }
  /// Consistent-enough copy for reporting (relaxed reads; exact only when
  /// writers are quiescent). Empty stats snapshot as all zeros.
  Snapshot snapshot() const;
  void reset() { hist_.reset(); }

  /// The underlying unit-agnostic histogram (nanosecond samples).
  const LogHistogram& histogram() const { return hist_; }

 private:
  LogHistogram hist_;
};

/// RAII scope that enables counting and reports the delta.
class AtomicCountScope {
 public:
  AtomicCountScope();
  ~AtomicCountScope();
  /// Atomic adds performed since the scope began.
  int64_t adds() const;

 private:
  int64_t base_;
  bool was_counting_;
};

}  // namespace dsx::device
