// Instrumented atomics.
//
// The paper's key backward-pass claim (Fig. 9) is that the input-centric
// design removes >90% of the atomic operations the output-centric design
// needs. On the GPU those were `atomicAdd`s counted with NVProf; here every
// float atomic-add flows through atomic_add_float, which (when counting is
// enabled) tallies into AtomicCounters, so the claim is checked exactly.
#pragma once

#include <atomic>
#include <cstdint>

namespace dsx::device {

/// Process-wide atomic-operation tally. Thread-safe.
class AtomicCounters {
 public:
  static AtomicCounters& instance();

  /// Enable/disable counting (counting costs one relaxed increment per op).
  void set_counting(bool on) { counting_.store(on, std::memory_order_relaxed); }
  bool counting() const { return counting_.load(std::memory_order_relaxed); }

  void record_add() {
    if (counting()) adds_.fetch_add(1, std::memory_order_relaxed);
  }

  int64_t adds() const { return adds_.load(std::memory_order_relaxed); }
  void reset() { adds_.store(0, std::memory_order_relaxed); }

 private:
  AtomicCounters() = default;
  std::atomic<bool> counting_{false};
  std::atomic<int64_t> adds_{0};
};

/// Atomically target += value (CAS loop; safe under concurrent writers).
inline void atomic_add_float(float& target, float value) {
  AtomicCounters::instance().record_add();
  std::atomic_ref<float> ref(target);
  float old = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(old, old + value,
                                    std::memory_order_relaxed)) {
  }
}

/// RAII scope that enables counting and reports the delta.
class AtomicCountScope {
 public:
  AtomicCountScope();
  ~AtomicCountScope();
  /// Atomic adds performed since the scope began.
  int64_t adds() const;

 private:
  int64_t base_;
  bool was_counting_;
};

}  // namespace dsx::device
