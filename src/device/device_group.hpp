// Virtual multi-device group for data-parallel training.
//
// The paper's Fig. 14 trains with 1-4 V100s using data parallelism: each GPU
// holds a model replica, consumes a shard of the batch, and gradients are
// all-reduced before the optimizer step. This host has no GPUs, so a
// DeviceGroup models D devices as D replicas executed on the host pool; the
// collectives below are the MPI-style operations (allreduce = reduce +
// broadcast over a ring) and they report the bytes a ring all-reduce would
// move, which gpusim's link model converts into communication time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace dsx::device {

/// Bytes a ring all-reduce moves per link for `bytes` of payload on `devices`
/// devices (2*(D-1)/D * payload, the standard ring bound).
double ring_all_reduce_bytes(double payload_bytes, int devices);

/// Statistics returned by group collectives.
struct CollectiveStats {
  int devices = 0;
  double payload_bytes = 0.0;   // size of one replica's buffers
  double wire_bytes = 0.0;      // ring-allreduce traffic per device
};

/// A group of D virtual devices.
class DeviceGroup {
 public:
  explicit DeviceGroup(int devices);

  int size() const { return devices_; }

  /// Element-wise mean across replicas, written back to every replica.
  /// `replicas[d]` is device d's copy of the same logical tensor.
  CollectiveStats all_reduce_mean(std::span<Tensor* const> replicas) const;

  /// Same, over a list of parameter sets: replica_params[d][k] is tensor k on
  /// device d. All devices must hold identical-length lists.
  CollectiveStats all_reduce_mean(
      const std::vector<std::vector<Tensor*>>& replica_params) const;

  /// Copies src into every destination tensor (parameter broadcast).
  void broadcast(const Tensor& src, std::span<Tensor* const> dst) const;

 private:
  int devices_;
};

}  // namespace dsx::device
