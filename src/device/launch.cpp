#include "device/launch.hpp"

#include <mutex>

#include "device/atomic_stats.hpp"
#include "device/parallel_for.hpp"

namespace dsx::device {

KernelLog& KernelLog::instance() {
  static KernelLog log;
  return log;
}

void KernelLog::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = on;
}

bool KernelLog::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void KernelLog::append(KernelRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (enabled_) records_.push_back(std::move(record));
}

std::vector<KernelRecord> KernelLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

void KernelLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

KernelProfileScope::KernelProfileScope() {
  auto& log = KernelLog::instance();
  was_enabled_ = log.enabled();
  log.clear();
  log.set_enabled(true);
}

KernelProfileScope::~KernelProfileScope() {
  KernelLog::instance().set_enabled(was_enabled_);
}

std::vector<KernelRecord> KernelProfileScope::records() const {
  return KernelLog::instance().snapshot();
}

namespace {

void record_launch(const char* name, int64_t threads, const KernelCosts& costs,
                   int64_t atomics_before) {
  if (!KernelLog::instance().enabled()) return;
  KernelRecord rec;
  rec.name = name;
  rec.threads = threads;
  rec.flops_per_thread = costs.flops_per_thread;
  rec.bytes_per_thread = costs.bytes_per_thread;
  rec.atomic_adds = AtomicCounters::instance().adds() - atomics_before;
  KernelLog::instance().append(std::move(rec));
}

}  // namespace

void launch_kernel(const char* name, int64_t threads, const KernelCosts& costs,
                   const std::function<void(int64_t)>& body) {
  const int64_t atomics_before = AtomicCounters::instance().adds();
  parallel_for(threads, body);
  record_launch(name, threads, costs, atomics_before);
}

void launch_kernel_chunks(const char* name, int64_t threads,
                          const KernelCosts& costs,
                          const std::function<void(int64_t, int64_t)>& body) {
  const int64_t atomics_before = AtomicCounters::instance().adds();
  parallel_for_chunks(threads, body);
  record_launch(name, threads, costs, atomics_before);
}

void launch_kernel_chunks_modeled(
    const char* name, int64_t exec_range, int64_t model_threads,
    const KernelCosts& costs,
    const std::function<void(int64_t, int64_t)>& body) {
  const int64_t atomics_before = AtomicCounters::instance().adds();
  parallel_for_chunks(exec_range, body);
  record_launch(name, model_threads, costs, atomics_before);
}

}  // namespace dsx::device
