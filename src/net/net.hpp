// dsx::net - socket-level ingress + multi-tenant model residency.
//
// The network face of the serving stack:
//   protocol.hpp   length-prefixed binary framing (requests/replies)
//   ingress.hpp    IngressServer: poll() event loop + dispatch pool over
//                  InferenceServer, with tenant auth/quota/QoS
//   residency.hpp  ResidencyManager: many models under one memory budget,
//                  LRU eviction to ModelStore + transparent fault-in
//   client.hpp     blocking, pipelining test/tool client
#pragma once

#include "net/client.hpp"
#include "net/ingress.hpp"
#include "net/protocol.hpp"
#include "net/residency.hpp"
