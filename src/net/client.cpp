#include "net/client.hpp"

#include <unistd.h>

#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/socket_io.hpp"

namespace dsx::net {

Client::Client(ClientOptions opts) : opts_(std::move(opts)) {
  fd_ = sockio::connect_tcp(opts_.host, opts_.port, opts_.io_timeout);
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

uint64_t Client::send(const std::string& model, const Tensor& image,
                      serve::Priority priority, uint64_t deadline_us) {
  DSX_REQUIRE(fd_ >= 0, "net::Client: connection closed");
  RequestFrame req;
  req.request_id = next_id_++;
  req.model = model;
  req.token = opts_.token;
  req.priority = priority;
  req.deadline_us = deadline_us;
  req.image = image;
  DSX_REQUIRE(sockio::send_all(fd_, encode_request(req)),
              "net::Client: send failed (peer closed or timeout)");
  return req.request_id;
}

ReplyFrame Client::read_reply() {
  uint8_t header[kHeaderBytes];
  DSX_REQUIRE(sockio::recv_all(fd_, header, sizeof(header)),
              "net::Client: connection closed while awaiting a reply");
  FrameType type;
  uint32_t payload_len = 0;
  const HeaderVerdict verdict =
      parse_header(header, opts_.max_frame_bytes, &type, &payload_len);
  DSX_REQUIRE(verdict == HeaderVerdict::kOk && type == FrameType::kReply,
              "net::Client: malformed reply header");
  std::vector<uint8_t> payload(payload_len);
  DSX_REQUIRE(payload_len == 0 ||
                  sockio::recv_all(fd_, payload.data(), payload.size()),
              "net::Client: connection closed mid-reply");
  ReplyFrame reply;
  DSX_REQUIRE(parse_reply_payload(payload.data(), payload.size(), &reply),
              "net::Client: malformed reply payload");
  return reply;
}

ReplyFrame Client::recv(uint64_t request_id) {
  auto it = stash_.find(request_id);
  if (it != stash_.end()) {
    ReplyFrame reply = std::move(it->second);
    stash_.erase(it);
    return reply;
  }
  DSX_REQUIRE(fd_ >= 0, "net::Client: connection closed");
  for (;;) {
    ReplyFrame reply = read_reply();
    if (reply.request_id == request_id) return reply;
    stash_[reply.request_id] = std::move(reply);
  }
}

ReplyFrame Client::infer(const std::string& model, const Tensor& image,
                         serve::Priority priority, uint64_t deadline_us) {
  return recv(send(model, image, priority, deadline_us));
}

}  // namespace dsx::net
