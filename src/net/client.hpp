// Blocking dsx::net client - the caller side of net/protocol.hpp.
//
// One Client = one TCP connection. Requests may be pipelined: send()
// returns immediately with the request id; replies are matched by id, so
// they may be consumed in any order (the ingress answers out of order when
// dispatch workers finish out of order). infer() is the one-shot
// convenience: send + wait for that id, stashing any other replies that
// arrive first.
//
// Not thread-safe: one Client per thread (connections are cheap; the
// ingress multiplexes). Throws dsx::Error on connect/IO/protocol failures;
// a non-kOk reply status is data, not an exception - admission errors
// (queue_full, deadline_exceeded) are normal operation under load.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "net/protocol.hpp"

namespace dsx::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Tenant auth token sent with every request ("" = anonymous).
  std::string token;
  /// Socket receive/send timeout; a stuck server fails the call instead of
  /// hanging the client forever.
  std::chrono::milliseconds io_timeout{10000};
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class Client {
 public:
  /// Connects immediately; throws dsx::Error on failure.
  explicit Client(ClientOptions opts);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request frame without waiting; returns its request id.
  uint64_t send(const std::string& model, const Tensor& image,
                serve::Priority priority = serve::Priority::kNormal,
                uint64_t deadline_us = 0);

  /// Receives the reply for `request_id`, consuming (and stashing) any
  /// other pipelined replies that arrive first.
  ReplyFrame recv(uint64_t request_id);

  /// Blocking round-trip: send + recv.
  ReplyFrame infer(const std::string& model, const Tensor& image,
                   serve::Priority priority = serve::Priority::kNormal,
                   uint64_t deadline_us = 0);

  void close();

 private:
  /// Reads one reply frame off the socket (whatever id it carries).
  ReplyFrame read_reply();

  ClientOptions opts_;
  int fd_ = -1;
  uint64_t next_id_ = 1;
  std::map<uint64_t, ReplyFrame> stash_;  // replies consumed out of order
};

}  // namespace dsx::net
