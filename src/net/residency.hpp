// Multi-tenant model residency over ModelStore + InferenceServer.
//
// The serving tier can hold as many compiled models as fit in memory; the
// store can hold as many versions as fit on disk. ResidencyManager bridges
// the two: register many names against store versions under one global
// float budget (weights + workspace), and serve all of them - models that
// do not fit stay demoted to their on-disk version and are faulted back in
// (store.compile + register_model) on the next request for them. With a
// stored tuning cache the fault is a warm compile: the plan replays
// persisted measurements, so a fault costs load+compile latency, never a
// re-tune and never an error. Callers of an evicted model see a slower
// first answer; they do not see failures.
//
// Eviction is LRU with priority pinning: victims are chosen among resident,
// non-pinned models - highest eviction_class first (mark bulk models more
// evictable), least-recently-used within a class. Demotion goes through
// InferenceServer::unregister_model, which drains: every request the model
// already accepted is answered by it before the memory is released.
//
// Concurrency contract:
//   - fault-in and eviction serialize on one manager-wide op_mu_ - the
//     single-flight guarantee. A thundering herd for a cold model compiles
//     it once; the herd's other threads block on op_mu_, re-check, and find
//     it resident. (The cost: a fault for model A briefly queues an
//     unrelated fault for model B. Accepted - faults are rare and the
//     alternative, per-model fault states, buys little at this scale.)
//   - submit() never holds op_mu_ across the server call, so resident-model
//     traffic is never blocked by a fault. A submit that races its model's
//     eviction (resident check passed, then the name vanished) catches the
//     routing error and retries through the fault path - bounded, and the
//     caller still just sees latency.
//
// Budget math: admission is estimated from the manifest's weights bytes
// (cheap - no artifact read); after the compile the model's true cost
// (param_floats + workspace_floats from its CompileReport) replaces the
// estimate and eviction re-runs if the actual overshot. The transient
// overshoot is bounded by one model's workspace.
//
// Observability: every eviction/fault is journaled (EventKind::kResidency),
// counted in dsx_residency_* series, and the whole table is served as JSON
// on the exporter's /residency endpoint (attach_endpoint).
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "deploy/model_store.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "shard/replica_set.hpp"

namespace dsx::net {

struct ResidencyOptions {
  /// Global budget across resident models, in floats (weights + workspace).
  /// 0 = unlimited (everything stays resident once faulted in).
  int64_t budget_floats = 0;
  /// Compile options for fault-in compiles (max_batch etc.). The store
  /// forces Mode::kCached when a version carries a tuning cache.
  serve::CompileOptions compile;
  /// Batcher options for models this manager registers.
  serve::BatcherOptions batcher;
};

/// Per-model residency policy.
struct ResidencyPolicy {
  /// Pinned models are never evicted (and count against the budget).
  bool pinned = false;
  /// Eviction preference: higher classes are evicted first. Use e.g. 0 for
  /// latency-sensitive models, 1 for bulk.
  int eviction_class = 0;
};

struct ResidencyStats {
  int64_t registered = 0;
  int64_t resident = 0;
  int64_t faults = 0;      // fault-in compiles performed
  int64_t evictions = 0;   // demotions to disk
  int64_t used_floats = 0;
  int64_t budget_floats = 0;
};

class ResidencyManager {
 public:
  /// `server` and `store` must outlive the manager. Attaches /residency to
  /// the server's exporter if one is running (see attach_endpoint).
  ResidencyManager(serve::InferenceServer& server, deploy::ModelStore& store,
                   ResidencyOptions opts = {});
  ~ResidencyManager();

  ResidencyManager(const ResidencyManager&) = delete;
  ResidencyManager& operator=(const ResidencyManager&) = delete;

  /// Registers `name` -> store version `version` with the manager. Lazy: no
  /// compile happens until the first request (or ensure_resident). Throws
  /// if the version does not exist or the name is already managed.
  void add_model(const std::string& name, const std::string& version,
                 ResidencyPolicy policy = {});

  /// Fault-in `name` now (no-op when already resident). Throws dsx::Error
  /// on unknown names; compile failures propagate.
  void ensure_resident(const std::string& name);

  /// Async inference on a managed model: faults the model in when needed,
  /// then routes through InferenceServer::submit. Admission errors
  /// (QueueFull / future-borne DeadlineExceeded) surface unchanged.
  std::future<Tensor> submit(const std::string& name, const Tensor& image);
  std::future<Tensor> submit(const std::string& name, const Tensor& image,
                             shard::SubmitOptions sopts);
  /// Blocking convenience wrapper.
  Tensor infer(const std::string& name, const Tensor& image);

  bool resident(const std::string& name) const;
  std::vector<std::string> model_names() const;
  ResidencyStats stats() const;

  /// The /residency endpoint body: budget, usage, counters and the
  /// per-model table as JSON.
  std::string residency_json() const;

  /// (Re-)registers the /residency endpoint on the server's exporter. The
  /// constructor calls this; call it again after a later start_exporter()
  /// (the endpoint registry lives in the exporter instance).
  void attach_endpoint();

 private:
  struct ModelState {
    std::string version;
    ResidencyPolicy policy;
    bool resident = false;
    int64_t cost_floats = 0;  // actual post-compile cost while resident
    uint64_t last_use = 0;    // logical LRU clock
  };

  /// Picks the best victim among resident non-pinned models (state_mu_
  /// held). "" = nothing evictable.
  std::string pick_victim_locked() const;
  /// Evicts until `need_floats` more fit under the budget (op_mu_ held).
  /// Stops when nothing is evictable - the admit then overshoots, which
  /// beats refusing to serve.
  void make_room(int64_t need_floats, const std::string& admitting);
  void touch(const std::string& name);
  template <typename SubmitFn>
  std::future<Tensor> submit_impl(const std::string& name,
                                  const SubmitFn& submit_fn);

  serve::InferenceServer& server_;
  deploy::ModelStore& store_;
  ResidencyOptions opts_;

  /// Serializes fault-in + eviction (the single-flight lock). Never held
  /// while answering resident-model submits. Acquire before state_mu_.
  std::mutex op_mu_;
  /// Guards models_, used/clock counters; held only for short reads/writes.
  mutable std::mutex state_mu_;
  std::map<std::string, ModelState> models_;
  int64_t used_floats_ = 0;
  uint64_t clock_ = 0;
  int64_t faults_ = 0;
  int64_t evictions_ = 0;

  obs::Counter faults_metric_;     // dsx_residency_faults_total
  obs::Counter evictions_metric_;  // dsx_residency_evictions_total
  obs::Gauge resident_metric_;     // dsx_residency_resident_models
  obs::Gauge used_metric_;         // dsx_residency_used_floats
  obs::Histogram fault_latency_;   // dsx_residency_fault_latency_us
};

}  // namespace dsx::net
