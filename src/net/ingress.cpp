#include "net/ingress.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "common/socket_io.hpp"
#include "obs/journal.hpp"
#include "shard/deadline_batcher.hpp"

namespace dsx::net {

namespace {

const char* header_error_text(HeaderVerdict v) {
  switch (v) {
    case HeaderVerdict::kBadMagic:
      return "bad magic";
    case HeaderVerdict::kBadVersion:
      return "unsupported protocol version";
    case HeaderVerdict::kBadType:
      return "bad frame type";
    case HeaderVerdict::kTooLarge:
      return "frame exceeds max_frame_bytes";
    case HeaderVerdict::kOk:
      break;
  }
  return "framing error";
}

bool contains(const char* what, const char* needle) {
  return std::string(what).find(needle) != std::string::npos;
}

}  // namespace

IngressServer::IngressServer(serve::InferenceServer& server,
                             IngressOptions opts, ResidencyManager* residency)
    : server_(server), opts_(std::move(opts)), residency_(residency) {
  DSX_REQUIRE(opts_.port >= 0 && opts_.port <= 65535,
              "IngressOptions: port must be in [0, 65535]");
  DSX_REQUIRE(opts_.max_connections >= 1,
              "IngressOptions: max_connections must be >= 1");
  DSX_REQUIRE(opts_.dispatch_threads >= 1,
              "IngressOptions: dispatch_threads must be >= 1");
  DSX_REQUIRE(opts_.dispatch_capacity >= 1,
              "IngressOptions: dispatch_capacity must be >= 1");
  DSX_REQUIRE(opts_.max_frame_bytes >= 64,
              "IngressOptions: max_frame_bytes must be >= 64");
  for (size_t i = 0; i < opts_.tenants.size(); ++i) {
    TenantSpec& t = opts_.tenants[i];
    DSX_REQUIRE(!t.token.empty(), "TenantSpec: empty token (tenant "
                                      << i << "); anonymous access is the "
                                         "allow_anonymous option");
    if (t.name.empty()) t.name = t.token;
    DSX_REQUIRE(
        token_to_tenant_.emplace(t.token, static_cast<int>(i)).second,
        "TenantSpec: duplicate token '" << t.token << "'");
  }
  tenant_inflight_ = std::vector<std::atomic<int>>(opts_.tenants.size());

  obs::Registry& reg = obs::Registry::global();
  connections_metric_ = reg.counter("dsx_net_connections_total", {},
                                    "Ingress connections accepted.");
  frames_metric_ = reg.counter("dsx_net_frames_total", {},
                               "Request frames parsed off the wire.");
  replies_metric_ = reg.counter("dsx_net_replies_total", {},
                                "Reply frames queued for delivery.");
  reply_errors_metric_ =
      reg.counter("dsx_net_reply_errors_total", {},
                  "Replies carrying a non-ok status.");
  framing_metric_ =
      reg.counter("dsx_net_framing_errors_total", {},
                  "Header-level protocol errors (connection closed).");
  rejected_metric_ = reg.counter("dsx_net_rejected_total", {},
                                 "Frames rejected by auth or tenant quota.");
  pauses_metric_ = reg.counter(
      "dsx_net_backpressure_pauses_total", {},
      "Connections whose reads paused on a full write queue.");
  open_metric_ =
      reg.gauge("dsx_net_open_connections", {}, "Connections held open.");
}

IngressServer::~IngressServer() { stop(); }

void IngressServer::start() {
  if (running_.load(std::memory_order_acquire)) return;
  listen_fd_ = sockio::listen_tcp(opts_.bind_address, opts_.port);
  sockio::set_nonblocking(listen_fd_);
  port_.store(sockio::bound_port(listen_fd_), std::memory_order_release);
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(std::string("ingress: pipe(): ") + std::strerror(errno));
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  sockio::set_nonblocking(wake_rd_);
  sockio::set_nonblocking(wake_wr_);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  event_thread_ = std::thread([this] { event_loop(); });
  workers_.reserve(static_cast<size_t>(opts_.dispatch_threads));
  for (int i = 0; i < opts_.dispatch_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  obs::Journal::global().record(
      obs::EventKind::kRegister, "net.ingress",
      "listening on " + opts_.bind_address + ":" + std::to_string(port()));
}

void IngressServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  wake();
  if (event_thread_.joinable()) event_thread_.join();
  dispatch_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  listen_fd_ = wake_rd_ = wake_wr_ = -1;
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    completions_.clear();
  }
  port_.store(0, std::memory_order_release);
  obs::Journal::global().record(obs::EventKind::kUnregister, "net.ingress",
                                "stopped");
}

IngressServer::Stats IngressServer::stats() const {
  Stats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.replies = replies_.load(std::memory_order_relaxed);
  s.dropped_replies = dropped_replies_.load(std::memory_order_relaxed);
  s.framing_errors = framing_errors_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  return s;
}

void IngressServer::wake() {
  const char byte = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_wr_, &byte, 1);
}

// ---- event thread ----------------------------------------------------------

void IngressServer::event_loop() {
  std::vector<pollfd> pfds;
  std::vector<uint64_t> ids;
  while (!stopping_.load(std::memory_order_acquire)) {
    pfds.clear();
    ids.clear();
    pfds.push_back({wake_rd_, POLLIN, 0});
    ids.push_back(0);
    if (static_cast<int>(conns_.size()) < opts_.max_connections) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      ids.push_back(0);
    }
    const size_t fixed = pfds.size();
    for (auto& [id, c] : conns_) {
      const bool pause = c.out_bytes > opts_.max_conn_out_bytes;
      if (pause && !c.paused) pauses_metric_.inc();
      c.paused = pause;
      short events = 0;
      if (!c.read_closed && !c.closing && !c.paused) events |= POLLIN;
      if (!c.out.empty()) events |= POLLOUT;
      pfds.push_back({c.fd, events, 0});
      ids.push_back(id);
    }
    ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/100);
    if (stopping_.load(std::memory_order_acquire)) break;

    if (pfds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
    }
    // Deliver completed replies before socket IO so fresh replies can be
    // flushed by this same iteration's POLLOUT handling next round.
    std::deque<Completion> done;
    {
      std::lock_guard<std::mutex> lock(completion_mu_);
      done.swap(completions_);
    }
    for (Completion& comp : done) {
      auto it = conns_.find(comp.conn_id);
      if (it == conns_.end()) {
        // Disconnect-mid-reply: the future was consumed; the bytes have
        // nowhere to go.
        dropped_replies_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      it->second.inflight--;
      enqueue_reply(it->second, std::move(comp.bytes));
    }
    if (pfds.size() > 1 && ids[1] == 0 && fixed == 2 &&
        (pfds[1].revents & POLLIN)) {
      accept_ready();
    }
    for (size_t i = fixed; i < pfds.size(); ++i) {
      auto it = conns_.find(ids[i]);
      if (it == conns_.end()) continue;
      Conn& c = it->second;
      if (pfds[i].revents & POLLNVAL) {
        drop_conn(c.id);
        continue;
      }
      if (pfds[i].revents & POLLIN) handle_readable(c);
      // Re-find: handle_readable may have dropped the connection.
      it = conns_.find(ids[i]);
      if (it == conns_.end()) continue;
      if (pfds[i].revents & POLLOUT) handle_writable(it->second);
      it = conns_.find(ids[i]);
      if (it == conns_.end()) continue;
      if ((pfds[i].revents & (POLLERR | POLLHUP)) && it->second.out.empty()) {
        // Peer gone and nothing left to flush. (With queued out bytes we
        // keep trying; the write error path drops the conn.)
        drop_conn(ids[i]);
      }
    }
    // Retire connections that have nothing left to do: dead socket, fatal
    // framing error flushed, or peer EOF with every accepted frame
    // answered and flushed.
    std::vector<uint64_t> finished;
    for (auto& [id, c] : conns_) {
      if (c.dead || (c.closing && c.out.empty()) ||
          (c.read_closed && c.inflight == 0 && c.out.empty())) {
        finished.push_back(id);
      }
    }
    for (uint64_t id : finished) drop_conn(id);
  }
  for (auto& [id, c] : conns_) ::close(c.fd);
  conns_.clear();
  open_metric_.set(0);
}

void IngressServer::accept_ready() {
  while (static_cast<int>(conns_.size()) < opts_.max_connections) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient
    sockio::set_nonblocking(fd);
    if (opts_.so_sndbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts_.so_sndbuf,
                   sizeof(opts_.so_sndbuf));
    }
    Conn c;
    c.id = next_conn_id_++;
    c.fd = fd;
    const uint64_t id = c.id;
    conns_.emplace(id, std::move(c));
    connections_.fetch_add(1, std::memory_order_relaxed);
    connections_metric_.inc();
    open_metric_.set(static_cast<int64_t>(conns_.size()));
  }
}

void IngressServer::drop_conn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::close(it->second.fd);
  conns_.erase(it);
  open_metric_.set(static_cast<int64_t>(conns_.size()));
}

void IngressServer::handle_readable(Conn& c) {
  char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c.in.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      c.read_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    c.dead = true;  // hard socket error; the sweep retires it
    return;
  }
  parse_frames(c);
}

void IngressServer::parse_frames(Conn& c) {
  size_t off = 0;
  while (!c.closing && !c.dead && c.in.size() - off >= kHeaderBytes) {
    FrameType type;
    uint32_t payload_len = 0;
    const uint8_t* base =
        reinterpret_cast<const uint8_t*>(c.in.data()) + off;
    const HeaderVerdict verdict =
        parse_header(base, opts_.max_frame_bytes, &type, &payload_len);
    if (verdict != HeaderVerdict::kOk || type != FrameType::kRequest) {
      // Framing is lost: no way to find the next boundary. Answer what we
      // can (request id unknowable) and close once it flushes.
      framing_errors_.fetch_add(1, std::memory_order_relaxed);
      framing_metric_.inc();
      ReplyFrame err;
      err.status = Status::kBadRequest;
      err.message = verdict == HeaderVerdict::kOk
                        ? "unexpected frame type"
                        : header_error_text(verdict);
      enqueue_reply(c, encode_reply(err));
      c.closing = true;
      off = c.in.size();
      break;
    }
    if (c.in.size() - off < kHeaderBytes + payload_len) break;  // incomplete
    handle_frame(c, base + kHeaderBytes, payload_len);
    off += kHeaderBytes + payload_len;
  }
  if (off > 0) c.in.erase(0, off);
}

void IngressServer::handle_frame(Conn& c, const uint8_t* payload, size_t len) {
  frames_.fetch_add(1, std::memory_order_relaxed);
  frames_metric_.inc();
  Task task;
  task.conn_id = c.id;
  std::string err;
  const Status parsed =
      parse_request_payload(payload, len, &task.req, &err);
  if (parsed != Status::kOk) {
    ReplyFrame reply;
    reply.request_id = task.req.request_id;  // 0 unless the id parsed
    reply.status = Status::kBadRequest;
    reply.message = err;
    enqueue_reply(c, encode_reply(reply));
    return;
  }
  // Tenant resolution + quota. Admission here runs on the event thread -
  // cheap map lookups only; the actual serving admission (QueueFull /
  // deadline shed) happens in the worker against the batcher.
  if (!task.req.token.empty()) {
    auto tenant = token_to_tenant_.find(task.req.token);
    if (tenant == token_to_tenant_.end()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      rejected_metric_.inc();
      enqueue_reply(c, encode_reply({task.req.request_id, Status::kAuthDenied,
                                     {}, "unknown auth token"}));
      return;
    }
    task.tenant = tenant->second;
  } else if (!opts_.allow_anonymous) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    rejected_metric_.inc();
    enqueue_reply(c, encode_reply({task.req.request_id, Status::kAuthDenied,
                                   {}, "auth token required"}));
    return;
  }
  if (task.tenant >= 0) {
    const TenantSpec& t = opts_.tenants[static_cast<size_t>(task.tenant)];
    if (t.max_inflight > 0 &&
        tenant_inflight_[static_cast<size_t>(task.tenant)].load(
            std::memory_order_relaxed) >= t.max_inflight) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      rejected_metric_.inc();
      enqueue_reply(c,
                    encode_reply({task.req.request_id, Status::kQueueFull, {},
                                  "tenant '" + t.name + "' over quota (" +
                                      std::to_string(t.max_inflight) +
                                      " in flight)"}));
      return;
    }
    // QoS floor: clamp to the tenant's class (numerically larger = less
    // urgent).
    task.req.priority = static_cast<serve::Priority>(
        std::max(static_cast<int>(task.req.priority),
                 static_cast<int>(t.priority)));
  }
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    if (dispatch_.size() >= opts_.dispatch_capacity) {
      enqueue_reply(c,
                    encode_reply({task.req.request_id, Status::kQueueFull, {},
                                  "ingress dispatch queue full"}));
      return;
    }
    if (task.tenant >= 0) {
      tenant_inflight_[static_cast<size_t>(task.tenant)].fetch_add(
          1, std::memory_order_relaxed);
    }
    c.inflight++;
    dispatch_.push_back(std::move(task));
  }
  dispatch_cv_.notify_one();
}

void IngressServer::enqueue_reply(Conn& c, std::string bytes) {
  replies_.fetch_add(1, std::memory_order_relaxed);
  replies_metric_.inc();
  c.out_bytes += bytes.size();
  c.out.push_back(std::move(bytes));
  // Opportunistic flush: most replies fit the socket buffer and go out
  // without waiting one poll round for POLLOUT.
  handle_writable(c);
}

void IngressServer::handle_writable(Conn& c) {
  while (!c.out.empty() && !c.dead) {
    const std::string& front = c.out.front();
    const ssize_t n = ::send(c.fd, front.data() + c.out_head,
                             front.size() - c.out_head, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Peer vanished; its queued replies go with it. Deferred close - the
      // caller may still hold a reference to this Conn.
      c.dead = true;
      c.out.clear();
      c.out_head = 0;
      c.out_bytes = 0;
      return;
    }
    c.out_head += static_cast<size_t>(n);
    c.out_bytes -= static_cast<size_t>(n);
    if (c.out_head == front.size()) {
      c.out.pop_front();
      c.out_head = 0;
    }
  }
}

// ---- dispatch workers ------------------------------------------------------

void IngressServer::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(dispatch_mu_);
      dispatch_cv_.wait(lock, [&] {
        return stopping_.load(std::memory_order_acquire) ||
               !dispatch_.empty();
      });
      if (dispatch_.empty()) return;  // stopping and drained
      task = std::move(dispatch_.front());
      dispatch_.pop_front();
    }
    std::string bytes = encode_reply(run_request(task.req));
    if (task.tenant >= 0) {
      tenant_inflight_[static_cast<size_t>(task.tenant)].fetch_sub(
          1, std::memory_order_relaxed);
    }
    bool first = false;
    {
      std::lock_guard<std::mutex> lock(completion_mu_);
      first = completions_.empty();
      completions_.push_back({task.conn_id, std::move(bytes)});
    }
    // Wake only on the empty->nonempty edge: the event thread drains the
    // whole queue per wake, so a non-empty queue already has a wake byte
    // in flight. Halves the pipe syscalls when batches complete together.
    if (first) wake();
  }
}

ReplyFrame IngressServer::run_request(const RequestFrame& req) {
  ReplyFrame reply;
  reply.request_id = req.request_id;
  shard::SubmitOptions sopts;
  sopts.priority = req.priority;
  if (req.deadline_us > 0) {
    sopts = shard::within(std::chrono::microseconds(req.deadline_us),
                          req.priority);
  }
  try {
    std::future<Tensor> fut;
    if (residency_ != nullptr) {
      try {
        fut = residency_->submit(req.model, req.image, sopts);
      } catch (const Error& e) {
        // Names the manager does not know may still be plain registrations.
        if (!contains(e.what(), "residency: unknown model")) throw;
        fut = server_.submit(req.model, req.image, sopts);
      }
    } else {
      fut = server_.submit(req.model, req.image, sopts);
    }
    reply.output = fut.get();
    reply.status = Status::kOk;
  } catch (const serve::QueueFull& e) {
    reply.status = Status::kQueueFull;
    reply.message = e.what();
  } catch (const serve::DeadlineExceeded& e) {
    reply.status = Status::kDeadlineExceeded;
    reply.message = e.what();
  } catch (const serve::Stopped& e) {
    reply.status = Status::kError;
    reply.message = e.what();
  } catch (const Error& e) {
    if (contains(e.what(), "no model named") ||
        contains(e.what(), "residency: unknown model")) {
      reply.status = Status::kNoSuchModel;
    } else {
      reply.status = Status::kError;
    }
    reply.message = e.what();
  } catch (const std::exception& e) {
    reply.status = Status::kError;
    reply.message = e.what();
  }
  if (reply.status != Status::kOk) reply_errors_metric_.inc();
  return reply;
}

}  // namespace dsx::net
