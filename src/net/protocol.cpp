#include "net/protocol.hpp"

#include <cstring>
#include <vector>

namespace dsx::net {

namespace {

// ---- little-endian append/read helpers -------------------------------------

template <typename T>
void put(std::string& out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out.append(buf, sizeof(T));
}

void put_bytes(std::string& out, const std::string& s) {
  put<uint16_t>(out, static_cast<uint16_t>(s.size()));
  out.append(s);
}

void put_tensor(std::string& out, const Tensor& t) {
  const Shape& shape = t.shape();
  put<uint8_t>(out, static_cast<uint8_t>(shape.rank()));
  for (int i = 0; i < shape.rank(); ++i) put<int64_t>(out, shape.dim(i));
  out.append(reinterpret_cast<const char*>(t.data()),
             static_cast<size_t>(t.size_bytes()));
}

/// Bounds-checked cursor over a payload; read() returns false past the end
/// instead of reading garbage, so a truncated payload parses to a clean
/// kBadRequest rather than UB.
struct Cursor {
  const uint8_t* p;
  size_t left;

  template <typename T>
  bool read(T* out) {
    if (left < sizeof(T)) return false;
    std::memcpy(out, p, sizeof(T));
    p += sizeof(T);
    left -= sizeof(T);
    return true;
  }

  bool read_bytes(std::string* out) {
    uint16_t n = 0;
    if (!read(&n) || left < n) return false;
    out->assign(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return true;
  }

  /// Shape + data. Rejects bad ranks, non-positive dims and element counts
  /// that disagree with the remaining bytes (the length prefix is the outer
  /// truth; the shape must match it exactly).
  bool read_tensor(Tensor* out, std::string* err) {
    uint8_t rank = 0;
    if (!read(&rank)) {
      *err = "truncated tensor rank";
      return false;
    }
    if (rank == 0 || rank > kMaxRank) {
      *err = "bad tensor rank " + std::to_string(int(rank));
      return false;
    }
    std::vector<int64_t> dims(rank);
    int64_t numel = 1;
    for (uint8_t i = 0; i < rank; ++i) {
      if (!read(&dims[i])) {
        *err = "truncated tensor dims";
        return false;
      }
      // Per-dim and cumulative caps: a hostile dim vector must not overflow
      // numel or commit us to a giant allocation before the byte check.
      if (dims[i] <= 0 || dims[i] > (1ll << 32) ||
          numel > (1ll << 40) / dims[i]) {
        *err = "bad tensor dim " + std::to_string(dims[i]);
        return false;
      }
      numel *= dims[i];
    }
    const size_t want = static_cast<size_t>(numel) * sizeof(float);
    if (left != want) {
      *err = "tensor bytes mismatch: shape wants " + std::to_string(want) +
             ", frame carries " + std::to_string(left);
      return false;
    }
    Tensor t{Shape(std::move(dims))};
    std::memcpy(t.data(), p, want);
    p += want;
    left = 0;
    *out = std::move(t);
    return true;
  }
};

void put_header(std::string& out, FrameType type, uint32_t payload_len) {
  put<uint32_t>(out, kMagic);
  put<uint16_t>(out, kVersion);
  put<uint8_t>(out, static_cast<uint8_t>(type));
  put<uint8_t>(out, 0);  // reserved
  put<uint32_t>(out, payload_len);
}

std::string with_header(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  put_header(out, type, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kQueueFull:
      return "queue_full";
    case Status::kDeadlineExceeded:
      return "deadline_exceeded";
    case Status::kNoSuchModel:
      return "no_such_model";
    case Status::kAuthDenied:
      return "auth_denied";
    case Status::kBadRequest:
      return "bad_request";
    case Status::kError:
      return "error";
  }
  return "?";
}

std::string encode_request(const RequestFrame& req) {
  std::string payload;
  payload.reserve(64 + static_cast<size_t>(req.image.size_bytes()));
  put<uint64_t>(payload, req.request_id);
  put_bytes(payload, req.model);
  put_bytes(payload, req.token);
  put<uint8_t>(payload, static_cast<uint8_t>(req.priority));
  put<uint64_t>(payload, req.deadline_us);
  put_tensor(payload, req.image);
  return with_header(FrameType::kRequest, payload);
}

std::string encode_reply(const ReplyFrame& reply) {
  std::string payload;
  payload.reserve(
      32 + (reply.status == Status::kOk
                ? static_cast<size_t>(reply.output.size_bytes())
                : reply.message.size()));
  put<uint64_t>(payload, reply.request_id);
  put<uint8_t>(payload, static_cast<uint8_t>(reply.status));
  if (reply.status == Status::kOk) {
    put_tensor(payload, reply.output);
  } else {
    put_bytes(payload, reply.message);
  }
  return with_header(FrameType::kReply, payload);
}

HeaderVerdict parse_header(const uint8_t* data, uint32_t max_payload_bytes,
                           FrameType* type, uint32_t* payload_len) {
  uint32_t magic = 0;
  uint16_t version = 0;
  uint8_t raw_type = 0;
  uint32_t len = 0;
  std::memcpy(&magic, data, 4);
  std::memcpy(&version, data + 4, 2);
  raw_type = data[6];
  std::memcpy(&len, data + 8, 4);
  if (magic != kMagic) return HeaderVerdict::kBadMagic;
  if (version != kVersion) return HeaderVerdict::kBadVersion;
  if (raw_type != static_cast<uint8_t>(FrameType::kRequest) &&
      raw_type != static_cast<uint8_t>(FrameType::kReply)) {
    return HeaderVerdict::kBadType;
  }
  if (len > max_payload_bytes) return HeaderVerdict::kTooLarge;
  *type = static_cast<FrameType>(raw_type);
  *payload_len = len;
  return HeaderVerdict::kOk;
}

Status parse_request_payload(const uint8_t* data, size_t len,
                             RequestFrame* out, std::string* err) {
  Cursor c{data, len};
  if (!c.read(&out->request_id)) {
    *err = "truncated request id";
    return Status::kBadRequest;
  }
  if (!c.read_bytes(&out->model)) {
    *err = "truncated model name";
    return Status::kBadRequest;
  }
  if (!c.read_bytes(&out->token)) {
    *err = "truncated auth token";
    return Status::kBadRequest;
  }
  uint8_t prio = 0;
  if (!c.read(&prio) || !c.read(&out->deadline_us)) {
    *err = "truncated priority/deadline";
    return Status::kBadRequest;
  }
  if (prio > static_cast<uint8_t>(serve::Priority::kBulk)) {
    *err = "bad priority " + std::to_string(int(prio));
    return Status::kBadRequest;
  }
  out->priority = static_cast<serve::Priority>(prio);
  if (out->model.empty()) {
    *err = "empty model name";
    return Status::kBadRequest;
  }
  if (!c.read_tensor(&out->image, err)) return Status::kBadRequest;
  return Status::kOk;
}

bool parse_reply_payload(const uint8_t* data, size_t len, ReplyFrame* out) {
  Cursor c{data, len};
  uint8_t status = 0;
  if (!c.read(&out->request_id) || !c.read(&status)) return false;
  if (status > static_cast<uint8_t>(Status::kError)) return false;
  out->status = static_cast<Status>(status);
  if (out->status == Status::kOk) {
    std::string err;
    return c.read_tensor(&out->output, &err);
  }
  return c.read_bytes(&out->message) && c.left == 0;
}

}  // namespace dsx::net
