// dsx::net ingress - the socket front-end of the serving stack.
//
// IngressServer turns the in-process InferenceServer::submit() API into a
// wire: clients connect over TCP, send length-prefixed request frames
// (net/protocol.hpp) and receive framed replies carrying logits or a typed
// status. Admission failures travel the same wire - a QueueFull or
// DeadlineExceeded from the serving tier becomes a framed error reply on a
// connection that stays open, never a dropped connection mid-request.
//
// Threading model (one ingress = 1 + dispatch_threads threads):
//
//   event thread   poll()-based loop owning every connection: accepts,
//                  non-blocking reads, frame delimiting, tenant/quota
//                  admission, and all writes. Connection state is touched by
//                  this thread ONLY - workers communicate through queues.
//   dispatch pool  N workers each popping a parsed request, submitting it to
//                  the serving tier (through the ResidencyManager when one
//                  is attached - cold models fault in transparently) and
//                  blocking on the future; the encoded reply goes back to
//                  the event thread via the completion queue + wake pipe.
//
// The pool is what lets micro-batching form: N concurrent waiters keep up
// to N requests in a batcher's queue, so wire traffic batches exactly like
// N in-process client threads would. Size dispatch_threads >= the model's
// max_batch to saturate it.
//
// Flow control, all bounded:
//   - accept:   at max_connections the listen fd is simply not polled; the
//               kernel backlog absorbs the burst.
//   - dispatch: a full dispatch queue answers kQueueFull immediately.
//   - quota:    a tenant at max_inflight is answered kQueueFull; an unknown
//               token kAuthDenied. A tenant's priority is a floor: requests
//               asking for a more urgent class are clamped to it.
//   - writes:   per-connection out-queue; past max_conn_out_bytes the
//               connection's reads pause (POLLIN dropped) until the peer
//               drains its replies. Replies are never discarded for a live
//               connection - a slow reader stalls only itself.
//
// Exactly-once: every frame accepted off the wire is answered exactly once
// - by a logits reply or a typed error. The only exception a peer can cause
// is its own disconnect, in which case its pending replies are completed
// (the futures are consumed) and dropped at delivery. A header-level
// framing error (bad magic/version, oversized length) is answered with a
// best-effort error frame and the connection closes - the byte stream has
// no recoverable frame boundary after it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "net/residency.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace dsx::net {

/// One tenant: an auth token mapped to a QoS floor and an in-flight quota.
struct TenantSpec {
  std::string token;
  std::string name;  // journal/metrics label; defaults to the token
  /// Most urgent priority class this tenant may use; more urgent asks are
  /// clamped to it (lower enum value = more urgent).
  serve::Priority priority = serve::Priority::kNormal;
  /// Concurrent in-flight requests allowed; 0 = unlimited. Over quota is
  /// answered kQueueFull (admission control, same as a full batcher queue).
  int max_inflight = 0;
};

struct IngressOptions {
  int port = 0;  // 0 = ephemeral; see IngressServer::port()
  std::string bind_address = "127.0.0.1";
  /// Connections held concurrently; past it, accepting pauses.
  int max_connections = 64;
  /// Dispatch/reply workers. >= the served models' max_batch keeps
  /// micro-batches as full as in-process clients would.
  int dispatch_threads = 8;
  /// Per-frame payload cap; an oversized length prefix is a framing error.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-connection write-queue backpressure threshold.
  size_t max_conn_out_bytes = 4u << 20;
  /// SO_SNDBUF for accepted sockets; 0 = kernel default. Shrinking it makes
  /// the write queue (and so the backpressure threshold) engage sooner
  /// instead of letting the kernel buffer megabytes per slow reader.
  int so_sndbuf = 0;
  /// Parsed requests waiting for a dispatch worker; past it, kQueueFull.
  size_t dispatch_capacity = 256;
  /// Accept requests with an empty token (served at kNormal, no quota).
  /// With false, an empty token is answered kAuthDenied.
  bool allow_anonymous = true;
  std::vector<TenantSpec> tenants;
};

class IngressServer {
 public:
  /// `server` (and `residency`, when given) must outlive the ingress.
  /// With a residency manager, requests route through it - models it
  /// manages fault in on demand; names it does not know fall through to
  /// the server registry directly.
  explicit IngressServer(serve::InferenceServer& server,
                         IngressOptions opts = {},
                         ResidencyManager* residency = nullptr);
  ~IngressServer();

  IngressServer(const IngressServer&) = delete;
  IngressServer& operator=(const IngressServer&) = delete;

  /// Binds, listens and spawns the event + dispatch threads. Throws
  /// dsx::Error when the socket cannot be bound.
  void start();
  /// Closes every connection and joins all threads. Already-dispatched
  /// requests finish against the serving tier (stop the ingress BEFORE the
  /// InferenceServer), but their replies are no longer delivered.
  /// Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves opts.port == 0); 0 before start().
  int port() const { return port_.load(std::memory_order_acquire); }

  struct Stats {
    uint64_t connections = 0;     // accepted, lifetime
    uint64_t frames = 0;          // request frames parsed off the wire
    uint64_t replies = 0;         // replies delivered into a write queue
    uint64_t dropped_replies = 0;  // completed but peer had disconnected
    uint64_t framing_errors = 0;  // header-level errors (connection killed)
    uint64_t rejected = 0;        // auth/quota rejections answered
  };
  Stats stats() const;

 private:
  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    std::string in;                 // unparsed inbound bytes
    std::deque<std::string> out;    // encoded replies awaiting the socket
    size_t out_head = 0;            // sent bytes of out.front()
    size_t out_bytes = 0;           // total queued outbound bytes
    int inflight = 0;               // dispatched frames awaiting replies
    bool read_closed = false;       // peer EOF seen
    bool closing = false;           // fatal framing error: flush then close
    bool paused = false;            // reads paused by write backpressure
    /// Hard socket error: retired by the event loop's next sweep. Deferred
    /// (instead of erasing inline) so Conn references held up the call
    /// stack - parse_frames over enqueue_reply over a failed flush - stay
    /// valid.
    bool dead = false;
  };

  struct Task {
    uint64_t conn_id = 0;
    RequestFrame req;
    int tenant = -1;  // index into opts_.tenants; -1 = anonymous
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::string bytes;
  };

  void event_loop();
  void worker_loop();
  void accept_ready();
  void handle_readable(Conn& c);
  void handle_writable(Conn& c);
  /// Delimits and consumes every complete frame in c.in.
  void parse_frames(Conn& c);
  /// Admission (parse, tenant, quota) for one frame payload.
  void handle_frame(Conn& c, const uint8_t* payload, size_t len);
  /// Queues an encoded reply on the connection (event thread only).
  void enqueue_reply(Conn& c, std::string bytes);
  void drop_conn(uint64_t id);
  void wake();
  /// Runs one request against the serving tier; never throws.
  ReplyFrame run_request(const RequestFrame& req);

  serve::InferenceServer& server_;
  IngressOptions opts_;
  ResidencyManager* residency_;
  std::unordered_map<std::string, int> token_to_tenant_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> port_{0};
  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::thread event_thread_;
  std::vector<std::thread> workers_;

  // Event thread private state (no lock: single owner).
  std::map<uint64_t, Conn> conns_;
  uint64_t next_conn_id_ = 1;

  std::mutex dispatch_mu_;
  std::condition_variable dispatch_cv_;
  std::deque<Task> dispatch_;

  std::mutex completion_mu_;
  std::deque<Completion> completions_;

  std::vector<std::atomic<int>> tenant_inflight_;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> frames_{0};
  std::atomic<uint64_t> replies_{0};
  std::atomic<uint64_t> dropped_replies_{0};
  std::atomic<uint64_t> framing_errors_{0};
  std::atomic<uint64_t> rejected_{0};

  obs::Counter connections_metric_;   // dsx_net_connections_total
  obs::Counter frames_metric_;        // dsx_net_frames_total
  obs::Counter replies_metric_;       // dsx_net_replies_total
  obs::Counter reply_errors_metric_;  // dsx_net_reply_errors_total
  obs::Counter framing_metric_;       // dsx_net_framing_errors_total
  obs::Counter rejected_metric_;      // dsx_net_rejected_total
  obs::Counter pauses_metric_;        // dsx_net_backpressure_pauses_total
  obs::Gauge open_metric_;            // dsx_net_open_connections
};

}  // namespace dsx::net
