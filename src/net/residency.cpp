#include "net/residency.hpp"

#include <chrono>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "obs/journal.hpp"

namespace dsx::net {

namespace {

constexpr const char* kEndpointPath = "/residency";

/// serve::submit throws plain dsx::Error("no model named ...") when a name
/// is not in the registry - the signature of a submit that raced eviction.
bool is_routing_miss(const Error& e) {
  return std::string(e.what()).find("no model named") != std::string::npos;
}

}  // namespace

ResidencyManager::ResidencyManager(serve::InferenceServer& server,
                                   deploy::ModelStore& store,
                                   ResidencyOptions opts)
    : server_(server), store_(store), opts_(std::move(opts)) {
  DSX_REQUIRE(opts_.budget_floats >= 0,
              "ResidencyOptions: budget_floats must be >= 0");
  obs::Registry& reg = obs::Registry::global();
  faults_metric_ =
      reg.counter("dsx_residency_faults_total", {},
                  "Models faulted in (compiled from the store on demand).");
  evictions_metric_ =
      reg.counter("dsx_residency_evictions_total", {},
                  "Models demoted to their on-disk version to fit the "
                  "residency budget.");
  resident_metric_ = reg.gauge("dsx_residency_resident_models", {},
                               "Managed models currently compiled and "
                               "registered with the server.");
  used_metric_ = reg.gauge("dsx_residency_used_floats", {},
                           "Floats (weights + workspace) held by resident "
                           "managed models.");
  fault_latency_ = reg.histogram("dsx_residency_fault_latency_us", {},
                                 "Fault-in latency (store compile + "
                                 "register), microseconds.");
  attach_endpoint();
}

ResidencyManager::~ResidencyManager() {
  server_.remove_exporter_endpoint(kEndpointPath);
}

void ResidencyManager::attach_endpoint() {
  server_.set_exporter_endpoint(kEndpointPath,
                                [this] { return residency_json(); });
}

void ResidencyManager::add_model(const std::string& name,
                                 const std::string& version,
                                 ResidencyPolicy policy) {
  DSX_REQUIRE(store_.has_version(name, version),
              "residency: no stored version " << name << "/" << version);
  std::lock_guard<std::mutex> lock(state_mu_);
  DSX_REQUIRE(models_.find(name) == models_.end(),
              "residency: model '" << name << "' already managed");
  ModelState st;
  st.version = version;
  st.policy = policy;
  st.last_use = ++clock_;
  models_.emplace(name, std::move(st));
}

std::string ResidencyManager::pick_victim_locked() const {
  std::string victim;
  int victim_class = 0;
  uint64_t victim_use = 0;
  for (const auto& [name, st] : models_) {
    if (!st.resident || st.policy.pinned) continue;
    const bool better =
        victim.empty() || st.policy.eviction_class > victim_class ||
        (st.policy.eviction_class == victim_class && st.last_use < victim_use);
    if (better) {
      victim = name;
      victim_class = st.policy.eviction_class;
      victim_use = st.last_use;
    }
  }
  return victim;
}

void ResidencyManager::make_room(int64_t need_floats,
                                 const std::string& admitting) {
  if (opts_.budget_floats <= 0) return;
  for (;;) {
    std::string victim;
    int64_t victim_cost = 0;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (used_floats_ + need_floats <= opts_.budget_floats) return;
      victim = pick_victim_locked();
      if (victim.empty() || victim == admitting) return;  // nothing to evict
      // Mark the demotion before the drain: a concurrent submit fast-path
      // that still sees resident==true merely races the unregister and
      // retries through the fault path.
      ModelState& st = models_.at(victim);
      st.resident = false;
      victim_cost = st.cost_floats;
      st.cost_floats = 0;
      used_floats_ -= victim_cost;
      ++evictions_;
      resident_metric_.add(-1);
      used_metric_.set(used_floats_);
    }
    // Drain outside state_mu_ (queued requests execute during the stop);
    // op_mu_ is held by our caller, so no fault-in observes the half-state.
    server_.unregister_model(victim);
    evictions_metric_.inc();
    obs::Journal::global().record(
        obs::EventKind::kResidency, "net.residency",
        "evicted " + victim + " (" + std::to_string(victim_cost) +
            " floats) for " + admitting);
  }
}

void ResidencyManager::ensure_resident(const std::string& name) {
  std::string version;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    auto it = models_.find(name);
    DSX_REQUIRE(it != models_.end(),
                "residency: unknown model '" << name << "'");
    if (it->second.resident) {
      it->second.last_use = ++clock_;
      return;  // fast path: no op_mu_, no fault
    }
    version = it->second.version;
  }
  const auto fault_start = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> op_lock(op_mu_);
  {
    // Single-flight re-check: the herd blocked on op_mu_ while the first
    // thread compiled; everyone after finds the model resident here.
    std::lock_guard<std::mutex> lock(state_mu_);
    ModelState& st = models_.at(name);
    if (st.resident) {
      st.last_use = ++clock_;
      return;
    }
  }
  // Admission estimate from the manifest (weights only - the workspace is
  // unknown until compile). Reconciled against the CompileReport below.
  const int64_t estimate =
      store_.version_weight_bytes(name, version) /
      static_cast<int64_t>(sizeof(float));
  make_room(estimate, name);
  std::unique_ptr<serve::CompiledModel> model =
      store_.compile(name, version, opts_.compile);
  const serve::CompileReport& report = model->report();
  const int64_t actual = report.param_floats + report.workspace_floats;
  server_.register_model(name, std::move(model), opts_.batcher);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ModelState& st = models_.at(name);
    st.resident = true;
    st.cost_floats = actual;
    st.last_use = ++clock_;
    used_floats_ += actual;
    resident_metric_.add(1);
    used_metric_.set(used_floats_);
  }
  // The actual cost may overshoot the estimate (workspace); evict again so
  // steady state honors the budget. Transient overshoot <= one workspace.
  make_room(0, name);
  ++faults_;
  faults_metric_.inc();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - fault_start)
                      .count();
  fault_latency_.record(us);
  obs::Journal::global().record(
      obs::EventKind::kResidency, "net.residency",
      "faulted in " + name + "/" + version + " (" + std::to_string(actual) +
          " floats, " + std::to_string(us) + " us)");
}

void ResidencyManager::touch(const std::string& name) {
  std::lock_guard<std::mutex> lock(state_mu_);
  auto it = models_.find(name);
  if (it != models_.end()) it->second.last_use = ++clock_;
}

template <typename SubmitFn>
std::future<Tensor> ResidencyManager::submit_impl(const std::string& name,
                                                  const SubmitFn& submit_fn) {
  // A submit can race its model's eviction: the resident check passes, then
  // the name is unregistered before the server resolves it. The server
  // answers with a routing miss; faulting back in and retrying preserves
  // the "callers see latency, never an error" contract. Bounded: each retry
  // re-faults, and an attacker-free system converges in one round.
  constexpr int kAttempts = 8;
  for (int attempt = 0;; ++attempt) {
    ensure_resident(name);
    try {
      return submit_fn();
    } catch (const serve::QueueFull&) {
      throw;  // admission control - surface unchanged
    } catch (const serve::Stopped&) {
      throw;  // server shutting down
    } catch (const Error& e) {
      if (!is_routing_miss(e) || attempt + 1 >= kAttempts) throw;
    }
  }
}

std::future<Tensor> ResidencyManager::submit(const std::string& name,
                                             const Tensor& image) {
  return submit_impl(name, [&] { return server_.submit(name, image); });
}

std::future<Tensor> ResidencyManager::submit(const std::string& name,
                                             const Tensor& image,
                                             shard::SubmitOptions sopts) {
  return submit_impl(name, [&] { return server_.submit(name, image, sopts); });
}

Tensor ResidencyManager::infer(const std::string& name, const Tensor& image) {
  return submit(name, image).get();
}

bool ResidencyManager::resident(const std::string& name) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  auto it = models_.find(name);
  return it != models_.end() && it->second.resident;
}

std::vector<std::string> ResidencyManager::model_names() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, st] : models_) names.push_back(name);
  return names;
}

ResidencyStats ResidencyManager::stats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  ResidencyStats s;
  s.registered = static_cast<int64_t>(models_.size());
  for (const auto& [name, st] : models_) s.resident += st.resident ? 1 : 0;
  s.faults = faults_;
  s.evictions = evictions_;
  s.used_floats = used_floats_;
  s.budget_floats = opts_.budget_floats;
  return s;
}

std::string ResidencyManager::residency_json() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  std::ostringstream out;
  int64_t resident = 0;
  for (const auto& [name, st] : models_) resident += st.resident ? 1 : 0;
  out << "{\"budget_floats\":" << opts_.budget_floats
      << ",\"used_floats\":" << used_floats_
      << ",\"registered\":" << models_.size() << ",\"resident\":" << resident
      << ",\"faults\":" << faults_ << ",\"evictions\":" << evictions_
      << ",\"models\":[";
  bool first = true;
  for (const auto& [name, st] : models_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << name << "\",\"version\":\"" << st.version
        << "\",\"resident\":" << (st.resident ? "true" : "false")
        << ",\"pinned\":" << (st.policy.pinned ? "true" : "false")
        << ",\"eviction_class\":" << st.policy.eviction_class
        << ",\"cost_floats\":" << st.cost_floats
        << ",\"last_use\":" << st.last_use << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace dsx::net
