// dsx::net wire protocol - length-prefixed binary framing.
//
// One frame = a 12-byte little-endian header followed by `payload_len`
// payload bytes:
//
//   u32 magic      "DSXN" (0x4E585344)
//   u16 version    1
//   u8  type       1 = request, 2 = reply
//   u8  reserved   0
//   u32 payload_len  <= the receiver's max_frame_bytes
//
// Request payload (client -> server):
//   u64 request_id                   client-chosen; echoed on the reply
//   u16 name_len,  name bytes        model name
//   u16 token_len, token bytes       tenant auth token ("" = anonymous)
//   u8  priority                     serve::Priority (0/1/2); clamped
//   u64 deadline_us                  relative budget; 0 = no deadline
//   u8  rank, rank x i64 dims        image shape ([C,H,W] or [1,C,H,W])
//   numel x f32                      image data, row-major
//
// Reply payload (server -> client):
//   u64 request_id
//   u8  status                       Status below
//   status == kOk:   u8 rank, dims, numel x f32   (the logits)
//   status != kOk:   u16 msg_len, msg bytes       (human-readable cause)
//
// Error containment is two-tier, and the split is the point:
//   - A corrupt HEADER (bad magic/version/type, oversized payload_len) means
//     framing is lost - there is no way to find the next frame boundary -
//     so the connection must be torn down (after a best-effort error reply).
//   - A corrupt PAYLOAD inside a well-delimited frame is recoverable: the
//     server answers a framed kBadRequest (echoing request_id when the
//     first 8 bytes parsed) and the connection keeps serving.
//
// Integers are little-endian on the wire; this implementation memcpy's
// native integers (DSXplore targets commodity x86/ARM, both LE).
#pragma once

#include <cstdint>
#include <string>

#include "serve/request.hpp"
#include "tensor/tensor.hpp"

namespace dsx::net {

inline constexpr uint32_t kMagic = 0x4E585344u;  // "DSXN" little-endian
inline constexpr uint16_t kVersion = 1;
inline constexpr size_t kHeaderBytes = 12;
/// Shape sanity bound: nothing in DSXplore exceeds rank 4; 8 leaves slack.
inline constexpr int kMaxRank = 8;
/// Default per-frame payload cap (both directions). 16 MiB fits any
/// activations this repo serves with two orders of magnitude to spare.
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u << 20;

enum class FrameType : uint8_t { kRequest = 1, kReply = 2 };

/// Reply status byte. The non-kOk values mirror the serving tier's
/// exception taxonomy so wire clients see the same admission semantics as
/// in-process callers.
enum class Status : uint8_t {
  kOk = 0,
  kQueueFull = 1,         // serve::QueueFull (admission control)
  kDeadlineExceeded = 2,  // serve::DeadlineExceeded (shed or expired)
  kNoSuchModel = 3,       // unknown model name
  kAuthDenied = 4,        // unknown token, or tenant over quota
  kBadRequest = 5,        // unparseable payload in a well-framed frame
  kError = 6,             // anything else (message says what)
};

const char* status_name(Status s);

/// Header verdicts beyond kOk are fatal to the connection (framing lost).
enum class HeaderVerdict {
  kOk,
  kBadMagic,
  kBadVersion,
  kBadType,
  kTooLarge,
};

struct RequestFrame {
  uint64_t request_id = 0;
  std::string model;
  std::string token;
  serve::Priority priority = serve::Priority::kNormal;
  uint64_t deadline_us = 0;  // relative; 0 = none
  Tensor image;
};

struct ReplyFrame {
  uint64_t request_id = 0;
  Status status = Status::kOk;
  Tensor output;        // defined iff status == kOk
  std::string message;  // non-empty iff status != kOk
};

/// Serializes header + payload into one contiguous buffer ready to send.
std::string encode_request(const RequestFrame& req);
std::string encode_reply(const ReplyFrame& reply);

/// Validates a 12-byte header. On kOk fills `type` and `payload_len`.
HeaderVerdict parse_header(const uint8_t* data, uint32_t max_payload_bytes,
                           FrameType* type, uint32_t* payload_len);

/// Parses a request payload. Returns kOk or kBadRequest (with `err`
/// explaining why). `out->request_id` is filled whenever the first 8 bytes
/// were present - a kBadRequest reply can still be addressed.
Status parse_request_payload(const uint8_t* data, size_t len,
                             RequestFrame* out, std::string* err);

/// Parses a reply payload (client side). False = malformed.
bool parse_reply_payload(const uint8_t* data, size_t len, ReplyFrame* out);

}  // namespace dsx::net
