#include <algorithm>

#include "common/check.hpp"
#include "core/compositions.hpp"
#include "ops/conv2d.hpp"
#include "tensor/tensor_ops.hpp"

namespace dsx::scc {

ChannelStackSCC::ChannelStackSCC(const SCCConfig& cfg, bool cyclic_opt)
    : map_(cfg), cyclic_opt_(cyclic_opt) {}

std::vector<int64_t> ChannelStackSCC::stacked_indices() const {
  const SCCConfig& cfg = map_.config();
  const int64_t gw = map_.group_width();
  std::vector<int64_t> idx;
  idx.reserve(static_cast<size_t>(cfg.out_channels * gw));
  for (int64_t f = 0; f < cfg.out_channels; ++f) {
    const ChannelWindow win = map_.window(f);
    for (int64_t k = 0; k < gw; ++k) {
      idx.push_back((win.start + k) % cfg.in_channels);
    }
  }
  return idx;
}

Tensor ChannelStackSCC::forward(const Tensor& input, const Tensor& weight,
                                const Tensor* bias) const {
  const SCCConfig& cfg = map_.config();
  const int64_t gw = map_.group_width();
  DSX_REQUIRE(weight.shape() == (Shape{cfg.out_channels, gw}),
              "ChannelStackSCC: weight shape " << weight.shape().to_string());

  // Steps 1-3 of Fig. 3(a): index, extract, concatenate.
  Tensor stacked;
  if (!cyclic_opt_) {
    stacked = gather_channels(input, stacked_indices());
  } else {
    // Gather one cycle, then replicate it - computation/memory equivalent to
    // the base path, as the paper observes for CHS + CC. A model may use
    // fewer filters than one full cycle, so the cycle is clamped to Cout.
    const int64_t cycle_len =
        std::min(map_.cyclic_dist(), cfg.out_channels);
    std::vector<int64_t> cycle_idx;
    cycle_idx.reserve(static_cast<size_t>(cycle_len * gw));
    for (int64_t f = 0; f < cycle_len; ++f) {
      const ChannelWindow win = map_.window(f);
      for (int64_t k = 0; k < gw; ++k) {
        cycle_idx.push_back((win.start + k) % cfg.in_channels);
      }
    }
    const Tensor cycle = gather_channels(input, cycle_idx);
    std::vector<Tensor> reps;
    int64_t remaining = cfg.out_channels;
    while (remaining > 0) {
      if (remaining >= cycle_len) {
        reps.push_back(cycle);
        remaining -= cycle_len;
      } else {
        reps.push_back(slice_channels(cycle, 0, remaining * gw));
        remaining = 0;
      }
    }
    stacked = concat_channels(reps);
  }

  // Step 4: grouped 1x1 convolution with groups = Cout (one filter each).
  const Tensor w4 = weight.reshape(Shape{cfg.out_channels, gw, 1, 1});
  Conv2dArgs args;
  args.stride = cfg.stride;
  args.pad = 0;
  args.groups = cfg.out_channels;
  return conv2d_forward(stacked, w4, bias, args);
}

SCCGrads ChannelStackSCC::backward(const Tensor& input, const Tensor& weight,
                                   const Tensor& doutput, bool need_dinput,
                                   bool has_bias) const {
  const SCCConfig& cfg = map_.config();
  const int64_t gw = map_.group_width();
  const std::vector<int64_t> idx = stacked_indices();

  // Rebuild the stacked activation (PyTorch would have kept it alive in the
  // autograd graph; either way it is materialised once more here).
  const Tensor stacked = gather_channels(input, idx);
  const Tensor w4 = weight.reshape(Shape{cfg.out_channels, gw, 1, 1});
  Conv2dArgs args;
  args.stride = cfg.stride;
  args.pad = 0;
  args.groups = cfg.out_channels;

  const Conv2dGrads cg =
      conv2d_backward(stacked, w4, doutput, args, need_dinput, has_bias);

  SCCGrads grads;
  grads.dweight = cg.dweight.reshape(Shape{cfg.out_channels, gw});
  grads.dbias = cg.dbias;
  if (need_dinput) {
    // Backward of the gather: scatter-add the stacked gradient back into the
    // (overlapped) source channels.
    grads.dinput = Tensor(input.shape());
    scatter_add_channels(grads.dinput, cg.dinput, idx);
  }
  return grads;
}

}  // namespace dsx::scc
