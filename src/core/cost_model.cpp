#include "core/cost_model.hpp"

#include "common/check.hpp"
#include "tensor/shape.hpp"

namespace dsx::scc {

LayerCost conv2d_cost(int64_t in_channels, int64_t out_channels, int64_t kernel,
                      int64_t h, int64_t w, int64_t stride, int64_t pad,
                      int64_t groups, bool bias) {
  DSX_REQUIRE(groups >= 1 && in_channels % groups == 0 &&
                  out_channels % groups == 0,
              "conv2d_cost: invalid groups " << groups);
  const int64_t ho = conv_out_size(h, kernel, stride, pad);
  const int64_t wo = conv_out_size(w, kernel, stride, pad);
  const double cin_g = static_cast<double>(in_channels / groups);
  LayerCost cost;
  cost.macs = static_cast<double>(ho) * wo * out_channels * kernel * kernel *
              cin_g;
  cost.params = static_cast<double>(out_channels) * cin_g * kernel * kernel +
                (bias ? static_cast<double>(out_channels) : 0.0);
  return cost;
}

LayerCost depthwise_cost(int64_t channels, int64_t kernel, int64_t h, int64_t w,
                         int64_t stride, int64_t pad, bool bias) {
  const int64_t ho = conv_out_size(h, kernel, stride, pad);
  const int64_t wo = conv_out_size(w, kernel, stride, pad);
  LayerCost cost;
  cost.macs = static_cast<double>(ho) * wo * channels * kernel * kernel;
  cost.params = static_cast<double>(channels) * kernel * kernel +
                (bias ? static_cast<double>(channels) : 0.0);
  return cost;
}

LayerCost pointwise_cost(int64_t in_channels, int64_t out_channels, int64_t h,
                         int64_t w, int64_t groups, bool bias) {
  return conv2d_cost(in_channels, out_channels, 1, h, w, 1, 0, groups, bias);
}

LayerCost scc_cost(const SCCConfig& cfg, int64_t h, int64_t w, bool bias) {
  const ChannelWindowMap map(cfg);  // validates the configuration
  const int64_t ho = conv_out_size(h, 1, cfg.stride, 0);
  const int64_t wo = conv_out_size(w, 1, cfg.stride, 0);
  LayerCost cost;
  cost.macs = static_cast<double>(ho) * wo * cfg.out_channels *
              map.group_width();
  cost.params = static_cast<double>(cfg.out_channels) * map.group_width() +
                (bias ? static_cast<double>(cfg.out_channels) : 0.0);
  return cost;
}

LayerCost linear_cost(int64_t in_features, int64_t out_features, bool bias) {
  LayerCost cost;
  cost.macs = static_cast<double>(in_features) * out_features;
  cost.params = static_cast<double>(in_features) * out_features +
                (bias ? static_cast<double>(out_features) : 0.0);
  return cost;
}

LayerCost batchnorm_cost(int64_t channels) {
  LayerCost cost;
  cost.macs = 0.0;
  cost.params = 2.0 * static_cast<double>(channels);
  return cost;
}

}  // namespace dsx::scc
