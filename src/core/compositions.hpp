// PyTorch-operator-composition implementations of SCC (paper §IV-A, Fig. 3).
//
// These are the baselines DSXplore is compared against:
//   * ChannelStackSCC  - "Pytorch-Base": gather every filter's input window,
//     concatenate them into one huge [N, Cout*gw, H, W] tensor, run a single
//     grouped 1x1 convolution with groups = Cout. Pays for massive slicing /
//     concatenation and duplicated storage.
//   * ConvStackSCC     - "Pytorch-Opt" (with cyclic_opt = true): run one tiny
//     1x1 convolution per output channel and concatenate the outputs. With
//     the channel-cyclic optimization only the first cycle of input windows
//     is materialised (paper Fig. 6(b)), cutting peak memory by the ratio
//     cyclic_dist / Cout.
//
// Both are numerically identical to the fused kernels (property-tested) and
// both implement forward AND backward so the paper's Fig. 9 backward ablation
// can be reproduced.
#pragma once

#include <cstdint>
#include <vector>

#include "core/channel_map.hpp"
#include "core/scc_kernels.hpp"
#include "tensor/tensor.hpp"

namespace dsx::scc {

/// "Pytorch-Base" channel-stack composition.
class ChannelStackSCC {
 public:
  /// `cyclic_opt` gathers only one cycle and replicates it, which - as the
  /// paper notes - leaves computation and peak memory unchanged for this
  /// design (the replicated tensor must still be materialised); it exists to
  /// demonstrate exactly that.
  explicit ChannelStackSCC(const SCCConfig& cfg, bool cyclic_opt = false);

  const ChannelWindowMap& map() const { return map_; }

  Tensor forward(const Tensor& input, const Tensor& weight,
                 const Tensor* bias) const;
  SCCGrads backward(const Tensor& input, const Tensor& weight,
                    const Tensor& doutput, bool need_dinput,
                    bool has_bias) const;

 private:
  /// Window channel indices of every filter, flattened ([Cout * gw]).
  std::vector<int64_t> stacked_indices() const;

  ChannelWindowMap map_;
  bool cyclic_opt_;
};

/// "Pytorch-Opt" convolution-stack composition.
class ConvStackSCC {
 public:
  explicit ConvStackSCC(const SCCConfig& cfg, bool cyclic_opt = true);

  const ChannelWindowMap& map() const { return map_; }

  Tensor forward(const Tensor& input, const Tensor& weight,
                 const Tensor* bias) const;
  SCCGrads backward(const Tensor& input, const Tensor& weight,
                    const Tensor& doutput, bool need_dinput,
                    bool has_bias) const;

 private:
  std::vector<int64_t> window_indices(int64_t filter) const;

  ChannelWindowMap map_;
  bool cyclic_opt_;
};

}  // namespace dsx::scc
