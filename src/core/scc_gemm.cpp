#include "core/scc_gemm.hpp"

#include "common/check.hpp"
#include "device/launch.hpp"
#include "ops/gemm.hpp"

namespace dsx::scc {

namespace {

struct GemmDims {
  int64_t N, Cin, H, W, Cout, Ho, Wo, gw, stride, rows;
};

GemmDims resolve(const Tensor& input, const Tensor& weight,
                 const ChannelWindowMap& map) {
  const SCCConfig& cfg = map.config();
  DSX_REQUIRE(weight.shape() == (Shape{cfg.out_channels, map.group_width()}),
              "SCC gemm: weight shape " << weight.shape().to_string());
  const Shape out_shape = scc_output_shape(input.shape(), map);
  GemmDims d;
  d.N = input.shape().n();
  d.Cin = input.shape().c();
  d.H = input.shape().h();
  d.W = input.shape().w();
  d.Cout = cfg.out_channels;
  d.Ho = out_shape.h();
  d.Wo = out_shape.w();
  d.gw = map.group_width();
  d.stride = cfg.stride;
  d.rows = d.N * d.Ho * d.Wo;
  return d;
}

/// Gathers filter f's lowered matrix A_f[r, k] = in[n, (start+k)%Cin,
/// oy*s, ox*s] where r = (n, oy, ox). This per-filter copy is the data
/// duplication the fused kernels avoid.
void gather_window(const Tensor& input, const ChannelWindowMap& map,
                   const GemmDims& d, int64_t filter, Tensor& a) {
  const ChannelWindow win = map.window(filter);
  device::launch_kernel_chunks_modeled(
      "scc_gemm_gather", d.rows, d.rows * d.gw,
      {0.0, 8.0}, [&](int64_t b, int64_t e) {
        for (int64_t r = b; r < e; ++r) {
          const int64_t n = r / (d.Ho * d.Wo);
          const int64_t oy = (r / d.Wo) % d.Ho;
          const int64_t ox = r % d.Wo;
          float* row = a.data() + r * d.gw;
          for (int64_t k = 0; k < d.gw; ++k) {
            const int64_t ic = (win.start + k) % d.Cin;
            row[k] = input.data()[((n * d.Cin + ic) * d.H + oy * d.stride) *
                                      d.W +
                                  ox * d.stride];
          }
        }
      });
}

}  // namespace

Tensor scc_forward_gemm(const Tensor& input, const Tensor& weight,
                        const Tensor* bias, const ChannelWindowMap& map) {
  // Compatibility wrapper: a throwaway arena makes this the allocating path.
  Workspace ws;
  return scc_forward_gemm_ws(input, weight, bias, map, ws);
}

int64_t scc_gemm_workspace_floats(const Shape& input,
                                  const ChannelWindowMap& map) {
  const Shape out_shape = scc_output_shape(input, map);
  const int64_t rows = input.n() * out_shape.h() * out_shape.w();
  // Gather buffer + output column, each rounded as alloc() will round them.
  return Workspace::aligned_size(rows * map.group_width()) +
         Workspace::aligned_size(rows);
}

Tensor scc_forward_gemm_ws(const Tensor& input, const Tensor& weight,
                           const Tensor* bias, const ChannelWindowMap& map,
                           Workspace& ws) {
  const GemmDims d = resolve(input, weight, map);
  Tensor out(scc_output_shape(input.shape(), map));
  Tensor a = ws.alloc_tensor(Shape{d.rows, d.gw});  // reused gather buffer
  Tensor y = ws.alloc_tensor(Shape{d.rows});        // one output column
  const int64_t planeo = d.Ho * d.Wo;

  // Cout sequential fine-grained GEMMs of shape [rows, gw] x [gw, 1]; no
  // lowered-matrix reuse is possible because each filter's window differs.
  for (int64_t f = 0; f < d.Cout; ++f) {
    gather_window(input, map, d, f, a);
    gemm(/*trans_a=*/false, /*trans_b=*/false, d.rows, 1, d.gw, 1.0f,
         a.data(), d.gw, weight.data() + f * d.gw, 1, 0.0f, y.data(), 1);
    const float b = bias != nullptr ? bias->data()[f] : 0.0f;
    for (int64_t n = 0; n < d.N; ++n) {
      float* dst = out.data() + (n * d.Cout + f) * planeo;
      const float* src = y.data() + n * planeo;
      for (int64_t j = 0; j < planeo; ++j) dst[j] = src[j] + b;
    }
  }
  return out;
}

void scc_forward_gemm_into(const Tensor& input, const Tensor& weight,
                           const Tensor* bias, const ChannelWindowMap& map,
                           Workspace& ws, Tensor& out) {
  const GemmDims d = resolve(input, weight, map);
  DSX_REQUIRE(out.shape() == scc_output_shape(input.shape(), map),
              "SCC gemm: out shape " << out.shape().to_string());
  Tensor a = ws.alloc_tensor(Shape{d.rows, d.gw});  // reused gather buffer
  Tensor y = ws.alloc_tensor(Shape{d.rows});        // one output column
  const int64_t planeo = d.Ho * d.Wo;

  for (int64_t f = 0; f < d.Cout; ++f) {
    gather_window(input, map, d, f, a);
    // Seed the column with the bias and accumulate on top (beta = 1): each
    // pixel computes b + sum_k w_k x_k left to right, matching the fused
    // kernel's float-addition order tap for tap.
    const float b = bias != nullptr ? bias->data()[f] : 0.0f;
    for (int64_t r = 0; r < d.rows; ++r) y.data()[r] = b;
    gemm(/*trans_a=*/false, /*trans_b=*/false, d.rows, 1, d.gw, 1.0f,
         a.data(), d.gw, weight.data() + f * d.gw, 1, 1.0f, y.data(), 1);
    for (int64_t n = 0; n < d.N; ++n) {
      float* dst = out.data() + (n * d.Cout + f) * planeo;
      const float* src = y.data() + n * planeo;
      for (int64_t j = 0; j < planeo; ++j) dst[j] = src[j];
    }
  }
}

SCCGrads scc_backward_gemm(const Tensor& input, const Tensor& weight,
                           const Tensor& doutput, const ChannelWindowMap& map,
                           bool need_dinput, bool has_bias) {
  const GemmDims d = resolve(input, weight, map);
  DSX_REQUIRE(doutput.shape() == scc_output_shape(input.shape(), map),
              "SCC gemm backward: doutput shape "
                  << doutput.shape().to_string());
  const int64_t planeo = d.Ho * d.Wo;

  SCCGrads grads;
  grads.dweight = Tensor(weight.shape());
  if (has_bias) grads.dbias = Tensor(Shape{d.Cout});
  if (need_dinput) grads.dinput = Tensor(input.shape());

  Tensor a(Shape{d.rows, d.gw});   // gather buffer, reused per filter
  Tensor dy(Shape{d.rows});        // filter's output-gradient column
  Tensor da(Shape{d.rows, d.gw});  // gradient of the gathered matrix

  for (int64_t f = 0; f < d.Cout; ++f) {
    // Recollect dy_f as a contiguous column (doutput is NCHW, channel f is
    // strided across images).
    for (int64_t n = 0; n < d.N; ++n) {
      const float* src = doutput.data() + (n * d.Cout + f) * planeo;
      float* dst = dy.data() + n * planeo;
      for (int64_t j = 0; j < planeo; ++j) dst[j] = src[j];
    }
    if (has_bias) {
      double acc = 0.0;
      for (int64_t r = 0; r < d.rows; ++r) acc += dy[r];
      grads.dbias.data()[f] = static_cast<float>(acc);
    }

    gather_window(input, map, d, f, a);
    // dW_f = A_f^T dy_f : the paper's "skewed" [gw, rows] x [rows, 1] GEMM.
    gemm(/*trans_a=*/true, /*trans_b=*/false, d.gw, 1, d.rows, 1.0f, a.data(),
         d.gw, dy.data(), 1, 0.0f, grads.dweight.data() + f * d.gw, 1);

    if (!need_dinput) continue;
    // dA_f = dy_f w_f^T, then scatter-add into dinput. Overlapping filters
    // write the same input channels, so filters must stay sequential; rows
    // within one filter touch distinct pixels and parallelise race-free.
    gemm(/*trans_a=*/false, /*trans_b=*/false, d.rows, d.gw, 1, 1.0f,
         dy.data(), 1, weight.data() + f * d.gw, d.gw, 0.0f, da.data(), d.gw);
    const ChannelWindow win = map.window(f);
    device::launch_kernel_chunks_modeled(
        "scc_gemm_scatter", d.rows, d.rows * d.gw, {1.0, 8.0},
        [&](int64_t b, int64_t e) {
          for (int64_t r = b; r < e; ++r) {
            const int64_t n = r / planeo;
            const int64_t oy = (r / d.Wo) % d.Ho;
            const int64_t ox = r % d.Wo;
            const float* row = da.data() + r * d.gw;
            for (int64_t k = 0; k < d.gw; ++k) {
              const int64_t ic = (win.start + k) % d.Cin;
              grads.dinput.data()[((n * d.Cin + ic) * d.H + oy * d.stride) *
                                      d.W +
                                  ox * d.stride] += row[k];
            }
          }
        });
  }
  return grads;
}

}  // namespace dsx::scc
