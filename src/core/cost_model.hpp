// Analytic FLOPs / parameter model (reproduces the arithmetic behind the
// paper's Tables I-IV).
//
// Convention: "FLOPs" counts multiply-accumulates (MACs), matching the
// paper's numbers (e.g. VGG16 on 32x32 CIFAR-10 = 314.16 MFLOPs, which is
// the MAC count of its conv+fc layers). Parameter counts exclude BN unless
// `include_bn` is set (the paper's tables count conv/fc weights; BN adds
// 2 floats per channel and is reported separately where relevant).
#pragma once

#include <cstdint>

#include "core/channel_map.hpp"

namespace dsx::scc {

/// Cost of one layer for a single input image (batch size 1).
struct LayerCost {
  double macs = 0.0;
  double params = 0.0;

  LayerCost& operator+=(const LayerCost& other) {
    macs += other.macs;
    params += other.params;
    return *this;
  }
};

/// Standard / grouped KxK convolution over an HxW input.
LayerCost conv2d_cost(int64_t in_channels, int64_t out_channels, int64_t kernel,
                      int64_t h, int64_t w, int64_t stride, int64_t pad,
                      int64_t groups, bool bias);

/// Depthwise KxK convolution.
LayerCost depthwise_cost(int64_t channels, int64_t kernel, int64_t h, int64_t w,
                         int64_t stride, int64_t pad, bool bias);

/// Pointwise (1x1) convolution; groups > 1 gives GPW.
LayerCost pointwise_cost(int64_t in_channels, int64_t out_channels, int64_t h,
                         int64_t w, int64_t groups, bool bias);

/// Sliding-channel convolution. Identical MACs/params to GPW at equal cg -
/// the overlap changes which channels are read, not how many (paper Table I).
LayerCost scc_cost(const SCCConfig& cfg, int64_t h, int64_t w, bool bias);

/// Fully-connected layer.
LayerCost linear_cost(int64_t in_features, int64_t out_features, bool bias);

/// Batch-norm parameters (gamma/beta; running stats are buffers).
LayerCost batchnorm_cost(int64_t channels);

}  // namespace dsx::scc
