// Fused SCC kernels (the "DSXplore implementation" of paper §IV-B).
//
// Forward: output-centric - one GPU-model thread per output pixel; each
// thread does a gw-tap dot product between the filter weights and the pixels
// of the filter's (cyclic) channel window. No data duplication, no atomics.
//
// Backward: two designs, reproduced for the Fig. 9 ablation:
//   * input-centric (DSXplore): one thread per *input*-gradient pixel pulls
//     from every filter whose window covers its channel - race-free, zero
//     atomics;
//   * output-centric (DSXplore-Var): one thread per *output*-gradient pixel
//     pushes into the overlapped input channels - needs an atomic add per
//     tap, all counted by device::AtomicCounters.
//
// Weight layout: [Cout, gw]; bias: [Cout] (optional).
#pragma once

#include "core/channel_map.hpp"
#include "tensor/tensor.hpp"

namespace dsx::scc {

/// Output spatial shape for an SCC layer over `input`.
Shape scc_output_shape(const Shape& input, const ChannelWindowMap& map);

/// Output-centric forward pass.
Tensor scc_forward(const Tensor& input, const Tensor& weight,
                   const Tensor* bias, const ChannelWindowMap& map);

/// Forward into a preallocated `out` of shape scc_output_shape(input, map);
/// lets the serving runtime keep activations in a workspace arena.
/// Bit-identical to scc_forward.
void scc_forward_into(const Tensor& input, const Tensor& weight,
                      const Tensor* bias, const ChannelWindowMap& map,
                      Tensor& out);

/// Ablation of the channel-cyclic optimization (paper Algorithm 2): each
/// filter recomputes its window start arithmetically instead of reusing the
/// precomputed one-cycle table. Numerically identical to scc_forward; kept
/// for the design-choice benchmarks.
Tensor scc_forward_no_cycle_table(const Tensor& input, const Tensor& weight,
                                  const Tensor* bias,
                                  const ChannelWindowMap& map);

/// Workspace-friendly form of the no-cycle-table ablation; bit-identical to
/// scc_forward_into. Registered as a dsx::tune candidate so the tuner can
/// measure the cycle-table choice per shape instead of assuming it.
void scc_forward_no_cycle_table_into(const Tensor& input, const Tensor& weight,
                                     const Tensor* bias,
                                     const ChannelWindowMap& map, Tensor& out);

struct SCCGrads {
  Tensor dinput;
  Tensor dweight;
  Tensor dbias;
};

/// Input-centric backward (default; zero atomic operations).
SCCGrads scc_backward_input_centric(const Tensor& input, const Tensor& weight,
                                    const Tensor& doutput,
                                    const ChannelWindowMap& map,
                                    bool need_dinput, bool has_bias);

/// Output-centric backward (atomic-add variant, kept for the ablation).
SCCGrads scc_backward_output_centric(const Tensor& input, const Tensor& weight,
                                     const Tensor& doutput,
                                     const ChannelWindowMap& map,
                                     bool need_dinput, bool has_bias);

}  // namespace dsx::scc
