#include "common/check.hpp"
#include "core/scc_kernels.hpp"
#include "device/launch.hpp"

namespace dsx::scc {

Shape scc_output_shape(const Shape& input, const ChannelWindowMap& map) {
  DSX_REQUIRE(input.rank() == 4, "SCC: input must be NCHW, got "
                                     << input.to_string());
  const SCCConfig& cfg = map.config();
  DSX_REQUIRE(input.c() == cfg.in_channels,
              "SCC: input has " << input.c() << " channels, config expects "
                                << cfg.in_channels);
  const int64_t Ho = conv_out_size(input.h(), 1, cfg.stride, 0);
  const int64_t Wo = conv_out_size(input.w(), 1, cfg.stride, 0);
  return make_nchw(input.n(), cfg.out_channels, Ho, Wo);
}

namespace {

/// Shared kernel body; `start_of(f)` supplies each filter's window start so
/// the cycle-table and recompute variants stay in lockstep. Writes into the
/// caller-provided `out` so arena-backed outputs work too.
template <typename StartFn>
void scc_forward_impl(const Tensor& input, const Tensor& weight,
                      const Tensor* bias, const ChannelWindowMap& map,
                      const char* kernel_name, StartFn start_of, Tensor& out) {
  const SCCConfig& cfg = map.config();
  const Shape out_shape = scc_output_shape(input.shape(), map);
  DSX_REQUIRE(out.shape() == out_shape,
              "SCC: out shape " << out.shape().to_string() << ", expected "
                                << out_shape.to_string());
  const int64_t gw = map.group_width();
  DSX_REQUIRE(weight.shape() == (Shape{cfg.out_channels, gw}),
              "SCC: weight must be [Cout, gw] = [" << cfg.out_channels << ", "
                                                   << gw << "], got "
                                                   << weight.shape().to_string());
  if (bias != nullptr) {
    DSX_REQUIRE(bias->shape() == Shape{cfg.out_channels},
                "SCC: bias must be [Cout]");
  }

  const int64_t N = input.shape().n(), Cin = input.shape().c();
  const int64_t H = input.shape().h(), W = input.shape().w();
  const int64_t Ho = out_shape.h(), Wo = out_shape.w();
  const int64_t plane = H * W, planeo = Ho * Wo;
  const int64_t stride = cfg.stride;

  // One GPU-model thread per output pixel; CPU execution is chunked over
  // (n, filter) planes so each chunk streams whole channel planes.
  device::launch_kernel_chunks_modeled(
      kernel_name, N * cfg.out_channels, out.numel(),
      {2.0 * static_cast<double>(gw), 4.0 * (static_cast<double>(gw) + 2.0)},
      [&](int64_t b, int64_t e) {
        for (int64_t nf = b; nf < e; ++nf) {
          const int64_t n = nf / cfg.out_channels;
          const int64_t f = nf % cfg.out_channels;
          const int64_t start = start_of(f);
          const float* w = weight.data() + f * gw;
          const float bv = bias != nullptr ? bias->data()[f] : 0.0f;
          float* out_p = out.data() + nf * planeo;
          for (int64_t j = 0; j < planeo; ++j) out_p[j] = bv;
          for (int64_t k = 0; k < gw; ++k) {
            const int64_t ic = (start + k) % Cin;
            const float wk = w[k];
            const float* in_p = input.data() + (n * Cin + ic) * plane;
            if (stride == 1) {
              for (int64_t j = 0; j < planeo; ++j) out_p[j] += wk * in_p[j];
            } else {
              for (int64_t y = 0; y < Ho; ++y) {
                const float* row = in_p + (y * stride) * W;
                float* orow = out_p + y * Wo;
                for (int64_t x = 0; x < Wo; ++x) orow[x] += wk * row[x * stride];
              }
            }
          }
        }
      });
}

}  // namespace

Tensor scc_forward(const Tensor& input, const Tensor& weight,
                   const Tensor* bias, const ChannelWindowMap& map) {
  Tensor out(scc_output_shape(input.shape(), map));
  scc_forward_into(input, weight, bias, map, out);
  return out;
}

void scc_forward_into(const Tensor& input, const Tensor& weight,
                      const Tensor* bias, const ChannelWindowMap& map,
                      Tensor& out) {
  // Channel-cyclic optimization (Algorithm 2): window starts come from the
  // precomputed one-cycle table, indexed by f % cyclic_dist.
  scc_forward_impl(input, weight, bias, map, "scc_forward",
                   [&map](int64_t f) { return map.window(f).start; }, out);
}

Tensor scc_forward_no_cycle_table(const Tensor& input, const Tensor& weight,
                                  const Tensor* bias,
                                  const ChannelWindowMap& map) {
  Tensor out(scc_output_shape(input.shape(), map));
  scc_forward_no_cycle_table_into(input, weight, bias, map, out);
  return out;
}

void scc_forward_no_cycle_table_into(const Tensor& input, const Tensor& weight,
                                     const Tensor* bias,
                                     const ChannelWindowMap& map, Tensor& out) {
  const int64_t step = map.step();
  const int64_t cin = map.config().in_channels;
  scc_forward_impl(
      input, weight, bias, map, "scc_forward_nocc",
      [step, cin](int64_t f) { return (f * step) % cin; }, out);
}

}  // namespace dsx::scc
