// GEMM-based SCC - the implementation route the paper evaluates and REJECTS
// (§IV-B, "we decide not to move forward with GEMM-based solution").
//
// Each SCC filter covers a different (cyclic) window of input channels, so a
// GEMM formulation cannot share one lowered matrix across filters the way
// standard/group convolution can. It must run Cout fine-grained GEMMs, each
// between a gathered [N*Ho*Wo, gw] matrix and a skewed [gw, 1] weight vector
// (the paper's example: 128 GEMMs of ((56x56) x 32) x (32 x 1) where GPW
// needs just 2 of ((56x56) x 32) x (32 x 64)).
//
// We implement it faithfully - per-filter gather + ops/gemm - so the claim
// is measurable rather than asserted: it is numerically identical to the
// fused kernels (property-tested) and loses to them in bench/micro_kernels
// on both time (kernel-launch amortisation) and memory (the gather buffer).
#pragma once

#include "core/channel_map.hpp"
#include "core/scc_kernels.hpp"
#include "tensor/tensor.hpp"
#include "tensor/workspace.hpp"

namespace dsx::scc {

/// Forward pass via Cout per-filter GEMMs. Numerically identical to
/// scc_forward; costs an extra [N*Ho*Wo, gw] gather per filter.
Tensor scc_forward_gemm(const Tensor& input, const Tensor& weight,
                        const Tensor* bias, const ChannelWindowMap& map);

/// Workspace-backed variant: the per-filter gather buffer and output column
/// are drawn from `ws` instead of being heap-allocated per call.
Tensor scc_forward_gemm_ws(const Tensor& input, const Tensor& weight,
                           const Tensor* bias, const ChannelWindowMap& map,
                           Workspace& ws);

/// GEMM route writing into a caller-provided `out`, bit-identical to
/// scc_forward_into: the bias is seeded into the output column before the
/// GEMM (beta = 1) so each pixel accumulates b + w0*x0 + w1*x1 + ... in
/// exactly the fused kernel's order. This is the form dsx::tune registers as
/// a candidate; scc_forward_gemm_ws keeps the historical bias-after order
/// for the §IV-B ablation benches.
void scc_forward_gemm_into(const Tensor& input, const Tensor& weight,
                           const Tensor* bias, const ChannelWindowMap& map,
                           Workspace& ws, Tensor& out);

/// Floats of scratch scc_forward_gemm_ws draws from the workspace.
int64_t scc_gemm_workspace_floats(const Shape& input,
                                  const ChannelWindowMap& map);

/// Backward pass via per-filter GEMMs: dW_f = A_f^T dy_f (a skewed [gw,1]
/// GEMM), dA_f = dy_f w_f^T scattered back into dinput. The scatter
/// accumulates across overlapping filters, which forces filter-sequential
/// execution - exactly the serialization the paper's §IV argues makes GEMM
/// composition a poor fit for SCC.
SCCGrads scc_backward_gemm(const Tensor& input, const Tensor& weight,
                           const Tensor& doutput, const ChannelWindowMap& map,
                           bool need_dinput, bool has_bias);

}  // namespace dsx::scc
