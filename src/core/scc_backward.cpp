#include "common/check.hpp"
#include "core/scc_kernels.hpp"
#include "device/atomic_stats.hpp"
#include "device/launch.hpp"

namespace dsx::scc {

namespace {

struct BwdDims {
  int64_t N, Cin, H, W, Cout, Ho, Wo, gw, stride;
};

BwdDims resolve(const Tensor& input, const Tensor& weight,
                const Tensor& doutput, const ChannelWindowMap& map) {
  const Shape out_shape = scc_output_shape(input.shape(), map);
  DSX_REQUIRE(doutput.shape() == out_shape,
              "SCC backward: doutput " << doutput.shape().to_string()
                                       << " expected " << out_shape.to_string());
  const SCCConfig& cfg = map.config();
  DSX_REQUIRE(weight.shape() == (Shape{cfg.out_channels, map.group_width()}),
              "SCC backward: weight shape " << weight.shape().to_string());
  BwdDims d;
  d.N = input.shape().n();
  d.Cin = input.shape().c();
  d.H = input.shape().h();
  d.W = input.shape().w();
  d.Cout = cfg.out_channels;
  d.Ho = out_shape.h();
  d.Wo = out_shape.w();
  d.gw = map.group_width();
  d.stride = cfg.stride;
  return d;
}

// dW[f][k] = sum_{n,y,x} dOut[n,f,y,x] * in[n,(start_f+k)%Cin, y*s, x*s].
// One owner per (f) chunk: race-free. Shared by both backward designs (the
// paper's ablation differs only in the input-gradient pass).
void accumulate_weight_grads(const Tensor& input, const Tensor& doutput,
                             const ChannelWindowMap& map, const BwdDims& d,
                             Tensor& dweight) {
  device::launch_kernel_chunks_modeled(
      "scc_dweight", d.Cout, d.Cout * d.gw,
      {2.0 * static_cast<double>(d.N * d.Ho * d.Wo), 8.0},
      [&](int64_t b, int64_t e) {
        const int64_t plane = d.H * d.W, planeo = d.Ho * d.Wo;
        for (int64_t f = b; f < e; ++f) {
          const ChannelWindow win = map.window(f);
          float* dw = dweight.data() + f * d.gw;
          for (int64_t k = 0; k < d.gw; ++k) {
            const int64_t ic = (win.start + k) % d.Cin;
            double acc = 0.0;
            for (int64_t n = 0; n < d.N; ++n) {
              const float* dy = doutput.data() + (n * d.Cout + f) * planeo;
              const float* x = input.data() + (n * d.Cin + ic) * plane;
              if (d.stride == 1) {
                for (int64_t j = 0; j < planeo; ++j) acc += dy[j] * x[j];
              } else {
                for (int64_t y = 0; y < d.Ho; ++y) {
                  const float* row = x + (y * d.stride) * d.W;
                  const float* dyr = dy + y * d.Wo;
                  for (int64_t xo = 0; xo < d.Wo; ++xo) {
                    acc += dyr[xo] * row[xo * d.stride];
                  }
                }
              }
            }
            dw[k] = static_cast<float>(acc);
          }
        }
      });
}

void accumulate_bias_grads(const Tensor& doutput, const BwdDims& d,
                           Tensor& dbias) {
  device::launch_kernel_chunks(
      "scc_dbias", d.Cout, {1.0, 8.0}, [&](int64_t b, int64_t e) {
        const int64_t planeo = d.Ho * d.Wo;
        for (int64_t f = b; f < e; ++f) {
          double acc = 0.0;
          for (int64_t n = 0; n < d.N; ++n) {
            const float* dy = doutput.data() + (n * d.Cout + f) * planeo;
            for (int64_t j = 0; j < planeo; ++j) acc += dy[j];
          }
          dbias.data()[f] = static_cast<float>(acc);
        }
      });
}

}  // namespace

SCCGrads scc_backward_input_centric(const Tensor& input, const Tensor& weight,
                                    const Tensor& doutput,
                                    const ChannelWindowMap& map,
                                    bool need_dinput, bool has_bias) {
  const BwdDims d = resolve(input, weight, doutput, map);
  SCCGrads grads;
  grads.dweight = Tensor(weight.shape());
  accumulate_weight_grads(input, doutput, map, d, grads.dweight);
  if (has_bias) {
    grads.dbias = Tensor(Shape{d.Cout});
    accumulate_bias_grads(doutput, d, grads.dbias);
  }
  if (!need_dinput) return grads;

  grads.dinput = Tensor(input.shape());
  const int64_t plane = d.H * d.W, planeo = d.Ho * d.Wo;

  // Input-centric: each (n, ic) plane PULLS from every (filter, tap) that
  // reads channel ic. Writes never collide, so no atomics are needed - the
  // core of the paper's Fig. 9 claim.
  device::launch_kernel_chunks_modeled(
      "scc_dinput_input_centric", d.N * d.Cin, d.N * d.Cin * plane,
      {2.0 * static_cast<double>(d.gw), 4.0 * (static_cast<double>(d.gw) + 2.0)},
      [&](int64_t b, int64_t e) {
        for (int64_t ni = b; ni < e; ++ni) {
          const int64_t n = ni / d.Cin;
          const int64_t ic = ni % d.Cin;
          float* dx = grads.dinput.data() + ni * plane;
          for (const auto& contrib : map.contributors(ic)) {
            const float wk = weight.data()[contrib.filter * d.gw + contrib.k];
            const float* dy =
                doutput.data() + (n * d.Cout + contrib.filter) * planeo;
            if (d.stride == 1) {
              for (int64_t j = 0; j < planeo; ++j) dx[j] += wk * dy[j];
            } else {
              for (int64_t y = 0; y < d.Ho; ++y) {
                float* row = dx + (y * d.stride) * d.W;
                const float* dyr = dy + y * d.Wo;
                for (int64_t x = 0; x < d.Wo; ++x) {
                  row[x * d.stride] += wk * dyr[x];
                }
              }
            }
          }
        }
      });
  return grads;
}

SCCGrads scc_backward_output_centric(const Tensor& input, const Tensor& weight,
                                     const Tensor& doutput,
                                     const ChannelWindowMap& map,
                                     bool need_dinput, bool has_bias) {
  const BwdDims d = resolve(input, weight, doutput, map);
  SCCGrads grads;
  grads.dweight = Tensor(weight.shape());
  accumulate_weight_grads(input, doutput, map, d, grads.dweight);
  if (has_bias) {
    grads.dbias = Tensor(Shape{d.Cout});
    accumulate_bias_grads(doutput, d, grads.dbias);
  }
  if (!need_dinput) return grads;

  grads.dinput = Tensor(input.shape());
  const int64_t plane = d.H * d.W, planeo = d.Ho * d.Wo;

  // Output-centric (DSXplore-Var): each (n, filter) plane PUSHES its gradient
  // into the gw overlapped input channels. Filters sharing channels race, so
  // every update is an atomic add (counted by device::AtomicCounters).
  device::launch_kernel_chunks_modeled(
      "scc_dinput_output_centric", d.N * d.Cout, d.N * d.Cout * planeo,
      {2.0 * static_cast<double>(d.gw), 4.0 * (static_cast<double>(d.gw) + 2.0)},
      [&](int64_t b, int64_t e) {
        for (int64_t nf = b; nf < e; ++nf) {
          const int64_t n = nf / d.Cout;
          const int64_t f = nf % d.Cout;
          const ChannelWindow win = map.window(f);
          const float* dy = doutput.data() + nf * planeo;
          for (int64_t k = 0; k < d.gw; ++k) {
            const int64_t ic = (win.start + k) % d.Cin;
            const float wk = weight.data()[f * d.gw + k];
            float* dx = grads.dinput.data() + (n * d.Cin + ic) * plane;
            for (int64_t y = 0; y < d.Ho; ++y) {
              const float* dyr = dy + y * d.Wo;
              float* row = dx + (y * d.stride) * d.W;
              for (int64_t x = 0; x < d.Wo; ++x) {
                device::atomic_add_float(row[x * d.stride], wk * dyr[x]);
              }
            }
          }
        }
      });
  return grads;
}

}  // namespace dsx::scc
