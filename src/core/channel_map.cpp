#include "core/channel_map.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

#include "common/check.hpp"

namespace dsx::scc {

std::string SCCConfig::to_string() const {
  std::ostringstream os;
  os << "SCC(Cin=" << in_channels << ", Cout=" << out_channels
     << ", cg=" << groups << ", co=" << overlap * 100.0 << "%, stride="
     << stride << ")";
  return os.str();
}

ChannelWindowMap::ChannelWindowMap(const SCCConfig& cfg) : cfg_(cfg) {
  DSX_REQUIRE(cfg.in_channels >= 1, "SCC: in_channels must be >= 1");
  DSX_REQUIRE(cfg.out_channels >= 1, "SCC: out_channels must be >= 1");
  DSX_REQUIRE(cfg.groups >= 1, "SCC: groups must be >= 1");
  DSX_REQUIRE(cfg.in_channels % cfg.groups == 0,
              "SCC: Cin " << cfg.in_channels << " not divisible by cg "
                          << cfg.groups);
  DSX_REQUIRE(cfg.overlap >= 0.0 && cfg.overlap <= 1.0,
              "SCC: overlap must be in [0,1], got " << cfg.overlap);
  DSX_REQUIRE(cfg.stride >= 1, "SCC: stride must be >= 1");

  gw_ = cfg.in_channels / cfg.groups;
  ov_ = static_cast<int64_t>(std::llround(cfg.overlap * static_cast<double>(gw_)));
  DSX_CHECK(ov_ >= 0 && ov_ <= gw_, "SCC: computed overlap " << ov_
                                        << " outside [0, " << gw_ << "]");
  step_ = gw_ - ov_;

  if (step_ == 0) {
    cyclic_dist_ = 1;
  } else {
    cyclic_dist_ = cfg.in_channels / std::gcd(step_, cfg.in_channels);
  }

  cycle_starts_.resize(static_cast<size_t>(cyclic_dist_));
  int64_t start = 0;
  for (int64_t i = 0; i < cyclic_dist_; ++i) {
    cycle_starts_[static_cast<size_t>(i)] = start;
    start = (start + step_) % cfg.in_channels;
  }
  DSX_CHECK(step_ == 0 || start == cycle_starts_[0],
            "SCC: cycle does not close after cyclic_dist windows");

  contributors_.resize(static_cast<size_t>(cfg.in_channels));
  for (int64_t f = 0; f < cfg.out_channels; ++f) {
    const int64_t s = cycle_starts_[static_cast<size_t>(f % cyclic_dist_)];
    for (int64_t k = 0; k < gw_; ++k) {
      const int64_t ic = (s + k) % cfg.in_channels;
      contributors_[static_cast<size_t>(ic)].push_back({f, k});
    }
  }
}

ChannelWindow ChannelWindowMap::window(int64_t filter) const {
  DSX_REQUIRE(filter >= 0 && filter < cfg_.out_channels,
              "SCC: filter " << filter << " out of range [0, "
                             << cfg_.out_channels << ")");
  return {cycle_starts_[static_cast<size_t>(filter % cyclic_dist_)], gw_};
}

int64_t ChannelWindowMap::input_channel(int64_t filter, int64_t k) const {
  DSX_REQUIRE(k >= 0 && k < gw_, "SCC: tap " << k << " out of range [0, "
                                             << gw_ << ")");
  return (window(filter).start + k) % cfg_.in_channels;
}

const std::vector<ChannelWindowMap::Contributor>&
ChannelWindowMap::contributors(int64_t in_channel) const {
  DSX_REQUIRE(in_channel >= 0 && in_channel < cfg_.in_channels,
              "SCC: input channel " << in_channel << " out of range");
  return contributors_[static_cast<size_t>(in_channel)];
}

std::vector<std::pair<int64_t, int64_t>>
ChannelWindowMap::algorithm1_reference(int64_t in_channels, int64_t num_groups,
                                       double overlap, int64_t out_channels) {
  // Direct transcription of paper Algorithm 1.
  std::vector<std::pair<int64_t, int64_t>> channel_map;
  const int64_t group_width = in_channels / num_groups;
  int64_t start = 0, end = group_width;
  int64_t start_v = start, end_v = end;
  for (int64_t oid = 0; oid < out_channels; ++oid) {
    const std::pair<int64_t, int64_t> item{start, end};
    bool seen = false;
    for (const auto& it : channel_map) {
      if (it == item) {
        seen = true;
        break;
      }
    }
    if (seen) break;
    channel_map.push_back(item);
    start_v = end_v - static_cast<int64_t>(overlap * static_cast<double>(group_width));
    end_v = start_v + group_width;
    start = start_v % in_channels;
    end = end_v % in_channels;
  }
  return channel_map;
}

}  // namespace dsx::scc
