#include <algorithm>

#include "common/check.hpp"
#include "core/compositions.hpp"
#include "ops/conv2d.hpp"
#include "tensor/tensor_ops.hpp"

namespace dsx::scc {

ConvStackSCC::ConvStackSCC(const SCCConfig& cfg, bool cyclic_opt)
    : map_(cfg), cyclic_opt_(cyclic_opt) {}

std::vector<int64_t> ConvStackSCC::window_indices(int64_t filter) const {
  const SCCConfig& cfg = map_.config();
  const ChannelWindow win = map_.window(filter);
  std::vector<int64_t> idx(static_cast<size_t>(map_.group_width()));
  for (int64_t k = 0; k < map_.group_width(); ++k) {
    idx[static_cast<size_t>(k)] = (win.start + k) % cfg.in_channels;
  }
  return idx;
}

Tensor ConvStackSCC::forward(const Tensor& input, const Tensor& weight,
                             const Tensor* bias) const {
  const SCCConfig& cfg = map_.config();
  const int64_t gw = map_.group_width();
  DSX_REQUIRE(weight.shape() == (Shape{cfg.out_channels, gw}),
              "ConvStackSCC: weight shape " << weight.shape().to_string());

  Conv2dArgs args;
  args.stride = cfg.stride;
  args.pad = 0;
  args.groups = 1;

  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<size_t>(cfg.out_channels));

  if (cyclic_opt_) {
    // Fig. 6(b): materialise only the first cycle of input windows; every
    // later filter re-reads its window from this cycle tensor. A model may
    // use fewer filters than one full cycle, so the cycle is clamped to Cout.
    const int64_t cycle_len =
        std::min(map_.cyclic_dist(), cfg.out_channels);
    std::vector<int64_t> cycle_idx;
    cycle_idx.reserve(static_cast<size_t>(cycle_len * gw));
    for (int64_t f = 0; f < cycle_len; ++f) {
      for (int64_t ic : window_indices(f)) cycle_idx.push_back(ic);
    }
    const Tensor cycle = gather_channels(input, cycle_idx);
    for (int64_t f = 0; f < cfg.out_channels; ++f) {
      const int64_t slot = f % cycle_len;
      const Tensor window = slice_channels(cycle, slot * gw, (slot + 1) * gw);
      // Per-filter weight: copy the f-th filter into a [1, gw, 1, 1].
      Tensor wf(Shape{1, gw, 1, 1});
      for (int64_t k = 0; k < gw; ++k) wf[k] = weight.data()[f * gw + k];
      Tensor bf;
      const Tensor* bfp = nullptr;
      if (bias != nullptr) {
        bf = Tensor(Shape{1});
        bf[0] = bias->data()[f];
        bfp = &bf;
      }
      outputs.push_back(conv2d_forward(window, wf, bfp, args));
    }
  } else {
    // No CC optimization: every filter extracts (and keeps) its own window
    // tensor - this is the memory blow-up Fig. 10 measures.
    std::vector<Tensor> windows;
    windows.reserve(static_cast<size_t>(cfg.out_channels));
    for (int64_t f = 0; f < cfg.out_channels; ++f) {
      windows.push_back(gather_channels(input, window_indices(f)));
    }
    for (int64_t f = 0; f < cfg.out_channels; ++f) {
      Tensor wf(Shape{1, gw, 1, 1});
      for (int64_t k = 0; k < gw; ++k) wf[k] = weight.data()[f * gw + k];
      Tensor bf;
      const Tensor* bfp = nullptr;
      if (bias != nullptr) {
        bf = Tensor(Shape{1});
        bf[0] = bias->data()[f];
        bfp = &bf;
      }
      outputs.push_back(
          conv2d_forward(windows[static_cast<size_t>(f)], wf, bfp, args));
    }
  }
  return concat_channels(outputs);
}

SCCGrads ConvStackSCC::backward(const Tensor& input, const Tensor& weight,
                                const Tensor& doutput, bool need_dinput,
                                bool has_bias) const {
  const SCCConfig& cfg = map_.config();
  const int64_t gw = map_.group_width();

  Conv2dArgs args;
  args.stride = cfg.stride;
  args.pad = 0;
  args.groups = 1;

  SCCGrads grads;
  grads.dweight = Tensor(weight.shape());
  if (has_bias) grads.dbias = Tensor(Shape{cfg.out_channels});
  if (need_dinput) grads.dinput = Tensor(input.shape());

  for (int64_t f = 0; f < cfg.out_channels; ++f) {
    const std::vector<int64_t> idx = window_indices(f);
    const Tensor window = gather_channels(input, idx);
    Tensor wf(Shape{1, gw, 1, 1});
    for (int64_t k = 0; k < gw; ++k) wf[k] = weight.data()[f * gw + k];
    // Slice this filter's output-gradient channel.
    const Tensor df = slice_channels(doutput, f, f + 1);
    const Conv2dGrads cg =
        conv2d_backward(window, wf, df, args, need_dinput, has_bias);
    for (int64_t k = 0; k < gw; ++k) {
      grads.dweight.data()[f * gw + k] = cg.dweight[k];
    }
    if (has_bias) grads.dbias.data()[f] = cg.dbias[0];
    if (need_dinput) scatter_add_channels(grads.dinput, cg.dinput, idx);
  }
  return grads;
}

}  // namespace dsx::scc
