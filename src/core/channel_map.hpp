// Sliding-channel convolution (SCC) configuration and channel-window map.
//
// SCC (paper §III) replaces the pointwise stage of a depthwise-separable
// block. Each of the Cout filters covers a window of gw = Cin/cg input
// channels; adjacent filters' windows overlap by co*gw channels; the channel
// axis is cyclic (the window of late filters wraps to channel 0). Windows
// therefore repeat with period `cyclic_dist` (paper Fig. 5 / Algorithm 1),
// which both the fused kernels and the composition implementations exploit
// (the paper's "channel-cyclic optimization").
//
// Normative semantics (documented in DESIGN.md §5): the overlap in channels
// is llround(co*gw). The paper's Algorithm 1 writes int(co*gw) (floor), but
// its own example (Fig. 5(b): Cin=6, cg=2, co=33% -> cyclic_dist=3) requires
// rounding; `algorithm1_reference` reproduces the literal pseudo-code for
// cross-validation at exactly-representable overlaps.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dsx::scc {

/// Full parameterisation of one SCC layer (paper notation: SCC-cgX-coY%).
struct SCCConfig {
  int64_t in_channels = 0;   // Cin
  int64_t out_channels = 0;  // Cout = number of filters
  int64_t groups = 1;        // cg
  double overlap = 0.5;      // co in [0, 1]
  int64_t stride = 1;

  std::string to_string() const;
};

/// One filter's input-channel window: channels {(start + k) mod Cin}.
struct ChannelWindow {
  int64_t start = 0;
  int64_t width = 0;
};

/// Precomputed window map for one SCC layer.
class ChannelWindowMap {
 public:
  explicit ChannelWindowMap(const SCCConfig& cfg);

  const SCCConfig& config() const { return cfg_; }
  /// gw = Cin / cg.
  int64_t group_width() const { return gw_; }
  /// Channels shared by adjacent filters, llround(co * gw).
  int64_t overlap_channels() const { return ov_; }
  /// Window start advance between adjacent filters (gw - overlap_channels).
  int64_t step() const { return step_; }
  /// Number of distinct windows before the pattern repeats (Algorithm 1).
  int64_t cyclic_dist() const { return cyclic_dist_; }

  /// Window of filter `f` (any 0 <= f < Cout); O(1) via the cyclic table.
  ChannelWindow window(int64_t filter) const;
  /// Input channel read by weight tap k of filter f: (start_f + k) mod Cin.
  int64_t input_channel(int64_t filter, int64_t k) const;

  /// (filter, tap) pairs reading a given input channel, across all Cout
  /// filters - the gather list of the input-centric backward pass.
  struct Contributor {
    int64_t filter = 0;
    int64_t k = 0;
  };
  const std::vector<Contributor>& contributors(int64_t in_channel) const;

  /// Literal transcription of the paper's Algorithm 1 (floor-based overlap);
  /// returns the (start, end) pairs of one cycle, end possibly > Cin before
  /// the modulo. Exposed for tests that cross-validate the closed form.
  static std::vector<std::pair<int64_t, int64_t>> algorithm1_reference(
      int64_t in_channels, int64_t num_groups, double overlap,
      int64_t out_channels);

 private:
  SCCConfig cfg_;
  int64_t gw_ = 0;
  int64_t ov_ = 0;
  int64_t step_ = 0;
  int64_t cyclic_dist_ = 0;
  std::vector<int64_t> cycle_starts_;                  // [cyclic_dist]
  std::vector<std::vector<Contributor>> contributors_;  // [Cin]
};

}  // namespace dsx::scc
