// Replicated serving of one logical model (the heart of dsx::shard).
//
// A ReplicaSet serves one compiled plan from R independent CompiledModel
// replicas - the serving-side analogue of the paper's Fig. 14 data-parallel
// scaling (each V100 holds a model replica and consumes a shard of the
// batch). Each replica owns:
//
//   * its own CompiledModel (deep-cloned from the prototype via
//     CompiledModel::clone_replica; tuned kernel plans are shared through
//     the dsx::tune cache, so only the prototype's compile ever measures);
//   * its own DeadlineBatcher (per-replica queue, priorities, deadlines);
//   * its own execution lane - a private device::ThreadPool holding an even
//     partition of the host's worker budget - so replicas genuinely run
//     concurrently instead of serializing on the process-wide execution
//     lock.
//
// A Router spreads submissions across replicas (round-robin /
// least-outstanding / power-of-two-choices); outputs remain bit-identical
// to per-image eval-mode forward no matter which replica answers.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "device/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "serve/compiled_model.hpp"
#include "shard/deadline_batcher.hpp"
#include "shard/router.hpp"

namespace dsx::shard {

struct ShardOptions {
  /// Number of model replicas (>= 1).
  int replicas = 1;
  RoutingPolicy policy = RoutingPolicy::kLeastOutstanding;
  /// Per-replica batcher knobs (see DeadlineBatcherOptions).
  int64_t max_batch = 0;
  std::chrono::microseconds max_delay{2000};
  int64_t queue_capacity = 0;
  /// Threads per execution lane; 0 = an even partition of the current
  /// pool's thread budget (max(1, threads / replicas)). On small hosts this
  /// degenerates to single-thread lanes, which also skip all intra-op
  /// hand-off overhead - more inter-request parallelism instead.
  unsigned lane_threads = 0;
  /// Observability scope: non-empty registers per-replica dsx_serve_*
  /// series (labels {model,replica}) and dsx_shard_routed_total routing
  /// counters in obs::Registry. Empty = no export. InferenceServer sets
  /// this to the registered model name.
  std::string metric_model;
};

/// One replica's observability snapshot.
struct ReplicaStats {
  int replica = 0;
  unsigned lane_threads = 0;
  DeadlineBatcherStats batcher;
};

/// Shard-wide aggregate + per-replica breakdown.
struct ShardStats {
  int replicas = 0;
  RoutingPolicy policy = RoutingPolicy::kLeastOutstanding;
  int64_t requests = 0;  // answered across all replicas
  double qps = 0.0;      // aggregate answered / seconds since construction
  int64_t shed = 0;
  int64_t rejected = 0;
  /// Submit->answer latency aggregated across replicas (one shared
  /// histogram, not a merge of per-replica snapshots).
  device::LatencyStats::Snapshot latency;
  /// The same shared histogram's raw cumulative buckets (nanosecond
  /// samples) - the windowing primitive SLO/guardrail evaluation diffs.
  device::LogHistogram::BucketSnapshot latency_buckets;
  std::vector<ReplicaStats> per_replica;
};

class ReplicaSet {
 public:
  /// Takes ownership of the prototype (replica 0) and compiles
  /// opts.replicas - 1 clones of it. Throws std::invalid_argument on
  /// invalid options. Compilation happens here, before any traffic.
  ReplicaSet(std::unique_ptr<serve::CompiledModel> prototype,
             ShardOptions opts = {});
  ~ReplicaSet();

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  int replicas() const { return static_cast<int>(replicas_.size()); }

  /// Routes one request to a replica chosen by the routing policy.
  /// Thread-safe. Admission control is per replica: a bounded replica
  /// queue at capacity throws serve::QueueFull to the caller (the routing
  /// policies steer load away from full replicas long before that).
  std::future<Tensor> submit(const Tensor& image, SubmitOptions sopts = {});

  /// Blocking convenience wrapper.
  Tensor infer(const Tensor& image, SubmitOptions sopts = {}) {
    return submit(image, sopts).get();
  }

  /// Drains and stops every replica batcher. Idempotent.
  void stop();

  ShardStats stats() const;

  /// The prototype's compile report (replicas share its plan).
  const serve::CompileReport& prototype_report() const;

  /// Direct replica access for tests and benches (bit-identity checks,
  /// targeted routing). `r` in [0, replicas()).
  serve::CompiledModel& replica_model(int r);
  DeadlineBatcher& replica_batcher(int r);

 private:
  struct Replica {
    std::unique_ptr<serve::CompiledModel> model;
    std::unique_ptr<device::ThreadPool> lane;
    std::unique_ptr<DeadlineBatcher> batcher;  // declared last: stops first
  };

  // aggregate_latency_ precedes replicas_ so it outlives the batchers that
  // hold a pointer to it.
  device::LatencyStats aggregate_latency_;
  std::vector<Replica> replicas_;
  /// dsx_shard_routed_total{model,replica}, one per replica (detached when
  /// the fleet has no metric scope).
  std::vector<obs::Counter> routed_;
  Router router_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dsx::shard
