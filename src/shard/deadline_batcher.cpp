#include "shard/deadline_batcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "obs/flight.hpp"
#include "obs/journal.hpp"
#include "obs/trace.hpp"

namespace dsx::shard {

namespace {

std::exception_ptr deadline_error() {
  return std::make_exception_ptr(serve::DeadlineExceeded(
      "request deadline passed before batch formation (shed)"));
}

}  // namespace

DeadlineBatcher::DeadlineBatcher(serve::CompiledModel& model,
                                 DeadlineBatcherOptions opts,
                                 device::LatencyStats* extra_latency)
    : metrics_(serve::make_batcher_metrics(opts.metric_model,
                                           opts.metric_replica)),
      core_(model, extra_latency, metrics_),
      max_batch_(0),
      max_delay_(opts.max_delay),
      queue_capacity_(opts.queue_capacity),
      lane_(opts.lane),
      manual_drain_(opts.manual_drain) {
  serve::validate_batching_limits("DeadlineBatcherOptions", opts.max_batch,
                                  opts.max_delay, opts.queue_capacity);
  max_batch_ = opts.max_batch > 0 ? std::min(opts.max_batch, model.max_batch())
                                  : model.max_batch();
  if (!manual_drain_) {
    worker_ = std::thread([this] { worker_loop(); });
  }
}

DeadlineBatcher::~DeadlineBatcher() { stop(); }

std::future<Tensor> DeadlineBatcher::submit(const Tensor& image,
                                            SubmitOptions sopts) {
  // Lock-scope invariant (this is the engine behind serve::DynamicBatcher
  // too): all tensor validation/normalization happens on the caller's
  // thread before mu_ is taken; the lock covers only the queue insert and
  // flags, so N submitting clients never serialize on tensor work.
  serve::Request req = serve::make_request(core_.model(), image);
  req.priority = sopts.priority;
  req.deadline = sopts.deadline;
  std::future<Tensor> future = req.promise.get_future();

  bool dead_on_arrival = false;
  std::deque<serve::Request> expired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A distinct exception type, not DSX_REQUIRE: the server's hot-swap path
    // distinguishes "this fleet was displaced" (re-resolve and retry) from
    // every other submit failure.
    if (stopping_) throw serve::Stopped("submit: batcher is stopped");
    if (req.deadline <= req.enqueued) {
      // Dead on arrival: shed without touching the queue. Checked after the
      // stopped check - a stopped batcher throws for every submission, it
      // does not keep shedding.
      dead_on_arrival = true;
    } else {
      if (queue_capacity_ > 0 &&
          static_cast<int64_t>(queue_.size()) >= queue_capacity_) {
        // Entries that already expired while queued hold no real capacity -
        // they can never execute. Shed them (they are a deadline-sorted
        // prefix) before deciding to reject a live request.
        while (!queue_.empty() && queue_.front().deadline <= req.enqueued) {
          expired.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
      if (queue_capacity_ > 0 &&
          static_cast<int64_t>(queue_.size()) >= queue_capacity_) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        metrics_.rejected.inc();
        if (metrics_.rejected.attached()) {
          obs::Journal::global().record(
              obs::EventKind::kReject, metrics_.scope,
              "queue at capacity (" + std::to_string(queue_capacity_) + ")");
        }
        throw serve::QueueFull("submit: queue at capacity (" +
                               std::to_string(queue_capacity_) + ")");
      }
      req.seq = next_seq_++;
      insert_edf_locked(std::move(req));
      outstanding_.fetch_add(1, std::memory_order_relaxed);
      metrics_.queue_depth.set(static_cast<int64_t>(queue_.size()));
    }
  }
  if (!expired.empty()) {
    std::deque<serve::Request> none;
    answer(none, expired);  // counts sheds, fulfills outside the lock
  }
  if (dead_on_arrival) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    metrics_.shed.inc();
    req.promise.set_exception(deadline_error());
    return future;
  }
  cv_.notify_all();
  return future;
}

void DeadlineBatcher::insert_edf_locked(serve::Request&& req) {
  // Keep the queue EDF-sorted so batch formation is a prefix take. seq
  // strictly increases, so equal-(deadline, priority) requests stay FIFO.
  auto pos = std::upper_bound(
      queue_.begin(), queue_.end(), req,
      [](const serve::Request& a, const serve::Request& b) {
        return serve::edf_before(a, b);
      });
  queue_.insert(pos, std::move(req));
}

void DeadlineBatcher::form_batch_locked(
    std::chrono::steady_clock::time_point now,
    std::deque<serve::Request>& batch, std::deque<serve::Request>& shed) {
  // Expired requests never occupy a batch slot; they are collected here and
  // answered outside the lock. The queue's primary sort key is the
  // deadline, so expired requests are exactly a prefix - no full scan.
  while (!queue_.empty() && queue_.front().deadline <= now) {
    shed.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  const int64_t take =
      std::min<int64_t>(static_cast<int64_t>(queue_.size()), max_batch_);
  for (int64_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  // Anti-starvation: EDF alone would let sustained deadline traffic starve
  // a no-deadline request forever (kNoDeadline sorts last). When a full
  // batch leaves requests behind, the oldest ARRIVAL (min seq) that has
  // exhausted its max_delay budget rides along in place of the batch's
  // least-urgent member, so every batch retires the most-aged request and
  // no request waits unboundedly - the pre-EDF FIFO batcher's guarantee.
  if (!queue_.empty() && !batch.empty()) {
    auto oldest = queue_.begin();
    for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
      if (it->seq < oldest->seq) oldest = it;
    }
    if (now - oldest->enqueued > max_delay_) {
      serve::Request displaced = std::move(batch.back());
      batch.back() = std::move(*oldest);
      queue_.erase(oldest);
      insert_edf_locked(std::move(displaced));
    }
  }
  metrics_.queue_depth.set(static_cast<int64_t>(queue_.size()));
  // Saturation distributions, once per formed batch (both batcher surfaces
  // funnel through here): the backlog this formation left behind, and how
  // full the batch ran. Detached handles make these null-check no-ops for
  // unscoped batchers; attached writes are the usual relaxed atomics.
  if (!batch.empty()) {
    metrics_.queue_depth_at_batch.record(static_cast<int64_t>(queue_.size()));
    metrics_.batch_occupancy.record(static_cast<int64_t>(batch.size()) * 100 /
                                    max_batch_);
  }
}

void DeadlineBatcher::answer(std::deque<serve::Request>& batch,
                             std::deque<serve::Request>& shed) {
  if (!shed.empty()) {
    shed_.fetch_add(static_cast<int64_t>(shed.size()),
                    std::memory_order_relaxed);
    outstanding_.fetch_sub(static_cast<int64_t>(shed.size()),
                           std::memory_order_relaxed);
    metrics_.shed.inc(static_cast<int64_t>(shed.size()));
    if (metrics_.shed.attached()) {
      // One journal entry per shed GROUP - the exact per-request count lives
      // in the counter; the journal records that shedding happened and when.
      obs::Journal::global().record(
          obs::EventKind::kShed, metrics_.scope,
          std::to_string(shed.size()) + " request(s) past deadline");
    }
    if (obs::flight::flight_enabled() && metrics_.flight != nullptr) {
      // Shed = interesting by definition (the request was never executed).
      // Bound the promotion work per group: a deadline storm sheds hundreds
      // at once, and four captures already tell the story.
      const int64_t now_ns = obs::now_ns();
      size_t promoted = 0;
      for (serve::Request& req : shed) {
        if (promoted++ >= 4) break;
        obs::flight::Capture cap;
        cap.model = metrics_.scope;
        cap.trace_id = req.trace_id;
        const int64_t enq_ns = obs::steady_ns(req.enqueued);
        cap.latency_us = std::max<int64_t>(0, (now_ns - enq_ns) / 1000);
        cap.verdict = obs::flight::Verdict::kShed;
        cap.spans.push_back({"queue_wait", "serve", enq_ns,
                             std::max<int64_t>(0, now_ns - enq_ns)});
        obs::flight::promote(metrics_.flight, std::move(cap));
      }
    }
    const std::exception_ptr err = deadline_error();
    for (serve::Request& req : shed) req.promise.set_exception(err);
    shed.clear();
  }
  if (batch.empty()) return;
  if (lane_ != nullptr) {
    // Private lane: bind it so every kernel the plan launches lands on this
    // replica's threads. No process-wide execution lock - lanes are
    // independent devices.
    device::PoolScope scope(*lane_);
    core_.execute(batch, [this](const Tensor& images) {
      return core_.model().run(images);
    });
  } else {
    core_.execute(batch, [this](const Tensor& images) {
      std::lock_guard<std::mutex> lock(serve::execution_mutex());
      return core_.model().run(images);
    });
  }
  outstanding_.fetch_sub(static_cast<int64_t>(batch.size()),
                         std::memory_order_relaxed);
  batch.clear();
}

void DeadlineBatcher::worker_loop() {
  for (;;) {
    std::deque<serve::Request> batch;
    std::deque<serve::Request> shed;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      // Wait for the batch to fill, but no longer than the EDF front's
      // max_delay budget (the front is served next, so max_delay bounds ITS
      // hold time; under pure FIFO traffic the front is also the oldest
      // arrival) - and fire BEFORE the front's deadline, with enough lead
      // that the deadline-triggered wake forms the batch while the request
      // is still live. Waking exactly AT the deadline would guarantee the
      // shed of every request whose budget is tighter than max_delay, even
      // on an idle server. The lead shrinks as the deadline approaches (an
      // eighth of the remaining budget, clamped); deadlines bound queueing,
      // so a batch formed inside the lead may still finish late. The cutoff
      // is recomputed on EVERY wakeup: a tighter-deadline request arriving
      // mid-wait becomes the new front and must tighten the cutoff, not
      // sleep behind the stale one.
      while (!stopping_ &&
             static_cast<int64_t>(queue_.size()) < max_batch_) {
        const auto now = std::chrono::steady_clock::now();
        auto cutoff = queue_.front().enqueued + max_delay_;
        if (queue_.front().deadline != serve::kNoDeadline) {
          const auto lead = std::clamp<std::chrono::steady_clock::duration>(
              (queue_.front().deadline - now) / 8,
              std::chrono::microseconds(200), std::chrono::milliseconds(20));
          cutoff = std::min(cutoff, queue_.front().deadline - lead);
        }
        if (cutoff <= now ||
            cv_.wait_until(lock, cutoff) == std::cv_status::timeout) {
          break;
        }
      }
      form_batch_locked(std::chrono::steady_clock::now(), batch, shed);
    }
    answer(batch, shed);
  }
}

size_t DeadlineBatcher::drain_one() {
  DSX_REQUIRE(manual_drain_, "drain_one: batcher has a worker thread");
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  std::deque<serve::Request> batch;
  std::deque<serve::Request> shed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    form_batch_locked(std::chrono::steady_clock::now(), batch, shed);
  }
  const size_t executed = batch.size();
  answer(batch, shed);
  return executed;
}

void DeadlineBatcher::stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    to_join = std::move(worker_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
  if (manual_drain_) {
    // No worker to drain the queue; answer the remainder here, serialized
    // against any in-flight drain_one(). Deadlines still apply: expired
    // requests shed, live ones execute.
    std::lock_guard<std::mutex> drain_lock(drain_mu_);
    for (;;) {
      std::deque<serve::Request> batch;
      std::deque<serve::Request> shed;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (queue_.empty()) break;
        form_batch_locked(std::chrono::steady_clock::now(), batch, shed);
      }
      answer(batch, shed);
    }
  }
}

DeadlineBatcherStats DeadlineBatcher::stats() const {
  DeadlineBatcherStats s;
  s.batcher = core_.stats();
  s.shed = shed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.queue_depth = static_cast<int64_t>(queue_.size());
  }
  s.outstanding = outstanding_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dsx::shard
