// Replica routing policies for dsx::shard.
//
// A Router picks which replica's batcher receives the next request, given
// per-replica load (outstanding = queued + executing requests). Three
// standard policies:
//
//   kRoundRobin       - cyclic, load-blind; optimal when requests and
//                       replicas are homogeneous.
//   kLeastOutstanding - argmin of the load; best single-dispatcher policy,
//                       pays a full scan per pick.
//   kPowerOfTwo       - "power of two choices": sample two replicas
//                       pseudo-randomly, send to the less loaded. O(1) per
//                       pick with near-least-loaded balance (Mitzenmacher),
//                       the policy of choice once the replica count or the
//                       dispatcher count grows.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "common/check.hpp"

namespace dsx::shard {

enum class RoutingPolicy : int {
  kRoundRobin = 0,
  kLeastOutstanding = 1,
  kPowerOfTwo = 2,
};

const char* routing_policy_name(RoutingPolicy policy);
/// Parses "round-robin" / "least-outstanding" / "power-of-two"; throws
/// dsx::Error otherwise.
RoutingPolicy parse_routing_policy(const std::string& name);

namespace detail {
/// splitmix64: cheap stateless mixer turning the tick stream into two
/// independent-enough replica samples per pick.
inline uint64_t mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace detail

class Router {
 public:
  explicit Router(RoutingPolicy policy, uint64_t seed = 0x243F6A8885A308D3ull)
      : policy_(policy), tick_(seed) {}

  RoutingPolicy policy() const { return policy_; }

  /// Returns the chosen replica index in [0, n). `load(i)` reports replica
  /// i's outstanding count and is invoked only for the replicas the policy
  /// actually inspects (none for round-robin, two for power-of-two-choices,
  /// all for least-outstanding) - the per-request hot path never snapshots
  /// the whole fleet. Thread-safe; loads may be stale (relaxed counters),
  /// which every one of these policies tolerates by design.
  template <typename LoadFn>
  int pick_with(int n, LoadFn&& load) {
    DSX_REQUIRE(n >= 1, "Router::pick: empty replica set");
    if (n == 1) return 0;
    switch (policy_) {
      case RoutingPolicy::kRoundRobin:
        return static_cast<int>(tick_.fetch_add(1, std::memory_order_relaxed) %
                                static_cast<uint64_t>(n));
      case RoutingPolicy::kLeastOutstanding: {
        int best = 0;
        int64_t best_load = load(0);
        for (int i = 1; i < n; ++i) {
          const int64_t l = load(i);
          if (l < best_load) {
            best = i;
            best_load = l;
          }
        }
        return best;
      }
      case RoutingPolicy::kPowerOfTwo: {
        const uint64_t h =
            detail::mix64(tick_.fetch_add(1, std::memory_order_relaxed));
        const int i = static_cast<int>(h % static_cast<uint64_t>(n));
        const int j = static_cast<int>((h >> 32) % static_cast<uint64_t>(n));
        return load(j) < load(i) ? j : i;
      }
    }
    return 0;
  }

  /// Snapshot convenience form (tests, offline callers).
  int pick(std::span<const int64_t> outstanding) {
    return pick_with(static_cast<int>(outstanding.size()), [&](int i) {
      return outstanding[static_cast<size_t>(i)];
    });
  }

 private:
  RoutingPolicy policy_;
  std::atomic<uint64_t> tick_;  // RR cursor / po2 pseudo-random stream
};

}  // namespace dsx::shard
