#include "shard/replica_set.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/check.hpp"

namespace dsx::shard {

ReplicaSet::ReplicaSet(std::unique_ptr<serve::CompiledModel> prototype,
                       ShardOptions opts)
    : router_(opts.policy) {
  DSX_REQUIRE(prototype != nullptr, "ReplicaSet: null prototype");
  if (opts.replicas < 1) {
    throw std::invalid_argument("ShardOptions: replicas must be >= 1, got " +
                                std::to_string(opts.replicas));
  }
  // Fail fast on the batcher limits too - phase 2 would reject them anyway,
  // but only after the expensive fleet compile.
  serve::validate_batching_limits("ShardOptions", opts.max_batch,
                                  opts.max_delay, opts.queue_capacity);
  // Partition the host's worker budget across lanes. The budget is the
  // CURRENT pool's size so a ReplicaSet constructed inside another lane
  // subdivides that lane, not the whole machine.
  const unsigned budget = device::ThreadPool::current().size();
  const unsigned per_lane =
      opts.lane_threads > 0
          ? opts.lane_threads
          : std::max(1u, budget / static_cast<unsigned>(opts.replicas));

  // Phase 1: compile the whole fleet. Replica 0 is the prototype itself;
  // its plan was compiled on the caller's pool (typically wider than the
  // lane) - acceptable, on narrow lanes the schedule axis is moot and
  // kernel variants differ mildly. Clones compile UNDER their lane's
  // PoolScope with the prototype's tuning mode preserved: the tuning
  // ProblemKey includes the executing pool's width, so a kTune prototype's
  // first clone measures each problem once at lane width and every later
  // clone (same width) hits those cache records - the fleet shares one
  // lane-sized plan and measuring happens at most once per distinct width.
  replicas_.reserve(static_cast<size_t>(opts.replicas));
  for (int r = 0; r < opts.replicas; ++r) {
    Replica rep;
    // Scoped fleets name their lanes ("<model>/lane<r>") so the profiler's
    // resource layer exports per-lane busy/idle utilization; unscoped
    // fleets keep anonymous (unexported) lanes.
    rep.lane = std::make_unique<device::ThreadPool>(
        per_lane, opts.metric_model.empty()
                      ? std::string{}
                      : opts.metric_model + "/lane" + std::to_string(r));
    if (r == 0) {
      rep.model = std::move(prototype);
    } else {
      device::PoolScope lane_scope(*rep.lane);
      rep.model = replicas_.front().model->clone_replica(
          replicas_.front().model->options().tuning);
    }
    if (!opts.metric_model.empty()) {
      rep.model->set_metric_scope(opts.metric_model, r);  // arena gauges
    }
    replicas_.push_back(std::move(rep));
  }
  // Phase 2: start the batchers only after every compile finished, so EVERY
  // per-replica QPS window (BatchCore's clock starts at construction) and
  // the aggregate one below measure serving time, not sibling compile time.
  routed_.resize(replicas_.size());
  for (size_t r = 0; r < replicas_.size(); ++r) {
    Replica& rep = replicas_[r];
    DeadlineBatcherOptions bopts;
    bopts.max_batch = opts.max_batch;
    bopts.max_delay = opts.max_delay;
    bopts.queue_capacity = opts.queue_capacity;
    bopts.lane = rep.lane.get();
    bopts.metric_model = opts.metric_model;
    bopts.metric_replica = static_cast<int>(r);
    if (!opts.metric_model.empty()) {
      routed_[r] = obs::Registry::global().counter(
          "dsx_shard_routed_total",
          {{"model", opts.metric_model}, {"replica", std::to_string(r)}},
          "Requests routed to this replica by the routing policy.");
    }
    rep.batcher = std::make_unique<DeadlineBatcher>(*rep.model, bopts,
                                                    &aggregate_latency_);
  }
  start_ = std::chrono::steady_clock::now();
}

ReplicaSet::~ReplicaSet() { stop(); }

std::future<Tensor> ReplicaSet::submit(const Tensor& image,
                                       SubmitOptions sopts) {
  const int r = router_.pick_with(replicas(), [this](int i) {
    return replicas_[static_cast<size_t>(i)].batcher->outstanding();
  });
  routed_[static_cast<size_t>(r)].inc();
  return replicas_[static_cast<size_t>(r)].batcher->submit(image, sopts);
}

void ReplicaSet::stop() {
  for (Replica& rep : replicas_) rep.batcher->stop();
}

ShardStats ReplicaSet::stats() const {
  ShardStats s;
  s.replicas = static_cast<int>(replicas_.size());
  s.policy = router_.policy();
  for (size_t r = 0; r < replicas_.size(); ++r) {
    ReplicaStats rs;
    rs.replica = static_cast<int>(r);
    rs.lane_threads = replicas_[r].lane->size();
    rs.batcher = replicas_[r].batcher->stats();
    s.requests += rs.batcher.batcher.requests;
    s.shed += rs.batcher.shed;
    s.rejected += rs.batcher.rejected;
    s.per_replica.push_back(std::move(rs));
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  s.qps = elapsed > 0.0 ? static_cast<double>(s.requests) / elapsed : 0.0;
  s.latency = aggregate_latency_.snapshot();
  s.latency_buckets = aggregate_latency_.histogram().bucket_snapshot();
  return s;
}

const serve::CompileReport& ReplicaSet::prototype_report() const {
  return replicas_.front().model->report();
}

serve::CompiledModel& ReplicaSet::replica_model(int r) {
  DSX_REQUIRE(r >= 0 && r < replicas(), "replica_model: index " << r
                                            << " outside [0, " << replicas()
                                            << ")");
  return *replicas_[static_cast<size_t>(r)].model;
}

DeadlineBatcher& ReplicaSet::replica_batcher(int r) {
  DSX_REQUIRE(r >= 0 && r < replicas(), "replica_batcher: index " << r
                                            << " outside [0, " << replicas()
                                            << ")");
  return *replicas_[static_cast<size_t>(r)].batcher;
}

}  // namespace dsx::shard
