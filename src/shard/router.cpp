#include "shard/router.hpp"

namespace dsx::shard {

const char* routing_policy_name(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kRoundRobin:
      return "round-robin";
    case RoutingPolicy::kLeastOutstanding:
      return "least-outstanding";
    case RoutingPolicy::kPowerOfTwo:
      return "power-of-two";
  }
  return "unknown";
}

RoutingPolicy parse_routing_policy(const std::string& name) {
  if (name == "round-robin") return RoutingPolicy::kRoundRobin;
  if (name == "least-outstanding") return RoutingPolicy::kLeastOutstanding;
  if (name == "power-of-two") return RoutingPolicy::kPowerOfTwo;
  DSX_REQUIRE(false, "unknown routing policy '" << name << "'");
  return RoutingPolicy::kRoundRobin;
}

}  // namespace dsx::shard
