// Priority/deadline-aware micro-batching on a private execution lane.
//
// DeadlineBatcher extends the serving tier's micro-batching contract
// (serve/batcher.hpp) with three scheduling features the FIFO batcher lacks:
//
//   * priority classes + absolute deadlines per request, with
//     earliest-deadline-first batch formation (the queue is kept sorted by
//     serve::edf_before, so a batch is the EDF-prefix of the queue - plus,
//     as an anti-starvation guarantee, the oldest-arrival request whenever
//     it has waited past max_delay, so sustained deadline traffic cannot
//     starve no-deadline requests);
//   * load shedding: a request whose deadline has passed before it could be
//     placed in a batch is answered with serve::DeadlineExceeded through its
//     future instead of occupying a batch slot (deadlines bound queueing -
//     an admitted, in-deadline request may still finish after its deadline;
//     execution time is not clairvoyant);
//   * bounded-queue admission control: submit() throws serve::QueueFull at
//     capacity, giving callers synchronous backpressure.
//
// Execution lane: when constructed with a lane ThreadPool the batcher binds
// it (device::PoolScope) around every CompiledModel::run, so its kernels
// execute on the lane's threads and DO NOT take the process-wide execution
// lock - this is what lets shard::ReplicaSet run R replicas genuinely
// concurrently. Without a lane it behaves like DynamicBatcher: global pool,
// global execution lock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>

#include "device/thread_pool.hpp"
#include "serve/compiled_model.hpp"
#include "serve/request.hpp"

namespace dsx::shard {

struct DeadlineBatcherOptions {
  /// Largest micro-batch; 0 = the model's compiled max_batch (clamped).
  int64_t max_batch = 0;
  /// How long the oldest queued request may wait for the batch to fill.
  std::chrono::microseconds max_delay{2000};
  /// Bounded queue: submit() throws serve::QueueFull once this many
  /// requests wait. 0 = unbounded.
  int64_t queue_capacity = 0;
  /// Execution lane; kernels run on this pool under a device::PoolScope and
  /// skip the process-wide execution lock. Must outlive the batcher.
  /// nullptr = shared global pool + execution lock.
  device::ThreadPool* lane = nullptr;
  /// No worker thread; the owner forms/executes batches via drain_one()
  /// (deterministic tests, external event loops). stop() drains whatever is
  /// still queued.
  bool manual_drain = false;
  /// Observability scope: when non-empty the batcher registers
  /// dsx_serve_* series labeled {model=metric_model[,replica=N]} in
  /// obs::Registry and journals shed/reject groups under that scope.
  /// Empty (the default) = no registry export, zero overhead beyond null
  /// checks. InferenceServer sets this to the registered model name.
  std::string metric_model;
  /// Replica label for the series above; < 0 = no replica label
  /// (single-batcher fleets).
  int metric_replica = -1;
};

/// Per-request scheduling parameters.
struct SubmitOptions {
  serve::Priority priority = serve::Priority::kNormal;
  /// Absolute shed deadline; serve::kNoDeadline = never shed.
  std::chrono::steady_clock::time_point deadline = serve::kNoDeadline;
};

/// Convenience: a deadline `budget` from now at priority `p`.
inline SubmitOptions within(std::chrono::microseconds budget,
                            serve::Priority p = serve::Priority::kNormal) {
  return {p, std::chrono::steady_clock::now() + budget};
}

/// BatcherStats plus the deadline/admission counters.
struct DeadlineBatcherStats {
  serve::BatcherStats batcher;
  int64_t shed = 0;         // deadline-expired, answered DeadlineExceeded
  int64_t rejected = 0;     // admission-control rejections (QueueFull)
  int64_t queue_depth = 0;  // currently waiting
  int64_t outstanding = 0;  // waiting + executing
};

class DeadlineBatcher {
 public:
  /// `model` (and `opts.lane`, when set) must outlive the batcher.
  /// `extra_latency`, when given, additionally receives every per-request
  /// latency sample (ReplicaSet's shard-wide aggregate). Throws
  /// std::invalid_argument on invalid `opts`.
  DeadlineBatcher(serve::CompiledModel& model, DeadlineBatcherOptions opts = {},
                  device::LatencyStats* extra_latency = nullptr);
  ~DeadlineBatcher();

  DeadlineBatcher(const DeadlineBatcher&) = delete;
  DeadlineBatcher& operator=(const DeadlineBatcher&) = delete;

  /// Enqueues one image ([C,H,W] or [1,C,H,W]) in EDF position and returns
  /// a future for its [1, ...] output. Thread-safe. Throws Error if
  /// stopped (checked first), serve::QueueFull at capacity; a deadline that
  /// has already passed is shed immediately (the future carries
  /// DeadlineExceeded, the queue is never touched).
  std::future<Tensor> submit(const Tensor& image, SubmitOptions sopts = {});

  /// Blocking convenience wrapper.
  Tensor infer(const Tensor& image, SubmitOptions sopts = {}) {
    return submit(image, sopts).get();
  }

  /// Manual-drain mode: sheds expired requests, forms one EDF batch (up to
  /// max_batch) and executes it on the calling thread. Returns the number
  /// of requests executed (shed requests are answered but not counted).
  /// Serialized against concurrent drain_one()/stop() callers - the model
  /// is not thread-safe, so only one drain executes at a time.
  size_t drain_one();

  /// Stops accepting work, drains the queue (in manual mode, on the calling
  /// thread), joins the worker. Idempotent.
  void stop();

  DeadlineBatcherStats stats() const;

  /// Waiting + executing request count (Router's load signal). Relaxed.
  int64_t outstanding() const {
    return outstanding_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();
  /// Removes expired requests from queue_ into `shed` (caller answers them
  /// outside the lock) and moves up to max_batch_ EDF-first requests into
  /// `batch`. Requires mu_ held.
  void form_batch_locked(std::chrono::steady_clock::time_point now,
                         std::deque<serve::Request>& batch,
                         std::deque<serve::Request>& shed);
  /// Answers `shed` with DeadlineExceeded and `batch` via the lane (or the
  /// locked global pool). Call WITHOUT mu_ held.
  void answer(std::deque<serve::Request>& batch,
              std::deque<serve::Request>& shed);
  /// Inserts at the request's EDF position (the single definition of the
  /// queue's total order). Requires mu_ held.
  void insert_edf_locked(serve::Request&& req);

  // metrics_ precedes core_ (declaration order = init order): the core
  // receives a copy of the handles at construction.
  serve::BatcherMetricSet metrics_;
  serve::BatchCore core_;
  int64_t max_batch_;
  std::chrono::microseconds max_delay_;
  int64_t queue_capacity_;
  device::ThreadPool* lane_;
  bool manual_drain_;

  mutable std::mutex mu_;
  /// Serializes batch EXECUTION in manual-drain mode (drain_one vs stop's
  /// drain loop): CompiledModel::run is not thread-safe. Worker mode needs
  /// no equivalent - the single worker is the only executor, and stop()
  /// claims/joins it under mu_. Never acquired while holding mu_.
  std::mutex drain_mu_;
  std::condition_variable cv_;
  std::deque<serve::Request> queue_;  // EDF-sorted (serve::edf_before)
  bool stopping_ = false;
  uint64_t next_seq_ = 0;

  std::atomic<int64_t> outstanding_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> rejected_{0};

  std::thread worker_;
};

}  // namespace dsx::shard
