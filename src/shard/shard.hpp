// dsx::shard - replicated, priority/deadline-aware sharded serving.
//
// Umbrella header. The subsystem serves one logical model from R
// independent CompiledModel replicas, each with its own micro-batcher and
// its own partition of the host thread pool ("execution lanes"), replacing
// the serving tier's process-wide execution lock with genuine replica
// concurrency - the serving-side counterpart of the paper's Fig. 14
// multi-GPU data-parallel scaling. Three pieces:
//
//   ReplicaSet      (shard/replica_set.hpp)      - compiles/clones the
//                   replica fleet, owns the lanes and batchers.
//   Router          (shard/router.hpp)           - round-robin /
//                   least-outstanding / power-of-two-choices routing.
//   DeadlineBatcher (shard/deadline_batcher.hpp) - EDF batch formation,
//                   priority classes, deadline shedding, bounded-queue
//                   admission control.
//
// Integration: serve::InferenceServer::register_model with
// BatcherOptions::replicas > 1 serves the model through a ReplicaSet;
// existing callers shard by changing that one field.
#pragma once

#include "shard/deadline_batcher.hpp"
#include "shard/replica_set.hpp"
#include "shard/router.hpp"
