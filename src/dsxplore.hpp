// Umbrella header: the whole DSXplore public API.
//
// Fine-grained headers remain available for faster builds; this is the
// convenience include for applications.
#pragma once

#include "common/check.hpp"

// Tensors and storage.
#include "tensor/alloc_tracker.hpp"
#include "tensor/random.hpp"
#include "tensor/serialize.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"
#include "tensor/workspace.hpp"

// Execution substrate.
#include "device/atomic_stats.hpp"
#include "device/device_group.hpp"
#include "device/launch.hpp"
#include "device/parallel_for.hpp"
#include "device/thread_pool.hpp"

// Convolution / NN primitives.
#include "ops/activations.hpp"
#include "ops/batchnorm.hpp"
#include "ops/conv2d.hpp"
#include "ops/depthwise.hpp"
#include "ops/gemm.hpp"
#include "ops/im2col.hpp"
#include "ops/linear.hpp"
#include "ops/pooling.hpp"
#include "ops/shift.hpp"
#include "ops/shuffle.hpp"
#include "ops/softmax_xent.hpp"

// The paper's contribution: sliding-channel convolution.
#include "core/channel_map.hpp"
#include "core/compositions.hpp"
#include "core/cost_model.hpp"
#include "core/scc_gemm.hpp"
#include "core/scc_kernels.hpp"

// Training framework and model zoo.
#include "nn/adam.hpp"
#include "nn/bn_folding.hpp"
#include "nn/checkpoint.hpp"
#include "nn/containers.hpp"
#include "nn/layer.hpp"
#include "nn/layers_basic.hpp"
#include "nn/lr_schedule.hpp"
#include "nn/layers_conv.hpp"
#include "nn/layers_mix.hpp"
#include "nn/metrics.hpp"
#include "nn/param.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"

#include "models/mobilenet.hpp"
#include "models/resnet.hpp"
#include "models/schemes.hpp"
#include "models/vgg.hpp"

// Concurrent inference serving: compiled plans, dynamic micro-batching,
// multi-model routing.
#include "serve/batcher.hpp"
#include "serve/compiled_model.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"

// Replicated, priority/deadline-aware sharded serving.
#include "shard/shard.hpp"

// Socket-level ingress (framed wire protocol, tenant auth/quota) and
// multi-tenant model residency over the store.
#include "net/net.hpp"

// Observability: metrics registry (Prometheus/JSON), per-request tracing
// (Chrome trace-event / Perfetto), control-plane event journal.
#include "obs/obs.hpp"

// Versioned model store, hot-swap, canary/shadow rollouts.
#include "deploy/deploy.hpp"

// Design-space exploration.
#include "explore/design_space.hpp"

// Empirical kernel autotuning: registry, tuner, persistent cache, dispatch.
#include "tune/cache.hpp"
#include "tune/dispatch.hpp"
#include "tune/problem_key.hpp"
#include "tune/registry.hpp"
#include "tune/tune.hpp"
#include "tune/tuner.hpp"

// Vectorized CPU backend: runtime-dispatched packed GEMM, SCC and depthwise
// kernels (scalar / SSE2 / AVX2+FMA).
#include "simd/depthwise.hpp"
#include "simd/dispatch.hpp"
#include "simd/gemm.hpp"
#include "simd/scc.hpp"

// Pruning on top of factorized kernels.
#include "prune/prune.hpp"

// Post-training int8 quantization.
#include "quant/qscc.hpp"
#include "quant/quant_layers.hpp"
#include "quant/quantize.hpp"

// Data and the analytic GPU model.
#include "data/cifar_bin.hpp"
#include "data/dataloader.hpp"
#include "data/synth.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/estimator.hpp"
#include "gpusim/kernel_profile.hpp"
#include "gpusim/link_model.hpp"
