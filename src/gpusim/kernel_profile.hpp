// Aggregation of device::KernelLog records for the estimator.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "device/launch.hpp"

namespace dsx::gpusim {

struct ProfileSummary {
  int64_t launches = 0;
  double total_threads = 0.0;
  double total_flops = 0.0;
  double total_bytes = 0.0;
  int64_t total_atomics = 0;
};

/// Sums the headline quantities over a launch log.
ProfileSummary summarize(std::span<const device::KernelRecord> records);

/// Per-kernel-name aggregation (useful for identifying hot kernels).
struct NamedSummary {
  std::string name;
  ProfileSummary summary;
};
std::vector<NamedSummary> summarize_by_name(
    std::span<const device::KernelRecord> records);

}  // namespace dsx::gpusim
