// Kernel latency estimation on the analytic device model.
//
// For one launch with T threads, f FLOPs/thread, b bytes/thread and A atomic
// adds:
//   waves     = ceil(T / wave_threads)
//   wave_time = max(wave_threads*f / peak_flops, wave_threads*b / mem_bw)
//   time      = launch_overhead + waves * wave_time + A / atomic_throughput
//
// A partial wave costs a full wave (latency-bound undersaturation): this is
// what produces the paper's Fig. 13 "flat until the SMs saturate, then
// linear" batch-size curve.
#pragma once

#include <span>

#include "device/launch.hpp"
#include "gpusim/device_spec.hpp"

namespace dsx::gpusim {

/// Modeled execution time of one recorded launch, in seconds.
double estimate_kernel_time(const DeviceSpec& spec,
                            const device::KernelRecord& record);

/// Sum over a whole launch log (kernels execute back-to-back).
double estimate_log_time(const DeviceSpec& spec,
                         std::span<const device::KernelRecord> records);

}  // namespace dsx::gpusim
