#include "gpusim/device_spec.hpp"

namespace dsx::gpusim {

DeviceSpec DeviceSpec::v100() {
  DeviceSpec spec;
  spec.name = "Tesla V100-SXM2-32GB";
  spec.sms = 80;
  spec.max_threads_per_sm = 2048;
  spec.peak_flops = 15.7e12;
  spec.mem_bandwidth = 900e9;
  spec.atomic_throughput = 4e9;
  spec.kernel_launch_overhead = 4e-6;
  spec.link_bandwidth = 25e9;
  spec.link_latency = 10e-6;
  return spec;
}

}  // namespace dsx::gpusim
