// Analytic GPU device model (DESIGN.md §2: substitution for the paper's
// Tesla V100).
//
// The model is deliberately simple - a wave/occupancy latency floor plus a
// roofline throughput term plus an atomic-serialization term - because the
// paper phenomena it must reproduce (Fig. 13's flat-then-linear batch-size
// curve, Fig. 14's all-reduce-limited multi-GPU scaling, Fig. 9's atomic
// penalty) are first-order execution-model effects. It consumes the *real*
// launch shapes, per-thread costs and atomic counts recorded by
// device::KernelLog from the actual kernels.
#pragma once

#include <string>

namespace dsx::gpusim {

struct DeviceSpec {
  std::string name;
  int sms = 80;                      // streaming multiprocessors
  int max_threads_per_sm = 2048;     // resident threads per SM
  double peak_flops = 15.7e12;       // FP32 FLOP/s
  double mem_bandwidth = 900e9;      // HBM bytes/s
  double atomic_throughput = 4e9;    // serialized float atomics/s (contended)
  double kernel_launch_overhead = 4e-6;  // seconds per launch
  double link_bandwidth = 25e9;      // bytes/s per inter-GPU link (NVLink-ish)
  double link_latency = 10e-6;       // seconds per collective hop

  /// Total concurrently resident threads (one "wave").
  double wave_threads() const {
    return static_cast<double>(sms) * max_threads_per_sm;
  }

  /// Tesla V100-SXM2-32GB, the paper's evaluation device.
  static DeviceSpec v100();
};

}  // namespace dsx::gpusim
