#include "gpusim/kernel_profile.hpp"

#include <map>

namespace dsx::gpusim {

ProfileSummary summarize(std::span<const device::KernelRecord> records) {
  ProfileSummary s;
  for (const auto& r : records) {
    ++s.launches;
    s.total_threads += static_cast<double>(r.threads);
    s.total_flops += r.total_flops();
    s.total_bytes += r.total_bytes();
    s.total_atomics += r.atomic_adds;
  }
  return s;
}

std::vector<NamedSummary> summarize_by_name(
    std::span<const device::KernelRecord> records) {
  std::map<std::string, ProfileSummary> by_name;
  for (const auto& r : records) {
    ProfileSummary& s = by_name[r.name];
    ++s.launches;
    s.total_threads += static_cast<double>(r.threads);
    s.total_flops += r.total_flops();
    s.total_bytes += r.total_bytes();
    s.total_atomics += r.atomic_adds;
  }
  std::vector<NamedSummary> out;
  out.reserve(by_name.size());
  for (auto& [name, summary] : by_name) out.push_back({name, summary});
  return out;
}

}  // namespace dsx::gpusim
