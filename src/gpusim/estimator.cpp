#include "gpusim/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace dsx::gpusim {

double estimate_kernel_time(const DeviceSpec& spec,
                            const device::KernelRecord& record) {
  DSX_REQUIRE(record.threads >= 0, "estimate_kernel_time: negative threads");
  if (record.threads == 0) return spec.kernel_launch_overhead;

  const double wave_threads = spec.wave_threads();
  const double waves =
      std::ceil(static_cast<double>(record.threads) / wave_threads);
  const double flops_per_wave = wave_threads * record.flops_per_thread;
  const double bytes_per_wave = wave_threads * record.bytes_per_thread;
  const double wave_time = std::max(flops_per_wave / spec.peak_flops,
                                    bytes_per_wave / spec.mem_bandwidth);
  const double atomic_time =
      static_cast<double>(record.atomic_adds) / spec.atomic_throughput;
  return spec.kernel_launch_overhead + waves * wave_time + atomic_time;
}

double estimate_log_time(const DeviceSpec& spec,
                         std::span<const device::KernelRecord> records) {
  double total = 0.0;
  for (const auto& r : records) total += estimate_kernel_time(spec, r);
  return total;
}

}  // namespace dsx::gpusim
