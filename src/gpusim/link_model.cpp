#include "gpusim/link_model.hpp"

#include "common/check.hpp"
#include "device/device_group.hpp"

namespace dsx::gpusim {

double all_reduce_time(const DeviceSpec& spec, double payload_bytes,
                       int devices) {
  DSX_REQUIRE(devices >= 1, "all_reduce_time: devices must be >= 1");
  DSX_REQUIRE(payload_bytes >= 0.0, "all_reduce_time: negative payload");
  if (devices == 1) return 0.0;
  const double wire =
      device::ring_all_reduce_bytes(payload_bytes, devices);
  return 2.0 * (devices - 1) * spec.link_latency + wire / spec.link_bandwidth;
}

MultiGpuEstimate estimate_data_parallel(const DeviceSpec& spec,
                                        double single_device_compute,
                                        double gradient_bytes, int devices) {
  DSX_REQUIRE(devices >= 1, "estimate_data_parallel: devices must be >= 1");
  DSX_REQUIRE(single_device_compute >= 0.0 && gradient_bytes >= 0.0,
              "estimate_data_parallel: negative inputs");
  MultiGpuEstimate est;
  est.devices = devices;
  est.compute_seconds = single_device_compute / static_cast<double>(devices);
  est.comm_seconds = all_reduce_time(spec, gradient_bytes, devices);
  est.step_seconds = est.compute_seconds + est.comm_seconds;
  est.speedup = est.step_seconds > 0.0
                    ? single_device_compute / est.step_seconds
                    : 1.0;
  return est;
}

}  // namespace dsx::gpusim
