// Inter-device communication model for the multi-GPU experiments (Fig. 14).
//
// Ring all-reduce over D devices moves 2*(D-1)/D of the payload per device
// and needs 2*(D-1) latency hops; data-parallel step time is
//   max_d(compute_d) + allreduce(grad_bytes).
#pragma once

#include <cstdint>

#include "gpusim/device_spec.hpp"

namespace dsx::gpusim {

/// Seconds for a ring all-reduce of `payload_bytes` over `devices` devices.
double all_reduce_time(const DeviceSpec& spec, double payload_bytes,
                       int devices);

struct MultiGpuEstimate {
  int devices = 1;
  double compute_seconds = 0.0;  // per-device compute (shard of the batch)
  double comm_seconds = 0.0;     // gradient all-reduce
  double step_seconds = 0.0;     // compute + comm
  double speedup = 1.0;          // vs the 1-device step time
};

/// Data-parallel scaling estimate. `single_device_compute` is the measured /
/// modeled step time of the full batch on one device; compute is assumed to
/// shard perfectly (the paper's models are batch-parallel).
MultiGpuEstimate estimate_data_parallel(const DeviceSpec& spec,
                                        double single_device_compute,
                                        double gradient_bytes, int devices);

}  // namespace dsx::gpusim
