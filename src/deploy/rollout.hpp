// Staged rollouts of stored model versions behind a live serving name.
//
// A RolloutController moves one logical model through the deployment ladder
// the ROADMAP's "millions of users" tier needs when a retuned / requantized /
// re-overlapped SCC design point ships:
//
//   live  --stage-->  SHADOW  --advance-->  CANARY  --promote-->  live'
//                        \________rollback (manual or guardrail)______/
//
//   * shadow: a deterministic sample of traffic is MIRRORED to the staged
//     candidate; the caller's reply always comes from the live version
//     (mirroring never blocks or fails the primary reply), while a
//     background comparator records output agreement and candidate errors;
//   * canary: a configurable percentage of real requests is ROUTED to the
//     candidate, selected by a deterministic hash of the request payload -
//     the same image always lands on the same side, so canary behavior is
//     reproducible and per-request attributable;
//   * promote: the candidate's fleet is hot-swapped under the live name
//     (InferenceServer::swap_model_with) - the displaced fleet drains, and
//     every accepted request is still answered exactly once, each by the
//     version that accepted it;
//   * rollback: the candidate is dropped; an auto-rollback fires when the
//     canary's p99 latency or error rate regresses past the guardrail,
//     judged by the same windowed evaluation the SLO engine runs
//     (obs::slo::window_delta over the fleets' cumulative histogram
//     buckets - each fleet's lifetime is the canary window).
//
// The controller is a routing facade: requests enter through its submit(),
// which forwards to the InferenceServer. Requests submitted directly to the
// server under the live name simply bypass the rollout split (they always
// hit the live version).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "deploy/model_store.hpp"
#include "serve/server.hpp"

namespace dsx::deploy {

/// Deterministic request hash (FNV-1a 64 over the image bytes) and its
/// canary bucket in [0, kRouteBuckets). Exposed so tests and callers can
/// predict which side of a split any request lands on.
inline constexpr int kRouteBuckets = 10000;
uint64_t request_hash(const Tensor& image);
int request_bucket(const Tensor& image);

struct RolloutOptions {
  /// Fraction of traffic mirrored to the candidate while in shadow.
  double shadow_fraction = 0.10;
  /// Default fraction routed to the candidate in canary (advance_to_canary
  /// can override per call).
  double canary_fraction = 0.25;
  /// Max |primary - candidate| output difference before a shadow compare
  /// counts as a mismatch.
  float shadow_tolerance = 1e-4f;
  /// Guardrail: canary-side candidate samples (answers since the canary
  /// opened, + errors) required before it arms.
  int64_t guardrail_min_samples = 16;
  /// Auto-rollback when candidate p99 exceeds this multiple of primary p99.
  double guardrail_max_p99_ratio = 3.0;
  /// Auto-rollback when candidate error rate exceeds this fraction.
  double guardrail_max_error_rate = 0.10;
  /// Canary submissions between automatic guardrail evaluations.
  int64_t guardrail_check_every = 8;
};

enum class Phase { kLive, kShadow, kCanary };
const char* phase_name(Phase phase);

struct ShadowStats {
  int64_t mirrored = 0;    // requests also sent to the candidate
  int64_t compared = 0;    // pairs whose outputs were both available
  int64_t mismatches = 0;  // compares beyond shadow_tolerance
  int64_t errors = 0;      // candidate-side failures while mirroring
  /// Mirrors shed by the candidate's deadline scheduling (DeadlineExceeded).
  /// Scheduling policy, not a model regression - kept out of `errors`, same
  /// convention as the canary path.
  int64_t shed = 0;
  double max_abs_diff = 0.0;
};

struct RolloutStatus {
  std::string name;
  std::string live_version;
  std::string candidate_version;  // empty when phase == kLive
  Phase phase = Phase::kLive;
  double split_fraction = 0.0;  // mirrored (shadow) or routed (canary)
  int64_t primary_requests = 0;
  int64_t candidate_requests = 0;
  double primary_p99_ms = 0.0;
  double candidate_p99_ms = 0.0;
  int64_t candidate_errors = 0;
  ShadowStats shadow;
  int64_t promotions = 0;
  bool rolled_back = false;      // last rollout ended in rollback
  std::string rollback_reason;   // why (guardrail detail or "manual")
};

class RolloutController {
 public:
  /// `server` and `store` must outlive the controller.
  RolloutController(serve::InferenceServer& server, ModelStore& store,
                    RolloutOptions opts = {});
  ~RolloutController();

  RolloutController(const RolloutController&) = delete;
  RolloutController& operator=(const RolloutController&) = delete;

  /// Registers `version` from the store under `name` and starts managing
  /// the deployment. Compiles with store warm-start (see ModelStore).
  void deploy(const std::string& name, const std::string& version,
              serve::CompileOptions copts = {},
              serve::BatcherOptions bopts = {});

  /// Adopts a model already registered on the server (trained in-process,
  /// registered by hand) as the live `version_label` of deployment `name`.
  void adopt(const std::string& name, const std::string& version_label);

  /// Stages `version` from the store as the candidate: compiles it
  /// (warm-starting from its stored tuning cache), registers it under a
  /// hidden name, and enters SHADOW at opts.shadow_fraction. Requires the
  /// deployment to be in phase kLive.
  void stage(const std::string& name, const std::string& version,
             serve::CompileOptions copts = {},
             serve::BatcherOptions bopts = {});

  /// SHADOW -> CANARY at `fraction` (< 0 = opts.canary_fraction).
  void advance_to_canary(const std::string& name, double fraction = -1.0);

  /// Routes one request through the rollout split. Thread-safe. The reply
  /// always reflects exactly one model execution: live (plus an invisible
  /// mirror in shadow) or candidate (canary bucket). A candidate-side
  /// submit failure in canary falls back to the live version - callers
  /// never pay for a sick candidate.
  ///
  /// Future semantics caveat: requests touched by an active rollout (the
  /// shadow-mirrored and canary-candidate sides) return a deferred wrapper
  /// around the underlying reply - get() behaves identically (one answer or
  /// the original exception), but wait_for()/wait_until() report
  /// future_status::deferred instead of counting down. Callers that poll
  /// readiness should do so on futures obtained from the server directly.
  std::future<Tensor> submit(const std::string& name, const Tensor& image,
                             shard::SubmitOptions sopts = {});
  Tensor infer(const std::string& name, const Tensor& image,
               shard::SubmitOptions sopts = {}) {
    return submit(name, image, sopts).get();
  }

  /// Hot-swaps the candidate under the live name (exactly-once across the
  /// swap; see InferenceServer::swap_model_with) and returns to kLive.
  serve::SwapReport promote(const std::string& name);

  /// Drops the candidate and returns to kLive.
  void rollback(const std::string& name, const std::string& reason = "manual");

  /// Evaluates the canary guardrail now (it also runs automatically every
  /// opts.guardrail_check_every canary submissions; an auto-trip stops
  /// routing immediately but drains the candidate fleet on a background
  /// reaper so no request pays for it). Returns true if it tripped and
  /// rolled the candidate back. This synchronous form also settles any
  /// in-flight auto-rollback drains before returning.
  bool check_guardrail(const std::string& name);

  /// Blocks until every mirrored shadow pair so far has been compared (the
  /// comparator is asynchronous; tests and status readers use this to see a
  /// settled ShadowStats).
  void drain_shadow_compares();

  RolloutStatus status(const std::string& name) const;

 private:
  /// Candidate-side counters. shared_ptr so reply wrappers and queued
  /// shadow compares outlive a rollback that drops the Deployment state.
  struct CandidateTrack {
    /// Canary-routed submission attempts - the guardrail's sample count.
    /// The controller's own ledger, not the fleet's answered counter, so
    /// shadow mirrors (answered or shed) can never dilute or understate it.
    std::atomic<int64_t> canary_attempts{0};
    std::atomic<int64_t> errors{0};  // canary-side failures
    std::mutex mu;                   // guards the shadow fields below
    ShadowStats shadow;
  };
  using TrackPtr = std::shared_ptr<CandidateTrack>;

  struct Deployment {
    std::string live_version;
    std::string candidate_version;
    std::string candidate_alias;  // server registry name of the candidate
    Phase phase = Phase::kLive;
    double fraction = 0.0;
    TrackPtr track;
    int64_t submits_until_check = 0;
    int64_t promotions = 0;
    bool rolled_back = false;
    std::string rollback_reason;
  };

  struct ShadowPair {
    std::shared_future<Tensor> primary;
    std::future<Tensor> candidate;
    TrackPtr track;
    float tolerance = 0.0f;
  };

  Deployment& deployment_locked(const std::string& name);
  const Deployment& deployment_locked(const std::string& name) const;
  void rollback_locked_candidate(const std::string& name,
                                 const std::string& reason);
  /// `synchronous` controls the tripped path's fleet drain: the explicit
  /// check_guardrail() drains inline; the submit()-path auto-check hands
  /// the drain to a reaper thread so no caller's request pays for it.
  bool evaluate_guardrail(const std::string& name, bool synchronous);
  void comparator_loop();

  serve::InferenceServer& server_;
  ModelStore& store_;
  const RolloutOptions opts_;

  mutable std::mutex mu_;
  std::map<std::string, Deployment> deployments_;
  /// Auto-rollback drains in flight (submit-path guardrail trips); joined
  /// by check_guardrail() and the destructor. Guarded by mu_.
  std::vector<std::thread> reapers_;

  // Shadow comparator: one background worker drains mirrored pairs.
  std::mutex shadow_mu_;
  std::condition_variable shadow_cv_;
  std::condition_variable shadow_idle_cv_;
  std::deque<ShadowPair> shadow_queue_;
  int64_t shadow_in_flight_ = 0;  // queued + currently comparing
  bool shadow_stop_ = false;
  std::thread comparator_;
};

}  // namespace dsx::deploy
