#include "deploy/model_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/binary_io.hpp"
#include "common/check.hpp"
#include "nn/checkpoint.hpp"
#include "tune/tune.hpp"

namespace fs = std::filesystem;

namespace dsx::deploy {

namespace {

constexpr char kManifestMagic[4] = {'D', 'S', 'X', 'M'};
constexpr const char* kManifestFile = "manifest.bin";
constexpr const char* kWeightsFile = "weights.bin";
constexpr const char* kTuningFile = "tuning.bin";

/// Model/version names become directory components; reject anything that
/// could escape the store or collide with staging/hidden entries.
void validate_name(const char* what, const std::string& name) {
  DSX_REQUIRE(!name.empty() && name.size() <= 128,
              what << " name must be 1..128 chars, got '" << name << "'");
  DSX_REQUIRE(name.front() != '.', what << " name '" << name
                                        << "' must not start with '.'");
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    DSX_REQUIRE(ok, what << " name '" << name << "' has invalid char '" << c
                         << "' (allowed: alnum, '-', '_', '.')");
  }
}

void write_artifact_info(std::ostream& os, const ArtifactInfo& info) {
  io::write_str(os, info.file);
  io::write_i64(os, info.bytes);
  io::write_u64(os, info.checksum);
}

ArtifactInfo read_artifact_info(std::istream& is) {
  ArtifactInfo info;
  info.file = io::read_str(is);
  info.bytes = io::read_i64(is);
  info.checksum = io::read_u64(is);
  return info;
}

/// Verifies size and checksum of one artifact inside `dir`.
void verify_artifact(const std::string& dir, const ArtifactInfo& info) {
  const fs::path path = fs::path(dir) / info.file;
  DSX_REQUIRE(fs::exists(path),
              "ModelStore: missing artifact " << path.string());
  const int64_t bytes = static_cast<int64_t>(fs::file_size(path));
  DSX_REQUIRE(bytes == info.bytes,
              "ModelStore: artifact " << path.string() << " is " << bytes
                                      << " bytes, manifest says " << info.bytes
                                      << " (truncated or tampered)");
  const uint64_t sum = fnv1a64_file(path.string());
  DSX_REQUIRE(sum == info.checksum,
              "ModelStore: artifact " << path.string()
                                      << " failed its integrity check "
                                         "(checksum mismatch)");
}

ArtifactInfo fingerprint(const fs::path& path) {
  ArtifactInfo info;
  info.file = path.filename().string();
  info.bytes = static_cast<int64_t>(fs::file_size(path));
  info.checksum = fnv1a64_file(path.string());
  return info;
}

std::vector<std::string> sorted_subdirs(const fs::path& dir) {
  std::vector<std::string> names;
  if (!fs::exists(dir)) return names;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.empty() || name.front() == '.') continue;  // staging/hidden
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;

uint64_t fnv1a64_update(uint64_t h, const void* data, size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

uint64_t fnv1a64(const void* data, size_t bytes) {
  return fnv1a64_update(kFnvOffset, data, bytes);
}

uint64_t fnv1a64_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DSX_REQUIRE(is.is_open(), "fnv1a64_file: cannot open " << path);
  uint64_t h = kFnvOffset;
  char buf[1 << 16];
  while (is.read(buf, sizeof(buf)) || is.gcount() > 0) {
    h = fnv1a64_update(h, buf, static_cast<size_t>(is.gcount()));
    if (!is) break;
  }
  return h;
}

ModelStore::ModelStore(std::string root) : root_(std::move(root)) {
  DSX_REQUIRE(!root_.empty(), "ModelStore: empty root path");
  fs::create_directories(root_);
}

std::string ModelStore::version_dir(const std::string& model,
                                    const std::string& version) const {
  // EVERY path built from caller-supplied names funnels through here (or
  // list_versions), so the escape check holds on read/remove paths too -
  // not just save_version.
  validate_name("model", model);
  validate_name("version", version);
  return (fs::path(root_) / model / version).string();
}

std::string ModelStore::save_version(const std::string& model,
                                     const std::string& version,
                                     nn::Sequential& net, const ArchSpec& arch,
                                     const tune::TuningCache* tuning) {
  validate_name("model", model);
  validate_name("version", version);
  // A spec that could never be rebuilt must fail HERE, not at deploy time:
  // otherwise the store publishes a checksum-valid version whose weights
  // are permanently unreachable behind an unbuildable architecture.
  validate_arch_spec(arch);
  const fs::path final_dir = version_dir(model, version);
  DSX_REQUIRE(!fs::exists(final_dir),
              "ModelStore: " << model << "/" << version
                             << " already exists (versions are immutable - "
                                "save under a new version name)");

  // Stage everything in a hidden sibling, fingerprint it, write the manifest
  // LAST, then atomically publish via rename. A crash at any point leaves
  // either no version or a complete one - never a torn one.
  const fs::path staging =
      fs::path(root_) / model / ("." + version + ".staging");
  fs::remove_all(staging);  // a previous crashed save
  fs::create_directories(staging);

  VersionManifest m;
  m.model = model;
  m.version = version;
  m.arch = arch;

  nn::save_checkpoint_file(net, (staging / kWeightsFile).string());
  m.weights = fingerprint(staging / kWeightsFile);

  if (tuning != nullptr) {
    tuning->save_file((staging / kTuningFile).string());
    m.has_tuning_cache = true;
    m.tuning = fingerprint(staging / kTuningFile);
  }

  {
    std::ofstream os(staging / kManifestFile, std::ios::binary);
    DSX_REQUIRE(os.is_open(), "ModelStore: cannot open "
                                  << (staging / kManifestFile).string());
    os.write(kManifestMagic, sizeof(kManifestMagic));
    io::write_i64(os, VersionManifest::kVersion);
    io::write_str(os, m.model);
    io::write_str(os, m.version);
    write_arch_spec(os, m.arch);
    write_artifact_info(os, m.weights);
    io::write_i64(os, m.has_tuning_cache ? 1 : 0);
    if (m.has_tuning_cache) write_artifact_info(os, m.tuning);
    DSX_CHECK(os.good(), "ModelStore: manifest write failed");
  }

  std::error_code ec;
  fs::rename(staging, final_dir, ec);
  DSX_REQUIRE(!ec, "ModelStore: cannot publish " << final_dir.string() << ": "
                                                 << ec.message());
  return final_dir.string();
}

bool ModelStore::has_version(const std::string& model,
                             const std::string& version) const {
  return fs::exists(fs::path(version_dir(model, version)) / kManifestFile);
}

std::vector<std::string> ModelStore::list_models() const {
  return sorted_subdirs(root_);
}

std::vector<std::string> ModelStore::list_versions(
    const std::string& model) const {
  validate_name("model", model);
  return sorted_subdirs(fs::path(root_) / model);
}

VersionManifest ModelStore::read_manifest_file(const std::string& path) const {
  std::ifstream is(path, std::ios::binary);
  DSX_REQUIRE(is.is_open(), "ModelStore: cannot open " << path);
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  DSX_REQUIRE(is.good() && std::memcmp(magic, kManifestMagic, 4) == 0,
              "ModelStore: bad manifest magic in " << path);
  const int64_t version = io::read_i64(is);
  DSX_REQUIRE(version == VersionManifest::kVersion,
              "ModelStore: manifest format " << version << ", this build reads "
                                             << VersionManifest::kVersion);
  VersionManifest m;
  m.model = io::read_str(is);
  m.version = io::read_str(is);
  m.arch = read_arch_spec(is);
  m.weights = read_artifact_info(is);
  m.has_tuning_cache = io::read_i64(is) != 0;
  if (m.has_tuning_cache) m.tuning = read_artifact_info(is);
  return m;
}

VersionManifest ModelStore::manifest(const std::string& model,
                                     const std::string& version) const {
  const std::string dir = version_dir(model, version);
  DSX_REQUIRE(fs::exists(fs::path(dir) / kManifestFile),
              "ModelStore: no version " << model << "/" << version);
  VersionManifest m =
      read_manifest_file((fs::path(dir) / kManifestFile).string());
  DSX_REQUIRE(m.model == model && m.version == version,
              "ModelStore: manifest in " << dir << " claims to be " << m.model
                                         << "/" << m.version);
  verify_artifact(dir, m.weights);
  if (m.has_tuning_cache) verify_artifact(dir, m.tuning);
  return m;
}

std::unique_ptr<nn::Sequential> ModelStore::load_from_manifest(
    const VersionManifest& m) const {
  std::unique_ptr<nn::Sequential> net = build_architecture(m.arch);
  const fs::path weights =
      fs::path(version_dir(m.model, m.version)) / m.weights.file;
  // load_checkpoint validates param count/names/shapes against the rebuilt
  // architecture, so a manifest whose spec drifted from its weights fails
  // loudly here.
  nn::load_checkpoint_file(*net, weights.string());
  return net;
}

std::unique_ptr<nn::Sequential> ModelStore::load_model(
    const std::string& model, const std::string& version) const {
  return load_from_manifest(manifest(model, version));  // integrity-verified
}

int64_t ModelStore::version_weight_bytes(const std::string& model,
                                         const std::string& version) const {
  const std::string dir = version_dir(model, version);
  DSX_REQUIRE(fs::exists(fs::path(dir) / kManifestFile),
              "ModelStore: no version " << model << "/" << version);
  // Manifest only - the artifacts themselves are not read. Residency calls
  // this per eviction decision; the full checksum pass still happens on the
  // compile() that follows an admit.
  return read_manifest_file((fs::path(dir) / kManifestFile).string())
      .weights.bytes;
}

std::string ModelStore::tuning_cache_path(const std::string& model,
                                          const std::string& version) const {
  const VersionManifest m = manifest(model, version);
  if (!m.has_tuning_cache) return "";
  return (fs::path(version_dir(model, version)) / m.tuning.file).string();
}

std::unique_ptr<serve::CompiledModel> ModelStore::compile(
    const std::string& model, const std::string& version,
    serve::CompileOptions opts) const {
  const VersionManifest m = manifest(model, version);
  std::unique_ptr<nn::Sequential> net = load_from_manifest(m);
  if (m.has_tuning_cache) {
    // Warm-start: merge the version's persisted measurements into the
    // process session, then compile in kCached mode with NO cache file
    // armed - the tuning pass resolves every call site from the merged
    // records without measuring, and nothing is written back into the
    // immutable artifact (which would break its checksum).
    const fs::path cache = fs::path(version_dir(model, version)) / m.tuning.file;
    try {
      tune::Session::global().cache().load_file(cache.string());
      opts.tuning = tune::Mode::kCached;
      opts.tuning_cache.clear();
    } catch (const std::exception& e) {
      // A stale-format tuning.bin (e.g. v1, pre-fidelity) must not brick an
      // otherwise intact immutable version: the artifact cannot be repaired
      // in place (rewriting it would break the manifest checksum), and the
      // warm-start is an optimization. Degrade to the caller's tuning mode
      // (a cold compile) and keep serving the weights.
      std::fprintf(stderr,
                   "dsx::deploy: ignoring stale tuning cache for %s/%s (%s); "
                   "compiling cold\n",
                   model.c_str(), version.c_str(), e.what());
    }
  }
  return std::make_unique<serve::CompiledModel>(std::move(net),
                                                m.arch.image_shape(), opts);
}

void ModelStore::remove_version(const std::string& model,
                                const std::string& version) {
  const fs::path dir = version_dir(model, version);
  DSX_REQUIRE(fs::exists(dir),
              "ModelStore: no version " << model << "/" << version);
  fs::remove_all(dir);
  const fs::path model_dir = fs::path(root_) / model;
  if (fs::exists(model_dir) && fs::is_empty(model_dir)) fs::remove(model_dir);
}

}  // namespace dsx::deploy
